package spgemm_test

import (
	"errors"
	"math/rand"
	"testing"

	"maskedspgemm/spgemm"
)

// randMatrixT builds a deterministic random matrix through the public
// triple constructor.
func randMatrixT(t *testing.T, rows, cols int, density float64, seed int64) *spgemm.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trips []spgemm.Triple
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				trips = append(trips, spgemm.Triple{Row: i, Col: j, Val: rng.Float64()*4 - 2})
			}
		}
	}
	m, err := spgemm.FromTriples(rows, cols, trips)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func chainOps(t *testing.T, seed int64) (m1, a, b, m2, c *spgemm.Matrix) {
	t.Helper()
	m, k, n, q := 37, 29, 31, 23
	a = randMatrixT(t, m, k, 0.15, seed)
	b = randMatrixT(t, k, n, 0.2, seed+1)
	m1 = randMatrixT(t, m, n, 0.25, seed+2)
	c = randMatrixT(t, n, q, 0.2, seed+3)
	m2 = randMatrixT(t, m, q, 0.25, seed+4)
	return
}

func TestMxMChainFusedMatchesUnfused(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		m1, a, b, m2, c := chainOps(t, seed)
		opts := spgemm.Defaults()
		opts.Tiles = 6
		opts.Workers = 2
		want, err := spgemm.MxMChain(m1, a, b, m2, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Fuse = true
		for _, budget := range []int64{0, 1} { // staged and fully streamed
			opts.FuseTileBudget = budget
			got, err := spgemm.MxMChain(m1, a, b, m2, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d budget %d: fused chain differs", seed, budget)
			}
		}
	}
}

func TestMxMChainWithEngineAndStats(t *testing.T) {
	m1, a, b, m2, c := chainOps(t, 3)
	opts := spgemm.Defaults()
	opts.Tiles = 4
	opts.Workers = 2
	opts.Fuse = true
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	opts.Stats = spgemm.NewStatsRecorder()
	want, err := spgemm.MxMChain(m1, a, b, m2, c, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := spgemm.MxMChain(m1, a, b, m2, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("pass %d: fused chain differs under engine", i)
		}
	}
	st := opts.Stats.Stats()
	if st.Fused.ChainRuns != 3 {
		t.Fatalf("ChainRuns = %d, want 3", st.Fused.ChainRuns)
	}
	if st.Fused.StagedTiles+st.Fused.StreamedTiles == 0 {
		t.Fatal("no tiles recorded by the fused pipeline")
	}
}

func TestMxMChainRejectsBadShapes(t *testing.T) {
	m1, a, b, m2, _ := chainOps(t, 5)
	bad := randMatrixT(t, 3, 3, 0.5, 9) // wrong inner dimension for C
	opts := spgemm.Defaults()
	opts.Fuse = true
	if _, err := spgemm.MxMChain(m1, a, b, m2, bad, opts); !errors.Is(err, spgemm.ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestKTrussFuseOptionMatches(t *testing.T) {
	a := spgemm.RandomGraph("er", 60, 11).Symmetrize()
	opts := spgemm.Defaults()
	opts.Tiles = 8
	opts.Workers = 2
	want, wantRounds, err := spgemm.KTruss(a, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Fuse = true
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	got, gotRounds, err := spgemm.KTruss(a, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || gotRounds != wantRounds {
		t.Fatalf("fused k-truss differs (rounds %d vs %d)", gotRounds, wantRounds)
	}
}

func TestBCBatchFuseOptionMatches(t *testing.T) {
	a := spgemm.RandomGraph("er", 40, 13).Symmetrize()
	sources := []int{0, 5, 9}
	opts := spgemm.Defaults()
	opts.Tiles = 8
	opts.Workers = 2
	want, err := spgemm.BetweennessCentralityBatch(a, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Fuse = true
	got, err := spgemm.BetweennessCentralityBatch(a, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if diff := got[v] - want[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestAdaptiveKappaObservesRuns(t *testing.T) {
	a := spgemm.RandomGraph("er", 80, 17).Symmetrize()
	opts := spgemm.Defaults()
	opts.Tiles = 8
	opts.Workers = 2
	opts.Semiring = spgemm.SRPlusPair
	want, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AdaptiveKappa = true
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	opts.Stats = spgemm.NewStatsRecorder()
	for i := 0; i < 6; i++ {
		got, err := spgemm.MxM(a, a, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("pass %d: adaptive κ changed the result", i)
		}
	}
	st := opts.Stats.Stats()
	if st.Recal.Updates != 6 {
		t.Fatalf("Recal.Updates = %d, want 6", st.Recal.Updates)
	}
	if st.Recal.KappaLast <= 0 {
		t.Fatalf("KappaLast = %v, want > 0", st.Recal.KappaLast)
	}
}

func TestAdaptiveKappaMultiplier(t *testing.T) {
	a := spgemm.RandomGraph("er", 80, 19).Symmetrize()
	opts := spgemm.Defaults()
	opts.Tiles = 8
	opts.Workers = 2
	opts.Semiring = spgemm.SRPlusPair
	want, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AdaptiveKappa = true
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	opts.Stats = spgemm.NewStatsRecorder()
	mu, err := spgemm.NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("pass %d: adaptive multiplier changed the result", i)
		}
	}
	if st, ok := mu.LastStats(); !ok || st.Runs != 1 {
		t.Fatalf("LastStats: ok=%v runs=%d, want per-run snapshot", ok, st.Runs)
	}
	if st := opts.Stats.Stats(); st.Recal.Updates != 5 {
		t.Fatalf("Recal.Updates = %d, want 5", st.Recal.Updates)
	}
}

func TestNewEngineFor(t *testing.T) {
	a := spgemm.RandomGraph("er", 60, 23).Symmetrize()
	opts := spgemm.Defaults()
	if _, err := spgemm.NewEngineFor(a, a, a, opts, spgemm.EngineConfig{RetentionBudget: -1}); !errors.Is(err, spgemm.ErrConfig) {
		t.Fatalf("negative budget: err = %v, want ErrConfig", err)
	}
	eng, err := spgemm.NewEngineFor(a, a, a, opts, spgemm.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = eng
	opts.Semiring = spgemm.SRPlusPair
	if _, err := spgemm.MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
	// A tiny budget must still leave the warm-loop pair.
	eng, err = spgemm.NewEngineFor(a, a, a, opts, spgemm.EngineConfig{RetentionBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("nil engine")
	}
}
