package spgemm_test

import (
	"math/rand"
	"testing"

	"maskedspgemm/spgemm"
)

// steadyAllocBudget is the allowed allocation count of one warm,
// stats-off Multiply: the freshly assembled result (CSR header, row
// pointers, column indices, values, public wrapper — the paper's
// measurement loop frees the output each run, so it is rebuilt by
// design) plus a handful of fixed scheduler closure cells. The budget
// is a constant, independent of matrix size: the row kernels,
// accumulators and gather run entirely in reused buffers (see
// internal/core's TestKernelSteadyStateAllocs for the exact-zero
// assertion on that loop). Any growth past this bound means an
// allocation crept into a hot path.
const steadyAllocBudget = 12

func TestMultiplySteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var tr []spgemm.Triple
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if r.Float64() < 0.15 {
				tr = append(tr, spgemm.Triple{Row: i, Col: j, Val: 1})
			}
		}
	}
	a, err := spgemm.FromTriples(64, 64, tr)
	if err != nil {
		t.Fatal(err)
	}
	opts := spgemm.Defaults()
	opts.Workers = 1 // serial: no per-run goroutine spawns to count
	opts.Tiles = 4
	mu, err := spgemm.NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The first run warms the plan's tile output buffers.
	if _, err := mu.Multiply(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := mu.Multiply(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyAllocBudget {
		t.Errorf("warm Multiply allocates %.1f times per run, budget %d (result assembly + fixed overhead)",
			allocs, steadyAllocBudget)
	}
}
