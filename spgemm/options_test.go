package spgemm

import (
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/tiling"
)

// TestOptionsConfigMapping pins the public-to-internal translation: a
// silent mismapping here would make every public knob lie about what it
// tunes.
func TestOptionsConfigMapping(t *testing.T) {
	o := Defaults()
	cfg := o.config()
	if cfg.Iteration != core.Hybrid || cfg.Accumulator != accum.HashKind ||
		cfg.Tiling != tiling.FlopBalanced || cfg.Schedule != sched.Dynamic ||
		cfg.Tiles != 2048 || cfg.MarkerBits != 32 || cfg.Kappa != 1 {
		t.Errorf("defaults mapped wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		mutate func(*Options)
		check  func(core.Config) bool
		name   string
	}{
		{func(o *Options) { o.Iteration = IterVanilla }, func(c core.Config) bool { return c.Iteration == core.Vanilla }, "vanilla"},
		{func(o *Options) { o.Iteration = IterMaskLoad }, func(c core.Config) bool { return c.Iteration == core.MaskLoad }, "maskload"},
		{func(o *Options) { o.Iteration = IterCoIter }, func(c core.Config) bool { return c.Iteration == core.CoIter }, "coiter"},
		{func(o *Options) { o.Accumulator = AccDense }, func(c core.Config) bool { return c.Accumulator == accum.DenseKind }, "dense"},
		{func(o *Options) { o.Tiling = TileUniform }, func(c core.Config) bool { return c.Tiling == tiling.Uniform }, "uniform"},
		{func(o *Options) { o.Schedule = SchedStatic }, func(c core.Config) bool { return c.Schedule == sched.Static }, "static"},
		{func(o *Options) { o.Schedule = SchedGuided }, func(c core.Config) bool { return c.Schedule == sched.Guided }, "guided"},
		{func(o *Options) { o.PlanWorkers = 5 }, func(c core.Config) bool { return c.PlanWorkers == 5 }, "planworkers"},
		{func(o *Options) { o.GuidedMinChunk = 9 }, func(c core.Config) bool { return c.GuidedMinChunk == 9 }, "guidedchunk"},
		{func(o *Options) { o.Workers = 3 }, func(c core.Config) bool { return c.Workers == 3 }, "workers"},
		{func(o *Options) { o.Kappa = 0.25 }, func(c core.Config) bool { return c.Kappa == 0.25 }, "kappa"},
		{func(o *Options) { o.MarkerBits = 8 }, func(c core.Config) bool { return c.MarkerBits == 8 }, "marker"},
		{func(o *Options) { o.Tiles = 77 }, func(c core.Config) bool { return c.Tiles == 77 }, "tiles"},
	}
	for _, c := range cases {
		o := Defaults()
		c.mutate(&o)
		if !c.check(o.config()) {
			t.Errorf("%s: option did not map", c.name)
		}
	}
}
