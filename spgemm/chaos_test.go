package spgemm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
)

// equalResult compares two result matrices bit-for-bit.
func equalResult(t *testing.T, want, got *Matrix, label string) {
	t.Helper()
	if !want.Equal(got) {
		t.Fatalf("%s: result differs from reference", label)
	}
}

// TestRetryRecoversFromInjectedPanic arms a one-shot kernel panic and
// requires MxM with a retry budget to absorb it: the second (degraded)
// attempt runs after the trigger has fired, and the result is
// bit-identical to a fault-free run. Without the budget the same fault
// must surface as ErrPanic.
func TestRetryRecoversFromInjectedPanic(t *testing.T) {
	a := RandomGraph("er", 96, 11)
	opts := Defaults()
	ref, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Without retry: the injected panic is typed but fatal to the call.
	sd := chaos.NewSeeded(421)
	sd.Arm(chaos.RowKernel, chaos.KindPanic, 3, 0)
	opts.chaos = sd
	if _, err := MxM(a, a, a, opts); !errors.Is(err, ErrPanic) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("unretried fault: %v, want ErrPanic matching chaos.ErrInjected", err)
	}

	// With a budget: the one-shot trigger fires on attempt one, attempt
	// two (serial rung) completes.
	sd = chaos.NewSeeded(421)
	sd.Arm(chaos.RowKernel, chaos.KindPanic, 3, 0)
	stats := NewStatsRecorder()
	opts.chaos = sd
	opts.Stats = stats
	opts.Retry = Retry{MaxAttempts: 2}
	got, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatalf("retried MxM: %v", err)
	}
	equalResult(t, ref, got, "retried result")
	if sd.Fired(chaos.RowKernel) != 1 {
		t.Fatalf("trigger fired %d times, want 1", sd.Fired(chaos.RowKernel))
	}
	r := stats.Stats().Retry
	if r.Attempts != 2 || r.Retries != 1 || r.Degradations != 1 || r.Failures != 0 {
		t.Fatalf("retry counters = %+v, want 2 attempts / 1 retry / 1 degradation / 0 failures", r)
	}
}

// TestRetryRecoversFromInjectedCancel checks the spurious-cancel
// classification: an injected cancel is retryable (it matches
// chaos.ErrInjected), while a real caller cancel is not retried no
// matter the budget.
func TestRetryRecoversFromInjectedCancel(t *testing.T) {
	a := RandomGraph("er", 96, 12)
	opts := Defaults()
	ref, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	sd := chaos.NewSeeded(422)
	sd.Arm(chaos.TileClaim, chaos.KindCancel, 2, 0)
	opts.chaos = sd
	opts.Retry = Retry{MaxAttempts: 2}
	got, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatalf("retried MxM after injected cancel: %v", err)
	}
	equalResult(t, ref, got, "post-cancel result")

	// A real cancellation must come back immediately as ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts.chaos = nil
	opts.Context = ctx
	if _, err := MxM(a, a, a, opts); !errors.Is(err, ErrCanceled) || errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("real cancel: %v, want plain ErrCanceled", err)
	}
}

// TestRetryBudgetExhausted arms a persistent fault and requires the
// loop to stop at the budget with the last typed error and a recorded
// failure.
func TestRetryBudgetExhausted(t *testing.T) {
	a := RandomGraph("er", 64, 13)
	opts := Defaults()
	opts.chaos = chaos.Func(func(p chaos.Point) chaos.Fault {
		if p == chaos.RowKernel {
			return chaos.Fault{Kind: chaos.KindPanic}
		}
		return chaos.Fault{}
	})
	stats := NewStatsRecorder()
	opts.Stats = stats
	opts.Retry = Retry{MaxAttempts: 3}
	_, err := MxM(a, a, a, opts)
	if !errors.Is(err, ErrPanic) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("exhausted retry: %v, want ErrPanic matching chaos.ErrInjected", err)
	}
	r := stats.Stats().Retry
	if r.Attempts != 3 || r.Retries != 2 || r.Failures != 1 {
		t.Fatalf("retry counters = %+v, want 3 attempts / 2 retries / 1 failure", r)
	}
}

// TestStallWatchdogFacade arms a long delay against a short stall
// window and requires the typed verdict — and, with a retry budget, a
// recovered run whose result matches the reference.
func TestStallWatchdogFacade(t *testing.T) {
	a := RandomGraph("er", 96, 14)
	opts := Defaults()
	opts.Workers = 1
	ref, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	sd := chaos.NewSeeded(423)
	sd.Arm(chaos.TileClaim, chaos.KindDelay, 1, 400*time.Millisecond)
	opts.chaos = sd
	opts.StallTimeout = 25 * time.Millisecond
	_, err = MxM(a, a, a, opts)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled run: %v, want ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("chain lacks *StallError: %v", err)
	}
	if len(se.Stacks) == 0 {
		t.Fatal("stall verdict carries no goroutine stacks")
	}

	sd = chaos.NewSeeded(423)
	sd.Arm(chaos.TileClaim, chaos.KindDelay, 1, 400*time.Millisecond)
	opts.chaos = sd
	opts.Retry = Retry{MaxAttempts: 2}
	got, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatalf("retried stalled run: %v", err)
	}
	equalResult(t, ref, got, "post-stall result")
}

// TestMultiplierRetryWithSharedEngine drives the Multiplier's retry
// ladder against a shared engine: a one-shot fault is absorbed, the
// poisoned workspace is quarantined (visible in stats and SelfCheck
// still passes), and warm reuse keeps producing bit-identical results.
func TestMultiplierRetryWithSharedEngine(t *testing.T) {
	a := RandomGraph("er", 96, 15)
	eng := NewEngine(EngineConfig{})
	opts := Defaults()
	ref, err := MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	sd := chaos.NewSeeded(424)
	sd.Arm(chaos.RowKernel, chaos.KindPressure, 4, 0)
	opts.Engine = eng
	opts.chaos = sd
	opts.Retry = Retry{MaxAttempts: 3}
	mu, err := NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatalf("multiply %d: %v", i, err)
		}
		equalResult(t, ref, got, "multiplier result")
	}
	if sd.Fired(chaos.RowKernel) != 1 {
		t.Fatalf("trigger fired %d times, want 1", sd.Fired(chaos.RowKernel))
	}
	if q := eng.Stats().Quarantines; q != 1 {
		t.Fatalf("quarantines = %d, want 1", q)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after recovered faults: %v", err)
	}
}

// TestChainRetryFusedToStaged arms a persistent fault inside the fused
// pipeline's second product and requires MxMChain's ladder to fall back
// to the staged formulation, still bit-identical to the unfused
// reference.
func TestChainRetryFusedToStaged(t *testing.T) {
	a := RandomGraph("er", 80, 16)
	opts := Defaults()
	ref, err := MxMChain(a, a, a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	var fired atomic.Int64
	opts.chaos = chaos.Func(func(p chaos.Point) chaos.Fault {
		// Fire on every row-kernel crossing; count to prove injection
		// happened.
		if p == chaos.RowKernel {
			fired.Add(1)
			return chaos.Fault{Kind: chaos.KindPanic}
		}
		return chaos.Fault{}
	})
	opts.Fuse = true
	opts.Retry = Retry{MaxAttempts: 3}
	_, err = MxMChain(a, a, a, a, a, opts)
	// Every rung still crosses RowKernel, so a fault that never clears
	// exhausts the budget with a typed error...
	if !errors.Is(err, ErrPanic) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("persistent chain fault: %v, want ErrPanic matching chaos.ErrInjected", err)
	}
	if fired.Load() == 0 {
		t.Fatal("fault never fired")
	}

	// ...while a one-shot fused fault is absorbed by the ladder.
	sd := chaos.NewSeeded(425)
	sd.Arm(chaos.RowKernel, chaos.KindPanic, 2, 0)
	opts.chaos = sd
	got, err := MxMChain(a, a, a, a, a, opts)
	if err != nil {
		t.Fatalf("retried chain: %v", err)
	}
	equalResult(t, ref, got, "chain result")
}
