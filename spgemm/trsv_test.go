package spgemm

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
)

// triMatrix builds a random strictly triangular system with a dense
// nonzero diagonal and locality-skewed off-diagonal fill (near-diagonal
// dependencies are likelier, giving multi-level dependency DAGs).
func triMatrix(t *testing.T, n int, lower bool, seed int64) *Matrix {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := make([]Triple, 0, 8*n)
	for i := 0; i < n; i++ {
		tr = append(tr, Triple{Row: i, Col: i, Val: float64(r.Intn(7) + 2)})
		for j := 0; j < i; j++ {
			if r.Float64() < 1.2/float64(i-j) {
				e := Triple{Row: i, Col: j, Val: 1 + r.Float64()}
				if !lower {
					e.Row, e.Col = e.Col, e.Row
				}
				tr = append(tr, e)
			}
		}
	}
	m, err := FromTriples(n, n, tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rhs(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%17) + 1
	}
	return b
}

func equalVec(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: x[%d] = %v, want %v (bit-identical)", label, i, got[i], want[i])
		}
	}
}

// TestTRSVWavesMatchSerial requires the wave schedule to be
// bit-identical to the serial substitution loop across triangles,
// schedules, and masking, through the public facade.
func TestTRSVWavesMatchSerial(t *testing.T) {
	const n = 300
	b := rhs(n)
	mask := make([]int32, 0, n/2)
	for i := int32(1); int(i) < n; i += 2 {
		mask = append(mask, i)
	}
	for _, lower := range []bool{true, false} {
		tri := TriLower
		if !lower {
			tri = TriUpper
		}
		l := triMatrix(t, n, lower, 7)
		serial := Defaults()
		serial.LevelSchedule = LevelSerial
		for _, m := range [][]int32{nil, mask} {
			want, err := TRSVMasked(l, b, tri, m, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, sched := range []Schedule{SchedDynamic, SchedStatic, SchedGuided} {
				opts := Defaults()
				opts.LevelSchedule = LevelWaves
				opts.Schedule = sched
				opts.Workers = 4
				opts.Engine = NewEngine(EngineConfig{})
				got, err := TRSVMasked(l, b, tri, m, opts)
				if err != nil {
					t.Fatalf("tri=%v sched=%d masked=%v: %v", tri, sched, m != nil, err)
				}
				equalVec(t, want, got, "wave solve")
				// Warm run off the cached plan must agree too.
				got2, err := TRSVMasked(l, b, tri, m, opts)
				if err != nil {
					t.Fatal(err)
				}
				equalVec(t, want, got2, "cached wave solve")
				if err := opts.Engine.SelfCheck(); err != nil {
					t.Fatalf("engine self-check: %v", err)
				}
			}
		}
	}
}

// TestTRSVAutoSchedule runs the default LevelAuto path (model-predicted
// knobs) end to end and checks it agrees with serial.
func TestTRSVAutoSchedule(t *testing.T) {
	l := triMatrix(t, 257, true, 9)
	b := rhs(257)
	serial := Defaults()
	serial.LevelSchedule = LevelSerial
	want, err := TRSV(l, b, TriLower, serial)
	if err != nil {
		t.Fatal(err)
	}
	auto := Defaults()
	auto.Workers = 4
	got, err := TRSV(l, b, TriLower, auto)
	if err != nil {
		t.Fatal(err)
	}
	equalVec(t, want, got, "auto solve")
	// Out-of-mask rows pass b through unchanged.
	masked, err := TRSVMasked(l, b, TriLower, []int32{3, 4, 10}, auto)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range masked {
		if i != 3 && i != 4 && i != 10 && v != b[i] {
			t.Fatalf("out-of-mask row %d rewritten: %v != %v", i, v, b[i])
		}
	}
}

// TestTRSVErrors walks the facade error taxonomy for solves.
func TestTRSVErrors(t *testing.T) {
	l := triMatrix(t, 32, true, 3)
	b := rhs(32)
	opts := Defaults()

	// Upper solve on a lower-triangular operand: wrong-side entries.
	if _, err := TRSV(l, b, TriUpper, opts); !errors.Is(err, ErrNotTriangular) {
		t.Fatalf("wrong triangle: %v, want ErrNotTriangular", err)
	}
	// Missing diagonal.
	sing, err := FromTriples(4, 4, []Triple{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}, {3, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TRSV(sing, rhs(4), TriLower, opts); !errors.Is(err, ErrSingular) {
		t.Fatalf("missing diagonal: %v, want ErrSingular", err)
	}
	// Numerically zero diagonal.
	zero, err := FromTriples(3, 3, []Triple{{0, 0, 1}, {1, 1, 0}, {2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TRSV(zero, rhs(3), TriLower, opts); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero diagonal: %v, want ErrSingular", err)
	}
	// Shape mismatch.
	if _, err := TRSV(l, rhs(5), TriLower, opts); !errors.Is(err, ErrShape) {
		t.Fatalf("short rhs: %v, want ErrShape", err)
	}
	// Bad enums.
	if _, err := TRSV(l, b, Triangle(9), opts); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad triangle: %v, want ErrConfig", err)
	}
	bad := Defaults()
	bad.LevelSchedule = LevelSchedule(9)
	if _, err := TRSV(l, b, TriLower, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad level schedule: %v, want ErrConfig", err)
	}
	// Malformed mask.
	if _, err := TRSVMasked(l, b, TriLower, []int32{5, 2}, opts); !errors.Is(err, ErrInvalidMatrix) {
		t.Fatalf("descending mask: %v, want ErrInvalidMatrix", err)
	}
	// Validated nil operand.
	vo := Defaults()
	vo.ValidateInputs = true
	if _, err := TRSV(nil, b, TriLower, vo); !errors.Is(err, ErrInvalidMatrix) {
		t.Fatalf("nil operand: %v, want ErrInvalidMatrix", err)
	}
}

// TestTRSVWaveBarrierChaos is the seeded chaos-matrix cell for the
// wave-barrier seam: across seeds and fault kinds injected at
// chaos.WaveBarrier, every TRSV outcome must be either a typed error
// matching chaos.ErrInjected or a result bit-identical to the fault-free
// reference — never a silently wrong vector — and the engine pool must
// pass SelfCheck after every injection.
func TestTRSVWaveBarrierChaos(t *testing.T) {
	const n = 300
	l := triMatrix(t, n, true, 21)
	b := rhs(n)
	serial := Defaults()
	serial.LevelSchedule = LevelSerial
	want, err := TRSV(l, b, TriLower, serial)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(EngineConfig{})
	cells := []struct {
		kind  chaos.Kind
		after int64
		delay time.Duration
	}{
		{chaos.KindPanic, 1, 0},
		{chaos.KindPanic, 3, 0},
		{chaos.KindCancel, 2, 0},
		{chaos.KindDelay, 1, 2 * time.Millisecond},
		{chaos.KindDelay, 4, time.Millisecond},
	}
	for _, seed := range []int64{501, 502, 503} {
		for _, cell := range cells {
			sd := chaos.NewSeeded(seed)
			sd.Arm(chaos.WaveBarrier, cell.kind, cell.after, cell.delay)
			opts := Defaults()
			opts.LevelSchedule = LevelWaves
			opts.Workers = 4
			opts.Engine = eng
			opts.chaos = sd
			got, err := TRSV(l, b, TriLower, opts)
			switch {
			case err == nil:
				equalVec(t, want, got, "chaos survivor")
			case errors.Is(err, chaos.ErrInjected):
				if !errors.Is(err, ErrPanic) && !errors.Is(err, ErrCanceled) {
					t.Fatalf("seed=%d kind=%v: untyped injected error %v", seed, cell.kind, err)
				}
			default:
				t.Fatalf("seed=%d kind=%v: non-injected failure %v", seed, cell.kind, err)
			}
			if err := eng.SelfCheck(); err != nil {
				t.Fatalf("seed=%d kind=%v: pool invariants broken: %v", seed, cell.kind, err)
			}
		}
	}
	// The shared engine must still serve clean solves after the storm.
	opts := Defaults()
	opts.LevelSchedule = LevelWaves
	opts.Workers = 4
	opts.Engine = eng
	got, err := TRSV(l, b, TriLower, opts)
	if err != nil {
		t.Fatalf("post-chaos solve: %v", err)
	}
	equalVec(t, want, got, "post-chaos solve")
}
