package spgemm

import (
	"fmt"
	"sync"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/model"
)

// Engine is a shared execution-resource pool: workspaces (accumulators,
// tile staging buffers, dense scratch) and cached structural plans,
// keyed by size class and operand identity. Passing one Engine through
// Options.Engine makes every multiplication that shares it
//
//   - allocation-free in steady state: a warm iterative loop (k-truss
//     rounds, BC pivots, benchmark repetitions) checks the same buffers
//     out of the pool instead of reallocating them, and
//   - safe to run concurrently: each call holds a private workspace, so
//     independent multiplies — including overlapping Multiply calls on
//     one Multiplier — can proceed in parallel goroutines.
//
// An Engine is safe for concurrent use and is intended to be shared
// process-wide (see DefaultEngine) or per serving pool. The zero
// Options (nil Engine) reproduces the one-shot behavior: every call
// builds and discards its own buffers.
type Engine struct {
	eng *exec.Engine
	tel *Telemetry
}

// EngineConfig bounds the Engine's retention. The zero value selects
// the defaults; negative values disable the respective cache.
type EngineConfig struct {
	// MaxIdle caps the workspaces held idle across all size classes
	// (counted retention; overflow falls back to GC-managed storage).
	// 0 = default (64); negative = keep nothing counted.
	MaxIdle int
	// MaxPlans caps the cached structural plans. 0 = default (64);
	// negative = disable plan caching.
	MaxPlans int
	// RetentionBudget is the memory, in bytes, the engine may pin in
	// idle workspaces when MaxIdle is derived from a problem's footprint
	// (NewEngineFor): the idle cap becomes budget / per-workspace bytes.
	// 0 = default (256 MiB); negative is rejected by NewEngineFor.
	// Ignored when MaxIdle is set explicitly, and by plain NewEngine,
	// which has no problem to size against.
	RetentionBudget int64
	// Telemetry, when non-nil, attaches the live-observability registry:
	// every multiplication through this engine feeds its rolling latency
	// histograms and flight recorder, and the engine's pool counters are
	// reported live on /metrics. nil disables live telemetry at zero
	// cost. See Telemetry.
	Telemetry *Telemetry
}

// NewEngine builds an Engine with the given retention bounds.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{
		eng: exec.New(exec.Config{MaxIdle: cfg.MaxIdle, MaxPlans: cfg.MaxPlans}),
		tel: cfg.Telemetry,
	}
	cfg.Telemetry.internal().AttachEngine(e.eng)
	return e
}

// NewEngineFor builds an Engine whose workspace retention is sized for
// the problem C = mask ⊙ (a × b): one structural pass extracts the
// operand features, the per-workspace footprint is estimated from the
// accumulator family opts selects, and the idle cap becomes
// cfg.RetentionBudget divided by that footprint (clamped to at least a
// warm-loop pair and at most the default cap). Explicit cfg.MaxIdle
// overrides the derived cap; cfg.MaxPlans passes through. A negative
// RetentionBudget is rejected with an error matching ErrConfig.
func NewEngineFor(mask, a, b *Matrix, opts Options, cfg EngineConfig) (*Engine, error) {
	if cfg.RetentionBudget < 0 {
		return nil, fmt.Errorf("%w: engine retention budget must be >= 0, got %d",
			ErrConfig, cfg.RetentionBudget)
	}
	f, err := model.Extract(mask.csr, a.csr, b.csr)
	if err != nil {
		return nil, err
	}
	ec := model.PredictEngineBudget(f, opts.config(), opts.Workers, cfg.RetentionBudget)
	if cfg.MaxIdle != 0 {
		ec.MaxIdle = cfg.MaxIdle
	}
	if cfg.MaxPlans != 0 {
		ec.MaxPlans = cfg.MaxPlans
	}
	return NewEngine(EngineConfig{
		MaxIdle:   ec.MaxIdle,
		MaxPlans:  ec.MaxPlans,
		Telemetry: cfg.Telemetry,
	}), nil
}

// PoolStats is a snapshot of an Engine's pool counters. Hits, Misses
// and Steals partition workspace checkouts (a steal recycles a
// compatible larger workspace); Resizes counts in-place growth of a
// recycled workspace; Evictions counts retention-cap demotions;
// PlanHits/PlanMisses partition plan-cache lookups.
type PoolStats = exec.PoolStats

// Stats returns a snapshot of the engine's pool counters. Per-run
// deltas also flow into Options.Stats recorders (the "pool" block of
// the stats JSON).
func (e *Engine) Stats() PoolStats {
	if e == nil {
		return PoolStats{}
	}
	return e.eng.Stats()
}

// Idle reports how many workspaces the engine currently holds in its
// counted idle tier.
func (e *Engine) Idle() int {
	if e == nil {
		return 0
	}
	return e.eng.Idle()
}

// SelfCheck validates the engine's pool invariants: every idle pooled
// workspace must be detached, unpoisoned and reset to its clean state
// (no marked accumulator slots, no touched dense scratch), and the idle
// gauge must match the enumerable population. It returns nil when the
// pool is consistent and a descriptive error naming the first violation
// otherwise. Chaos harnesses call it after every injected fault to
// prove that no corrupted workspace survived into the pool; it is also
// safe (if rarely useful) to call in production, e.g. from a health
// endpoint. A nil engine trivially passes.
func (e *Engine) SelfCheck() error {
	if e == nil {
		return nil
	}
	return e.eng.SelfCheck()
}

// internal returns the exec-layer engine (nil-safe).
func (e *Engine) internal() *exec.Engine {
	if e == nil {
		return nil
	}
	return e.eng
}

// telemetry returns the engine's live-observability registry (nil-safe;
// nil when none was configured).
func (e *Engine) telemetry() *Telemetry {
	if e == nil {
		return nil
	}
	return e.tel
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily constructed process-wide shared
// Engine (default retention bounds). Use it when any shared pool will
// do:
//
//	opts := spgemm.Defaults()
//	opts.Engine = spgemm.DefaultEngine()
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine(EngineConfig{}) })
	return defaultEngine
}
