package spgemm

import (
	"sync"

	"maskedspgemm/internal/exec"
)

// Engine is a shared execution-resource pool: workspaces (accumulators,
// tile staging buffers, dense scratch) and cached structural plans,
// keyed by size class and operand identity. Passing one Engine through
// Options.Engine makes every multiplication that shares it
//
//   - allocation-free in steady state: a warm iterative loop (k-truss
//     rounds, BC pivots, benchmark repetitions) checks the same buffers
//     out of the pool instead of reallocating them, and
//   - safe to run concurrently: each call holds a private workspace, so
//     independent multiplies — including overlapping Multiply calls on
//     one Multiplier — can proceed in parallel goroutines.
//
// An Engine is safe for concurrent use and is intended to be shared
// process-wide (see DefaultEngine) or per serving pool. The zero
// Options (nil Engine) reproduces the one-shot behavior: every call
// builds and discards its own buffers.
type Engine struct {
	eng *exec.Engine
}

// EngineConfig bounds the Engine's retention. The zero value selects
// the defaults; negative values disable the respective cache.
type EngineConfig struct {
	// MaxIdle caps the workspaces held idle across all size classes
	// (counted retention; overflow falls back to GC-managed storage).
	// 0 = default (64); negative = keep nothing counted.
	MaxIdle int
	// MaxPlans caps the cached structural plans. 0 = default (64);
	// negative = disable plan caching.
	MaxPlans int
}

// NewEngine builds an Engine with the given retention bounds.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: exec.New(exec.Config{MaxIdle: cfg.MaxIdle, MaxPlans: cfg.MaxPlans})}
}

// PoolStats is a snapshot of an Engine's pool counters. Hits, Misses
// and Steals partition workspace checkouts (a steal recycles a
// compatible larger workspace); Resizes counts in-place growth of a
// recycled workspace; Evictions counts retention-cap demotions;
// PlanHits/PlanMisses partition plan-cache lookups.
type PoolStats = exec.PoolStats

// Stats returns a snapshot of the engine's pool counters. Per-run
// deltas also flow into Options.Stats recorders (the "pool" block of
// the stats JSON).
func (e *Engine) Stats() PoolStats {
	if e == nil {
		return PoolStats{}
	}
	return e.eng.Stats()
}

// Idle reports how many workspaces the engine currently holds in its
// counted idle tier.
func (e *Engine) Idle() int {
	if e == nil {
		return 0
	}
	return e.eng.Idle()
}

// internal returns the exec-layer engine (nil-safe).
func (e *Engine) internal() *exec.Engine {
	if e == nil {
		return nil
	}
	return e.eng
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily constructed process-wide shared
// Engine (default retention bounds). Use it when any shared pool will
// do:
//
//	opts := spgemm.Defaults()
//	opts.Engine = spgemm.DefaultEngine()
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine(EngineConfig{}) })
	return defaultEngine
}
