package spgemm

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/model"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Triangle selects which triangle of the operand a triangular solve
// reads: TriLower is forward substitution, TriUpper backward.
type Triangle int

const (
	// TriLower solves with the lower triangle (forward substitution).
	TriLower Triangle = iota
	// TriUpper solves with the upper triangle (backward substitution).
	TriUpper
)

// LevelSchedule selects how a triangular solve is executed — see
// Options.LevelSchedule.
type LevelSchedule int

const (
	// LevelAuto extracts cheap structural features (row work, banded
	// fraction) and picks waves or serial per call — the execution-time
	// tuning the paper's conclusion calls for, applied to SpTRSV.
	LevelAuto LevelSchedule = iota
	// LevelWaves forces the dependency-wave schedule: level sets
	// coarsened into FLOP-balanced tile waves, executed by the
	// persistent worker pool with barriers between waves.
	LevelWaves
	// LevelSerial forces the single-worker substitution loop.
	LevelSerial
)

// TRSV solves op(L)·x = b by sparse triangular solve and returns x.
// l must be square with the selected triangle populated (a structurally
// missing or numerically zero diagonal returns ErrSingular; an entry on
// the wrong side of the diagonal returns ErrNotTriangular). The
// dependency-wave schedule is bit-identical to serial substitution —
// each row is summed in CSR order by exactly one worker — so results do
// not vary with Workers or Schedule.
//
// The level-set plan is cached on opts.Engine keyed by the operand's
// structure, so iterative solves against a fixed matrix plan once; warm
// engine-backed solves allocate nothing on the substitution path.
func TRSV(l *Matrix, b []float64, tri Triangle, opts Options) ([]float64, error) {
	return TRSVMasked(l, b, tri, nil, opts)
}

// TRSVMasked is TRSV restricted to a structural row mask (sorted,
// duplicate-free row indices): the solve runs on the principal
// submatrix l[mask, mask] — the masked SpTRSV analogue of the package's
// masked products — and rows outside the mask pass b through unchanged.
// A nil (or empty) mask solves every row.
func TRSVMasked(l *Matrix, b []float64, tri Triangle, mask []int32, opts Options) (_ []float64, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(), namedOperand{"l", l}); err != nil {
			return nil, err
		}
	}
	cfg := opts.config()
	so, err := opts.solveOpts(l.csr, tri, mask)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	if err := core.SolveTriInto[float64, semiring.PlusTimes[float64]](
		semiring.PlusTimes[float64]{}, x, l.csr, b, cfg, so); err != nil {
		return nil, err
	}
	return x, nil
}

// solveOpts translates the facade surface to core.SolveOpts: the
// triangle, the mask (rewrapped to the internal index type), and —
// under LevelAuto — the model layer's execution-time knob prediction
// (wave grain from the row-work distribution, serial crossover raised
// for chain-dominated banded systems).
func (o Options) solveOpts(l *sparse.CSR[float64], tri Triangle, mask []int32) (core.SolveOpts, error) {
	so := core.SolveOpts{}
	switch tri {
	case TriLower:
		so.Tri = core.Lower
	case TriUpper:
		so.Tri = core.Upper
	default:
		return so, fmt.Errorf("%w: unknown triangle %d", ErrConfig, tri)
	}
	if len(mask) > 0 {
		idx := make([]sparse.Index, len(mask))
		for i, r := range mask {
			idx[i] = sparse.Index(r)
		}
		so.Mask = idx
	}
	switch o.LevelSchedule {
	case LevelWaves:
		so.Mode = core.SolveWaves
	case LevelSerial:
		so.Mode = core.SolveSerial
	case LevelAuto:
		so.Mode = core.SolveAuto
		f := model.ExtractSolve(l, so.Mask)
		pred, _ := model.PredictSolve(f, model.DefaultSolveThresholds(), o.Workers)
		so.WaveGrain = pred.WaveGrain
		so.MergeBelow = pred.MergeBelow
		so.SerialBelow = pred.SerialBelow
	default:
		return so, fmt.Errorf("%w: unknown level schedule %d", ErrConfig, o.LevelSchedule)
	}
	return so, nil
}
