package spgemm_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"maskedspgemm/spgemm"
)

func bowtie(t *testing.T) *spgemm.Matrix {
	t.Helper()
	a, err := spgemm.FromEdges(5, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3}, {3, 4}, {4, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFromEdges(t *testing.T) {
	a := bowtie(t)
	if a.Rows() != 5 || a.Cols() != 5 || a.NNZ() != 12 {
		t.Fatalf("shape %dx%d nnz %d", a.Rows(), a.Cols(), a.NNZ())
	}
	if !a.Has(0, 1) || !a.Has(1, 0) {
		t.Error("edges must be stored in both directions")
	}
	if a.Has(0, 0) {
		t.Error("self loop stored")
	}
	if _, err := spgemm.FromEdges(3, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	// Self-loops are silently dropped; duplicates collapse.
	b, err := spgemm.FromEdges(3, [][2]int{{1, 1}, {0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != 2 || b.At(0, 1) != 1 {
		t.Errorf("dedup wrong: nnz=%d val=%v", b.NNZ(), b.At(0, 1))
	}
}

func TestFromTriples(t *testing.T) {
	m, err := spgemm.FromTriples(2, 3, []spgemm.Triple{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 4}, // duplicate sums
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 6 || m.At(1, 2) != 3 {
		t.Error("values wrong")
	}
	if _, err := spgemm.FromTriples(2, 2, []spgemm.Triple{{5, 0, 1}}); err == nil {
		t.Error("out-of-range triple accepted")
	}
	if _, err := spgemm.FromTriples(-1, 2, nil); err == nil {
		t.Error("negative shape accepted")
	}
}

func TestMxMAgainstTwoStep(t *testing.T) {
	a := spgemm.RandomGraph("er", 80, 3)
	fused, err := spgemm.MxM(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	full, err := spgemm.MxMUnmasked(a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	twoStep, err := spgemm.ApplyMask(a, full)
	if err != nil {
		t.Fatal(err)
	}
	if !fused.Equal(twoStep) {
		t.Error("fused masked product differs from two-step")
	}
}

func TestMxMComplement(t *testing.T) {
	a := spgemm.RandomGraph("er", 60, 11)
	masked, err := spgemm.MxM(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := spgemm.MxMComplement(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	full, err := spgemm.MxMUnmasked(a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if masked.NNZ()+comp.NNZ() != full.NNZ() {
		t.Errorf("masked (%d) + complement (%d) != full (%d)",
			masked.NNZ(), comp.NNZ(), full.NNZ())
	}
}

func TestGraphAlgorithmsOnFacade(t *testing.T) {
	a := spgemm.RandomGraph("er", 50, 13)
	labels, comps, err := spgemm.ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != a.Rows() || comps < 1 {
		t.Errorf("CC: %d labels, %d components", len(labels), comps)
	}
	dist, err := spgemm.ShortestPaths(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Errorf("dist[src] = %v", dist[0])
	}
	ranks, err := spgemm.PageRank(a, 0.85, 1e-8, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("pagerank sum %v", sum)
	}
	opts, err := spgemm.PredictOptions(a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spgemm.MxM(a, a, a, opts); err != nil {
		t.Errorf("predicted options do not run: %v", err)
	}
}

func TestValuedMask(t *testing.T) {
	// A mask with an explicit zero: structural semantics allow the
	// position, valued semantics exclude it.
	a, _ := spgemm.FromTriples(2, 2, []spgemm.Triple{
		{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1},
	})
	mask, _ := spgemm.FromTriples(2, 2, []spgemm.Triple{
		{0, 0, 0}, // explicit zero
		{0, 1, 1},
	})
	structural, err := spgemm.MxM(mask, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if structural.NNZ() != 2 {
		t.Errorf("structural mask kept %d entries, want 2", structural.NNZ())
	}
	opts := spgemm.Defaults()
	opts.ValuedMask = true
	valued, err := spgemm.MxM(mask, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if valued.NNZ() != 1 || !valued.Has(0, 1) {
		t.Errorf("valued mask kept %d entries, want only (0,1)", valued.NNZ())
	}
}

func TestMultiplierFacade(t *testing.T) {
	a := spgemm.RandomGraph("er", 70, 21)
	want, err := spgemm.MxM(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	mu, err := spgemm.NewMultiplier(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("rep %d differs from MxM", rep)
		}
	}
	b := spgemm.RandomGraph("er", 30, 22)
	if _, err := spgemm.NewMultiplier(a, a, b, spgemm.Defaults()); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestEWiseOps(t *testing.T) {
	a, _ := spgemm.FromTriples(2, 2, []spgemm.Triple{{0, 0, 1}, {0, 1, 2}})
	b, _ := spgemm.FromTriples(2, 2, []spgemm.Triple{{0, 1, 3}, {1, 1, 4}})
	sum, err := spgemm.EWiseAdd(a, b, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if sum.NNZ() != 3 || sum.At(0, 1) != 5 || sum.At(0, 0) != 1 || sum.At(1, 1) != 4 {
		t.Errorf("EWiseAdd wrong: nnz=%d", sum.NNZ())
	}
	prod, err := spgemm.EWiseMult(a, b, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if prod.NNZ() != 1 || prod.At(0, 1) != 6 {
		t.Errorf("EWiseMult wrong: nnz=%d", prod.NNZ())
	}
	idx, vals := spgemm.ReduceRows(a)
	if len(idx) != 1 || idx[0] != 0 || vals[0] != 3 {
		t.Errorf("ReduceRows = %v %v", idx, vals)
	}
}

func TestMxMSemirings(t *testing.T) {
	a := bowtie(t)
	for _, sr := range []spgemm.Semiring{spgemm.SRPlusTimes, spgemm.SRPlusPair, spgemm.SROrAnd} {
		o := spgemm.Defaults()
		o.Semiring = sr
		c, err := spgemm.MxM(a, a, a, o)
		if err != nil {
			t.Fatalf("semiring %d: %v", sr, err)
		}
		if c.NNZ() == 0 {
			t.Errorf("semiring %d: empty result", sr)
		}
	}
}

func TestTriangleCounts(t *testing.T) {
	a := bowtie(t)
	n, err := spgemm.TriangleCount(a, spgemm.Defaults())
	if err != nil || n != 2 {
		t.Errorf("TriangleCount = %d (%v), want 2", n, err)
	}
	ll, err := spgemm.TriangleCountLL(a, spgemm.Defaults())
	if err != nil || ll != 2 {
		t.Errorf("TriangleCountLL = %d (%v), want 2", ll, err)
	}
}

func TestKTruss(t *testing.T) {
	a := bowtie(t)
	truss, rounds, err := spgemm.KTruss(a, 3, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 || truss.NNZ() != 12 {
		t.Errorf("3-truss of bowtie: nnz=%d rounds=%d, want 12 edges kept", truss.NNZ(), rounds)
	}
	empty, _, err := spgemm.KTruss(a, 4, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if empty.NNZ() != 0 {
		t.Error("4-truss of bowtie must be empty")
	}
}

func TestBFSAndBC(t *testing.T) {
	a := bowtie(t)
	levels, err := spgemm.BFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 1, 2, 2}
	for v, l := range levels {
		if l != want[v] {
			t.Errorf("level[%d] = %d, want %d", v, l, want[v])
		}
	}
	bc, err := spgemm.BetweennessCentrality(a, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 2 is the cut vertex: strictly the most central.
	for v := range bc {
		if v != 2 && bc[v] >= bc[2] {
			t.Errorf("bc[%d]=%.1f >= bc[2]=%.1f", v, bc[v], bc[2])
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := spgemm.RandomGraph("er", 40, 9)
	var buf bytes.Buffer
	if err := a.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := spgemm.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Error("round trip changed matrix")
	}
	if _, err := spgemm.ReadMatrixMarket(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMatrixTransforms(t *testing.T) {
	a := bowtie(t)
	if !a.Transpose().Equal(a) {
		t.Error("symmetric graph transpose differs")
	}
	l, u := a.Tril(), a.Triu()
	if l.NNZ()+u.NNZ() != a.NNZ() {
		t.Error("tril+triu lost entries")
	}
	if !l.Transpose().Equal(u.Pattern()) && !l.Transpose().Equal(u) {
		t.Error("tril^T != triu for symmetric graph")
	}
	s := a.Stats()
	if !s.Symmetric || s.Rows != 5 {
		t.Errorf("stats wrong: %+v", s)
	}
	// Row copies must be detached from internal storage.
	cols, vals := a.Row(2)
	if len(cols) != 4 || len(vals) != 4 {
		t.Errorf("Row(2) = %v %v", cols, vals)
	}
	cols[0] = 99
	cols2, _ := a.Row(2)
	if cols2[0] == 99 {
		t.Error("Row returned aliased storage")
	}
}

func TestRandomGraphKinds(t *testing.T) {
	for _, kind := range []string{"rmat", "road", "web", "circuit", "er"} {
		g := spgemm.RandomGraph(kind, 300, 5)
		if g.NNZ() == 0 {
			t.Errorf("%s: empty graph", kind)
		}
		if g.Rows() < 300 {
			t.Errorf("%s: %d vertices, want >= 300", kind, g.Rows())
		}
	}
}

func TestTuneRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning is not short")
	}
	a := spgemm.RandomGraph("er", 400, 17)
	opts, err := spgemm.Tune(a, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The tuned options must run and agree with defaults.
	n1, err := spgemm.TriangleCount(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := spgemm.TriangleCount(a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("tuned options changed the answer: %d vs %d", n1, n2)
	}
}

func TestMxMShapeErrors(t *testing.T) {
	a := spgemm.RandomGraph("er", 20, 1)
	b := spgemm.RandomGraph("er", 30, 1)
	if _, err := spgemm.MxM(a, a, b, spgemm.Defaults()); err == nil {
		t.Error("shape mismatch accepted")
	}
	bad := spgemm.Defaults()
	bad.MarkerBits = 5
	if _, err := spgemm.MxM(a, a, a, bad); err == nil {
		t.Error("invalid options accepted")
	}
}
