package spgemm

import (
	"fmt"
	"runtime/debug"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
)

// The package's error taxonomy. Every error returned by the public API
// wraps exactly one of these sentinels, so callers can dispatch with
// errors.Is without parsing messages. See docs/ERRORS.md for the full
// contract.
var (
	// ErrShape marks operand dimension mismatches (a is m×k, b is k×n,
	// mask is m×n).
	ErrShape = sparse.ErrShape
	// ErrConfig marks invalid Options: unknown enum values, negative
	// worker counts, non-positive tile counts, bad marker widths.
	ErrConfig = core.ErrConfig
	// ErrInvalidMatrix marks operands that violate the CSR invariants
	// (detected when Options.ValidateInputs is set, or by Matrix input
	// readers on malformed files).
	ErrInvalidMatrix = core.ErrInvalidMatrix
	// ErrCanceled marks a multiplication stopped by its context. The
	// chain also matches the context's own error (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = core.ErrCanceled
	// ErrPanic marks a panic inside the kernel that was contained and
	// converted to an error. The chain carries a *PanicError with the
	// original panic value and stack.
	ErrPanic = core.ErrPanic
	// ErrConcurrentMultiply marks overlapping Multiply calls on a
	// Multiplier built without an Engine: the engineless plan owns a
	// single workspace, so a second concurrent call is rejected instead
	// of racing. Set Options.Engine to serve concurrent multiplies.
	ErrConcurrentMultiply = core.ErrConcurrentMultiply
	// ErrStalled marks a run stopped by the Options.StallTimeout
	// watchdog: no tile completed for a full timeout window. The chain
	// carries a *StallError with the progress count and the stacks of
	// every goroutine at verdict time.
	ErrStalled = core.ErrStalled
	// ErrSingular marks a triangular solve whose operand has a
	// structurally missing or numerically zero diagonal entry on a
	// solved row; the message names the row.
	ErrSingular = core.ErrSingular
	// ErrNotTriangular marks a triangular solve whose operand has an
	// in-mask entry on the wrong side of the diagonal for the selected
	// triangle.
	ErrNotTriangular = core.ErrNotTriangular
)

// PanicError is the typed capture of a contained kernel panic:
// errors.As(err, &pe) on an ErrPanic chain recovers the original panic
// value, the worker that hit it, and its stack trace.
type PanicError = sched.PanicError

// StallError is the typed capture of a stall-watchdog verdict:
// errors.As(err, &se) on an ErrStalled chain recovers the configured
// timeout, the tile progress at verdict time, and the stacks of every
// goroutine — including the stuck workers.
type StallError = sched.StallError

// recoverAsError converts a panic on the calling goroutine into an
// ErrPanic-wrapped error. The scheduler already contains worker-side
// panics; this guard covers the serial paths that run below the
// parallel cutoffs on the caller's own goroutine, so no panic at all
// can escape the public API for malformed (unsafe-free) inputs.
func recoverAsError(err *error) {
	if r := recover(); r != nil {
		pe := &PanicError{Value: r, Stack: debug.Stack(), Worker: -1}
		*err = fmt.Errorf("%w: %w", ErrPanic, pe)
	}
}

// validateInputs runs the full CSR invariant check over each named
// operand, parallelized across the plan workers. Any violation is
// reported as ErrInvalidMatrix naming the offending operand.
func validateInputs(p int, operands ...namedOperand) error {
	for _, op := range operands {
		if op.m == nil || op.m.csr == nil {
			return fmt.Errorf("%w: %s is nil", ErrInvalidMatrix, op.name)
		}
		if err := op.m.csr.CheckParallel(p); err != nil {
			return fmt.Errorf("%w: %s: %w", ErrInvalidMatrix, op.name, err)
		}
	}
	return nil
}

type namedOperand struct {
	name string
	m    *Matrix
}
