package spgemm

import (
	"context"
	"errors"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sparse"
)

// Retry is the automatic re-execution policy applied by MxM, MxMChain
// and Multiplier.Multiply when Options.Retry is set. Only transient
// failures are retried — contained kernel panics (ErrPanic),
// stall-watchdog verdicts (ErrStalled) and injected faults; real
// cancellation, shape, configuration and input-validation errors return
// immediately.
//
// Unless NoDegrade is set, each retry descends one rung of the
// degradation ladder, trading throughput for isolation from whatever
// tripped the previous attempt:
//
//	attempt 1   the configured path, as tuned
//	attempt 2   serial: one worker, one plan worker, static schedule
//	attempt 3+  additionally unfused (chains run staged) and unpooled
//	            (no Engine — fresh buffers, no shared workspace state)
//
// The final rung shares nothing mutable with other runs, so a fault
// rooted in concurrency, fusion staging or pooled-workspace state
// cannot recur there. Results on every rung are bit-identical to the
// configured path. Attempt outcomes are recorded in the stats/v1 retry
// block when a StatsRecorder is attached.
type Retry struct {
	// MaxAttempts is the total execution budget, first try included.
	// 0 or 1 disables retrying.
	MaxAttempts int
	// Backoff is the wait before the second attempt, doubling on each
	// subsequent one. The wait observes Options.Context. 0 retries
	// immediately.
	Backoff time.Duration
	// NoDegrade retries on the configured path instead of descending
	// the degradation ladder — for callers that would rather fail than
	// run serially.
	NoDegrade bool
}

// retryable reports whether err is a transient failure the retry
// ladder may re-attempt. Real cancellation is not retryable — the
// caller asked the run to stop — but a spurious injected cancel (which
// also matches chaos.ErrInjected) is.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrPanic), errors.Is(err, ErrStalled):
		return true
	case errors.Is(err, ErrCanceled):
		return errors.Is(err, chaos.ErrInjected)
	}
	return false
}

// degradeOptions returns the options for retry attempt `try` (1-based
// over retries): rung one forces the serial path, rung two and beyond
// additionally drop fusion and the engine. Adaptive κ is disabled on
// every degraded rung — a degraded run measures a different execution
// path and must not steer the estimator.
func degradeOptions(opts Options, try int) Options {
	o := opts
	o.Workers, o.PlanWorkers = 1, 1
	o.Schedule = SchedStatic
	o.AdaptiveKappa = false
	if try >= 2 {
		o.Fuse = false
		o.Engine = nil
	}
	return o
}

// retryLoop drives Options.Retry around attempt: the first try runs
// with the configured options, each retry re-runs with the next rung's
// degraded options, with a doubling context-aware backoff in between.
// Retry counters are recorded only when a retry policy is configured,
// so plain calls leave the stats/v1 retry block untouched.
func retryLoop(opts Options, attempt func(Options) (*sparse.CSR[float64], error)) (*sparse.CSR[float64], error) {
	budget := opts.Retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	rec := opts.recorder()
	record := opts.Retry.MaxAttempts > 1
	backoff := opts.Retry.Backoff
	var lastErr error
	for try := 0; try < budget; try++ {
		o := opts
		if try > 0 && !opts.Retry.NoDegrade {
			o = degradeOptions(opts, try)
		}
		c, err := attempt(o)
		if record {
			rec.AddRetry(obs.RetryCounters{
				Attempts:     1,
				Retries:      b2i(try > 0),
				Degradations: b2i(try > 0 && !opts.Retry.NoDegrade),
				Stalls:       b2i(errors.Is(err, ErrStalled)),
			})
		}
		if err == nil {
			return c, nil
		}
		lastErr = err
		if !retryable(err) || try == budget-1 {
			break
		}
		if backoff > 0 {
			if sleepCtx(opts.Context, backoff) != nil {
				break
			}
			backoff *= 2
		}
	}
	if record {
		rec.AddRetry(obs.RetryCounters{Failures: 1})
	}
	dumpOnFailure(opts.Engine.telemetry(), opts.Retry, lastErr)
	return nil, lastErr
}

// dumpOnFailure writes the flight recorder's event window to disk when
// a multiplication fails terminally: always on a stall or contained
// panic, and on any retryable failure once a configured retry ladder
// has exhausted its budget. Dump-write errors are swallowed — the
// multiply's own error must surface undisturbed, and a broken dump
// path has no other channel here. No-op without telemetry.
func dumpOnFailure(tel *Telemetry, r Retry, err error) {
	if tel == nil || err == nil {
		return
	}
	switch {
	case errors.Is(err, ErrStalled), errors.Is(err, ErrPanic):
	case r.MaxAttempts > 1 && retryable(err):
	default:
		return
	}
	_, _ = tel.internal().DumpFailure("", err)
}

// sleepCtx waits d, returning early with the context's error if ctx is
// done first. A nil ctx waits unconditionally.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
