package spgemm_test

import (
	"bytes"
	"strings"
	"testing"

	"maskedspgemm/spgemm"
)

// TestStatsRecorderThroughMxM attaches a recorder to a plain MxM call
// and checks the snapshot carries exact totals and a valid JSON form.
func TestStatsRecorderThroughMxM(t *testing.T) {
	a := spgemm.RandomGraph("rmat", 256, 7)
	opts := spgemm.Defaults()
	opts.Tiles = 16
	opts.Stats = spgemm.NewStatsRecorder()
	c, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := opts.Stats.Stats()
	if st.Runs != 1 {
		t.Fatalf("runs = %d, want 1", st.Runs)
	}
	if st.Totals.Rows != int64(a.Rows()) {
		t.Fatalf("rows = %d, want %d", st.Totals.Rows, a.Rows())
	}
	if st.Totals.Gathered != c.NNZ() {
		t.Fatalf("gathered = %d, want C nnz %d", st.Totals.Gathered, c.NNZ())
	}
	if st.Totals.CoIterPicks+st.Totals.LinearPicks == 0 {
		t.Fatal("hybrid run recorded no Eq. 3 decisions")
	}
	var kernelSpanned bool
	for _, p := range st.Phases {
		if p.Phase == "exec.kernel" && p.Count == 1 {
			kernelSpanned = true
		}
	}
	if !kernelSpanned {
		t.Fatalf("exec.kernel span missing: %+v", st.Phases)
	}

	data, err := spgemm.MarshalStatsJSON(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := spgemm.ValidateStatsJSON(data); err != nil {
		t.Fatalf("stats JSON failed validation: %v", err)
	}
	var buf bytes.Buffer
	spgemm.WriteStatsTable(&buf, st)
	if !strings.Contains(buf.String(), "exec.kernel") {
		t.Fatalf("table output missing phases:\n%s", buf.String())
	}
}

// TestMultiplierLastStats checks the per-call isolation of LastStats
// while the recorder keeps running totals.
func TestMultiplierLastStats(t *testing.T) {
	a := spgemm.RandomGraph("er", 200, 3)
	opts := spgemm.Defaults()
	opts.Tiles = 8
	opts.Stats = spgemm.NewStatsRecorder()
	mu, err := spgemm.NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mu.LastStats(); ok {
		t.Fatal("LastStats reported ok before any run")
	}
	var c *spgemm.Matrix
	for i := 0; i < 3; i++ {
		if c, err = mu.Multiply(); err != nil {
			t.Fatal(err)
		}
	}
	last, ok := mu.LastStats()
	if !ok {
		t.Fatal("LastStats not available after runs")
	}
	if last.Runs != 1 {
		t.Fatalf("last snapshot covers %d runs, want 1", last.Runs)
	}
	if last.Totals.Gathered != c.NNZ() {
		t.Fatalf("last gathered = %d, want %d", last.Totals.Gathered, c.NNZ())
	}
	total := opts.Stats.Stats()
	if total.Runs != 3 {
		t.Fatalf("recorder totals cover %d runs, want 3", total.Runs)
	}
	if total.Totals.Gathered != 3*c.NNZ() {
		t.Fatalf("recorder gathered = %d, want %d", total.Totals.Gathered, 3*c.NNZ())
	}
	opts.Stats.Reset()
	if st := opts.Stats.Stats(); st.Runs != 0 || st.Totals.Gathered != 0 {
		t.Fatalf("reset left data behind: %+v", st)
	}
}

// TestNilStatsRecorder checks the disabled path end to end: nil
// Options.Stats must run identically and a nil *StatsRecorder must be
// safe to query.
func TestNilStatsRecorder(t *testing.T) {
	var nilRec *spgemm.StatsRecorder
	nilRec.Reset()
	st := nilRec.Stats()
	if st.Schema != spgemm.StatsSchema {
		t.Fatalf("nil snapshot schema %q", st.Schema)
	}
	if st.Runs != 0 || len(st.Phases) != 0 || len(st.Workers) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", st)
	}
	a := spgemm.RandomGraph("er", 100, 1)
	opts := spgemm.Defaults()
	opts.Stats = nil
	if _, err := spgemm.MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
}
