package spgemm

import (
	"context"
	"time"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/tiling"
)

// Iteration selects how the multiplication and mask are traversed
// together — the paper's §III-B dimension.
type Iteration int

const (
	// IterVanilla accumulates the full product, masking afterwards.
	IterVanilla Iteration = iota
	// IterMaskLoad loads the mask first and filters updates against it.
	IterMaskLoad
	// IterCoIter binary-searches B rows for the mask's columns.
	IterCoIter
	// IterHybrid switches per row-pair using the κ cost model — the
	// paper's recommended push-pull strategy.
	IterHybrid
)

// Accumulator selects the per-row accumulator family — §III-C.
type Accumulator int

const (
	// AccHash is the open-addressing hash accumulator (space ∝ mask row).
	AccHash Accumulator = iota
	// AccDense is the size-n marker-vector accumulator.
	AccDense
)

// TilingStrategy selects how output rows are split into tiles — §III-A.
type TilingStrategy int

const (
	// TileFlopBalanced balances the Eq. 2 work estimate across tiles.
	TileFlopBalanced TilingStrategy = iota
	// TileUniform gives every tile the same number of rows.
	TileUniform
)

// Schedule selects how tiles are assigned to workers.
type Schedule int

const (
	// SchedDynamic lets workers claim tiles from a shared queue.
	SchedDynamic Schedule = iota
	// SchedStatic pre-assigns tiles round-robin.
	SchedStatic
	// SchedGuided lets workers claim geometrically shrinking chunks of
	// tiles (remaining/P per claim, bounded below by GuidedMinChunk) —
	// OpenMP's schedule(guided). At high tile counts it keeps dynamic
	// balance while paying far fewer atomic operations than SchedDynamic.
	SchedGuided
)

// Semiring selects the algebra of the multiplication.
type Semiring int

const (
	// SRPlusTimes is ordinary (+, ×) arithmetic.
	SRPlusTimes Semiring = iota
	// SRPlusPair counts structural matches: x⊗y = 1.
	SRPlusPair
	// SROrAnd is the Boolean semiring over nonzero-is-true values.
	SROrAnd
)

// Options is the kernel tuning surface. The zero value is NOT valid;
// start from Defaults.
type Options struct {
	// Iteration space (§III-B). Default IterHybrid.
	Iteration Iteration
	// Kappa is the co-iteration factor κ for IterHybrid. Default 1.
	Kappa float64
	// Accumulator family (§III-C). Default AccHash.
	Accumulator Accumulator
	// MarkerBits is the accumulator reset-marker width: 8/16/32/64.
	MarkerBits int
	// Tiles is the number of row tiles. Default 2048.
	Tiles int
	// Tiling strategy (§III-A). Default TileFlopBalanced.
	Tiling TilingStrategy
	// Schedule policy. Default SchedDynamic.
	Schedule Schedule
	// LevelSchedule selects how TRSV executes its dependency levels:
	// LevelAuto (default) predicts waves vs. serial from the operand
	// structure, LevelWaves forces the coarsened wave schedule,
	// LevelSerial forces the substitution loop. Ignored by MxM.
	LevelSchedule LevelSchedule
	// Workers is the goroutine pool size; 0 = GOMAXPROCS.
	Workers int
	// PlanWorkers is the goroutine count for plan construction and
	// result assembly (work estimation, tile balancing, CSR stitching);
	// 0 = same as Workers.
	PlanWorkers int
	// GuidedMinChunk is the smallest tile batch a worker claims under
	// SchedGuided; 0 = 1. Ignored by the other schedules.
	GuidedMinChunk int
	// Semiring is the multiplication algebra. Default SRPlusTimes.
	Semiring Semiring
	// Fuse enables the tile-granular fused pipeline for chained
	// products: MxMChain streams each tile of its first product into the
	// second while hot instead of materializing the intermediate matrix,
	// and the algorithm wrappers with fused formulations (KTruss's
	// support-and-prune round, BetweennessCentralityBatch's backward
	// sweep) use them. Results are bit-identical to the unfused paths;
	// only intermediate allocations and locality change.
	Fuse bool
	// FuseTileBudget caps the bytes a fused chain may stage per tile for
	// the intermediate product; tiles whose Eq. 2-estimated footprint
	// exceeds it degrade to row-at-a-time streaming. 0 = 1 MiB;
	// negative is invalid. Only consulted when Fuse is set.
	FuseTileBudget int64
	// AdaptiveKappa turns on online recalibration of the co-iteration
	// factor κ: every hybrid-iteration run through an Engine feeds its
	// measured cost back into a per-operand-family estimator (cached on
	// the Engine) that brackets the current κ, recenters on cheaper
	// neighbors, and periodically audits itself against the static
	// Kappa — snapping back if adaptation ever loses to it. Requires a
	// non-nil Engine (the estimator must persist between calls) and
	// IterHybrid; otherwise it is ignored.
	AdaptiveKappa bool
	// ValuedMask switches the mask from structural semantics (any stored
	// entry allows the position — GraphBLAS GrB_STRUCTURE, the paper's
	// setting) to valued semantics (the stored value must be nonzero).
	ValuedMask bool
	// Context, when non-nil, makes the multiplication cooperatively
	// cancellable: workers observe cancellation between tile claims and
	// the call returns an error matching ErrCanceled (and the context's
	// own error). nil runs to completion. Cancellation checks are
	// amortized per scheduling chunk, so an uncancelled run with a
	// context costs the same as one without.
	Context context.Context
	// Engine, when non-nil, pools workspaces and caches structural plans
	// across every call that shares it, making warm iterative loops
	// allocation-free and concurrent multiplies safe — see Engine and
	// DefaultEngine. nil builds and discards buffers per call (and per
	// Multiplier), the one-shot behavior.
	Engine *Engine
	// Stats, when non-nil, records observability data for every run
	// under these options: phase wall times, exact per-worker counters
	// with load-imbalance summaries, hybrid-decision counts and
	// accumulator statistics — see StatsRecorder. nil disables all
	// collection at zero cost.
	Stats *StatsRecorder
	// ValidateInputs runs the full CSR invariant check (sorted
	// duplicate-free rows, in-range indices, monotone row pointers) on
	// every operand before multiplying, returning ErrInvalidMatrix on
	// violation. The check is O(nnz) and parallelized over PlanWorkers;
	// enable it at trust boundaries (user-supplied files), skip it in
	// inner loops over matrices this package built itself.
	ValidateInputs bool
	// Retry re-executes a multiplication after transient failures —
	// contained panics (ErrPanic), stall-watchdog verdicts (ErrStalled)
	// and injected faults — descending a degradation ladder so the
	// retried attempt cannot trip over the same concurrency, fusion or
	// pooled state: parallel → serial, fused → staged, pooled →
	// unpooled. The zero value disables retrying. See docs/RESILIENCE.md
	// for the full taxonomy and ladder.
	Retry Retry
	// StallTimeout, when positive, arms a watchdog on every scheduled
	// phase: if no tile completes for a full window, the run is stopped
	// and reported as ErrStalled with the stacks of all goroutines at
	// verdict time. The watchdog detects rather than preempts — a worker
	// hung in non-cooperative code still holds its goroutine — but the
	// typed error lets callers (and Options.Retry) respond instead of
	// blocking forever on a lost workspace. 0 disables the watchdog.
	StallTimeout time.Duration

	// chaos, when non-nil, arms the deterministic fault-injection seams
	// throughout the execution layers. Set only by this package's tests
	// and the chaos harness (the injector type is internal); production
	// callers leave it nil, which compiles every seam down to one
	// pointer comparison.
	chaos chaos.Injector
}

// Defaults returns the paper's recommended configuration (§V): hybrid
// iteration with κ=1, hash accumulator with 32-bit markers, 2048
// FLOP-balanced tiles, dynamic scheduling.
func Defaults() Options {
	return Options{
		Iteration:   IterHybrid,
		Kappa:       1,
		Accumulator: AccHash,
		MarkerBits:  32,
		Tiles:       2048,
		Tiling:      TileFlopBalanced,
		Schedule:    SchedDynamic,
	}
}

// recorder resolves the obs recorder every run under these options
// records into: the attached StatsRecorder's, or — when the engine
// carries live telemetry but no StatsRecorder is attached — the
// telemetry registry's own fallback recorder, so /metrics works with
// zero configuration beyond EngineConfig.Telemetry. nil (no recorder,
// no telemetry) disables collection as before.
func (o Options) recorder() *obs.Recorder {
	if r := o.Stats.recorder(); r != nil {
		return r
	}
	return o.Engine.telemetry().recorder()
}

// config translates Options to the internal kernel configuration.
func (o Options) config() core.Config {
	tel := o.Engine.telemetry()
	// A user recorder under a telemetry-carrying engine feeds the live
	// registry too (AttachRecorder installs the sink; idempotent).
	if tel != nil && o.Stats != nil {
		tel.AttachRecorder(o.Stats)
	}
	cfg := core.Config{
		Kappa:          o.Kappa,
		MarkerBits:     o.MarkerBits,
		Tiles:          o.Tiles,
		Workers:        o.Workers,
		PlanWorkers:    o.PlanWorkers,
		GuidedMinChunk: o.GuidedMinChunk,
		FuseTileBudget: o.FuseTileBudget,
		Context:        o.Context,
		Engine:         o.Engine.internal(),
		Recorder:       o.recorder(),
	}
	if o.chaos != nil || o.StallTimeout != 0 {
		// The telemetry tap records every armed chaos decision as an
		// EventChaos in the flight recorder before the fault executes.
		cfg.Resilience = &core.Resilience{
			Chaos:        tel.internal().WrapInjector(o.chaos),
			StallTimeout: o.StallTimeout,
		}
	}
	switch o.Iteration {
	case IterVanilla:
		cfg.Iteration = core.Vanilla
	case IterMaskLoad:
		cfg.Iteration = core.MaskLoad
	case IterCoIter:
		cfg.Iteration = core.CoIter
	default:
		cfg.Iteration = core.Hybrid
	}
	switch o.Accumulator {
	case AccDense:
		cfg.Accumulator = accum.DenseKind
	default:
		cfg.Accumulator = accum.HashKind
	}
	switch o.Tiling {
	case TileUniform:
		cfg.Tiling = tiling.Uniform
	default:
		cfg.Tiling = tiling.FlopBalanced
	}
	switch o.Schedule {
	case SchedStatic:
		cfg.Schedule = sched.Static
	case SchedGuided:
		cfg.Schedule = sched.Guided
	default:
		cfg.Schedule = sched.Dynamic
	}
	return cfg
}
