package spgemm

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"maskedspgemm/internal/sparse"
)

// hostileMatrix builds a CSR that passes the shape checks but violates
// the index invariant: every row stores a column far beyond Cols, which
// drives the dense accumulator out of bounds if executed unvalidated.
func hostileMatrix(n int) *Matrix {
	m := &sparse.CSR[float64]{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	for i := 0; i < n; i++ {
		m.ColIdx = append(m.ColIdx, 1<<20)
		m.Val = append(m.Val, 1)
		m.RowPtr[i+1] = int64(i + 1)
	}
	return wrap(m)
}

// TestHostilePanicBecomesErrPanic feeds a corrupt operand into MxM
// without validation and requires the resulting out-of-range panic to
// come back as ErrPanic — never as a process crash — for every
// schedule, with the panic detail recoverable via errors.As.
func TestHostilePanicBecomesErrPanic(t *testing.T) {
	good := RandomGraph("er", 64, 7)
	bad := hostileMatrix(64)
	for _, schedule := range []Schedule{SchedStatic, SchedDynamic, SchedGuided} {
		opts := Defaults()
		opts.Schedule = schedule
		opts.Accumulator = AccDense
		// MaskLoad scans every B entry against the dense accumulator, so
		// the out-of-range column is touched deterministically.
		opts.Iteration = IterMaskLoad
		_, err := MxM(good, good, bad, opts)
		if err == nil {
			t.Fatalf("schedule %v: corrupt operand accepted", schedule)
		}
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("schedule %v: err = %v, want ErrPanic", schedule, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("schedule %v: chain lacks *PanicError: %v", schedule, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("schedule %v: panic stack not captured", schedule)
		}
	}
}

// TestValidateInputsRejectsHostile requires the same corrupt operand to
// be caught up front — named, as ErrInvalidMatrix — when the caller
// opts into validation.
func TestValidateInputsRejectsHostile(t *testing.T) {
	good := RandomGraph("er", 64, 7)
	bad := hostileMatrix(64)
	opts := Defaults()
	opts.ValidateInputs = true
	_, err := MxM(good, good, bad, opts)
	if !errors.Is(err, ErrInvalidMatrix) {
		t.Fatalf("err = %v, want ErrInvalidMatrix", err)
	}
	if got := err.Error(); !containsStr(got, "b") {
		t.Fatalf("error %q does not name the offending operand", got)
	}
	// A hostile RowPtr that points past nnz must also be caught, not
	// panic inside the validator itself.
	evil := wrap(&sparse.CSR[float64]{
		Rows:   2,
		Cols:   2,
		RowPtr: []int64{0, 100, 2},
		ColIdx: []sparse.Index{0, 1},
		Val:    []float64{1, 1},
	})
	if _, err := MxM(evil, good, good, opts); !errors.Is(err, ErrInvalidMatrix) {
		t.Fatalf("rowptr attack: err = %v, want ErrInvalidMatrix", err)
	}
	// Valid inputs still pass with validation on.
	if _, err := MxM(good, good, good, opts); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMxMContextPreCancelled requires an already-cancelled context to
// stop the multiply before any work, matching both ErrCanceled and the
// context package's sentinel.
func TestMxMContextPreCancelled(t *testing.T) {
	a := RandomGraph("er", 50, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MxMContext(ctx, a, a, a, Defaults())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not match context.Canceled", err)
	}
}

// TestMxMContextMidFlightCancel cancels a deadline mid-multiply on a
// graph large enough that the kernel cannot finish first, and checks
// both the typed error and that no worker goroutines are left behind.
func TestMxMContextMidFlightCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cancelled := false
	for n := 1 << 13; n <= 1<<16 && !cancelled; n *= 2 {
		a := RandomGraph("er", n, 13)
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, err := MxMContext(ctx, a, a, a, Defaults())
		cancel()
		switch {
		case err == nil:
			// The multiply beat the deadline; retry on a larger graph.
		case errors.Is(err, ErrCanceled) && errors.Is(err, context.DeadlineExceeded):
			cancelled = true
		default:
			t.Fatalf("n=%d: err = %v, want ErrCanceled wrapping DeadlineExceeded", n, err)
		}
	}
	if !cancelled {
		t.Fatal("could not interrupt the multiply even on the largest graph")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancel: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestMultiplierContextLifecycle exercises the context-aware plan API:
// cancelled construction, cancelled execution, and reuse after failure.
func TestMultiplierContextLifecycle(t *testing.T) {
	a := RandomGraph("er", 120, 17)
	ref, err := MxM(a, a, a, Defaults())
	if err != nil {
		t.Fatal(err)
	}

	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewMultiplierContext(done, a, a, a, Defaults()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled plan construction: err = %v, want ErrCanceled", err)
	}

	mu, err := NewMultiplier(a, a, a, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mu.MultiplyContext(done); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled multiply: err = %v, want ErrCanceled", err)
	}
	// The failed run must leave the plan reusable and bit-identical.
	for i := 0; i < 2; i++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("reuse %d: result differs from one-shot MxM", i)
		}
	}
}

// TestErrorTaxonomyDistinct pins the contract that the five sentinels
// are distinct and that shape errors keep wrapping ErrShape.
func TestErrorTaxonomyDistinct(t *testing.T) {
	sentinels := []error{ErrShape, ErrConfig, ErrInvalidMatrix, ErrCanceled, ErrPanic}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
	x := RandomGraph("er", 20, 1)
	y := RandomGraph("er", 30, 1)
	if _, err := MxM(x, x, y, Defaults()); !errors.Is(err, ErrShape) {
		t.Fatalf("shape mismatch err = %v, want ErrShape", err)
	}
	bad := Defaults()
	bad.Tiles = -1
	if _, err := MxM(x, x, x, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad config err = %v, want ErrConfig", err)
	}
}
