package spgemm

import (
	"io"
	"net/http"
	"time"

	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/telemetry"
)

// Telemetry is the live-observability registry: rolling latency
// histograms per pipeline phase and per run, live pool/plan-cache/retry
// counters, a black-box flight recorder, and an opt-in HTTP debug
// server exposing all of it. Attach one via EngineConfig.Telemetry and
// every multiplication through that engine reports here as it runs —
// no StatsRecorder required (though an attached one participates too):
//
//	tel := spgemm.NewTelemetry(spgemm.TelemetryConfig{})
//	eng := spgemm.NewEngine(spgemm.EngineConfig{Telemetry: tel})
//	srv, _ := tel.Start(":6060")
//	defer srv.Close()
//	// curl localhost:6060/metrics — p50/p99 per phase, pool hit rate, …
//
// The record path is allocation-free and lock-free (atomic histogram
// buckets), so telemetry can stay on in production. On a stall, panic
// or retry exhaustion the flight recorder's event window — phase
// transitions, tile-batch progress, retry steps, chaos injections, κ
// snapbacks, plus the StallError goroutine stacks — is dumped to a
// schema-validated flightrec/v1 JSON file for postmortem analysis.
//
// A nil *Telemetry disables everything, matching the package's nil
// conventions. A Telemetry may back any number of engines.
type Telemetry struct {
	t *telemetry.Telemetry
}

// TelemetryConfig sizes a Telemetry registry. The zero value selects
// the defaults.
type TelemetryConfig struct {
	// Window is the rolling-quantile slot width: /metrics quantiles
	// cover roughly the last Slots+1 windows. 0 = 60s.
	Window time.Duration
	// Slots is how many retired windows each latency series keeps.
	// 0 = 6.
	Slots int
	// FlightEvents is the flight-recorder ring capacity — how many
	// events a failure dump can look back over. 0 = 4096.
	FlightEvents int
	// FlightPath is where failure dumps are written.
	// "" = "spgemm_flight.json" in the working directory.
	FlightPath string
}

// NewTelemetry builds a live-observability registry.
func NewTelemetry(cfg TelemetryConfig) *Telemetry {
	return &Telemetry{t: telemetry.New(telemetry.Config{
		Window:       cfg.Window,
		Slots:        cfg.Slots,
		FlightEvents: cfg.FlightEvents,
		FlightPath:   cfg.FlightPath,
	})}
}

// TelemetryServer is one running debug listener (see Telemetry.Start).
type TelemetryServer = telemetry.Server

// Handler returns the debug mux — /metrics (Prometheus text
// exposition), /stats (stats/v1 JSON), /flight (forced flightrec/v1
// dump), /healthz (engine pool invariants), /debug/vars and
// /debug/pprof — for callers that mount it on their own server. Nil
// receivers return an empty mux.
func (t *Telemetry) Handler() http.Handler {
	if t == nil {
		return http.NewServeMux()
	}
	return t.t.Handler()
}

// Start binds addr (e.g. ":6060"; ":0" picks a free port) and serves
// the debug handler in the background until the returned server's
// Close.
func (t *Telemetry) Start(addr string) (*TelemetryServer, error) {
	return t.internal().Start(addr)
}

// WriteMetrics renders the current Prometheus text exposition — what
// /metrics serves — to w. Nil-safe (writes nothing).
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	return t.internal().WriteMetrics(w)
}

// AttachRecorder registers a StatsRecorder so its runs feed the live
// histograms and flight recorder, and /stats serves its snapshots.
// Recorders routed through an engine-attached Telemetry are registered
// automatically; use this only for recorders on engineless runs.
func (t *Telemetry) AttachRecorder(s *StatsRecorder) {
	if t == nil || s == nil {
		return
	}
	t.t.AttachRecorder(s.recorder())
}

// DumpFlight writes the flight recorder's current event window as a
// flightrec/v1 dump file, classified by err (nil = "forced"), and
// returns the path written. Dumps also happen automatically on stall,
// panic and retry exhaustion; this is the manual hook. Nil-safe.
func (t *Telemetry) DumpFlight(err error) (string, error) {
	return t.internal().DumpFailure("", err)
}

// LastFlightDump returns the path of the most recent dump ("" when
// none). Nil-safe.
func (t *Telemetry) LastFlightDump() string {
	return t.internal().LastDumpPath()
}

// ValidateFlightJSON strictly round-trips a flightrec/v1 dump (unknown
// fields rejected, re-encode must be byte-identical) and checks its
// schema tag, reason enum, event kinds and sequence monotonicity —
// the flight-dump twin of ValidateStatsJSON.
func ValidateFlightJSON(data []byte) error {
	return telemetry.ValidateFlightJSON(data)
}

// internal returns the registry (nil-safe: nil receivers return nil,
// and the internal layer treats a nil registry as disabled).
func (t *Telemetry) internal() *telemetry.Telemetry {
	if t == nil {
		return nil
	}
	return t.t
}

// recorder returns the registry's built-in fallback recorder (nil for
// nil receivers), used when Options carry telemetry but no
// StatsRecorder.
func (t *Telemetry) recorder() *obs.Recorder {
	return t.internal().Recorder()
}
