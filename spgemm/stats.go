package spgemm

import (
	"io"

	"maskedspgemm/internal/obs"
)

// KernelStats is a machine-readable observability snapshot of one or more
// kernel runs: per-phase wall times (plan row-work/prefix-sum/
// tile-build/row-cap, exec kernel/assembly), exact per-worker counters
// with min/max/mean load-imbalance summaries, hybrid iteration-space
// decision counts, and accumulator statistics (marker overflows, hash
// probe traffic). It marshals to the stable JSON layout identified by
// StatsSchema.
//
// The aliased field types (PhaseStats, WorkerStats, Dist, ...) are
// re-exported below so the whole document is reachable from this
// package.
type KernelStats = obs.Stats

// PhaseStats is one pipeline phase's accumulated wall time.
type PhaseStats = obs.PhaseStats

// CounterSet is one set of kernel counters — a single worker's or the
// cross-worker totals.
type CounterSet = obs.CounterSet

// WorkerStats is one worker's counters in a Stats snapshot.
type WorkerStats = obs.WorkerStats

// Dist summarizes a per-worker quantity: min/max/mean and the
// imbalance ratio max/mean (1.0 = perfect balance).
type Dist = obs.Dist

// AccumCounters are the accumulator-side statistics.
type AccumCounters = obs.AccumCounters

// StatsSchema identifies the JSON layout of a Stats document.
const StatsSchema = obs.StatsSchema

// StatsRecorder collects kernel observability data. Attach one via
// Options.Stats and every MxM / Multiplier run under those options
// records into it; Stats() snapshots the accumulated totals at any
// point. Collection is exact (counters are counted, not sampled) and
// adds a few percent at most to small runs; a nil *StatsRecorder in
// Options disables everything at zero cost.
//
// A StatsRecorder must not be shared by concurrent multiplications —
// like Multiplier, it assumes one run at a time. Snapshots taken with
// Stats() are independent values; subtract two (Stats.Sub) to isolate
// the activity between them.
//
// Recording also labels each pipeline phase for runtime/pprof (label
// key "spgemm_phase") and opens a runtime/trace region per tile batch
// while tracing is active, so CPU profiles and execution traces
// attribute samples to kernel phases with no extra wiring.
type StatsRecorder struct {
	rec *obs.Recorder
}

// NewStatsRecorder returns an empty recorder ready to attach to
// Options.Stats.
func NewStatsRecorder() *StatsRecorder {
	return &StatsRecorder{rec: obs.NewRecorder()}
}

// Stats snapshots everything recorded so far. Nil receivers return a
// zero snapshot.
func (s *StatsRecorder) Stats() KernelStats {
	if s == nil {
		return (*obs.Recorder)(nil).Stats()
	}
	return s.rec.Stats()
}

// Reset discards everything recorded so far. Nil-safe.
func (s *StatsRecorder) Reset() {
	if s != nil {
		s.rec.Reset()
	}
}

// recorder returns the internal recorder (nil for a nil StatsRecorder),
// for Options.config.
func (s *StatsRecorder) recorder() *obs.Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// WriteStatsTable renders the snapshot as an indented human-readable
// block — the layout behind the CLI tools' -stats flag.
func WriteStatsTable(w io.Writer, s KernelStats) {
	s.WriteTable(w)
}

// MarshalStatsJSON encodes the snapshot in the stable StatsSchema JSON
// layout (2-space indent, trailing newline).
func MarshalStatsJSON(s KernelStats) ([]byte, error) {
	return obs.MarshalJSONBytes(s)
}

// ValidateStatsJSON strictly round-trips a StatsSchema document:
// unknown fields, schema mismatches and non-canonical encodings are all
// rejected. Intended for consumers checking files written by the CLI
// tools' -stats-json flag.
func ValidateStatsJSON(data []byte) error {
	return obs.ValidateStatsJSON(data)
}
