package spgemm

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/telemetry"
)

func scrapeMetrics(t *testing.T, tel *Telemetry) []telemetry.Sample {
	t.Helper()
	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	return samples
}

// TestTelemetryMetricsMatchStats is the live-vs-post-hoc parity
// acceptance test: on a warm engine, the /metrics exposition and the
// StatsRecorder's stats/v1 snapshot must agree — run counts and phase
// span counts exactly, phase wall time and the pool hit rate within
// float tolerance — because both views observe the same spans through
// the same recorder.
func TestTelemetryMetricsMatchStats(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{
		FlightPath: filepath.Join(t.TempDir(), "flight.json"),
	})
	eng := NewEngine(EngineConfig{Telemetry: tel})
	stats := NewStatsRecorder()
	opts := Defaults()
	opts.Engine = eng
	opts.Stats = stats

	a := RandomGraph("er", 128, 12)
	for i := 0; i < 5; i++ {
		if _, err := MxM(a, a, a, opts); err != nil {
			t.Fatal(err)
		}
	}

	samples := scrapeMetrics(t, tel)
	st := stats.Stats()

	runs, ok := telemetry.FindSample(samples, "spgemm_runs_total")
	if !ok || runs.Value != float64(st.Runs) {
		t.Fatalf("spgemm_runs_total = %v, stats/v1 runs = %d", runs.Value, st.Runs)
	}
	runCount, _ := telemetry.FindSample(samples, "spgemm_run_latency_seconds_count")
	if runCount.Value != float64(st.Runs) {
		t.Fatalf("run latency count %v, want %d completed runs", runCount.Value, st.Runs)
	}

	if len(st.Phases) == 0 {
		t.Fatal("stats/v1 snapshot has no phases")
	}
	for _, ph := range st.Phases {
		label := `phase="` + ph.Phase + `"`
		count, ok := telemetry.FindSample(samples, "spgemm_phase_latency_seconds_count", label)
		if !ok {
			t.Fatalf("no _count sample for %s", label)
		}
		if count.Value != float64(ph.Count) {
			t.Fatalf("%s: /metrics count %v, stats/v1 spans %d", ph.Phase, count.Value, ph.Count)
		}
		sum, ok := telemetry.FindSample(samples, "spgemm_phase_latency_seconds_sum", label)
		if !ok {
			t.Fatalf("no _sum sample for %s", label)
		}
		wantSec := ph.Millis / 1e3
		if math.Abs(sum.Value-wantSec) > wantSec*1e-6+1e-12 {
			t.Fatalf("%s: /metrics sum %vs, stats/v1 %vs — same spans, must agree", ph.Phase, sum.Value, wantSec)
		}
		p99, ok := telemetry.FindSample(samples, "spgemm_phase_latency_seconds", label, `quantile="0.99"`)
		if !ok {
			t.Fatalf("no p99 sample for %s", label)
		}
		if p99.Value < 0 || p99.Value*1e3 > ph.Millis+1e-9 {
			t.Fatalf("%s: p99 %vs exceeds the phase's total wall time %vms", ph.Phase, p99.Value, ph.Millis)
		}
	}

	// Pool counters: the engine is live-attached, so /metrics reports its
	// counters directly; the recorder's folded deltas cover the same runs
	// and must agree.
	es := eng.Stats()
	hits, _ := telemetry.FindSample(samples, "spgemm_pool_hits_total")
	if hits.Value != float64(es.Hits) || es.Hits != st.Pool.Hits {
		t.Fatalf("pool hits: /metrics %v, engine %d, stats/v1 %d — must agree", hits.Value, es.Hits, st.Pool.Hits)
	}
	rate, _ := telemetry.FindSample(samples, "spgemm_pool_hit_rate")
	if math.Abs(rate.Value-es.HitRate()) > 1e-9 {
		t.Fatalf("pool hit rate: /metrics %v, engine %v", rate.Value, es.HitRate())
	}
	planHits, _ := telemetry.FindSample(samples, "spgemm_plan_cache_hits_total")
	if planHits.Value != float64(es.PlanHits) || es.PlanHits == 0 {
		t.Fatalf("plan cache hits: /metrics %v, engine %d (warm engine must have hits)", planHits.Value, es.PlanHits)
	}
}

// TestTelemetryStallDump is the flight-recorder acceptance test: an
// injected delay trips the stall watchdog, and the failed multiply must
// leave a schema-valid flightrec/v1 dump carrying the stall verdict's
// goroutine stacks and the event window leading up to the failure.
func TestTelemetryStallDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stall_flight.json")
	tel := NewTelemetry(TelemetryConfig{FlightPath: path})
	eng := NewEngine(EngineConfig{Telemetry: tel})

	a := RandomGraph("er", 96, 14)
	opts := Defaults()
	opts.Engine = eng
	opts.Workers = 1

	sd := chaos.NewSeeded(423)
	sd.Arm(chaos.TileClaim, chaos.KindDelay, 1, 400*time.Millisecond)
	opts.chaos = sd
	opts.StallTimeout = 25 * time.Millisecond
	_, err := MxM(a, a, a, opts)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled run: %v, want ErrStalled", err)
	}

	if got := tel.LastFlightDump(); got != path {
		t.Fatalf("LastFlightDump = %q, want %q", got, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("stall left no dump: %v", err)
	}
	if err := telemetry.ValidateFlightJSON(data); err != nil {
		t.Fatalf("dump fails flightrec/v1 validation: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		`"reason": "stall"`,   // classified from the typed error
		`"stacks": "`,         // the watchdog's all-goroutine snapshot
		`"kind": "run_start"`, // the event window preceding the failure
		`"kind": "chaos"`,     // the injected fault that caused it
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("dump missing %q:\n%s", want, text)
		}
	}
}

// TestTelemetryRetryExhaustionDump pins the third dump trigger: a
// retryable fault that survives the whole retry ladder.
func TestTelemetryRetryExhaustionDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	tel := NewTelemetry(TelemetryConfig{FlightPath: path})
	eng := NewEngine(EngineConfig{Telemetry: tel})

	a := RandomGraph("er", 64, 10)
	opts := Defaults()
	opts.Engine = eng
	opts.Workers = 1
	// Panic on every tile claim: every rung of the ladder fails.
	opts.chaos = chaos.Func(func(p chaos.Point) chaos.Fault {
		if p == chaos.TileClaim {
			return chaos.Fault{Kind: chaos.KindPanic}
		}
		return chaos.Fault{}
	})
	opts.Retry = Retry{MaxAttempts: 2}
	_, err := MxM(a, a, a, opts)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("exhausted run: %v, want ErrPanic", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("retry exhaustion left no dump: %v", err)
	}
	if err := telemetry.ValidateFlightJSON(data); err != nil {
		t.Fatalf("dump fails validation: %v", err)
	}
	if !strings.Contains(string(data), `"reason": "panic"`) {
		t.Fatalf("dump not classified as panic:\n%s", data)
	}
}

// TestTelemetrySuccessNoDump pins the negative: successful runs write no
// dump file.
func TestTelemetrySuccessNoDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	tel := NewTelemetry(TelemetryConfig{FlightPath: path})
	eng := NewEngine(EngineConfig{Telemetry: tel})
	a := RandomGraph("er", 64, 10)
	opts := Defaults()
	opts.Engine = eng
	if _, err := MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("successful run left a dump at %s", path)
	}
	if tel.LastFlightDump() != "" {
		t.Fatalf("LastFlightDump = %q after a clean run", tel.LastFlightDump())
	}
}

// TestTelemetryNilSafe pins the facade's nil conventions: a nil
// *Telemetry disables everything without panics, and engines built
// without telemetry behave as before.
func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	if err := tel.WriteMetrics(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	tel.AttachRecorder(NewStatsRecorder())
	tel.AttachRecorder(nil)
	if tel.LastFlightDump() != "" {
		t.Fatal("nil LastFlightDump should be empty")
	}
	if path, err := tel.DumpFlight(nil); path != "" || err != nil {
		t.Fatalf("nil DumpFlight = (%q, %v)", path, err)
	}
	if tel.Handler() == nil {
		t.Fatal("nil Handler should return an empty mux, not nil")
	}
	if _, err := tel.Start("127.0.0.1:0"); err == nil {
		t.Fatal("nil Start should fail, not serve a dead registry")
	}

	// An engine with no telemetry still multiplies.
	eng := NewEngine(EngineConfig{})
	a := RandomGraph("er", 48, 8)
	opts := Defaults()
	opts.Engine = eng
	if _, err := MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryManualDump pins DumpFlight, the operator hook.
func TestTelemetryManualDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manual.json")
	tel := NewTelemetry(TelemetryConfig{FlightPath: path})
	eng := NewEngine(EngineConfig{Telemetry: tel})
	a := RandomGraph("er", 64, 10)
	opts := Defaults()
	opts.Engine = eng
	if _, err := MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
	got, err := tel.DumpFlight(nil)
	if err != nil || got != path {
		t.Fatalf("DumpFlight = (%q, %v), want %q", got, err, path)
	}
	data, _ := os.ReadFile(path)
	if err := telemetry.ValidateFlightJSON(data); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason": "forced"`) {
		t.Fatalf("manual dump not forced:\n%s", data)
	}
}

// TestTelemetryWaveCounters checks that level-scheduled solves surface
// in /metrics: the wave families are present unconditionally (zero on a
// multiply-only workload) and agree with the recorder after a TRSV.
func TestTelemetryWaveCounters(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{
		FlightPath: filepath.Join(t.TempDir(), "flight.json"),
	})
	eng := NewEngine(EngineConfig{Telemetry: tel})

	// Before any solve the families exist with value zero.
	pre := scrapeMetrics(t, tel)
	if missing := telemetry.MissingSeries(pre, []string{
		"spgemm_wave_runs_total", "spgemm_waves_total", "spgemm_serial_waves_total",
		"spgemm_wave_barriers_total", "spgemm_wave_barrier_wait_seconds_total",
	}); len(missing) > 0 {
		t.Fatalf("wave families missing before any solve: %v", missing)
	}
	if s, _ := telemetry.FindSample(pre, "spgemm_wave_runs_total"); s.Value != 0 {
		t.Fatalf("wave runs before any solve = %v, want 0", s.Value)
	}

	l := triMatrix(t, 300, true, 5)
	stats := NewStatsRecorder()
	opts := Defaults()
	opts.LevelSchedule = LevelWaves
	opts.Workers = 4
	opts.Engine = eng
	opts.Stats = stats
	if _, err := TRSV(l, rhs(300), TriLower, opts); err != nil {
		t.Fatal(err)
	}

	samples := scrapeMetrics(t, tel)
	st := stats.Stats()
	if st.Sched.WaveRuns != 1 {
		t.Fatalf("stats/v1 wave runs = %d, want 1", st.Sched.WaveRuns)
	}
	runs, _ := telemetry.FindSample(samples, "spgemm_wave_runs_total")
	if runs.Value != float64(st.Sched.WaveRuns) {
		t.Fatalf("spgemm_wave_runs_total = %v, stats/v1 = %d", runs.Value, st.Sched.WaveRuns)
	}
	waves, _ := telemetry.FindSample(samples, "spgemm_waves_total")
	if waves.Value != float64(st.Sched.Waves) || waves.Value < 1 {
		t.Fatalf("spgemm_waves_total = %v, stats/v1 = %d", waves.Value, st.Sched.Waves)
	}
	barriers, _ := telemetry.FindSample(samples, "spgemm_wave_barriers_total")
	if barriers.Value != float64(st.Sched.Barriers) {
		t.Fatalf("spgemm_wave_barriers_total = %v, stats/v1 = %d", barriers.Value, st.Sched.Barriers)
	}
}
