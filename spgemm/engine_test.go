package spgemm_test

import (
	"errors"
	"sync"
	"testing"

	"maskedspgemm/spgemm"
)

// TestEngineEquivalence checks that every engine-backed entry point
// produces results bit-identical to the engineless path, warm and cold.
func TestEngineEquivalence(t *testing.T) {
	a := spgemm.RandomGraph("er", 80, 5)
	opts := spgemm.Defaults()
	want, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantComp, err := spgemm.MxMComplement(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	// Two rounds: the first exercises the pool-miss path, the second the
	// recycled-workspace path.
	for round := 0; round < 2; round++ {
		got, err := spgemm.MxM(a, a, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: engine-backed MxM differs from engineless", round)
		}
		gotComp, err := spgemm.MxMComplement(a, a, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !gotComp.Equal(wantComp) {
			t.Fatalf("round %d: engine-backed MxMComplement differs", round)
		}
	}
	st := opts.Engine.Stats()
	if st.Hits == 0 {
		t.Errorf("second round should recycle workspaces: %+v", st)
	}
	if st.PlanHits == 0 {
		t.Errorf("second round should hit the plan cache: %+v", st)
	}
}

// TestConcurrentMultiplierServing drives one engine-backed Multiplier
// from many goroutines at once (run with -race) and checks every result
// is bit-identical to the serial product.
func TestConcurrentMultiplierServing(t *testing.T) {
	a := spgemm.RandomGraph("er", 120, 6)
	opts := spgemm.Defaults()
	opts.Tiles = 16
	want, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	mu, err := spgemm.NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c, err := mu.Multiply()
				if err != nil {
					errs[g] = err
					return
				}
				if !c.Equal(want) {
					errs[g] = errors.New("concurrent result differs from serial")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestEnginelessConcurrentMultiplyRejected pins the misuse guard: a
// Multiplier without an Engine detects overlapping Multiply calls and
// returns ErrConcurrentMultiply rather than racing on its workspace.
func TestEnginelessConcurrentMultiplyRejected(t *testing.T) {
	a := spgemm.RandomGraph("er", 200, 8)
	mu, err := spgemm.NewMultiplier(a, a, a, spgemm.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	var rejected, succeeded int
	var mtx sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				_, err := mu.Multiply()
				mtx.Lock()
				switch {
				case err == nil:
					succeeded++
				case errors.Is(err, spgemm.ErrConcurrentMultiply):
					rejected++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mtx.Unlock()
			}
		}()
	}
	wg.Wait()
	// At least one call must win; with 8 goroutines hammering a single
	// workspace, overlap (and thus rejection) is effectively certain.
	if succeeded == 0 {
		t.Error("no Multiply call succeeded")
	}
	if rejected == 0 {
		t.Skip("no overlap observed (single-CPU scheduling); guard not exercised")
	}
}

// TestDefaultEngineShared checks the process-wide engine is a stable
// singleton and usable out of the box.
func TestDefaultEngineShared(t *testing.T) {
	if spgemm.DefaultEngine() != spgemm.DefaultEngine() {
		t.Fatal("DefaultEngine must return one shared instance")
	}
	a := spgemm.RandomGraph("er", 40, 4)
	opts := spgemm.Defaults()
	opts.Engine = spgemm.DefaultEngine()
	if _, err := spgemm.MxM(a, a, a, opts); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStatsInRecorder checks pool counters flow into the public
// stats pipeline when both an Engine and a StatsRecorder are set.
func TestEngineStatsInRecorder(t *testing.T) {
	a := spgemm.RandomGraph("er", 60, 5)
	opts := spgemm.Defaults()
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	opts.Stats = spgemm.NewStatsRecorder()
	for i := 0; i < 3; i++ {
		if _, err := spgemm.MxM(a, a, a, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := opts.Stats.Stats()
	if st.Pool.Hits+st.Pool.Misses == 0 {
		t.Errorf("recorder saw no pool traffic: %+v", st.Pool)
	}
	if st.Pool.Hits == 0 {
		t.Errorf("warm runs should report pool hits: %+v", st.Pool)
	}
}

// TestEngineWarmMultiplyAllocs pins that the engine path stays within
// the same steady-state allocation budget as the owned-workspace path:
// pooling must not reintroduce per-run allocations beyond the checkout
// bookkeeping.
func TestEngineWarmMultiplyAllocs(t *testing.T) {
	a := spgemm.RandomGraph("er", 64, 5)
	opts := spgemm.Defaults()
	opts.Workers = 1
	opts.Tiles = 4
	opts.Engine = spgemm.NewEngine(spgemm.EngineConfig{})
	mu, err := spgemm.NewMultiplier(a, a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mu.Multiply(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := mu.Multiply(); err != nil {
			t.Fatal(err)
		}
	})
	// The engine path pays a constant few extra allocations per run for
	// the checkout (interface boxing of the pooled workspace pointer).
	if allocs > steadyAllocBudget+4 {
		t.Errorf("warm engine-backed Multiply allocates %.1f times per run, budget %d",
			allocs, steadyAllocBudget+4)
	}
	if st := opts.Engine.Stats(); st.HitRate() < 0.9 {
		t.Errorf("warm loop hit rate %.2f, want >= 0.9 (%+v)", st.HitRate(), st)
	}
}
