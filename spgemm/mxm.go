package spgemm

import (
	"context"
	"errors"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/model"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// planP resolves the worker count used for input validation, matching
// the kernel's plan-phase parallelism.
func (o Options) planP() int {
	if o.PlanWorkers > 0 {
		return sched.Workers(o.PlanWorkers)
	}
	return sched.Workers(o.Workers)
}

// MxM computes C = mask ⊙ (a × b): the masked sparse matrix-matrix
// product over the semiring selected in opts. The mask is structural.
//
// Shape requirements: a is m×k, b is k×n, mask is m×n.
//
// With Options.Retry set, transient failures (ErrPanic, ErrStalled,
// injected faults) are re-attempted on progressively degraded execution
// paths — see Retry.
func MxM(mask, a, b *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(),
			namedOperand{"mask", mask}, namedOperand{"a", a}, namedOperand{"b", b}); err != nil {
			return nil, err
		}
	}
	if opts.ValuedMask {
		mask = wrap(sparse.PruneZeros(mask.csr))
	}
	c, err := retryLoop(opts, func(o Options) (*sparse.CSR[float64], error) {
		return mxmAttempt(mask, a, b, o)
	})
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// mxmAttempt runs one execution attempt of the masked product under the
// (possibly degraded) options, containing panics on the caller's own
// goroutine so the retry ladder can classify them. Failed attempts
// never feed the κ estimator.
func mxmAttempt(mask, a, b *Matrix, opts Options) (_ *sparse.CSR[float64], err error) {
	var rc *model.Recalibrator
	// Registered before the recover guard so it runs after it (LIFO):
	// by then a contained panic has been converted into err, and the
	// armed κ proposal is discarded instead of pairing with a later run.
	defer func() {
		if err != nil {
			rc.ObserveFailure()
		}
	}()
	defer recoverAsError(&err)
	cfg := opts.config()
	rc = opts.recalibrator(mask, a, b)
	if rc != nil {
		cfg.Kappa = rc.Propose()
	}
	start := time.Now()
	var c *sparse.CSR[float64]
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
	case SROrAnd:
		c, err = core.MaskedSpGEMM[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
	default:
		c, err = core.MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
	}
	if err != nil {
		return nil, err
	}
	observeRecal(rc, opts.recorder(), start)
	return c, nil
}

// recalibrator resolves the online-κ estimator for this call's operand
// family, or nil when adaptation is off (no AdaptiveKappa, no Engine to
// persist state on, or a non-hybrid iteration space where κ is unused).
func (o Options) recalibrator(mask, a, b *Matrix) *model.Recalibrator {
	if !o.AdaptiveKappa || o.Iteration != IterHybrid {
		return nil
	}
	return model.TuneFor(o.Engine.internal(), mask.csr, a.csr, b.csr,
		model.RecalConfig{DefaultKappa: o.Kappa})
}

// observeRecal feeds one timed run back into the estimator, preferring
// the run-scoped per-run stats (FLOP-normalized cost) when a recorder
// is attached. The counter delta lands in the recorder's recal block.
func observeRecal(rc *model.Recalibrator, rec *obs.Recorder, start time.Time) {
	if rc == nil {
		return
	}
	var st obs.Stats
	if snap, ok := rec.LastRun(); ok {
		st = snap
	}
	rec.AddRecal(rc.Observe(time.Since(start).Seconds(), st))
}

// MxMChain computes the chained masked product
//
//	D = m2 ⊙ ((m1 ⊙ (a × b)) × c)
//
// — two dependent masked multiplies in one call. With Options.Fuse set
// the intermediate product m1 ⊙ (a×b) is never materialized: each
// FLOP-balanced output tile of the first multiply is staged in
// workspace buffers (bounded by Options.FuseTileBudget, degrading to
// row streaming beyond it) and consumed by the second multiply while
// hot. Without Fuse the chain runs as two ordinary MxM calls. Both
// paths return bit-identical results.
//
// Shape requirements: a is m×k, b is k×n, m1 is m×n, c is n×q, m2 is
// m×q.
func MxMChain(m1, a, b, m2, c *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(),
			namedOperand{"m1", m1}, namedOperand{"a", a}, namedOperand{"b", b},
			namedOperand{"m2", m2}, namedOperand{"c", c}); err != nil {
			return nil, err
		}
	}
	if opts.ValuedMask {
		m1 = wrap(sparse.PruneZeros(m1.csr))
		m2 = wrap(sparse.PruneZeros(m2.csr))
	}
	if !opts.Fuse {
		inner := opts
		inner.ValidateInputs = false
		inner.ValuedMask = false
		mid, err := MxM(m1, a, b, inner)
		if err != nil {
			return nil, err
		}
		return MxM(m2, mid, c, inner)
	}
	// The fused path rides the same retry ladder as MxM: rung one
	// retries the fused pipeline serially, rung two drops Fuse — the
	// fused→staged degradation — and reruns as two ordinary multiplies
	// with fresh unpooled buffers.
	d, err := retryLoop(opts, func(o Options) (*sparse.CSR[float64], error) {
		if o.Fuse {
			return fusedChainAttempt(m1, a, b, m2, c, o)
		}
		inner := o
		inner.ValidateInputs = false
		inner.ValuedMask = false
		inner.Retry = Retry{} // the outer loop owns the attempt budget
		mid, err := MxM(m1, a, b, inner)
		if err != nil {
			return nil, err
		}
		out, err := MxM(m2, mid, c, inner)
		if err != nil {
			return nil, err
		}
		return out.csr, nil
	})
	if err != nil {
		return nil, err
	}
	return wrap(d), nil
}

// fusedChainAttempt runs one attempt of the fused chained product,
// containing panics so the retry ladder can classify them.
func fusedChainAttempt(m1, a, b, m2, c *Matrix, opts Options) (_ *sparse.CSR[float64], err error) {
	defer recoverAsError(&err)
	cfg := opts.config()
	var d *sparse.CSR[float64]
	switch opts.Semiring {
	case SRPlusPair:
		d, err = core.FusedMaskedSpGEMM[float64](semiring.PlusPair[float64]{},
			m1.csr, a.csr, b.csr, m2.csr, c.csr, cfg)
	case SROrAnd:
		d, err = core.FusedMaskedSpGEMM[float64](semiring.OrAnd[float64]{},
			m1.csr, a.csr, b.csr, m2.csr, c.csr, cfg)
	default:
		d, err = core.FusedMaskedSpGEMM[float64](semiring.PlusTimes[float64]{},
			m1.csr, a.csr, b.csr, m2.csr, c.csr, cfg)
	}
	return d, err
}

// MxMContext is MxM under an explicit context: the multiplication is
// cooperatively cancelled when ctx is done, returning an error matching
// ErrCanceled. A non-nil opts.Context is overridden by ctx.
func MxMContext(ctx context.Context, mask, a, b *Matrix, opts Options) (*Matrix, error) {
	opts.Context = ctx
	return MxM(mask, a, b, opts)
}

// MxMComplement computes C = ¬mask ⊙ (a × b): the product restricted to
// positions the mask does NOT store — GraphBLAS's complemented
// structural mask. Note the output is bounded by the product structure,
// not by the mask, so this kernel always pays the full multiplication.
func MxMComplement(mask, a, b *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(),
			namedOperand{"mask", mask}, namedOperand{"a", a}, namedOperand{"b", b}); err != nil {
			return nil, err
		}
	}
	cfg := opts.config()
	var c *sparse.CSR[float64]
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.MaskedSpGEMMComp[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
	case SROrAnd:
		c, err = core.MaskedSpGEMMComp[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
	default:
		c, err = core.MaskedSpGEMMComp[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// MxMUnmasked computes the plain sparse product C = a × b (no mask).
// It is single-threaded and intended for correctness checks and small
// problems; the masked kernel is the optimized path.
func MxMUnmasked(a, b *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(),
			namedOperand{"a", a}, namedOperand{"b", b}); err != nil {
			return nil, err
		}
	}
	var c *sparse.CSR[float64]
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.SpGEMM[float64](semiring.PlusPair[float64]{}, a.csr, b.csr)
	case SROrAnd:
		c, err = core.SpGEMM[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.SpGEMM[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// Multiplier is a reusable execution plan for repeating the same
// masked product: tiling and accumulators are built once and reused by
// every Multiply call. Iterative algorithms over a fixed graph and
// benchmark loops should prefer it over repeated MxM calls.
//
// Concurrency follows the Options the plan was built with: with an
// Engine, concurrent Multiply calls are safe (each run checks a
// private workspace out of the shared pool); without one, the plan
// owns a single workspace and overlapping calls are rejected with
// ErrConcurrentMultiply instead of racing.
//
// A Multiply call that fails (ErrCanceled, ErrPanic) leaves the plan
// intact: the same Multiplier can run again once the cause is resolved.
type Multiplier struct {
	mu coreMultiplier
	// rec is the resolved observability recorder (the StatsRecorder's,
	// or the engine telemetry's fallback; nil disables collection).
	rec   *obs.Recorder
	tel   *Telemetry
	recal *model.Recalibrator
	retry Retry
}

// coreMultiplier is the non-generic surface of core.Multiplier[T, S]
// the facade drives, so one wrapper serves every semiring
// instantiation.
type coreMultiplier interface {
	MultiplyCtx(ctx context.Context) (*sparse.CSR[float64], error)
	MultiplyDegraded(ctx context.Context, d core.Degradation) (*sparse.CSR[float64], error)
	SetKappa(kappa float64)
	Kappa() float64
	LastRunStats() (obs.Stats, bool)
}

// NewMultiplier builds a reusable plan for C = mask ⊙ (a × b). Plan
// construction itself observes opts.Context.
func NewMultiplier(mask, a, b *Matrix, opts Options) (_ *Multiplier, err error) {
	defer recoverAsError(&err)
	if opts.ValidateInputs {
		if err := validateInputs(opts.planP(),
			namedOperand{"mask", mask}, namedOperand{"a", a}, namedOperand{"b", b}); err != nil {
			return nil, err
		}
	}
	cfg := opts.config()
	var cm coreMultiplier
	switch opts.Semiring {
	case SRPlusPair:
		cm, err = core.NewMultiplier[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
	case SROrAnd:
		cm, err = core.NewMultiplier[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
	default:
		cm, err = core.NewMultiplier[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
	}
	if err != nil {
		return nil, err
	}
	return &Multiplier{
		mu:    cm,
		rec:   opts.recorder(),
		tel:   opts.Engine.telemetry(),
		recal: opts.recalibrator(mask, a, b),
		retry: opts.Retry,
	}, nil
}

// NewMultiplierContext is NewMultiplier under an explicit context,
// which also becomes the default context of every Multiply call on the
// returned plan. A non-nil opts.Context is overridden by ctx.
func NewMultiplierContext(ctx context.Context, mask, a, b *Matrix, opts Options) (*Multiplier, error) {
	opts.Context = ctx
	return NewMultiplier(mask, a, b, opts)
}

// Multiply executes the plan and returns a fresh result matrix, under
// the context the plan was built with (nil = run to completion).
func (mu *Multiplier) Multiply() (*Matrix, error) {
	return mu.MultiplyContext(nil)
}

// MultiplyContext executes the plan under ctx, overriding the plan's
// own context. A cancelled or panicked run returns ErrCanceled/ErrPanic
// and leaves the plan reusable. nil falls back to the plan's context.
//
// Under Options.AdaptiveKappa the call first applies the estimator's
// proposed κ, then feeds the measured run back — so a warm Multiply
// loop is exactly the feedback loop the online recalibration adapts in.
//
// With Options.Retry set on the plan, transient failures re-attempt on
// the degradation ladder: first serially, then additionally on fresh
// unpooled buffers — see Retry.
func (mu *Multiplier) MultiplyContext(ctx context.Context) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	budget := mu.retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	rec := mu.rec
	record := mu.retry.MaxAttempts > 1
	backoff := mu.retry.Backoff
	var lastErr error
	for try := 0; try < budget; try++ {
		d := core.DegradeNone
		if try > 0 && !mu.retry.NoDegrade {
			d = core.DegradeSerial
			if try >= 2 {
				d = core.DegradeUnpooled
			}
		}
		c, err := mu.multiplyAttempt(ctx, d)
		if record {
			rec.AddRetry(obs.RetryCounters{
				Attempts:     1,
				Retries:      b2i(try > 0),
				Degradations: b2i(d != core.DegradeNone),
				Stalls:       b2i(errors.Is(err, ErrStalled)),
			})
		}
		if err == nil {
			return wrap(c), nil
		}
		lastErr = err
		if !retryable(err) || try == budget-1 {
			break
		}
		if backoff > 0 {
			if sleepCtx(ctx, backoff) != nil {
				break
			}
			backoff *= 2
		}
	}
	if record {
		rec.AddRetry(obs.RetryCounters{Failures: 1})
	}
	dumpOnFailure(mu.tel, mu.retry, lastErr)
	return nil, lastErr
}

// multiplyAttempt runs one attempt of the plan at degradation rung d,
// containing panics so the retry ladder can classify them. κ adaptation
// applies only on the undegraded rung; failed attempts discard their
// armed proposal instead of feeding the estimator.
func (mu *Multiplier) multiplyAttempt(ctx context.Context, d core.Degradation) (_ *sparse.CSR[float64], err error) {
	adapt := mu.recal != nil && d == core.DegradeNone
	if mu.recal != nil {
		// Registered before the recover guard so it runs after it
		// (LIFO), covering contained panics as well as plain error
		// returns. Skipped entirely without an estimator, keeping the
		// warm path's allocation budget untouched.
		defer func() {
			if err != nil {
				mu.recal.ObserveFailure()
			}
		}()
	}
	defer recoverAsError(&err)
	if adapt {
		mu.mu.SetKappa(mu.recal.Propose())
	}
	start := time.Now()
	c, err := mu.mu.MultiplyDegraded(ctx, d)
	if err != nil {
		return nil, err
	}
	if adapt {
		var st obs.Stats
		if snap, ok := mu.mu.LastRunStats(); ok {
			st = snap
		}
		mu.rec.AddRecal(mu.recal.Observe(time.Since(start).Seconds(), st))
	}
	return c, nil
}

// LastStats returns the observability snapshot of the most recent
// successful Multiply call alone — the run's own scoped spans and
// counters, isolated by its multiply sequence id rather than by
// subtracting recorder totals (which double-counts when runs overlap).
// ok is false when the plan was built without a StatsRecorder or
// nothing has run yet.
func (mu *Multiplier) LastStats() (_ KernelStats, ok bool) {
	return mu.mu.LastRunStats()
}

// EWiseAdd returns the element-wise union a ⊕ b: coinciding entries
// combine with the semiring's additive operation, entries present in
// only one operand carry over unchanged.
func EWiseAdd(a, b *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	var c *sparse.CSR[float64]
	switch opts.Semiring {
	case SROrAnd:
		c, err = core.EWiseAdd[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.EWiseAdd[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// EWiseMult returns the element-wise intersection a ⊗ b: only
// coinciding entries survive, combined with the semiring's
// multiplicative operation (Hadamard product under SRPlusTimes).
func EWiseMult(a, b *Matrix, opts Options) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	var c *sparse.CSR[float64]
	switch opts.Semiring {
	case SROrAnd:
		c, err = core.EWiseMult[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.EWiseMult[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// ReduceRows folds each row with + and returns one value per non-empty
// row as parallel (index, value) slices.
func ReduceRows(m *Matrix) ([]int32, []float64) {
	v := core.ReduceRows[float64](semiring.PlusTimes[float64]{}, m.csr)
	return v.Idx, v.Val
}

// ApplyMask returns mask ⊙ c: the entries of c at positions stored in
// mask. Together with MxMUnmasked it forms the two-step computation the
// fused MxM is measured against.
func ApplyMask(mask, c *Matrix) (_ *Matrix, err error) {
	defer recoverAsError(&err)
	out, err := core.ApplyMask(mask.csr, c.csr)
	if err != nil {
		return nil, err
	}
	return wrap(out), nil
}
