package spgemm

import (
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// MxM computes C = mask ⊙ (a × b): the masked sparse matrix-matrix
// product over the semiring selected in opts. The mask is structural.
//
// Shape requirements: a is m×k, b is k×n, mask is m×n.
func MxM(mask, a, b *Matrix, opts Options) (*Matrix, error) {
	cfg := opts.config()
	if opts.ValuedMask {
		mask = wrap(sparse.PruneZeros(mask.csr))
	}
	var c *sparse.CSR[float64]
	var err error
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
	case SROrAnd:
		c, err = core.MaskedSpGEMM[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
	default:
		c, err = core.MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// MxMComplement computes C = ¬mask ⊙ (a × b): the product restricted to
// positions the mask does NOT store — GraphBLAS's complemented
// structural mask. Note the output is bounded by the product structure,
// not by the mask, so this kernel always pays the full multiplication.
func MxMComplement(mask, a, b *Matrix, opts Options) (*Matrix, error) {
	cfg := opts.config()
	var c *sparse.CSR[float64]
	var err error
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.MaskedSpGEMMComp[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
	case SROrAnd:
		c, err = core.MaskedSpGEMMComp[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
	default:
		c, err = core.MaskedSpGEMMComp[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// MxMUnmasked computes the plain sparse product C = a × b (no mask).
// It is single-threaded and intended for correctness checks and small
// problems; the masked kernel is the optimized path.
func MxMUnmasked(a, b *Matrix, opts Options) (*Matrix, error) {
	var c *sparse.CSR[float64]
	var err error
	switch opts.Semiring {
	case SRPlusPair:
		c, err = core.SpGEMM[float64](semiring.PlusPair[float64]{}, a.csr, b.csr)
	case SROrAnd:
		c, err = core.SpGEMM[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.SpGEMM[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// Multiplier is a reusable execution plan for repeating the same
// masked product: tiling and accumulators are built once and reused by
// every Multiply call. Iterative algorithms over a fixed graph and
// benchmark loops should prefer it over repeated MxM calls. Not safe
// for concurrent Multiply calls.
type Multiplier struct {
	run func() (*sparse.CSR[float64], error)
}

// NewMultiplier builds a reusable plan for C = mask ⊙ (a × b).
func NewMultiplier(mask, a, b *Matrix, opts Options) (*Multiplier, error) {
	cfg := opts.config()
	switch opts.Semiring {
	case SRPlusPair:
		mu, err := core.NewMultiplier[float64](semiring.PlusPair[float64]{}, mask.csr, a.csr, b.csr, cfg)
		if err != nil {
			return nil, err
		}
		return &Multiplier{run: func() (*sparse.CSR[float64], error) { return mu.Multiply(), nil }}, nil
	case SROrAnd:
		mu, err := core.NewMultiplier[float64](semiring.OrAnd[float64]{}, mask.csr, a.csr, b.csr, cfg)
		if err != nil {
			return nil, err
		}
		return &Multiplier{run: func() (*sparse.CSR[float64], error) { return mu.Multiply(), nil }}, nil
	default:
		mu, err := core.NewMultiplier[float64](semiring.PlusTimes[float64]{}, mask.csr, a.csr, b.csr, cfg)
		if err != nil {
			return nil, err
		}
		return &Multiplier{run: func() (*sparse.CSR[float64], error) { return mu.Multiply(), nil }}, nil
	}
}

// Multiply executes the plan and returns a fresh result matrix.
func (mu *Multiplier) Multiply() (*Matrix, error) {
	c, err := mu.run()
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// EWiseAdd returns the element-wise union a ⊕ b: coinciding entries
// combine with the semiring's additive operation, entries present in
// only one operand carry over unchanged.
func EWiseAdd(a, b *Matrix, opts Options) (*Matrix, error) {
	var c *sparse.CSR[float64]
	var err error
	switch opts.Semiring {
	case SROrAnd:
		c, err = core.EWiseAdd[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.EWiseAdd[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// EWiseMult returns the element-wise intersection a ⊗ b: only
// coinciding entries survive, combined with the semiring's
// multiplicative operation (Hadamard product under SRPlusTimes).
func EWiseMult(a, b *Matrix, opts Options) (*Matrix, error) {
	var c *sparse.CSR[float64]
	var err error
	switch opts.Semiring {
	case SROrAnd:
		c, err = core.EWiseMult[float64](semiring.OrAnd[float64]{}, a.csr, b.csr)
	default:
		c, err = core.EWiseMult[float64](semiring.PlusTimes[float64]{}, a.csr, b.csr)
	}
	if err != nil {
		return nil, err
	}
	return wrap(c), nil
}

// ReduceRows folds each row with + and returns one value per non-empty
// row as parallel (index, value) slices.
func ReduceRows(m *Matrix) ([]int32, []float64) {
	v := core.ReduceRows[float64](semiring.PlusTimes[float64]{}, m.csr)
	return v.Idx, v.Val
}

// ApplyMask returns mask ⊙ c: the entries of c at positions stored in
// mask. Together with MxMUnmasked it forms the two-step computation the
// fused MxM is measured against.
func ApplyMask(mask, c *Matrix) (*Matrix, error) {
	out, err := core.ApplyMask(mask.csr, c.csr)
	if err != nil {
		return nil, err
	}
	return wrap(out), nil
}
