// Package spgemm is the public API of this repository: a GraphBLAS-style
// masked sparse matrix-matrix multiplication library,
//
//	C = M ⊙ (A × B)
//
// with the full tuning surface studied in "To tile or not to tile, that
// is the question" (IPDPSW 2024) — iteration spaces, tiling and
// scheduling strategies, and sparse accumulator designs — plus the graph
// algorithms built on the kernel: triangle counting, k-truss, BFS, and
// betweenness centrality.
//
// Quick start:
//
//	a, _ := spgemm.ReadMatrixMarket(f)
//	c, _ := spgemm.MxM(a, a, a, spgemm.Defaults()) // C = A ⊙ (A×A)
//	tri, _ := spgemm.TriangleCount(a, spgemm.Defaults())
package spgemm

import (
	"fmt"
	"io"

	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/sparse"
)

// Matrix is an immutable sparse matrix in CSR form with float64 values.
// Masks are structural: only the presence of entries matters when a
// Matrix is used as the mask operand.
type Matrix struct {
	csr *sparse.CSR[float64]
}

// wrap adopts an internal CSR (no copy).
func wrap(m *sparse.CSR[float64]) *Matrix { return &Matrix{csr: m} }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.csr.Rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.csr.Cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int64 { return m.csr.NNZ() }

// At returns the value stored at (i, j), or 0 if absent.
func (m *Matrix) At(i, j int) float64 { return m.csr.At(i, sparse.Index(j)) }

// Has reports whether (i, j) is a stored entry.
func (m *Matrix) Has(i, j int) bool { return m.csr.Has(i, sparse.Index(j)) }

// Row returns copies of row i's column indices and values.
func (m *Matrix) Row(i int) ([]int32, []float64) {
	cols, vals := m.csr.Row(i)
	return append([]int32(nil), cols...), append([]float64(nil), vals...)
}

// Sum returns the sum of all stored values.
func (m *Matrix) Sum() float64 { return sparse.SumValues(m.csr) }

// Triple is one (row, col, value) entry for matrix construction.
type Triple struct {
	Row, Col int
	Val      float64
}

// FromTriples builds a rows×cols matrix from entries in any order;
// duplicate positions sum.
func FromTriples(rows, cols int, entries []Triple) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: negative shape %dx%d", ErrShape, rows, cols)
	}
	coo := sparse.NewCOO[float64](rows, cols, int64(len(entries)))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrInvalidMatrix, e.Row, e.Col, rows, cols)
		}
		coo.Add(sparse.Index(e.Row), sparse.Index(e.Col), e.Val)
	}
	return wrap(coo.ToCSR()), nil
}

// FromEdges builds the adjacency matrix of an undirected simple graph on
// n vertices: both orientations of every edge are stored with value 1,
// self-loops are dropped, duplicates collapse.
func FromEdges(n int, edges [][2]int) (*Matrix, error) {
	coo := sparse.NewCOO[float64](n, n, int64(2*len(edges)))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrInvalidMatrix, u, v, n)
		}
		if u == v {
			continue
		}
		coo.Add(sparse.Index(u), sparse.Index(v), 1)
		coo.Add(sparse.Index(v), sparse.Index(u), 1)
	}
	m := coo.ToCSR()
	for i := range m.Val {
		m.Val[i] = 1
	}
	return wrap(m), nil
}

// ReadMatrixMarket parses a MatrixMarket coordinate stream (real,
// integer or pattern; general or symmetric).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	m, err := mtx.Read(r)
	if err != nil {
		return nil, err
	}
	return wrap(m), nil
}

// WriteMatrixMarket serializes m as a general real coordinate stream.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error { return mtx.Write(w, m.csr) }

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix { return wrap(sparse.Transpose(m.csr)) }

// Tril returns the strictly lower triangular part.
func (m *Matrix) Tril() *Matrix { return wrap(sparse.Tril(m.csr)) }

// Triu returns the strictly upper triangular part.
func (m *Matrix) Triu() *Matrix { return wrap(sparse.Triu(m.csr)) }

// Pattern returns a copy with all stored values set to 1.
func (m *Matrix) Pattern() *Matrix { return wrap(m.csr.Pattern()) }

// Symmetrize returns m ∨ mᵀ with summed values.
func (m *Matrix) Symmetrize() *Matrix { return wrap(sparse.Symmetrize(m.csr)) }

// Equal reports whether two matrices are identical in shape, structure
// and values.
func (m *Matrix) Equal(o *Matrix) bool { return sparse.Equal(m.csr, o.csr) }

// Stats summarizes the structural features that drive kernel
// performance.
type Stats struct {
	Rows, Cols int
	NNZ        int64
	MaxRowNNZ  int64
	AvgRowNNZ  float64
	Symmetric  bool
}

// Stats scans the matrix and returns its structural statistics.
func (m *Matrix) Stats() Stats {
	s := sparse.ComputeStats(m.csr, true)
	return Stats{
		Rows: s.Rows, Cols: s.Cols, NNZ: s.NNZ,
		MaxRowNNZ: s.MaxRowNNZ, AvgRowNNZ: s.AvgRowNNZ, Symmetric: s.Symmetric,
	}
}
