package spgemm

import (
	"io"
	"time"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/model"
)

// TriangleCount counts triangles in the undirected simple graph a using
// the paper's benchmark kernel C = A ⊙ (A×A).
func TriangleCount(a *Matrix, opts Options) (int64, error) {
	return graph.TriangleCount(a.csr, graph.Burkhardt, opts.config())
}

// TriangleCountLL counts triangles with the lower-triangular
// formulation C = L ⊙ (L×L), which does one sixth of the Burkhardt
// kernel's work.
func TriangleCountLL(a *Matrix, opts Options) (int64, error) {
	return graph.TriangleCount(a.csr, graph.SandiaLL, opts.config())
}

// KTruss computes the k-truss subgraph of a: the maximal subgraph whose
// every edge lies in at least k-2 triangles. It returns the truss
// adjacency and the number of prune rounds. With Options.Fuse set, each
// support-and-prune round runs as one fused select multiply — the
// per-edge support matrix is thresholded inside the tile gather and
// never materialized; the result is identical.
func KTruss(a *Matrix, k int, opts Options) (*Matrix, int, error) {
	run := graph.KTruss
	if opts.Fuse {
		run = graph.KTrussFused
	}
	res, err := run(a.csr, k, opts.config())
	if err != nil {
		return nil, 0, err
	}
	return wrap(res.Truss), res.Rounds, nil
}

// BFS runs a direction-optimizing breadth-first search from src and
// returns per-vertex hop levels (-1 = unreachable).
func BFS(a *Matrix, src int) ([]int32, error) {
	res, err := graph.BFS(a.csr, src, core.Auto)
	if err != nil {
		return nil, err
	}
	return res.Level, nil
}

// BetweennessCentrality returns the unnormalized betweenness
// contributions from the given source vertices (all vertices = exact BC).
func BetweennessCentrality(a *Matrix, sources []int) ([]float64, error) {
	return graph.BetweennessCentrality(a.csr, sources)
}

// KCore returns each vertex's coreness (the largest k whose k-core
// contains it) and the graph's degeneracy.
func KCore(a *Matrix) ([]int32, int32, error) {
	res, err := graph.KCore(a.csr)
	if err != nil {
		return nil, 0, err
	}
	return res.Core, res.MaxCore, nil
}

// BetweennessCentralityBatch is BetweennessCentrality computed for all
// sources simultaneously as rectangular masked matrix products — the
// batched-Brandes formulation. With Options.Fuse set, the backward
// sweep streams each dependency row straight into the delta vector
// instead of assembling a per-level CSR; the result is identical.
func BetweennessCentralityBatch(a *Matrix, sources []int, opts Options) ([]float64, error) {
	if opts.Fuse {
		return graph.BetweennessCentralityBatchFused(a.csr, sources, opts.config())
	}
	return graph.BetweennessCentralityBatch(a.csr, sources, opts.config())
}

// ConnectedComponents returns per-vertex component labels (the smallest
// vertex id in each component) and the component count, computed by
// algebraic label propagation over the (min, first) semiring.
func ConnectedComponents(a *Matrix) ([]int32, int, error) {
	res, err := graph.ConnectedComponentsLabelProp(a.csr)
	if err != nil {
		return nil, 0, err
	}
	return res.Label, res.Components, nil
}

// ShortestPaths returns single-source shortest-path distances over the
// stored edge weights (tropical-semiring Bellman-Ford); +Inf marks
// unreachable vertices.
func ShortestPaths(a *Matrix, src int) ([]float64, error) {
	return graph.SSSP(a.csr, src)
}

// PageRank runs the damped power iteration until the L1 delta falls
// below tol (or maxIter rounds) and returns the stationary ranks.
func PageRank(a *Matrix, damping, tol float64, maxIter int) ([]float64, error) {
	res, err := graph.PageRank(a.csr, damping, tol, maxIter)
	if err != nil {
		return nil, err
	}
	return res.Rank, nil
}

// Tune runs the paper's Figure 12 staged tuning flow (tiling/schedule →
// κ → marker width) on the matrix and returns the winning options.
// Progress is logged to log (pass io.Discard to silence).
func Tune(a *Matrix, log io.Writer) (Options, error) {
	o := bench.DefaultOptions()
	o.Method = bench.Methodology{Warmups: 0, MaxReps: 2, Budget: 30 * time.Second}
	o.TileCounts = []int{256, 1024, 2048, 8192}
	cfg, err := bench.Tune(a.csr, o, log)
	if err != nil {
		return Options{}, err
	}
	return fromConfig(cfg), nil
}

// PredictOptions runs the execution-time configuration model (the
// paper's future-work direction): one structural pass over the operands
// extracts features (degree skew, mask density, the Eq. 3 co-iteration
// gain) and decision rules distilled from the paper's findings map them
// to kernel options — no timed trials, unlike Tune.
func PredictOptions(mask, a, b *Matrix) (Options, error) {
	cfg, _, err := model.PredictConfig(mask.csr, a.csr, b.csr, 0)
	if err != nil {
		return Options{}, err
	}
	return fromConfig(cfg), nil
}

// fromConfig translates an internal configuration back to public
// Options (inverse of Options.config for the exported subset).
func fromConfig(cfg core.Config) Options {
	out := Defaults()
	out.Kappa = cfg.Kappa
	out.MarkerBits = cfg.MarkerBits
	out.Tiles = cfg.Tiles
	out.Workers = cfg.Workers
	switch cfg.Iteration {
	case core.Vanilla:
		out.Iteration = IterVanilla
	case core.MaskLoad:
		out.Iteration = IterMaskLoad
	case core.CoIter:
		out.Iteration = IterCoIter
	default:
		out.Iteration = IterHybrid
	}
	if cfg.Accumulator.String() == "Dense" || cfg.Accumulator.String() == "DenseExplicit" {
		out.Accumulator = AccDense
	} else {
		out.Accumulator = AccHash
	}
	if cfg.Tiling.String() == "Uniform" {
		out.Tiling = TileUniform
	}
	if cfg.Schedule.String() == "Static" {
		out.Schedule = SchedStatic
	}
	return out
}

// RandomGraph generates one of the built-in synthetic graph families;
// kind is "rmat", "road", "web", "circuit" or "er". It exists so
// examples and downstream users can produce benchmark-shaped inputs
// without external data.
func RandomGraph(kind string, n int, seed uint64) *Matrix {
	switch kind {
	case "rmat":
		scale := 4
		for 1<<scale < n {
			scale++
		}
		return wrap(graphgen.RMAT(scale, 8, 0.57, 0.19, 0.19, seed))
	case "road":
		side := 4
		for side*side < n {
			side++
		}
		return wrap(graphgen.RoadNetwork(side, side, 0.95, seed))
	case "web":
		return wrap(graphgen.WebGraph(n, 8, 0.5, seed))
	case "circuit":
		return wrap(graphgen.Circuit(n, 3, 0.6, 2, max(n/50, 4), seed))
	default:
		return wrap(graphgen.ErdosRenyi(n, 4*n, seed))
	}
}
