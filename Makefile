GO ?= go

.PHONY: build test vet lint lint-json staticcheck govulncheck race check chaos fuzz bench-plan bench-sched bench-smoke bench-stats bench-engine bench-fusion bench-kappa bench-trsv telemetry-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzer suite (docs/LINTING.md): the six
# per-package contracts (hot-path allocation discipline, nil-safe
# recorder, padded atomic counters, error taxonomy, cooperative
# cancellation, checkout/release pairing) plus the three whole-program
# concurrency contracts built on the call graph and lockset layer
# (lockorder, atomicmix, goroutineleak). Built from this module, so it
# needs nothing beyond the Go toolchain. lint-json emits the same
# findings as a self-validating maskedspgemm/lint/v1 document.
lint:
	$(GO) run ./cmd/spgemm-lint ./...

lint-json:
	$(GO) run ./cmd/spgemm-lint -json ./...

# staticcheck is optional tooling: run it when installed, skip silently
# when the host doesn't have it (no network installs in CI containers).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# govulncheck is likewise optional: audit the dependency graph when the
# tool is present, skip silently otherwise.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# The scheduler, kernel and public facade are the concurrency-bearing
# packages: run them under the race detector with the Guided policy,
# panic containment, cancellation and parallel plan paths exercised by
# their tests.
race:
	$(GO) test -race ./internal/sched/... ./internal/core/... ./internal/exec/... ./internal/tiling/... ./internal/obs/... ./internal/telemetry/... ./spgemm/...

check: vet lint staticcheck govulncheck race test bench-engine bench-fusion bench-trsv chaos telemetry-smoke

# telemetry-smoke is the live-observability gate: run a small stats
# experiment with an ephemeral debug listener attached, then have the
# tool self-check its own server before exiting — /metrics must parse
# as Prometheus text exposition with every required series present and
# a nonzero run count, /stats must pass stats/v1 validation, /flight
# must pass flightrec/v1 validation, /healthz must answer. Part of
# `make check`; see docs/OBSERVABILITY.md, "Live telemetry".
telemetry-smoke:
	$(GO) run ./cmd/spgemm-bench -experiment stats -shift 6 \
		-graphs GAP-road-sim -reps 2 -budget 1s -telemetry-check

# chaos is the fault-injection gate: the seeded chaos suite runs under
# the race detector (fault matrix, quarantine, retry ladder, stall
# watchdog), then the bench drill replays the matrix against a shared
# engine and pins the nil-injector fast path's allocations. Both fail
# on any pool-invariant violation (Engine.SelfCheck), untyped error, or
# result divergence. Part of `make check`; see docs/RESILIENCE.md.
CHAOS_SEED ?= 1
chaos:
	$(GO) test -race -run 'Chaos|Retry|Stall|Injected|Quarantine|SelfCheck|PanicErrorUnwrap|Seeded|NilInjector|StepExecutes' \
		./internal/chaos/... ./internal/sched/... ./internal/exec/... ./internal/core/... ./spgemm/...
	$(GO) run ./cmd/spgemm-bench -experiment chaos -chaos-seed $(CHAOS_SEED)

# Short fuzz passes over the hostile-input surface: the MatrixMarket
# text parser and the binary CSR container.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/mtx -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/mtx -fuzz='^FuzzReadBinary$$' -fuzztime=$(FUZZTIME)

bench-plan:
	$(GO) run ./cmd/spgemm-bench -experiment plan -shift 3

bench-sched:
	$(GO) run ./cmd/spgemm-bench -experiment sched -shift 3

# bench-smoke pushes a tiny graph through the full stats pipeline: the
# tool writes BENCH_stats.json and self-validates that the document
# strictly round-trips through its declared schema before exiting 0.
bench-smoke:
	$(GO) run ./cmd/spgemm-bench -experiment stats -shift 6 \
		-graphs GAP-road-sim -reps 2 -budget 1s -stats-json
	@rm -f BENCH_stats.json

bench-stats:
	$(GO) run ./cmd/spgemm-bench -experiment stats -shift 3 -stats-json

# bench-engine is the execution-engine regression gate: run the warm
# iterative workloads (k-truss, BC-batch) on a small graph through a
# shared engine and fail unless every warm loop serves >= 95% of its
# workspace checkouts from the pool. Part of `make check`.
bench-engine:
	$(GO) run ./cmd/spgemm-bench -experiment engine -shift 6 \
		-graphs GAP-road-sim -reps 2 -budget 1s -min-hit-rate 0.95

# bench-fusion is the fused-pipeline regression gate: run the fused
# k-truss and BC-batch formulations warm against their materializing
# twins on a small graph and fail if any fused workload allocates more
# per operation than its unfused twin (results are checksum-compared
# inside the experiment). Part of `make check`.
bench-fusion:
	$(GO) run ./cmd/spgemm-bench -experiment fusion -shift 6 \
		-graphs GAP-road-sim -reps 2 -budget 1s -check-fused-allocs

# bench-trsv is the triangular-solve regression gate: solve L·x = 1 on
# a small graph with the serial substitution loop and the
# dependency-wave schedule, self-validating the bench-trsv/v1 document.
# Bit-identity between the two solutions is asserted unconditionally
# inside the experiment; the speedup bound is opt-in via TRSV_SPEEDUP
# (e.g. TRSV_SPEEDUP=1.0) because the wave win needs real cores —
# timing on a single-core runner proves nothing. Part of `make check`.
TRSV_SPEEDUP ?= 0
bench-trsv:
	$(GO) run ./cmd/spgemm-bench -experiment trsv -shift 6 \
		-graphs GAP-road-sim,hollywood-2009-sim -reps 2 -budget 1s \
		-trsv-json -min-trsv-speedup $(TRSV_SPEEDUP)
	@rm -f BENCH_trsv.json

# bench-kappa exercises the online κ recalibrator against an offline
# sweep. Timing-sensitive, so it is informational rather than part of
# `make check`; add -kappa-slack via KAPPA_SLACK to assert the bound.
KAPPA_SLACK ?= 0
bench-kappa:
	$(GO) run ./cmd/spgemm-bench -experiment kappa-adapt -shift 3 \
		-reps 3 -budget 2s -kappa-slack $(KAPPA_SLACK)
