GO ?= go

.PHONY: build test vet race check bench-plan bench-sched

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The scheduler and kernel are the concurrency-bearing packages: run them
# under the race detector with the Guided policy and parallel plan paths
# exercised by their tests.
race:
	$(GO) test -race ./internal/sched/... ./internal/core/... ./internal/tiling/...

check: vet race test

bench-plan:
	$(GO) run ./cmd/spgemm-bench -experiment plan -shift 3

bench-sched:
	$(GO) run ./cmd/spgemm-bench -experiment sched -shift 3
