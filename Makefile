GO ?= go

.PHONY: build test vet race check fuzz bench-plan bench-sched

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The scheduler, kernel and public facade are the concurrency-bearing
# packages: run them under the race detector with the Guided policy,
# panic containment, cancellation and parallel plan paths exercised by
# their tests.
race:
	$(GO) test -race ./internal/sched/... ./internal/core/... ./internal/tiling/... ./spgemm/...

check: vet race test

# Short fuzz passes over the hostile-input surface: the MatrixMarket
# text parser and the binary CSR container.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/mtx -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/mtx -fuzz='^FuzzReadBinary$$' -fuzztime=$(FUZZTIME)

bench-plan:
	$(GO) run ./cmd/spgemm-bench -experiment plan -shift 3

bench-sched:
	$(GO) run ./cmd/spgemm-bench -experiment sched -shift 3
