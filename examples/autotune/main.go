// Autotuning: the paper's Figure 12 staged flow (measure tiling →
// co-iteration factor → accumulator state) versus the execution-time
// model predictor from the paper's future-work direction, demonstrated
// on the circuit-style matrix whose default configuration is far from
// optimal — the workload where tuning matters most.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"maskedspgemm/spgemm"
)

func main() {
	// A circuit-simulation-style matrix: thin banded wiring plus a few
	// dense power rails. Without co-iteration, the rails force full
	// scans of enormous rows — the paper's circuit5M pathology.
	a := spgemm.RandomGraph("circuit", 12000, 41)
	s := a.Stats()
	fmt.Printf("circuit-style graph: n=%d nnz=%d max-degree=%d avg=%.1f\n\n",
		s.Rows, s.NNZ, s.MaxRowNNZ, s.AvgRowNNZ)

	run := func(name string, o spgemm.Options) int64 {
		start := time.Now()
		c, err := spgemm.MxM(a, a, a, o)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-34s %10s   (nnz %d)\n", name, time.Since(start).Round(time.Microsecond), c.NNZ())
		return c.NNZ()
	}

	// 1. A deliberately poor choice: linear scanning only.
	bad := spgemm.Defaults()
	bad.Iteration = spgemm.IterMaskLoad
	nnzBad := run("mask-load only (no co-iteration)", bad)

	// 2. The paper's recommended defaults.
	nnzDef := run("paper defaults (hybrid κ=1)", spgemm.Defaults())

	// 3. The execution-time model: one structural pass, no trial runs.
	predicted, err := spgemm.PredictOptions(a, a, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel predicted: iteration=%d accumulator=%d tiles=%d\n",
		predicted.Iteration, predicted.Accumulator, predicted.Tiles)
	nnzPred := run("model-predicted options", predicted)

	// 4. The full staged tuner (Fig. 12): measures candidate configs.
	fmt.Println("\nstaged tuning (Fig. 12 flow):")
	tuned, err := spgemm.Tune(a, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	nnzTuned := run("staged-tuned options", tuned)

	if nnzBad != nnzDef || nnzDef != nnzPred || nnzPred != nnzTuned {
		log.Fatal("configurations disagree on the result — kernel bug")
	}
	fmt.Println("\nall configurations produced identical results; only time differs")
}
