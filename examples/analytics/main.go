// Full graph-analytics pipeline on one social network: every workload
// family the paper's introduction motivates for the masked-SpGEMM
// kernel, run back to back through the public API — triangle counting,
// k-truss, k-core, connected components, BFS, betweenness centrality
// (vector and batched), shortest paths, and PageRank.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"maskedspgemm/spgemm"
)

func main() {
	a := spgemm.RandomGraph("rmat", 1<<12, 4242)
	s := a.Stats()
	fmt.Printf("R-MAT social network: n=%d edges=%d max-deg=%d avg=%.1f\n\n",
		s.Rows, s.NNZ/2, s.MaxRowNNZ, s.AvgRowNNZ)

	step := func(name string, f func() string) {
		start := time.Now()
		out := f()
		fmt.Printf("%-28s %-40s %10s\n", name, out, time.Since(start).Round(time.Microsecond))
	}

	opts := spgemm.Defaults()

	step("triangles", func() string {
		n, err := spgemm.TriangleCount(a, opts)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%d", n)
	})

	step("trussness", func() string {
		k := 3
		for {
			truss, _, err := spgemm.KTruss(a, k, opts)
			if err != nil {
				log.Fatal(err)
			}
			if truss.NNZ() == 0 {
				return fmt.Sprintf("max k-truss: %d", k-1)
			}
			k++
		}
	})

	step("degeneracy (k-core)", func() string {
		_, maxCore, err := spgemm.KCore(a)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%d", maxCore)
	})

	step("connected components", func() string {
		_, comps, err := spgemm.ConnectedComponents(a)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%d", comps)
	})

	step("BFS eccentricity(0)", func() string {
		levels, err := spgemm.BFS(a, 0)
		if err != nil {
			log.Fatal(err)
		}
		var maxL int32
		reached := 0
		for _, l := range levels {
			if l > maxL {
				maxL = l
			}
			if l >= 0 {
				reached++
			}
		}
		return fmt.Sprintf("%d (reached %d)", maxL, reached)
	})

	step("shortest paths from 0", func() string {
		dist, err := spgemm.ShortestPaths(a, 0)
		if err != nil {
			log.Fatal(err)
		}
		far, reach := 0.0, 0
		for _, d := range dist {
			if !math.IsInf(d, 1) {
				reach++
				if d > far {
					far = d
				}
			}
		}
		return fmt.Sprintf("max finite dist %.0f over %d", far, reach)
	})

	sources := []int{0, 100, 500, 1000, 2000}
	var bcVec []float64
	step("betweenness (vector)", func() string {
		var err error
		bcVec, err = spgemm.BetweennessCentrality(a, sources)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("top=%0.1f", maxOf(bcVec))
	})

	step("betweenness (batched)", func() string {
		bcBatch, err := spgemm.BetweennessCentralityBatch(a, sources, opts)
		if err != nil {
			log.Fatal(err)
		}
		for v := range bcBatch {
			if math.Abs(bcBatch[v]-bcVec[v]) > 1e-6 {
				log.Fatalf("batched BC disagrees at %d: %v vs %v", v, bcBatch[v], bcVec[v])
			}
		}
		return "matches vector variant"
	})

	step("pagerank top-3", func() string {
		ranks, err := spgemm.PageRank(a, 0.85, 1e-9, 200)
		if err != nil {
			log.Fatal(err)
		}
		type vr struct {
			v int
			r float64
		}
		top := make([]vr, 0, len(ranks))
		for v, r := range ranks {
			top = append(top, vr{v, r})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
		return fmt.Sprintf("v%d v%d v%d", top[0].v, top[1].v, top[2].v)
	})
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
