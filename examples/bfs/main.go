// Direction-optimizing BFS on a road network: the masked sparse
// vector-matrix product with a complement mask, whose push/pull decision
// is the vector-scale analogue of the paper's co-iteration trade-off
// (§VI relates the two). Also demonstrates betweenness centrality on a
// small sample of sources.
package main

import (
	"fmt"
	"log"
	"sort"

	"maskedspgemm/spgemm"
)

func main() {
	// A long-diameter lattice, like the paper's europe_osm / GAP-road.
	a := spgemm.RandomGraph("road", 120*120, 99)
	fmt.Printf("road network: n=%d, edges=%d\n", a.Rows(), a.NNZ()/2)

	levels, err := spgemm.BFS(a, 0)
	if err != nil {
		log.Fatal(err)
	}

	reached, maxLevel := 0, int32(0)
	hist := map[int32]int{}
	for _, l := range levels {
		if l >= 0 {
			reached++
			hist[l]++
			if l > maxLevel {
				maxLevel = l
			}
		}
	}
	fmt.Printf("reached %d/%d vertices, eccentricity of source: %d\n", reached, a.Rows(), maxLevel)

	// Frontier profile: road networks have long, thin frontiers — the
	// regime where pull never pays off.
	var peaks []int32
	for l := range hist {
		peaks = append(peaks, l)
	}
	sort.Slice(peaks, func(i, j int) bool { return hist[peaks[i]] > hist[peaks[j]] })
	if len(peaks) > 0 {
		fmt.Printf("widest frontier: level %d with %d vertices\n", peaks[0], hist[peaks[0]])
	}

	// Betweenness centrality from a source sample.
	sources := []int{0, a.Rows() / 2, a.Rows() - 1}
	bc, err := spgemm.BetweennessCentrality(a, sources)
	if err != nil {
		log.Fatal(err)
	}
	best, bestV := -1.0, -1
	for v, c := range bc {
		if c > best {
			best, bestV = c, v
		}
	}
	fmt.Printf("highest sampled betweenness: vertex %d (%.1f)\n", bestV, best)
}
