// k-truss decomposition: peels an R-MAT social network down through
// increasingly dense trusses by iterating the masked SpGEMM support
// kernel S = A ⊙ (A×A) — the second workload family the paper's
// introduction motivates.
package main

import (
	"fmt"
	"log"

	"maskedspgemm/spgemm"
)

func main() {
	a := spgemm.RandomGraph("rmat", 1<<11, 7)
	fmt.Printf("graph: n=%d, edges=%d\n", a.Rows(), a.NNZ()/2)

	opts := spgemm.Defaults()
	prevEdges := a.NNZ() / 2
	for k := 3; ; k++ {
		truss, rounds, err := spgemm.KTruss(a, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		edges := truss.NNZ() / 2
		fmt.Printf("%2d-truss: %7d edges (%d prune rounds)\n", k, edges, rounds)
		if edges == 0 {
			fmt.Printf("trussness of the graph: %d\n", k-1)
			break
		}
		if edges > prevEdges {
			log.Fatalf("%d-truss grew: %d > %d edges — monotonicity violated", k, edges, prevEdges)
		}
		prevEdges = edges
	}
}
