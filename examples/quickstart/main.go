// Quickstart: build a small graph, run the masked SpGEMM kernel
// C = A ⊙ (A×A), and count its triangles — the minimal end-to-end tour
// of the public API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"maskedspgemm/spgemm"
)

func main() {
	// The "bowtie": two triangles sharing vertex 2.
	//
	//	0---1        3---4
	//	 \  |        |  /
	//	  \ |        | /
	//	    2--------2
	a, err := spgemm.FromEdges(5, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3}, {3, 4}, {4, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", a.Rows(), a.NNZ()/2)

	// C = A ⊙ (A×A): for every edge (i,j), the number of common
	// neighbors of i and j — i.e. triangles through that edge.
	opts := spgemm.Defaults()
	opts.Semiring = spgemm.SRPlusPair // count matches, ignore values
	c, err := spgemm.MxM(a, a, a, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("support matrix nnz: %d, total wedge closures: %.0f\n", c.NNZ(), c.Sum())

	// Each triangle is counted 6 times in C's sum (3 edges × 2
	// orientations); TriangleCount does the bookkeeping.
	tri, err := spgemm.TriangleCount(a, spgemm.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", tri)

	// The same result with every iteration space — the kernel's answer
	// is configuration-independent; only the runtime changes.
	for _, it := range []spgemm.Iteration{
		spgemm.IterVanilla, spgemm.IterMaskLoad, spgemm.IterCoIter, spgemm.IterHybrid,
	} {
		o := spgemm.Defaults()
		o.Iteration = it
		n, err := spgemm.TriangleCount(a, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iteration space %d -> %d triangles\n", it, n)
	}

	// Production hardening (docs/ERRORS.md): a context makes the multiply
	// cancellable, and ValidateInputs vets untrusted operands up front —
	// every failure mode comes back as a typed error, never a panic.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	hard := spgemm.Defaults()
	hard.ValidateInputs = true
	if _, err := spgemm.MxMContext(ctx, a, a, a, hard); err != nil {
		switch {
		case errors.Is(err, spgemm.ErrCanceled):
			log.Fatal("timed out:", err)
		case errors.Is(err, spgemm.ErrInvalidMatrix):
			log.Fatal("bad operand:", err)
		default:
			log.Fatal(err)
		}
	}
	fmt.Println("validated, cancellable multiply: ok")
}
