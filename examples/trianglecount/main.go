// Triangle counting at benchmark scale: generates an R-MAT social
// network (the com-Orkut-style workload of the paper), counts triangles
// under several kernel configurations, and prints the timing spread —
// a miniature of the paper's Figure 1 on one graph.
package main

import (
	"fmt"
	"log"
	"time"

	"maskedspgemm/spgemm"
)

func main() {
	a := spgemm.RandomGraph("rmat", 1<<13, 2024)
	s := a.Stats()
	fmt.Printf("R-MAT social graph: n=%d nnz=%d max-degree=%d\n", s.Rows, s.NNZ, s.MaxRowNNZ)

	type variant struct {
		name string
		opts spgemm.Options
	}
	variants := []variant{
		{"hybrid κ=1, hash, balanced+dynamic (paper's pick)", spgemm.Defaults()},
		{"mask-load, hash", func() spgemm.Options {
			o := spgemm.Defaults()
			o.Iteration = spgemm.IterMaskLoad
			return o
		}()},
		{"mask-load, dense", func() spgemm.Options {
			o := spgemm.Defaults()
			o.Iteration = spgemm.IterMaskLoad
			o.Accumulator = spgemm.AccDense
			return o
		}()},
		{"co-iterate always", func() spgemm.Options {
			o := spgemm.Defaults()
			o.Iteration = spgemm.IterCoIter
			return o
		}()},
		{"uniform tiles, static schedule", func() spgemm.Options {
			o := spgemm.Defaults()
			o.Tiling = spgemm.TileUniform
			o.Schedule = spgemm.SchedStatic
			return o
		}()},
	}

	var want int64 = -1
	for _, v := range variants {
		start := time.Now()
		n, err := spgemm.TriangleCount(a, v.opts)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		elapsed := time.Since(start)
		if want < 0 {
			want = n
		} else if n != want {
			log.Fatalf("%s: count %d != %d — kernel variants must agree", v.name, n, want)
		}
		fmt.Printf("%-48s %10s   (%d triangles)\n", v.name, elapsed.Round(time.Microsecond), n)
	}

	// The cheaper lower-triangular formulation computes the same count.
	ll, err := spgemm.TriangleCountLL(a, spgemm.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	if ll != want {
		log.Fatalf("L·L formulation disagrees: %d != %d", ll, want)
	}
	fmt.Printf("L⊙(L×L) formulation agrees: %d triangles\n", ll)
}
