// Command trianglecount counts triangles in a graph given as a
// MatrixMarket file (or a generated corpus graph), using the masked
// SpGEMM kernel — the paper's benchmark workload end to end.
//
// Usage:
//
//	trianglecount -in graph.mtx [-method burkhardt|sandia|cohen] [flags]
//	trianglecount -corpus GAP-road-sim [-shift N] [flags]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/model"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/telemetry"
)

func main() {
	in := flag.String("in", "", "MatrixMarket input file")
	corpus := flag.String("corpus", "", "use a generated corpus graph instead of -in")
	shift := flag.Int("shift", 0, "halve corpus graph sizes this many times")
	method := flag.String("method", "burkhardt", "burkhardt | sandia | cohen")
	tiles := flag.Int("tiles", 2048, "tile count")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	kappa := flag.Float64("kappa", 1, "co-iteration factor")
	statsFlag := flag.Bool("stats", false, "print kernel observability stats after counting")
	statsJSON := flag.String("stats-json", "", "write kernel observability stats to this JSON file")
	useEngine := flag.Bool("engine", false, "pool workspaces and plans in an execution engine across -repeat runs")
	repeat := flag.Int("repeat", 1, "count this many times (with -engine, later runs recycle pooled workspaces)")
	adaptKappa := flag.Bool("adaptive-kappa", false, "recalibrate κ online across -repeat runs, starting from -kappa (requires -engine)")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /stats, /flight, pprof) on this address while counting (e.g. :6060)")
	flag.Parse()

	var a *sparse.CSR[float64]
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*in, ".bin") {
			a, err = mtx.ReadBinary(f)
		} else {
			a, err = mtx.Read(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		// Triangle counting needs a symmetric, loop-free pattern.
		a = sparse.DropDiagonal(sparse.Symmetrize(a)).Pattern()
	case *corpus != "":
		g, ok := bench.FindGraph(*corpus)
		if !ok {
			fatal(fmt.Errorf("unknown corpus graph %q", *corpus))
		}
		built := g.Build(*shift)
		// Web graphs are directed; symmetrize for triangle counting.
		a = sparse.DropDiagonal(sparse.Symmetrize(built)).Pattern()
	default:
		flag.Usage()
		os.Exit(2)
	}

	var m graph.TriangleMethod
	switch *method {
	case "burkhardt":
		m = graph.Burkhardt
	case "sandia":
		m = graph.SandiaLL
	case "cohen":
		m = graph.Cohen
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	// SIGINT/SIGTERM cancel the in-flight multiplication cooperatively:
	// workers drain, buffers stay consistent, and the process exits
	// through the normal error path instead of a raw panic trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := core.DefaultConfig()
	cfg.Tiles = *tiles
	cfg.Workers = *workers
	cfg.Kappa = *kappa
	cfg.Context = ctx
	if *statsFlag || *statsJSON != "" || *listen != "" {
		cfg.Recorder = obs.NewRecorder()
	}
	var eng *exec.Engine
	if *useEngine {
		eng = exec.New(exec.Config{})
		cfg.Engine = eng
	}
	// -listen serves the live registry for the duration of the count:
	// latency histograms fed by the run's recorder, pool gauges from the
	// engine when -engine is set, pprof and expvar for deeper digging.
	if *listen != "" {
		tel := telemetry.New(telemetry.Config{})
		tel.AttachRecorder(cfg.Recorder)
		tel.AttachEngine(eng)
		srv, err := tel.Start(*listen)
		if err != nil {
			fatal(fmt.Errorf("-listen %s: %w", *listen, err))
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry listening on %s (metrics: %s/metrics)\n",
			srv.Addr(), srv.URL())
	}
	// Online κ recalibration: each repeat proposes a κ, runs, and feeds
	// the measured cost back into the estimator cached on the engine.
	var rc *model.Recalibrator
	if *adaptKappa {
		if eng == nil {
			fatal(errors.New("-adaptive-kappa requires -engine (the estimator persists on it)"))
		}
		if cfg.Recorder == nil {
			cfg.Recorder = obs.NewRecorder()
		}
		rc = model.TuneFor(eng, a, a, a, model.RecalConfig{DefaultKappa: *kappa})
	}

	start := time.Now()
	var count int64
	var err error
	runs := max(*repeat, 1)
	for r := 0; r < runs; r++ {
		if rc != nil {
			cfg.Kappa = rc.Propose()
		}
		runStart := time.Now()
		count, err = graph.TriangleCount(a, m, cfg)
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				fatal(fmt.Errorf("interrupted: %w", err))
			}
			fatal(err)
		}
		if rc != nil {
			st, _ := cfg.Recorder.LastRun()
			cfg.Recorder.AddRecal(rc.Observe(time.Since(runStart).Seconds(), st))
		}
	}
	elapsed := time.Since(start) / time.Duration(runs)
	fmt.Printf("vertices: %d\nedges:    %d\ntriangles: %d\nmethod: %s  config: %v\ntime: %s\n",
		a.Rows, a.NNZ()/2, count, *method, cfg, elapsed.Round(time.Microsecond))
	if eng != nil {
		st := eng.Stats()
		fmt.Printf("engine pool: %d hits, %d steals, %d misses over %d runs (hit rate %.1f%%)\n",
			st.Hits, st.Steals, st.Misses, runs, st.HitRate()*100)
	}
	if rc != nil {
		fmt.Printf("adaptive κ: settled at %.4g after %d runs (converged: %v)\n",
			rc.Kappa(), runs, rc.Converged())
	}

	if cfg.Recorder != nil {
		st := cfg.Recorder.Stats()
		if *statsFlag {
			fmt.Println("kernel stats:")
			st.WriteTable(os.Stdout)
		}
		if *statsJSON != "" {
			data, err := obs.MarshalJSONBytes(st)
			if err != nil {
				fatal(err)
			}
			if err := obs.ValidateStatsJSON(data); err != nil {
				fatal(fmt.Errorf("stats self-validation: %w", err))
			}
			if err := os.WriteFile(*statsJSON, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, schema validated)\n", *statsJSON, len(data))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trianglecount:", err)
	os.Exit(1)
}
