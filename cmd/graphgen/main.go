// Command graphgen writes the synthetic benchmark corpus (or a single
// named graph) to MatrixMarket files, so the stand-ins for the paper's
// Table I matrices can be inspected or fed to other tools.
//
// Usage:
//
//	graphgen -out DIR [-shift N] [-graph NAME] [-pattern]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/sparse"
)

func main() {
	out := flag.String("out", ".", "output directory")
	shift := flag.Int("shift", 0, "halve graph sizes this many times")
	graph := flag.String("graph", "", "generate only this corpus graph")
	pattern := flag.Bool("pattern", false, "write pattern (structure-only) files")
	format := flag.String("format", "mtx", "mtx (MatrixMarket text) or bin (binary CSR, ~4x faster to load)")
	flag.Parse()
	if *format != "mtx" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs := bench.Corpus
	if *graph != "" {
		g, ok := bench.FindGraph(*graph)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown graph %q\n", *graph)
			os.Exit(2)
		}
		specs = []bench.GraphSpec{g}
	}
	for _, g := range specs {
		a := g.Build(*shift)
		path := filepath.Join(*out, g.Name+"."+*format)
		if err := writeMatrix(path, a, *pattern, *format); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.Name, err)
			os.Exit(1)
		}
		s := sparse.ComputeStats(a, false)
		fmt.Printf("%-22s -> %s  (n=%d, nnz=%d)\n", g.Name, path, s.Rows, s.NNZ)
	}
}

func writeMatrix(path string, a *sparse.CSR[float64], pattern bool, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case format == "bin":
		err = mtx.WriteBinary(f, a)
	case pattern:
		err = mtx.WritePattern(f, a)
	default:
		err = mtx.Write(f, a)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
