// Command graphgen writes the synthetic benchmark corpus (or a single
// named graph) to MatrixMarket files, so the stand-ins for the paper's
// Table I matrices can be inspected or fed to other tools.
//
// Usage:
//
//	graphgen -out DIR [-shift N] [-graph NAME] [-pattern]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/sparse"
)

func main() {
	out := flag.String("out", ".", "output directory")
	shift := flag.Int("shift", 0, "halve graph sizes this many times")
	graph := flag.String("graph", "", "generate only this corpus graph")
	pattern := flag.Bool("pattern", false, "write pattern (structure-only) files")
	format := flag.String("format", "mtx", "mtx (MatrixMarket text) or bin (binary CSR, ~4x faster to load)")
	flag.Parse()
	if *format != "mtx" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	// SIGINT/SIGTERM stop the generation loop at the next graph boundary
	// and abort an in-progress write, removing its partial file so the
	// output directory never holds a truncated matrix.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs := bench.Corpus
	if *graph != "" {
		g, ok := bench.FindGraph(*graph)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown graph %q\n", *graph)
			os.Exit(2)
		}
		specs = []bench.GraphSpec{g}
	}
	for _, g := range specs {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen: interrupted; stopping before", g.Name)
			os.Exit(1)
		}
		a := g.Build(*shift)
		path := filepath.Join(*out, g.Name+"."+*format)
		if err := writeMatrix(ctx, path, a, *pattern, *format); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.Name, err)
			os.Exit(1)
		}
		s := sparse.ComputeStats(a, false)
		fmt.Printf("%-22s -> %s  (n=%d, nnz=%d)\n", g.Name, path, s.Rows, s.NNZ)
	}
}

func writeMatrix(ctx context.Context, path string, a *sparse.CSR[float64], pattern bool, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := &ctxWriter{ctx: ctx, w: f}
	switch {
	case format == "bin":
		err = mtx.WriteBinary(w, a)
	case pattern:
		err = mtx.WritePattern(w, a)
	default:
		err = mtx.Write(w, a)
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		// Never leave a truncated matrix behind.
		os.Remove(path)
		return err
	}
	return nil
}

// ctxWriter aborts a long matrix serialization as soon as its context
// is cancelled, surfacing the context error through the writer chain.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, fmt.Errorf("write aborted: %w", err)
	}
	return c.w.Write(p)
}
