// Command spgemm-lint runs the repository's custom analyzer suite
// (internal/lint/...) over the given packages — ./... by default — and
// exits non-zero if any analyzer reports a finding.
//
// Usage:
//
//	spgemm-lint [-json] [packages]
//
// Findings print as file:line:col: [analyzer] message, one per line.
// With -json, findings are emitted on stdout as a self-validating
// maskedspgemm/lint/v1 document instead (schema tag plus a findings
// array, empty on a clean run); the exit code contract is unchanged.
// Suppress an individual finding with a //lint:ignore directive; see
// docs/LINTING.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"maskedspgemm/internal/lint"
	"maskedspgemm/internal/lint/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a maskedspgemm/lint/v1 JSON document")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-lint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(prog, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		data, err := lint.MarshalReport(lint.BuildReport(prog.Fset, diags))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-lint:", err)
			os.Exit(2)
		}
		os.Stdout.Write(data)
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
