// Command spgemm-bench regenerates the tables and figures of "To tile or
// not to tile, that is the question" (IPDPSW 2024) on the synthetic
// corpus. Each experiment prints the same rows/series the paper reports.
//
// Usage:
//
//	spgemm-bench -experiment table1|fig1|fig10|fig11|fig13|fig14|tune|ablation|predict|model|plan|sched|stats|engine|fusion|kappa-adapt|trsv|chaos|all [flags]
//
// Flags:
//
//	-shift N         halve graph sizes N times (default 0 = benchmark scale)
//	-workers N       kernel worker goroutines (default GOMAXPROCS)
//	-plan-workers N  plan-construction/assembly goroutines (default = workers)
//	-guided-chunk N  chunk floor for the Guided schedule (default 1)
//	-reps N          max timed repetitions per configuration (default 3)
//	-budget D        per-configuration time budget (default 2s)
//	-graphs CSV      restrict to named graphs (default all)
//	-stats           run the kernel observability experiment (human table)
//	-stats-json      also write the stats report to BENCH_stats.json
//	-json            write each run's measurements to results_<experiment>.json
//	-engine          run every experiment against one shared execution engine
//	-pool-cap N      idle-workspace cap for that engine (0 = default)
//	-engine-json     with -experiment engine, write BENCH_engine.json
//	-min-hit-rate F  with -experiment engine, fail below this warm hit rate
//	-retention-mb N  size the shared -engine by an N-MiB retention budget
//	-fusion          run the fused-pipeline experiment (= -experiment fusion)
//	-fusion-json     with the fusion experiment, write BENCH_fusion.json
//	-check-fused-allocs  fail if any fused workload allocates more than unfused
//	-adaptive-kappa  run the online-κ experiment (= -experiment kappa-adapt)
//	-kappa-json      with the κ experiment, write BENCH_kappa_adapt.json
//	-kappa-slack F   fail if adapted κ is more than F worse than best/default
//	-trsv            run the triangular-solve experiment (= -experiment trsv)
//	-trsv-json       with the trsv experiment, write BENCH_trsv.json
//	-min-trsv-speedup F  fail unless waves beat serial by F on some graph
//	-chaos-seed N    run the seeded chaos drill (= -experiment chaos)
//	-listen ADDR     serve live telemetry (/metrics, /stats, /flight,
//	                 expvar, pprof) on ADDR while the experiments run
//	-telemetry-check self-scrape the telemetry endpoints after the run
//	                 and fail unless they parse with every required
//	                 series (implies -listen 127.0.0.1:0)
//
// The chaos drill (-chaos-seed N or -experiment chaos) replays the
// seeded fault matrix of the chaos test suite against one shared
// engine — every injection point under every scheduling policy — and
// requires each cell to surface a typed error or reproduce the
// fault-free result bit-identically, with the workspace pool's
// invariants (Engine.SelfCheck) holding after every cell. It then pins
// the nil-injector fast path: a warm serial multiply with chaos
// disabled must not allocate more than the armed-but-quiet injector
// path, nor exceed the pre-chaos steady-state budget. Any violation
// exits nonzero; `make chaos` runs it alongside the -race chaos tests.
//
// The fusion experiment (-experiment fusion) times the fused
// formulations of the iterative workloads — k-truss with the
// select-fused support round, batched BC with the streamed backward
// sweep — against their materializing twins, both warm through their
// own engines; -check-fused-allocs turns it into the
// `make bench-fusion` regression gate.
//
// The kappa-adapt experiment (-experiment kappa-adapt) sweeps κ
// offline on the benchmark kernel, then lets the online recalibrator
// adapt from the default over a bounded warm loop and times the κ it
// settles on; -kappa-slack 0.05 asserts the paper-accepted bound.
//
// The engine experiment (-experiment engine) times the iterative graph
// workloads (k-truss, batched betweenness centrality) with and without
// a shared execution engine, reporting wall time, allocations per
// operation, and the warm-loop workspace-pool hit rate; -min-hit-rate
// turns it into the `make bench-engine` regression gate.
//
// The stats experiment times the tuned configuration on every corpus
// graph with a live recorder: per-phase wall times, exact per-worker
// tile/row/FLOP counters with load-imbalance summaries, hybrid Eq. 3
// decision counts, and accumulator statistics. It can also be selected
// directly with -experiment stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	shift := flag.Int("shift", 0, "halve graph sizes this many times")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	planWorkers := flag.Int("plan-workers", 0, "plan-construction/assembly goroutines (0 = same as workers)")
	guidedChunk := flag.Int("guided-chunk", 0, "chunk floor for the Guided schedule (0 = 1)")
	reps := flag.Int("reps", 3, "max timed repetitions")
	budget := flag.Duration("budget", 2*time.Second, "per-config time budget")
	graphs := flag.String("graphs", "", "comma-separated graph names (default all)")
	statsFlag := flag.Bool("stats", false, "run the kernel observability experiment (human table)")
	statsJSON := flag.Bool("stats-json", false, "write the stats report to BENCH_stats.json (implies -stats)")
	jsonOut := flag.Bool("json", false, "write measurements to results_<experiment>.json")
	useEngine := flag.Bool("engine", false, "run all experiments against one shared execution engine (pooled workspaces + plan cache)")
	poolCap := flag.Int("pool-cap", 0, "idle-workspace cap for -engine (0 = default, negative disables retention)")
	engineJSON := flag.Bool("engine-json", false, "with -experiment engine, write the report to BENCH_engine.json")
	minHitRate := flag.Float64("min-hit-rate", 0, "with -experiment engine, fail if any warm-loop pool hit rate is below this fraction")
	retentionMB := flag.Int64("retention-mb", 0, "size the shared -engine by this retention budget in MiB (0 = use -pool-cap; implies -engine)")
	fusionFlag := flag.Bool("fusion", false, "run the fused-pipeline experiment (same as -experiment fusion)")
	fusionJSON := flag.Bool("fusion-json", false, "with the fusion experiment, write the report to BENCH_fusion.json")
	checkFusedAllocs := flag.Bool("check-fused-allocs", false, "with the fusion experiment, fail if any fused workload allocates more per op than its unfused twin")
	adaptiveKappa := flag.Bool("adaptive-kappa", false, "run the online-κ recalibration experiment (same as -experiment kappa-adapt)")
	kappaJSON := flag.Bool("kappa-json", false, "with the κ experiment, write the report to BENCH_kappa_adapt.json")
	kappaSlack := flag.Float64("kappa-slack", 0, "with the κ experiment, fail if the adapted κ's warm time is more than this fraction over the best swept κ or the static default")
	trsvFlag := flag.Bool("trsv", false, "run the triangular-solve experiment (same as -experiment trsv)")
	trsvJSON := flag.Bool("trsv-json", false, "with the trsv experiment, write the report to BENCH_trsv.json")
	minTrsvSpeedup := flag.Float64("min-trsv-speedup", 0, "with the trsv experiment, fail unless some graph's wave schedule beats serial by this factor (0 = bit-identity gate only)")
	chaosSeed := flag.Int64("chaos-seed", 0, "run the seeded chaos drill with this seed (0 = off; same as -experiment chaos with seed 1)")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /stats, /flight, pprof) on this address while experiments run (e.g. :6060 or 127.0.0.1:0)")
	telemetryCheck := flag.Bool("telemetry-check", false, "after the experiments, self-scrape the telemetry server and fail unless /metrics, /stats and /flight parse with all required series (implies -listen 127.0.0.1:0)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the measurement loop between repetitions
	// (and in-flight kernels that observe the context); already-printed
	// experiment sections remain as flushed partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := bench.DefaultOptions()
	o.Shift = *shift
	o.Workers = *workers
	o.PlanWorkers = *planWorkers
	o.GuidedMinChunk = *guidedChunk
	o.Method = bench.Methodology{Warmups: 1, MaxReps: *reps, Budget: *budget, Context: ctx}
	if *graphs != "" {
		for _, g := range strings.Split(*graphs, ",") {
			name := strings.TrimSpace(g)
			if _, ok := bench.FindGraph(name); !ok {
				fmt.Fprintf(os.Stderr, "unknown graph %q; available: %s\n",
					name, strings.Join(bench.CorpusNames(), ", "))
				os.Exit(2)
			}
			o.Graphs = append(o.Graphs, name)
		}
	}
	if *jsonOut {
		o.Log = &bench.ResultLog{}
	}
	switch {
	case *retentionMB != 0:
		if *retentionMB < 0 {
			fmt.Fprintf(os.Stderr, "-retention-mb must be >= 0, got %d\n", *retentionMB)
			os.Exit(2)
		}
		eng, err := bench.EngineWithBudget(o, *retentionMB<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-retention-mb: %v\n", err)
			os.Exit(2)
		}
		o.Engine = eng
	case *useEngine:
		o.Engine = exec.New(exec.Config{MaxIdle: *poolCap})
	}

	// -listen serves the live registry while the experiments run;
	// -telemetry-check additionally self-scrapes it afterwards (binding
	// an ephemeral loopback port when no -listen was given) — the
	// `make telemetry-smoke` gate.
	var telSrv *telemetry.Server
	tel := (*telemetry.Telemetry)(nil)
	addr := *listen
	if addr == "" && *telemetryCheck {
		addr = "127.0.0.1:0"
	}
	if addr != "" {
		tel = telemetry.New(telemetry.Config{})
		tel.AttachEngine(o.Engine)
		o.Telemetry = tel
		srv, err := tel.Start(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-listen %s: %v\n", addr, err)
			os.Exit(2)
		}
		telSrv = srv
		defer telSrv.Close()
		fmt.Fprintf(os.Stderr, "telemetry listening on %s (metrics: %s/metrics)\n",
			telSrv.Addr(), telSrv.URL())
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "=== %s ===\n", name)
		start := time.Now()
		if err := f(); err != nil {
			if errors.Is(err, core.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", name, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			}
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false
	if want("table1") {
		run("table1", func() error { return bench.Table1(w, o) })
		ran = true
	}
	if want("fig1") {
		run("fig1", func() error { return bench.Fig1(w, o) })
		ran = true
	}
	if want("fig10") || want("fig11") {
		run("fig10+fig11", func() error {
			rel, err := bench.TileSweep(w, o)
			if err != nil {
				return err
			}
			bench.Fig10(w, rel)
			return nil
		})
		ran = true
	}
	if want("fig13") {
		run("fig13", func() error { return bench.Fig13(w, o) })
		ran = true
	}
	if want("fig14") {
		run("fig14", func() error { return bench.Fig14(w, o) })
		ran = true
	}
	if want("tune") {
		run("tune", func() error { return bench.TuneReport(w, o) })
		ran = true
	}
	if want("ablation") {
		run("ablation", func() error { return bench.Ablations(w, o) })
		ran = true
	}
	if want("predict") {
		run("predict", func() error { return bench.PredictReport(w, o) })
		ran = true
	}
	if want("model") {
		run("model", func() error { return bench.ModelValidation(w, o) })
		ran = true
	}
	if want("sortcost") {
		run("sortcost", func() error { return bench.SortCost(w, o) })
		ran = true
	}
	if want("formulations") {
		run("formulations", func() error { return bench.Formulations(w, o) })
		ran = true
	}
	if want("scaling") {
		run("scaling", func() error { return bench.Scaling(w, o) })
		ran = true
	}
	if want("counters") {
		run("counters", func() error { return bench.CountersReport(w, o) })
		ran = true
	}
	if want("plan") {
		run("plan", func() error { return bench.PlanBench(w, o) })
		ran = true
	}
	if want("sched") {
		run("sched", func() error { return bench.SchedSweep(w, o) })
		ran = true
	}
	// The engine experiment never runs under "all" implicitly — it
	// repeats the iterative workloads with and without pooling — but
	// -experiment engine selects it; -min-hit-rate turns it into the
	// `make bench-engine` gate.
	if *experiment == "engine" {
		run("engine", func() error {
			report, err := bench.EngineBench(w, o)
			if err != nil {
				return err
			}
			if *engineJSON {
				if err := writeValidated("BENCH_engine.json",
					func(f *os.File) error { return report.WriteJSON(f) },
					bench.ValidateEngineReportJSON); err != nil {
					return err
				}
			}
			if *minHitRate > 0 {
				if err := report.CheckWarmHitRate(*minHitRate); err != nil {
					return err
				}
				fmt.Fprintf(w, "warm pool hit rate >= %.0f%% on every workload (min %.1f%%)\n",
					*minHitRate*100, report.MinWarmHitRate()*100)
			}
			return nil
		})
		ran = true
	}
	// Like the engine experiment, fusion and kappa-adapt repeat the
	// iterative workloads, so "all" skips them; the -fusion and
	// -adaptive-kappa shorthands (or -experiment) select them.
	if *experiment == "fusion" || *fusionFlag {
		run("fusion", func() error {
			report, err := bench.FusionBench(w, o)
			if err != nil {
				return err
			}
			if *fusionJSON {
				if err := writeValidated("BENCH_fusion.json",
					func(f *os.File) error { return report.WriteJSON(f) },
					bench.ValidateFusionReportJSON); err != nil {
					return err
				}
			}
			if *checkFusedAllocs {
				if err := report.CheckFusedAllocs(); err != nil {
					return err
				}
				fmt.Fprintln(w, "fused allocs/op within unfused bounds on every workload")
			}
			return nil
		})
		ran = true
	}
	if *experiment == "kappa-adapt" || *adaptiveKappa {
		run("kappa-adapt", func() error {
			report, err := bench.KappaAdaptBench(w, o)
			if err != nil {
				return err
			}
			if *kappaJSON {
				if err := writeValidated("BENCH_kappa_adapt.json",
					func(f *os.File) error { return report.WriteJSON(f) },
					bench.ValidateKappaAdaptReportJSON); err != nil {
					return err
				}
			}
			if *kappaSlack > 0 {
				if err := report.CheckAdapted(*kappaSlack); err != nil {
					return err
				}
				fmt.Fprintf(w, "adapted κ within %.0f%% of the best swept κ and the static default on every graph\n",
					*kappaSlack*100)
			}
			return nil
		})
		ran = true
	}
	// The trsv experiment times the triangular-solve schedules; like the
	// other timing comparisons "all" skips it, -trsv (or -experiment
	// trsv) selects it. Bit-identity between the wave and serial
	// solutions is asserted unconditionally inside the experiment;
	// -min-trsv-speedup adds the timing bound for machines with real
	// cores — the `make bench-trsv` gate.
	if *experiment == "trsv" || *trsvFlag {
		run("trsv", func() error {
			report, err := bench.TrsvBench(w, o)
			if err != nil {
				return err
			}
			if *trsvJSON {
				if err := writeValidated("BENCH_trsv.json",
					func(f *os.File) error { return report.WriteJSON(f) },
					bench.ValidateTrsvReportJSON); err != nil {
					return err
				}
			}
			if *minTrsvSpeedup > 0 {
				if err := report.CheckWaveSpeedup(*minTrsvSpeedup); err != nil {
					return err
				}
				fmt.Fprintf(w, "wave schedule beats serial by >= %.2fx on at least one graph\n", *minTrsvSpeedup)
			}
			return nil
		})
		ran = true
	}
	// The chaos drill deliberately injects faults, so "all" skips it;
	// -chaos-seed (or -experiment chaos) selects it. It exits nonzero on
	// any pool-invariant violation, untyped failure, or result
	// divergence, and on any allocation the nil-injector fast path adds
	// to the warm tile loop — the `make chaos` gate.
	if *experiment == "chaos" || *chaosSeed != 0 {
		run("chaos", func() error {
			seed := *chaosSeed
			if seed == 0 {
				seed = 1
			}
			return bench.ChaosDrill(w, o, seed)
		})
		ran = true
	}
	// The stats experiment never runs under "all" implicitly — it repeats
	// the tuned timing — but either stats flag or -experiment stats
	// selects it.
	if *experiment == "stats" || *statsFlag || *statsJSON {
		run("stats", func() error {
			report, err := bench.CollectStats(o)
			if err != nil {
				return err
			}
			report.WriteTable(w)
			if *statsJSON {
				return writeValidated("BENCH_stats.json",
					func(f *os.File) error { return report.WriteJSON(f) },
					bench.ValidateStatsReportJSON)
			}
			return nil
		})
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if o.Log.Len() > 0 {
		name := fmt.Sprintf("results_%s.json", *experiment)
		if err := writeValidated(name,
			func(f *os.File) error { return o.Log.WriteJSON(f, *experiment) },
			bench.ValidateResultJSON); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *telemetryCheck {
		if err := telemetry.SelfCheck(telSrv.URL()); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, "telemetry self-check passed: /metrics, /stats and /flight all parse with every required series")
	}
}

// writeValidated writes a JSON document to path, reads it back, and
// checks it strictly round-trips through its declared schema — so a
// file the tool emits is a file its consumers can parse.
func writeValidated(path string, write func(*os.File) error, validate func([]byte) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := validate(data); err != nil {
		return fmt.Errorf("self-validation of %s failed: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, schema validated)\n", path, len(data))
	return nil
}
