// Command spgemm-bench regenerates the tables and figures of "To tile or
// not to tile, that is the question" (IPDPSW 2024) on the synthetic
// corpus. Each experiment prints the same rows/series the paper reports.
//
// Usage:
//
//	spgemm-bench -experiment table1|fig1|fig10|fig11|fig13|fig14|tune|ablation|predict|model|plan|sched|all [flags]
//
// Flags:
//
//	-shift N         halve graph sizes N times (default 0 = benchmark scale)
//	-workers N       kernel worker goroutines (default GOMAXPROCS)
//	-plan-workers N  plan-construction/assembly goroutines (default = workers)
//	-guided-chunk N  chunk floor for the Guided schedule (default 1)
//	-reps N          max timed repetitions per configuration (default 3)
//	-budget D        per-configuration time budget (default 2s)
//	-graphs CSV      restrict to named graphs (default all)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	shift := flag.Int("shift", 0, "halve graph sizes this many times")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	planWorkers := flag.Int("plan-workers", 0, "plan-construction/assembly goroutines (0 = same as workers)")
	guidedChunk := flag.Int("guided-chunk", 0, "chunk floor for the Guided schedule (0 = 1)")
	reps := flag.Int("reps", 3, "max timed repetitions")
	budget := flag.Duration("budget", 2*time.Second, "per-config time budget")
	graphs := flag.String("graphs", "", "comma-separated graph names (default all)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the measurement loop between repetitions
	// (and in-flight kernels that observe the context); already-printed
	// experiment sections remain as flushed partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := bench.DefaultOptions()
	o.Shift = *shift
	o.Workers = *workers
	o.PlanWorkers = *planWorkers
	o.GuidedMinChunk = *guidedChunk
	o.Method = bench.Methodology{Warmups: 1, MaxReps: *reps, Budget: *budget, Context: ctx}
	if *graphs != "" {
		for _, g := range strings.Split(*graphs, ",") {
			name := strings.TrimSpace(g)
			if _, ok := bench.FindGraph(name); !ok {
				fmt.Fprintf(os.Stderr, "unknown graph %q; available: %s\n",
					name, strings.Join(bench.CorpusNames(), ", "))
				os.Exit(2)
			}
			o.Graphs = append(o.Graphs, name)
		}
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "=== %s ===\n", name)
		start := time.Now()
		if err := f(); err != nil {
			if errors.Is(err, core.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", name, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			}
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false
	if want("table1") {
		run("table1", func() error { return bench.Table1(w, o) })
		ran = true
	}
	if want("fig1") {
		run("fig1", func() error { return bench.Fig1(w, o) })
		ran = true
	}
	if want("fig10") || want("fig11") {
		run("fig10+fig11", func() error {
			rel, err := bench.TileSweep(w, o)
			if err != nil {
				return err
			}
			bench.Fig10(w, rel)
			return nil
		})
		ran = true
	}
	if want("fig13") {
		run("fig13", func() error { return bench.Fig13(w, o) })
		ran = true
	}
	if want("fig14") {
		run("fig14", func() error { return bench.Fig14(w, o) })
		ran = true
	}
	if want("tune") {
		run("tune", func() error { return bench.TuneReport(w, o) })
		ran = true
	}
	if want("ablation") {
		run("ablation", func() error { return bench.Ablations(w, o) })
		ran = true
	}
	if want("predict") {
		run("predict", func() error { return bench.PredictReport(w, o) })
		ran = true
	}
	if want("model") {
		run("model", func() error { return bench.ModelValidation(w, o) })
		ran = true
	}
	if want("sortcost") {
		run("sortcost", func() error { return bench.SortCost(w, o) })
		ran = true
	}
	if want("formulations") {
		run("formulations", func() error { return bench.Formulations(w, o) })
		ran = true
	}
	if want("scaling") {
		run("scaling", func() error { return bench.Scaling(w, o) })
		ran = true
	}
	if want("counters") {
		run("counters", func() error { return bench.CountersReport(w, o) })
		ran = true
	}
	if want("plan") {
		run("plan", func() error { return bench.PlanBench(w, o) })
		ran = true
	}
	if want("sched") {
		run("sched", func() error { return bench.SchedSweep(w, o) })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
