module maskedspgemm

go 1.22
