package maskedspgemm

// One testing.B benchmark per table/figure of the paper's evaluation.
// These run the same kernels as cmd/spgemm-bench on a reduced corpus
// (benchShift halves sizes three times) so `go test -bench=.` finishes
// in minutes; the binary regenerates the figures at full corpus scale.

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/baseline"
	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

const benchShift = 3

var graphCache = map[string]*sparse.CSR[float64]{}

func load(b *testing.B, name string) *sparse.CSR[float64] {
	b.Helper()
	if g, ok := graphCache[name]; ok {
		return g
	}
	spec, ok := bench.FindGraph(name)
	if !ok {
		b.Fatalf("unknown graph %s", name)
	}
	g := spec.Build(benchShift)
	graphCache[name] = g
	return g
}

func runMasked(b *testing.B, a *sparse.CSR[float64], cfg core.Config) {
	b.Helper()
	sr := semiring.PlusTimes[float64]{}
	var nnz int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		nnz = c.NNZ()
	}
	b.ReportMetric(float64(nnz), "out-nnz")
}

// BenchmarkTable1Corpus measures corpus generation — the Table I
// stand-ins — one sub-benchmark per matrix.
func BenchmarkTable1Corpus(b *testing.B) {
	for _, spec := range bench.Corpus {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var nnz int64
			for i := 0; i < b.N; i++ {
				nnz = spec.Build(benchShift).NNZ()
			}
			b.ReportMetric(float64(nnz), "nnz")
		})
	}
}

// BenchmarkFig1MaskedSpGEMM compares the three implementations of
// Figure 1 — SuiteSparse-like, GrB-like, tuned — on every corpus graph
// with hash accumulators.
func BenchmarkFig1MaskedSpGEMM(b *testing.B) {
	for _, spec := range bench.Corpus {
		a := load(b, spec.Name)
		ssCfg := baseline.SuiteSparseConfig(a, a, a, 0)
		ssCfg.Accumulator = accum.HashKind
		impls := []struct {
			name string
			cfg  core.Config
		}{
			{"SuiteSparseLike", ssCfg},
			{"GrBLike", baseline.GrBConfig(accum.HashKind, 0)},
			{"Tuned", core.DefaultConfig()},
		}
		for _, impl := range impls {
			b.Run(spec.Name+"/"+impl.name, func(b *testing.B) {
				runMasked(b, a, impl.cfg)
			})
		}
	}
}

// BenchmarkFig11TileSweep sweeps tile count × tiling × scheduling ×
// accumulator on one road and one social graph — the per-graph series
// of Figure 11 (the binary runs all nine panels).
func BenchmarkFig11TileSweep(b *testing.B) {
	for _, name := range []string{"GAP-road-sim", "com-Orkut-sim"} {
		a := load(b, name)
		for _, ts := range []tiling.Strategy{tiling.FlopBalanced, tiling.Uniform} {
			for _, sp := range []sched.Policy{sched.Dynamic, sched.Static} {
				for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
					for _, tc := range []int{64, 1024, 8192} {
						label := fmt.Sprintf("%s/%v-%v-%v/tiles=%d", name, ts, sp, ak, tc)
						cfg := core.Config{
							Iteration: core.MaskLoad, Kappa: 1,
							Accumulator: ak, MarkerBits: 32,
							Tiles: tc, Tiling: ts, Schedule: sp,
						}
						b.Run(label, func(b *testing.B) { runMasked(b, a, cfg) })
					}
				}
			}
		}
	}
}

// BenchmarkFig13MarkerWidth sweeps the accumulator marker width
// (8/16/32/64 bits) for both accumulator families — Figure 13.
func BenchmarkFig13MarkerWidth(b *testing.B) {
	for _, name := range []string{"com-LiveJournal-sim", "europe_osm-sim"} {
		a := load(b, name)
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
			for _, bits := range []int{8, 16, 32, 64} {
				cfg := core.Config{
					Iteration: core.Hybrid, Kappa: 1,
					Accumulator: ak, MarkerBits: bits,
					Tiles: 2048, Tiling: tiling.FlopBalanced, Schedule: sched.Dynamic,
				}
				b.Run(fmt.Sprintf("%s/%v/%dbit", name, ak, bits), func(b *testing.B) {
					runMasked(b, a, cfg)
				})
			}
		}
	}
}

// BenchmarkFig14Kappa sweeps the co-iteration factor κ on the paper's
// four representative matrices, plus the no-co-iteration baseline —
// Figure 14.
func BenchmarkFig14Kappa(b *testing.B) {
	for _, name := range bench.Fig14Graphs {
		a := load(b, name)
		for _, kappa := range []float64{0.01, 0.1, 1, 10, 100} {
			cfg := core.Config{
				Iteration: core.Hybrid, Kappa: kappa,
				Accumulator: accum.HashKind, MarkerBits: 32,
				Tiles: 2048, Tiling: tiling.FlopBalanced, Schedule: sched.Dynamic,
			}
			b.Run(fmt.Sprintf("%s/kappa=%g", name, kappa), func(b *testing.B) {
				runMasked(b, a, cfg)
			})
		}
		base := core.Config{
			Iteration: core.MaskLoad, Kappa: 1,
			Accumulator: accum.HashKind, MarkerBits: 32,
			Tiles: 2048, Tiling: tiling.FlopBalanced, Schedule: sched.Dynamic,
		}
		b.Run(name+"/no-coiter", func(b *testing.B) { runMasked(b, a, base) })
	}
}

// BenchmarkIterationSpaces is the §III-B ablation: all four iteration
// spaces on the circuit matrix whose vanilla/mask-load costs diverge
// most (the circuit5M timeout of the paper).
func BenchmarkIterationSpaces(b *testing.B) {
	a := load(b, "circuit5M-sim")
	for _, it := range []core.IterationSpace{core.Vanilla, core.MaskLoad, core.CoIter, core.Hybrid} {
		cfg := core.DefaultConfig()
		cfg.Iteration = it
		b.Run(it.String(), func(b *testing.B) { runMasked(b, a, cfg) })
	}
}

// BenchmarkResetStrategies is the §III-C ablation: marker-based
// (SuiteSparse-style) vs explicit (GrB-style) accumulator reset.
func BenchmarkResetStrategies(b *testing.B) {
	a := load(b, "hollywood-2009-sim")
	kinds := []accum.Kind{
		accum.DenseKind, accum.DenseExplicitKind,
		accum.HashKind, accum.HashExplicitKind,
	}
	for _, k := range kinds {
		cfg := core.DefaultConfig()
		cfg.Iteration = core.MaskLoad
		cfg.Accumulator = k
		b.Run(k.String(), func(b *testing.B) { runMasked(b, a, cfg) })
	}
}

// BenchmarkTriangleSemirings is the semiring-specialization ablation:
// PlusPair avoids reading the value streams.
func BenchmarkTriangleSemirings(b *testing.B) {
	a := load(b, "as-Skitter-sim")
	sym := sparse.Symmetrize(a)
	cfg := core.DefaultConfig()
	b.Run("PlusTimes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, sym, sym, sym, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PlusPair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, sym, sym, sym, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFormulations compares the saxpy kernel against the
// inner-product (dot) formulation and the 2-D tiled extension on the
// two structural extremes: the railed circuit and a social graph.
func BenchmarkFormulations(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	for _, name := range []string{"circuit5M-sim", "hollywood-2009-sim"} {
		a := load(b, name)
		bT := sparse.Transpose(a)
		cfg := core.DefaultConfig()
		b.Run(name+"/saxpy-hybrid", func(b *testing.B) { runMasked(b, a, cfg) })
		b.Run(name+"/dot", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMMDot[float64](sr, a, a, bT, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/2d-8panels", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM2D[float64](sr, a, a, a, cfg, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/complement", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMMComp[float64](sr, a, a, a, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphAlgorithms measures the end-to-end workloads the kernel
// serves: triangle counting (all three formulations), one k-truss round,
// and BFS.
func BenchmarkGraphAlgorithms(b *testing.B) {
	a := sparse.Symmetrize(load(b, "com-LiveJournal-sim"))
	cfg := core.DefaultConfig()
	for _, m := range []graph.TriangleMethod{graph.Burkhardt, graph.SandiaLL, graph.Cohen} {
		b.Run("Triangles"+m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.TriangleCount(a, m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("TriangleSupport", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.TriangleSupport(a, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	road := load(b, "GAP-road-sim")
	b.Run("BFSRoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.BFS(road, 0, core.Auto); err != nil {
				b.Fatal(err)
			}
		}
	})
}
