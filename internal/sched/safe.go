package sched

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file provides the error-returning variants of Run/RunChunked/
// Blocks that the serving-oriented callers use: every worker recovers
// panics, the first panic (value + stack) is captured into a PanicError,
// and an optional context cancels the run between tile claims. The
// legacy panic-propagating entry points above remain for callers that
// have already validated their inputs and want zero extra machinery.
//
// Cost on the uncancelled path: one relaxed atomic load per tile, one
// deferred recover frame per worker goroutine (not per tile), and a
// single watcher goroutine per run — and the watcher is only spawned
// when the context is non-nil and cancellable. The context itself
// (ctx.Err takes a lock in the standard library) is never polled by
// workers; the watcher mirrors cancellation into an atomic flag once.

// PanicError is a panic recovered inside a scheduler worker, carrying
// the original panic value and the stack of the panicking goroutine.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack trace of the panicking worker.
	Stack []byte
	// Worker is the worker id that panicked.
	Worker int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// Unwrap exposes an error-typed panic value to errors.Is/As chains, so
// a worker that panicked with a classifiable error — an injected chaos
// fault, an out-of-memory sentinel — stays classifiable after
// containment. Non-error panic values unwrap to nothing.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// runState is the shared control block of one fault-contained run.
type runState struct {
	// stop is set on cancellation or first panic; workers observe it
	// between tile claims and drain without starting new work.
	stop atomic.Bool
	// done counts completed tiles; the stall watchdog samples it.
	// Incremented only when a watchdog is armed, so the plain paths
	// stay increment-free.
	done atomic.Int64
	mu   sync.Mutex
	pe   *PanicError
	// se records a stall-watchdog verdict; cause records an injected
	// spurious cancel. Both must carry an error — a stop flag with no
	// recorded cause would silently truncate the result.
	se    *StallError
	cause error
	// wave tracks the index of the wave currently executing, so stall
	// verdicts can name the stuck wave of a dependency-carrying run.
	wave atomic.Int64
	// wake, when non-nil, rouses workers parked at a wave barrier after
	// the stop flag is raised (set once, before any worker spawns). Every
	// stop-setter must go through halt, or a parked worker could sleep
	// through the failure it is supposed to drain on.
	wake func()
}

// halt raises the stop flag and wakes any workers parked at a wave
// barrier so they observe it and drain.
func (st *runState) halt() {
	st.stop.Store(true)
	if st.wake != nil {
		st.wake()
	}
}

// capture records the first panic and tells every worker to drain.
func (st *runState) capture(w int, v any, stack []byte) {
	st.mu.Lock()
	if st.pe == nil {
		st.pe = &PanicError{Value: v, Stack: stack, Worker: w}
	}
	st.mu.Unlock()
	st.halt()
}

// watch mirrors ctx cancellation into the stop flag from a side
// goroutine, so workers never touch the context's lock. The returned
// function must be called to release the watcher.
func (st *runState) watch(ctx context.Context) (finish func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.halt()
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// err resolves the run's outcome: a worker panic wins over everything;
// a genuinely cancelled context is reported even if it raced with
// completion (matching the context package's own convention); then a
// stall verdict; then an injected spurious cancel.
func (st *runState) err(ctx context.Context) error {
	st.mu.Lock()
	pe, se, cause := st.pe, st.se, st.cause
	st.mu.Unlock()
	if pe != nil {
		return pe
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if se != nil {
		return se
	}
	return cause
}

// guard runs loop with a recover frame, capturing any panic into st.
func (st *runState) guard(w int, loop func()) {
	defer func() {
		if r := recover(); r != nil {
			st.capture(w, r, debug.Stack())
		}
	}()
	loop()
}

// RunE is Run with panic containment and cooperative cancellation: it
// executes fn(worker, tile) for every tile in [0, tiles) unless ctx is
// cancelled or a worker panics, in which case the remaining workers
// drain (no new tiles are started) and the first failure is returned —
// a *PanicError for panics, ctx.Err() for cancellation. ctx may be nil.
func RunE(ctx context.Context, policy Policy, p, tiles int, fn func(worker, tile int)) error {
	return RunChunkedE(ctx, policy, p, tiles, 1, fn)
}

// RunChunkedE is RunE with an explicit chunk floor for the Guided
// policy (see RunChunked). Cancellation is observed between individual
// tiles on every policy, so a cancel or deadline stops the run within
// one tile's latency plus the watcher's wakeup.
func RunChunkedE(ctx context.Context, policy Policy, p, tiles, minChunk int, fn func(worker, tile int)) error {
	return RunChunkedOpts(ctx, policy, p, tiles, RunOpts{MinChunk: minChunk}, fn)
}

// RunChunkedOpts is RunChunkedE with the resilience extras: an optional
// chaos injector armed at the tile-claim and worker-spawn seams, and an
// optional stall watchdog (see RunOpts). The zero RunOpts reproduces
// RunChunkedE exactly. A flat tile bag is the degenerate single-wave
// plan, so this is a thin wrapper over the wave core (RunWavesOpts).
func RunChunkedOpts(ctx context.Context, policy Policy, p, tiles int, opt RunOpts, fn func(worker, tile int)) error {
	return RunWavesOpts(ctx, policy, p, SingleWave(tiles), opt, fn)
}

// BlocksE is Blocks with panic containment and cooperative
// cancellation: each worker checks for cancellation before starting its
// block, and a panic inside any block is returned as a *PanicError
// instead of crashing the process. ctx may be nil.
func BlocksE(ctx context.Context, p, n int, fn func(worker, lo, hi int)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	var st runState
	defer st.watch(ctx)()

	if p <= 1 {
		if n > 0 {
			st.guard(0, func() { fn(0, 0, n) })
		}
		return st.err(ctx)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			st.guard(w, func() {
				if st.stop.Load() {
					return
				}
				fn(w, n*w/p, n*(w+1)/p)
			})
		}(w)
	}
	wg.Wait()
	return st.err(ctx)
}
