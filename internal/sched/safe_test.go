package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunEExactlyOnce(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		for _, p := range []int{1, 2, 4, 7} {
			for _, tiles := range []int{0, 1, 5, 97} {
				hits := make([]atomic.Int32, tiles)
				err := RunE(nil, policy, p, tiles, func(_, t int) {
					hits[t].Add(1)
				})
				if err != nil {
					t.Fatalf("%v p=%d tiles=%d: %v", policy, p, tiles, err)
				}
				for i := range hits {
					if n := hits[i].Load(); n != 1 {
						t.Fatalf("%v p=%d tiles=%d: tile %d ran %d times", policy, p, tiles, i, n)
					}
				}
			}
		}
	}
}

func TestRunEUnknownPolicy(t *testing.T) {
	err := RunE(nil, Policy(99), 2, 10, func(_, _ int) {})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunEPanicContained(t *testing.T) {
	type marker struct{ why string }
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		for _, p := range []int{1, 4} {
			err := RunE(nil, policy, p, 64, func(_, tile int) {
				if tile == 17 {
					panic(marker{"injected"})
				}
			})
			if err == nil {
				t.Fatalf("%v p=%d: panic not reported", policy, p)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%v p=%d: error %T is not a *PanicError", policy, p, err)
			}
			v, ok := pe.Value.(marker)
			if !ok || v.why != "injected" {
				t.Fatalf("%v p=%d: panic value not preserved: %#v", policy, p, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatalf("%v p=%d: empty panic stack", policy, p)
			}
		}
	}
}

func TestRunEPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		err := RunE(ctx, policy, 4, 100, func(_, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", policy, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("pre-cancelled run executed %d tiles", n)
	}
}

func TestRunEMidRunCancel(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const tiles = 100000
		err := RunE(ctx, policy, 4, tiles, func(_, _ int) {
			if ran.Add(1) == 10 {
				cancel()
			}
			// Give the watcher time to flip the stop flag so the run
			// demonstrably ends early.
			time.Sleep(10 * time.Microsecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", policy, err)
		}
		if n := ran.Load(); int(n) >= tiles {
			t.Fatalf("%v: cancellation did not stop the run (%d tiles)", policy, n)
		}
	}
}

func TestRunEPanicWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunE(ctx, Dynamic, 2, 8, func(_, tile int) {
		if tile == 0 {
			cancel()
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError (panic outranks cancellation)", err)
	}
}

func TestBlocksECoverage(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 10, 1000} {
			hits := make([]atomic.Int32, n)
			if err := BlocksE(nil, p, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			}); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestBlocksEPanicAndCancel(t *testing.T) {
	err := BlocksE(nil, 4, 100, func(w, _, _ int) {
		if w == 2 {
			panic("block boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "block boom" {
		t.Fatalf("panic value %v not preserved", pe.Value)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := BlocksE(ctx, 4, 100, func(_, _, _ int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunENoGoroutineLeak drives many cancelled and completed runs and
// checks the goroutine count settles back to the baseline: neither
// workers nor context watchers may outlive their run.
func TestRunENoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = RunE(ctx, Dynamic, 4, 64, func(_, tile int) {
			if tile == 5 {
				cancel()
			}
		})
		cancel()
		_ = RunE(context.Background(), Guided, 4, 64, func(_, _ int) {})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
