// Package sched runs tiles on a fixed pool of worker goroutines with
// either static or dynamic assignment — the Go analogue of OpenMP's
// schedule(static) and schedule(dynamic) that the paper sweeps
// (§III-A, Fig. 11).
//
// Static: tile t is owned by worker t mod P, decided before execution;
// no coordination at runtime, but a slow tile stalls its owner.
// Dynamic: workers pull the next unclaimed tile from a shared atomic
// counter; balance is recovered at the cost of one atomic op per tile.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how tiles are assigned to workers.
type Policy int

const (
	// Static assigns tiles round-robin to workers before execution.
	Static Policy = iota
	// Dynamic lets workers claim tiles from a shared queue at runtime.
	Dynamic
)

func (p Policy) String() string {
	switch p {
	case Static:
		return "Static"
	case Dynamic:
		return "Dynamic"
	default:
		return "Unknown"
	}
}

// Workers returns the worker count to use: w if positive, otherwise
// GOMAXPROCS (the paper pins one thread per core).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(worker, tile) for every tile index in [0, tiles),
// using the given policy over p workers. fn must be safe for concurrent
// invocation with distinct tile indices; the worker id lets callers keep
// per-worker scratch (accumulators, output buffers) without locking.
// When p == 1 the tiles run inline on the caller's goroutine, so
// single-worker measurements carry no goroutine overhead.
func Run(policy Policy, p, tiles int, fn func(worker, tile int)) {
	p = Workers(p)
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		for t := 0; t < tiles; t++ {
			fn(0, t)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	switch policy {
	case Static:
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for t := w; t < tiles; t += p {
					fn(w, t)
				}
			}(w)
		}
	case Dynamic:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= tiles {
						return
					}
					fn(w, t)
				}
			}(w)
		}
	default:
		panic("sched: unknown policy")
	}
	wg.Wait()
}

// StaticOwner returns the worker that owns tile t under the static
// policy with p workers — exposed so tests can verify assignment.
func StaticOwner(t, p int) int { return t % p }
