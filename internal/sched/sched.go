// Package sched runs tiles on a fixed pool of worker goroutines with
// static, dynamic or guided assignment — the Go analogue of OpenMP's
// schedule(static), schedule(dynamic) and schedule(guided) that the
// paper sweeps (§III-A, Fig. 11).
//
// Static: tile t is owned by worker t mod P, decided before execution;
// no coordination at runtime, but a slow tile stalls its owner.
// Dynamic: workers pull the next unclaimed tile from a shared atomic
// counter; balance is recovered at the cost of one atomic op per tile.
// Guided: workers claim geometrically shrinking chunks of tiles —
// remaining/P per claim, never below a floor — so the early claims are
// large and cheap while the tail stays fine-grained; at the paper's
// 32768-tile end this cuts the per-tile atomic traffic that Dynamic
// pays without giving up runtime balance.
//
// The package also provides Blocks, a one-shot parallel-for over
// contiguous index blocks, which the plan-construction phases (work
// estimation, prefix sums, CSR assembly) use to spread their O(n)
// passes over the same worker pool discipline.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how tiles are assigned to workers.
type Policy int

const (
	// Static assigns tiles round-robin to workers before execution.
	Static Policy = iota
	// Dynamic lets workers claim tiles from a shared queue at runtime.
	Dynamic
	// Guided lets workers claim geometrically shrinking chunks of tiles
	// (remaining/P each, bounded below by a chunk floor) from the shared
	// counter — OpenMP's schedule(guided).
	Guided
)

func (p Policy) String() string {
	switch p {
	case Static:
		return "Static"
	case Dynamic:
		return "Dynamic"
	case Guided:
		return "Guided"
	default:
		return "Unknown"
	}
}

// Workers returns the worker count to use: w if positive, otherwise
// GOMAXPROCS (the paper pins one thread per core).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(worker, tile) for every tile index in [0, tiles),
// using the given policy over p workers. fn must be safe for concurrent
// invocation with distinct tile indices; the worker id lets callers keep
// per-worker scratch (accumulators, output buffers) without locking.
// When p == 1 the tiles run inline on the caller's goroutine, so
// single-worker measurements carry no goroutine overhead. The Guided
// policy runs with a chunk floor of 1; use RunChunked to raise it.
func Run(policy Policy, p, tiles int, fn func(worker, tile int)) {
	RunChunked(policy, p, tiles, 1, fn)
}

// RunChunked is Run with an explicit chunk floor for the Guided policy:
// a worker never claims fewer than minChunk tiles per atomic operation
// (except the final, possibly partial, chunk). minChunk <= 0 means 1.
// Static and Dynamic ignore minChunk.
func RunChunked(policy Policy, p, tiles, minChunk int, fn func(worker, tile int)) {
	p = Workers(p)
	if p > tiles {
		p = tiles
	}
	if p <= 1 {
		for t := 0; t < tiles; t++ {
			fn(0, t)
		}
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	var wg sync.WaitGroup
	wg.Add(p)
	switch policy {
	case Static:
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for t := w; t < tiles; t += p {
					fn(w, t)
				}
			}(w)
		}
	case Dynamic:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= tiles {
						return
					}
					fn(w, t)
				}
			}(w)
		}
	case Guided:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo, hi := claimGuided(&next, tiles, p, minChunk)
					if lo >= hi {
						return
					}
					for t := lo; t < hi; t++ {
						fn(w, t)
					}
				}
			}(w)
		}
	default:
		panic("sched: unknown policy")
	}
	wg.Wait()
}

// claimGuided reserves the next guided chunk [lo, hi): remaining/p tiles,
// at least minChunk, clamped to what is left. The CAS loop guarantees
// each tile is claimed by exactly one worker.
//
//spgemm:hotpath
func claimGuided(next *atomic.Int64, tiles, p, minChunk int) (lo, hi int) {
	for {
		cur := next.Load()
		if cur >= int64(tiles) {
			return tiles, tiles
		}
		rem := int64(tiles) - cur
		c := rem / int64(p)
		if c < int64(minChunk) {
			c = int64(minChunk)
		}
		if c > rem {
			c = rem
		}
		if next.CompareAndSwap(cur, cur+c) {
			return int(cur), int(cur + c)
		}
	}
}

// GuidedChunk returns the chunk size a guided claim takes when rem tiles
// remain on p workers with the given floor — exposed so tests can verify
// the geometric decay without racing on the shared counter.
//
//spgemm:hotpath
func GuidedChunk(rem, p, minChunk int) int {
	if rem <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	c := rem / p
	if c < minChunk {
		c = minChunk
	}
	if c > rem {
		c = rem
	}
	return c
}

// Blocks partitions [0, n) into at most p contiguous, near-equal blocks
// and executes fn(worker, lo, hi) concurrently, one block per worker.
// Block boundaries are deterministic (n*w/p), so repeated calls with the
// same (p, n) see identical blocks — the two passes of a parallel prefix
// sum rely on this. When p <= 1 the single block runs inline on the
// caller's goroutine.
func Blocks(p, n int, fn func(worker, lo, hi int)) {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w, n*w/p, n*(w+1)/p)
		}(w)
	}
	wg.Wait()
}

// StaticOwner returns the worker that owns tile t under the static
// policy with p workers — exposed so tests can verify assignment.
func StaticOwner(t, p int) int { return t % p }
