// Package sched runs tiles on a fixed pool of worker goroutines with
// static, dynamic or guided assignment — the Go analogue of OpenMP's
// schedule(static), schedule(dynamic) and schedule(guided) that the
// paper sweeps (§III-A, Fig. 11).
//
// Static: tile t is owned by worker t mod P, decided before execution;
// no coordination at runtime, but a slow tile stalls its owner.
// Dynamic: workers pull the next unclaimed tile from a shared atomic
// counter; balance is recovered at the cost of one atomic op per tile.
// Guided: workers claim geometrically shrinking chunks of tiles —
// remaining/P per claim, never below a floor — so the early claims are
// large and cheap while the tail stays fine-grained; at the paper's
// 32768-tile end this cuts the per-tile atomic traffic that Dynamic
// pays without giving up runtime balance.
//
// Tiles may carry dependencies: a WavePlan orders the tile space into
// waves (levels of mutually independent tiles) separated by completion
// barriers, and RunWaves/RunWavesE/RunWavesOpts execute such plans on a
// single persistent worker pool that claims tiles within each wave
// under the same three policies and crosses wave boundaries without
// respawning goroutines. The flat tile bag is the degenerate
// single-wave plan, so every entry point here is a thin wrapper over
// the wave core in wave.go.
//
// The package also provides Blocks, a one-shot parallel-for over
// contiguous index blocks, which the plan-construction phases (work
// estimation, prefix sums, CSR assembly) use to spread their O(n)
// passes over the same worker pool discipline.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how tiles are assigned to workers.
type Policy int

const (
	// Static assigns tiles round-robin to workers before execution.
	Static Policy = iota
	// Dynamic lets workers claim tiles from a shared queue at runtime.
	Dynamic
	// Guided lets workers claim geometrically shrinking chunks of tiles
	// (remaining/P each, bounded below by a chunk floor) from the shared
	// counter — OpenMP's schedule(guided).
	Guided
)

func (p Policy) String() string {
	switch p {
	case Static:
		return "Static"
	case Dynamic:
		return "Dynamic"
	case Guided:
		return "Guided"
	default:
		return "Unknown"
	}
}

// Workers resolves a requested worker count to the count a run will
// actually use: w itself when positive, otherwise GOMAXPROCS at call
// time (the paper pins one thread per core). The result is always at
// least 1, so zero and negative requests are safe everywhere a worker
// count is taken; entry points additionally clamp the result to the
// available parallelism (tile count, or widest wave of a WavePlan).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(worker, tile) for every tile index in [0, tiles),
// using the given policy over p workers. fn must be safe for concurrent
// invocation with distinct tile indices; the worker id lets callers keep
// per-worker scratch (accumulators, output buffers) without locking.
// When p == 1 the tiles run inline on the caller's goroutine, so
// single-worker measurements carry no goroutine overhead. The Guided
// policy runs with a chunk floor of 1; use RunChunked to raise it.
// Non-positive tile counts run nothing; an unknown policy panics.
func Run(policy Policy, p, tiles int, fn func(worker, tile int)) {
	RunChunked(policy, p, tiles, 1, fn)
}

// RunChunked is Run with an explicit chunk floor for the Guided policy:
// a worker never claims fewer than minChunk tiles per atomic operation
// (except the final, possibly partial, chunk). minChunk <= 0 means 1.
// Static and Dynamic ignore minChunk. A flat tile bag is the degenerate
// single-wave plan, so this delegates to the wave core; a panic inside
// fn is re-raised on the caller's goroutine with its original value.
func RunChunked(policy Policy, p, tiles, minChunk int, fn func(worker, tile int)) {
	mustPolicy(policy)
	mustRun(RunWavesOpts(nil, policy, p, SingleWave(tiles), RunOpts{MinChunk: minChunk}, fn))
}

// claimGuided reserves the next guided chunk [lo, hi): remaining/p tiles,
// at least minChunk, clamped to what is left. The CAS loop guarantees
// each tile is claimed by exactly one worker.
//
//spgemm:hotpath
func claimGuided(next *atomic.Int64, tiles, p, minChunk int) (lo, hi int) {
	return claimGuidedRange(next, tiles, p, minChunk)
}

// GuidedChunk returns the chunk size a guided claim takes when rem tiles
// remain on p workers with the given floor — exposed so tests can verify
// the geometric decay without racing on the shared counter.
//
//spgemm:hotpath
func GuidedChunk(rem, p, minChunk int) int {
	if rem <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	c := rem / p
	if c < minChunk {
		c = minChunk
	}
	if c > rem {
		c = rem
	}
	return c
}

// Blocks partitions [0, n) into at most p contiguous, near-equal blocks
// and executes fn(worker, lo, hi) concurrently, one block per worker.
// Block boundaries are deterministic (n*w/p), so repeated calls with the
// same (p, n) see identical blocks — the two passes of a parallel prefix
// sum rely on this. When p <= 1 the single block runs inline on the
// caller's goroutine. Non-positive n runs nothing, matching
// Run/RunChunked's treatment of non-positive tile counts.
func Blocks(p, n int, fn func(worker, lo, hi int)) {
	if n < 0 {
		n = 0
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if p <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w, n*w/p, n*(w+1)/p)
		}(w)
	}
	wg.Wait()
}

// StaticOwner returns the worker id that owns tile t under the Static
// policy with p workers: t mod p, the round-robin assignment decided
// before execution. The invariant holds across wave boundaries too —
// the wave executor offsets each worker's first tile within a wave so
// global ownership never shifts. p must be positive (the clamped worker
// count an entry point actually ran with, not the raw request).
// Exposed so tests can verify assignment.
func StaticOwner(t, p int) int { return t % p }
