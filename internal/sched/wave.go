package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maskedspgemm/internal/chaos"
)

// This file is the scheduler's dependency-wave core. A WavePlan orders
// the tile index space into waves — levels of mutually independent
// tiles — with a completion barrier between consecutive waves, the
// substrate level-scheduled kernels (masked triangular solve, and later
// cross-shard panel dependencies) need. The executor keeps one
// persistent worker pool for the whole plan: workers claim tiles within
// the current wave under the usual Static/Dynamic/Guided policies and
// cross wave boundaries on a condition-variable barrier, never
// respawning goroutines. The flat, embarrassingly parallel tile bag
// every SpGEMM plan emits is the degenerate single-wave case, so
// Run/RunChunked/RunE/RunChunkedOpts are all thin wrappers over
// RunWavesOpts rather than parallel implementations.

// Wave is one dependency level of a WavePlan: a half-open range
// [Lo, Hi) of tile indices that are mutually independent and may run
// concurrently once every tile of the preceding wave has completed.
type Wave struct {
	Lo, Hi int
}

// Tiles returns the number of tiles in the wave.
func (w Wave) Tiles() int { return w.Hi - w.Lo }

// WavePlan orders the tile index space [0, Tiles()) into a sequence of
// waves separated by completion barriers: a tile may depend only on
// tiles in strictly earlier waves, never on tiles in its own. The zero
// WavePlan is the empty plan (no tiles, no waves).
type WavePlan struct {
	// waves is nil on the single-wave fast path, where the implicit
	// wave is [0, tiles).
	waves []Wave
	tiles int
	// widest caches the widest wave's tile count — the executor's
	// effective parallelism bound.
	widest int
}

// SingleWave is the degenerate plan: every tile independent, one wave,
// no barrier crossings. Negative tile counts are treated as zero, so
// every entry point expressed on the wave core validates tile counts
// uniformly.
func SingleWave(tiles int) WavePlan {
	if tiles < 0 {
		tiles = 0
	}
	return WavePlan{tiles: tiles, widest: tiles}
}

// NewWavePlan builds a plan from an ordered wave list. The waves must
// tile [0, n) contiguously: the first starts at 0, each subsequent wave
// starts where its predecessor ended, and every wave holds at least one
// tile. An empty list yields the empty plan.
func NewWavePlan(waves []Wave) (WavePlan, error) {
	end, widest := 0, 0
	for i, w := range waves {
		if w.Lo != end || w.Hi <= w.Lo {
			return WavePlan{}, fmt.Errorf("sched: wave %d is [%d,%d), want a non-empty range starting at %d", i, w.Lo, w.Hi, end)
		}
		end = w.Hi
		if n := w.Tiles(); n > widest {
			widest = n
		}
	}
	if len(waves) == 0 {
		return WavePlan{}, nil
	}
	return WavePlan{waves: waves, tiles: end, widest: widest}, nil
}

// Tiles returns the total tile count across all waves.
func (pl WavePlan) Tiles() int { return pl.tiles }

// NumWaves returns the number of waves; 0 for the empty plan.
func (pl WavePlan) NumWaves() int {
	if pl.waves != nil {
		return len(pl.waves)
	}
	if pl.tiles > 0 {
		return 1
	}
	return 0
}

// WaveAt returns wave i in execution order, i in [0, NumWaves()).
func (pl WavePlan) WaveAt(i int) Wave {
	if pl.waves == nil {
		return Wave{Lo: 0, Hi: pl.tiles}
	}
	return pl.waves[i]
}

// Widest returns the widest wave's tile count, the plan's effective
// parallelism bound: workers beyond it would idle in every wave.
func (pl WavePlan) Widest() int { return pl.widest }

// WaveStats accumulates wave-executor observability counters across the
// workers of a run. All fields are updated atomically by concurrent
// workers; the struct is shared and contended only at wave boundaries
// (never per tile), so it carries no cache-line padding.
type WaveStats struct {
	// Crossings counts barrier arrivals: one per worker per crossed
	// wave boundary. A single-wave run records zero.
	Crossings atomic.Int64
	// BarrierWaitNs is the cumulative time workers spent parked at wave
	// barriers waiting for stragglers — the load-imbalance signal of a
	// level-scheduled run.
	BarrierWaitNs atomic.Int64
}

// waveBarrier synchronizes the persistent workers at wave boundaries.
// One allocation per multi-wave run, reused across every crossing:
// arrivals are counted under mu, and a phase counter lets waiters
// distinguish "the barrier I arrived at opened" from a spurious wakeup.
// A parked worker re-checks the run's stop flag on every wakeup, so a
// panic, cancellation or stall verdict raised anywhere (all of which
// broadcast through runState.halt) drains the barrier instead of
// deadlocking it.
type waveBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	arrived int
	phase   int64
}

func newWaveBarrier() *waveBarrier {
	b := &waveBarrier{}
	b.cond.L = &b.mu
	return b
}

// wake broadcasts under the barrier lock; runState.halt calls it after
// raising the stop flag. Taking mu orders the broadcast after any
// in-flight Wait registration, so no parked worker can miss it.
func (b *waveBarrier) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// arrive parks the caller until all p workers of the run have arrived
// or the run stops. The last arriver executes release — the one point
// where cross-wave state (the shared claim counter, the current-wave
// gauge) may advance, because every other worker is provably parked or
// drained — then opens the barrier for everyone. When ws is non-nil the
// time spent parked is added to its barrier-wait counter.
func (b *waveBarrier) arrive(stop *atomic.Bool, p int, ws *WaveStats, release func()) {
	b.mu.Lock()
	b.arrived++
	if b.arrived == p {
		b.arrived = 0
		release()
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	ph := b.phase
	var parked time.Time
	if ws != nil {
		parked = time.Now()
	}
	for b.phase == ph && !stop.Load() {
		b.cond.Wait()
	}
	b.mu.Unlock()
	if ws != nil {
		ws.BarrierWaitNs.Add(time.Since(parked).Nanoseconds())
	}
}

// RunWaves executes fn(worker, tile) over every tile of plan, wave by
// wave: within a wave, tiles are claimed under the given policy exactly
// as in Run; between waves the persistent workers cross a barrier
// without goroutine respawn. Panics inside fn propagate to the caller
// (after containment, the original panic value is re-raised), matching
// Run's legacy contract; use RunWavesE or RunWavesOpts for typed
// errors, cancellation and resilience options.
func RunWaves(policy Policy, p int, plan WavePlan, fn func(worker, tile int)) {
	mustPolicy(policy)
	mustRun(RunWavesOpts(nil, policy, p, plan, RunOpts{}, fn))
}

// RunWavesE is RunWaves with panic containment and cooperative
// cancellation: the first failure is returned — a *PanicError for
// panics, ctx.Err() for cancellation — and the remaining workers drain,
// including any parked at a wave barrier. ctx may be nil.
func RunWavesE(ctx context.Context, policy Policy, p int, plan WavePlan, fn func(worker, tile int)) error {
	return RunWavesOpts(ctx, policy, p, plan, RunOpts{}, fn)
}

// RunWavesOpts is the scheduler's core entry point: it executes
// fn(worker, tile) for every tile of plan under the given policy with
// panic containment, cooperative cancellation, and the RunOpts
// resilience extras. Within a wave, workers claim tiles exactly as
// RunChunkedOpts claims a flat bag (Static ownership keeps the global
// t mod p == worker invariant across waves); at each wave boundary the
// persistent workers cross a condition-variable barrier, with the last
// arriver resetting the shared claim counter for the next wave while
// every other worker is parked. Single-wave plans never touch the
// barrier machinery, so the flat case pays nothing for the generality.
func RunWavesOpts(ctx context.Context, policy Policy, p int, plan WavePlan, opt RunOpts, fn func(worker, tile int)) error {
	switch policy {
	case Static, Dynamic, Guided:
	default:
		return fmt.Errorf("sched: unknown policy %d", policy)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	p = Workers(p)
	if p > plan.Widest() {
		p = plan.Widest()
	}
	minChunk := opt.MinChunk
	if minChunk < 1 {
		minChunk = 1
	}
	nw := plan.NumWaves()
	inj := opt.Chaos
	ws := opt.WaveStats
	// wd gates the completed-tile counter; without a watchdog the claim
	// loops stay increment-free.
	wd := opt.StallTimeout > 0

	var st runState
	var bar *waveBarrier
	if p > 1 && nw > 1 {
		bar = newWaveBarrier()
		st.wake = bar.wake
	}
	defer st.watch(ctx)()
	defer st.watchStall(opt.StallTimeout, int64(plan.Tiles()), int64(nw))()

	if p <= 1 {
		st.guard(0, func() {
			if st.injectSpawn(inj) {
				return
			}
			for wv := 0; wv < nw; wv++ {
				wave := plan.WaveAt(wv)
				st.wave.Store(int64(wv))
				for t := wave.Lo; t < wave.Hi; t++ {
					if st.stop.Load() || st.injectClaim(inj) {
						return
					}
					fn(0, t)
					if wd {
						st.done.Add(1)
					}
				}
			}
		})
		return st.err(ctx)
	}

	// next is the shared claim counter of the current wave (Dynamic and
	// Guided). It is reset at each barrier opening by the last arriver;
	// Static ignores it.
	var next atomic.Int64
	var runWave func(w int, wave Wave)
	switch policy {
	case Static:
		runWave = func(w int, wave Wave) {
			// The first owned tile keeps the global invariant
			// tile mod p == worker within every wave.
			off := (w - wave.Lo) % p
			if off < 0 {
				off += p
			}
			for t := wave.Lo + off; t < wave.Hi; t += p {
				if st.stop.Load() || st.injectClaim(inj) {
					return
				}
				fn(w, t)
				if wd {
					st.done.Add(1)
				}
			}
		}
	case Dynamic:
		runWave = func(w int, wave Wave) {
			for {
				if st.stop.Load() || st.injectClaim(inj) {
					return
				}
				t := int(next.Add(1)) - 1
				if t >= wave.Hi {
					return
				}
				fn(w, t)
				if wd {
					st.done.Add(1)
				}
			}
		}
	case Guided:
		runWave = func(w int, wave Wave) {
			for {
				if st.stop.Load() {
					return
				}
				lo, hi := claimGuidedRange(&next, wave.Hi, p, minChunk)
				if lo >= hi {
					return
				}
				for t := lo; t < hi; t++ {
					if st.stop.Load() || st.injectClaim(inj) {
						return
					}
					fn(w, t)
					if wd {
						st.done.Add(1)
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		w := w
		go func() {
			defer wg.Done()
			st.guard(w, func() {
				if st.injectSpawn(inj) {
					// Draining implies the stop flag is raised, so no
					// other worker can reach a barrier and wait on us.
					return
				}
				for wv := 0; ; wv++ {
					runWave(w, plan.WaveAt(wv))
					if wv+1 >= nw || st.stop.Load() {
						return
					}
					if st.injectBarrier(inj) {
						return
					}
					if ws != nil {
						ws.Crossings.Add(1)
					}
					nextLo := plan.WaveAt(wv + 1).Lo
					bar.arrive(&st.stop, p, ws, func() {
						next.Store(int64(nextLo))
						st.wave.Store(int64(wv + 1))
					})
					if st.stop.Load() {
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	return st.err(ctx)
}

// claimGuidedRange reserves the next guided chunk [lo, hi2) of the
// range ending at hi: remaining/p tiles, at least minChunk, clamped to
// what is left. The CAS loop guarantees each tile is claimed by exactly
// one worker. The wave executor resets the shared counter to each
// wave's Lo at the barrier, so the geometric decay restarts per wave.
//
//spgemm:hotpath
func claimGuidedRange(next *atomic.Int64, hi, p, minChunk int) (lo, hi2 int) {
	for {
		cur := next.Load()
		if cur >= int64(hi) {
			return hi, hi
		}
		rem := int64(hi) - cur
		c := rem / int64(p)
		if c < int64(minChunk) {
			c = int64(minChunk)
		}
		if c > rem {
			c = rem
		}
		if next.CompareAndSwap(cur, cur+c) {
			return int(cur), int(cur + c)
		}
	}
}

// mustPolicy reproduces the legacy entry points' misuse contract: an
// unknown policy is a programming error and panics.
func mustPolicy(policy Policy) {
	switch policy {
	case Static, Dynamic, Guided:
	default:
		panic("sched: unknown policy")
	}
}

// mustRun adapts the contained core to the legacy panic-propagating
// contract: a worker panic re-raises its original value on the caller's
// goroutine; any other failure (impossible without a context or
// options) is raised as-is.
func mustRun(err error) {
	if err == nil {
		return
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	panic(err)
}

// injectBarrier fires the WaveBarrier seam once per worker per barrier
// crossing, before the worker arrives; true means the worker must drain.
// Draining is safe mid-protocol: the injected cancel raises the stop
// flag and broadcasts, so workers already parked at the barrier wake,
// observe stop, and drain with it — the barrier is never left waiting
// on a worker that will not come.
func (st *runState) injectBarrier(inj chaos.Injector) bool {
	if inj == nil {
		return false
	}
	switch chaos.Step(inj, chaos.WaveBarrier) {
	case chaos.KindError, chaos.KindCancel:
		st.injectCancel(chaos.WaveBarrier)
		return true
	}
	return false
}
