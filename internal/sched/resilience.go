package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"maskedspgemm/internal/chaos"
)

// This file holds the resilience extras of RunChunkedOpts: the options
// block, the injected-cancel plumbing, and the stall watchdog. The
// design constraint throughout is that a disabled option costs nothing
// on the hot path — a nil injector is one pointer comparison per tile,
// and a zero stall timeout spawns no goroutine and skips the completed-
// tile counter entirely.

// RunOpts carries the optional knobs of RunChunkedOpts. The zero value
// reproduces RunChunkedE with a chunk floor of 1.
type RunOpts struct {
	// MinChunk is the Guided policy's chunk floor (see RunChunked).
	// Values below 1 are treated as 1.
	MinChunk int
	// Chaos, when non-nil, is consulted at the TileClaim seam before
	// every tile and at the WorkerSpawn seam once per worker. Error and
	// Cancel faults become a recorded spurious cancel; Panic faults
	// surface as *PanicError through the normal containment path.
	Chaos chaos.Injector
	// StallTimeout, when positive, arms a watchdog that fails the run
	// with a *StallError if no tile completes for a full timeout while
	// tiles remain. It detects, not preempts: a worker stuck inside fn
	// still holds the run until it returns, but the error is typed and
	// carries the stacks of every goroutine for diagnosis.
	StallTimeout time.Duration
	// WaveStats, when non-nil, accumulates wave-executor counters
	// (barrier crossings, cumulative barrier-wait time) across the run's
	// workers. The caller owns the struct and may share it across runs;
	// nil skips all accounting.
	WaveStats *WaveStats
}

// StallError reports a run whose workers stopped completing tiles for a
// full StallTimeout while work remained. Stacks holds a snapshot of all
// goroutine stacks taken at detection time, so the stuck worker's
// position is preserved even if it later unblocks.
type StallError struct {
	// Timeout is the configured stall window that elapsed.
	Timeout time.Duration
	// Done and Tiles are the completed-tile count at detection and the
	// run's total.
	Done, Tiles int64
	// Wave and Waves are the index of the wave in progress at detection
	// and the plan's wave count, so a dependency-carrying run's verdict
	// names the stuck wave. Flat single-wave runs report 0 and 1.
	Wave, Waves int64
	// Stacks is the formatted all-goroutine stack dump at detection.
	Stacks []byte
}

func (e *StallError) Error() string {
	if e.Waves > 1 {
		return fmt.Sprintf("sched: no tile progress for %v (%d/%d tiles done, stuck in wave %d of %d)",
			e.Timeout, e.Done, e.Tiles, e.Wave, e.Waves)
	}
	return fmt.Sprintf("sched: no tile progress for %v (%d/%d tiles done)", e.Timeout, e.Done, e.Tiles)
}

// stall records a watchdog verdict and tells every worker to drain.
func (st *runState) stall(se *StallError) {
	st.mu.Lock()
	if st.se == nil {
		st.se = se
	}
	st.mu.Unlock()
	st.halt()
}

// injectCancel records an injected spurious cancel and sets stop. The
// cause matches both chaos.ErrInjected and context.Canceled under
// errors.Is, so callers can distinguish it from a genuine cancel.
func (st *runState) injectCancel(p chaos.Point) {
	st.mu.Lock()
	if st.cause == nil {
		st.cause = fmt.Errorf("sched: injected spurious cancel at %v: %w",
			p, errors.Join(chaos.ErrInjected, context.Canceled))
	}
	st.mu.Unlock()
	st.halt()
}

// injectClaim fires the TileClaim seam; true means the worker must
// drain. Panic and delay faults execute inside chaos.Step (the panic is
// caught by the worker's guard frame).
//
//spgemm:hotpath
func (st *runState) injectClaim(inj chaos.Injector) bool {
	if inj == nil {
		return false
	}
	switch chaos.Step(inj, chaos.TileClaim) {
	case chaos.KindError, chaos.KindCancel:
		//lint:ignore hotpathalloc allocates only when a fault fires, and the run stops with it
		st.injectCancel(chaos.TileClaim)
		return true
	}
	return false
}

// injectSpawn fires the WorkerSpawn seam; true means the worker must
// drain without running its loop.
func (st *runState) injectSpawn(inj chaos.Injector) bool {
	if inj == nil {
		return false
	}
	switch chaos.Step(inj, chaos.WorkerSpawn) {
	case chaos.KindError, chaos.KindCancel:
		st.injectCancel(chaos.WorkerSpawn)
		return true
	}
	return st.stop.Load()
}

// watchStall arms the stall watchdog: a side goroutine that samples the
// completed-tile counter every timeout and fails the run if a full
// window passes with no progress while tiles remain. The verdict
// records the wave in progress at detection time (waves is the plan's
// wave count). The returned function must be called to release the
// watcher. A non-positive timeout arms nothing.
func (st *runState) watchStall(timeout time.Duration, tiles, waves int64) (finish func()) {
	if timeout <= 0 || tiles <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		ticker := time.NewTicker(timeout)
		defer ticker.Stop()
		last := int64(0)
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
				done := st.done.Load()
				if done >= tiles || st.stop.Load() {
					return
				}
				if done != last {
					last = done
					continue
				}
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				st.stall(&StallError{
					Timeout: timeout, Done: done, Tiles: tiles,
					Wave: st.wave.Load(), Waves: waves, Stacks: buf,
				})
				return
			}
		}
	}()
	return func() { close(quit) }
}
