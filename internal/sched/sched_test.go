package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutesEveryTileOnce(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		for _, workers := range []int{1, 2, 4, 7} {
			const tiles = 103
			var counts [tiles]atomic.Int32
			Run(policy, workers, tiles, func(_, tile int) {
				counts[tile].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("%v/p=%d: tile %d ran %d times", policy, workers, i, got)
				}
			}
		}
	}
}

func TestRunWorkerIDsInRange(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		const workers, tiles = 4, 50
		var bad atomic.Int32
		Run(policy, workers, tiles, func(w, _ int) {
			if w < 0 || w >= workers {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Errorf("%v: worker id out of range", policy)
		}
	}
}

func TestStaticAssignmentIsDeterministic(t *testing.T) {
	// Under the static policy, tile t must always run on worker t mod p.
	const workers, tiles = 3, 30
	owner := make([]int, tiles)
	var mu sync.Mutex
	Run(Static, workers, tiles, func(w, tile int) {
		mu.Lock()
		owner[tile] = w
		mu.Unlock()
	})
	for tile, w := range owner {
		if w != StaticOwner(tile, workers) {
			t.Errorf("tile %d ran on worker %d, want %d", tile, w, StaticOwner(tile, workers))
		}
	}
}

func TestWorkerScratchIsolation(t *testing.T) {
	// Per-worker scratch must never be touched concurrently: bump a
	// non-atomic counter per worker and verify the total.
	const workers, tiles = 4, 1000
	scratch := make([]int64, workers)
	Run(Dynamic, workers, tiles, func(w, _ int) {
		scratch[w]++ // safe iff worker w is single-threaded
	})
	var total int64
	for _, s := range scratch {
		total += s
	}
	if total != tiles {
		t.Errorf("scratch total %d, want %d (lost updates => worker ids unsafe)", total, tiles)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	// With one worker the tiles must run on the calling goroutine in
	// order — verified by observing strictly increasing tile ids without
	// synchronization.
	last := -1
	ok := true
	Run(Dynamic, 1, 20, func(_, tile int) {
		if tile != last+1 {
			ok = false
		}
		last = tile
	})
	if !ok || last != 19 {
		t.Error("single-worker execution not inline/in-order")
	}
}

func TestRunZeroTiles(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		ran := false
		Run(policy, 4, 0, func(_, _ int) { ran = true })
		if ran {
			t.Errorf("%v: fn invoked with zero tiles", policy)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 {
		t.Error("Workers(0) must be at least 1")
	}
	if Workers(5) != 5 {
		t.Error("Workers(5) must be 5")
	}
}

func TestRunPropertyAllPoliciesAllSizes(t *testing.T) {
	f := func(pRaw, tRaw, polRaw, chunkRaw uint8) bool {
		p := int(pRaw%8) + 1
		tiles := int(tRaw % 64)
		policy := Policy(polRaw % 3)
		minChunk := int(chunkRaw % 9) // 0 exercises the default floor
		var n atomic.Int64
		RunChunked(policy, p, tiles, minChunk, func(_, _ int) { n.Add(1) })
		return n.Load() == int64(tiles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{Static: "Static", Dynamic: "Dynamic", Guided: "Guided", Policy(99): "Unknown"}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestGuidedEveryTileClaimedOnce(t *testing.T) {
	// Non-atomic per-tile writes: a double claim is a data race the race
	// detector flags, and a missed tile leaves a zero we assert on.
	for _, workers := range []int{2, 4, 8} {
		for _, minChunk := range []int{0, 1, 4, 100, 100000} {
			const tiles = 5000
			hits := make([]int64, tiles)
			RunChunked(Guided, workers, tiles, minChunk, func(_, tile int) {
				hits[tile]++
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d chunk=%d: tile %d ran %d times", workers, minChunk, i, h)
				}
			}
		}
	}
}

func TestGuidedScratchIsolation(t *testing.T) {
	// Worker ids under Guided must be exclusive, like the other policies:
	// per-worker non-atomic counters must not lose updates.
	const workers, tiles = 4, 4096
	scratch := make([]int64, workers)
	RunChunked(Guided, workers, tiles, 3, func(w, _ int) {
		scratch[w]++
	})
	var total int64
	for _, s := range scratch {
		total += s
	}
	if total != tiles {
		t.Errorf("scratch total %d, want %d", total, tiles)
	}
}

func TestGuidedChunkDecay(t *testing.T) {
	// The claim size must be remaining/p, floored, clamped — geometric
	// decay toward the floor.
	if got := GuidedChunk(1000, 4, 1); got != 250 {
		t.Errorf("GuidedChunk(1000,4,1) = %d, want 250", got)
	}
	if got := GuidedChunk(7, 4, 1); got != 1 {
		t.Errorf("GuidedChunk(7,4,1) = %d, want 1 (integer division floor)", got)
	}
	if got := GuidedChunk(7, 4, 5); got != 5 {
		t.Errorf("GuidedChunk(7,4,5) = %d, want 5 (chunk floor)", got)
	}
	if got := GuidedChunk(3, 4, 5); got != 3 {
		t.Errorf("GuidedChunk(3,4,5) = %d, want 3 (clamped to remaining)", got)
	}
	if got := GuidedChunk(0, 4, 1); got != 0 {
		t.Errorf("GuidedChunk(0,4,1) = %d, want 0", got)
	}
	if got := GuidedChunk(10, 2, 0); got != 5 {
		t.Errorf("GuidedChunk(10,2,0) = %d, want 5 (floor defaults to 1)", got)
	}
	// Simulated drain: total tiles claimed must equal the supply, and
	// chunk sizes must never grow as the supply shrinks.
	rem, prev := 32768, 1<<62
	for rem > 0 {
		c := GuidedChunk(rem, 8, 4)
		if c > prev {
			t.Fatalf("chunk grew: %d after %d", c, prev)
		}
		prev = c
		rem -= c
	}
	if rem != 0 {
		t.Fatalf("drain overshot by %d", -rem)
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			workers := map[int]bool{}
			Blocks(p, n, func(w, lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				if workers[w] {
					t.Errorf("p=%d n=%d: worker %d ran two blocks", p, n, w)
				}
				workers[w] = true
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, s)
				}
			}
		}
	}
}

func TestBlocksSingleWorkerInline(t *testing.T) {
	// p=1 must run the single block on the calling goroutine.
	ran := false
	Blocks(1, 10, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 10 {
			t.Errorf("inline block = (%d, %d, %d)", w, lo, hi)
		}
		ran = true // safe without sync iff inline
	})
	if !ran {
		t.Error("block did not run")
	}
}
