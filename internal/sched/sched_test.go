package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutesEveryTileOnce(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic} {
		for _, workers := range []int{1, 2, 4, 7} {
			const tiles = 103
			var counts [tiles]atomic.Int32
			Run(policy, workers, tiles, func(_, tile int) {
				counts[tile].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("%v/p=%d: tile %d ran %d times", policy, workers, i, got)
				}
			}
		}
	}
}

func TestRunWorkerIDsInRange(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic} {
		const workers, tiles = 4, 50
		var bad atomic.Int32
		Run(policy, workers, tiles, func(w, _ int) {
			if w < 0 || w >= workers {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Errorf("%v: worker id out of range", policy)
		}
	}
}

func TestStaticAssignmentIsDeterministic(t *testing.T) {
	// Under the static policy, tile t must always run on worker t mod p.
	const workers, tiles = 3, 30
	owner := make([]int, tiles)
	var mu sync.Mutex
	Run(Static, workers, tiles, func(w, tile int) {
		mu.Lock()
		owner[tile] = w
		mu.Unlock()
	})
	for tile, w := range owner {
		if w != StaticOwner(tile, workers) {
			t.Errorf("tile %d ran on worker %d, want %d", tile, w, StaticOwner(tile, workers))
		}
	}
}

func TestWorkerScratchIsolation(t *testing.T) {
	// Per-worker scratch must never be touched concurrently: bump a
	// non-atomic counter per worker and verify the total.
	const workers, tiles = 4, 1000
	scratch := make([]int64, workers)
	Run(Dynamic, workers, tiles, func(w, _ int) {
		scratch[w]++ // safe iff worker w is single-threaded
	})
	var total int64
	for _, s := range scratch {
		total += s
	}
	if total != tiles {
		t.Errorf("scratch total %d, want %d (lost updates => worker ids unsafe)", total, tiles)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	// With one worker the tiles must run on the calling goroutine in
	// order — verified by observing strictly increasing tile ids without
	// synchronization.
	last := -1
	ok := true
	Run(Dynamic, 1, 20, func(_, tile int) {
		if tile != last+1 {
			ok = false
		}
		last = tile
	})
	if !ok || last != 19 {
		t.Error("single-worker execution not inline/in-order")
	}
}

func TestRunZeroTiles(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic} {
		ran := false
		Run(policy, 4, 0, func(_, _ int) { ran = true })
		if ran {
			t.Errorf("%v: fn invoked with zero tiles", policy)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 {
		t.Error("Workers(0) must be at least 1")
	}
	if Workers(5) != 5 {
		t.Error("Workers(5) must be 5")
	}
}

func TestRunPropertyAllPoliciesAllSizes(t *testing.T) {
	f := func(pRaw, tRaw uint8, dynamic bool) bool {
		p := int(pRaw%8) + 1
		tiles := int(tRaw % 64)
		policy := Static
		if dynamic {
			policy = Dynamic
		}
		var n atomic.Int64
		Run(policy, p, tiles, func(_, _ int) { n.Add(1) })
		return n.Load() == int64(tiles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
