package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
)

// stairPlan builds a multi-wave plan with uneven widths (1, 3, 8, 2,
// ...) so every policy's claim path and the barrier reset both get
// exercised by narrow and wide levels alike.
func stairPlan(t *testing.T, widths []int) WavePlan {
	t.Helper()
	var waves []Wave
	lo := 0
	for _, w := range widths {
		waves = append(waves, Wave{Lo: lo, Hi: lo + w})
		lo += w
	}
	pl, err := NewWavePlan(waves)
	if err != nil {
		t.Fatalf("NewWavePlan(%v): %v", widths, err)
	}
	return pl
}

// waveOf maps each tile of the plan to its wave index.
func waveOf(pl WavePlan) []int {
	m := make([]int, pl.Tiles())
	for i := 0; i < pl.NumWaves(); i++ {
		w := pl.WaveAt(i)
		for t := w.Lo; t < w.Hi; t++ {
			m[t] = i
		}
	}
	return m
}

func TestWavePlanValidation(t *testing.T) {
	cases := []struct {
		name  string
		waves []Wave
	}{
		{"gap", []Wave{{Lo: 0, Hi: 2}, {Lo: 3, Hi: 5}}},
		{"overlap", []Wave{{Lo: 0, Hi: 3}, {Lo: 2, Hi: 5}}},
		{"empty wave", []Wave{{Lo: 0, Hi: 0}}},
		{"nonzero start", []Wave{{Lo: 1, Hi: 4}}},
		{"inverted", []Wave{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 1}}},
	}
	for _, tc := range cases {
		if _, err := NewWavePlan(tc.waves); err == nil {
			t.Errorf("%s: NewWavePlan(%v) accepted an invalid plan", tc.name, tc.waves)
		}
	}

	pl := stairPlan(t, []int{1, 3, 8, 2})
	if pl.Tiles() != 14 || pl.NumWaves() != 4 || pl.Widest() != 8 {
		t.Fatalf("stair plan: tiles=%d waves=%d widest=%d, want 14/4/8", pl.Tiles(), pl.NumWaves(), pl.Widest())
	}
	if w := pl.WaveAt(2); w.Lo != 4 || w.Hi != 12 || w.Tiles() != 8 {
		t.Fatalf("WaveAt(2) = %+v, want [4,12)", w)
	}

	empty, err := NewWavePlan(nil)
	if err != nil {
		t.Fatalf("NewWavePlan(nil): %v", err)
	}
	if empty.Tiles() != 0 || empty.NumWaves() != 0 || empty.Widest() != 0 {
		t.Fatalf("empty plan: %+v", empty)
	}

	if sw := SingleWave(-3); sw.Tiles() != 0 || sw.NumWaves() != 0 {
		t.Fatalf("SingleWave(-3) = %+v, want empty", sw)
	}
	if sw := SingleWave(5); sw.NumWaves() != 1 || sw.WaveAt(0) != (Wave{Lo: 0, Hi: 5}) || sw.Widest() != 5 {
		t.Fatalf("SingleWave(5) = %+v", sw)
	}
}

// TestRunWavesOrdering is the executor's core contract: no tile of wave
// k starts before every tile of wave k-1 has completed, under every
// policy and both the serial and parallel paths, while each tile still
// runs exactly once.
func TestRunWavesOrdering(t *testing.T) {
	widths := []int{1, 7, 16, 3, 9, 1, 5}
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		for _, workers := range []int{1, 2, 4, 9} {
			pl := stairPlan(t, widths)
			wv := waveOf(pl)
			counts := make([]atomic.Int32, pl.Tiles())
			done := make([]atomic.Int64, pl.NumWaves())
			var violations atomic.Int64
			RunWaves(policy, workers, pl, func(_, tile int) {
				w := wv[tile]
				if w > 0 && done[w-1].Load() != int64(pl.WaveAt(w-1).Tiles()) {
					violations.Add(1)
				}
				counts[tile].Add(1)
				done[w].Add(1)
			})
			if v := violations.Load(); v != 0 {
				t.Errorf("%v/p=%d: %d tiles started before their predecessor wave finished", policy, workers, v)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("%v/p=%d: tile %d ran %d times", policy, workers, i, got)
				}
			}
		}
	}
}

// TestRunWavesStaticOwnership pins the cross-wave Static invariant: tile
// t always runs on worker t mod p, in every wave, exactly as in a flat
// Run.
func TestRunWavesStaticOwnership(t *testing.T) {
	const workers = 3
	pl := stairPlan(t, []int{4, 1, 7, 5, 3})
	owner := make([]atomic.Int32, pl.Tiles())
	RunWaves(Static, workers, pl, func(w, tile int) {
		owner[tile].Store(int32(w + 1))
	})
	for tile := range owner {
		if got := int(owner[tile].Load()) - 1; got != tile%workers {
			t.Errorf("tile %d ran on worker %d, want %d", tile, got, tile%workers)
		}
	}
}

// TestRunWavesSingleWaveMatchesRun checks the degenerate plan against
// the flat entry point: same tiles, same once-each coverage, and zero
// barrier crossings — the flat bag pays nothing for the wave machinery.
func TestRunWavesSingleWaveMatchesRun(t *testing.T) {
	const tiles, workers = 57, 4
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		var viaWaves, viaRun atomic.Int64
		var ws WaveStats
		err := RunWavesOpts(nil, policy, workers, SingleWave(tiles), RunOpts{WaveStats: &ws}, func(_, tile int) {
			viaWaves.Add(int64(tile) + 1)
		})
		if err != nil {
			t.Fatalf("%v: RunWavesOpts: %v", policy, err)
		}
		Run(policy, workers, tiles, func(_, tile int) {
			viaRun.Add(int64(tile) + 1)
		})
		if viaWaves.Load() != viaRun.Load() {
			t.Errorf("%v: single-wave sum %d != flat Run sum %d", policy, viaWaves.Load(), viaRun.Load())
		}
		if ws.Crossings.Load() != 0 {
			t.Errorf("%v: single-wave run recorded %d barrier crossings, want 0", policy, ws.Crossings.Load())
		}
	}
}

func TestRunWavesEmptyPlan(t *testing.T) {
	ran := false
	if err := RunWavesE(context.Background(), Dynamic, 4, WavePlan{}, func(_, _ int) { ran = true }); err != nil {
		t.Fatalf("empty plan: %v", err)
	}
	if ran {
		t.Fatal("empty plan executed a tile")
	}
}

func TestRunWavesUnknownPolicy(t *testing.T) {
	if err := RunWavesOpts(nil, Policy(42), 2, SingleWave(4), RunOpts{}, func(_, _ int) {}); err == nil {
		t.Fatal("RunWavesOpts accepted an unknown policy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunWaves did not panic on an unknown policy")
		}
	}()
	RunWaves(Policy(42), 2, SingleWave(4), func(_, _ int) {})
}

// TestRunWavesStats checks the observability counters: every effective
// worker records one crossing per wave boundary, and stragglers park
// long enough for the barrier-wait clock to tick.
func TestRunWavesStats(t *testing.T) {
	const workers = 4
	pl := stairPlan(t, []int{workers, workers, workers})
	var ws WaveStats
	err := RunWavesOpts(nil, Dynamic, workers, pl, RunOpts{WaveStats: &ws}, func(_, tile int) {
		// One straggler per wave: the other workers must park at the
		// barrier and accumulate wait time.
		if tile%workers == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("RunWavesOpts: %v", err)
	}
	wantCross := int64(workers * (pl.NumWaves() - 1))
	if got := ws.Crossings.Load(); got != wantCross {
		t.Errorf("Crossings = %d, want %d", got, wantCross)
	}
	if ws.BarrierWaitNs.Load() <= 0 {
		t.Errorf("BarrierWaitNs = %d, want > 0 with a straggler per wave", ws.BarrierWaitNs.Load())
	}
}

// TestRunWavesPanic contains a panic raised mid-plan: RunWavesE returns
// a *PanicError carrying the value, parked workers drain instead of
// deadlocking, and no tile of a later wave starts after containment.
func TestRunWavesPanic(t *testing.T) {
	pl := stairPlan(t, []int{4, 4, 4})
	wv := waveOf(pl)
	boom := errors.New("tile exploded")
	var lastWaveRan atomic.Bool
	err := RunWavesE(context.Background(), Dynamic, 4, pl, func(_, tile int) {
		if wv[tile] == 2 {
			lastWaveRan.Store(true)
		}
		if wv[tile] == 1 {
			panic(boom)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != boom {
		t.Fatalf("PanicError.Value = %v, want %v", pe.Value, boom)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("PanicError does not unwrap to its error value: %v", err)
	}
	if lastWaveRan.Load() {
		t.Fatal("a tile of the wave after the panic still ran")
	}

	// The legacy entry point re-raises the original panic value.
	defer func() {
		if r := recover(); r != boom {
			t.Fatalf("RunWaves re-raised %v, want %v", r, boom)
		}
	}()
	RunWaves(Static, 2, stairPlan(t, []int{2, 2}), func(_, tile int) {
		if tile == 2 {
			panic(boom)
		}
	})
}

func TestRunWavesPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RunWavesE(ctx, Guided, 4, stairPlan(t, []int{8, 8}), func(_, _ int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-cancelled run executed a tile")
	}
}

func TestRunWavesCancelMidRun(t *testing.T) {
	pl := stairPlan(t, []int{4, 4, 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	err := RunWavesE(ctx, Dynamic, 4, pl, func(_, tile int) {
		if tile == 1 && !fired.Swap(true) {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWavesStallNamesWave blocks a tile of the middle wave past the
// watchdog window: the verdict must be a *StallError naming that wave.
// The serial path keeps the timing deterministic.
func TestRunWavesStallNamesWave(t *testing.T) {
	pl := stairPlan(t, []int{2, 2, 2})
	wv := waveOf(pl)
	unblock := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(unblock)
	}()
	err := RunWavesOpts(nil, Static, 1, pl, RunOpts{StallTimeout: 30 * time.Millisecond}, func(_, tile int) {
		if wv[tile] == 1 && tile == pl.WaveAt(1).Lo {
			<-unblock
		}
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Wave != 1 || se.Waves != int64(pl.NumWaves()) {
		t.Errorf("StallError names wave %d of %d, want 1 of %d", se.Wave, se.Waves, pl.NumWaves())
	}
	if se.Done >= se.Tiles {
		t.Errorf("StallError reports %d/%d tiles done, want partial progress", se.Done, se.Tiles)
	}
	if len(se.Stacks) == 0 {
		t.Error("StallError carries no goroutine stacks")
	}
}

// TestRunWavesBarrierChaos exercises the WaveBarrier seam under every
// fault kind: cancel and panic drain the parked workers with a typed
// error, delay is absorbed with every tile still run exactly once.
func TestRunWavesBarrierChaos(t *testing.T) {
	const workers = 4
	newPlan := func() WavePlan { return stairPlan(t, []int{workers, workers, workers}) }

	t.Run("cancel", func(t *testing.T) {
		for _, policy := range []Policy{Static, Dynamic, Guided} {
			sd := chaos.NewSeeded(99)
			sd.Arm(chaos.WaveBarrier, chaos.KindCancel, 1, 0)
			err := RunWavesOpts(nil, policy, workers, newPlan(), RunOpts{Chaos: sd}, func(_, _ int) {})
			if !errors.Is(err, chaos.ErrInjected) || !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want chaos.ErrInjected and context.Canceled in the chain", policy, err)
			}
			if sd.Fired(chaos.WaveBarrier) != 1 {
				t.Errorf("%v: barrier seam fired %d times, want 1", policy, sd.Fired(chaos.WaveBarrier))
			}
		}
	})

	t.Run("panic", func(t *testing.T) {
		sd := chaos.NewSeeded(100)
		sd.Arm(chaos.WaveBarrier, chaos.KindPanic, 2, 0)
		err := RunWavesOpts(nil, Dynamic, workers, newPlan(), RunOpts{Chaos: sd}, func(_, _ int) {})
		var pe *PanicError
		if !errors.As(err, &pe) || !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("err = %v, want *PanicError in the chaos.ErrInjected chain", err)
		}
	})

	t.Run("delay", func(t *testing.T) {
		pl := newPlan()
		sd := chaos.NewSeeded(101)
		sd.Arm(chaos.WaveBarrier, chaos.KindDelay, 3, time.Millisecond)
		counts := make([]atomic.Int32, pl.Tiles())
		err := RunWavesOpts(nil, Guided, workers, pl, RunOpts{Chaos: sd}, func(_, tile int) {
			counts[tile].Add(1)
		})
		if err != nil {
			t.Fatalf("delay fault was not absorbed: %v", err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("tile %d ran %d times after an absorbed delay", i, got)
			}
		}
		if sd.Fired(chaos.WaveBarrier) != 1 {
			t.Errorf("barrier seam fired %d times, want 1", sd.Fired(chaos.WaveBarrier))
		}
	})
}
