package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
)

// TestInjectedClaimCancel arms a spurious cancel on a tile claim under
// every policy: the run must fail with an error matching both
// context.Canceled (so existing dispatch treats it as a cancel) and
// chaos.ErrInjected (so the retry classifier can tell it from a
// caller's cancel), without running every tile.
func TestInjectedClaimCancel(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		sd := chaos.NewSeeded(401)
		sd.Arm(chaos.TileClaim, chaos.KindCancel, 3, 0)
		var ran atomic.Int64
		err := RunChunkedOpts(context.Background(), policy, 2, 64, RunOpts{Chaos: sd},
			func(worker, tile int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled match", policy, err)
		}
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("%v: err = %v, want chaos.ErrInjected match", policy, err)
		}
		if sd.Fired(chaos.TileClaim) != 1 {
			t.Fatalf("%v: trigger fired %d times, want 1", policy, sd.Fired(chaos.TileClaim))
		}
		if n := ran.Load(); n >= 64 {
			t.Fatalf("%v: all %d tiles ran despite injected cancel", policy, n)
		}
	}
}

// TestInjectedSpawnPanic arms a panic on a worker's spawn seam: the
// guard frame must contain it into a *PanicError that unwraps to the
// injected fault.
func TestInjectedSpawnPanic(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		sd := chaos.NewSeeded(402)
		sd.Arm(chaos.WorkerSpawn, chaos.KindPanic, 2, 0)
		err := RunChunkedOpts(context.Background(), policy, 4, 32, RunOpts{Chaos: sd},
			func(worker, tile int) {})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%v: err = %v, want *PanicError", policy, err)
		}
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("%v: contained panic lost the injected-fault chain: %v", policy, err)
		}
	}
}

// TestStallWatchdogVerdict blocks the sole worker far past the stall
// window and requires a *StallError verdict carrying goroutine stacks
// and an accurate progress count. The watchdog detects rather than
// preempts, so the run only returns once the worker unblocks — the
// timer below plays the stuck resource coming back.
func TestStallWatchdogVerdict(t *testing.T) {
	release := make(chan struct{})
	go func() {
		time.Sleep(250 * time.Millisecond)
		close(release)
	}()
	var entered atomic.Bool
	err := RunChunkedOpts(context.Background(), Static, 1, 8,
		RunOpts{StallTimeout: 20 * time.Millisecond},
		func(worker, tile int) {
			if entered.CompareAndSwap(false, true) {
				<-release
			}
		})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Done != 0 || se.Tiles != 8 {
		t.Fatalf("verdict progress %d/%d, want 0/8", se.Done, se.Tiles)
	}
	if len(se.Stacks) == 0 {
		t.Fatal("verdict carries no goroutine stacks")
	}
	if se.Timeout != 20*time.Millisecond {
		t.Fatalf("verdict timeout %v, want 20ms", se.Timeout)
	}
}

// TestStallWatchdogQuietOnProgress runs steadily-progressing work under
// an armed watchdog: the run must complete with every tile executed
// exactly once and no verdict.
func TestStallWatchdogQuietOnProgress(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		seen := make([]atomic.Int32, 96)
		err := RunChunkedOpts(context.Background(), policy, 4, len(seen),
			RunOpts{StallTimeout: time.Second},
			func(worker, tile int) { seen[tile].Add(1) })
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("%v: tile %d ran %d times", policy, i, got)
			}
		}
	}
}

// TestRunOptsZeroMatchesRunChunkedE checks that the zero options block
// is behaviorally RunChunkedE: complete coverage, no error.
func TestRunOptsZeroMatchesRunChunkedE(t *testing.T) {
	for _, policy := range []Policy{Static, Dynamic, Guided} {
		seen := make([]atomic.Int32, 40)
		if err := RunChunkedOpts(context.Background(), policy, 3, len(seen), RunOpts{},
			func(worker, tile int) { seen[tile].Add(1) }); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("%v: tile %d ran %d times", policy, i, got)
			}
		}
	}
}

// TestPanicErrorUnwrap pins the Unwrap contract: error panic values
// join the chain, non-error values do not.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	if pe := (&PanicError{Value: sentinel}); !errors.Is(pe, sentinel) {
		t.Fatal("error panic value not reachable through Unwrap")
	}
	if pe := (&PanicError{Value: "plain string"}); pe.Unwrap() != nil {
		t.Fatal("non-error panic value unexpectedly unwraps")
	}
}
