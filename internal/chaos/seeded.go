package chaos

import (
	"sync/atomic"
	"time"
)

// Seeded is the deterministic trigger injector behind the chaos matrix:
// each injection point carries a crossing counter, and an armed trigger
// fires exactly once, on a specific crossing. Which crossing is chosen
// either explicitly (Arm) or derived from the seed (ArmSeeded), so a
// failing chaos run is reproduced by its seed alone.
//
// Seeded is safe for concurrent use: counters are atomics and arming
// publishes the trigger with an atomic store of the crossing number.
// Arm before the run; re-arming mid-run is not synchronized with
// in-flight crossings.
type Seeded struct {
	seed      uint64
	crossings [NumPoints]atomic.Int64
	fired     [NumPoints]atomic.Int64
	arms      [NumPoints]armedTrigger
}

// armedTrigger is one point's armed fault. nth is stored last by Arm
// and loaded first by Decide, publishing kind and delay; 0 = disarmed.
type armedTrigger struct {
	kind  atomic.Int32
	delay atomic.Int64
	nth   atomic.Int64
}

// NewSeeded returns a Seeded injector with no triggers armed.
func NewSeeded(seed int64) *Seeded {
	return &Seeded{seed: uint64(seed)}
}

// Seed returns the injector's seed.
func (s *Seeded) Seed() int64 { return int64(s.seed) }

// Arm schedules fault k at point p to fire on exactly the nth crossing
// (1-based; nth < 1 is treated as 1). delay applies to KindDelay.
func (s *Seeded) Arm(p Point, k Kind, nth int64, delay time.Duration) {
	if nth < 1 {
		nth = 1
	}
	s.arms[p].kind.Store(int32(k))
	s.arms[p].delay.Store(int64(delay))
	s.arms[p].nth.Store(nth)
}

// ArmSeeded arms fault k at point p on a seed-derived crossing in
// [1, maxNth]: the same seed always picks the same crossing, different
// seeds spread the fault across the run. maxNth < 1 is treated as 1.
func (s *Seeded) ArmSeeded(p Point, k Kind, maxNth int64, delay time.Duration) {
	if maxNth < 1 {
		maxNth = 1
	}
	h := splitmix64(s.seed ^ uint64(p)<<32 ^ uint64(k)<<8)
	s.Arm(p, k, 1+int64(h%uint64(maxNth)), delay)
}

// Disarm clears point p's trigger.
func (s *Seeded) Disarm(p Point) { s.arms[p].nth.Store(0) }

// Crossings reports how many times point p has been consulted.
func (s *Seeded) Crossings(p Point) int64 { return s.crossings[p].Load() }

// Fired reports how many times point p's trigger has fired.
func (s *Seeded) Fired(p Point) int64 { return s.fired[p].Load() }

// Decide implements Injector: count the crossing and fire the armed
// trigger if this is its crossing. Firing on equality makes every
// trigger one-shot by construction.
func (s *Seeded) Decide(p Point) Fault {
	n := s.crossings[p].Add(1)
	target := s.arms[p].nth.Load()
	if target == 0 || n != target {
		return Fault{}
	}
	s.fired[p].Add(1)
	return Fault{
		Kind:  Kind(s.arms[p].kind.Load()),
		Delay: time.Duration(s.arms[p].delay.Load()),
	}
}

// splitmix64 is the SplitMix64 mixer — a full-avalanche hash, so
// adjacent seeds land triggers on unrelated crossings.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
