// Package chaos is the repository's fault-injection layer: a set of
// named injection points at the execution stack's failure seams
// (workspace checkout/release, tile claim, worker spawn, accumulator
// grow, plan-cache store, row-kernel entry) that an Injector can arm
// with deterministic faults — panic, error, delay, spurious cancel,
// allocation-pressure simulation. The quarantine, retry and watchdog
// machinery in exec/sched/spgemm is proven against these faults by the
// seeded chaos matrix (make chaos).
//
// The package follows the nil-safe obs.Recorder pattern: a nil
// Injector disables everything, and every seam consults it through
// Step/StepHard whose nil fast path is a single comparison — no
// allocation, no atomic, no call. Production configurations never pay
// for the instrumentation.
package chaos

import (
	"errors"
	"fmt"
	"time"
)

// Point names one injection seam. The set covers every failure class
// the execution stack must survive: pool corruption (checkout/release),
// scheduler faults (claim/spawn), accumulator faults mid-row (grow),
// cache faults (plan store) and kernel faults (row entry).
type Point uint8

const (
	// WorkspaceCheckout fires inside exec.Masked / exec.Dense after a
	// pooled workspace has been checked out.
	WorkspaceCheckout Point = iota
	// WorkspaceRelease fires inside Workspace.Release before a pooled
	// workspace is returned to its engine.
	WorkspaceRelease
	// TileClaim fires in the scheduler once per claimed tile, in every
	// policy including the serial below-cutoff loop.
	TileClaim
	// WorkerSpawn fires once inside each spawned worker goroutine,
	// within its panic-containment frame.
	WorkerSpawn
	// AccumGrow fires when a hash accumulator grows its table mid-row.
	AccumGrow
	// PlanStore fires in the engine's plan cache just before a freshly
	// built plan is stored.
	PlanStore
	// RowKernel fires at row-kernel entry, once per output row.
	RowKernel
	// WaveBarrier fires in the wave scheduler once per worker per
	// barrier crossing, before the worker arrives at the barrier — the
	// seam where a dependency-carrying run (masked triangular solve) is
	// most exposed: a fault here must drain every parked worker without
	// deadlocking the barrier protocol.
	WaveBarrier
	// NumPoints bounds the Point enum.
	NumPoints
)

var pointNames = [NumPoints]string{
	"workspace-checkout", "workspace-release", "tile-claim",
	"worker-spawn", "accum-grow", "plan-store", "row-kernel",
	"wave-barrier",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("chaos.Point(%d)", uint8(p))
}

// Kind is the fault class an armed trigger injects.
type Kind uint8

const (
	// KindNone is the quiescent decision: no fault.
	KindNone Kind = iota
	// KindPanic panics with an *Injected value, exercising the
	// scheduler's containment and the pool's quarantine path.
	KindPanic
	// KindError surfaces through the seam's own error channel; seams
	// without one (StepHard) escalate it to a panic, the only way the
	// fault can be observed there.
	KindError
	// KindDelay sleeps for Fault.Delay and then proceeds normally —
	// the stall-watchdog trigger.
	KindDelay
	// KindCancel asks the seam to behave as if its context were
	// cancelled (a spurious, transient cancellation). Seams without a
	// cancellation channel escalate it like KindError.
	KindCancel
	// KindPressure simulates an allocation failure under memory
	// pressure: a burst of garbage allocations followed by a panic
	// with an *Injected value.
	KindPressure
)

var kindNames = [...]string{"none", "panic", "error", "delay", "cancel", "pressure"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("chaos.Kind(%d)", uint8(k))
}

// Fault is one injection decision. The zero value means no fault.
type Fault struct {
	Kind Kind
	// Delay is the sleep for KindDelay (0 means 100µs).
	Delay time.Duration
}

// Injector decides, per crossing of an injection point, whether to
// fault. Implementations must be safe for concurrent use: Decide is
// called from worker goroutines. A nil Injector disables injection
// entirely (the seams' fast path).
type Injector interface {
	Decide(p Point) Fault
}

// Func adapts a function to the Injector interface.
type Func func(Point) Fault

// Decide implements Injector.
func (f Func) Decide(p Point) Fault { return f(p) }

// ErrInjected marks every error and panic value originating from an
// injected fault, so tests and the retry classifier can tell deliberate
// chaos from organic failures with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Injected is the typed payload of an injected fault: the panic value
// for KindPanic/KindPressure, the wrapped error for KindError. Its
// chain matches ErrInjected.
type Injected struct {
	Point Point
	Kind  Kind
}

func (e *Injected) Error() string {
	return fmt.Sprintf("%v at %v: %v", ErrInjected, e.Point, e.Kind)
}

// Unwrap ties the value into the ErrInjected chain.
func (e *Injected) Unwrap() error { return ErrInjected }

// pressureSink keeps the pressure burst's allocations observable so the
// compiler cannot elide them.
var pressureSink []byte

// execute performs the in-band fault kinds. KindPressure allocates a
// burst of garbage first, so the GC sees real pressure before the
// simulated allocation failure surfaces.
func execute(p Point, f Fault) {
	switch f.Kind {
	case KindPanic:
		panic(&Injected{Point: p, Kind: KindPanic})
	case KindPressure:
		for i := 0; i < 64; i++ {
			pressureSink = make([]byte, 64<<10)
		}
		pressureSink = nil
		panic(&Injected{Point: p, Kind: KindPressure})
	case KindDelay:
		d := f.Delay
		if d <= 0 {
			d = 100 * time.Microsecond
		}
		time.Sleep(d)
	}
}

// Step consults inj at point p and executes the fault in-band where it
// can: KindPanic and KindPressure panic with an *Injected value,
// KindDelay sleeps. KindError and KindCancel are returned as the Kind
// for the seam to translate into its own error or cancellation channel
// (the plan cache skips its store, the scheduler records a spurious
// cancel). A nil inj returns KindNone after a single comparison.
func Step(inj Injector, p Point) Kind {
	if inj == nil {
		return KindNone
	}
	f := inj.Decide(p)
	switch f.Kind {
	case KindNone:
		return KindNone
	case KindError, KindCancel:
		return f.Kind
	}
	execute(p, f)
	return KindNone
}

// StepHard is Step for seams with no error or cancellation channel
// (workspace checkout/release, accumulator grow, row-kernel entry):
// KindError and KindCancel also panic with an *Injected value, the only
// way those faults can surface there. A nil inj is a single comparison.
func StepHard(inj Injector, p Point) {
	if inj == nil {
		return
	}
	f := inj.Decide(p)
	switch f.Kind {
	case KindNone:
	case KindDelay:
		execute(p, f)
	case KindError, KindCancel:
		panic(&Injected{Point: p, Kind: f.Kind})
	default:
		execute(p, f)
	}
}

// InjectedError wraps an *Injected as a seam-level error (for seams
// that translate KindError into their error channel).
func InjectedError(p Point, k Kind) error {
	return &Injected{Point: p, Kind: k}
}
