package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorFastPath(t *testing.T) {
	if k := Step(nil, RowKernel); k != KindNone {
		t.Fatalf("Step(nil) = %v, want KindNone", k)
	}
	StepHard(nil, RowKernel) // must not panic
	if n := testing.AllocsPerRun(100, func() {
		Step(nil, RowKernel)
		StepHard(nil, WorkspaceCheckout)
	}); n != 0 {
		t.Fatalf("nil-injector fast path allocates %v per run, want 0", n)
	}
}

func TestStepExecutesKinds(t *testing.T) {
	always := func(k Kind) Injector {
		return Func(func(Point) Fault { return Fault{Kind: k, Delay: time.Microsecond} })
	}

	// Error and Cancel are returned for the seam to translate.
	if k := Step(always(KindError), PlanStore); k != KindError {
		t.Fatalf("Step(error) = %v, want KindError", k)
	}
	if k := Step(always(KindCancel), TileClaim); k != KindCancel {
		t.Fatalf("Step(cancel) = %v, want KindCancel", k)
	}
	// Delay proceeds normally.
	if k := Step(always(KindDelay), TileClaim); k != KindNone {
		t.Fatalf("Step(delay) = %v, want KindNone", k)
	}

	// Panic and Pressure panic with an *Injected matching ErrInjected.
	for _, kind := range []Kind{KindPanic, KindPressure} {
		func() {
			defer func() {
				r := recover()
				inj, ok := r.(*Injected)
				if !ok {
					t.Fatalf("Step(%v) panicked with %T, want *Injected", kind, r)
				}
				if inj.Kind != kind || inj.Point != RowKernel {
					t.Fatalf("Step(%v) payload = %+v", kind, inj)
				}
				if !errors.Is(inj, ErrInjected) {
					t.Fatalf("panic payload does not match ErrInjected")
				}
			}()
			Step(always(kind), RowKernel)
		}()
	}

	// StepHard escalates Error and Cancel to panics.
	for _, kind := range []Kind{KindError, KindCancel} {
		func() {
			defer func() {
				if _, ok := recover().(*Injected); !ok {
					t.Fatalf("StepHard(%v) did not panic with *Injected", kind)
				}
			}()
			StepHard(always(kind), AccumGrow)
		}()
	}
}

func TestSeededOneShotAndDeterministic(t *testing.T) {
	s := NewSeeded(42)
	s.Arm(TileClaim, KindError, 3, 0)
	var fires []int64
	for i := 0; i < 10; i++ {
		if f := s.Decide(TileClaim); f.Kind != KindNone {
			fires = append(fires, int64(i+1))
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("trigger fired at crossings %v, want [3]", fires)
	}
	if s.Crossings(TileClaim) != 10 || s.Fired(TileClaim) != 1 {
		t.Fatalf("crossings=%d fired=%d, want 10/1",
			s.Crossings(TileClaim), s.Fired(TileClaim))
	}

	// Same seed → same derived crossing; the derivation respects maxNth.
	pick := func(seed int64) int64 {
		in := NewSeeded(seed)
		in.ArmSeeded(RowKernel, KindPanic, 50, 0)
		for i := int64(1); i <= 50; i++ {
			if in.Decide(RowKernel).Kind != KindNone {
				return i
			}
		}
		return -1
	}
	a, b := pick(7), pick(7)
	if a != b {
		t.Fatalf("same seed picked crossings %d and %d", a, b)
	}
	if a < 1 || a > 50 {
		t.Fatalf("derived crossing %d out of [1,50]", a)
	}
}

func TestSeededDisarm(t *testing.T) {
	s := NewSeeded(1)
	s.Arm(AccumGrow, KindPanic, 1, 0)
	s.Disarm(AccumGrow)
	if f := s.Decide(AccumGrow); f.Kind != KindNone {
		t.Fatalf("disarmed trigger fired: %v", f)
	}
}

func TestNames(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		if p.String() == "" {
			t.Fatalf("point %d has no name", p)
		}
	}
	for _, k := range []Kind{KindNone, KindPanic, KindError, KindDelay, KindCancel, KindPressure} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
