// Package mtx reads and writes the MatrixMarket coordinate format, the
// interchange format of the SuiteSparse Matrix Collection the paper
// draws its corpus from. Supported variants: coordinate storage with
// real/integer/pattern fields and general/symmetric symmetry — enough to
// load any collection graph and to round-trip the synthetic corpus.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maskedspgemm/internal/sparse"
)

// header mirrors the %%MatrixMarket banner fields we support.
type header struct {
	object   string // matrix
	format   string // coordinate
	field    string // real | integer | pattern
	symmetry string // general | symmetric | skew-symmetric
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mtx: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3], symmetry: fields[4]}
	if h.object != "matrix" {
		return h, fmt.Errorf("mtx: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mtx: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mtx: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mtx: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// Read parses a MatrixMarket coordinate stream into CSR. Symmetric
// inputs are expanded (both triangles stored); pattern inputs get unit
// values. Duplicate entries sum, matching common collection tooling.
func Read(r io.Reader) (*sparse.CSR[float64], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var rows, cols int
	var nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mtx: bad size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mtx: missing or invalid size line")
	}

	capHint := nnz
	if h.symmetry != "general" {
		capHint *= 2
	}
	coo := sparse.NewCOO[float64](rows, cols, capHint)
	var count int64
	for sc.Scan() && count < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if h.field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mtx: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad row index %q: %v", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad column index %q: %v", fields[1], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: entry (%d,%d) out of bounds %dx%d", i, j, rows, cols)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mtx: bad value %q: %v", fields[2], err)
			}
		}
		ri, cj := sparse.Index(i-1), sparse.Index(j-1)
		coo.Add(ri, cj, v)
		if h.symmetry != "general" && ri != cj {
			if h.symmetry == "skew-symmetric" {
				coo.Add(cj, ri, -v)
			} else {
				coo.Add(cj, ri, v)
			}
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mtx: read: %w", err)
	}
	if count != nnz {
		return nil, fmt.Errorf("mtx: got %d entries, header promised %d", count, nnz)
	}
	return coo.ToCSR(), nil
}

// Write emits m as a general real coordinate MatrixMarket stream.
func Write(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			fmt.Fprintf(bw, "%d %d %g\n", i+1, int(j)+1, vals[k])
		}
	}
	return bw.Flush()
}

// WritePattern emits only the structure of m as a pattern MatrixMarket
// stream — the natural serialization for unweighted graphs.
func WritePattern(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.RowCols(i) {
			fmt.Fprintf(bw, "%d %d\n", i+1, int(j)+1)
		}
	}
	return bw.Flush()
}
