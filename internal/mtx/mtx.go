// Package mtx reads and writes the MatrixMarket coordinate format, the
// interchange format of the SuiteSparse Matrix Collection the paper
// draws its corpus from. Supported variants: coordinate storage with
// real/integer/pattern fields and general/symmetric symmetry — enough to
// load any collection graph and to round-trip the synthetic corpus.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"maskedspgemm/internal/sparse"
)

// header mirrors the %%MatrixMarket banner fields we support.
type header struct {
	object   string // matrix
	format   string // coordinate
	field    string // real | integer | pattern
	symmetry string // general | symmetric | skew-symmetric
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mtx: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3], symmetry: fields[4]}
	if h.object != "matrix" {
		return h, fmt.Errorf("mtx: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mtx: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mtx: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mtx: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// maxReadDim bounds the dimensions a text stream may declare: indices
// are stored as int32, so anything above MaxInt32 would silently
// truncate on conversion. The allocation hint is separately clamped so
// a lying header cannot force a huge up-front allocation.
const (
	maxReadDim = math.MaxInt32
	maxCapHint = 1 << 20
	maxErrLine = 80 // quoted-line truncation in error messages
)

// trunc shortens a hostile line before it is quoted in an error.
func trunc(s string) string {
	if len(s) > maxErrLine {
		return s[:maxErrLine] + "..."
	}
	return s
}

// Read parses a MatrixMarket coordinate stream into CSR. Symmetric
// inputs are expanded (both triangles stored); pattern inputs get unit
// values. Duplicate entries sum, matching common collection tooling.
//
// Read is safe on hostile input: every structural violation — bad
// banner, malformed or implausible size line (non-positive or >2³¹-1
// dimensions, negative or over-capacity nnz), out-of-range or
// non-integer indices, too few or trailing entries — is reported as an
// error carrying the 1-based line number, never a panic or an
// unbounded allocation.
func Read(r io.Reader) (*sparse.CSR[float64], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	scan := func() bool {
		if sc.Scan() {
			lineNo++
			return true
		}
		return false
	}

	if !scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line. The size line must have exactly
	// three integer fields: rows, cols, nnz.
	var rows, cols, nnz int64
	sized := false
	for scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("mtx: line %d: bad size line %q: want \"rows cols nnz\"", lineNo, trunc(line))
		}
		dims := make([]int64, 3)
		for k, f := range fields {
			dims[k], err = strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mtx: line %d: bad size field %q: %w", lineNo, trunc(f), err)
			}
		}
		rows, cols, nnz = dims[0], dims[1], dims[2]
		sized = true
		break
	}
	if !sized {
		return nil, fmt.Errorf("mtx: missing size line")
	}
	if rows <= 0 || cols <= 0 || rows > maxReadDim || cols > maxReadDim {
		return nil, fmt.Errorf("mtx: implausible dimensions %dx%d (want 1..%d)", rows, cols, int64(maxReadDim))
	}
	if nnz < 0 || nnz > rows*cols {
		return nil, fmt.Errorf("mtx: implausible nnz %d for %dx%d matrix", nnz, rows, cols)
	}

	// The hint only pre-sizes buffers; COO grows by append, so clamping
	// it cannot lose entries — it just stops a lying header from forcing
	// a giant allocation before any data has been seen.
	capHint := nnz
	if h.symmetry != "general" {
		capHint *= 2
	}
	if capHint > maxCapHint {
		capHint = maxCapHint
	}
	coo := sparse.NewCOO[float64](int(rows), int(cols), capHint)
	var count int64
	for scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if count >= nnz {
			return nil, fmt.Errorf("mtx: line %d: trailing entry %q after the %d promised by the header", lineNo, trunc(line), nnz)
		}
		fields := strings.Fields(line)
		want := 3
		if h.field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mtx: line %d: bad entry line %q", lineNo, trunc(line))
		}
		i, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad row index %q: %w", lineNo, trunc(fields[0]), err)
		}
		j, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mtx: line %d: bad column index %q: %w", lineNo, trunc(fields[1]), err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: line %d: entry (%d,%d) out of bounds %dx%d", lineNo, i, j, rows, cols)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mtx: line %d: bad value %q: %w", lineNo, trunc(fields[2]), err)
			}
		}
		ri, cj := sparse.Index(i-1), sparse.Index(j-1)
		coo.Add(ri, cj, v)
		if h.symmetry != "general" && ri != cj {
			if h.symmetry == "skew-symmetric" {
				coo.Add(cj, ri, -v)
			} else {
				coo.Add(cj, ri, v)
			}
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mtx: line %d: read: %w", lineNo, err)
	}
	if count != nnz {
		return nil, fmt.Errorf("mtx: got %d entries, header promised %d", count, nnz)
	}
	return coo.ToCSR(), nil
}

// Write emits m as a general real coordinate MatrixMarket stream.
func Write(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			fmt.Fprintf(bw, "%d %d %g\n", i+1, int(j)+1, vals[k])
		}
	}
	return bw.Flush()
}

// WritePattern emits only the structure of m as a pattern MatrixMarket
// stream — the natural serialization for unweighted graphs.
func WritePattern(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.RowCols(i) {
			fmt.Fprintf(bw, "%d %d\n", i+1, int(j)+1)
		}
	}
	return bw.Flush()
}
