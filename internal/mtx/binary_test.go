package mtx

import (
	"bytes"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := graphgen.ErdosRenyi(60, 200, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sparse.Equal(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEmptyMatrix(t *testing.T) {
	m := sparse.NewCSR[float64](0, 0, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 0 || back.NNZ() != 0 {
		t.Error("empty matrix round trip wrong")
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	m := graphgen.ErdosRenyi(40, 120, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one payload byte: the checksum must catch it (or the CSR
	// invariant check, for corruptions that keep the checksum region).
	for _, pos := range []int{5, 40, len(pristine) / 2, len(pristine) - 9} {
		corrupt := append([]byte(nil), pristine...)
		corrupt[pos] ^= 0x40
		if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}

	// Truncation.
	if _, err := ReadBinary(bytes.NewReader(pristine[:len(pristine)/2])); err == nil {
		t.Error("truncation not detected")
	}
	// Wrong magic.
	bad := append([]byte("NOPE"), pristine[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
	// Empty stream.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream not detected")
	}
}

func TestBinaryTextEquivalence(t *testing.T) {
	// Both containers must reproduce the same matrix. (Binary exists for
	// parse speed, not size: for unit-valued graphs the "i j 1" text
	// form is byte-competitive, but text parsing dominates load time.)
	m := graphgen.RMAT(9, 8, 0.57, 0.19, 0.19, 8)
	var text, bin bytes.Buffer
	if err := Write(&text, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, m); err != nil {
		t.Fatal(err)
	}
	fromText, err := Read(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(fromText, fromBin) {
		t.Error("text and binary containers disagree")
	}
}

// BenchmarkLoadFormats quantifies why the binary container exists.
func BenchmarkLoadFormats(b *testing.B) {
	m := graphgen.RMAT(11, 8, 0.57, 0.19, 0.19, 8)
	var text, bin bytes.Buffer
	if err := Write(&text, m); err != nil {
		b.Fatal(err)
	}
	if err := WriteBinary(&bin, m); err != nil {
		b.Fatal(err)
	}
	textBytes, binBytes := text.Bytes(), bin.Bytes()
	b.Run("Text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Read(bytes.NewReader(textBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinary(bytes.NewReader(binBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
