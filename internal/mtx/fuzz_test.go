package mtx

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"maskedspgemm/internal/sparse"
)

// FuzzRead checks the MatrixMarket parser never panics and that every
// successfully parsed matrix satisfies the CSR invariants and
// round-trips through Write.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 -7\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1\n")
	f.Add("garbage\n1 2 3\n")
	// Hostile seeds: every header-lie and index-attack class the parser
	// must reject without panicking.
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-2 -2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 4611686018427387904\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n4294967296 4294967296 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 0 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 -1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n99999999999999999999 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2.5 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1 junk\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := m.Check(); err != nil {
			t.Fatalf("accepted malformed matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write failed on accepted matrix: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadBinary checks the binary CSR container parser never panics —
// in particular that lying headers cannot force huge allocations or
// out-of-range slicing — and that anything it accepts is a valid CSR.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid container plus targeted corruptions of its
	// header fields (version, dims, nnz) and payload truncations.
	valid := func() []byte {
		m := sparse.NewCSR[float64](3, 3, 4)
		m.AppendRow(0, []sparse.Index{0, 2}, []float64{1, 2})
		m.AppendRow(1, nil, nil)
		m.AppendRow(2, []sparse.Index{1}, []float64{3})
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add([]byte("CSRB"))
	f.Add([]byte("junk"))
	for _, off := range []int{4, 12, 20, 28} {
		mut := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(mut[off:], 1<<60)
		f.Add(mut)
		mut = append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(mut[off:], ^uint64(0)) // -1
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		m, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := m.Check(); err != nil {
			t.Fatalf("accepted malformed matrix: %v", err)
		}
	})
}
