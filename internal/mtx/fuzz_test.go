package mtx

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the MatrixMarket parser never panics and that every
// successfully parsed matrix satisfies the CSR invariants and
// round-trips through Write.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 -7\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1\n")
	f.Add("garbage\n1 2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := m.Check(); err != nil {
			t.Fatalf("accepted malformed matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write failed on accepted matrix: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatal("round trip changed shape")
		}
	})
}
