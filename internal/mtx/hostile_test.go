package mtx

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"strings"
	"testing"

	"maskedspgemm/internal/sparse"
)

// TestReadHostile feeds the text parser inputs crafted to trigger the
// classic parser failure modes — overflowing dimensions, lying entry
// counts, out-of-range indices — and requires a clean error (never a
// panic, never a silently wrong matrix) for each.
func TestReadHostile(t *testing.T) {
	banner := "%%MatrixMarket matrix coordinate real general\n"
	cases := []struct {
		name  string
		input string
		want  string // substring the error must contain
	}{
		{"negative nnz", banner + "2 2 -1\n", "implausible nnz"},
		{"negative rows", banner + "-2 2 1\n1 1 1\n", "implausible dimensions"},
		{"zero rows with entries", banner + "0 5 1\n1 1 1\n", "implausible dimensions"},
		{"rows over int32", banner + "4294967296 2 1\n1 1 1\n", "implausible dimensions"},
		{"cols over int32", banner + "2 9999999999 1\n1 1 1\n", "implausible dimensions"},
		{"nnz over capacity", banner + "2 2 5\n1 1 1\n1 2 1\n2 1 1\n2 2 1\n1 1 1\n", "implausible nnz"},
		{"huge nnz small body", banner + "2 2 4611686018427387904\n1 1 1\n", "implausible nnz"},
		{"size line extra field", banner + "2 2 1 7\n1 1 1\n", "bad size line"},
		{"size line float", banner + "2.5 2 1\n1 1 1\n", "bad size field"},
		{"size line overflow", banner + "99999999999999999999 2 1\n", "bad size field"},
		{"row index zero", banner + "2 2 1\n0 1 1\n", "out of bounds"},
		{"row index negative", banner + "2 2 1\n-1 1 1\n", "out of bounds"},
		{"col index past cols", banner + "2 2 1\n1 3 1\n", "out of bounds"},
		{"index overflows int", banner + "2 2 1\n99999999999999999999 1 1\n", "bad row index"},
		{"non-numeric value", banner + "2 2 1\n1 1 abc\n", "bad value"},
		{"missing value field", banner + "2 2 1\n1 1\n", "bad entry line"},
		{"truncated body", banner + "2 2 2\n1 1 1\n", "got 1 entries"},
		{"trailing entries", banner + "2 2 1\n1 1 1\n2 2 5\n", "trailing entry"},
		{"no size line", banner + "% only comments\n", "missing size line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("hostile input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadErrorLineNumbers checks that body-level parse errors name the
// 1-based line the offense is on.
func TestReadErrorLineNumbers(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n% a comment\n2 2 2\n1 1 1\n1 bogus 1\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("bad index accepted")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error %q does not carry line 5", err)
	}
}

// corruptHeader rewrites the (rows, cols, nnz) header of a valid binary
// stream and refreshes the trailing checksum so only the structural
// validation can catch the lie.
func corruptHeader(t *testing.T, blob []byte, rows, cols, nnz int64) []byte {
	t.Helper()
	out := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(out[12:], uint64(rows))
	binary.LittleEndian.PutUint64(out[20:], uint64(cols))
	binary.LittleEndian.PutUint64(out[28:], uint64(nnz))
	payload := out[:len(out)-8]
	sum := crc64.Checksum(payload, crc64.MakeTable(crc64.ECMA))
	binary.LittleEndian.PutUint64(out[len(out)-8:], sum)
	return out
}

// TestReadBinaryHostile attacks the binary container header: a lying
// nnz or dimension field must produce an error, not an allocation of
// the claimed size or an index-out-of-range panic downstream.
func TestReadBinaryHostile(t *testing.T) {
	m := sparse.NewCSR[float64](2, 2, 2)
	m.AppendRow(0, []sparse.Index{0, 1}, []float64{1, 2})
	m.AppendRow(1, []sparse.Index{1}, []float64{3})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	cases := []struct {
		name            string
		rows, cols, nnz int64
	}{
		{"huge nnz", 2, 2, 1 << 60},
		{"negative nnz", 2, 2, -1},
		{"nnz over capacity", 2, 2, 5},
		{"huge rows", 1 << 40, 2, 3},
		{"negative rows", -2, 2, 3},
		{"huge cols", 2, 1 << 40, 3},
		{"zero rows nonzero nnz", 0, 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hostile := corruptHeader(t, blob, tc.rows, tc.cols, tc.nnz)
			if _, err := ReadBinary(bytes.NewReader(hostile)); err == nil {
				t.Fatal("hostile binary header accepted")
			}
		})
	}

	t.Run("truncated stream", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(blob[:len(blob)/2])); err == nil {
			t.Fatal("truncated stream accepted")
		}
	})
	t.Run("valid baseline still reads", func(t *testing.T) {
		got, err := ReadBinary(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(m, got) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
