package mtx

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 4
1 1 2.5
1 3 -1
3 2 7
2 4 0.5
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 0) != 2.5 || m.At(0, 2) != -1 || m.At(2, 1) != 7 || m.At(1, 3) != 0.5 {
		t.Error("values wrong")
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer symmetric
3 3 3
2 1 4
3 1 5
3 3 6
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal entries expand; diagonal does not.
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	if m.At(0, 1) != 4 || m.At(1, 0) != 4 || m.At(2, 2) != 6 {
		t.Error("symmetric expansion wrong")
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Error("pattern values must be 1")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != -3 {
		t.Errorf("skew expansion wrong: %v %v", m.At(1, 0), m.At(0, 1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad banner":      "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"array format":    "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":   "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad size":        "%%MatrixMarket matrix coordinate real general\nnope\n",
		"out of bounds":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"missing entries": "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad index":       "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := graphgen.ErdosRenyi(30, 60, seed)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return sparse.Equal(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPatternRoundTrip(t *testing.T) {
	m := graphgen.RMAT(6, 4, 0.57, 0.19, 0.19, 3)
	var buf bytes.Buffer
	if err := WritePattern(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualPattern(m, back) {
		t.Error("pattern round trip changed structure")
	}
}
