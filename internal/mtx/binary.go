package mtx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"maskedspgemm/internal/sparse"
)

// Binary CSR container: a fast native serialization for caching
// generated corpora between benchmark runs, where re-parsing
// MatrixMarket text would dominate. Layout (little endian):
//
//	magic "CSRB" | version u32 | rows i64 | cols i64 | nnz i64
//	rowptr [rows+1]i64 | colidx [nnz]i32 | vals [nnz]f64
//	crc64(ECMA) of everything above
const (
	binaryMagic   = "CSRB"
	binaryVersion = 1
)

// WriteBinary serializes m in the binary CSR container format.
func WriteBinary(w io.Writer, m *sparse.CSR[float64]) error {
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)

	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("mtx: write binary header: %w", err)
	}
	for _, v := range []int64{binaryVersion, int64(m.Rows), int64(m.Cols), m.NNZ()} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("mtx: write binary header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return fmt.Errorf("mtx: write rowptr: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return fmt.Errorf("mtx: write colidx: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return fmt.Errorf("mtx: write vals: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mtx: flush: %w", err)
	}
	// The checksum goes directly to w (it must not hash itself).
	if err := binary.Write(w, binary.LittleEndian, crc.Sum64()); err != nil {
		return fmt.Errorf("mtx: write checksum: %w", err)
	}
	return nil
}

// ReadBinary parses the binary CSR container, verifying the checksum
// (by re-hashing the canonical serialization of the parsed payload)
// and every structural invariant before returning.
func ReadBinary(r io.Reader) (*sparse.CSR[float64], error) {
	br := bufio.NewReaderSize(r, 1<<20)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mtx: read binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("mtx: bad magic %q", magic)
	}
	var version, rows, cols, nnz int64
	for _, p := range []*int64{&version, &rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("mtx: read binary header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("mtx: unsupported binary version %d", version)
	}
	const maxDim = math.MaxInt32
	if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim || nnz < 0 {
		return nil, fmt.Errorf("mtx: implausible header %dx%d nnz=%d", rows, cols, nnz)
	}
	if nnz > rows*cols {
		return nil, fmt.Errorf("mtx: nnz %d exceeds %dx%d matrix capacity", nnz, rows, cols)
	}
	m := &sparse.CSR[float64]{Rows: int(rows), Cols: int(cols)}
	var err error
	if m.RowPtr, err = readChunked[int64](br, rows+1, "rowptr"); err != nil {
		return nil, err
	}
	if m.ColIdx, err = readChunked[sparse.Index](br, nnz, "colidx"); err != nil {
		return nil, err
	}
	if m.Val, err = readChunked[float64](br, nnz, "vals"); err != nil {
		return nil, err
	}
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("mtx: read checksum: %w", err)
	}
	payloadCRC, err := recomputePayloadCRC(m)
	if err != nil {
		return nil, err
	}
	if payloadCRC != got {
		return nil, fmt.Errorf("mtx: checksum mismatch (file corrupt)")
	}
	for _, v := range m.Val {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("mtx: NaN value in binary payload")
		}
	}
	if err := m.Check(); err != nil {
		return nil, fmt.Errorf("mtx: binary payload malformed: %w", err)
	}
	return m, nil
}

// readChunked reads n little-endian elements without trusting n for an
// up-front allocation: the slice grows in bounded chunks as data
// actually arrives, so a header lying about its size fails with a read
// error when the stream runs dry instead of panicking (or OOMing) on an
// impossible allocation.
func readChunked[E ~int64 | ~int32 | ~float64](r io.Reader, n int64, what string) ([]E, error) {
	const chunkElems = 1 << 16
	if n < 0 {
		return nil, fmt.Errorf("mtx: read %s: negative length %d", what, n)
	}
	capHint := n
	if capHint > chunkElems {
		capHint = chunkElems
	}
	out := make([]E, 0, capHint)
	for int64(len(out)) < n {
		c := n - int64(len(out))
		if c > chunkElems {
			c = chunkElems
		}
		buf := make([]E, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("mtx: read %s: %w", what, err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

// recomputePayloadCRC hashes the canonical serialization of m, which by
// construction equals what WriteBinary hashed.
func recomputePayloadCRC(m *sparse.CSR[float64]) (uint64, error) {
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	bw := bufio.NewWriterSize(crc, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return 0, err
	}
	for _, v := range []int64{binaryVersion, int64(m.Rows), int64(m.Cols), m.NNZ()} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return crc.Sum64(), nil
}
