package accum

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Dense is the dense marker-based accumulator: one value slot and one
// marker word per output column. Per-row reset is O(1) — advance the
// marker — except when the marker wraps, which forces an O(n) clear
// (paper §III-C: "overflow is detected and the state is fully reset").
//
// Marker protocol: each row owns two consecutive marker values,
// mask (odd) and entry = mask+1. A slot whose state equals mask is
// allowed-but-unwritten; state equal to entry is written; anything else
// is stale from an earlier row and treated as empty.
type Dense[T sparse.Number, S semiring.Semiring[T], M Marker] struct {
	sr    S
	state []M
	vals  []T
	mask  M // current row's mask marker (odd); entry marker is mask+1
	// Clears counts full state resets due to marker overflow; exposed so
	// tests and benches can observe the bit-width trade-off directly.
	Clears int64
}

// NewDense returns a dense accumulator for rows of column dimension n.
func NewDense[T sparse.Number, S semiring.Semiring[T], M Marker](sr S, n int) *Dense[T, S, M] {
	d := &Dense[T, S, M]{
		sr:    sr,
		state: make([]M, n),
		vals:  make([]T, n),
	}
	d.mask = 1
	return d
}

// BeginRow advances the marker pair, clearing the state array only when
// the marker would wrap.
//
//spgemm:hotpath
func (d *Dense[T, S, M]) BeginRow() {
	var maxM M
	maxM--
	if d.mask >= maxM-2 {
		clear(d.state)
		d.mask = 1
		d.Clears++
		return
	}
	d.mask += 2
}

// LoadMask marks cols as allowed for this row.
//
//spgemm:hotpath
func (d *Dense[T, S, M]) LoadMask(cols []sparse.Index) {
	m := d.mask
	for _, j := range cols {
		d.state[j] = m
	}
}

// Update accumulates x into column j, creating the entry if the slot is
// empty or stale.
//
//spgemm:hotpath
func (d *Dense[T, S, M]) Update(j sparse.Index, x T) {
	entry := d.mask + 1
	switch d.state[j] {
	case entry:
		d.vals[j] = d.sr.Plus(d.vals[j], x)
	case d.mask:
		d.state[j] = entry
		d.vals[j] = x
	default:
		d.state[j] = entry
		d.vals[j] = x
	}
}

// UpdateMasked accumulates x into column j only if LoadMask allowed it.
//
//spgemm:hotpath
func (d *Dense[T, S, M]) UpdateMasked(j sparse.Index, x T) bool {
	entry := d.mask + 1
	switch d.state[j] {
	case entry:
		d.vals[j] = d.sr.Plus(d.vals[j], x)
		return true
	case d.mask:
		d.state[j] = entry
		d.vals[j] = x
		return true
	default:
		return false
	}
}

// Gather appends the written entries among maskCols, in mask order.
//
//spgemm:hotpath
func (d *Dense[T, S, M]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	entry := d.mask + 1
	for _, j := range maskCols {
		if d.state[j] == entry {
			cols = append(cols, j)
			vals = append(vals, d.vals[j])
		}
	}
	return cols, vals
}

// EnableStats is a no-op: the dense accumulator has no probe loop, and
// its only gated-worthy counter (Clears) is already counted for free.
func (d *Dense[T, S, M]) EnableStats() {}

// AccumStats returns the marker-overflow count; a dense table has no
// hash probes or grows.
func (d *Dense[T, S, M]) AccumStats() Stats { return Stats{Clears: d.Clears} }

var _ Accumulator[float64] = (*Dense[float64, semiring.PlusTimes[float64], uint32])(nil)
var _ Instrumented = (*Dense[float64, semiring.PlusTimes[float64], uint32])(nil)

// DenseExplicit is the dense accumulator with GrB's reset strategy:
// per-slot booleans cleared explicitly after every row instead of a
// marker advance. It tracks every touched slot (mask loads and vanilla
// updates alike) so BeginRow can undo exactly what the row did.
type DenseExplicit[T sparse.Number, S semiring.Semiring[T]] struct {
	sr      S
	state   []uint8 // 0 empty, 1 masked, 2 written
	vals    []T
	touched []sparse.Index
}

// NewDenseExplicit returns an explicit-reset dense accumulator for rows
// of column dimension n.
func NewDenseExplicit[T sparse.Number, S semiring.Semiring[T]](sr S, n int) *DenseExplicit[T, S] {
	return &DenseExplicit[T, S]{
		sr:    sr,
		state: make([]uint8, n),
		vals:  make([]T, n),
	}
}

// BeginRow clears exactly the slots the previous row touched.
//
//spgemm:hotpath
func (d *DenseExplicit[T, S]) BeginRow() {
	for _, j := range d.touched {
		d.state[j] = 0
	}
	d.touched = d.touched[:0]
}

// LoadMask marks cols as allowed for this row.
//
//spgemm:hotpath
func (d *DenseExplicit[T, S]) LoadMask(cols []sparse.Index) {
	for _, j := range cols {
		if d.state[j] == 0 {
			d.touched = append(d.touched, j)
		}
		d.state[j] = 1
	}
}

// Update accumulates x into column j unconditionally.
//
//spgemm:hotpath
func (d *DenseExplicit[T, S]) Update(j sparse.Index, x T) {
	switch d.state[j] {
	case 2:
		d.vals[j] = d.sr.Plus(d.vals[j], x)
	case 1:
		d.state[j] = 2
		d.vals[j] = x
	default:
		d.touched = append(d.touched, j)
		d.state[j] = 2
		d.vals[j] = x
	}
}

// UpdateMasked accumulates x into column j only if LoadMask allowed it.
//
//spgemm:hotpath
func (d *DenseExplicit[T, S]) UpdateMasked(j sparse.Index, x T) bool {
	switch d.state[j] {
	case 2:
		d.vals[j] = d.sr.Plus(d.vals[j], x)
		return true
	case 1:
		d.state[j] = 2
		d.vals[j] = x
		return true
	default:
		return false
	}
}

// Gather appends the written entries among maskCols, in mask order.
//
//spgemm:hotpath
func (d *DenseExplicit[T, S]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	for _, j := range maskCols {
		if d.state[j] == 2 {
			cols = append(cols, j)
			vals = append(vals, d.vals[j])
		}
	}
	return cols, vals
}

// EnableStats is a no-op: explicit reset has no markers and no probes.
func (d *DenseExplicit[T, S]) EnableStats() {}

// AccumStats reports zeros — nothing this family does is counted.
func (d *DenseExplicit[T, S]) AccumStats() Stats { return Stats{} }

var _ Accumulator[float64] = (*DenseExplicit[float64, semiring.PlusTimes[float64]])(nil)
var _ Instrumented = (*DenseExplicit[float64, semiring.PlusTimes[float64]])(nil)
