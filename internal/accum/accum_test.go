package accum

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// allKinds enumerates every accumulator configuration under test.
func allKinds() []struct {
	kind Kind
	bits int
	name string
} {
	var out []struct {
		kind Kind
		bits int
		name string
	}
	for _, k := range []Kind{DenseKind, HashKind} {
		for _, b := range []int{8, 16, 32, 64} {
			out = append(out, struct {
				kind Kind
				bits int
				name string
			}{k, b, fmt.Sprintf("%v-%d", k, b)})
		}
	}
	out = append(out, struct {
		kind Kind
		bits int
		name string
	}{DenseExplicitKind, 64, "DenseExplicit"})
	out = append(out, struct {
		kind Kind
		bits int
		name string
	}{HashExplicitKind, 64, "HashExplicit"})
	out = append(out, struct {
		kind Kind
		bits int
		name string
	}{SortListKind, 64, "SortList"})
	return out
}

func newAcc(kind Kind, bits int, n int, rowCap int64) Accumulator[float64] {
	return New[float64](kind, semiring.PlusTimes[float64]{}, n, rowCap, bits)
}

func TestUpdateThenGather(t *testing.T) {
	for _, cfg := range allKinds() {
		t.Run(cfg.name, func(t *testing.T) {
			acc := newAcc(cfg.kind, cfg.bits, 32, 8)
			acc.BeginRow()
			acc.Update(5, 2)
			acc.Update(3, 1)
			acc.Update(5, 4) // accumulates onto 5
			mask := []sparse.Index{1, 3, 5, 9}
			cols, vals := acc.Gather(mask, nil, nil)
			if len(cols) != 2 || cols[0] != 3 || cols[1] != 5 {
				t.Fatalf("cols = %v, want [3 5]", cols)
			}
			if vals[0] != 1 || vals[1] != 6 {
				t.Fatalf("vals = %v, want [1 6]", vals)
			}
		})
	}
}

func TestUpdateMaskedRespectsMask(t *testing.T) {
	for _, cfg := range allKinds() {
		t.Run(cfg.name, func(t *testing.T) {
			acc := newAcc(cfg.kind, cfg.bits, 32, 8)
			acc.BeginRow()
			mask := []sparse.Index{2, 7}
			acc.LoadMask(mask)
			if acc.UpdateMasked(3, 1) {
				t.Error("update outside the mask accepted")
			}
			if !acc.UpdateMasked(7, 5) {
				t.Error("update inside the mask rejected")
			}
			if !acc.UpdateMasked(7, 2) {
				t.Error("second update inside the mask rejected")
			}
			cols, vals := acc.Gather(mask, nil, nil)
			if len(cols) != 1 || cols[0] != 7 || vals[0] != 7 {
				t.Fatalf("gather = %v %v, want [7] [7]", cols, vals)
			}
		})
	}
}

func TestRowIsolation(t *testing.T) {
	// State from one row must never leak into the next, across many more
	// rows than an 8-bit marker can count without clearing.
	for _, cfg := range allKinds() {
		t.Run(cfg.name, func(t *testing.T) {
			acc := newAcc(cfg.kind, cfg.bits, 64, 16)
			for row := 0; row < 1000; row++ {
				acc.BeginRow()
				j := sparse.Index(row % 64)
				mask := []sparse.Index{j}
				acc.LoadMask(mask)
				// Probe a column the previous rows wrote: must be invisible.
				prev := sparse.Index((row + 63) % 64)
				if prev != j {
					if acc.UpdateMasked(prev, 1) {
						t.Fatalf("row %d: stale mask slot %d accepted", row, prev)
					}
				}
				acc.UpdateMasked(j, float64(row))
				cols, vals := acc.Gather(mask, nil, nil)
				if len(cols) != 1 || cols[0] != j || vals[0] != float64(row) {
					t.Fatalf("row %d: gather = %v %v", row, cols, vals)
				}
			}
		})
	}
}

func TestDenseMarkerOverflowClears(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	d := NewDense[float64, semiring.PlusTimes[float64], uint8](sr, 16)
	for row := 0; row < 300; row++ {
		d.BeginRow()
		d.Update(1, 1)
	}
	if d.Clears == 0 {
		t.Error("uint8 marker never overflowed in 300 rows")
	}
	d64 := NewDense[float64, semiring.PlusTimes[float64], uint64](sr, 16)
	for row := 0; row < 300; row++ {
		d64.BeginRow()
		d64.Update(1, 1)
	}
	if d64.Clears != 0 {
		t.Error("uint64 marker overflowed in 300 rows")
	}
}

func TestHashGrowth(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	h := NewHash[float64, semiring.PlusTimes[float64], uint32](sr, 4)
	h.BeginRow()
	// Insert far more than the sizing hint: the table must grow, not hang.
	for j := sparse.Index(0); j < 1000; j++ {
		h.Update(j, float64(j))
	}
	if h.Grows == 0 {
		t.Fatal("hash table never grew")
	}
	mask := make([]sparse.Index, 1000)
	for j := range mask {
		mask[j] = sparse.Index(j)
	}
	cols, vals := h.Gather(mask, nil, nil)
	if len(cols) != 1000 {
		t.Fatalf("gathered %d entries, want 1000", len(cols))
	}
	for p, j := range cols {
		if vals[p] != float64(j) {
			t.Fatalf("value at %d = %v", j, vals[p])
		}
	}
}

func TestHashGrowthPreservesMaskSlots(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	h := NewHash[float64, semiring.PlusTimes[float64], uint16](sr, 2)
	h.BeginRow()
	mask := make([]sparse.Index, 200)
	for j := range mask {
		mask[j] = sparse.Index(j * 3)
	}
	h.LoadMask(mask) // forces several growths mid-load
	if h.Grows == 0 {
		t.Fatal("expected growth during LoadMask")
	}
	for _, j := range mask {
		if !h.UpdateMasked(j, 1) {
			t.Fatalf("mask slot %d lost during growth", j)
		}
	}
	if h.UpdateMasked(1, 1) { // 1 is not a multiple of 3
		t.Error("non-mask slot accepted after growth")
	}
}

// TestAccumulatorMatchesMap drives every accumulator with random
// operation sequences and compares against a plain map — the
// property-based contract check.
func TestAccumulatorMatchesMap(t *testing.T) {
	for _, cfg := range allKinds() {
		cfg := cfg
		if cfg.kind == SortListKind {
			// SortList keeps no per-column state, so an unconditional
			// Update does not make a later out-of-mask UpdateMasked
			// succeed; the mixed-mode model below does not apply (the
			// kernels never mix modes in one row). Covered by
			// TestAccumulatorMaskedOnlyProperty instead.
			continue
		}
		t.Run(cfg.name, func(t *testing.T) {
			f := func(seed int64, nRows uint8) bool {
				r := rand.New(rand.NewSource(seed))
				const n = 40
				acc := newAcc(cfg.kind, cfg.bits, n, 10)
				rows := int(nRows%20) + 1
				for row := 0; row < rows; row++ {
					acc.BeginRow()
					// Random mask of ~8 columns.
					maskSet := map[sparse.Index]bool{}
					for len(maskSet) < 8 {
						maskSet[sparse.Index(r.Intn(n))] = true
					}
					var mask []sparse.Index
					for j := range maskSet {
						mask = append(mask, j)
					}
					sort.Slice(mask, func(a, b int) bool { return mask[a] < mask[b] })
					acc.LoadMask(mask)

					want := map[sparse.Index]float64{}
					written := map[sparse.Index]bool{}
					for op := 0; op < 30; op++ {
						j := sparse.Index(r.Intn(n))
						v := float64(r.Intn(5) + 1)
						if r.Intn(2) == 0 {
							// UpdateMasked accepts a slot the mask allows or
							// one a prior unmasked Update already wrote — the
							// accumulator cannot (and need not) distinguish.
							ok := acc.UpdateMasked(j, v)
							if ok != (maskSet[j] || written[j]) {
								return false
							}
							if ok {
								want[j] += v
								written[j] = true
							}
						} else {
							acc.Update(j, v)
							want[j] += v
							written[j] = true
						}
					}
					cols, vals := acc.Gather(mask, nil, nil)
					got := map[sparse.Index]float64{}
					for p, j := range cols {
						got[j] = vals[p]
					}
					for j, v := range want {
						if maskSet[j] {
							if got[j] != v {
								return false
							}
						} else if _, ok := got[j]; ok {
							return false
						}
					}
					if len(cols) > len(want) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAccumulatorMaskedOnlyProperty drives every accumulator kind —
// including SortList — through the exact protocol the MaskLoad kernel
// uses (mask load, then only UpdateMasked) and compares with a map.
func TestAccumulatorMaskedOnlyProperty(t *testing.T) {
	for _, cfg := range allKinds() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				const n = 48
				acc := newAcc(cfg.kind, cfg.bits, n, 12)
				for row := 0; row < 12; row++ {
					acc.BeginRow()
					maskSet := map[sparse.Index]bool{}
					for len(maskSet) < 6 {
						maskSet[sparse.Index(r.Intn(n))] = true
					}
					var mask []sparse.Index
					for j := range maskSet {
						mask = append(mask, j)
					}
					sort.Slice(mask, func(a, b int) bool { return mask[a] < mask[b] })
					acc.LoadMask(mask)
					want := map[sparse.Index]float64{}
					for op := 0; op < 25; op++ {
						j := sparse.Index(r.Intn(n))
						v := float64(r.Intn(5) + 1)
						ok := acc.UpdateMasked(j, v)
						if ok != maskSet[j] {
							return false
						}
						if ok {
							want[j] += v
						}
					}
					cols, vals := acc.Gather(mask, nil, nil)
					if len(cols) != len(want) {
						return false
					}
					for p, j := range cols {
						if want[j] != vals[p] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGatherOrderFollowsMask(t *testing.T) {
	for _, cfg := range allKinds() {
		t.Run(cfg.name, func(t *testing.T) {
			acc := newAcc(cfg.kind, cfg.bits, 64, 16)
			acc.BeginRow()
			mask := []sparse.Index{4, 9, 17, 33, 50}
			acc.LoadMask(mask)
			for _, j := range []sparse.Index{50, 4, 17} {
				acc.UpdateMasked(j, 1)
			}
			cols, _ := acc.Gather(mask, nil, nil)
			if !sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
				t.Errorf("gather output unsorted: %v", cols)
			}
		})
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid marker bits did not panic")
		}
	}()
	newAcc(DenseKind, 12, 8, 4)
}
