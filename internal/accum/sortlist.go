package accum

import (
	"sort"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SortList is the sort-based accumulator from the design space of
// Milaković et al. (the paper's GrB reference explores accumulators
// beyond hash and dense): updates are appended to an unordered log and
// deduplicated by a sort + linear merge at gather time. No per-column
// state exists at all, so reset is free and memory is proportional to
// the number of updates — attractive when rows produce few updates,
// hopeless when the same column is hit many times (the log grows with
// duplicates, and sorting costs u·log u for u updates).
//
// Masked updates are filtered against a sorted view of the mask row by
// binary search, since there is no per-slot mask state to consult.
type SortList[T sparse.Number, S semiring.Semiring[T]] struct {
	sr       S
	cols     []sparse.Index
	vals     []T
	maskCols []sparse.Index // current row's mask, for UpdateMasked
}

// NewSortList returns a sort-based accumulator with capacity hints for
// the per-row update count.
func NewSortList[T sparse.Number, S semiring.Semiring[T]](sr S, rowCap int64) *SortList[T, S] {
	return &SortList[T, S]{
		sr:   sr,
		cols: make([]sparse.Index, 0, rowCap),
		vals: make([]T, 0, rowCap),
	}
}

// BeginRow discards the previous row's log — O(1).
//
//spgemm:hotpath
func (s *SortList[T, S]) BeginRow() {
	s.cols = s.cols[:0]
	s.vals = s.vals[:0]
	s.maskCols = nil
}

// LoadMask records the mask row for UpdateMasked's membership checks.
//
//spgemm:hotpath
func (s *SortList[T, S]) LoadMask(cols []sparse.Index) {
	s.maskCols = cols
}

// Update appends the update unconditionally.
//
//spgemm:hotpath
func (s *SortList[T, S]) Update(j sparse.Index, x T) {
	s.cols = append(s.cols, j)
	s.vals = append(s.vals, x)
}

// UpdateMasked appends the update iff j is in the loaded mask row
// (binary search — the log has no per-column state to consult). The
// search is hand-rolled: a sort.Search closure here would sit on the
// per-update path, the single hottest call site of this accumulator.
//
//spgemm:hotpath
func (s *SortList[T, S]) UpdateMasked(j sparse.Index, x T) bool {
	p, hi := 0, len(s.maskCols)
	for p < hi {
		mid := int(uint(p+hi) >> 1)
		if s.maskCols[mid] < j {
			p = mid + 1
		} else {
			hi = mid
		}
	}
	if p >= len(s.maskCols) || s.maskCols[p] != j {
		return false
	}
	s.cols = append(s.cols, j)
	s.vals = append(s.vals, x)
	return true
}

// Gather sorts the log, merges duplicate columns with Plus, intersects
// with maskCols, and appends the result.
func (s *SortList[T, S]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	if len(s.cols) == 0 {
		return cols, vals
	}
	sort.Sort(&logSorter[T]{s.cols, s.vals})
	p := 0 // cursor into maskCols (sorted, like the log)
	i := 0
	for i < len(s.cols) {
		j := s.cols[i]
		acc := s.vals[i]
		i++
		for i < len(s.cols) && s.cols[i] == j {
			acc = s.sr.Plus(acc, s.vals[i])
			i++
		}
		// Advance the mask cursor; emit only in-mask columns.
		for p < len(maskCols) && maskCols[p] < j {
			p++
		}
		if p < len(maskCols) && maskCols[p] == j {
			cols = append(cols, j)
			vals = append(vals, acc)
		}
	}
	return cols, vals
}

type logSorter[T sparse.Number] struct {
	cols []sparse.Index
	vals []T
}

func (l *logSorter[T]) Len() int           { return len(l.cols) }
func (l *logSorter[T]) Less(a, b int) bool { return l.cols[a] < l.cols[b] }
func (l *logSorter[T]) Swap(a, b int) {
	l.cols[a], l.cols[b] = l.cols[b], l.cols[a]
	l.vals[a], l.vals[b] = l.vals[b], l.vals[a]
}

// EnableStats is a no-op: the log accumulator has no per-column state,
// so there is nothing probe-like to count.
func (s *SortList[T, S]) EnableStats() {}

// AccumStats reports zeros — reset is free and nothing overflows.
func (s *SortList[T, S]) AccumStats() Stats { return Stats{} }

var _ Accumulator[float64] = (*SortList[float64, semiring.PlusTimes[float64]])(nil)
var _ Instrumented = (*SortList[float64, semiring.PlusTimes[float64]])(nil)
