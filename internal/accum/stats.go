package accum

// Stats are the accumulator-side observability counters. Clears and
// Grows are always counted (they are rare, per-row-at-worst events);
// Probes and Collisions touch the hash accumulator's innermost loop and
// are only counted after EnableStats, so the un-instrumented hot path
// pays a single predictable nil-check per probe.
type Stats struct {
	// Clears counts full state resets forced by marker overflow — the
	// Fig. 13 bit-width trade-off.
	Clears int64
	// Grows counts hash-table doublings (a row exceeded the sizing bound).
	Grows int64
	// Probes counts probe sequences (one per LoadMask/Update/Gather
	// lookup). Zero unless EnableStats was called.
	Probes int64
	// Collisions counts probe steps past the home slot. Zero unless
	// EnableStats was called.
	Collisions int64
}

// Sub returns the counter delta s − prev, for isolating one run of an
// accumulator that is reused across runs.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Clears:     s.Clears - prev.Clears,
		Grows:      s.Grows - prev.Grows,
		Probes:     s.Probes - prev.Probes,
		Collisions: s.Collisions - prev.Collisions,
	}
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Clears += o.Clears
	s.Grows += o.Grows
	s.Probes += o.Probes
	s.Collisions += o.Collisions
}

// Instrumented is implemented by every accumulator in this package: the
// kernel enables per-probe counting when a recorder is attached and
// snapshots the counters around each run. Families without a hash table
// (or without markers) report zeros for the fields they lack.
type Instrumented interface {
	// EnableStats turns on the gated counters (hash probes/collisions).
	// Idempotent; counting stays enabled for the accumulator's lifetime.
	EnableStats()
	// AccumStats returns the cumulative counters.
	AccumStats() Stats
}
