package accum

import (
	"testing"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TestHashProbeCounting verifies the gated probe counters: zero while
// disabled, exact per-lookup accounting once enabled.
func TestHashProbeCounting(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	h := NewHash[float64, semiring.PlusTimes[float64], uint32](sr, 8)
	mask := []sparse.Index{1, 3, 5}

	h.BeginRow()
	h.LoadMask(mask)
	h.Update(3, 1.0)
	if s := h.AccumStats(); s.Probes != 0 || s.Collisions != 0 {
		t.Fatalf("disabled accumulator counted probes: %+v", s)
	}

	h.EnableStats()
	h.BeginRow()
	h.LoadMask(mask)            // 3 probes
	h.UpdateMasked(3, 2.0)      // 1 probe
	h.UpdateMasked(2, 2.0)      // 1 probe (miss)
	var cols []sparse.Index
	var vals []float64
	cols, _ = h.Gather(mask, cols, vals) // 3 probes
	if len(cols) != 1 {
		t.Fatalf("gathered %d entries, want 1", len(cols))
	}
	s := h.AccumStats()
	if s.Probes != 8 {
		t.Fatalf("probes = %d, want 8", s.Probes)
	}
	if s.Collisions < 0 || s.Collisions > s.Probes {
		t.Fatalf("collisions = %d out of range", s.Collisions)
	}
}

// TestStatsSubAdd exercises the delta helpers the kernel snapshots with.
func TestStatsSubAdd(t *testing.T) {
	a := Stats{Clears: 5, Grows: 2, Probes: 100, Collisions: 7}
	b := Stats{Clears: 3, Grows: 2, Probes: 40, Collisions: 1}
	d := a.Sub(b)
	if d != (Stats{Clears: 2, Grows: 0, Probes: 60, Collisions: 6}) {
		t.Fatalf("sub = %+v", d)
	}
	var sum Stats
	sum.Add(b)
	sum.Add(d)
	if sum != a {
		t.Fatalf("add = %+v, want %+v", sum, a)
	}
}

// TestInstrumentedCoverage checks every accumulator New can build
// implements Instrumented, so the kernel's type assertion never misses.
func TestInstrumentedCoverage(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	for _, kind := range []Kind{DenseKind, HashKind, DenseExplicitKind, HashExplicitKind, SortListKind} {
		ac := New[float64](kind, sr, 64, 8, 32)
		in, ok := ac.(Instrumented)
		if !ok {
			t.Fatalf("%v does not implement Instrumented", kind)
		}
		in.EnableStats()
		_ = in.AccumStats()
	}
}

// TestHashExplicitStats verifies the explicit-reset wrapper delegates
// to its inner table and keeps Clears at zero by construction.
func TestHashExplicitStats(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	h := NewHashExplicit[float64, semiring.PlusTimes[float64]](sr, 8)
	h.EnableStats()
	h.BeginRow()
	h.LoadMask([]sparse.Index{0, 1, 2})
	s := h.AccumStats()
	if s.Probes != 3 {
		t.Fatalf("probes = %d, want 3", s.Probes)
	}
	if s.Clears != 0 {
		t.Fatalf("explicit reset should never clear, got %d", s.Clears)
	}
}
