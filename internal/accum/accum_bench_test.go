package accum

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// benchRow builds a deterministic mask row and update stream shaped
// like a masked-SpGEMM row: maskLen allowed columns out of n, updates
// candidate updates of which roughly half hit the mask.
func benchRow(n, maskLen, updates int) (mask []sparse.Index, stream []sparse.Index) {
	mask = make([]sparse.Index, maskLen)
	stride := n / maskLen
	for i := range mask {
		mask[i] = sparse.Index(i * stride)
	}
	stream = make([]sparse.Index, updates)
	for i := range stream {
		if i%2 == 0 {
			stream[i] = mask[i%maskLen] // hit
		} else {
			stream[i] = sparse.Index((i*stride + stride/2) % n) // miss
		}
	}
	return mask, stream
}

// BenchmarkAccumulatorRow measures the full per-row protocol
// (reset, mask load, masked updates, gather) for every accumulator
// configuration — the §III-C micro-comparison.
func BenchmarkAccumulatorRow(b *testing.B) {
	const n, maskLen, updates = 1 << 16, 64, 512
	mask, stream := benchRow(n, maskLen, updates)
	sr := semiring.PlusTimes[float64]{}
	cases := []struct {
		name string
		acc  Accumulator[float64]
	}{
		{"Dense8", NewDense[float64, semiring.PlusTimes[float64], uint8](sr, n)},
		{"Dense16", NewDense[float64, semiring.PlusTimes[float64], uint16](sr, n)},
		{"Dense32", NewDense[float64, semiring.PlusTimes[float64], uint32](sr, n)},
		{"Dense64", NewDense[float64, semiring.PlusTimes[float64], uint64](sr, n)},
		{"Hash32", NewHash[float64, semiring.PlusTimes[float64], uint32](sr, maskLen)},
		{"DenseExplicit", NewDenseExplicit[float64, semiring.PlusTimes[float64]](sr, n)},
		{"HashExplicit", NewHashExplicit[float64, semiring.PlusTimes[float64]](sr, int64(maskLen))},
	}
	var cols []sparse.Index
	var vals []float64
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.acc.BeginRow()
				c.acc.LoadMask(mask)
				for _, j := range stream {
					c.acc.UpdateMasked(j, 1)
				}
				cols, vals = c.acc.Gather(mask, cols[:0], vals[:0])
			}
			b.ReportMetric(float64(len(cols)), "row-nnz")
			_ = vals
		})
	}
}

// BenchmarkAccumulatorReset isolates the reset cost: marker-based reset
// is O(1) per row until the marker wraps; explicit reset walks the
// touched slots every row.
func BenchmarkAccumulatorReset(b *testing.B) {
	const n, maskLen = 1 << 18, 128
	mask, _ := benchRow(n, maskLen, 1)
	sr := semiring.PlusTimes[float64]{}
	for _, bits := range []int{8, 32} {
		b.Run(fmt.Sprintf("DenseMarker%d", bits), func(b *testing.B) {
			acc := New[float64](DenseKind, sr, n, maskLen, bits)
			for i := 0; i < b.N; i++ {
				acc.BeginRow()
				acc.LoadMask(mask)
			}
		})
	}
	b.Run("DenseExplicit", func(b *testing.B) {
		acc := New[float64](DenseExplicitKind, sr, n, maskLen, 64)
		for i := 0; i < b.N; i++ {
			acc.BeginRow()
			acc.LoadMask(mask)
		}
	})
}
