// Package accum implements the sparse accumulators of the paper's §III-C.
//
// An accumulator stores the partial sums of one output row of the
// masked-SpGEMM and, in the mask-load iteration spaces, also encodes
// which columns the mask allows. Two families are provided, matching the
// paper:
//
//   - Dense: a vector of size n (the column dimension) with a per-slot
//     marker word. Advancing the marker between rows resets the state
//     implicitly (SuiteSparse:GraphBLAS's trick); the marker width is
//     tunable (8/16/32/64 bits, Fig. 13) and overflow triggers a full
//     clear (the paper's relaxation of the 64-bit marker).
//   - Hash: an open-addressing table sized by max_i nnz(M[i,:]) — the
//     paper's improvement over sizing by the flop upper bound — with the
//     same marker-based reset.
//
// Explicit-reset variants (GrB's strategy: walk the mask columns after
// each row and clear them) are provided for the reset-strategy ablation.
package accum

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Marker constrains the marker word used for implicit state reset. A
// narrower marker shrinks the state array (better locality) but wraps
// sooner, forcing more full clears — the trade-off swept in Fig. 13.
type Marker interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Accumulator is the contract every masked-SpGEMM iteration space is
// written against. The per-row protocol is:
//
//	BeginRow()
//	LoadMask(maskCols)            // mask-load and hybrid spaces only
//	Update / UpdateMasked ...     // one call per candidate product term
//	cols, vals = Gather(maskCols, cols, vals)
//
// Gather iterates the mask columns, so output rows come out sorted
// whenever mask rows are sorted, and entries outside the mask — which
// the vanilla space wastefully accumulates — are dropped for free.
type Accumulator[T sparse.Number] interface {
	// BeginRow resets the accumulator state for a new output row.
	BeginRow()
	// LoadMask marks the given columns as allowed by the mask.
	LoadMask(cols []sparse.Index)
	// Update accumulates x into column j unconditionally, creating the
	// entry if absent. Used by the vanilla and co-iteration spaces.
	Update(j sparse.Index, x T)
	// UpdateMasked accumulates x into column j only if LoadMask allowed
	// it, reporting whether it did. Used by the mask-load space.
	UpdateMasked(j sparse.Index, x T) bool
	// Gather appends the accumulated entries whose column appears in
	// maskCols (in that order) to cols/vals and returns the extended
	// slices.
	Gather(maskCols []sparse.Index, cols []sparse.Index, vals []T) ([]sparse.Index, []T)
}

// Kind selects an accumulator family.
type Kind int

const (
	// DenseKind is the size-n marker vector accumulator.
	DenseKind Kind = iota
	// HashKind is the open-addressing hash accumulator.
	HashKind
	// DenseExplicitKind is the dense accumulator with GrB-style explicit
	// per-row reset instead of markers.
	DenseExplicitKind
	// HashExplicitKind is the hash accumulator with explicit reset.
	HashExplicitKind
	// SortListKind is the sort-based log accumulator (no per-column
	// state; dedup at gather time).
	SortListKind
)

func (k Kind) String() string {
	switch k {
	case DenseKind:
		return "Dense"
	case HashKind:
		return "Hash"
	case DenseExplicitKind:
		return "DenseExplicit"
	case HashExplicitKind:
		return "HashExplicit"
	case SortListKind:
		return "SortList"
	default:
		return "Unknown"
	}
}

// New builds an accumulator of the given kind for output rows with
// column dimension n and at most rowCap entries per row (the paper sizes
// this by max_i nnz(M[i,:]); vanilla iteration must pass the flop upper
// bound instead). markerBits must be 8, 16, 32 or 64 and is ignored by
// the explicit-reset kinds.
func New[T sparse.Number, S semiring.Semiring[T]](
	kind Kind, sr S, n int, rowCap int64, markerBits int,
) Accumulator[T] {
	switch kind {
	case DenseKind:
		switch markerBits {
		case 8:
			return NewDense[T, S, uint8](sr, n)
		case 16:
			return NewDense[T, S, uint16](sr, n)
		case 32:
			return NewDense[T, S, uint32](sr, n)
		case 64:
			return NewDense[T, S, uint64](sr, n)
		}
	case HashKind:
		switch markerBits {
		case 8:
			return NewHash[T, S, uint8](sr, rowCap)
		case 16:
			return NewHash[T, S, uint16](sr, rowCap)
		case 32:
			return NewHash[T, S, uint32](sr, rowCap)
		case 64:
			return NewHash[T, S, uint64](sr, rowCap)
		}
	case DenseExplicitKind:
		return NewDenseExplicit[T, S](sr, n)
	case HashExplicitKind:
		return NewHashExplicit[T, S](sr, rowCap)
	case SortListKind:
		return NewSortList[T, S](sr, rowCap)
	}
	panic("accum: unsupported kind/markerBits combination")
}
