package accum

import (
	"fmt"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Checkable is the optional clean-state audit interface consumed by
// exec.Engine.SelfCheck: CheckClean returns nil when the accumulator is
// safe for pooled reuse — the next BeginRow can restore a pristine row
// state. For the marker families that is true by construction (stale
// state is invisible behind the marker); for the explicit-reset
// families it requires every live slot to be tracked, which a panic
// inside a table grow can violate. Following the Instrumented pattern,
// the interface is optional so Accumulator itself stays minimal.
type Checkable interface {
	CheckClean() error
}

// GrowHooked is the optional fault-injection seam on growable
// accumulators: the hook runs at the entry of every table grow, before
// any state is moved. The chaos layer arms it per run (and disarms it
// before the workspace is released, so hooks never leak into the
// pool); a nil hook is the disabled state.
type GrowHooked interface {
	SetGrowHook(func())
}

// CheckClean on the marker-based hash accumulator validates table
// structure only: stale entries are invisible behind the marker, so any
// structurally sound table is clean by construction.
func (h *Hash[T, S, M]) CheckClean() error {
	n := len(h.keys)
	if len(h.vals) != n || len(h.state) != n {
		return fmt.Errorf("hash table arrays disagree: keys %d, vals %d, state %d",
			n, len(h.vals), len(h.state))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("hash table capacity %d is not a power of two", n)
	}
	return nil
}

// SetGrowHook arms (or, with nil, disarms) the grow seam.
func (h *Hash[T, S, M]) SetGrowHook(f func()) { h.growHook = f }

// CheckClean on the explicit-reset hash accumulator verifies that every
// live-looking slot is tracked in the live list — the condition under
// which the next BeginRow clears the whole row. An untracked live slot
// (a panic between a grow and the live-list rebuild) would leak stale
// entries into later rows.
func (h *HashExplicit[T, S]) CheckClean() error {
	if err := h.inner.CheckClean(); err != nil {
		return err
	}
	mask, entry := h.inner.mask, h.inner.mask+1
	tracked := make(map[int]bool, len(h.live))
	for _, slot := range h.live {
		tracked[slot] = true
	}
	for slot, st := range h.inner.state {
		if (st == mask || st == entry) && !tracked[slot] {
			return fmt.Errorf("hash-explicit slot %d holds live state %d outside the live list; BeginRow cannot clear it", slot, st)
		}
	}
	return nil
}

// SetGrowHook arms the inner table's grow seam.
func (h *HashExplicit[T, S]) SetGrowHook(f func()) { h.inner.SetGrowHook(f) }

// CheckClean on the marker-based dense accumulator validates array
// structure only: the marker makes stale state invisible.
func (d *Dense[T, S, M]) CheckClean() error {
	if len(d.state) != len(d.vals) {
		return fmt.Errorf("dense arrays disagree: state %d, vals %d", len(d.state), len(d.vals))
	}
	return nil
}

// CheckClean on the explicit-reset dense accumulator verifies that
// every set state slot is tracked in the touched list, so the next
// BeginRow restores the all-clear state.
func (d *DenseExplicit[T, S]) CheckClean() error {
	tracked := make(map[sparse.Index]bool, len(d.touched))
	for _, j := range d.touched {
		tracked[j] = true
	}
	for j, st := range d.state {
		if st != 0 && !tracked[sparse.Index(j)] {
			return fmt.Errorf("dense-explicit state[%d] = %d outside the touched list; BeginRow cannot clear it", j, st)
		}
	}
	return nil
}

// CheckClean on the log accumulator always passes: BeginRow truncates
// the log, so there is no state a dirty run could leak into a later row.
func (s *SortList[T, S]) CheckClean() error { return nil }

type ptSR = semiring.PlusTimes[float64]

var (
	_ Checkable  = (*Hash[float64, ptSR, uint32])(nil)
	_ Checkable  = (*HashExplicit[float64, ptSR])(nil)
	_ Checkable  = (*Dense[float64, ptSR, uint32])(nil)
	_ Checkable  = (*DenseExplicit[float64, ptSR])(nil)
	_ Checkable  = (*SortList[float64, ptSR])(nil)
	_ GrowHooked = (*Hash[float64, ptSR, uint32])(nil)
	_ GrowHooked = (*HashExplicit[float64, ptSR])(nil)
)
