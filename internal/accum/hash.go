package accum

import (
	"math/bits"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// fibHash is the 64-bit Fibonacci multiplicative hash constant.
const fibHash = 0x9E3779B97F4A7C15

// Hash is the open-addressing hash accumulator with marker-based reset.
// The table is sized for the per-row entry bound (the paper sizes it by
// max_i nnz(M[i,:]); see Accumulator docs) at a load factor of at most
// 1/2, and grows by doubling if a row exceeds the bound — robustness the
// vanilla iteration space needs, since its row population is the full
// unmasked product.
//
// A slot is live for the current row iff its marker state equals the
// row's mask or entry marker; everything else is stale garbage, so reset
// is the same O(1) marker advance as in Dense.
type Hash[T sparse.Number, S semiring.Semiring[T], M Marker] struct {
	sr    S
	keys  []sparse.Index
	vals  []T
	state []M
	shift uint // 64 - log2(len(keys))
	mask  M    // current row's mask marker (odd)
	used  int  // live slots this row
	// Clears counts full resets from marker overflow; Grows counts table
	// doublings. Both are observability hooks for tests and ablations.
	Clears int64
	Grows  int64
	// stats, when non-nil, receives per-probe counts (EnableStats). Kept
	// behind a pointer so the disabled hot path is one predictable
	// nil-check per probe sequence.
	stats *Stats
	// growHook, when non-nil, runs at the entry of every table grow
	// before any state moves — the chaos layer's AccumGrow seam
	// (SetGrowHook). nil is the disabled state.
	growHook func()
}

// NewHash returns a hash accumulator able to hold rowCap entries per row
// before growing.
func NewHash[T sparse.Number, S semiring.Semiring[T], M Marker](sr S, rowCap int64) *Hash[T, S, M] {
	capacity := 8
	for int64(capacity) < 2*rowCap {
		capacity <<= 1
	}
	h := &Hash[T, S, M]{
		sr:    sr,
		keys:  make([]sparse.Index, capacity),
		vals:  make([]T, capacity),
		state: make([]M, capacity),
		shift: uint(64 - bits.TrailingZeros(uint(capacity))),
	}
	h.mask = 1
	return h
}

//spgemm:hotpath
func (h *Hash[T, S, M]) slotOf(j sparse.Index) int {
	return int((uint64(uint32(j)) * fibHash) >> h.shift)
}

// probe returns the slot holding key j for the current row, or the first
// reusable slot in its chain. found reports which.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) probe(j sparse.Index) (slot int, found bool) {
	entry := h.mask + 1
	capMask := len(h.keys) - 1
	slot = h.slotOf(j)
	if h.stats != nil {
		return h.probeCounted(j, entry, capMask, slot)
	}
	for {
		st := h.state[slot]
		if st != h.mask && st != entry {
			return slot, false
		}
		if h.keys[slot] == j {
			return slot, true
		}
		slot = (slot + 1) & capMask
	}
}

// probeCounted is probe with per-step accounting, split out so the
// disabled path's loop stays increment-free.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) probeCounted(j sparse.Index, entry M, capMask, slot int) (int, bool) {
	h.stats.Probes++
	for {
		st := h.state[slot]
		if st != h.mask && st != entry {
			return slot, false
		}
		if h.keys[slot] == j {
			return slot, true
		}
		slot = (slot + 1) & capMask
		h.stats.Collisions++
	}
}

// EnableStats turns on probe/collision counting for this accumulator.
func (h *Hash[T, S, M]) EnableStats() {
	if h.stats == nil {
		h.stats = new(Stats)
	}
}

// AccumStats returns the cumulative observability counters.
func (h *Hash[T, S, M]) AccumStats() Stats {
	s := Stats{Clears: h.Clears, Grows: h.Grows}
	if h.stats != nil {
		s.Probes = h.stats.Probes
		s.Collisions = h.stats.Collisions
	}
	return s
}

// BeginRow advances the marker pair, clearing the table only on wrap.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) BeginRow() {
	h.used = 0
	var maxM M
	maxM--
	if h.mask >= maxM-2 {
		clear(h.state)
		h.mask = 1
		h.Clears++
		return
	}
	h.mask += 2
}

func (h *Hash[T, S, M]) maybeGrow() {
	if 2*h.used <= len(h.keys) {
		return
	}
	if h.growHook != nil {
		h.growHook()
	}
	h.Grows++
	oldKeys, oldVals, oldState := h.keys, h.vals, h.state
	oldMask, oldEntry := h.mask, h.mask+1
	capacity := 2 * len(oldKeys)
	h.keys = make([]sparse.Index, capacity)
	h.vals = make([]T, capacity)
	h.state = make([]M, capacity)
	h.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	h.mask = 1
	for s, st := range oldState {
		if st != oldMask && st != oldEntry {
			continue
		}
		slot, _ := h.probe(oldKeys[s])
		h.keys[slot] = oldKeys[s]
		h.vals[slot] = oldVals[s]
		if st == oldMask {
			h.state[slot] = h.mask
		} else {
			h.state[slot] = h.mask + 1
		}
	}
}

// LoadMask inserts cols as allowed-but-unwritten entries.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) LoadMask(cols []sparse.Index) {
	for _, j := range cols {
		slot, found := h.probe(j)
		if !found {
			h.keys[slot] = j
			h.state[slot] = h.mask
			h.used++
			//lint:ignore hotpathalloc amortized: doubling keeps per-insert cost O(1), and growth means the row blew its mask bound
			h.maybeGrow()
		}
	}
}

// Update accumulates x into column j, inserting if absent.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) Update(j sparse.Index, x T) {
	slot, found := h.probe(j)
	entry := h.mask + 1
	if found {
		if h.state[slot] == entry {
			h.vals[slot] = h.sr.Plus(h.vals[slot], x)
		} else {
			h.state[slot] = entry
			h.vals[slot] = x
		}
		return
	}
	h.keys[slot] = j
	h.state[slot] = entry
	h.vals[slot] = x
	h.used++
	//lint:ignore hotpathalloc amortized: doubling keeps per-insert cost O(1), and growth means the row blew its mask bound
	h.maybeGrow()
}

// UpdateMasked accumulates x into column j only if LoadMask inserted it.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) UpdateMasked(j sparse.Index, x T) bool {
	slot, found := h.probe(j)
	if !found {
		return false
	}
	entry := h.mask + 1
	if h.state[slot] == entry {
		h.vals[slot] = h.sr.Plus(h.vals[slot], x)
	} else {
		h.state[slot] = entry
		h.vals[slot] = x
	}
	return true
}

// Gather appends the written entries among maskCols, in mask order.
//
//spgemm:hotpath
func (h *Hash[T, S, M]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	entry := h.mask + 1
	for _, j := range maskCols {
		if slot, found := h.probe(j); found && h.state[slot] == entry {
			cols = append(cols, j)
			vals = append(vals, h.vals[slot])
		}
	}
	return cols, vals
}

var _ Accumulator[float64] = (*Hash[float64, semiring.PlusTimes[float64], uint32])(nil)

// HashExplicit is the hash accumulator with GrB's explicit reset: live
// slots are remembered and cleared one by one at the start of the next
// row. Used for the reset-strategy ablation.
type HashExplicit[T sparse.Number, S semiring.Semiring[T]] struct {
	inner *Hash[T, S, uint64]
	live  []int
}

// NewHashExplicit returns an explicit-reset hash accumulator able to
// hold rowCap entries per row before growing.
func NewHashExplicit[T sparse.Number, S semiring.Semiring[T]](sr S, rowCap int64) *HashExplicit[T, S] {
	return &HashExplicit[T, S]{inner: NewHash[T, S, uint64](sr, rowCap)}
}

// BeginRow clears exactly the slots the previous row populated. The
// inner marker never advances, so state words stay within one epoch.
//
//spgemm:hotpath
func (h *HashExplicit[T, S]) BeginRow() {
	for _, slot := range h.live {
		h.inner.state[slot] = 0
	}
	h.live = h.live[:0]
	h.inner.used = 0
}

// LoadMask inserts cols as allowed-but-unwritten entries.
//
//spgemm:hotpath
func (h *HashExplicit[T, S]) LoadMask(cols []sparse.Index) {
	for _, j := range cols {
		slot, found := h.inner.probe(j)
		if !found {
			h.inner.keys[slot] = j
			h.inner.state[slot] = h.inner.mask
			h.inner.used++
			h.live = append(h.live, slot)
			if 2*h.inner.used > len(h.inner.keys) {
				h.growAndRelocate()
			}
		}
	}
}

// Update accumulates x into column j, inserting if absent.
//
//spgemm:hotpath
func (h *HashExplicit[T, S]) Update(j sparse.Index, x T) {
	slot, found := h.inner.probe(j)
	entry := h.inner.mask + 1
	if found {
		if h.inner.state[slot] == entry {
			h.inner.vals[slot] = h.inner.sr.Plus(h.inner.vals[slot], x)
		} else {
			h.inner.state[slot] = entry
			h.inner.vals[slot] = x
		}
		return
	}
	h.inner.keys[slot] = j
	h.inner.state[slot] = entry
	h.inner.vals[slot] = x
	h.inner.used++
	h.live = append(h.live, slot)
	if 2*h.inner.used > len(h.inner.keys) {
		h.growAndRelocate()
	}
}

func (h *HashExplicit[T, S]) growAndRelocate() {
	h.inner.maybeGrow()
	// Slot numbers moved; rebuild the live list from the new table.
	h.live = h.live[:0]
	mask, entry := h.inner.mask, h.inner.mask+1
	for slot, st := range h.inner.state {
		if st == mask || st == entry {
			h.live = append(h.live, slot)
		}
	}
}

// UpdateMasked accumulates x into column j only if LoadMask inserted it.
//
//spgemm:hotpath
func (h *HashExplicit[T, S]) UpdateMasked(j sparse.Index, x T) bool {
	return h.inner.UpdateMasked(j, x)
}

// Gather appends the written entries among maskCols, in mask order.
//
//spgemm:hotpath
func (h *HashExplicit[T, S]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	return h.inner.Gather(maskCols, cols, vals)
}

// EnableStats turns on probe/collision counting on the inner table.
func (h *HashExplicit[T, S]) EnableStats() { h.inner.EnableStats() }

// AccumStats returns the inner table's cumulative counters. Clears stays
// zero by construction — explicit reset never overflows a marker.
func (h *HashExplicit[T, S]) AccumStats() Stats { return h.inner.AccumStats() }

var _ Accumulator[float64] = (*HashExplicit[float64, semiring.PlusTimes[float64]])(nil)
var _ Instrumented = (*HashExplicit[float64, semiring.PlusTimes[float64]])(nil)
var _ Instrumented = (*Hash[float64, semiring.PlusTimes[float64], uint32])(nil)
