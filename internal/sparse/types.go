// Package sparse provides the compressed sparse matrix substrate used by
// every kernel in this repository: CSR and COO storage, builders,
// structural transforms (transpose, tril/triu, symmetrize), a dense
// reference implementation for testing, and structural statistics.
//
// All operands of the masked-SpGEMM study are stored in CSR with sorted
// rows (the paper's setting, §II-A); the co-iteration kernels rely on
// sorted column indices for binary search, so sortedness is a checked
// invariant here rather than a convention.
package sparse

import (
	"errors"
	"fmt"
)

// Index is the column/row index type. Graphs in this study have fewer
// than 2^31 vertices, so 32-bit indices halve the memory traffic of the
// index streams — the dominant cost in sparse kernels. Row pointers stay
// 64-bit because nnz may exceed 2^31 (Table I of the paper goes to 640M).
type Index = int32

// Number is the set of element types a matrix may hold. Semirings
// redefine + and ×, but storage is always one of these machine types.
type Number interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~int |
		~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uint |
		~float32 | ~float64
}

// ErrShape is returned when matrix dimensions are inconsistent with the
// requested operation.
var ErrShape = errors.New("sparse: dimension mismatch")

// ErrMalformed is returned by Check when a matrix violates a CSR/COO
// structural invariant.
var ErrMalformed = errors.New("sparse: malformed matrix")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}
