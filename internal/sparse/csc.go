package sparse

// CSC is a sparse matrix in Compressed Sparse Column format: the
// mirror of CSR with columns contiguous. The paper's analysis is
// formulated for row-wise saxpy over CSR but "by symmetry also applies
// to column-wise saxpy over CSC operands" (§II-A); this type and the
// column-wise kernel in internal/core make that symmetry concrete and
// testable.
//
// Representation: column j occupies RowIdx[ColPtr[j]:ColPtr[j+1]], rows
// sorted ascending within each column.
type CSC[T Number] struct {
	Rows, Cols int
	ColPtr     []int64
	RowIdx     []Index
	Val        []T
}

// NNZ returns the number of stored entries.
func (m *CSC[T]) NNZ() int64 { return m.ColPtr[m.Cols] }

// ColNNZ returns the number of stored entries in column j.
func (m *CSC[T]) ColNNZ(j int) int64 { return m.ColPtr[j+1] - m.ColPtr[j] }

// Col returns the row indices and values of column j as sub-slices of
// the matrix storage.
func (m *CSC[T]) Col(j int) ([]Index, []T) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// CSRToCSC converts row storage to column storage in O(nnz + rows +
// cols) via counting sort.
func CSRToCSC[T Number](m *CSR[T]) *CSC[T] {
	t := Transpose(m)
	// The transpose in CSR *is* the original in CSC: row i of mᵀ lists
	// the rows of column i of m.
	return &CSC[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: t.RowPtr,
		RowIdx: t.ColIdx,
		Val:    t.Val,
	}
}

// CSCToCSR converts column storage back to row storage.
func CSCToCSR[T Number](m *CSC[T]) *CSR[T] {
	asCSR := &CSR[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: m.ColPtr,
		ColIdx: m.RowIdx,
		Val:    m.Val,
	}
	return Transpose(asCSR)
}

// Check validates the CSC invariants (mirror of CSR.Check).
func (m *CSC[T]) Check() error {
	mirror := &CSR[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: m.ColPtr,
		ColIdx: m.RowIdx,
		Val:    m.Val,
	}
	return mirror.Check()
}
