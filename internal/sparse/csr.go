package sparse

import (
	"sort"
	"sync"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// Row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and the matching value
// slice. Rows must be sorted by column index with no duplicates; Check
// verifies this. All kernels in internal/core assume the invariant, and
// the co-iteration kernel (paper Fig. 7) depends on it for binary search.
type CSR[T Number] struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1, non-decreasing
	ColIdx     []Index // len nnz
	Val        []T     // len nnz
}

// NewCSR allocates an empty matrix with the given shape and a zeroed
// row-pointer array, ready to be filled row by row.
func NewCSR[T Number](rows, cols int, nnzCap int64) *CSR[T] {
	return &CSR[T]{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]Index, 0, nnzCap),
		Val:    make([]T, 0, nnzCap),
	}
}

// NNZ returns the number of stored entries.
func (m *CSR[T]) NNZ() int64 { return m.RowPtr[m.Rows] }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR[T]) RowNNZ(i int) int64 { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices of
// the matrix storage. Callers must not append to them.
func (m *CSR[T]) Row(i int) ([]Index, []T) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowCols returns only the column indices of row i.
func (m *CSR[T]) RowCols(i int) []Index {
	return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
}

// At returns the entry at (i, j), or zero if it is not stored. Lookup is
// a binary search within the row: O(log nnz(row)).
func (m *CSR[T]) At(i int, j Index) T {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(p int) bool { return cols[p] >= j })
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	var zero T
	return zero
}

// Has reports whether (i, j) is a stored entry.
func (m *CSR[T]) Has(i int, j Index) bool {
	cols := m.RowCols(i)
	k := sort.Search(len(cols), func(p int) bool { return cols[p] >= j })
	return k < len(cols) && cols[k] == j
}

// AppendRow appends one complete row (which must be sorted and
// duplicate-free) to a matrix being built top to bottom. The row index
// is implicit: the first call fills row 0, the next row 1, and so on,
// tracked by the caller via FinishRow-style usage. It updates RowPtr for
// row i = number of rows appended so far.
func (m *CSR[T]) AppendRow(i int, cols []Index, vals []T) {
	m.ColIdx = append(m.ColIdx, cols...)
	m.Val = append(m.Val, vals...)
	m.RowPtr[i+1] = int64(len(m.ColIdx))
}

// Clone returns a deep copy.
func (m *CSR[T]) Clone() *CSR[T] {
	c := &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]Index(nil), m.ColIdx...),
		Val:    append([]T(nil), m.Val...),
	}
	return c
}

// Pattern returns a copy with every stored value replaced by one. Masks
// in GraphBLAS are structural ("the mask is treated as Boolean", paper
// §IV-A); Pattern makes that explicit in tests and examples.
func (m *CSR[T]) Pattern() *CSR[T] {
	c := m.Clone()
	for i := range c.Val {
		c.Val[i] = 1
	}
	return c
}

// SortRows sorts each row by column index in place. Duplicates are not
// merged; use COO dedup when duplicates are possible.
func (m *CSR[T]) SortRows() {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		cols := m.ColIdx[lo:hi]
		vals := m.Val[lo:hi]
		if sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
			continue
		}
		sort.Sort(&rowSorter[T]{cols, vals})
	}
}

type rowSorter[T Number] struct {
	cols []Index
	vals []T
}

func (s *rowSorter[T]) Len() int           { return len(s.cols) }
func (s *rowSorter[T]) Less(a, b int) bool { return s.cols[a] < s.cols[b] }
func (s *rowSorter[T]) Swap(a, b int) {
	s.cols[a], s.cols[b] = s.cols[b], s.cols[a]
	s.vals[a], s.vals[b] = s.vals[b], s.vals[a]
}

// Check validates every CSR invariant: pointer monotonicity, index
// bounds, sorted duplicate-free rows, and slice length consistency. It
// never panics, even on arbitrarily corrupted input: pointers are
// bounds-checked against nnz before any row is sliced.
func (m *CSR[T]) Check() error {
	if err := m.checkHeader(); err != nil {
		return err
	}
	return m.checkRows(0, m.Rows)
}

// CheckParallel is Check with the per-row validation split across p
// goroutines. It reports the same deterministic first error (lowest
// offending row) as Check regardless of p. p ≤ 1, or a matrix below the
// parallel cutoff, runs serially.
func (m *CSR[T]) CheckParallel(p int) error {
	if err := m.checkHeader(); err != nil {
		return err
	}
	const cutoff = 1 << 14
	if p > m.Rows {
		p = m.Rows
	}
	if p <= 1 || m.Rows < cutoff {
		return m.checkRows(0, m.Rows)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo := m.Rows * w / p
		hi := m.Rows * (w + 1) / p
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = m.checkRows(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkHeader validates the shape-level invariants that the per-row
// checks rely on to be panic-free.
func (m *CSR[T]) checkHeader() error {
	if m.Rows < 0 || m.Cols < 0 {
		return malformed("negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return malformed("len(RowPtr)=%d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return malformed("RowPtr[0]=%d, want 0", m.RowPtr[0])
	}
	nnz := m.RowPtr[m.Rows]
	if nnz < 0 {
		return malformed("negative nnz %d", nnz)
	}
	if int64(len(m.ColIdx)) != nnz || int64(len(m.Val)) != nnz {
		return malformed("len(ColIdx)=%d len(Val)=%d, want nnz=%d",
			len(m.ColIdx), len(m.Val), nnz)
	}
	return nil
}

// checkRows validates rows [lo, hi). The header must already have been
// validated.
func (m *CSR[T]) checkRows(lo, hi int) error {
	nnz := m.RowPtr[m.Rows]
	for i := lo; i < hi; i++ {
		// Full bounds check before slicing: a monotone-looking prefix can
		// still point past nnz (e.g. RowPtr = [0, 100, 5] with nnz = 5),
		// which would make RowCols panic.
		if m.RowPtr[i] < 0 || m.RowPtr[i] > m.RowPtr[i+1] || m.RowPtr[i+1] > nnz {
			return malformed("RowPtr not monotone in [0,nnz] at row %d: [%d,%d], nnz=%d",
				i, m.RowPtr[i], m.RowPtr[i+1], nnz)
		}
		cols := m.RowCols(i)
		for k, c := range cols {
			if c < 0 || int(c) >= m.Cols {
				return malformed("row %d: column %d out of range [0,%d)", i, c, m.Cols)
			}
			if k > 0 && cols[k-1] >= c {
				return malformed("row %d: columns not strictly increasing at position %d", i, k)
			}
		}
	}
	return nil
}
