package sparse

import (
	"testing"
	"testing/quick"
)

// tinyCSR builds the 3x4 matrix
//
//	[ 1 0 2 0 ]
//	[ 0 0 0 3 ]
//	[ 4 5 0 6 ]
func tinyCSR(t *testing.T) *CSR[float64] {
	t.Helper()
	coo := NewCOO[float64](3, 4, 6)
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 3, 3)
	coo.Add(2, 0, 4)
	coo.Add(2, 1, 5)
	coo.Add(2, 3, 6)
	m := coo.ToCSR()
	if err := m.Check(); err != nil {
		t.Fatalf("tiny matrix malformed: %v", err)
	}
	return m
}

func TestCSRBasics(t *testing.T) {
	m := tinyCSR(t)
	if got := m.NNZ(); got != 6 {
		t.Errorf("NNZ = %d, want 6", got)
	}
	if got := m.RowNNZ(1); got != 1 {
		t.Errorf("RowNNZ(1) = %d, want 1", got)
	}
	cols, vals := m.Row(2)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 1 || cols[2] != 3 {
		t.Errorf("Row(2) cols = %v", cols)
	}
	if vals[2] != 6 {
		t.Errorf("Row(2) vals = %v", vals)
	}
}

func TestCSRAt(t *testing.T) {
	m := tinyCSR(t)
	cases := []struct {
		i    int
		j    Index
		want float64
	}{
		{0, 0, 1}, {0, 1, 0}, {0, 2, 2}, {1, 3, 3}, {2, 1, 5}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
		if has := m.Has(c.i, c.j); has != (c.want != 0) {
			t.Errorf("Has(%d,%d) = %v", c.i, c.j, has)
		}
	}
}

func TestCSRCloneIndependent(t *testing.T) {
	m := tinyCSR(t)
	c := m.Clone()
	c.Val[0] = 99
	c.ColIdx[0] = 3
	if m.Val[0] == 99 || m.ColIdx[0] == 3 {
		t.Error("Clone shares storage with the original")
	}
}

func TestCSRPattern(t *testing.T) {
	m := tinyCSR(t)
	p := m.Pattern()
	if !EqualPattern(m, p) {
		t.Error("Pattern changed the structure")
	}
	for _, v := range p.Val {
		if v != 1 {
			t.Errorf("Pattern value %v, want 1", v)
		}
	}
}

func TestCSRCheckDetectsCorruption(t *testing.T) {
	cases := map[string]func(m *CSR[float64]){
		"rowptr not starting at zero": func(m *CSR[float64]) { m.RowPtr[0] = 1 },
		"rowptr non-monotone":         func(m *CSR[float64]) { m.RowPtr[1] = 5 },
		"column out of range":         func(m *CSR[float64]) { m.ColIdx[0] = 42 },
		"negative column":             func(m *CSR[float64]) { m.ColIdx[0] = -1 },
		"unsorted row":                func(m *CSR[float64]) { m.ColIdx[0], m.ColIdx[1] = m.ColIdx[1], m.ColIdx[0] },
		"duplicate column":            func(m *CSR[float64]) { m.ColIdx[1] = m.ColIdx[0] },
		"rowptr length":               func(m *CSR[float64]) { m.RowPtr = m.RowPtr[:2] },
		"val length":                  func(m *CSR[float64]) { m.Val = m.Val[:3] },
	}
	for name, corrupt := range cases {
		m := tinyCSR(t)
		corrupt(m)
		if err := m.Check(); err == nil {
			t.Errorf("%s: Check did not detect corruption", name)
		}
	}
}

func TestSortRows(t *testing.T) {
	m := tinyCSR(t)
	// Scramble row 2 and re-sort.
	m.ColIdx[3], m.ColIdx[5] = m.ColIdx[5], m.ColIdx[3]
	m.Val[3], m.Val[5] = m.Val[5], m.Val[3]
	m.SortRows()
	if err := m.Check(); err != nil {
		t.Fatalf("after SortRows: %v", err)
	}
	if m.At(2, 0) != 4 || m.At(2, 3) != 6 {
		t.Error("SortRows lost value/column pairing")
	}
}

func TestAppendRowBuildsValidMatrix(t *testing.T) {
	m := NewCSR[float64](3, 5, 4)
	m.AppendRow(0, []Index{1, 3}, []float64{1, 2})
	m.AppendRow(1, nil, nil)
	m.AppendRow(2, []Index{0}, []float64{3})
	if err := m.Check(); err != nil {
		t.Fatalf("AppendRow produced malformed matrix: %v", err)
	}
	if m.NNZ() != 3 || m.At(0, 3) != 2 || m.At(2, 0) != 3 {
		t.Error("AppendRow content wrong")
	}
}

// TestCOODedupProperty: converting random triples to CSR always yields a
// structurally valid matrix whose entries equal the per-position sums.
func TestCOODedupProperty(t *testing.T) {
	f := func(entries []struct {
		I, J uint8
		V    int8
	}) bool {
		const n = 16
		coo := NewCOO[int64](n, n, int64(len(entries)))
		want := map[[2]int]int64{}
		for _, e := range entries {
			i, j := Index(e.I%n), Index(e.J%n)
			coo.Add(i, j, int64(e.V))
			want[[2]int{int(i), int(j)}] += int64(e.V)
		}
		m := coo.ToCSR()
		if err := m.Check(); err != nil {
			return false
		}
		if m.NNZ() != int64(len(want)) {
			return false
		}
		for pos, v := range want {
			if m.At(pos[0], Index(pos[1])) != v {
				// Explicit zeros are stored entries; At returns the stored
				// value which must equal the sum (possibly zero).
				if !(v == 0 && m.Has(pos[0], Index(pos[1]))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewCSR[float64](0, 0, 0)
	if err := m.Check(); err != nil {
		t.Fatalf("empty matrix malformed: %v", err)
	}
	coo := NewCOO[float64](5, 5, 0)
	m2 := coo.ToCSR()
	if err := m2.Check(); err != nil {
		t.Fatalf("all-zero matrix malformed: %v", err)
	}
	if m2.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m2.NNZ())
	}
}
