package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a deterministic pseudo-random n×n matrix with the
// given approximate density for property tests.
func randomCSR(n int, density float64, seed int64) *CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](n, n, int64(float64(n*n)*density)+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < density {
				coo.Add(Index(i), Index(j), float64(r.Intn(9)+1))
			}
		}
	}
	return coo.ToCSR()
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(20, 0.2, seed)
		tt := Transpose(Transpose(m))
		return Equal(m, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeEntries(t *testing.T) {
	m := randomCSR(15, 0.3, 7)
	mt := Transpose(m)
	if err := mt.Check(); err != nil {
		t.Fatalf("transpose malformed: %v", err)
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if got := mt.At(int(j), Index(i)); got != vals[k] {
				t.Fatalf("T[%d,%d] = %v, want %v", j, i, got, vals[k])
			}
		}
	}
	if m.NNZ() != mt.NNZ() {
		t.Errorf("transpose changed nnz: %d vs %d", m.NNZ(), mt.NNZ())
	}
}

func TestTrilTriuPartition(t *testing.T) {
	m := randomCSR(20, 0.25, 3)
	l, u, d := Tril(m), Triu(m), m.NNZ()
	if err := l.Check(); err != nil {
		t.Fatalf("tril malformed: %v", err)
	}
	if err := u.Check(); err != nil {
		t.Fatalf("triu malformed: %v", err)
	}
	var diag int64
	for i := 0; i < m.Rows; i++ {
		if m.Has(i, Index(i)) {
			diag++
		}
	}
	if l.NNZ()+u.NNZ()+diag != d {
		t.Errorf("tril+triu+diag = %d+%d+%d != nnz %d", l.NNZ(), u.NNZ(), diag, d)
	}
	for i := 0; i < l.Rows; i++ {
		for _, j := range l.RowCols(i) {
			if int(j) >= i {
				t.Fatalf("tril kept (%d,%d)", i, j)
			}
		}
		for _, j := range u.RowCols(i) {
			if int(j) <= i {
				t.Fatalf("triu kept (%d,%d)", i, j)
			}
		}
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(18, 0.15, seed)
		s := Symmetrize(m)
		if err := s.Check(); err != nil {
			return false
		}
		return EqualPattern(s, Transpose(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDropDiagonal(t *testing.T) {
	m := randomCSR(12, 0.4, 11)
	d := DropDiagonal(m)
	for i := 0; i < d.Rows; i++ {
		if d.Has(i, Index(i)) {
			t.Fatalf("diagonal entry (%d,%d) survived", i, i)
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	m := randomCSR(14, 0.3, 5)
	back := FromDense(ToDense(m))
	if !Equal(m, back) {
		t.Error("CSR -> dense -> CSR changed the matrix")
	}
}

func TestMaskedMatMulDenseOracle(t *testing.T) {
	// Hand-checked 3x3 example.
	a := NewDense[float64](3, 3)
	a.Set(0, 1, 2)
	a.Set(1, 2, 3)
	a.Set(2, 0, 4)
	mask := NewDense[uint8](3, 3)
	mask.Set(0, 2, 1)
	mask.Set(1, 0, 1)
	mask.Set(2, 2, 1) // (2,2) of product is zero -> masked-in zero
	got := MaskedMatMulDense(mask, a, a)
	// A*A: (0,2) = 2*3 = 6; (1,0) = 3*4 = 12; (2,1) = 4*2 = 8 (masked out).
	if got.At(0, 2) != 6 || got.At(1, 0) != 12 {
		t.Errorf("oracle wrong: %+v", got)
	}
	if got.At(2, 1) != 0 {
		t.Error("oracle ignored mask")
	}
}

func TestPruneZeros(t *testing.T) {
	coo := NewCOO[float64](3, 3, 4)
	coo.Add(0, 0, 0) // explicit zero
	coo.Add(0, 1, 5)
	coo.Add(1, 1, 3)
	coo.Add(1, 1, -3) // sums to an explicit zero
	m := coo.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("setup: nnz = %d, want 3 (with explicit zeros)", m.NNZ())
	}
	p := PruneZeros(m)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != 1 || p.At(0, 1) != 5 {
		t.Errorf("pruned nnz = %d, want only (0,1)=5", p.NNZ())
	}
}

func TestSumValues(t *testing.T) {
	m := tinyCSRForSum()
	if got := SumValues(m); got != 21 {
		t.Errorf("SumValues = %v, want 21", got)
	}
}

func tinyCSRForSum() *CSR[float64] {
	coo := NewCOO[float64](3, 4, 6)
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 3, 3)
	coo.Add(2, 0, 4)
	coo.Add(2, 1, 5)
	coo.Add(2, 3, 6)
	return coo.ToCSR()
}

func TestComputeStats(t *testing.T) {
	m := tinyCSRForSum()
	s := ComputeStats(m, true)
	if s.NNZ != 6 || s.MaxRowNNZ != 3 || s.MinRowNNZ != 1 || s.EmptyRows != 0 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.Symmetric {
		t.Error("3x4 matrix reported symmetric")
	}
	if s.Bandwidth != 2 {
		t.Errorf("bandwidth = %d, want 2", s.Bandwidth)
	}
	sym := Symmetrize(randomCSR(10, 0.3, 2))
	if st := ComputeStats(sym, true); !st.Symmetric {
		t.Error("symmetrized matrix not reported symmetric")
	}
}

func TestRowDegrees(t *testing.T) {
	m := tinyCSRForSum()
	deg := RowDegrees(m)
	want := []int64{2, 1, 3}
	for i, d := range deg {
		if d != want[i] {
			t.Errorf("deg[%d] = %d, want %d", i, d, want[i])
		}
	}
}
