package sparse

// Dense is a row-major dense matrix used as the oracle in tests: every
// sparse kernel is checked against the obvious O(n^3) dense computation
// on small inputs. It is deliberately simple and unoptimized.
type Dense[T Number] struct {
	Rows, Cols int
	Data       []T // row-major, len Rows*Cols
}

// NewDense allocates a zeroed dense matrix.
func NewDense[T Number](rows, cols int) *Dense[T] {
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// At returns the element at (i, j).
func (d *Dense[T]) At(i, j int) T { return d.Data[i*d.Cols+j] }

// Set stores v at (i, j).
func (d *Dense[T]) Set(i, j int, v T) { d.Data[i*d.Cols+j] = v }

// ToDense expands a CSR matrix. Stored zeros are indistinguishable from
// absent entries in the dense form; use DensePattern when structure
// matters.
func ToDense[T Number](m *CSR[T]) *Dense[T] {
	d := NewDense[T](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			d.Set(i, int(j), vals[k])
		}
	}
	return d
}

// DensePattern expands the structure of m: 1 where an entry is stored
// (even an explicit zero), 0 elsewhere.
func DensePattern[T Number](m *CSR[T]) *Dense[uint8] {
	d := NewDense[uint8](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.RowCols(i) {
			d.Set(i, int(j), 1)
		}
	}
	return d
}

// FromDense builds a CSR matrix from d, storing every nonzero element.
func FromDense[T Number](d *Dense[T]) *CSR[T] {
	coo := NewCOO[T](d.Rows, d.Cols, 0)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.At(i, j); v != 0 {
				coo.Add(Index(i), Index(j), v)
			}
		}
	}
	return coo.ToCSR()
}

// MaskedMatMulDense computes M ⊙ (A × B) densely with ordinary + and ×.
// This is the test oracle for every masked-SpGEMM kernel variant. The
// mask is structural: an output element survives iff the mask stores an
// entry at that position, matching GraphBLAS Boolean-mask semantics.
func MaskedMatMulDense[T Number](mask *Dense[uint8], a, b *Dense[T]) *Dense[T] {
	out := NewDense[T](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if mask.At(i, j) == 0 {
				continue
			}
			var acc T
			for k := 0; k < a.Cols; k++ {
				acc += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// MatMulDense computes A × B densely; oracle for the unmasked SpGEMM.
func MatMulDense[T Number](a, b *Dense[T]) *Dense[T] {
	out := NewDense[T](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}
