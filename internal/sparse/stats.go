package sparse

import "fmt"

// Stats summarizes the structural features that drive masked-SpGEMM
// performance: size, density, and the degree distribution skew that
// separates social graphs from road networks in the paper's Figure 11.
type Stats struct {
	Rows, Cols int
	NNZ        int64
	MaxRowNNZ  int64
	MinRowNNZ  int64
	AvgRowNNZ  float64
	EmptyRows  int
	Bandwidth  int64 // max |i-j| over stored entries
	Symmetric  bool  // structural symmetry
}

// ComputeStats scans m once (plus a transpose for the symmetry check
// when checkSym is true) and returns its structural statistics.
func ComputeStats[T Number](m *CSR[T], checkSym bool) Stats {
	s := Stats{
		Rows:      m.Rows,
		Cols:      m.Cols,
		NNZ:       m.NNZ(),
		MinRowNNZ: int64(m.Cols) + 1,
	}
	for i := 0; i < m.Rows; i++ {
		n := m.RowNNZ(i)
		if n > s.MaxRowNNZ {
			s.MaxRowNNZ = n
		}
		if n < s.MinRowNNZ {
			s.MinRowNNZ = n
		}
		if n == 0 {
			s.EmptyRows++
		}
		for _, j := range m.RowCols(i) {
			d := int64(i) - int64(j)
			if d < 0 {
				d = -d
			}
			if d > s.Bandwidth {
				s.Bandwidth = d
			}
		}
	}
	if m.Rows > 0 {
		s.AvgRowNNZ = float64(s.NNZ) / float64(m.Rows)
	}
	if s.MinRowNNZ > int64(m.Cols) {
		s.MinRowNNZ = 0
	}
	if checkSym && m.Rows == m.Cols {
		s.Symmetric = EqualPattern(m, Transpose(m))
	}
	return s
}

// String renders the statistics in the layout of the paper's Table I
// plus the extra structure columns.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d nnz=%d avg=%.2f max=%d empty=%d bw=%d sym=%v",
		s.Rows, s.NNZ, s.AvgRowNNZ, s.MaxRowNNZ, s.EmptyRows, s.Bandwidth, s.Symmetric)
}

// RowDegrees returns nnz per row; generators use this to validate the
// degree distributions they target.
func RowDegrees[T Number](m *CSR[T]) []int64 {
	deg := make([]int64, m.Rows)
	for i := range deg {
		deg[i] = m.RowNNZ(i)
	}
	return deg
}
