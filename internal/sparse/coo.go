package sparse

import "sort"

// COO is a sparse matrix in coordinate (triplet) format. It is the
// staging format for matrix construction: generators and the
// MatrixMarket reader emit triples in arbitrary order, COO sorts and
// merges them, and ToCSR produces the kernel-ready representation.
type COO[T Number] struct {
	Rows, Cols int
	I, J       []Index
	V          []T
}

// NewCOO allocates an empty triplet matrix with the given shape.
func NewCOO[T Number](rows, cols int, nnzCap int64) *COO[T] {
	return &COO[T]{
		Rows: rows,
		Cols: cols,
		I:    make([]Index, 0, nnzCap),
		J:    make([]Index, 0, nnzCap),
		V:    make([]T, 0, nnzCap),
	}
}

// Add appends one triple. No deduplication happens here; call Dedup (or
// rely on ToCSR, which dedups by summation) before handing the matrix to
// a kernel.
func (c *COO[T]) Add(i, j Index, v T) {
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// NNZ returns the number of stored triples (including duplicates).
func (c *COO[T]) NNZ() int64 { return int64(len(c.I)) }

// Sort orders the triples row-major (by row, then column) in place.
func (c *COO[T]) Sort() {
	sort.Sort(cooSorter[T]{c})
}

type cooSorter[T Number] struct{ c *COO[T] }

func (s cooSorter[T]) Len() int { return len(s.c.I) }
func (s cooSorter[T]) Less(a, b int) bool {
	if s.c.I[a] != s.c.I[b] {
		return s.c.I[a] < s.c.I[b]
	}
	return s.c.J[a] < s.c.J[b]
}
func (s cooSorter[T]) Swap(a, b int) {
	s.c.I[a], s.c.I[b] = s.c.I[b], s.c.I[a]
	s.c.J[a], s.c.J[b] = s.c.J[b], s.c.J[a]
	s.c.V[a], s.c.V[b] = s.c.V[b], s.c.V[a]
}

// Dedup sorts the triples and merges duplicates by summing their values.
// Entries that sum to zero are kept (GraphBLAS semantics: an explicit
// zero is still a stored entry).
func (c *COO[T]) Dedup() {
	if len(c.I) == 0 {
		return
	}
	c.Sort()
	w := 0
	for r := 1; r < len(c.I); r++ {
		if c.I[r] == c.I[w] && c.J[r] == c.J[w] {
			c.V[w] += c.V[r]
			continue
		}
		w++
		c.I[w], c.J[w], c.V[w] = c.I[r], c.J[r], c.V[r]
	}
	c.I = c.I[:w+1]
	c.J = c.J[:w+1]
	c.V = c.V[:w+1]
}

// ToCSR converts to CSR. The triples are deduplicated (duplicates sum)
// and rows come out sorted, so the result satisfies CSR.Check.
func (c *COO[T]) ToCSR() *CSR[T] {
	c.Dedup()
	m := &CSR[T]{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int64, c.Rows+1),
		ColIdx: make([]Index, len(c.J)),
		Val:    make([]T, len(c.V)),
	}
	for _, i := range c.I {
		m.RowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	// After Dedup the triples are already row-major sorted, so a single
	// sequential copy lands every row in sorted order.
	copy(m.ColIdx, c.J)
	copy(m.Val, c.V)
	return m
}
