package sparse

// Transpose returns the transpose of m using a counting sort on column
// indices: O(nnz + rows + cols) time, one pass to count and one to
// scatter. Rows of the result come out sorted because the input rows are
// scanned in order.
func Transpose[T Number](m *CSR[T]) *CSR[T] {
	t := &CSR[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]Index, m.NNZ()),
		Val:    make([]T, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			p := next[j]
			next[j]++
			t.ColIdx[p] = Index(i)
			t.Val[p] = vals[k]
		}
	}
	return t
}

// Tril returns the strictly lower triangular part of m (entries with
// column < row). Triangle counting uses C = L ⊙ (L×L^T) style
// formulations over the lower triangle.
func Tril[T Number](m *CSR[T]) *CSR[T] {
	return filterCSR(m, func(i int, j Index) bool { return int(j) < i })
}

// Triu returns the strictly upper triangular part of m.
func Triu[T Number](m *CSR[T]) *CSR[T] {
	return filterCSR(m, func(i int, j Index) bool { return int(j) > i })
}

// DropDiagonal removes diagonal entries; adjacency matrices of simple
// graphs have none, and generators use this to enforce that.
func DropDiagonal[T Number](m *CSR[T]) *CSR[T] {
	return filterCSR(m, func(i int, j Index) bool { return int(j) != i })
}

func filterCSR[T Number](m *CSR[T], keep func(i int, j Index) bool) *CSR[T] {
	out := &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if keep(i, j) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// PruneZeros returns m without its explicitly stored zeros. GraphBLAS
// distinguishes structural masks (any stored entry allows the position)
// from valued masks (the stored value must be truthy); pruning zeros
// converts a valued mask into the structural mask with the same
// meaning, so the structural kernels serve both semantics.
func PruneZeros[T Number](m *CSR[T]) *CSR[T] {
	return filterValues(m, func(v T) bool { return v != 0 })
}

func filterValues[T Number](m *CSR[T], keep func(T) bool) *CSR[T] {
	out := &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if keep(vals[k]) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Symmetrize returns m ∨ m^T structurally: the value at (i,j) is the sum
// of the values stored at (i,j) and (j,i). Used to turn directed
// generator output into undirected adjacency matrices.
func Symmetrize[T Number](m *CSR[T]) *CSR[T] {
	coo := NewCOO[T](m.Rows, m.Cols, 2*m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			coo.Add(Index(i), j, vals[k])
			if int(j) != i {
				coo.Add(j, Index(i), vals[k])
			}
		}
	}
	return coo.ToCSR()
}

// Equal reports whether a and b have identical shape, structure, and
// values.
func Equal[T Number](a, b *CSR[T]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// EqualPattern reports whether a and b have identical shape and
// structure, ignoring values. Masks are structural, so pattern equality
// is the right comparison for mask-producing transforms.
func EqualPattern[T, U Number](a *CSR[T], b *CSR[U]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			return false
		}
	}
	return true
}

// SumValues returns the sum of all stored values. Triangle counting
// reduces the masked product with this.
func SumValues[T Number](m *CSR[T]) T {
	var s T
	for _, v := range m.Val {
		s += v
	}
	return s
}
