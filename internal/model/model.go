// Package model implements the execution-time configuration predictor
// the paper's conclusion calls for: "build models which can
// intelligently tune the parameters at execution time, rather than
// offline for the average case." The model extracts cheap structural
// features from the operands (one O(nnz) pass — the same pass the
// FLOP-balanced tiler already needs) and maps them to a kernel
// configuration with decision rules distilled from the paper's
// experimental findings (§V).
package model

import (
	"fmt"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Features are the structural quantities the predictor decides on. All
// are computable in one pass over the operand structure.
type Features struct {
	// Rows and Cols are the output dimensions.
	Rows, Cols int
	// MaskNNZ, Flops, MaxMaskRow, MaxRowFlops come from the symbolic
	// profile (Eqs. 2–3 quantities).
	MaskNNZ, Flops          int64
	MaxMaskRow, MaxRowFlops int64
	// DegreeSkew is max row nnz of A over the average — near 1 for road
	// networks, large for social/web hubs.
	DegreeSkew float64
	// MaskDensity is MaskNNZ / (Rows·Cols).
	MaskDensity float64
	// CoIterSpeedup is the Eq. 3 model's predicted gain of the hybrid
	// traversal over pure linear scanning at κ=1.
	CoIterSpeedup float64
	// AvgFlopsPerUpdatePos is Flops / MaskNNZ: how many candidate
	// updates compete for each potential output — high values mean the
	// mask is much sparser than the products (the circuit5M signature).
	AvgFlopsPerUpdatePos float64
}

// Extract computes the features of C = M ⊙ (A × B).
func Extract[T sparse.Number](m, a, b *sparse.CSR[T]) (Features, error) {
	p, err := core.ProfileMasked(m, a, b, 1)
	if err != nil {
		return Features{}, err
	}
	f := Features{
		Rows: m.Rows, Cols: m.Cols,
		MaskNNZ: p.MaskNNZ, Flops: p.Flops,
		MaxMaskRow: p.MaxMaskRow, MaxRowFlops: p.MaxRowFlops,
		CoIterSpeedup: p.PredictedCoIterSpeedup(),
	}
	var maxA int64
	for i := 0; i < a.Rows; i++ {
		if n := a.RowNNZ(i); n > maxA {
			maxA = n
		}
	}
	if a.Rows > 0 && a.NNZ() > 0 {
		f.DegreeSkew = float64(maxA) * float64(a.Rows) / float64(a.NNZ())
	} else {
		f.DegreeSkew = 1
	}
	if m.Rows > 0 && m.Cols > 0 {
		f.MaskDensity = float64(p.MaskNNZ) / (float64(m.Rows) * float64(m.Cols))
	}
	if p.MaskNNZ > 0 {
		f.AvgFlopsPerUpdatePos = float64(p.Flops) / float64(p.MaskNNZ)
	}
	return f, nil
}

// Thresholds are the decision boundaries of the predictor; the defaults
// encode the paper's findings and can be re-fit from sweep data.
type Thresholds struct {
	// CoIterGain is the minimum predicted speedup before the hybrid
	// space is worth its per-pair decision overhead.
	CoIterGain float64
	// DenseCols is the largest column dimension for which the dense
	// accumulator's state vector is considered cache-friendly.
	DenseCols int
	// DenseMaskRowFrac: above this mask-row density (MaxMaskRow/Cols)
	// the dense accumulator wins regardless of dimension.
	DenseMaskRowFrac float64
	// RowsPerTile is the target granularity: tiles ≈ rows/RowsPerTile,
	// clamped to [MinTiles, MaxTiles].
	RowsPerTile        int
	MinTiles, MaxTiles int
}

// DefaultThresholds encodes §V: balanced+dynamic with ~2048 tiles works
// for 80–90% of matrices; co-iteration helps when the model predicts
// ≥ 15% gain; dense accumulators win on small dimensions (≤ 2¹⁶) and
// dense masks; 32-bit markers are the sweet spot.
func DefaultThresholds() Thresholds {
	return Thresholds{
		CoIterGain:       1.15,
		DenseCols:        1 << 16,
		DenseMaskRowFrac: 1.0 / 64,
		RowsPerTile:      16,
		MinTiles:         64,
		MaxTiles:         2048,
	}
}

// Predict maps features to a kernel configuration.
func Predict(f Features, th Thresholds, workers int) core.Config {
	cfg := core.Config{
		Kappa:      1,
		MarkerBits: 32, // Fig. 13 sweet spot
		Tiling:     tiling.FlopBalanced,
		Schedule:   sched.Dynamic,
		Workers:    workers,
	}

	// Iteration space: hybrid only if the Eq. 3 model predicts real
	// savings; otherwise the plain mask-load scan avoids per-pair
	// decision overhead.
	if f.CoIterSpeedup >= th.CoIterGain {
		cfg.Iteration = core.Hybrid
	} else {
		cfg.Iteration = core.MaskLoad
	}

	// Accumulator: §III-C guidance, quantified.
	dense := f.Cols <= th.DenseCols
	if !dense && f.Cols > 0 &&
		float64(f.MaxMaskRow) >= th.DenseMaskRowFrac*float64(f.Cols) {
		dense = true
	}
	if dense {
		cfg.Accumulator = accum.DenseKind
	} else {
		cfg.Accumulator = accum.HashKind
	}

	// Tile count: enough tiles for dynamic balancing, not so many that
	// per-tile overhead dominates (Fig. 11's high-tile-count collapse).
	t := f.Rows / max(th.RowsPerTile, 1)
	if t < th.MinTiles {
		t = th.MinTiles
	}
	if t > th.MaxTiles {
		t = th.MaxTiles
	}
	cfg.Tiles = t
	return cfg
}

// DefaultRetentionBudget bounds the memory the engine may pin in idle
// workspaces: beyond it, retention stops paying for itself against the
// cache pressure the idle buffers add.
const DefaultRetentionBudget = 256 << 20 // 256 MiB

// PredictEngine sizes an exec.Engine's retention bounds from the
// problem's features under the default retention budget; see
// PredictEngineBudget.
func PredictEngine(f Features, cfg core.Config, workers int) exec.Config {
	return PredictEngineBudget(f, cfg, workers, DefaultRetentionBudget)
}

// PredictEngineBudget sizes an exec.Engine's retention bounds from the
// problem's features and an explicit retention budget in bytes
// (budget <= 0 selects DefaultRetentionBudget). The dominant
// per-workspace cost is the dense state: a dense accumulator (or
// complement/2D scratch) holds O(cols) values and markers per worker, a
// hash accumulator O(MaxMaskRow) slots. The idle cap is the retention
// budget divided by that footprint, so small problems keep the default
// (deep) pool while problems with huge columns retain only a few idle
// workspaces. The plan cache is footprint-light (tile boundaries only)
// and stays at its default depth.
func PredictEngineBudget(f Features, cfg core.Config, workers int, budget int64) exec.Config {
	if workers <= 0 {
		workers = sched.Workers(workers)
	}
	if budget <= 0 {
		budget = DefaultRetentionBudget
	}
	var perWorker int64
	switch cfg.Accumulator {
	case accum.DenseKind, accum.DenseExplicitKind:
		perWorker = int64(f.Cols) * 16 // value + marker word per column
	default:
		perWorker = f.MaxMaskRow * 24 // hash slot: key + value + marker
	}
	// Tile staging holds at most the mask volume across all tiles.
	footprint := perWorker*int64(workers) + f.MaskNNZ*12
	if footprint <= 0 {
		footprint = 1
	}
	maxIdle := int(budget / footprint)
	if maxIdle > exec.DefaultMaxIdle {
		maxIdle = exec.DefaultMaxIdle
	}
	if maxIdle < 2 {
		maxIdle = 2 // always keep the warm-loop pair
	}
	return exec.Config{MaxIdle: maxIdle, MaxPlans: exec.DefaultMaxPlans}
}

// PredictConfig extracts features and predicts in one call — the
// "execution time" entry point (cost: one structural pass, ~the same
// as the FLOP-balanced tiler itself).
func PredictConfig[T sparse.Number](m, a, b *sparse.CSR[T], workers int) (core.Config, Features, error) {
	f, err := Extract(m, a, b)
	if err != nil {
		return core.Config{}, Features{}, err
	}
	cfg := Predict(f, DefaultThresholds(), workers)
	if err := cfg.Validate(); err != nil {
		return core.Config{}, Features{}, fmt.Errorf("model: predicted invalid config: %w", err)
	}
	return cfg, f, nil
}
