package model

import (
	"math"
	"sync"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sparse"
)

// RecalConfig tunes the online κ recalibrator. The zero value selects
// the defaults below; every field is individually optional.
type RecalConfig struct {
	// DefaultKappa is the static κ the estimator starts from and snaps
	// back to when the periodic reference run beats the adapted center.
	// 0 means 1 (the paper's recommended default).
	DefaultKappa float64
	// Gamma is the initial multiplicative exploration step: the arms
	// bracket the center at κc/γ and κc·γ. 0 means 2.
	Gamma float64
	// MinGamma is the convergence floor the step shrinks toward once the
	// center keeps winning. 0 means 1.05.
	MinGamma float64
	// Alpha is the EWMA weight of the newest observation. 0 means 0.3.
	Alpha float64
	// RefPeriod re-proposes DefaultKappa as a reference arm every
	// RefPeriod observations, so the adapted κ is continuously audited
	// against the static default. 0 means 8.
	RefPeriod int
	// SnapbackMargin is the factor by which the reference arm's cost
	// must undercut the center's before the estimator snaps back
	// (refCost < SnapbackMargin·centerCost). 0 means 0.95.
	SnapbackMargin float64
	// ShrinkAfter is the number of consecutive center wins before γ
	// shrinks toward MinGamma. 0 means 2.
	ShrinkAfter int
	// KappaMin and KappaMax clamp the adapted center. 0 means 1/64 and
	// 64 respectively.
	KappaMin, KappaMax float64
	// DenseCollisionRate is the hash collision-per-probe EWMA above
	// which the estimator recommends the dense accumulator (the hash
	// table is thrashing). 0 means 0.5.
	DenseCollisionRate float64
}

func (c RecalConfig) withDefaults() RecalConfig {
	if c.DefaultKappa <= 0 {
		c.DefaultKappa = 1
	}
	if c.Gamma <= 1 {
		c.Gamma = 2
	}
	if c.MinGamma <= 1 {
		c.MinGamma = 1.05
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.RefPeriod <= 0 {
		c.RefPeriod = 8
	}
	if c.SnapbackMargin <= 0 || c.SnapbackMargin >= 1 {
		c.SnapbackMargin = 0.95
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 2
	}
	if c.KappaMin <= 0 {
		c.KappaMin = 1.0 / 64
	}
	if c.KappaMax <= c.KappaMin {
		c.KappaMax = 64
	}
	if c.DenseCollisionRate <= 0 {
		c.DenseCollisionRate = 0.5
	}
	return c
}

// Recalibrator arms: below-center, center, above-center, plus the
// periodic static-default reference.
const (
	armLow = iota
	armMid
	armHigh
	armRef
	numArms
)

// Recalibrator adapts the co-iteration factor κ online, per operand
// family. It runs a three-arm multiplicative search around the current
// center κc — proposing κc/γ, κc and κc·γ in rotation — and feeds each
// run's measured cost (wall time normalized by the run's Eq. 2 FLOPs,
// so rounds over shrinking matrices stay comparable) into per-arm
// exponentially weighted averages. When a bracket arm's average
// undercuts the center's, the center recenters on it; when the center
// keeps winning, γ shrinks toward 1 and the search converges. A
// periodic reference run at the static default κ audits the whole
// adaptation: if the default is measurably cheaper, the estimator
// snaps back and re-widens γ, so adaptation can never lock in a κ
// worse than not adapting at all.
//
// The hybrid pick counters bound the search behaviorally: a center run
// in which every (i,k) pair already co-iterated (zero linear picks)
// proves raising κ cannot change a single decision, so the high arm is
// skipped — and symmetrically for the low arm. Hash accumulator
// probe/collision rates feed a separate EWMA exposed as PreferDense.
//
// All methods are safe for concurrent use; a nil *Recalibrator
// disables everything (Propose returns the static default).
type Recalibrator struct {
	mu  sync.Mutex
	cfg RecalConfig

	center float64
	gamma  float64

	// cost and seen are the per-arm EWMA cost and sample count since
	// the last recenter; ref keeps its own longer-lived average.
	cost [numArms]float64
	seen [numArms]int

	// pending is the arm the next Observe attributes to (set by
	// Propose); -1 when no proposal is outstanding.
	pending int
	// rotate cycles the bracket arms; updates counts observations to
	// schedule the reference arm.
	rotate  int
	updates int

	// skipLow/skipHigh mark bracket directions proven behaviorally
	// inert by the pick counters of the latest center observation.
	skipLow, skipHigh bool

	centerWins int
	converged  bool

	collisionRate float64
	probesSeen    bool
}

// NewRecalibrator returns a recalibrator centered on the config's
// static default κ.
func NewRecalibrator(cfg RecalConfig) *Recalibrator {
	cfg = cfg.withDefaults()
	return &Recalibrator{
		cfg:     cfg,
		center:  cfg.DefaultKappa,
		gamma:   cfg.Gamma,
		pending: -1,
	}
}

// Kappa returns the current adapted center κ (the static default on a
// nil recalibrator).
func (rc *Recalibrator) Kappa() float64 {
	if rc == nil {
		return RecalConfig{}.withDefaults().DefaultKappa
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.center
}

// Converged reports whether the search step has shrunk to its floor.
func (rc *Recalibrator) Converged() bool {
	if rc == nil {
		return false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.converged
}

// PreferDense reports the accumulator hint: prefer is true when the
// observed hash collision rate exceeds the configured threshold; ok is
// false until a run with hash probe traffic has been observed.
func (rc *Recalibrator) PreferDense() (prefer, ok bool) {
	if rc == nil {
		return false, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.collisionRate > rc.cfg.DenseCollisionRate, rc.probesSeen
}

// Propose returns the κ to run next and records which arm it belongs
// to, so the following Observe attributes the measurement correctly.
// Arms rotate low/mid/high (skipping behaviorally inert directions),
// with the static-default reference injected every RefPeriod
// observations. A nil recalibrator proposes the static default.
func (rc *Recalibrator) Propose() float64 {
	if rc == nil {
		return RecalConfig{}.withDefaults().DefaultKappa
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.updates > 0 && rc.updates%rc.cfg.RefPeriod == 0 && rc.pending != armRef &&
		rc.seen[armMid] > 0 {
		rc.pending = armRef
		return rc.cfg.DefaultKappa
	}
	if rc.converged {
		rc.pending = armMid
		return rc.center
	}
	for range [3]int{} {
		arm := []int{armLow, armMid, armHigh}[rc.rotate%3]
		rc.rotate++
		if (arm == armLow && rc.skipLow) || (arm == armHigh && rc.skipHigh) {
			continue
		}
		rc.pending = arm
		return rc.armKappa(arm)
	}
	rc.pending = armMid
	return rc.center
}

// armKappa maps an arm to its κ, clamped. Caller holds rc.mu.
func (rc *Recalibrator) armKappa(arm int) float64 {
	k := rc.center
	switch arm {
	case armLow:
		k = rc.center / rc.gamma
	case armHigh:
		k = rc.center * rc.gamma
	case armRef:
		return rc.cfg.DefaultKappa
	}
	return math.Min(rc.cfg.KappaMax, math.Max(rc.cfg.KappaMin, k))
}

// ObserveFailure discards the outstanding proposal: a run that failed
// (or completed on a degraded retry path) measured something other than
// the proposed κ's cost, so feeding it to Observe would corrupt the
// arm's EWMA. The next Propose starts clean. Nil-safe.
func (rc *Recalibrator) ObserveFailure() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	rc.pending = -1
	rc.mu.Unlock()
}

// Observe feeds one run's measurement back: seconds is the run's wall
// time, st its per-run stats snapshot (obs.Recorder.LastRun; the zero
// value degrades to unnormalized cost). The returned counter delta is
// ready for obs.Recorder.AddRecal. Nil recalibrators return zeros.
func (rc *Recalibrator) Observe(seconds float64, st obs.Stats) obs.RecalCounters {
	if rc == nil || !(seconds >= 0) {
		return obs.RecalCounters{}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()

	arm := rc.pending
	if arm < 0 {
		arm = armMid
	}
	rc.pending = -1

	flops := st.Totals.Flops
	if flops <= 0 {
		flops = 1
	}
	c := seconds / float64(flops)
	a := rc.cfg.Alpha
	if rc.seen[arm] == 0 {
		rc.cost[arm] = c
	} else {
		rc.cost[arm] = (1-a)*rc.cost[arm] + a*c
	}
	rc.seen[arm]++
	rc.updates++

	delta := obs.RecalCounters{Updates: 1}
	if arm != armMid {
		delta.Explorations = 1
	}

	if arm == armMid {
		// Pick counters bound the bracket: all-co-iterate means a higher
		// κ changes nothing; all-linear means a lower κ changes nothing.
		if picks := st.Totals.CoIterPicks + st.Totals.LinearPicks; picks > 0 {
			rc.skipHigh = st.Totals.LinearPicks == 0
			rc.skipLow = st.Totals.CoIterPicks == 0
		}
	}
	if probes := st.Accum.HashProbes; probes > 0 {
		r := float64(st.Accum.HashCollisions) / float64(probes)
		if !rc.probesSeen {
			rc.collisionRate = r
			rc.probesSeen = true
		} else {
			rc.collisionRate = (1-a)*rc.collisionRate + a*r
		}
	}

	switch arm {
	case armRef:
		if rc.seen[armMid] > 0 && rc.cost[armRef] < rc.cfg.SnapbackMargin*rc.cost[armMid] &&
			rc.center != rc.cfg.DefaultKappa {
			rc.snapbackLocked()
			delta.Snapbacks = 1
		}
	case armLow, armMid, armHigh:
		if rc.bracketReadyLocked() {
			if rc.recenterLocked() {
				delta.Recenters = 1
			}
		}
	}
	delta.KappaLast = rc.center
	return delta
}

// bracketReadyLocked reports whether every live bracket arm has at
// least one sample since the last recenter. Caller holds rc.mu.
func (rc *Recalibrator) bracketReadyLocked() bool {
	if rc.seen[armMid] == 0 {
		return false
	}
	if !rc.skipLow && rc.seen[armLow] == 0 {
		return false
	}
	if !rc.skipHigh && rc.seen[armHigh] == 0 {
		return false
	}
	return true
}

// recenterLocked compares the bracket and either moves the center onto
// the cheaper arm (returns true) or counts a center win and shrinks γ
// once the center has defended its position ShrinkAfter times in a row.
// Caller holds rc.mu.
func (rc *Recalibrator) recenterLocked() bool {
	best, bestCost := armMid, rc.cost[armMid]
	if !rc.skipLow && rc.seen[armLow] > 0 && rc.cost[armLow] < bestCost {
		best, bestCost = armLow, rc.cost[armLow]
	}
	if !rc.skipHigh && rc.seen[armHigh] > 0 && rc.cost[armHigh] < bestCost {
		best = armHigh
	}
	if best == armMid {
		rc.centerWins++
		if rc.centerWins >= rc.cfg.ShrinkAfter && !rc.converged {
			rc.gamma = 1 + (rc.gamma-1)/2
			if rc.gamma <= rc.cfg.MinGamma {
				rc.gamma = rc.cfg.MinGamma
				rc.converged = true
			}
			rc.centerWins = 0
		}
		// Restart the bracket so stale arm averages do not mask drift.
		rc.resetBracketLocked(rc.cost[armMid], 1)
		return false
	}
	won := rc.armKappa(best)
	oldCost := rc.cost[best]
	rc.center = won
	rc.centerWins = 0
	rc.converged = false
	// The winning arm's average becomes the new center's; the proven
	// inert directions are re-examined at the new center.
	rc.skipLow, rc.skipHigh = false, false
	rc.resetBracketLocked(oldCost, 1)
	return true
}

// resetBracketLocked clears the bracket arms, seeding the center with
// the given average and sample count. Caller holds rc.mu.
func (rc *Recalibrator) resetBracketLocked(midCost float64, midSeen int) {
	rc.cost[armLow], rc.seen[armLow] = 0, 0
	rc.cost[armHigh], rc.seen[armHigh] = 0, 0
	rc.cost[armMid], rc.seen[armMid] = midCost, midSeen
}

// snapbackLocked resets the estimator onto the static default and
// re-widens the search. Caller holds rc.mu.
func (rc *Recalibrator) snapbackLocked() {
	rc.center = rc.cfg.DefaultKappa
	rc.gamma = rc.cfg.Gamma
	rc.converged = false
	rc.centerWins = 0
	rc.skipLow, rc.skipHigh = false, false
	rc.resetBracketLocked(rc.cost[armRef], 1)
}

// TuneFor returns the recalibrator bound to the engine's tuning cell
// for the operand family of C = M ⊙ (A × B), creating it on first use.
// The cell (and therefore the adapted κ) is shared by every multiply
// whose operands fall in the same ceil-log2 size classes — exactly the
// reuse an iterative algorithm's rounds exhibit. Returns nil when the
// engine is nil or its cache is disabled: adaptation needs somewhere to
// persist between calls.
func TuneFor[T sparse.Number](engine *exec.Engine, m, a, b *sparse.CSR[T], cfg RecalConfig) *Recalibrator {
	tun := engine.Tuning(exec.TuneKeyOf(m, a, b))
	if tun == nil {
		return nil
	}
	var rc *Recalibrator
	tun.Update(func(state any) any {
		if existing, ok := state.(*Recalibrator); ok {
			rc = existing
			return state
		}
		rc = NewRecalibrator(cfg)
		return rc
	})
	return rc
}
