package model

import (
	"math"
	"testing"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/obs"
)

// synthStats fabricates a per-run snapshot with the fields Observe
// consumes: Eq. 2 FLOPs for cost normalization and live pick counters
// so neither bracket direction is proven inert.
func synthStats() obs.Stats {
	var st obs.Stats
	st.Totals.Flops = 1000
	st.Totals.CoIterPicks = 10
	st.Totals.LinearPicks = 10
	return st
}

// driveRecal runs the propose/observe loop against a deterministic
// cost-per-FLOP landscape and returns the sum of the counter deltas.
func driveRecal(rc *Recalibrator, costOf func(k float64) float64, runs int) obs.RecalCounters {
	st := synthStats()
	var total obs.RecalCounters
	for i := 0; i < runs; i++ {
		k := rc.Propose()
		seconds := costOf(k) * float64(st.Totals.Flops)
		d := rc.Observe(seconds, st)
		total.Updates += d.Updates
		total.Explorations += d.Explorations
		total.Recenters += d.Recenters
		total.Snapbacks += d.Snapbacks
		total.KappaLast = d.KappaLast
	}
	return total
}

// TestRecalConvergesNearOptimum is the acceptance bound: on a convex
// cost landscape with its optimum far from the default, the online
// search must converge within a bounded number of warm runs to a κ
// whose cost is within 5% of the best offline-swept grid point.
func TestRecalConvergesNearOptimum(t *testing.T) {
	const optimum = 8.0
	costOf := func(k float64) float64 {
		d := math.Log(k) - math.Log(optimum)
		return 1 + d*d
	}
	rc := NewRecalibrator(RecalConfig{})
	total := driveRecal(rc, costOf, 64)

	if !rc.Converged() {
		t.Fatalf("not converged after 64 runs (center %v)", rc.Kappa())
	}
	if total.Recenters == 0 {
		t.Fatal("search never recentered away from the default")
	}
	// Best κ an offline sweep over the paper's grid would find,
	// restricted to the recalibrator's own clamp range.
	best := math.Inf(1)
	for _, k := range []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000} {
		k = math.Min(64, math.Max(1.0/64, k))
		if c := costOf(k); c < best {
			best = c
		}
	}
	if got := costOf(rc.Kappa()); got > 1.05*best {
		t.Fatalf("adapted κ=%v costs %v, more than 5%% over best swept cost %v",
			rc.Kappa(), got, best)
	}
}

// TestRecalStaysAtDefaultWhenBest: when the static default already sits
// at the optimum, adaptation must not wander off it — the never-worse
// guarantee in its simplest form.
func TestRecalStaysAtDefaultWhenBest(t *testing.T) {
	costOf := func(k float64) float64 {
		d := math.Log(k)
		return 1 + d*d
	}
	rc := NewRecalibrator(RecalConfig{})
	driveRecal(rc, costOf, 64)
	if k := rc.Kappa(); costOf(k) > 1.05*costOf(1) {
		t.Fatalf("adapted κ=%v costs %v, worse than staying at the default (%v)",
			k, costOf(k), costOf(1))
	}
	if !rc.Converged() {
		t.Fatalf("center kept winning but search did not converge (κ=%v)", rc.Kappa())
	}
}

// TestRecalSnapsBackWhenDefaultWins: after the landscape shifts so the
// static default beats the adapted center, the periodic reference arm
// must detect it and snap the estimator back — adaptation can never
// lock in a κ worse than not adapting.
func TestRecalSnapsBackWhenDefaultWins(t *testing.T) {
	// Phase 1 rewards high κ and lets the search climb away from 1.
	up := func(k float64) float64 { return 2 - math.Min(1, math.Log1p(k)/4) }
	rc := NewRecalibrator(RecalConfig{})
	driveRecal(rc, up, 24)
	if rc.Kappa() <= 1 {
		t.Fatalf("setup failed: center %v did not climb above the default", rc.Kappa())
	}
	// Phase 2 inverts the landscape: only the default is cheap now.
	flipped := func(k float64) float64 {
		if math.Abs(math.Log(k)) < 1e-9 {
			return 0.1
		}
		return 10
	}
	total := driveRecal(rc, flipped, 64)
	if total.Snapbacks == 0 {
		t.Fatal("reference arm never triggered a snapback")
	}
	if k := rc.Kappa(); k != 1 {
		t.Fatalf("center %v after snapback, want the default 1", k)
	}
}

// TestRecalPickCountersBoundSearch: a center observation in which every
// row pair co-iterated proves raising κ cannot change any decision, so
// the high arm must stop being proposed.
func TestRecalPickCountersBoundSearch(t *testing.T) {
	rc := NewRecalibrator(RecalConfig{})
	st := synthStats()
	st.Totals.LinearPicks = 0 // everything already co-iterates
	// Let the rotation reach the center arm once so the skip is learned.
	for i := 0; i < 2; i++ {
		rc.Propose()
		rc.Observe(1, st)
	}
	for i := 0; i < 12; i++ {
		if k := rc.Propose(); k > rc.Kappa() {
			t.Fatalf("proposal %d: κ=%v above center %v despite all-co-iterate picks", i, k, rc.Kappa())
		}
		rc.Observe(1, st)
	}
}

// TestRecalPreferDense: a sustained hash collision rate above the
// threshold must surface as the dense-accumulator hint.
func TestRecalPreferDense(t *testing.T) {
	rc := NewRecalibrator(RecalConfig{})
	if _, ok := rc.PreferDense(); ok {
		t.Fatal("hint available before any probe traffic")
	}
	st := synthStats()
	st.Accum.HashProbes = 100
	st.Accum.HashCollisions = 80
	rc.Propose()
	rc.Observe(1, st)
	prefer, ok := rc.PreferDense()
	if !ok || !prefer {
		t.Fatalf("prefer=%v ok=%v after 80%% collision rate, want true/true", prefer, ok)
	}
}

// TestRecalNilSafety: nil recalibrators propose the default and observe
// into the void, so uninstrumented call sites need no branches.
func TestRecalNilSafety(t *testing.T) {
	var rc *Recalibrator
	if k := rc.Propose(); k != 1 {
		t.Fatalf("nil Propose = %v, want the default 1", k)
	}
	if d := rc.Observe(1, obs.Stats{}); d != (obs.RecalCounters{}) {
		t.Fatalf("nil Observe returned %+v, want zeros", d)
	}
	if rc.Converged() {
		t.Fatal("nil recalibrator claims convergence")
	}
}

// TestTuneForSharesCell: multiplies whose operands fall in the same
// size classes must share one recalibrator through the engine's tuning
// cache; a nil engine disables adaptation.
func TestTuneForSharesCell(t *testing.T) {
	a := graphgen.ErdosRenyi(300, 1200, 5)
	b := graphgen.ErdosRenyi(310, 1250, 6) // same ceil-log2 classes
	eng := exec.New(exec.Config{})
	rc1 := TuneFor(eng, a, a, a, RecalConfig{})
	if rc1 == nil {
		t.Fatal("TuneFor returned nil with a live engine")
	}
	if rc2 := TuneFor(eng, b, b, b, RecalConfig{}); rc2 != rc1 {
		t.Fatal("same size classes did not share the tuning cell")
	}
	small := graphgen.ErdosRenyi(20, 60, 7)
	if rc3 := TuneFor(eng, small, small, small, RecalConfig{}); rc3 == rc1 {
		t.Fatal("different size classes shared a tuning cell")
	}
	if rc := TuneFor(nil, a, a, a, RecalConfig{}); rc != nil {
		t.Fatal("nil engine must disable adaptation")
	}
}
