package model

import (
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Test-scale versions of the benchmark corpus families (kept local to
// avoid an import cycle with internal/bench, which imports this
// package).
var testFamilies = map[string]func() *sparse.CSR[float64]{
	"circuit": func() *sparse.CSR[float64] { return graphgen.Circuit(937, 3, 0.6, 4, 117, 0xC1AC) },
	"road":    func() *sparse.CSR[float64] { return graphgen.RoadNetwork(57, 50, 0.95, 0x6A9) },
	"social":  func() *sparse.CSR[float64] { return graphgen.RMAT(9, 20, 0.57, 0.19, 0.19, 0x0870) },
	"web":     func() *sparse.CSR[float64] { return graphgen.WebGraph(1250, 14, 0.6, 0xA2AB1C) },
	"er":      func() *sparse.CSR[float64] { return graphgen.ErdosRenyi(600, 2400, 7) },
}

func TestExtractFeatures(t *testing.T) {
	a := graphgen.ErdosRenyi(200, 800, 3)
	f, err := Extract(a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaskNNZ != a.NNZ() || f.Rows != 200 {
		t.Errorf("features wrong: %+v", f)
	}
	if f.DegreeSkew < 1 {
		t.Errorf("skew %v < 1", f.DegreeSkew)
	}
	if f.MaskDensity <= 0 || f.MaskDensity > 1 {
		t.Errorf("density %v out of range", f.MaskDensity)
	}
	if f.CoIterSpeedup < 1 {
		t.Errorf("predicted speedup %v < 1 at κ=1", f.CoIterSpeedup)
	}
}

func TestPredictOnCorpusFamilies(t *testing.T) {
	// Circuit: the mask is far sparser than the products; the model must
	// choose the hybrid space (the co-iteration rescue of Fig. 14d).
	a := testFamilies["circuit"]()
	cfg, f, err := PredictConfig(a, a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Iteration != core.Hybrid {
		t.Errorf("circuit: predicted %v, want Hybrid (speedup model says %.2fx)",
			cfg.Iteration, f.CoIterSpeedup)
	}

	// Road: flat degrees, co-iteration is ~neutral (Fig. 14a); either
	// space is acceptable but the config must be valid and the tile
	// count modest for the small row count.
	road := testFamilies["road"]()
	cfg, _, err = PredictConfig(road, road, road, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tiles > 2048 {
		t.Errorf("road: %d tiles exceeds the recommended cap", cfg.Tiles)
	}

	// Small dimension: dense accumulator.
	if cfg.Accumulator != accum.DenseKind {
		t.Errorf("small-dimension graph: predicted %v, want Dense", cfg.Accumulator)
	}
}

func TestPredictLargeSparse(t *testing.T) {
	// Large dimension with thin mask rows: hash accumulator.
	coo := sparse.NewCOO[float64](1<<17, 1<<17, 8)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(70000, 90000, 1)
	coo.Add(90000, 70000, 1)
	a := coo.ToCSR()
	cfg, _, err := PredictConfig(a, a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Accumulator != accum.HashKind {
		t.Errorf("large sparse: predicted %v, want Hash", cfg.Accumulator)
	}
}

func TestPredictedConfigsRun(t *testing.T) {
	// Every structural family's predicted config must validate and
	// produce the same result as the default config.
	for name, build := range testFamilies {
		a := build()
		cfg, _, err := PredictConfig(a, a, a, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sr := semiring.PlusTimes[float64]{}
		got, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := core.MaskedSpGEMM[float64](sr, a, a, a, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(got, want) {
			t.Errorf("%s: predicted config changed the result", name)
		}
	}
}

func TestThresholdKnobs(t *testing.T) {
	f := Features{Rows: 100000, Cols: 1 << 20, MaxMaskRow: 5, CoIterSpeedup: 1.0}
	th := DefaultThresholds()
	cfg := Predict(f, th, 0)
	if cfg.Iteration != core.MaskLoad || cfg.Accumulator != accum.HashKind {
		t.Errorf("baseline prediction wrong: %v", cfg)
	}
	// Lowering the gain threshold flips to hybrid.
	th.CoIterGain = 0.5
	if Predict(f, th, 0).Iteration != core.Hybrid {
		t.Error("gain threshold not honored")
	}
	// A dense mask row flips to dense accumulator despite the dimension.
	f.MaxMaskRow = 1 << 19
	if Predict(f, DefaultThresholds(), 0).Accumulator != accum.DenseKind {
		t.Error("dense mask-row rule not honored")
	}
	// Tile clamping.
	tiny := Features{Rows: 10, Cols: 10, CoIterSpeedup: 1}
	if got := Predict(tiny, DefaultThresholds(), 0).Tiles; got != 64 {
		t.Errorf("tiny graph tiles = %d, want MinTiles 64", got)
	}
}

func TestPredictEngine(t *testing.T) {
	// A small dense-accumulator problem fits the retention budget many
	// times over: the pool keeps its default depth.
	small := Features{Rows: 1 << 10, Cols: 1 << 10, MaskNNZ: 1 << 13, MaxMaskRow: 64}
	cfg := core.Config{Accumulator: accum.DenseKind}
	ec := PredictEngine(small, cfg, 4)
	if ec.MaxIdle != exec.DefaultMaxIdle {
		t.Errorf("small problem MaxIdle = %d, want default %d", ec.MaxIdle, exec.DefaultMaxIdle)
	}
	if ec.MaxPlans != exec.DefaultMaxPlans {
		t.Errorf("MaxPlans = %d, want default %d", ec.MaxPlans, exec.DefaultMaxPlans)
	}

	// A huge dense column dimension blows the budget per workspace: the
	// cap shrinks, but never below the warm-loop pair.
	huge := Features{Rows: 1 << 24, Cols: 1 << 24, MaskNNZ: 1 << 26, MaxMaskRow: 1 << 12}
	ec = PredictEngine(huge, cfg, 8)
	if ec.MaxIdle >= exec.DefaultMaxIdle {
		t.Errorf("huge problem MaxIdle = %d, want < default", ec.MaxIdle)
	}
	if ec.MaxIdle < 2 {
		t.Errorf("MaxIdle = %d, want >= 2", ec.MaxIdle)
	}

	// Hash accumulators key on the mask row, not the dimension: the same
	// huge dimension with a short mask row keeps a deep pool.
	hashCfg := core.Config{Accumulator: accum.HashKind}
	if ec := PredictEngine(huge, hashCfg, 8); ec.MaxIdle < PredictEngine(huge, cfg, 8).MaxIdle {
		t.Errorf("hash pool shallower than dense for the same features: %d", ec.MaxIdle)
	}

	// The predicted configuration actually drives an engine: checkouts
	// succeed and warm reruns recycle.
	eng := exec.New(ec)
	a := graphgen.ErdosRenyi(300, 1500, 5)
	run := core.DefaultConfig()
	run.Engine = eng
	run.Tiles = 8
	sr := semiring.PlusTimes[float64]{}
	if _, err := core.MaskedSpGEMM[float64](sr, a, a, a, run); err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	if _, err := core.MaskedSpGEMM[float64](sr, a, a, a, run); err != nil {
		t.Fatal(err)
	}
	if d := eng.Stats().Sub(prior); d.Misses != 0 {
		t.Errorf("warm rerun under predicted engine config missed %d times (%+v)", d.Misses, d)
	}
}
