package model

import (
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
)

// Execution-time tuning for the masked triangular solve: the same
// philosophy as Predict — cheap structural features, decision rules
// with explicit thresholds — applied to the level-schedule knobs the
// wave coarsener exposes (core.SolveOpts.WaveGrain / MergeBelow) and
// the serial-fallback crossover.

// SolveFeatures are the structural quantities the solve predictor
// decides on, computable in one O(n + nnz-restricted) pass over the
// operand structure (no level-set construction needed).
type SolveFeatures struct {
	// Rows is the number of solved rows (the mask size, or n unmasked).
	Rows int
	// Work is the Eq. 2 total row work of the solve: stored entries on
	// the solved rows, restricted to the mask.
	Work int64
	// AvgRowWork is Work / Rows.
	AvgRowWork float64
	// BandFrac estimates dependency depth: the fraction of off-diagonal
	// entries within a narrow band of the diagonal. Banded systems
	// produce long dependency chains (deep, narrow level sets) where
	// waves buy little; scattered systems produce shallow wide level
	// sets where waves shine.
	BandFrac float64
}

// ExtractSolve computes the solve features of op(L)·x = b under an
// optional row mask (nil or empty = all rows). The band window is
// max(1, n/64) — narrow relative to the matrix, wide enough to catch
// tridiagonal-like chains.
func ExtractSolve[T sparse.Number](l *sparse.CSR[T], mask []sparse.Index) SolveFeatures {
	n := l.Rows
	var f SolveFeatures
	if n == 0 {
		return f
	}
	band := int64(n / 64)
	if band < 1 {
		band = 1
	}
	var inMask []uint8
	if len(mask) > 0 {
		inMask = make([]uint8, n)
		for _, r := range mask {
			if int(r) < n {
				inMask[r] = 1
			}
		}
		f.Rows = len(mask)
	} else {
		f.Rows = n
	}
	var offDiag, banded int64
	visit := func(i int) {
		for _, j := range l.RowCols(i) {
			jj := int(j)
			if inMask != nil && inMask[jj] == 0 {
				continue
			}
			f.Work++
			if jj == i {
				continue
			}
			offDiag++
			d := int64(i - jj)
			if d < 0 {
				d = -d
			}
			if d <= band {
				banded++
			}
		}
	}
	if len(mask) > 0 {
		for _, r := range mask {
			if int(r) < n {
				visit(int(r))
			}
		}
	} else {
		for i := 0; i < n; i++ {
			visit(i)
		}
	}
	if f.Rows > 0 {
		f.AvgRowWork = float64(f.Work) / float64(f.Rows)
	}
	if offDiag > 0 {
		f.BandFrac = float64(banded) / float64(offDiag)
	}
	return f
}

// SolveThresholds are the decision boundaries of the solve predictor.
type SolveThresholds struct {
	// SerialBelow is the total row work under which the whole solve runs
	// serially — barriers and goroutine fan-out cost more than a short
	// substitution loop.
	SerialBelow int64
	// BandedFrac: above this banded fraction the system is treated as
	// chain-dominated and the serial crossover is raised (waves would be
	// mostly single-tile levels separated by barriers).
	BandedFrac float64
	// BandedSerialBelow replaces SerialBelow for chain-dominated systems.
	BandedSerialBelow int64
	// GrainRows is the target number of rows per tile used to derive
	// WaveGrain from the average row work: grain ≈ AvgRowWork·GrainRows.
	GrainRows int
	// MinGrain and MaxGrain clamp the derived grain.
	MinGrain, MaxGrain int64
}

// DefaultSolveThresholds mirrors the SpGEMM defaults' spirit: serial
// below ~16k units of work (the plan-pass crossover the rest of the
// pipeline uses), a 4× higher bar for banded systems, and tiles sized
// to amortize a claim without starving the widest levels.
func DefaultSolveThresholds() SolveThresholds {
	return SolveThresholds{
		SerialBelow:       core.DefaultSerialBelow,
		BandedFrac:        0.75,
		BandedSerialBelow: 4 * core.DefaultSerialBelow,
		GrainRows:         256,
		MinGrain:          512,
		MaxGrain:          1 << 16,
	}
}

// PredictSolve maps solve features to execution options and a worker
// configuration: the wave/serial crossover plus coarsening knobs
// derived from the row-work distribution. The returned SolveOpts keeps
// Tri/Transpose/Mask zeroed — callers overlay their own flavor.
func PredictSolve(f SolveFeatures, th SolveThresholds, workers int) (core.SolveOpts, core.Config) {
	cfg := core.DefaultConfig()
	cfg.Schedule = sched.Dynamic
	cfg.Workers = workers

	so := core.SolveOpts{Mode: core.SolveAuto}
	serialBelow := th.SerialBelow
	if f.BandFrac >= th.BandedFrac {
		serialBelow = th.BandedSerialBelow
	}
	so.SerialBelow = serialBelow

	grain := int64(f.AvgRowWork * float64(max(th.GrainRows, 1)))
	if grain < th.MinGrain {
		grain = th.MinGrain
	}
	if grain > th.MaxGrain {
		grain = th.MaxGrain
	}
	so.WaveGrain = grain

	// Merge levels narrower than the worker fan-out: a level that cannot
	// feed every worker pays its barrier without buying parallelism.
	p := sched.Workers(workers)
	so.MergeBelow = max(2*p, core.DefaultMergeBelow)
	return so, cfg
}
