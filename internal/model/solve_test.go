package model

import (
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// tridiag builds the banded worst case: a lower bidiagonal chain where
// every row depends on the previous one.
func tridiag(n int) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](n, n, 0)
	for i := 0; i < n; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i), 2)
		if i > 0 {
			coo.Add(sparse.Index(i), sparse.Index(i-1), 1)
		}
	}
	return coo.ToCSR()
}

// scattered builds a shallow system: rows depend only on a handful of
// far-away early rows, so level sets are wide.
func scattered(n int) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](n, n, 0)
	for i := 0; i < n; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i), 2)
		if i >= n/2 {
			coo.Add(sparse.Index(i), sparse.Index(i%7), 1)
		}
	}
	return coo.ToCSR()
}

func TestExtractSolveFeatures(t *testing.T) {
	n := 1024
	f := ExtractSolve(tridiag(n), nil)
	if f.Rows != n {
		t.Fatalf("Rows = %d, want %d", f.Rows, n)
	}
	if f.Work != int64(2*n-1) {
		t.Fatalf("Work = %d, want %d", f.Work, 2*n-1)
	}
	if f.BandFrac != 1 {
		t.Fatalf("tridiagonal BandFrac = %v, want 1", f.BandFrac)
	}
	g := ExtractSolve(scattered(n), nil)
	if g.BandFrac > 0.5 {
		t.Fatalf("scattered BandFrac = %v, want <= 0.5", g.BandFrac)
	}
	// Masked extraction restricts the work to the mask.
	mask := []sparse.Index{0, 1, 2, 3}
	fm := ExtractSolve(tridiag(n), mask)
	if fm.Rows != 4 || fm.Work != 7 {
		t.Fatalf("masked features = %+v, want Rows=4 Work=7", fm)
	}
}

func TestPredictSolveCrossover(t *testing.T) {
	th := DefaultSolveThresholds()
	// Chain-dominated systems get the raised serial bar.
	banded := ExtractSolve(tridiag(4096), nil)
	soBanded, cfg := PredictSolve(banded, th, 4)
	if soBanded.SerialBelow != th.BandedSerialBelow {
		t.Fatalf("banded SerialBelow = %d, want %d", soBanded.SerialBelow, th.BandedSerialBelow)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("predicted config invalid: %v", err)
	}
	// Scattered systems keep the standard crossover.
	flat := ExtractSolve(scattered(4096), nil)
	soFlat, _ := PredictSolve(flat, th, 4)
	if soFlat.SerialBelow != th.SerialBelow {
		t.Fatalf("scattered SerialBelow = %d, want %d", soFlat.SerialBelow, th.SerialBelow)
	}
	if soFlat.WaveGrain < th.MinGrain || soFlat.WaveGrain > th.MaxGrain {
		t.Fatalf("WaveGrain = %d outside [%d, %d]", soFlat.WaveGrain, th.MinGrain, th.MaxGrain)
	}
	if soFlat.MergeBelow < core.DefaultMergeBelow {
		t.Fatalf("MergeBelow = %d below the default floor", soFlat.MergeBelow)
	}
	// The predicted options must be accepted by the solver end to end.
	b := make([]float64, 4096)
	for i := range b {
		b[i] = float64(i%13) + 1
	}
	dst := make([]float64, len(b))
	if err := core.SolveTriInto[float64, semiring.PlusTimes[float64]](semiring.PlusTimes[float64]{}, dst, scattered(4096), b, cfg, soFlat); err != nil {
		t.Fatalf("predicted options rejected: %v", err)
	}
}
