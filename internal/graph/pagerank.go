package graph

import (
	"fmt"
	"math"

	"maskedspgemm/internal/sparse"
)

// PageRankResult holds the outcome of a PageRank power iteration.
type PageRankResult struct {
	// Rank sums to 1 over all vertices.
	Rank []float64
	// Iterations is the number of power-iteration steps taken.
	Iterations int
	// Delta is the final L1 change between iterations.
	Delta float64
}

// PageRank runs the classic damped power iteration on the (possibly
// directed) graph a until the L1 change drops below tol or maxIter is
// hit. Dangling vertices redistribute uniformly. The per-iteration
// kernel is a sparse vector × matrix product — the unmasked cousin of
// the kernels in internal/core, included to round out the workload set
// the paper's introduction cites. The rank vectors are dense and
// double-buffered, so iterations are already allocation-free; no
// engine workspace is needed.
func PageRank(a *sparse.CSR[float64], damping, tol float64, maxIter int) (*PageRankResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("graph: damping must be in (0,1), got %v", damping)
	}
	n := a.Rows
	if n == 0 {
		return &PageRankResult{}, nil
	}
	outDeg := make([]float64, n)
	for i := 0; i < n; i++ {
		outDeg[i] = float64(a.RowNNZ(i))
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}

	res := &PageRankResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		var dangling float64
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += rank[i]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for j := range next {
			next[j] = base
		}
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				continue
			}
			share := damping * rank[i] / outDeg[i]
			for _, j := range a.RowCols(i) {
				next[j] += share
			}
		}
		res.Delta = 0
		for j := range next {
			res.Delta += math.Abs(next[j] - rank[j])
		}
		rank, next = next, rank
		if res.Delta < tol {
			break
		}
	}
	res.Rank = rank
	return res, nil
}
