package graph

import (
	"math"
	"testing"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sparse"
)

func TestKTrussFusedMatchesUnfused(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		a := smallGraph(seed)
		for _, k := range []int{3, 4, 5} {
			want, err := KTruss(a, k, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			got, err := KTrussFused(a, k, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(got.Truss, want.Truss) {
				t.Fatalf("seed %d k=%d: fused truss differs", seed, k)
			}
			if got.Rounds != want.Rounds || got.Edges != want.Edges {
				t.Fatalf("seed %d k=%d: fused rounds/edges %d/%d, want %d/%d",
					seed, k, got.Rounds, got.Edges, want.Rounds, want.Edges)
			}
		}
	}
}

func TestKTrussFusedWithEngine(t *testing.T) {
	eng := exec.New(exec.Config{})
	cfg := testCfg()
	cfg.Engine = eng
	a := smallGraph(7)
	want, err := KTruss(a, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Run twice through the same engine: warm plans/workspaces must not
	// change the result.
	for i := 0; i < 2; i++ {
		got, err := KTrussFused(a, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(got.Truss, want.Truss) {
			t.Fatalf("pass %d: fused truss differs under engine", i)
		}
	}
}

func TestKTrussFusedRejectsBadK(t *testing.T) {
	if _, err := KTrussFused(smallGraph(1), 2, testCfg()); err == nil {
		t.Error("k=2 accepted")
	}
}

func TestBCBatchFusedMatchesUnfused(t *testing.T) {
	for _, seed := range []uint64{5, 21} {
		a := smallGraph(seed)
		sources := []int{0, 3, 11, 17}
		want, err := BetweennessCentralityBatch(a, sources, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		got, err := BetweennessCentralityBatchFused(a, sources, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("length %d, want %d", len(got), len(want))
		}
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d: bc[%d] = %v, want %v", seed, v, got[v], want[v])
			}
		}
	}
}
