package graph

import (
	"fmt"
	"math"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SSSP computes single-source shortest paths over non-negative edge
// weights (the stored values of a) with the algebraic Bellman-Ford
// iteration: each round relaxes the frontier through a masked sparse
// vector-matrix product over the tropical (min, +) semiring, and only
// vertices whose distance improved carry into the next round — the
// delta-stepping-flavored frontier optimization.
//
// Returns +Inf for unreachable vertices. Negative weights are rejected.
func SSSP(a *sparse.CSR[float64], src int) ([]float64, error) {
	return SSSPWithEngine(a, src, nil)
}

// SSSPWithEngine is SSSP against eng's workspace pool, with the
// frontier and candidate vectors double-buffered across rounds. A nil
// engine builds the scratch once per call.
func SSSPWithEngine(a *sparse.CSR[float64], src int, eng *exec.Engine) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	if src < 0 || src >= a.Rows {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, a.Rows)
	}
	for _, v := range a.Val {
		if v < 0 {
			return nil, fmt.Errorf("graph: SSSP requires non-negative weights, found %v", v)
		}
	}
	n := a.Rows
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0

	sr := semiring.MinPlus[float64]{Inf: math.Inf(1)}
	ws := exec.Dense[float64, semiring.MinPlus[float64]](eng, sr, n, 1, 0)
	defer ws.Release()
	all := func(sparse.Index) bool { return true }
	frontier := &core.SpVec[float64]{N: n, Idx: []sparse.Index{sparse.Index(src)}, Val: []float64{0}}
	cand := &core.SpVec[float64]{}
	next := &core.SpVec[float64]{}

	// Bellman-Ford terminates after at most n-1 productive rounds; the
	// frontier empties earlier on most graphs.
	for round := 0; round < n && frontier.NNZ() > 0; round++ {
		cand = core.MaskedSpVMInto(sr, frontier, a, all, core.Push, ws, cand)
		next.Reset(n)
		for p, v := range cand.Idx {
			if cand.Val[p] < dist[v] {
				dist[v] = cand.Val[p]
				next.Idx = append(next.Idx, v)
				next.Val = append(next.Val, cand.Val[p])
			}
		}
		frontier, next = next, frontier
	}
	return dist, nil
}
