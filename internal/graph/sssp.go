package graph

import (
	"fmt"
	"math"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SSSP computes single-source shortest paths over non-negative edge
// weights (the stored values of a) with the algebraic Bellman-Ford
// iteration: each round relaxes the frontier through a masked sparse
// vector-matrix product over the tropical (min, +) semiring, and only
// vertices whose distance improved carry into the next round — the
// delta-stepping-flavored frontier optimization.
//
// Returns +Inf for unreachable vertices. Negative weights are rejected.
func SSSP(a *sparse.CSR[float64], src int) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	if src < 0 || src >= a.Rows {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, a.Rows)
	}
	for _, v := range a.Val {
		if v < 0 {
			return nil, fmt.Errorf("graph: SSSP requires non-negative weights, found %v", v)
		}
	}
	n := a.Rows
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0

	sr := semiring.MinPlus[float64]{Inf: math.Inf(1)}
	all := func(sparse.Index) bool { return true }
	frontier := &core.SpVec[float64]{N: n, Idx: []sparse.Index{sparse.Index(src)}, Val: []float64{0}}

	// Bellman-Ford terminates after at most n-1 productive rounds; the
	// frontier empties earlier on most graphs.
	for round := 0; round < n && frontier.NNZ() > 0; round++ {
		cand := core.MaskedSpVM(sr, frontier, a, all, core.Push)
		next := &core.SpVec[float64]{N: n}
		for p, v := range cand.Idx {
			if cand.Val[p] < dist[v] {
				dist[v] = cand.Val[p]
				next.Idx = append(next.Idx, v)
				next.Val = append(next.Val, cand.Val[p])
			}
		}
		frontier = next
	}
	return dist, nil
}
