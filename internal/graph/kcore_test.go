package graph

import (
	"testing"
	"testing/quick"

	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

// bruteCoreness peels naively: repeatedly delete vertices with degree
// < k for rising k.
func bruteCoreness(a *sparse.CSR[float64]) []int32 {
	n := a.Rows
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = int32(a.RowNNZ(v))
	}
	remaining := n
	for k := int32(0); remaining > 0; k++ {
		for {
			removed := false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					alive[v] = false
					core[v] = k
					remaining--
					removed = true
					for _, u := range a.RowCols(v) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
			if !removed {
				break
			}
		}
	}
	return core
}

func TestKCoreMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		a := graphgen.ErdosRenyi(50, 140, seed)
		res, err := KCore(a)
		if err != nil {
			return false
		}
		want := bruteCoreness(a)
		for v := range want {
			if res.Core[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKCoreKnownGraphs(t *testing.T) {
	// K5: every vertex has coreness 4.
	coo := sparse.NewCOO[float64](5, 5, 20)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				coo.Add(sparse.Index(i), sparse.Index(j), 1)
			}
		}
	}
	res, err := KCore(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Core {
		if c != 4 {
			t.Errorf("K5 core[%d] = %d, want 4", v, c)
		}
	}
	if res.MaxCore != 4 {
		t.Errorf("K5 degeneracy = %d, want 4", res.MaxCore)
	}

	// Path graph: everything is 1-core.
	coo = sparse.NewCOO[float64](4, 4, 6)
	for i := 0; i < 3; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i+1), 1)
		coo.Add(sparse.Index(i+1), sparse.Index(i), 1)
	}
	res, err = KCore(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Core {
		if c != 1 {
			t.Errorf("path core[%d] = %d, want 1", v, c)
		}
	}
}

func TestKTrussInsideKCore(t *testing.T) {
	// Structural theorem: every vertex of the (k+1)-truss lies in the
	// k-core. Cross-validates the two peeling algorithms.
	a := graphgen.RMAT(8, 10, 0.57, 0.19, 0.19, 33)
	cores, err := KCore(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 4, 5} {
		truss, err := KTruss(a, k+1, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < truss.Truss.Rows; v++ {
			if truss.Truss.RowNNZ(v) > 0 && cores.Core[v] < int32(k) {
				t.Fatalf("vertex %d in %d-truss but only %d-core", v, k+1, cores.Core[v])
			}
		}
	}
}

func TestKCoreEmptyAndErrors(t *testing.T) {
	z := sparse.NewCSR[float64](0, 0, 0)
	if res, err := KCore(z); err != nil || len(res.Core) != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	rect := sparse.NewCSR[float64](3, 4, 0)
	if _, err := KCore(rect); err == nil {
		t.Error("rectangular accepted")
	}
}
