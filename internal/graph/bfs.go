package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// BFSResult holds the outcome of a breadth-first search.
type BFSResult struct {
	// Level[v] is the hop distance from the source, or -1 if unreachable.
	Level []int32
	// Visited is the number of reachable vertices (including the source).
	Visited int
	// Pushes and Pulls count the per-level direction decisions — the
	// vector-level analogue of the paper's iteration-space statistics.
	Pushes, Pulls int
}

// BFS runs a direction-optimizing breadth-first search (Beamer et al.,
// the paper's reference [15]) from src over the graph with adjacency
// matrix a, implemented as iterated masked sparse vector-matrix products
// over the Boolean semiring. dir selects Push, Pull, or Auto per level.
func BFS(a *sparse.CSR[float64], src int, dir core.Direction) (*BFSResult, error) {
	return BFSWithEngine(a, src, dir, nil)
}

// BFSWithEngine is BFS drawing its dense traversal scratch from eng's
// workspace pool, so repeated searches (ConnectedComponents, BC
// sampling) recycle one scratch block instead of allocating per level.
// The frontier vectors are double-buffered either way; a nil engine
// builds the scratch once per call.
func BFSWithEngine(a *sparse.CSR[float64], src int, dir core.Direction, eng *exec.Engine) (*BFSResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	if src < 0 || src >= a.Rows {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, a.Rows)
	}
	switch dir {
	case core.Push, core.Pull, core.Auto:
	default:
		return nil, fmt.Errorf("graph: unknown direction %d", dir)
	}
	res := &BFSResult{Level: make([]int32, a.Rows)}
	for i := range res.Level {
		res.Level[i] = -1
	}
	res.Level[src] = 0
	res.Visited = 1

	sr := semiring.OrAnd[float64]{}
	ws := exec.Dense[float64, semiring.OrAnd[float64]](eng, sr, a.Rows, 1, 0)
	defer ws.Release()
	frontier := &core.SpVec[float64]{N: a.Rows, Idx: []sparse.Index{sparse.Index(src)}, Val: []float64{1}}
	spare := &core.SpVec[float64]{}
	allowed := func(j sparse.Index) bool { return res.Level[j] < 0 }

	for depth := int32(1); frontier.NNZ() > 0; depth++ {
		d := dir
		if d == core.Auto {
			d = chooseBFSDirection(frontier, a, res.Visited)
		}
		if d == core.Push {
			res.Pushes++
		} else {
			res.Pulls++
		}
		next := core.MaskedSpVMInto(sr, frontier, a, allowed, d, ws, spare)
		for _, v := range next.Idx {
			res.Level[v] = depth
		}
		res.Visited += next.NNZ()
		frontier, spare = next, frontier
	}
	return res, nil
}

// chooseBFSDirection applies the classic direction-optimization rule:
// pull when the frontier's outgoing edges outnumber a fraction of the
// unexplored edges, push otherwise.
func chooseBFSDirection(f *core.SpVec[float64], a *sparse.CSR[float64], visited int) core.Direction {
	var frontierEdges int64
	for _, u := range f.Idx {
		frontierEdges += a.RowNNZ(int(u))
	}
	remaining := a.NNZ() * int64(a.Rows-visited) / int64(max(a.Rows, 1))
	const alpha = 4 // Beamer's switching parameter
	if frontierEdges*alpha > remaining {
		return core.Pull
	}
	return core.Push
}

// ConnectedComponents counts connected components by repeated BFS — a
// substrate-level utility the examples and tests use to sanity-check
// generated graphs. The per-source searches share one pooled scratch
// through an ephemeral engine.
func ConnectedComponents(a *sparse.CSR[float64]) (int, error) {
	eng := exec.New(exec.Config{})
	seen := make([]bool, a.Rows)
	comps := 0
	for v := 0; v < a.Rows; v++ {
		if seen[v] {
			continue
		}
		comps++
		res, err := BFSWithEngine(a, v, core.Push, eng)
		if err != nil {
			return 0, err
		}
		for u, lvl := range res.Level {
			if lvl >= 0 {
				seen[u] = true
			}
		}
	}
	return comps, nil
}
