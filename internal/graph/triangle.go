// Package graph builds the graph-analytics workloads that motivate the
// masked-SpGEMM kernel (paper §I): triangle counting — the paper's
// benchmark — plus k-truss, breadth-first search, and betweenness
// centrality, all expressed over the kernels in internal/core.
package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TriangleMethod selects a linear-algebraic triangle-counting
// formulation (Azad et al., the paper's reference [9]/[20]).
type TriangleMethod int

const (
	// Burkhardt computes C = A ⊙ (A×A) and divides the sum by 6 — the
	// exact kernel the paper benchmarks (§IV-A: "we fix the matrix A and
	// compute C = A ⊙ (A×A), the main kernel used in triangle counting").
	Burkhardt TriangleMethod = iota
	// SandiaLL computes C = L ⊙ (L×L) over the strictly lower triangle;
	// each triangle is counted exactly once.
	SandiaLL
	// Cohen computes C = A ⊙ (L×U) and divides the sum by 2.
	Cohen
)

func (m TriangleMethod) String() string {
	switch m {
	case Burkhardt:
		return "Burkhardt"
	case SandiaLL:
		return "SandiaLL"
	case Cohen:
		return "Cohen"
	default:
		return "Unknown"
	}
}

// TriangleCount counts triangles in the undirected simple graph whose
// adjacency matrix is a (symmetric, zero diagonal, unit values), using
// the chosen formulation and kernel configuration.
func TriangleCount(
	a *sparse.CSR[float64], method TriangleMethod, cfg core.Config,
) (int64, error) {
	sr := semiring.PlusPair[float64]{}
	var c *sparse.CSR[float64]
	var err error
	var div float64 = 1
	switch method {
	case Burkhardt:
		c, err = core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
		div = 6
	case SandiaLL:
		l := sparse.Tril(a)
		c, err = core.MaskedSpGEMM[float64](sr, l, l, l, cfg)
	case Cohen:
		l, u := sparse.Tril(a), sparse.Triu(a)
		c, err = core.MaskedSpGEMM[float64](sr, a, l, u, cfg)
		div = 2
	default:
		return 0, fmt.Errorf("graph: unknown triangle method %d", method)
	}
	if err != nil {
		return 0, err
	}
	total := sparse.SumValues(c)
	count := total / div
	if count != float64(int64(count)) {
		return 0, fmt.Errorf("graph: non-integral triangle count %v/%v (is the graph symmetric and simple?)", total, div)
	}
	return int64(count), nil
}

// TriangleSupport returns S = A ⊙ (A×A): for every edge, the number of
// triangles it participates in. This is the inner kernel of k-truss.
func TriangleSupport(a *sparse.CSR[float64], cfg core.Config) (*sparse.CSR[float64], error) {
	return core.MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, a, a, a, cfg)
}
