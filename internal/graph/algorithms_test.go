package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

func TestConnectedComponentsLabelPropMatchesBFS(t *testing.T) {
	f := func(seed uint64) bool {
		a := graphgen.ErdosRenyi(60, 50, seed) // sparse enough to fragment
		viaBFS, err := ConnectedComponents(a)
		if err != nil {
			return false
		}
		res, err := ConnectedComponentsLabelProp(a)
		if err != nil {
			return false
		}
		if res.Components != viaBFS {
			return false
		}
		// Labels must be consistent: same component ⟺ same label.
		for i := 0; i < a.Rows; i++ {
			for _, j := range a.RowCols(i) {
				if res.Label[i] != res.Label[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponentsLabelIsMinimum(t *testing.T) {
	// Two disjoint triangles: labels must be the smallest ids, 0 and 3.
	coo := sparse.NewCOO[float64](6, 6, 12)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		coo.Add(sparse.Index(e[0]), sparse.Index(e[1]), 1)
		coo.Add(sparse.Index(e[1]), sparse.Index(e[0]), 1)
	}
	res, err := ConnectedComponentsLabelProp(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 0, 3, 3, 3}
	for v, l := range res.Label {
		if l != want[v] {
			t.Errorf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
	if res.Components != 2 {
		t.Errorf("components = %d, want 2", res.Components)
	}
}

// bruteDijkstra is the SSSP oracle.
func bruteDijkstra(a *sparse.CSR[float64], src int) []float64 {
	n := a.Rows
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		cols, w := a.Row(u)
		for p, v := range cols {
			if d := dist[u] + w[p]; d < dist[v] {
				dist[v] = d
			}
		}
	}
}

func weightedGraph(n, edges int, seed int64) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](n, n, int64(edges*2))
	for e := 0; e < edges; e++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		w := float64(r.Intn(9) + 1)
		coo.Add(sparse.Index(i), sparse.Index(j), w)
		coo.Add(sparse.Index(j), sparse.Index(i), w)
	}
	m := coo.ToCSR()
	// Duplicate edges summed their weights; rescale to keep them small
	// and positive (any positive value works for the oracle comparison).
	return m
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		a := weightedGraph(40, 100, seed)
		src := int(uint(seed) % 40)
		got, err := SSSP(a, src)
		if err != nil {
			return false
		}
		want := bruteDijkstra(a, src)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				return false
			}
			if !math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSSSPPathGraph(t *testing.T) {
	// 0 -2- 1 -3- 2: distances 0, 2, 5.
	coo := sparse.NewCOO[float64](3, 3, 4)
	coo.Add(0, 1, 2)
	coo.Add(1, 0, 2)
	coo.Add(1, 2, 3)
	coo.Add(2, 1, 3)
	dist, err := SSSP(coo.ToCSR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 5}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestSSSPErrors(t *testing.T) {
	a := weightedGraph(10, 20, 1)
	if _, err := SSSP(a, -1); err == nil {
		t.Error("negative source accepted")
	}
	coo := sparse.NewCOO[float64](2, 2, 1)
	coo.Add(0, 1, -1)
	if _, err := SSSP(coo.ToCSR(), 0); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestPageRankProperties(t *testing.T) {
	a := graphgen.RMAT(8, 8, 0.57, 0.19, 0.19, 5)
	res, err := PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	minRank := math.Inf(1)
	for _, r := range res.Rank {
		sum += r
		if r < minRank {
			minRank = r
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	if minRank <= 0 {
		t.Errorf("non-positive rank %v", minRank)
	}
	if res.Delta > 1e-9 {
		t.Errorf("did not converge: delta %v after %d iters", res.Delta, res.Iterations)
	}

	// The highest-degree vertex should outrank the median vertex on a
	// symmetric scale-free graph.
	deg := sparse.RowDegrees(a)
	hub, hubDeg := 0, int64(0)
	for v, d := range deg {
		if d > hubDeg {
			hub, hubDeg = v, d
		}
	}
	median := res.Rank[len(res.Rank)/2]
	if res.Rank[hub] <= median {
		t.Errorf("hub rank %v not above median %v", res.Rank[hub], median)
	}
}

func TestPageRankStarGraph(t *testing.T) {
	// Star: center 0 connected to 1..4, undirected. Center must have the
	// highest rank, leaves all equal.
	coo := sparse.NewCOO[float64](5, 5, 8)
	for v := 1; v < 5; v++ {
		coo.Add(0, sparse.Index(v), 1)
		coo.Add(sparse.Index(v), 0, 1)
	}
	res, err := PageRank(coo.ToCSR(), 0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v < 5; v++ {
		if math.Abs(res.Rank[v]-res.Rank[1]) > 1e-9 {
			t.Errorf("leaf ranks differ: %v vs %v", res.Rank[v], res.Rank[1])
		}
	}
	if res.Rank[0] <= res.Rank[1] {
		t.Error("center does not outrank leaves")
	}
}

func TestPageRankDangling(t *testing.T) {
	// Directed chain with a dangling sink: 0 -> 1 -> 2. Must still sum
	// to 1 and terminate.
	coo := sparse.NewCOO[float64](3, 3, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 1)
	res, err := PageRank(coo.ToCSR(), 0.85, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v with dangling vertex", sum)
	}
	if !(res.Rank[2] > res.Rank[1] && res.Rank[1] > res.Rank[0]) {
		t.Errorf("chain ordering wrong: %v", res.Rank)
	}
}

func TestPageRankErrors(t *testing.T) {
	a := graphgen.ErdosRenyi(10, 20, 1)
	if _, err := PageRank(a, 0, 1e-6, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, err := PageRank(a, 1, 1e-6, 10); err == nil {
		t.Error("damping 1 accepted")
	}
	rect := sparse.NewCSR[float64](3, 4, 0)
	if _, err := PageRank(rect, 0.85, 1e-6, 10); err == nil {
		t.Error("rectangular matrix accepted")
	}
}
