package graph

import (
	"fmt"
	"math"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// CCResult is the outcome of an algebraic connected-components run.
type CCResult struct {
	// Label[v] is the component representative of v (the smallest vertex
	// id in its component).
	Label []int32
	// Components is the number of distinct components.
	Components int
	// Iterations is the number of label-propagation rounds.
	Iterations int
}

// ConnectedComponentsLabelProp computes connected components by
// algebraic label propagation: every vertex starts with its own id as
// label, and each round pushes labels along edges keeping the minimum —
// a masked sparse vector-matrix product over the (min, first) semiring.
// Only vertices whose label changed stay in the frontier, so rounds
// shrink as the labels converge (in O(diameter) rounds).
func ConnectedComponentsLabelProp(a *sparse.CSR[float64]) (*CCResult, error) {
	return ConnectedComponentsLabelPropWithEngine(a, nil)
}

// ConnectedComponentsLabelPropWithEngine is the label-propagation run
// against eng's workspace pool: the push scratch is checked out once for
// the whole run, and the frontier/candidate vectors are double-buffered,
// so warm iterations allocate nothing. A nil engine builds the scratch
// once per call.
func ConnectedComponentsLabelPropWithEngine(a *sparse.CSR[float64], eng *exec.Engine) (*CCResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	label := make([]float64, n)
	frontier := &core.SpVec[float64]{N: n, Idx: make([]sparse.Index, n), Val: make([]float64, n)}
	for v := 0; v < n; v++ {
		label[v] = float64(v)
		frontier.Idx[v] = sparse.Index(v)
		frontier.Val[v] = float64(v)
	}

	sr := semiring.MinFirst[float64]{Inf: math.Inf(1)}
	ws := exec.Dense[float64, semiring.MinFirst[float64]](eng, sr, n, 1, 0)
	defer ws.Release()
	all := func(sparse.Index) bool { return true }
	// Three rotating buffers: the live frontier, the product candidates,
	// and the improvements that become the next frontier.
	cand := &core.SpVec[float64]{}
	next := &core.SpVec[float64]{}
	iters := 0
	for frontier.NNZ() > 0 {
		iters++
		cand = core.MaskedSpVMInto(sr, frontier, a, all, core.Push, ws, cand)
		// Keep only strict improvements; they form the next frontier.
		next.Reset(n)
		for p, v := range cand.Idx {
			if cand.Val[p] < label[v] {
				label[v] = cand.Val[p]
				next.Idx = append(next.Idx, v)
				next.Val = append(next.Val, cand.Val[p])
			}
		}
		frontier, next = next, frontier
	}

	res := &CCResult{Label: make([]int32, n), Iterations: iters}
	seen := map[int32]bool{}
	for v := 0; v < n; v++ {
		res.Label[v] = int32(label[v])
		if !seen[res.Label[v]] {
			seen[res.Label[v]] = true
			res.Components++
		}
	}
	return res, nil
}
