package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// BetweennessCentrality computes (unnormalized) betweenness centrality
// contributions from the given source vertices via Brandes' algorithm
// expressed algebraically (the paper's reference [16]): the forward
// phase is iterated masked sparse vector-matrix products over the
// arithmetic semiring (path counting with the unvisited complement
// mask), the backward phase the standard dependency accumulation.
//
// For exact BC pass all vertices as sources; any subset yields the
// standard sampled approximation.
func BetweennessCentrality(a *sparse.CSR[float64], sources []int) ([]float64, error) {
	return BetweennessCentralityWithEngine(a, sources, nil)
}

// BetweennessCentralityWithEngine is BetweennessCentrality against
// eng's workspace pool. The forward phase must retain every frontier
// for the backward sweep, so frontiers cannot be double-buffered within
// one source — instead the per-depth vectors live in an arena that is
// reused across sources, and the push scratch is checked out once for
// the whole batch. After the first source, warm iterations allocate
// nothing. A nil engine builds the scratch once per call.
func BetweennessCentralityWithEngine(a *sparse.CSR[float64], sources []int, eng *exec.Engine) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	bc := make([]float64, n)
	sr := semiring.PlusTimes[float64]{}
	ws := exec.Dense[float64, semiring.PlusTimes[float64]](eng, sr, n, 1, 0)
	defer ws.Release()

	sigma := make([]float64, n)
	level := make([]int32, n)
	delta := make([]float64, n)

	// Frontier arena: bufs[d] is the depth-d frontier of the current
	// source, storage reused for every source.
	var bufs []*core.SpVec[float64]
	frontAt := func(d int) *core.SpVec[float64] {
		for len(bufs) <= d {
			bufs = append(bufs, &core.SpVec[float64]{})
		}
		return bufs[d]
	}

	for _, src := range sources {
		if src < 0 || src >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, n)
		}
		for i := range sigma {
			sigma[i] = 0
			level[i] = -1
			delta[i] = 0
		}
		sigma[src] = 1
		level[src] = 0

		frontier := frontAt(0)
		frontier.Reset(n)
		frontier.Idx = append(frontier.Idx, sparse.Index(src))
		frontier.Val = append(frontier.Val, 1)
		depths := 1
		allowed := func(j sparse.Index) bool { return level[j] < 0 }

		for depth := int32(1); frontier.NNZ() > 0; depth++ {
			next := core.MaskedSpVMInto(sr, frontier, a, allowed, core.Push, ws, frontAt(depths))
			for p, v := range next.Idx {
				level[v] = depth
				sigma[v] = next.Val[p]
			}
			if next.NNZ() == 0 {
				break
			}
			depths++
			frontier = next
		}

		// Backward dependency accumulation, deepest level first.
		for d := depths - 1; d >= 1; d-- {
			for _, u := range bufs[d-1].Idx {
				cols, _ := a.Row(int(u))
				var dep float64
				for _, v := range cols {
					if level[v] == int32(d) {
						dep += sigma[u] / sigma[v] * (1 + delta[v])
					}
				}
				delta[u] = dep
			}
		}
		for v := 0; v < n; v++ {
			if v != src && level[v] >= 0 {
				bc[v] += delta[v]
			}
		}
	}
	return bc, nil
}
