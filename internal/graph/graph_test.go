package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

// bruteTriangles counts triangles by enumerating vertex triples over the
// adjacency structure — the oracle for the algebraic formulations.
func bruteTriangles(a *sparse.CSR[float64]) int64 {
	var count int64
	for i := 0; i < a.Rows; i++ {
		for _, j := range a.RowCols(i) {
			if int(j) <= i {
				continue
			}
			for _, k := range a.RowCols(int(j)) {
				if int(k) <= int(j) {
					continue
				}
				if a.Has(i, k) {
					count++
				}
			}
		}
	}
	return count
}

func smallGraph(seed uint64) *sparse.CSR[float64] {
	return graphgen.ErdosRenyi(40, 150, seed)
}

func testCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = 2
	cfg.Tiles = 8
	return cfg
}

func TestTriangleCountMethodsAgreeWithBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		a := smallGraph(seed)
		want := bruteTriangles(a)
		for _, m := range []TriangleMethod{Burkhardt, SandiaLL, Cohen} {
			got, err := TriangleCount(a, m, testCfg())
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// Complete graph K5 has C(5,3) = 10 triangles.
	coo := sparse.NewCOO[float64](5, 5, 20)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				coo.Add(sparse.Index(i), sparse.Index(j), 1)
			}
		}
	}
	k5 := coo.ToCSR()
	for _, m := range []TriangleMethod{Burkhardt, SandiaLL, Cohen} {
		got, err := TriangleCount(k5, m, testCfg())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != 10 {
			t.Errorf("%v: K5 triangles = %d, want 10", m, got)
		}
	}

	// A 4-cycle has none.
	coo = sparse.NewCOO[float64](4, 4, 8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		coo.Add(sparse.Index(e[0]), sparse.Index(e[1]), 1)
		coo.Add(sparse.Index(e[1]), sparse.Index(e[0]), 1)
	}
	got, err := TriangleCount(coo.ToCSR(), Burkhardt, testCfg())
	if err != nil || got != 0 {
		t.Errorf("square triangles = %d (%v), want 0", got, err)
	}
}

func TestKTrussK3IsTriangleEdges(t *testing.T) {
	// The 3-truss keeps exactly the edges with at least one triangle.
	a := smallGraph(99)
	res, err := KTruss(a, 3, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	support, err := TriangleSupport(a, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Every kept edge must have support >= 1 in the original graph... but
	// k-truss iterates, so kept edges need support >= 1 within the truss.
	finalSupport, err := TriangleSupport(res.Truss, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Truss.Rows; i++ {
		for _, j := range res.Truss.RowCols(i) {
			if finalSupport.At(i, j) < 1 {
				t.Fatalf("3-truss edge (%d,%d) has no triangle", i, j)
			}
		}
	}
	// Monotonicity: the truss is a subgraph.
	if res.Truss.NNZ() > a.NNZ() {
		t.Error("truss grew")
	}
	_ = support
}

func TestKTrussCompleteGraph(t *testing.T) {
	// K6: every edge has 4 triangles, so the 6-truss (need >= 4) is K6
	// itself and the 7-truss is empty.
	coo := sparse.NewCOO[float64](6, 6, 30)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j {
				coo.Add(sparse.Index(i), sparse.Index(j), 1)
			}
		}
	}
	k6 := coo.ToCSR()
	res, err := KTruss(k6, 6, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 15 {
		t.Errorf("6-truss of K6 has %d edges, want 15", res.Edges)
	}
	res, err = KTruss(k6, 7, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 0 {
		t.Errorf("7-truss of K6 has %d edges, want 0", res.Edges)
	}
}

func TestKTrussRejectsBadK(t *testing.T) {
	if _, err := KTruss(smallGraph(1), 2, testCfg()); err == nil {
		t.Error("k=2 accepted")
	}
}

// bruteBFS computes hop distances with a simple queue.
func bruteBFS(a *sparse.CSR[float64], src int) []int32 {
	level := make([]int32, a.Rows)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range a.RowCols(u) {
			if level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return level
}

func TestBFSMatchesBruteForce(t *testing.T) {
	for _, dir := range []core.Direction{core.Push, core.Pull, core.Auto} {
		f := func(seed uint64) bool {
			a := graphgen.ErdosRenyi(50, 120, seed)
			src := int(seed % 50)
			got, err := BFS(a, src, dir)
			if err != nil {
				return false
			}
			want := bruteBFS(a, src)
			for v := range want {
				if got.Level[v] != want[v] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("dir=%v: %v", dir, err)
		}
	}
}

func TestBFSPathGraph(t *testing.T) {
	// 0-1-2-3-4 path: levels are the indices.
	coo := sparse.NewCOO[float64](5, 5, 8)
	for i := 0; i < 4; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i+1), 1)
		coo.Add(sparse.Index(i+1), sparse.Index(i), 1)
	}
	res, err := BFS(coo.ToCSR(), 0, core.Auto)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Level {
		if l != int32(i) {
			t.Errorf("level[%d] = %d, want %d", i, l, i)
		}
	}
	if res.Visited != 5 {
		t.Errorf("visited %d, want 5", res.Visited)
	}
}

func TestBFSErrors(t *testing.T) {
	a := smallGraph(3)
	if _, err := BFS(a, -1, core.Push); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := BFS(a, a.Rows, core.Push); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint triangles: 2 components.
	coo := sparse.NewCOO[float64](6, 6, 12)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		coo.Add(sparse.Index(e[0]), sparse.Index(e[1]), 1)
		coo.Add(sparse.Index(e[1]), sparse.Index(e[0]), 1)
	}
	n, err := ConnectedComponents(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("components = %d, want 2", n)
	}
}

// bruteBC is Brandes' algorithm implemented directly for the oracle.
func bruteBC(a *sparse.CSR[float64], sources []int) []float64 {
	n := a.Rows
	bc := make([]float64, n)
	for _, s := range sources {
		sigma := make([]float64, n)
		dist := make([]int32, n)
		delta := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		var order []int
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range a.RowCols(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, int(v))
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for p := len(order) - 1; p >= 0; p-- {
			u := order[p]
			for _, v := range a.RowCols(u) {
				if dist[v] == dist[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != s {
				bc[u] += delta[u]
			}
		}
	}
	return bc
}

func TestBetweennessCentralityMatchesBrandes(t *testing.T) {
	f := func(seed uint64) bool {
		a := graphgen.ErdosRenyi(25, 60, seed)
		sources := []int{0, 5, 11}
		got, err := BetweennessCentrality(a, sources)
		if err != nil {
			return false
		}
		want := bruteBC(a, sources)
		for v := range want {
			if diff := got[v] - want[v]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBetweennessCentralityBatchMatchesBrandes(t *testing.T) {
	f := func(seed uint64) bool {
		a := graphgen.ErdosRenyi(30, 70, seed)
		sources := []int{0, 7, 13, 21}
		got, err := BetweennessCentralityBatch(a, sources, testCfg())
		if err != nil {
			return false
		}
		want := bruteBC(a, sources)
		for v := range want {
			if diff := got[v] - want[v]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBetweennessCentralityBatchMatchesVector(t *testing.T) {
	a := graphgen.RMAT(7, 6, 0.57, 0.19, 0.19, 77)
	sources := []int{1, 2, 3, 5, 8, 13}
	batch, err := BetweennessCentralityBatch(a, sources, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	vector, err := BetweennessCentrality(a, sources)
	if err != nil {
		t.Fatal(err)
	}
	for v := range batch {
		if diff := batch[v] - vector[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bc[%d]: batch %v vs vector %v", v, batch[v], vector[v])
		}
	}
}

func TestBetweennessCentralityBatchEdges(t *testing.T) {
	a := smallGraph(5)
	if bc, err := BetweennessCentralityBatch(a, nil, testCfg()); err != nil || len(bc) != a.Rows {
		t.Errorf("empty batch: %v %v", bc, err)
	}
	if _, err := BetweennessCentralityBatch(a, []int{-1}, testCfg()); err == nil {
		t.Error("bad source accepted")
	}
}

func TestBetweennessCentralityPath(t *testing.T) {
	// Path 0-1-2: vertex 1 lies on the single shortest path between the
	// endpoints; from all sources its unnormalized BC is 2 (1 from each
	// direction).
	coo := sparse.NewCOO[float64](3, 3, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 1, 1)
	a := coo.ToCSR()
	bc, err := BetweennessCentrality(a, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if bc[1] != 2 || bc[0] != 0 || bc[2] != 0 {
		t.Errorf("bc = %v, want [0 2 0]", bc)
	}
}

func TestTriangleCountRandomizedConfigs(t *testing.T) {
	// Triangle counts must be invariant across kernel configurations.
	a := graphgen.RMAT(8, 8, 0.57, 0.19, 0.19, 12345)
	want := bruteTriangles(a)
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		cfg := testCfg()
		cfg.Iteration = core.IterationSpace(r.Intn(4))
		cfg.Tiles = r.Intn(32) + 1
		cfg.MarkerBits = []int{8, 16, 32, 64}[r.Intn(4)]
		got, err := TriangleCount(a, Burkhardt, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if got != want {
			t.Fatalf("%v: count %d, want %d", cfg, got, want)
		}
	}
}
