package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// BetweennessCentralityBatch computes the same quantity as
// BetweennessCentrality but processes all sources simultaneously as an
// n×s matrix computation — the algebraic batched-Brandes formulation
// (the paper's reference [16] scales BC exactly this way). Every phase
// is a masked SpGEMM on rectangular operands:
//
//	forward:  F_{d+1} = ¬V ⊙ (A × F_d)        (complement mask: unvisited)
//	backward: T      = F_{d-1} ⊙ (A × W_d)    (mask: the previous front)
//
// so the batch variant exercises the exact kernels this repository
// studies, at batch width s instead of vector width 1.
func BetweennessCentralityBatch(a *sparse.CSR[float64], sources []int, cfg core.Config) ([]float64, error) {
	return bcBatch(a, sources, cfg, false)
}

// BetweennessCentralityBatchFused is BetweennessCentralityBatch with
// the backward sweep's masked multiply streamed: each dependency row
// T[u,:] = (F_{d-1} ⊙ (A × W_d))[u,:] is folded into the delta vector
// straight from the worker's gather buffer via core.MaskedSpGEMMStream,
// so the per-level dependency matrix is never assembled as a CSR. Rows
// are delivered disjointly, and row u only writes delta[u*s..], so the
// sink needs no locking. Results are identical to the unfused batch.
func BetweennessCentralityBatchFused(a *sparse.CSR[float64], sources []int, cfg core.Config) ([]float64, error) {
	return bcBatch(a, sources, cfg, true)
}

func bcBatch(a *sparse.CSR[float64], sources []int, cfg core.Config, fused bool) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	s := len(sources)
	bc := make([]float64, n)
	if s == 0 || n == 0 {
		return bc, nil
	}
	sr := semiring.PlusTimes[float64]{}

	// Initial frontier and visited set: entry (src_b, b) = 1.
	front := sparse.NewCOO[float64](n, s, int64(s))
	for b, src := range sources {
		if src < 0 || src >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, n)
		}
		front.Add(sparse.Index(src), sparse.Index(b), 1)
	}
	f := front.ToCSR()
	visited := f.Clone()

	// sigma[v*s+b] accumulates shortest-path counts.
	sigma := make([]float64, n*s)
	for b, src := range sources {
		sigma[src*s+b] = 1
	}

	// Forward sweep: store each front for the backward phase.
	fronts := []*sparse.CSR[float64]{f}
	for f.NNZ() > 0 {
		next, err := core.MaskedSpGEMMComp[float64](sr, visited, a, f, cfg)
		if err != nil {
			return nil, err
		}
		if next.NNZ() == 0 {
			break
		}
		for i := 0; i < n; i++ {
			cols, vals := next.Row(i)
			for p, b := range cols {
				sigma[i*s+int(b)] += vals[p]
			}
		}
		patt := next.Pattern()
		visited, err = core.EWiseAdd[float64](sr, visited, patt)
		if err != nil {
			return nil, err
		}
		fronts = append(fronts, next)
		f = next
	}

	// Backward sweep: dependency accumulation, deepest front first.
	delta := make([]float64, n*s)
	for d := len(fronts) - 1; d >= 1; d-- {
		// W_d: the front-d pattern carrying (1+delta)/sigma.
		w := fronts[d].Clone()
		for i := 0; i < n; i++ {
			lo, hi := w.RowPtr[i], w.RowPtr[i+1]
			for p := lo; p < hi; p++ {
				b := int(w.ColIdx[p])
				w.Val[p] = (1 + delta[i*s+b]) / sigma[i*s+b]
			}
		}
		// T = F_{d-1} ⊙ (A × W_d): for u in front d-1, the sum over
		// neighbors v in front d of (1+delta_v)/sigma_v.
		if fused {
			err := core.MaskedSpGEMMStream[float64](sr, fronts[d-1], a, w, cfg,
				func(i int, cols []sparse.Index, vals []float64) {
					base := i * s
					for p, b := range cols {
						delta[base+int(b)] += vals[p] * sigma[base+int(b)]
					}
				})
			if err != nil {
				return nil, err
			}
			continue
		}
		tm, err := core.MaskedSpGEMM[float64](sr, fronts[d-1], a, w, cfg)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			cols, vals := tm.Row(i)
			for p, b := range cols {
				delta[i*s+int(b)] += vals[p] * sigma[i*s+int(b)]
			}
		}
	}

	for b, src := range sources {
		for v := 0; v < n; v++ {
			if v != src {
				bc[v] += delta[v*s+b]
			}
		}
	}
	return bc, nil
}
