package graph

import (
	"fmt"

	"maskedspgemm/internal/sparse"
)

// KCoreResult holds a k-core decomposition.
type KCoreResult struct {
	// Core[v] is the coreness of v: the largest k such that v belongs to
	// the k-core (the maximal subgraph with minimum degree ≥ k).
	Core []int32
	// MaxCore is the degeneracy of the graph.
	MaxCore int32
}

// KCore computes the full core decomposition by peeling: repeatedly
// remove the minimum-degree vertices, recording the k at which each
// vertex falls. It is the degree-oriented sibling of k-truss (which
// peels by edge triangle-support via the masked SpGEMM) and the tests
// use the containment relation between the two: the (k+1)-truss is
// always inside the k-core.
func KCore(a *sparse.CSR[float64]) (*KCoreResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: adjacency must be square, got %dx%d",
			sparse.ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	res := &KCoreResult{Core: make([]int32, n)}
	if n == 0 {
		return res, nil
	}

	// Bucketed peeling (Batagelj–Zaveršnik): O(n + m).
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(a.RowNNZ(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bucket[d] holds the vertices of current degree d; pos/vert give
	// each vertex's location for O(1) bucket moves.
	bin := make([]int32, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int32, n)
	vert := make([]int32, n)
	next := append([]int32(nil), bin[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		p := next[deg[v]]
		next[deg[v]]++
		pos[v] = p
		vert[p] = int32(v)
	}

	curDeg := append([]int32(nil), deg...)
	for p := 0; p < n; p++ {
		v := vert[p]
		res.Core[v] = curDeg[v]
		if curDeg[v] > res.MaxCore {
			res.MaxCore = curDeg[v]
		}
		for _, u := range a.RowCols(int(v)) {
			if curDeg[u] <= curDeg[v] {
				continue
			}
			// Move u one bucket down: swap it with the first vertex of
			// its bucket, then shrink the bucket boundary.
			du := curDeg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pu], vert[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			curDeg[u]--
		}
	}
	return res, nil
}
