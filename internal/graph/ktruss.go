package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// KTrussResult reports the outcome of a k-truss computation.
type KTrussResult struct {
	// Truss is the adjacency matrix of the k-truss subgraph: the maximal
	// subgraph in which every edge lies in at least k-2 triangles.
	Truss *sparse.CSR[float64]
	// Rounds is the number of support-and-prune iterations executed.
	Rounds int
	// Edges is the number of undirected edges remaining (nnz/2).
	Edges int64
}

// KTruss computes the k-truss of the undirected simple graph a using the
// linear-algebraic formulation (paper references [12]–[14]): iterate
// S = A ⊙ (A×A) (per-edge triangle support via the masked SpGEMM), drop
// edges with support < k-2, and repeat until no edge is dropped.
func KTruss(a *sparse.CSR[float64], k int, cfg core.Config) (*KTrussResult, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: k-truss needs k >= 3, got %d", k)
	}
	cur := a.Clone()
	need := float64(k - 2)
	rounds := 0
	// Row staging for the prune pass, reused across rows and rounds (the
	// support SpGEMMs themselves pool through cfg.Engine when set).
	var rowCols []sparse.Index
	var rowVals []float64
	for {
		rounds++
		support, err := TriangleSupport(cur, cfg)
		if err != nil {
			return nil, err
		}
		// Keep edges whose support meets the threshold. The support
		// matrix has the same pattern as cur (subset, actually), so we
		// rebuild the adjacency from the surviving support entries.
		next := sparse.NewCSR[float64](cur.Rows, cur.Cols, support.NNZ())
		var kept int64
		for i := 0; i < support.Rows; i++ {
			cols, vals := support.Row(i)
			rowCols = rowCols[:0]
			rowVals = rowVals[:0]
			for p, j := range cols {
				if vals[p] >= need {
					rowCols = append(rowCols, j)
					rowVals = append(rowVals, 1)
					kept++
				}
			}
			next.AppendRow(i, rowCols, rowVals)
		}
		if kept == cur.NNZ() {
			return &KTrussResult{Truss: cur, Rounds: rounds, Edges: kept / 2}, nil
		}
		cur = next
		if kept == 0 {
			return &KTrussResult{Truss: cur, Rounds: rounds, Edges: 0}, nil
		}
	}
}

// KTrussFused computes the same k-truss as KTruss through the fused
// select pipeline: each round runs threshold(A ⊙ (A×A)) as one
// core.MaskedSpGEMMSelect call, so the per-edge support matrix is never
// materialized — entries below the support threshold are dropped inside
// the tile gather and surviving edges are rewritten to 1 in place. The
// result is identical to KTruss round for round; only the intermediate
// allocations differ.
func KTrussFused(a *sparse.CSR[float64], k int, cfg core.Config) (*KTrussResult, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: k-truss needs k >= 3, got %d", k)
	}
	sr := semiring.PlusPair[float64]{}
	cur := a.Clone()
	need := float64(k - 2)
	sel := func(v float64) (float64, bool) { return 1, v >= need }
	rounds := 0
	for {
		rounds++
		next, err := core.MaskedSpGEMMSelect[float64](sr, cur, cur, cur, cfg, sel)
		if err != nil {
			return nil, err
		}
		kept := next.NNZ()
		if kept == cur.NNZ() {
			return &KTrussResult{Truss: cur, Rounds: rounds, Edges: kept / 2}, nil
		}
		cur = next
		if kept == 0 {
			return &KTrussResult{Truss: cur, Rounds: rounds, Edges: 0}, nil
		}
	}
}
