package tiling

import (
	"fmt"

	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
)

// parallelCutoff is the input length below which the parallel plan
// phases fall back to their serial loops: spawning goroutines for a few
// thousand rows costs more than the pass itself. A variable so tests
// can lower it and exercise the parallel paths on small inputs.
var parallelCutoff = 1 << 14

// SetParallelCutoffForTest overrides the serial crossover threshold and
// returns the previous value, so tests in dependent packages can drive
// the parallel paths with small inputs. Not for production use.
func SetParallelCutoffForTest(n int) (old int) {
	old = parallelCutoff
	parallelCutoff = n
	return old
}

// RowWorkParallel is RowWork computed over contiguous row blocks on p
// workers. Rows are independent, so the result is bit-identical to the
// serial estimator; inputs below the crossover threshold (or p <= 1)
// take the serial path unchanged.
func RowWorkParallel[T sparse.Number](a, b, m *sparse.CSR[T], p int) []int64 {
	if p == 1 || a.Rows < parallelCutoff {
		return RowWork(a, b, m)
	}
	w := make([]int64, a.Rows)
	sched.Blocks(p, a.Rows, func(_, lo, hi int) {
		rowWorkInto(w, a, b, m, lo, hi)
	})
	return w
}

// FlopCountParallel is FlopCount computed over contiguous row blocks on
// p workers: per-block totals and maxima reduce to the same values the
// serial pass produces (int64 addition and max are associative).
func FlopCountParallel[T sparse.Number](a, b *sparse.CSR[T], p int) (total int64, maxRow int64) {
	if p == 1 || a.Rows < parallelCutoff {
		return FlopCount(a, b)
	}
	p = sched.Workers(p)
	totals := make([]int64, p)
	maxes := make([]int64, p)
	sched.Blocks(p, a.Rows, func(w, lo, hi int) {
		totals[w], maxes[w] = flopCountRange(a, b, lo, hi)
	})
	for w := 0; w < p; w++ {
		total += totals[w]
		if maxes[w] > maxRow {
			maxRow = maxes[w]
		}
	}
	return total, maxRow
}

// PrefixSum returns the prefix sum of work on p workers:
// out[i] = Σ work[:i], with out[len(work)] the total. The serial path is
// kept for small inputs behind the crossover threshold.
func PrefixSum(work []int64, p int) []int64 {
	prefix := make([]int64, len(work)+1)
	copy(prefix[1:], work)
	InclusiveScan(prefix[1:], p)
	return prefix
}

// InclusiveScan replaces x with its inclusive prefix sum in place. Large
// inputs scan in two block-parallel passes (per-block local scans, then
// a block-offset fixup after a serial scan of the p block totals); small
// inputs, or p <= 1, scan serially. Both orders sum the same int64 terms
// left to right within each block, so the result is bit-identical.
func InclusiveScan(x []int64, p int) {
	n := len(x)
	if p == 1 || n < parallelCutoff {
		var run int64
		for i := range x {
			run += x[i]
			x[i] = run
		}
		return
	}
	p = sched.Workers(p)
	if p > n {
		p = n
	}
	sums := make([]int64, p)
	sched.Blocks(p, n, func(w, lo, hi int) {
		var run int64
		for i := lo; i < hi; i++ {
			run += x[i]
			x[i] = run
		}
		sums[w] = run
	})
	var off int64
	for w := 0; w < p; w++ {
		s := sums[w]
		sums[w] = off
		off += s
	}
	sched.Blocks(p, n, func(w, lo, hi int) {
		d := sums[w]
		if d == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			x[i] += d
		}
	})
}

// BalancedTilesParallel is BalancedTiles with the O(rows) prefix sum
// spread over p workers. Tile boundaries are bit-identical to the serial
// partitioner for any p.
func BalancedTilesParallel(work []int64, n, p int) []Tile {
	return balancedFromPrefix(PrefixSum(work, p), n)
}

// MakeParallel builds tiles for the given operands with the requested
// strategy and tile count, running the work estimation and prefix sum on
// p workers. Make is MakeParallel with p = 1.
func MakeParallel[T sparse.Number](s Strategy, n, p int, a, b, m *sparse.CSR[T]) []Tile {
	switch s {
	case Uniform:
		return UniformTiles(a.Rows, n)
	case FlopBalanced:
		return BalancedTilesParallel(RowWorkParallel(a, b, m, p), n, p)
	default:
		panic(fmt.Sprintf("tiling: unknown strategy %d", s))
	}
}
