package tiling

import (
	"context"
	"fmt"

	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
)

// parallelCutoff is the input length below which the parallel plan
// phases fall back to their serial loops: spawning goroutines for a few
// thousand rows costs more than the pass itself. A variable so tests
// can lower it and exercise the parallel paths on small inputs.
var parallelCutoff = 1 << 14

// SetParallelCutoffForTest overrides the serial crossover threshold and
// returns the previous value, so tests in dependent packages can drive
// the parallel paths with small inputs. Not for production use.
func SetParallelCutoffForTest(n int) (old int) {
	old = parallelCutoff
	parallelCutoff = n
	return old
}

// RowWorkParallel is RowWork computed over contiguous row blocks on p
// workers. Rows are independent, so the result is bit-identical to the
// serial estimator; inputs below the crossover threshold (or p <= 1)
// take the serial path unchanged.
func RowWorkParallel[T sparse.Number](a, b, m *sparse.CSR[T], p int) []int64 {
	if p == 1 || a.Rows < parallelCutoff {
		return RowWork(a, b, m)
	}
	w := make([]int64, a.Rows)
	sched.Blocks(p, a.Rows, func(_, lo, hi int) {
		rowWorkInto(w, a, b, m, lo, hi)
	})
	return w
}

// FlopCountParallel is FlopCount computed over contiguous row blocks on
// p workers: per-block totals and maxima reduce to the same values the
// serial pass produces (int64 addition and max are associative).
func FlopCountParallel[T sparse.Number](a, b *sparse.CSR[T], p int) (total int64, maxRow int64) {
	if p == 1 || a.Rows < parallelCutoff {
		return FlopCount(a, b)
	}
	p = sched.Workers(p)
	totals := make([]int64, p)
	maxes := make([]int64, p)
	sched.Blocks(p, a.Rows, func(w, lo, hi int) {
		totals[w], maxes[w] = flopCountRange(a, b, lo, hi)
	})
	for w := 0; w < p; w++ {
		total += totals[w]
		if maxes[w] > maxRow {
			maxRow = maxes[w]
		}
	}
	return total, maxRow
}

// PrefixSum returns the prefix sum of work on p workers:
// out[i] = Σ work[:i], with out[len(work)] the total. The serial path is
// kept for small inputs behind the crossover threshold.
func PrefixSum(work []int64, p int) []int64 {
	prefix := make([]int64, len(work)+1)
	copy(prefix[1:], work)
	InclusiveScan(prefix[1:], p)
	return prefix
}

// InclusiveScan replaces x with its inclusive prefix sum in place. Large
// inputs scan in two block-parallel passes (per-block local scans, then
// a block-offset fixup after a serial scan of the p block totals); small
// inputs, or p <= 1, scan serially. Both orders sum the same int64 terms
// left to right within each block, so the result is bit-identical.
func InclusiveScan(x []int64, p int) {
	n := len(x)
	if p == 1 || n < parallelCutoff {
		var run int64
		for i := range x {
			run += x[i]
			x[i] = run
		}
		return
	}
	p = sched.Workers(p)
	if p > n {
		p = n
	}
	sums := make([]int64, p)
	sched.Blocks(p, n, func(w, lo, hi int) {
		var run int64
		for i := lo; i < hi; i++ {
			run += x[i]
			x[i] = run
		}
		sums[w] = run
	})
	var off int64
	for w := 0; w < p; w++ {
		s := sums[w]
		sums[w] = off
		off += s
	}
	sched.Blocks(p, n, func(w, lo, hi int) {
		d := sums[w]
		if d == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			x[i] += d
		}
	})
}

// BalancedTilesParallel is BalancedTiles with the O(rows) prefix sum
// spread over p workers. Tile boundaries are bit-identical to the serial
// partitioner for any p.
func BalancedTilesParallel(work []int64, n, p int) []Tile {
	return BalancedFromPrefix(PrefixSum(work, p), n)
}

// MakeParallel builds tiles for the given operands with the requested
// strategy and tile count, running the work estimation and prefix sum on
// p workers. Make is MakeParallel with p = 1.
func MakeParallel[T sparse.Number](s Strategy, n, p int, a, b, m *sparse.CSR[T]) []Tile {
	switch s {
	case Uniform:
		return UniformTiles(a.Rows, n)
	case FlopBalanced:
		return BalancedTilesParallel(RowWorkParallel(a, b, m, p), n, p)
	default:
		panic(fmt.Sprintf("tiling: unknown strategy %d", s))
	}
}

// The E variants below are the fault-contained, cancellable versions of
// the plan-construction passes: they run their block-parallel loops via
// sched.BlocksE, so a panic inside a worker (a malformed operand, say)
// comes back as a *sched.PanicError and a cancelled context aborts the
// plan between blocks. Serial fallbacks below the crossover threshold
// run on the caller's goroutine, where the caller's own recover applies.

// RowWorkParallelE is RowWorkParallel with panic containment and
// cooperative cancellation. ctx may be nil.
func RowWorkParallelE[T sparse.Number](ctx context.Context, a, b, m *sparse.CSR[T], p int) ([]int64, error) {
	if p == 1 || a.Rows < parallelCutoff {
		return RowWork(a, b, m), nil
	}
	w := make([]int64, a.Rows)
	if err := sched.BlocksE(ctx, p, a.Rows, func(_, lo, hi int) {
		rowWorkInto(w, a, b, m, lo, hi)
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// FlopCountParallelE is FlopCountParallel with panic containment and
// cooperative cancellation. ctx may be nil.
func FlopCountParallelE[T sparse.Number](ctx context.Context, a, b *sparse.CSR[T], p int) (total int64, maxRow int64, err error) {
	if p == 1 || a.Rows < parallelCutoff {
		total, maxRow = FlopCount(a, b)
		return total, maxRow, nil
	}
	p = sched.Workers(p)
	totals := make([]int64, p)
	maxes := make([]int64, p)
	if err := sched.BlocksE(ctx, p, a.Rows, func(w, lo, hi int) {
		totals[w], maxes[w] = flopCountRange(a, b, lo, hi)
	}); err != nil {
		return 0, 0, err
	}
	for w := 0; w < p; w++ {
		total += totals[w]
		if maxes[w] > maxRow {
			maxRow = maxes[w]
		}
	}
	return total, maxRow, nil
}

// InclusiveScanE is InclusiveScan with panic containment and
// cooperative cancellation between the two parallel passes. ctx may be
// nil.
func InclusiveScanE(ctx context.Context, x []int64, p int) error {
	n := len(x)
	if p == 1 || n < parallelCutoff {
		var run int64
		for i := range x {
			run += x[i]
			x[i] = run
		}
		return nil
	}
	p = sched.Workers(p)
	if p > n {
		p = n
	}
	sums := make([]int64, p)
	if err := sched.BlocksE(ctx, p, n, func(w, lo, hi int) {
		var run int64
		for i := lo; i < hi; i++ {
			run += x[i]
			x[i] = run
		}
		sums[w] = run
	}); err != nil {
		return err
	}
	var off int64
	for w := 0; w < p; w++ {
		s := sums[w]
		sums[w] = off
		off += s
	}
	return sched.BlocksE(ctx, p, n, func(w, lo, hi int) {
		d := sums[w]
		if d == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			x[i] += d
		}
	})
}

// PrefixSumE is PrefixSum with panic containment and cancellation.
func PrefixSumE(ctx context.Context, work []int64, p int) ([]int64, error) {
	prefix := make([]int64, len(work)+1)
	copy(prefix[1:], work)
	if err := InclusiveScanE(ctx, prefix[1:], p); err != nil {
		return nil, err
	}
	return prefix, nil
}

// BalancedTilesParallelE is BalancedTilesParallel with panic
// containment and cancellation.
func BalancedTilesParallelE(ctx context.Context, work []int64, n, p int) ([]Tile, error) {
	prefix, err := PrefixSumE(ctx, work, p)
	if err != nil {
		return nil, err
	}
	return BalancedFromPrefix(prefix, n), nil
}

// MakeParallelE is MakeParallel with panic containment, cooperative
// cancellation, and an error (instead of a panic) for unknown
// strategies. ctx may be nil.
func MakeParallelE[T sparse.Number](ctx context.Context, s Strategy, n, p int, a, b, m *sparse.CSR[T]) ([]Tile, error) {
	switch s {
	case Uniform:
		return UniformTiles(a.Rows, n), nil
	case FlopBalanced:
		work, err := RowWorkParallelE(ctx, a, b, m, p)
		if err != nil {
			return nil, err
		}
		return BalancedTilesParallelE(ctx, work, n, p)
	default:
		return nil, fmt.Errorf("tiling: unknown strategy %d", s)
	}
}
