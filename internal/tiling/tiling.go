// Package tiling implements the paper's §III-A: estimating per-row work
// for the masked-SpGEMM (Eq. 2) and partitioning the output rows into
// tiles, either uniformly or FLOP-balanced. Only the row dimension is
// tiled and only C, M and A are split; B is never tiled — exactly the
// scheme the paper studies (its §V-A flags 2-D tiling as future work).
package tiling

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/sparse"
)

// Tile is a half-open range of output rows [Lo, Hi).
type Tile struct {
	Lo, Hi int
}

// Rows returns the number of rows in the tile.
func (t Tile) Rows() int { return t.Hi - t.Lo }

// Strategy selects how tiles are formed.
type Strategy int

const (
	// Uniform cuts the rows into equally sized tiles regardless of work
	// ("homogeneous tiling", Fig. 6 sub-figure 1).
	Uniform Strategy = iota
	// FlopBalanced cuts the rows so each tile carries roughly equal
	// estimated work per Eq. 2 (Fig. 6 sub-figure 2).
	FlopBalanced
)

func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "Uniform"
	case FlopBalanced:
		return "FlopBalanced"
	default:
		return "Unknown"
	}
}

// RowWork returns the paper's Eq. 2 estimate for every output row:
//
//	W[i] = nnz(M[i,:]) + Σ_{A[i,k]≠0} nnz(B[k,:])
//
// computed in O(nnz(A) + rows) time using only CSR row pointers.
func RowWork[T sparse.Number](a, b, m *sparse.CSR[T]) []int64 {
	w := make([]int64, a.Rows)
	rowWorkInto(w, a, b, m, 0, a.Rows)
	return w
}

// rowWorkInto fills w[lo:hi] with the Eq. 2 estimate — the shared body
// of the serial and block-parallel work estimators.
func rowWorkInto[T sparse.Number](w []int64, a, b, m *sparse.CSR[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		wi := m.RowNNZ(i)
		for _, k := range a.RowCols(i) {
			wi += b.RowNNZ(int(k))
		}
		w[i] = wi
	}
}

// FlopCount returns Σ_{A[i,k]≠0} nnz(B[k,:]) — the classical SpGEMM flop
// count, without the mask term. GrB and SuiteSparse:GraphBLAS size their
// accumulators from per-row maxima of this quantity.
func FlopCount[T sparse.Number](a, b *sparse.CSR[T]) (total int64, maxRow int64) {
	return flopCountRange(a, b, 0, a.Rows)
}

// flopCountRange computes the flop total and per-row maximum over rows
// [lo, hi) — the shared body of the serial and block-parallel counters.
func flopCountRange[T sparse.Number](a, b *sparse.CSR[T], lo, hi int) (total int64, maxRow int64) {
	for i := lo; i < hi; i++ {
		var f int64
		for _, k := range a.RowCols(i) {
			f += b.RowNNZ(int(k))
		}
		total += f
		if f > maxRow {
			maxRow = f
		}
	}
	return total, maxRow
}

// UniformTiles splits rows into at most n equally sized tiles. Empty
// tiles are never produced: if n exceeds rows, each row is its own tile.
func UniformTiles(rows, n int) []Tile {
	if n > rows {
		n = rows
	}
	if n <= 0 {
		n = 1
	}
	tiles := make([]Tile, 0, n)
	for t := 0; t < n; t++ {
		lo := rows * t / n
		hi := rows * (t + 1) / n
		if lo < hi {
			tiles = append(tiles, Tile{lo, hi})
		}
	}
	return tiles
}

// BalancedTiles splits rows into at most n tiles of roughly equal total
// work. Boundaries are found by binary search in the prefix-sum of work,
// so the split is O(rows + n log rows). A single row is never divided
// (the row is the scheduling atom, as in the paper), so a tile can
// exceed the ideal share when one row dominates.
func BalancedTiles(work []int64, n int) []Tile {
	return BalancedFromPrefix(PrefixSum(work, 1), n)
}

// BalancedFromPrefix places the tile boundaries given the ready prefix
// sum of the work estimate (len(prefix) = rows+1). The boundary loop is
// O(n log rows) and carries the previous boundary forward, so it stays
// serial; the O(rows) prefix sum is where the construction time goes
// and is what BalancedTilesParallel parallelizes. Exported so callers
// that time the plan phases separately (internal/core's instrumented
// path) can run the boundary placement under its own span.
func BalancedFromPrefix(prefix []int64, n int) []Tile {
	rows := len(prefix) - 1
	if n > rows {
		n = rows
	}
	if n <= 0 {
		n = 1
	}
	total := prefix[rows]
	tiles := make([]Tile, 0, n)
	lo := 0
	for t := 1; t <= n && lo < rows; t++ {
		target := total * int64(t) / int64(n)
		// First boundary whose prefix reaches the cumulative target, then
		// step back if the previous boundary is strictly closer to it —
		// halves the overshoot a heavy row causes.
		hi := sort.Search(rows+1, func(i int) bool { return prefix[i] >= target })
		if hi-1 > lo && target-prefix[hi-1] < prefix[hi]-target {
			hi--
		}
		if hi <= lo {
			hi = lo + 1
		}
		if t == n || hi > rows {
			hi = rows
		}
		tiles = append(tiles, Tile{lo, hi})
		lo = hi
	}
	return tiles
}

// Make builds tiles for the given operands with the requested strategy
// and tile count, serially; MakeParallel spreads the work estimation
// over a worker pool.
func Make[T sparse.Number](s Strategy, n int, a, b, m *sparse.CSR[T]) []Tile {
	return MakeParallel(s, n, 1, a, b, m)
}

// CheckPartition verifies that tiles cover [0, rows) exactly once, in
// order, with no empty tiles. Used by tests and debug assertions.
func CheckPartition(tiles []Tile, rows int) error {
	next := 0
	for i, t := range tiles {
		if t.Lo != next {
			return fmt.Errorf("tiling: tile %d starts at %d, want %d", i, t.Lo, next)
		}
		if t.Hi <= t.Lo {
			return fmt.Errorf("tiling: tile %d empty [%d,%d)", i, t.Lo, t.Hi)
		}
		next = t.Hi
	}
	if next != rows {
		return fmt.Errorf("tiling: tiles end at %d, want %d", next, rows)
	}
	return nil
}

// Imbalance returns max tile work divided by mean tile work — 1.0 is
// perfect balance. Benchmarks report it alongside runtimes.
func Imbalance(tiles []Tile, work []int64) float64 {
	if len(tiles) == 0 {
		return 1
	}
	var total, maxTile int64
	for _, t := range tiles {
		var w int64
		for i := t.Lo; i < t.Hi; i++ {
			w += work[i]
		}
		total += w
		if w > maxTile {
			maxTile = w
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(tiles))
	return float64(maxTile) / mean
}
