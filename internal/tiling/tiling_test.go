package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/sparse"
)

func randomGraph(n int, density float64, seed int64) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](n, n, 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < density {
				coo.Add(sparse.Index(i), sparse.Index(j), 1)
			}
		}
	}
	return coo.ToCSR()
}

func TestRowWorkMatchesDefinition(t *testing.T) {
	a := randomGraph(30, 0.2, 1)
	w := RowWork(a, a, a)
	for i := 0; i < a.Rows; i++ {
		// Recompute Eq. 2 naively.
		want := a.RowNNZ(i)
		for _, k := range a.RowCols(i) {
			want += a.RowNNZ(int(k))
		}
		if w[i] != want {
			t.Fatalf("W[%d] = %d, want %d", i, w[i], want)
		}
	}
}

func TestFlopCount(t *testing.T) {
	a := randomGraph(25, 0.3, 2)
	total, maxRow := FlopCount(a, a)
	var wantTotal, wantMax int64
	for i := 0; i < a.Rows; i++ {
		var f int64
		for _, k := range a.RowCols(i) {
			f += a.RowNNZ(int(k))
		}
		wantTotal += f
		if f > wantMax {
			wantMax = f
		}
	}
	if total != wantTotal || maxRow != wantMax {
		t.Errorf("FlopCount = (%d,%d), want (%d,%d)", total, maxRow, wantTotal, wantMax)
	}
}

func TestUniformTilesPartition(t *testing.T) {
	f := func(rows, n uint16) bool {
		r := int(rows%5000) + 1
		k := int(n%300) + 1
		tiles := UniformTiles(r, k)
		if err := CheckPartition(tiles, r); err != nil {
			return false
		}
		// Uniform tiles differ in size by at most 1.
		mn, mx := r, 0
		for _, tl := range tiles {
			if tl.Rows() < mn {
				mn = tl.Rows()
			}
			if tl.Rows() > mx {
				mx = tl.Rows()
			}
		}
		return mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalancedTilesPartition(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		rows := r.Intn(2000) + 1
		work := make([]int64, rows)
		for i := range work {
			work[i] = int64(r.Intn(100))
		}
		k := int(n%200) + 1
		tiles := BalancedTiles(work, k)
		return CheckPartition(tiles, rows) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalancedTilesBalanceQuality(t *testing.T) {
	// With skewed work, balanced tiling must beat uniform tiling on the
	// imbalance metric — the premise of the paper's Fig. 6.
	rows := 4096
	work := make([]int64, rows)
	for i := range work {
		work[i] = 1
	}
	// Clustered heavy rows, like the low-id hubs of an R-MAT graph.
	const heavy = 5000
	for h := 0; h < 16; h++ {
		work[h] = heavy
	}
	const tiles = 64
	bal := Imbalance(BalancedTiles(work, tiles), work)
	uni := Imbalance(UniformTiles(rows, tiles), work)
	if bal >= uni {
		t.Errorf("balanced imbalance %.2f not better than uniform %.2f", bal, uni)
	}
	// A balanced tile can exceed the ideal share by at most the heaviest
	// single row (rows are scheduling atoms and are never split).
	var total int64
	for _, w := range work {
		total += w
	}
	mean := float64(total) / tiles
	if limit := (mean + heavy) / mean; bal > limit {
		t.Errorf("balanced imbalance %.2f above the mean+maxRow bound %.2f", bal, limit)
	}
}

func TestBalancedTilesSingleRowAtom(t *testing.T) {
	// One dominant row: it must land alone-ish in a tile, never split.
	work := []int64{1, 1, 1000, 1, 1}
	tiles := BalancedTiles(work, 4)
	if err := CheckPartition(tiles, len(work)); err != nil {
		t.Fatal(err)
	}
	for _, tl := range tiles {
		if tl.Lo <= 2 && 2 < tl.Hi && tl.Rows() > 3 {
			t.Errorf("heavy row in oversized tile %+v", tl)
		}
	}
}

func TestBalancedTilesBoundaryStepBack(t *testing.T) {
	// prefix = [0,1,2,11,12], target for the first of two tiles is 6.
	// The search lands after the heavy row (prefix 11), but the previous
	// boundary (prefix 2) is strictly closer to the target, so the
	// boundary must step back: tiles {0,2},{2,4}, not {0,3},{3,4}.
	work := []int64{1, 1, 9, 1}
	tiles := BalancedTiles(work, 2)
	want := []Tile{{0, 2}, {2, 4}}
	if len(tiles) != len(want) {
		t.Fatalf("got %d tiles %v, want %v", len(tiles), tiles, want)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Errorf("tile %d = %+v, want %+v", i, tiles[i], want[i])
		}
	}
}

func TestBalancedTilesNoStepBackWhenOvershootCloser(t *testing.T) {
	// prefix = [0,9,10,11,12], target 6: the overshoot (9) is closer to
	// the target than the previous boundary (0), so no step-back — and
	// stepping back would also produce an empty tile.
	work := []int64{9, 1, 1, 1}
	tiles := BalancedTiles(work, 2)
	want := []Tile{{0, 1}, {1, 4}}
	if len(tiles) != len(want) {
		t.Fatalf("got %d tiles %v, want %v", len(tiles), tiles, want)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Errorf("tile %d = %+v, want %+v", i, tiles[i], want[i])
		}
	}
}

func TestBalancedTilesDominantRow(t *testing.T) {
	// A single row carrying ~all the work: every requested tile count must
	// still yield a valid partition, with the dominant row intact in one
	// tile whose work is near the total.
	for _, rows := range []int{1, 2, 10, 257} {
		for _, hub := range []int{0, rows / 2, rows - 1} {
			work := make([]int64, rows)
			for i := range work {
				work[i] = 1
			}
			work[hub] = 1 << 40
			for _, n := range []int{1, 2, 7, rows, 3 * rows} {
				tiles := BalancedTiles(work, n)
				if err := CheckPartition(tiles, rows); err != nil {
					t.Fatalf("rows=%d hub=%d n=%d: %v", rows, hub, n, err)
				}
			}
		}
	}
}

func TestBalancedTilesPartitionSweep(t *testing.T) {
	// Deterministic sweep over (rows, n) with adversarial work shapes —
	// complements the randomized property test with the exact boundary
	// cases (n = rows, n > rows, all-zero work, front/back-loaded work).
	shapes := map[string]func(rows int) []int64{
		"uniform": func(rows int) []int64 {
			w := make([]int64, rows)
			for i := range w {
				w[i] = 3
			}
			return w
		},
		"zero": func(rows int) []int64 { return make([]int64, rows) },
		"front-loaded": func(rows int) []int64 {
			w := make([]int64, rows)
			for i := range w {
				w[i] = int64(rows - i)
			}
			return w
		},
		"back-loaded": func(rows int) []int64 {
			w := make([]int64, rows)
			for i := range w {
				w[i] = int64(i * i)
			}
			return w
		},
	}
	for name, shape := range shapes {
		for _, rows := range []int{1, 2, 3, 5, 64, 1000} {
			for _, n := range []int{1, 2, rows - 1, rows, rows + 1, 4 * rows} {
				if n < 1 {
					continue
				}
				tiles := BalancedTiles(shape(rows), n)
				if err := CheckPartition(tiles, rows); err != nil {
					t.Errorf("%s rows=%d n=%d: %v", name, rows, n, err)
				}
				if len(tiles) > n {
					t.Errorf("%s rows=%d n=%d: %d tiles exceed request", name, rows, n, len(tiles))
				}
			}
		}
	}
}

func TestTileCountClamping(t *testing.T) {
	if got := len(UniformTiles(10, 100)); got != 10 {
		t.Errorf("UniformTiles(10,100) made %d tiles, want 10", got)
	}
	work := make([]int64, 7)
	for i := range work {
		work[i] = 1
	}
	if got := len(BalancedTiles(work, 50)); got > 7 {
		t.Errorf("BalancedTiles made %d tiles for 7 rows", got)
	}
	if got := len(UniformTiles(5, 0)); got != 1 {
		t.Errorf("UniformTiles(5,0) made %d tiles, want 1", got)
	}
}

func TestMakeStrategies(t *testing.T) {
	a := randomGraph(50, 0.1, 3)
	for _, s := range []Strategy{Uniform, FlopBalanced} {
		tiles := Make(s, 8, a, a, a)
		if err := CheckPartition(tiles, a.Rows); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestZeroWorkMatrix(t *testing.T) {
	// An empty matrix still partitions cleanly.
	work := make([]int64, 100)
	tiles := BalancedTiles(work, 8)
	if err := CheckPartition(tiles, 100); err != nil {
		t.Fatal(err)
	}
	if Imbalance(tiles, work) != 1 {
		t.Error("zero-work imbalance should be neutral")
	}
}
