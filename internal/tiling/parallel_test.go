package tiling

import (
	"math/rand"
	"testing"
)

// lowerCutoff drops the serial crossover so the parallel paths run on
// test-sized inputs, restoring it when the test ends.
func lowerCutoff(t *testing.T) {
	t.Helper()
	old := parallelCutoff
	parallelCutoff = 1
	t.Cleanup(func() { parallelCutoff = old })
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRowWorkParallelMatchesSerial(t *testing.T) {
	lowerCutoff(t)
	for _, n := range []int{1, 17, 64, 257} {
		a := randomGraph(n, 0.15, int64(n))
		want := RowWork(a, a, a)
		for _, p := range []int{1, 2, 3, 8} {
			if got := RowWorkParallel(a, a, a, p); !int64sEqual(got, want) {
				t.Errorf("n=%d p=%d: parallel RowWork differs from serial", n, p)
			}
		}
	}
}

func TestFlopCountParallelMatchesSerial(t *testing.T) {
	lowerCutoff(t)
	for _, n := range []int{1, 33, 128} {
		a := randomGraph(n, 0.2, int64(n)+100)
		wantTotal, wantMax := FlopCount(a, a)
		for _, p := range []int{2, 4, 7} {
			total, maxRow := FlopCountParallel(a, a, p)
			if total != wantTotal || maxRow != wantMax {
				t.Errorf("n=%d p=%d: FlopCountParallel = (%d,%d), want (%d,%d)",
					n, p, total, maxRow, wantTotal, wantMax)
			}
		}
	}
}

func TestInclusiveScanMatchesSerial(t *testing.T) {
	lowerCutoff(t)
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 100, 1023} {
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(r.Intn(1000)) - 200 // negatives too: scan is pure addition
		}
		want := append([]int64(nil), x...)
		var run int64
		for i := range want {
			run += want[i]
			want[i] = run
		}
		for _, p := range []int{1, 2, 5, 16} {
			got := append([]int64(nil), x...)
			InclusiveScan(got, p)
			if !int64sEqual(got, want) {
				t.Errorf("n=%d p=%d: parallel scan differs from serial", n, p)
			}
		}
	}
}

func TestPrefixSumShape(t *testing.T) {
	lowerCutoff(t)
	work := []int64{3, 0, 5, 1}
	for _, p := range []int{1, 2, 4} {
		prefix := PrefixSum(work, p)
		want := []int64{0, 3, 3, 8, 9}
		if !int64sEqual(prefix, want) {
			t.Errorf("p=%d: PrefixSum = %v, want %v", p, prefix, want)
		}
	}
}

func TestBalancedTilesParallelMatchesSerial(t *testing.T) {
	lowerCutoff(t)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows := r.Intn(3000) + 1
		work := make([]int64, rows)
		for i := range work {
			work[i] = int64(r.Intn(50))
			if r.Intn(40) == 0 {
				work[i] = int64(r.Intn(100000)) // occasional hub row
			}
		}
		n := r.Intn(300) + 1
		want := BalancedTiles(work, n)
		for _, p := range []int{2, 4, 9} {
			got := BalancedTilesParallel(work, n, p)
			if len(got) != len(want) {
				t.Fatalf("rows=%d n=%d p=%d: %d tiles, want %d", rows, n, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rows=%d n=%d p=%d: tile %d = %+v, want %+v",
						rows, n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMakeParallelMatchesMake(t *testing.T) {
	lowerCutoff(t)
	a := randomGraph(200, 0.1, 42)
	for _, s := range []Strategy{Uniform, FlopBalanced} {
		want := Make(s, 16, a, a, a)
		for _, p := range []int{2, 4} {
			got := MakeParallel(s, 16, p, a, a, a)
			if len(got) != len(want) {
				t.Fatalf("%v p=%d: %d tiles, want %d", s, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v p=%d: tile %d = %+v, want %+v", s, p, i, got[i], want[i])
				}
			}
		}
	}
}
