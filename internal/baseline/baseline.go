// Package baseline re-implements the two systems the paper compares
// against, characterized by the design choices the paper attributes to
// them rather than by their code:
//
//   - GrB (Milaković et al., §II-C): p FLOP-balanced tiles — one per
//     thread — static assignment, the mask-load iteration space, and
//     explicit per-row accumulator reset. The tiling/parallelization
//     scheme is fixed; only the accumulator family is selectable.
//   - SuiteSparse:GraphBLAS (§II-B, §III): T = 2p FLOP-balanced tiles
//     with dynamic scheduling, the hybrid push-pull iteration space, a
//     64-bit marker for implicit reset, and a heuristic choice between
//     the dense and hash accumulators hidden from the caller.
//
// Both run on the same core kernel, so measured differences are due to
// the design choices themselves — the point of the study.
package baseline

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// GrBConfig returns the fixed GrB configuration for p workers with the
// requested accumulator family (DenseKind or HashKind; GrB's explicit
// reset is applied automatically).
func GrBConfig(kind accum.Kind, workers int) core.Config {
	p := sched.Workers(workers)
	explicit := accum.HashExplicitKind
	if kind == accum.DenseKind || kind == accum.DenseExplicitKind {
		explicit = accum.DenseExplicitKind
	}
	return core.Config{
		Iteration:   core.MaskLoad,
		Accumulator: explicit,
		MarkerBits:  64, // unused by explicit kinds; kept valid
		Tiles:       p,
		Tiling:      tiling.FlopBalanced,
		Schedule:    sched.Static,
		Workers:     p,
	}
}

// GrBLike computes the masked SpGEMM the way the GrB library does.
func GrBLike[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], kind accum.Kind, workers int,
) (*sparse.CSR[T], error) {
	return core.MaskedSpGEMM(sr, m, a, b, GrBConfig(kind, workers))
}

// SuiteSparseConfig returns the heuristic-driven configuration that
// mimics SuiteSparse:GraphBLAS for the given operands: 2p balanced tiles
// with dynamic scheduling, hybrid iteration with κ = 1, 64-bit markers,
// and the accumulator family chosen by ChooseAccumulator.
func SuiteSparseConfig[T sparse.Number](m, a, b *sparse.CSR[T], workers int) core.Config {
	p := sched.Workers(workers)
	return core.Config{
		Iteration:   core.Hybrid,
		Kappa:       1,
		Accumulator: ChooseAccumulator(m, b),
		MarkerBits:  64,
		Tiles:       2 * p,
		Tiling:      tiling.FlopBalanced,
		Schedule:    sched.Dynamic,
		Workers:     p,
	}
}

// denseColsThreshold approximates "the dense accumulator fits in cache":
// below this column count a size-n state vector has enough locality that
// SuiteSparse-style heuristics prefer it (paper §III-C: "dense may be
// preferred when the dimension of the matrix is small").
const denseColsThreshold = 1 << 16

// ChooseAccumulator applies the §III-C guidance: dense when the
// dimension is small or the writes have significant spatial locality
// (dense mask rows), hash when the dimension is large and rows sparse.
func ChooseAccumulator[T sparse.Number](m, b *sparse.CSR[T]) accum.Kind {
	if b.Cols <= denseColsThreshold {
		return accum.DenseKind
	}
	// Spatial locality proxy: a mask dense enough that an average row
	// touches a sizable fraction of the state vector writes with
	// locality, so the dense accumulator stays cache-resident.
	if m.Rows > 0 {
		avg := float64(m.NNZ()) / float64(m.Rows)
		if avg > float64(b.Cols)/64 {
			return accum.DenseKind
		}
	}
	return accum.HashKind
}

// SuiteSparseLike computes the masked SpGEMM the way
// SuiteSparse:GraphBLAS's heuristics would.
func SuiteSparseLike[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], workers int,
) (*sparse.CSR[T], error) {
	return core.MaskedSpGEMM(sr, m, a, b, SuiteSparseConfig(m, a, b, workers))
}
