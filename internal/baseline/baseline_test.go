package baseline

import (
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

func TestBaselinesMatchTunedKernel(t *testing.T) {
	a := graphgen.ErdosRenyi(200, 1500, 5)
	sr := semiring.PlusTimes[float64]{}
	want, err := core.MaskedSpGEMM[float64](sr, a, a, a, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotGrB, err := GrBLike[float64](sr, a, a, a, accum.HashKind, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, gotGrB) {
		t.Error("GrBLike result differs")
	}
	gotGrBD, err := GrBLike[float64](sr, a, a, a, accum.DenseKind, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, gotGrBD) {
		t.Error("GrBLike dense result differs")
	}
	gotSS, err := SuiteSparseLike[float64](sr, a, a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, gotSS) {
		t.Error("SuiteSparseLike result differs")
	}
}

func TestGrBConfigShape(t *testing.T) {
	cfg := GrBConfig(accum.HashKind, 4)
	if cfg.Tiles != 4 || cfg.Schedule != sched.Static || cfg.Tiling != tiling.FlopBalanced {
		t.Errorf("GrB config wrong: %v", cfg)
	}
	if cfg.Iteration != core.MaskLoad {
		t.Error("GrB must use the mask-load iteration space")
	}
	if cfg.Accumulator != accum.HashExplicitKind {
		t.Error("GrB must use explicit reset")
	}
	if GrBConfig(accum.DenseKind, 2).Accumulator != accum.DenseExplicitKind {
		t.Error("GrB dense must map to DenseExplicit")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSuiteSparseConfigShape(t *testing.T) {
	a := graphgen.ErdosRenyi(100, 400, 1)
	cfg := SuiteSparseConfig(a, a, a, 4)
	if cfg.Tiles != 8 {
		t.Errorf("SS must use 2p tiles, got %d for p=4", cfg.Tiles)
	}
	if cfg.Schedule != sched.Dynamic || cfg.Iteration != core.Hybrid || cfg.MarkerBits != 64 {
		t.Errorf("SS config wrong: %v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestChooseAccumulatorHeuristic(t *testing.T) {
	small := graphgen.ErdosRenyi(500, 2000, 2)
	if ChooseAccumulator(small, small) != accum.DenseKind {
		t.Error("small dimension should choose dense")
	}
	// Large dimension with sparse rows: hash.
	big := sparse.NewCSR[float64](1<<17, 1<<17, 0)
	coo := sparse.NewCOO[float64](1<<17, 1<<17, 4)
	coo.Add(0, 1, 1)
	coo.Add(5000, 70000, 1)
	big = coo.ToCSR()
	if ChooseAccumulator(big, big) != accum.HashKind {
		t.Error("large sparse should choose hash")
	}
}
