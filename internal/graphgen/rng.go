// Package graphgen generates the synthetic graph corpus that stands in
// for the paper's SuiteSparse Matrix Collection selection (Table I).
// The paper draws matrices from four structural families — web graphs,
// social networks, road networks, and circuit simulations — whose
// degree distributions and sparsity patterns drive the performance
// effects under study. One deterministic generator per family
// reproduces those features at a scale the benchmark host can run.
package graphgen

// rng is SplitMix64: a tiny, fast, high-quality 64-bit PRNG with a
// one-word state, sufficient for structural generation and fully
// deterministic across platforms (unlike math/rand's global state).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
