package graphgen

import (
	"maskedspgemm/internal/sparse"
)

// Value is the element type of generated adjacency matrices. The masked
// SpGEMM study treats graphs structurally; 1.0 everywhere keeps PlusTimes
// triangle counts exact in float64.
type Value = float64

// RMAT generates a recursive-matrix (Kronecker) graph: 2^scale vertices,
// edgeFactor·2^scale directed edges drawn with quadrant probabilities
// (a, b, c, d). With the Graph500 parameters (0.57, 0.19, 0.19, 0.05) it
// produces the heavy-tailed degree distributions of social networks —
// the com-Orkut / com-LiveJournal / hollywood-2009 family of Table I.
// The result is symmetrized and diagonal-free.
func RMAT(scale, edgeFactor int, a, b, c float64, seed uint64) *sparse.CSR[Value] {
	n := 1 << scale
	edges := edgeFactor * n
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(edges))
	for e := 0; e < edges; e++ {
		var i, j int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float64()
			switch {
			case p < a: // top-left
			case p < a+b: // top-right
				j |= 1 << bit
			case p < a+b+c: // bottom-left
				i |= 1 << bit
			default: // bottom-right
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		if i != j {
			coo.Add(sparse.Index(i), sparse.Index(j), 1)
		}
	}
	m := coo.ToCSR()
	m = sparse.Symmetrize(m)
	for k := range m.Val {
		m.Val[k] = 1 // symmetrize may have summed duplicate edges
	}
	return m
}

// RoadNetwork generates a road-like graph: a width×height 2-D lattice
// where each node connects to its right and down neighbors with
// probability keep, plus a sprinkling of diagonal shortcuts. Degrees are
// nearly uniform (2–4), diameters huge — the europe_osm / GAP-road
// family, whose flat work distribution makes uniform tiling viable in
// the paper's Fig. 11.
func RoadNetwork(width, height int, keep float64, seed uint64) *sparse.CSR[Value] {
	n := width * height
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(2*n))
	id := func(x, y int) sparse.Index { return sparse.Index(y*width + x) }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width && r.float64() < keep {
				coo.Add(id(x, y), id(x+1, y), 1)
			}
			if y+1 < height && r.float64() < keep {
				coo.Add(id(x, y), id(x, y+1), 1)
			}
			// Occasional diagonal: highway ramps and irregular junctions.
			if x+1 < width && y+1 < height && r.float64() < 0.05 {
				coo.Add(id(x, y), id(x+1, y+1), 1)
			}
		}
	}
	m := coo.ToCSR()
	m = sparse.Symmetrize(m)
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m
}

// WebGraph generates a web-crawl-like directed graph by the copying
// model: each new page links to out randomly chosen targets, but with
// probability copyProb it copies a link from an existing page instead of
// choosing uniformly, yielding the scale-free in-degrees and locally
// clustered structure of arabic-2005 / uk-2002 / as-Skitter. The result
// keeps its directedness (the paper's web graphs are directed) but is
// returned with sorted rows and unit values.
func WebGraph(n, out int, copyProb float64, seed uint64) *sparse.CSR[Value] {
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(n*out))
	// Flat list of all previously created links for O(1) copying.
	targets := make([]sparse.Index, 0, n*out)
	for v := 1; v < n; v++ {
		for e := 0; e < out; e++ {
			var t sparse.Index
			if len(targets) > 0 && r.float64() < copyProb {
				t = targets[r.intn(len(targets))]
			} else {
				t = sparse.Index(r.intn(v))
			}
			if t != sparse.Index(v) {
				coo.Add(sparse.Index(v), t, 1)
				targets = append(targets, t)
			}
		}
	}
	m := coo.ToCSR()
	m = sparse.DropDiagonal(m)
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m
}

// Circuit generates a circuit-simulation-like matrix: a banded sparse
// core (local wiring) plus a few "rail" nodes connected to a large
// fraction of all nodes (power/clock nets). The rails create a handful
// of enormously dense rows exactly like circuit5M, the matrix whose
// unmasked row products time out in the paper until co-iteration
// rescues them (Fig. 14d). Symmetric, diagonal-free.
func Circuit(n, band int, fill float64, rails int, railDegree int, seed uint64) *sparse.CSR[Value] {
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(n*3))
	for i := 0; i < n; i++ {
		// Local band wiring.
		for d := 1; d <= band; d++ {
			if i+d < n && r.float64() < fill {
				coo.Add(sparse.Index(i), sparse.Index(i+d), 1)
			}
		}
	}
	// Rail nodes: the first `rails` vertices each connect to railDegree
	// random vertices spread across the whole matrix.
	for rail := 0; rail < rails; rail++ {
		for e := 0; e < railDegree; e++ {
			t := r.intn(n)
			if t != rail {
				coo.Add(sparse.Index(rail), sparse.Index(t), 1)
			}
		}
	}
	m := coo.ToCSR()
	m = sparse.Symmetrize(m)
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m
}

// ErdosRenyi generates a G(n, m)-style uniform random graph with
// approximately edges directed edges before symmetrization. It is the
// structureless control used by tests and property checks.
func ErdosRenyi(n int, edges int, seed uint64) *sparse.CSR[Value] {
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(edges))
	for e := 0; e < edges; e++ {
		i, j := r.intn(n), r.intn(n)
		if i != j {
			coo.Add(sparse.Index(i), sparse.Index(j), 1)
		}
	}
	m := coo.ToCSR()
	m = sparse.Symmetrize(m)
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m
}
