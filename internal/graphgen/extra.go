package graphgen

import (
	"math"

	"maskedspgemm/internal/sparse"
)

// SmallWorld generates a Watts–Strogatz small-world graph: a ring
// lattice where each vertex connects to its k nearest neighbors, with
// each edge rewired to a uniform random endpoint with probability beta.
// At beta=0 it is a pure lattice (road-like flat degrees, huge
// diameter); at beta=1 it approaches a random graph — useful for
// sweeping between the corpus's structural extremes.
func SmallWorld(n, k int, beta float64, seed uint64) *sparse.CSR[Value] {
	if k >= n {
		k = n - 1
	}
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(n*k))
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			t := (v + d) % n
			if r.float64() < beta {
				t = r.intn(n)
			}
			if t != v {
				coo.Add(sparse.Index(v), sparse.Index(t), 1)
			}
		}
	}
	m := sparse.Symmetrize(coo.ToCSR())
	for i := range m.Val {
		m.Val[i] = 1
	}
	return m
}

// Geometric generates a random geometric graph: n points uniform in the
// unit square, an edge between every pair within distance radius.
// Produces spatially clustered, road-network-adjacent structure with a
// natural 2-D embedding. O(n²) pair check — intended for corpus-scale
// n, not millions.
func Geometric(n int, radius float64, seed uint64) *sparse.CSR[Value] {
	r := newRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.float64()
		ys[i] = r.float64()
	}
	r2 := radius * radius
	coo := sparse.NewCOO[Value](n, n, int64(n*8))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				coo.Add(sparse.Index(i), sparse.Index(j), 1)
				coo.Add(sparse.Index(j), sparse.Index(i), 1)
			}
		}
	}
	return coo.ToCSR()
}

// ExpectedGeometricDegree returns the expected average degree of a
// Geometric graph, ignoring boundary effects: n·π·r².
func ExpectedGeometricDegree(n int, radius float64) float64 {
	return float64(n) * math.Pi * radius * radius
}

// KroneckerNoisy generates an R-MAT graph with per-level probability
// noise (Seshadhri et al.'s "noisy Kronecker" correction): at each
// recursion level the quadrant probabilities are perturbed by ±noise,
// which smooths R-MAT's artificial degree-distribution oscillations.
// noise=0 reduces to plain RMAT.
func KroneckerNoisy(scale, edgeFactor int, a, b, c, noise float64, seed uint64) *sparse.CSR[Value] {
	n := 1 << scale
	edges := edgeFactor * n
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](n, n, int64(edges))
	// Per-level perturbed parameters, fixed for the whole generation so
	// the distribution stays consistent across edges.
	la := make([]float64, scale)
	lb := make([]float64, scale)
	lc := make([]float64, scale)
	for l := 0; l < scale; l++ {
		d := noise * (2*r.float64() - 1)
		la[l] = clampProb(a + d)
		lb[l] = clampProb(b + d/2)
		lc[l] = clampProb(c + d/2)
		// Renormalize so the quadrant probabilities sum to at most 1.
		if s := la[l] + lb[l] + lc[l]; s >= 1 {
			la[l] /= s + 1e-3
			lb[l] /= s + 1e-3
			lc[l] /= s + 1e-3
		}
	}
	for e := 0; e < edges; e++ {
		var i, j int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float64()
			switch {
			case p < la[bit]:
			case p < la[bit]+lb[bit]:
				j |= 1 << bit
			case p < la[bit]+lb[bit]+lc[bit]:
				i |= 1 << bit
			default:
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		if i != j {
			coo.Add(sparse.Index(i), sparse.Index(j), 1)
		}
	}
	m := sparse.Symmetrize(coo.ToCSR())
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m
}

func clampProb(p float64) float64 {
	if p < 0.01 {
		return 0.01
	}
	if p > 0.98 {
		return 0.98
	}
	return p
}

// Bipartite generates a random bipartite-structured rectangular matrix
// (rows×cols with approximately nnz entries) — the shape needed to
// exercise the kernels' rectangular paths outside of square graph
// benchmarks.
func Bipartite(rows, cols int, nnz int64, seed uint64) *sparse.CSR[Value] {
	r := newRNG(seed)
	coo := sparse.NewCOO[Value](rows, cols, nnz)
	for e := int64(0); e < nnz; e++ {
		coo.Add(sparse.Index(r.intn(rows)), sparse.Index(r.intn(cols)), 1)
	}
	m := coo.ToCSR()
	for i := range m.Val {
		m.Val[i] = 1
	}
	return m
}
