package graphgen

import (
	"sort"
	"testing"

	"maskedspgemm/internal/sparse"
)

func checkAdjacency(t *testing.T, name string, m *sparse.CSR[Value], wantSymmetric bool) {
	t.Helper()
	if err := m.Check(); err != nil {
		t.Fatalf("%s: malformed: %v", name, err)
	}
	for i := 0; i < m.Rows; i++ {
		if m.Has(i, sparse.Index(i)) {
			t.Fatalf("%s: self-loop at %d", name, i)
		}
	}
	for _, v := range m.Val {
		if v != 1 {
			t.Fatalf("%s: non-unit value %v", name, v)
		}
	}
	if wantSymmetric {
		if !sparse.EqualPattern(m, sparse.Transpose(m)) {
			t.Fatalf("%s: not symmetric", name)
		}
	}
}

func TestRMATStructure(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 42)
	checkAdjacency(t, "rmat", g, true)
	if g.Rows != 1024 {
		t.Errorf("rows = %d, want 1024", g.Rows)
	}
	// Heavy-tailed: the max degree must dwarf the average.
	s := sparse.ComputeStats(g, false)
	if float64(s.MaxRowNNZ) < 5*s.AvgRowNNZ {
		t.Errorf("RMAT not skewed: max %d vs avg %.1f", s.MaxRowNNZ, s.AvgRowNNZ)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 4, 0.57, 0.19, 0.19, 7)
	b := RMAT(8, 4, 0.57, 0.19, 0.19, 7)
	if !sparse.Equal(a, b) {
		t.Error("same seed produced different graphs")
	}
	c := RMAT(8, 4, 0.57, 0.19, 0.19, 8)
	if sparse.Equal(a, c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRoadNetworkStructure(t *testing.T) {
	g := RoadNetwork(40, 30, 0.95, 1)
	checkAdjacency(t, "road", g, true)
	if g.Rows != 1200 {
		t.Errorf("rows = %d, want 1200", g.Rows)
	}
	// Flat degrees: max degree is bounded by the lattice structure
	// (4 axis neighbors + up to 4 diagonal shortcut endpoints).
	s := sparse.ComputeStats(g, false)
	if s.MaxRowNNZ > 8 {
		t.Errorf("road max degree %d, want <= 8", s.MaxRowNNZ)
	}
	if s.AvgRowNNZ < 2 {
		t.Errorf("road too sparse: avg %.2f", s.AvgRowNNZ)
	}
}

func TestWebGraphStructure(t *testing.T) {
	g := WebGraph(2000, 8, 0.5, 3)
	checkAdjacency(t, "web", g, false)
	// Directed: it should NOT be symmetric.
	if sparse.EqualPattern(g, sparse.Transpose(g)) {
		t.Error("web graph unexpectedly symmetric")
	}
	// Scale-free in-degree: some page must have far more in-links than
	// the mean out-degree.
	indeg := sparse.RowDegrees(sparse.Transpose(g))
	sort.Slice(indeg, func(a, b int) bool { return indeg[a] > indeg[b] })
	if indeg[0] < 40 {
		t.Errorf("web top in-degree %d, want >= 40 (copying model should concentrate)", indeg[0])
	}
}

func TestCircuitStructure(t *testing.T) {
	g := Circuit(3000, 3, 0.6, 4, 600, 9)
	checkAdjacency(t, "circuit", g, true)
	s := sparse.ComputeStats(g, false)
	// The rails give a handful of enormous rows on a thin banded core.
	if s.MaxRowNNZ < 300 {
		t.Errorf("circuit rail degree %d too small", s.MaxRowNNZ)
	}
	deg := sparse.RowDegrees(g)
	var thin int
	for _, d := range deg[100:] { // skip the rail region
		if d <= 12 {
			thin++
		}
	}
	if thin < 2500 {
		t.Errorf("circuit body not banded: only %d thin rows", thin)
	}
}

func TestErdosRenyiStructure(t *testing.T) {
	g := ErdosRenyi(500, 2000, 11)
	checkAdjacency(t, "er", g, true)
	s := sparse.ComputeStats(g, false)
	if s.NNZ < 3000 || s.NNZ > 4100 {
		t.Errorf("ER nnz = %d, want ~2*2000 minus collisions", s.NNZ)
	}
}

func TestGeneratorsAllDeterministic(t *testing.T) {
	pairs := []struct {
		name string
		gen  func(seed uint64) *sparse.CSR[Value]
	}{
		{"road", func(s uint64) *sparse.CSR[Value] { return RoadNetwork(20, 20, 0.9, s) }},
		{"web", func(s uint64) *sparse.CSR[Value] { return WebGraph(300, 4, 0.4, s) }},
		{"circuit", func(s uint64) *sparse.CSR[Value] { return Circuit(300, 2, 0.5, 2, 50, s) }},
		{"er", func(s uint64) *sparse.CSR[Value] { return ErdosRenyi(200, 400, s) }},
	}
	for _, p := range pairs {
		if !sparse.Equal(p.gen(5), p.gen(5)) {
			t.Errorf("%s: nondeterministic for fixed seed", p.name)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	// Coarse sanity on splitmix64: bucket counts within 10% of uniform.
	r := newRNG(99)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", b, c, want)
		}
	}
	// float64 stays in [0,1).
	for i := 0; i < 1000; i++ {
		if f := r.float64(); f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
	}
}
