package graphgen

import (
	"math"
	"testing"

	"maskedspgemm/internal/sparse"
)

func TestSmallWorldStructure(t *testing.T) {
	// beta=0: pure ring lattice — every vertex has exactly k neighbors.
	g := SmallWorld(200, 6, 0, 1)
	checkAdjacency(t, "smallworld-lattice", g, true)
	for i := 0; i < g.Rows; i++ {
		if got := g.RowNNZ(i); got != 6 {
			t.Fatalf("lattice degree[%d] = %d, want 6", i, got)
		}
	}
	// beta=1: fully rewired — degrees vary, graph stays simple.
	g = SmallWorld(200, 6, 1, 2)
	checkAdjacency(t, "smallworld-random", g, true)
	s := sparse.ComputeStats(g, false)
	if s.MinRowNNZ == 6 && s.MaxRowNNZ == 6 {
		t.Error("beta=1 produced a perfect lattice")
	}
	// Rewiring must not change edge count by more than collision losses.
	if s.NNZ > 200*6 {
		t.Errorf("too many edges: %d", s.NNZ)
	}
}

func TestSmallWorldShortcutsShrinkDiameter(t *testing.T) {
	// The defining small-world property: rewiring creates long-range
	// edges. Count edges whose circular distance exceeds k (the lattice
	// has none; wrap-around neighbors are circularly near).
	const n, k = 400, 4
	longRange := func(g *sparse.CSR[Value]) int {
		count := 0
		for i := 0; i < g.Rows; i++ {
			for _, j := range g.RowCols(i) {
				d := int(j) - i
				if d < 0 {
					d = -d
				}
				if d > n/2 {
					d = n - d // circular distance
				}
				if d > k {
					count++
				}
			}
		}
		return count
	}
	if got := longRange(SmallWorld(n, k, 0, 3)); got != 0 {
		t.Errorf("pure lattice has %d long-range edges", got)
	}
	if got := longRange(SmallWorld(n, k, 0.2, 3)); got < 20 {
		t.Errorf("rewired lattice has only %d long-range edges", got)
	}
}

func TestGeometricStructure(t *testing.T) {
	g := Geometric(500, 0.08, 4)
	checkAdjacency(t, "geometric", g, true)
	s := sparse.ComputeStats(g, false)
	want := ExpectedGeometricDegree(500, 0.08)
	if s.AvgRowNNZ < want/3 || s.AvgRowNNZ > want*2 {
		t.Errorf("avg degree %.1f far from expectation %.1f", s.AvgRowNNZ, want)
	}
}

func TestKroneckerNoisy(t *testing.T) {
	g := KroneckerNoisy(9, 8, 0.57, 0.19, 0.19, 0.05, 5)
	checkAdjacency(t, "kronecker", g, true)
	s := sparse.ComputeStats(g, false)
	if float64(s.MaxRowNNZ) < 4*s.AvgRowNNZ {
		t.Errorf("noisy Kronecker lost its skew: max %d avg %.1f", s.MaxRowNNZ, s.AvgRowNNZ)
	}
	// noise=0 must reproduce plain RMAT exactly.
	a := KroneckerNoisy(8, 4, 0.57, 0.19, 0.19, 0, 9)
	b := RMAT(8, 4, 0.57, 0.19, 0.19, 9)
	// Same seed and same sampling order, but KroneckerNoisy consumes
	// extra draws for the level noise, so exact equality is not
	// expected; require only matching family statistics.
	sa, sb := sparse.ComputeStats(a, false), sparse.ComputeStats(b, false)
	if math.Abs(float64(sa.NNZ-sb.NNZ)) > float64(sb.NNZ)/4 {
		t.Errorf("noise=0 nnz %d far from RMAT %d", sa.NNZ, sb.NNZ)
	}
}

func TestBipartite(t *testing.T) {
	g := Bipartite(40, 70, 500, 6)
	if g.Rows != 40 || g.Cols != 70 {
		t.Fatalf("shape %dx%d", g.Rows, g.Cols)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if g.NNZ() == 0 || g.NNZ() > 500 {
		t.Errorf("nnz %d", g.NNZ())
	}
	for _, v := range g.Val {
		if v != 1 {
			t.Fatal("non-unit value")
		}
	}
}
