package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Formulations compares the masked-SpGEMM formulations beyond row-wise
// saxpy on the corpus benchmark C = A ⊙ (A×A):
//
//   - saxpy/MaskLoad: the paper's Fig. 5 linear scan,
//   - saxpy/Hybrid:   the paper's Fig. 9 push-pull (κ=1),
//   - dot:            the inner-product formulation that iterates mask
//     entries directly (related-work direction),
//   - 2-D tiles:      the panel-major extension of §V-A (8 k-panels).
//
// All four must agree on the output; the table reports runtimes.
func Formulations(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Kernel formulations (ms) on C = A ⊙ (A×A); 2048 balanced tiles, dynamic")
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s\n",
		"Graph", "saxpy-load", "saxpy-hyb", "dot", "2D(8 panels)")
	sr := semiring.PlusTimes[float64]{}
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		// The dot formulation needs Bᵀ; for web graphs (directed) that is
		// a real transpose, for the symmetric families it equals A.
		bT := sparse.Transpose(a)

		loadCfg := tunedConfig(o.Workers)
		loadCfg.Iteration = core.MaskLoad
		load, err := TimeMasked(a, loadCfg, o.Method)
		if err != nil {
			return err
		}
		hyb, err := TimeMasked(a, tunedConfig(o.Workers), o.Method)
		if err != nil {
			return err
		}
		dotCfg := tunedConfig(o.Workers)
		dot, err := TimeFn(func() (int64, error) {
			c, err := core.MaskedSpGEMMDot[float64](sr, a, a, bT, dotCfg)
			if err != nil {
				return 0, err
			}
			return c.NNZ(), nil
		}, o.Method)
		if err != nil {
			return err
		}
		twoD, err := TimeFn(func() (int64, error) {
			c, err := core.MaskedSpGEMM2D[float64](sr, a, a, a, dotCfg, 8)
			if err != nil {
				return 0, err
			}
			return c.NNZ(), nil
		}, o.Method)
		if err != nil {
			return err
		}
		if load.OutputNNZ != dot.OutputNNZ || load.OutputNNZ != twoD.OutputNNZ {
			return fmt.Errorf("%s: formulations disagree on output nnz (%d/%d/%d)",
				g.Name, load.OutputNNZ, dot.OutputNNZ, twoD.OutputNNZ)
		}
		fmt.Fprintf(w, "%-22s %12.2f %12.2f %12.2f %12.2f\n",
			g.Name, load.Millis, hyb.Millis, dot.Millis, twoD.Millis)
	}
	return nil
}
