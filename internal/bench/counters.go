package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
)

// CountersReport runs the instrumented kernel on the corpus and prints
// actual accumulator traffic next to the symbolic model: updates
// attempted (vs Eq. 2's flop term), the share the mask rejected (the
// §III-B waste the co-iteration spaces exist to avoid), and the hybrid
// space's realized saving vs the linear scan.
func CountersReport(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Instrumented kernel counters: actual work vs the Eq. 2/3 model")
	fmt.Fprintf(w, "%-22s %12s %12s %9s %12s %9s\n",
		"Graph", "model-flops", "lin-updates", "rejected", "hyb-updates", "saving")
	sr := semiring.PlusTimes[float64]{}
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		p, err := core.ProfileMasked(a, a, a, 1)
		if err != nil {
			return err
		}
		linCfg := tunedConfig(o.Workers)
		linCfg.Iteration = core.MaskLoad
		_, lin, err := core.MaskedSpGEMMInstrumented[float64](sr, a, a, a, linCfg)
		if err != nil {
			return err
		}
		_, hyb, err := core.MaskedSpGEMMInstrumented[float64](sr, a, a, a, tunedConfig(o.Workers))
		if err != nil {
			return err
		}
		if lin.Updates != p.Flops {
			return fmt.Errorf("%s: linear updates %d != modeled flops %d — model broken",
				g.Name, lin.Updates, p.Flops)
		}
		rejPct := 0.0
		if lin.Updates > 0 {
			rejPct = 100 * float64(lin.Rejected) / float64(lin.Updates)
		}
		saving := 1.0
		if hyb.Updates > 0 {
			saving = float64(lin.Updates) / float64(hyb.Updates)
		}
		fmt.Fprintf(w, "%-22s %12d %12d %8.1f%% %12d %8.2fx\n",
			g.Name, p.Flops, lin.Updates, rejPct, hyb.Updates, saving)
	}
	return nil
}
