package bench

import (
	"fmt"
	"io"
	"math"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TrsvEntry is one graph's triangular-solve comparison: the serial
// substitution loop against the dependency-wave schedule, both solving
// L·x = 1 with L the graph's lower triangle plus a dominant diagonal.
type TrsvEntry struct {
	Graph string `json:"graph"`
	Rows  int    `json:"rows"`
	NNZ   int64  `json:"nnz"`
	// Levels/Waves/SerialWaves/Barriers are the wave run's schedule
	// shape, from one recorded (untimed) solve.
	Levels      int64 `json:"levels"`
	Waves       int64 `json:"waves"`
	SerialWaves int64 `json:"serial_waves"`
	Barriers    int64 `json:"barriers"`
	// Serial and Wave are the timed measurements; OutputNNZ carries the
	// solution checksum, which the experiment asserts equal (the wave
	// schedule is bit-identical by construction).
	Serial Measurement `json:"serial"`
	Wave   Measurement `json:"wave"`
	// Speedup is Serial.Millis / Wave.Millis.
	Speedup float64 `json:"speedup"`
}

// TrsvReport is the triangular-solve experiment's document.
type TrsvReport struct {
	Schema  string      `json:"schema"`
	Workers int         `json:"workers"`
	Entries []TrsvEntry `json:"entries"`
}

// TrsvReportSchema identifies the JSON layout of a TrsvReport.
const TrsvReportSchema = "maskedspgemm/bench-trsv/v1"

// CheckWaveSpeedup fails unless some entry's wave schedule beats serial
// by at least min (e.g. 1.0 = parity). Timing-based and meaningless
// without real cores, so the `make bench-trsv` gate leaves it off by
// default (TRSV_SPEEDUP=0) and the bit-identity gate inside the
// experiment stays unconditional.
func (r *TrsvReport) CheckWaveSpeedup(min float64) error {
	best, graph := 0.0, ""
	for _, e := range r.Entries {
		if e.Speedup > best {
			best, graph = e.Speedup, e.Graph
		}
	}
	if best < min {
		return fmt.Errorf("bench: best wave-solve speedup %.2fx (%s) below required %.2fx",
			best, graph, min)
	}
	return nil
}

// WriteJSON emits the report as a schema-tagged JSON document.
func (r *TrsvReport) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r)
}

// ValidateTrsvReportJSON checks that data is a schema-conforming
// TrsvReport document (strict round-trip plus schema tag).
func ValidateTrsvReportJSON(data []byte) error {
	var r TrsvReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != TrsvReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, TrsvReportSchema)
	}
	return nil
}

// lowerFromGraph builds the solve operand the experiment uses: the
// strict lower triangle of a plus a dominant diagonal (1 + row degree),
// so every corpus graph yields a nonsingular lower-triangular system
// whose dependency DAG is the graph's own edge structure.
func lowerFromGraph(a *sparse.CSR[float64]) *sparse.CSR[float64] {
	n := a.Rows
	coo := sparse.NewCOO[float64](n, n, a.NNZ())
	for i := 0; i < n; i++ {
		deg := 0.0
		for _, j := range a.RowCols(i) {
			if int(j) < i {
				coo.Add(sparse.Index(i), j, 1)
				deg++
			}
		}
		coo.Add(sparse.Index(i), sparse.Index(i), 1+deg)
	}
	return coo.ToCSR()
}

// vecChecksum folds a solution vector's exact bit patterns into one
// int64 (FNV-1a over Float64bits), so Measurement.OutputNNZ doubles as
// a bit-identity checksum across the serial and wave runs.
func vecChecksum(x []float64) int64 {
	h := uint64(1469598103934665603)
	for _, v := range x {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return int64(h)
}

// TrsvBench runs the masked-triangular-solve experiment: for every
// corpus graph, L·x = 1 solved warm by the serial substitution loop and
// by the dependency-wave schedule (level sets coarsened by Eq. 2 row
// work), with the solutions compared bit-for-bit — a hard gate — and
// the wave run's schedule shape reported from the recorder.
func TrsvBench(w io.Writer, o Options) (*TrsvReport, error) {
	workers := workersOr(o.Workers, 4)
	report := &TrsvReport{Schema: TrsvReportSchema, Workers: workers}
	sr := semiring.PlusTimes[float64]{}
	fmt.Fprintf(w, "Triangular solve: serial substitution vs dependency waves (p=%d), L = tril(A)+D, b = 1\n", workers)
	fmt.Fprintf(w, "%-22s %10s %12s %8s %8s %8s %12s %12s %8s\n",
		"graph", "n", "nnz(L)", "levels", "waves", "serial-w", "serial ms", "wave ms", "speedup")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		l := lowerFromGraph(a)
		n := l.Rows
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		dstS := make([]float64, n)
		dstW := make([]float64, n)

		serialOpts := core.SolveOpts{Tri: core.Lower}
		runSerial := func() (int64, error) {
			if err := core.SolveTriSerial(dstS, l, b, serialOpts); err != nil {
				return 0, err
			}
			return vecChecksum(dstS), nil
		}

		eng := o.Engine
		if eng == nil {
			eng = exec.New(exec.Config{})
		}
		cfg := o.planify(core.DefaultConfig())
		cfg.Workers = workers
		cfg.Engine = eng
		waveOpts := core.SolveOpts{Tri: core.Lower, Mode: core.SolveWaves}
		runWave := func() (int64, error) {
			if err := core.SolveTriInto[float64, semiring.PlusTimes[float64]](sr, dstW, l, b, cfg, waveOpts); err != nil {
				return 0, err
			}
			return vecChecksum(dstW), nil
		}

		// One recorded, untimed wave solve captures the schedule shape
		// (and warms the plan cache); the timed loops run recorder-free.
		rec := o.newRecorder()
		cfgRec := cfg
		cfgRec.Recorder = rec
		if err := core.SolveTriInto[float64, semiring.PlusTimes[float64]](sr, dstW, l, b, cfgRec, waveOpts); err != nil {
			return nil, fmt.Errorf("trsv/%s wave warm-up: %w", g.Name, err)
		}
		sc := rec.Stats().Sched

		sm, err := TimeFn(runSerial, o.Method)
		if err != nil {
			return nil, fmt.Errorf("trsv/%s serial: %w", g.Name, err)
		}
		wm, err := TimeFn(runWave, o.Method)
		if err != nil {
			return nil, fmt.Errorf("trsv/%s wave: %w", g.Name, err)
		}

		// Bit-identity is the experiment's hard gate: checksum and the
		// full vectors must agree exactly.
		if sm.OutputNNZ != wm.OutputNNZ {
			return nil, fmt.Errorf("trsv/%s: wave checksum %d differs from serial %d",
				g.Name, wm.OutputNNZ, sm.OutputNNZ)
		}
		for i := range dstS {
			if dstS[i] != dstW[i] {
				return nil, fmt.Errorf("trsv/%s: wave x[%d] = %v, serial %v — not bit-identical",
					g.Name, i, dstW[i], dstS[i])
			}
		}

		entry := TrsvEntry{
			Graph: g.Name, Rows: n, NNZ: l.NNZ(),
			Levels: sc.Levels, Waves: sc.Waves,
			SerialWaves: sc.SerialWaves, Barriers: sc.Barriers,
			Serial: sm, Wave: wm,
		}
		if wm.Millis > 0 {
			entry.Speedup = sm.Millis / wm.Millis
		}
		report.Entries = append(report.Entries, entry)
		o.Log.Add("trsv", g.Name, "serial", sm)
		o.Log.Add("trsv", g.Name, "wave", wm)
		fmt.Fprintf(w, "%-22s %10d %12d %8d %8d %8d %12.3f %12.3f %7.2fx\n",
			g.Name, n, l.NNZ(), sc.Levels, sc.Waves, sc.SerialWaves,
			sm.Millis, wm.Millis, entry.Speedup)
	}
	return report, nil
}
