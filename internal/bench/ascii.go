package bench

import "strings"

// sparkBlocks are the eight block glyphs used to render a series as a
// one-line sparkline in terminal output — enough to see each figure's
// shape (the co-iteration cliff, the high-tile-count ramp) without
// leaving the console.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled to the series' own min..max. A flat
// series renders as mid-height blocks; an empty series as "".
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	if hi == lo {
		for range values {
			b.WriteRune(sparkBlocks[len(sparkBlocks)/2])
		}
		return b.String()
	}
	for _, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkBlocks) {
			idx = len(sparkBlocks) - 1
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}
