package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Methodology controls how a kernel is timed. The paper runs one
// warm-up, then repeats for 5 seconds or 10000 iterations, whichever
// comes first (§IV-A); the defaults here shrink that budget to suit a
// laptop while keeping the shape: warm-up, repeat until either the time
// budget or the repetition cap is hit, report the minimum.
type Methodology struct {
	// Warmups is the number of untimed runs before measurement.
	Warmups int
	// MaxReps caps the number of timed repetitions.
	MaxReps int
	// Budget caps the total measurement time.
	Budget time.Duration
	// Context, when non-nil, aborts the measurement loop between runs
	// and cancels in-flight kernels (for kernels that observe it), so an
	// interrupted benchmark exits promptly with partial results flushed.
	Context context.Context
}

// DefaultMethodology measures with 1 warm-up, up to 5 reps, 2 s budget.
func DefaultMethodology() Methodology {
	return Methodology{Warmups: 1, MaxReps: 5, Budget: 2 * time.Second}
}

// QuickMethodology is a single warm-up-free measurement for smoke runs.
func QuickMethodology() Methodology {
	return Methodology{Warmups: 0, MaxReps: 1, Budget: time.Hour}
}

// Measurement is one timed kernel execution summary. Millis (the
// minimum) remains the headline number the paper's methodology reports;
// the mean, median and standard deviation expose run-to-run variance
// for the machine-readable outputs.
type Measurement struct {
	// Millis is the minimum observed wall time in milliseconds.
	Millis float64 `json:"min_millis"`
	// MeanMillis is the arithmetic mean over the timed repetitions.
	MeanMillis float64 `json:"mean_millis"`
	// P50Millis is the median repetition time.
	P50Millis float64 `json:"p50_millis"`
	// StddevMillis is the population standard deviation of the
	// repetition times (0 for a single rep).
	StddevMillis float64 `json:"stddev_millis"`
	// Reps is how many timed repetitions were taken.
	Reps int `json:"reps"`
	// OutputNNZ is the result size, kept as a cross-run checksum.
	OutputNNZ int64 `json:"output_nnz"`
}

// TimeMasked measures C = A ⊙ (A×A) — the paper's benchmark kernel
// (§IV-A: M and B are identical to A) — under the given configuration.
func TimeMasked(a *sparse.CSR[float64], cfg core.Config, m Methodology) (Measurement, error) {
	sr := semiring.PlusTimes[float64]{}
	if m.Context != nil && cfg.Context == nil {
		cfg.Context = m.Context
	}
	run := func() (int64, error) {
		c, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
		if err != nil {
			return 0, err
		}
		return c.NNZ(), nil
	}
	return measure(run, m)
}

// TimeFn measures an arbitrary kernel closure returning a checksum.
func TimeFn(run func() (int64, error), m Methodology) (Measurement, error) {
	return measure(run, m)
}

func measure(run func() (int64, error), m Methodology) (Measurement, error) {
	var out Measurement
	for w := 0; w < m.Warmups; w++ {
		if err := methodErr(m); err != nil {
			return out, err
		}
		nnz, err := run()
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
	}
	deadline := time.Now().Add(m.Budget)
	samples := make([]float64, 0, m.MaxReps)
	for rep := 0; rep < m.MaxReps; rep++ {
		// The budget gates *starting* a repetition, not just finishing
		// one: once a rep has consumed the budget, the next would overrun
		// it by a whole kernel run. The first rep always runs so every
		// measurement has at least one sample.
		if rep > 0 && !time.Now().Before(deadline) {
			break
		}
		if err := methodErr(m); err != nil {
			return out, err
		}
		start := time.Now()
		nnz, err := run()
		elapsed := time.Since(start)
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
		out.Reps++
		samples = append(samples, float64(elapsed)/float64(time.Millisecond))
	}
	out.fillFrom(samples)
	return out, nil
}

// fillFrom computes the summary statistics from the per-rep times.
func (out *Measurement) fillFrom(samples []float64) {
	if len(samples) == 0 {
		return
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	out.Millis = sorted[0]
	n := len(sorted)
	if n%2 == 1 {
		out.P50Millis = sorted[n/2]
	} else {
		out.P50Millis = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	for _, s := range sorted {
		sum += s
	}
	out.MeanMillis = sum / float64(n)
	var sq float64
	for _, s := range sorted {
		d := s - out.MeanMillis
		sq += d * d
	}
	out.StddevMillis = math.Sqrt(sq / float64(n))
}

// methodErr reports the methodology's context error, wrapped in the
// kernel taxonomy's ErrCanceled so callers can dispatch uniformly.
func methodErr(m Methodology) error {
	if m.Context == nil {
		return nil
	}
	if err := m.Context.Err(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrCanceled, err)
	}
	return nil
}
