package bench

import (
	"context"
	"fmt"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Methodology controls how a kernel is timed. The paper runs one
// warm-up, then repeats for 5 seconds or 10000 iterations, whichever
// comes first (§IV-A); the defaults here shrink that budget to suit a
// laptop while keeping the shape: warm-up, repeat until either the time
// budget or the repetition cap is hit, report the minimum.
type Methodology struct {
	// Warmups is the number of untimed runs before measurement.
	Warmups int
	// MaxReps caps the number of timed repetitions.
	MaxReps int
	// Budget caps the total measurement time.
	Budget time.Duration
	// Context, when non-nil, aborts the measurement loop between runs
	// and cancels in-flight kernels (for kernels that observe it), so an
	// interrupted benchmark exits promptly with partial results flushed.
	Context context.Context
}

// DefaultMethodology measures with 1 warm-up, up to 5 reps, 2 s budget.
func DefaultMethodology() Methodology {
	return Methodology{Warmups: 1, MaxReps: 5, Budget: 2 * time.Second}
}

// QuickMethodology is a single warm-up-free measurement for smoke runs.
func QuickMethodology() Methodology {
	return Methodology{Warmups: 0, MaxReps: 1, Budget: time.Hour}
}

// Measurement is one timed kernel execution summary.
type Measurement struct {
	// Millis is the minimum observed wall time in milliseconds.
	Millis float64
	// Reps is how many timed repetitions were taken.
	Reps int
	// OutputNNZ is the result size, kept as a cross-run checksum.
	OutputNNZ int64
}

// TimeMasked measures C = A ⊙ (A×A) — the paper's benchmark kernel
// (§IV-A: M and B are identical to A) — under the given configuration.
func TimeMasked(a *sparse.CSR[float64], cfg core.Config, m Methodology) (Measurement, error) {
	sr := semiring.PlusTimes[float64]{}
	if m.Context != nil && cfg.Context == nil {
		cfg.Context = m.Context
	}
	run := func() (int64, error) {
		c, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
		if err != nil {
			return 0, err
		}
		return c.NNZ(), nil
	}
	return measure(run, m)
}

// TimeFn measures an arbitrary kernel closure returning a checksum.
func TimeFn(run func() (int64, error), m Methodology) (Measurement, error) {
	return measure(run, m)
}

func measure(run func() (int64, error), m Methodology) (Measurement, error) {
	var out Measurement
	for w := 0; w < m.Warmups; w++ {
		if err := methodErr(m); err != nil {
			return out, err
		}
		nnz, err := run()
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
	}
	deadline := time.Now().Add(m.Budget)
	best := time.Duration(0)
	for rep := 0; rep < m.MaxReps; rep++ {
		if err := methodErr(m); err != nil {
			return out, err
		}
		start := time.Now()
		nnz, err := run()
		elapsed := time.Since(start)
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
		out.Reps++
		if best == 0 || elapsed < best {
			best = elapsed
		}
		if time.Now().After(deadline) {
			break
		}
	}
	out.Millis = float64(best) / float64(time.Millisecond)
	return out, nil
}

// methodErr reports the methodology's context error, wrapped in the
// kernel taxonomy's ErrCanceled so callers can dispatch uniformly.
func methodErr(m Methodology) error {
	if m.Context == nil {
		return nil
	}
	if err := m.Context.Err(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrCanceled, err)
	}
	return nil
}
