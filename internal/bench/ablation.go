package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/tiling"
)

// Ablations measures the secondary design choices DESIGN.md §5 calls
// out, each against the paper's recommended configuration:
//
//   - marker-based vs explicit accumulator reset (SS:GB vs GrB, §III-C),
//   - PlusPair vs PlusTimes semirings for triangle counting,
//   - the vanilla (post-hoc mask) space vs the fused spaces,
//   - accumulator sizing: mask bound (ours) vs flop bound (GrB/SS:GB),
//     shown indirectly through the hash accumulator's growth counters.
func Ablations(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Ablations (ms); recommended config = 2048 balanced tiles, dynamic, hybrid κ=1")
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s %12s\n",
		"Graph", "marker", "explicit", "PlusTimes", "PlusPair", "vanilla")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		base := core.Config{
			Iteration: core.Hybrid, Kappa: 1,
			Accumulator: accum.HashKind, MarkerBits: 32,
			Tiles: 2048, Tiling: tiling.FlopBalanced,
			Schedule: sched.Dynamic, Workers: o.Workers,
		}

		marker, err := TimeMasked(a, base, o.Method)
		if err != nil {
			return err
		}
		expl := base
		expl.Accumulator = accum.HashExplicitKind
		explicit, err := TimeMasked(a, expl, o.Method)
		if err != nil {
			return err
		}

		pair, err := TimeFn(func() (int64, error) {
			c, err := core.MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, a, a, a, base)
			if err != nil {
				return 0, err
			}
			return c.NNZ(), nil
		}, o.Method)
		if err != nil {
			return err
		}

		van := base
		van.Iteration = core.Vanilla
		vanilla, err := TimeMasked(a, van, vanillaMethod(o.Method))
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%-22s %12.2f %12.2f %12.2f %12.2f %12.2f\n",
			g.Name, marker.Millis, explicit.Millis, marker.Millis, pair.Millis,
			vanilla.Millis)
	}
	return nil
}

// vanillaMethod trims repetitions for the deliberately wasteful vanilla
// space, which can be orders of magnitude slower (the circuit5M effect).
func vanillaMethod(m Methodology) Methodology {
	m.Warmups = 0
	m.MaxReps = 1
	return m
}
