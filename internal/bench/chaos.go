package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// chaosSwap routes Decide to a swappable seeded injector so one engine
// — whose Config.Chaos is fixed at construction — serves the whole
// drill with a fresh trigger set per cell.
type chaosSwap struct {
	cur atomic.Pointer[chaos.Seeded]
}

func (s *chaosSwap) Decide(p chaos.Point) chaos.Fault {
	if inj := s.cur.Load(); inj != nil {
		return inj.Decide(p)
	}
	return chaos.Fault{}
}

// quietInjector is armed machinery that never fires: the price of an
// enabled-but-silent injector, measured against the nil fast path.
type quietInjector struct{}

func (quietInjector) Decide(chaos.Point) chaos.Fault { return chaos.Fault{} }

// chaosSteadyAllocBudget bounds the warm, engineless, serial core
// Multiply's allocations per operation: the freshly assembled result
// (the measurement loop frees the output each rep, so it is rebuilt by
// design) plus a handful of fixed closure cells — the same fixed cost
// the facade pins in its steady-state alloc test. The budget predates
// the chaos layer, so staying inside it proves the nil-injector fast
// path adds zero allocations to the hot tile loop.
const chaosSteadyAllocBudget = 16

// ChaosDrill drives a seeded fault through every injection point under
// every scheduling policy against one shared engine, then pins the
// disabled-injector cost of the hot tile loop. The per-cell contract is
// the chaos suite's: the fault run either fails with a typed error or
// succeeds bit-identically to the engineless reference; the engine's
// pool invariants hold immediately afterwards; and a clean rerun on the
// same engine reproduces the reference exactly. Any violation is an
// error — `spgemm-bench -chaos-seed N` is the deployable form of the
// `make chaos` gate, reusable against arbitrary seeds.
func ChaosDrill(w io.Writer, o Options, seed int64) error {
	swap := &chaosSwap{}
	eng := exec.New(exec.Config{Chaos: swap})
	sr := semiring.PlusTimes[float64]{}

	cells := []struct {
		p      chaos.Point
		k      chaos.Kind
		maxNth int64
	}{
		{chaos.WorkspaceCheckout, chaos.KindPanic, 1},
		{chaos.WorkspaceRelease, chaos.KindPanic, 1},
		{chaos.TileClaim, chaos.KindCancel, 8},
		{chaos.WorkerSpawn, chaos.KindPanic, 2},
		{chaos.AccumGrow, chaos.KindPanic, 1},
		{chaos.PlanStore, chaos.KindError, 1},
		{chaos.RowKernel, chaos.KindPressure, 16},
	}

	fmt.Fprintf(w, "Chaos drill: seeded fault matrix, seed %d, shared engine\n", seed)
	fmt.Fprintf(w, "%-8s %-18s %-10s %10s %6s  %s\n",
		"sched", "point", "kind", "crossings", "fired", "outcome")
	absorbed, surfaced := 0, 0
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		for _, cell := range cells {
			// Fresh operands per cell so the fault run builds (and can
			// fault in) its own plan instead of hitting the shared cache.
			cellSeed := uint64(seed) ^ uint64(cell.p)<<16 ^ uint64(policy)<<8
			a := graphgen.ErdosRenyi(140, 140*8, cellSeed)
			m := graphgen.ErdosRenyi(140, 140*14, cellSeed+1)
			cfg := core.DefaultConfig()
			cfg.Schedule = policy
			cfg.Tiles = 16
			cfg.Workers = workersOr(o.Workers, 4)

			ref, err := core.MaskedSpGEMM[float64](sr, m, a, a, cfg)
			if err != nil {
				return fmt.Errorf("bench: chaos reference run: %w", err)
			}

			sd := chaos.NewSeeded(seed)
			sd.ArmSeeded(cell.p, cell.k, cell.maxNth, time.Millisecond)
			swap.cur.Store(sd)
			cfg.Engine = eng
			cfg.Resilience = &core.Resilience{Chaos: swap}
			got, ferr := chaosContained(func() (*sparse.CSR[float64], error) {
				return core.MaskedSpGEMM[float64](sr, m, a, a, cfg)
			})
			swap.cur.Store(nil)

			outcome := "absorbed (bit-identical)"
			switch {
			case ferr != nil && !typedChaosError(ferr):
				return fmt.Errorf("bench: chaos cell %v/%v/%v failed with untyped error: %w",
					policy, cell.p, cell.k, ferr)
			case ferr != nil:
				outcome = "typed: " + chaosErrName(ferr)
				surfaced++
			case !sparse.Equal(ref, got):
				return fmt.Errorf("bench: chaos cell %v/%v/%v succeeded but result differs from reference",
					policy, cell.p, cell.k)
			default:
				absorbed++
			}
			if err := eng.SelfCheck(); err != nil {
				return fmt.Errorf("bench: pool invariants violated after %v/%v/%v: %w",
					policy, cell.p, cell.k, err)
			}

			// Clean rerun on the same engine: the pool must serve a
			// pristine workspace and reproduce the reference exactly.
			cfg.Resilience = nil
			clean, err := core.MaskedSpGEMM[float64](sr, m, a, a, cfg)
			if err != nil {
				return fmt.Errorf("bench: clean rerun after %v/%v/%v: %w", policy, cell.p, cell.k, err)
			}
			if !sparse.Equal(ref, clean) {
				return fmt.Errorf("bench: clean rerun after %v/%v/%v differs from reference",
					policy, cell.p, cell.k)
			}
			if err := eng.SelfCheck(); err != nil {
				return fmt.Errorf("bench: pool invariants violated after clean rerun %v/%v/%v: %w",
					policy, cell.p, cell.k, err)
			}
			fmt.Fprintf(w, "%-8v %-18v %-10v %10d %6d  %s\n",
				policy, cell.p, cell.k, sd.Crossings(cell.p), sd.Fired(cell.p), outcome)
		}
	}
	// Wave-barrier cells: the dependency-wave executor's barrier seam,
	// driven through the masked triangular solve — the kernel whose
	// schedule actually crosses barriers. Same contract as above: typed
	// error or bit-identical solution, pool invariants after every cell.
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		for _, kind := range []chaos.Kind{chaos.KindPanic, chaos.KindCancel, chaos.KindDelay} {
			cellSeed := uint64(seed) ^ uint64(chaos.WaveBarrier)<<16 ^ uint64(policy)<<8 ^ uint64(kind)
			l := lowerFromGraph(graphgen.ErdosRenyi(160, 160*8, cellSeed))
			b := make([]float64, l.Rows)
			for i := range b {
				b[i] = 1
			}
			ref := make([]float64, l.Rows)
			if err := core.SolveTriSerial(ref, l, b, core.SolveOpts{Tri: core.Lower}); err != nil {
				return fmt.Errorf("bench: chaos solve reference: %w", err)
			}

			cfg := core.DefaultConfig()
			cfg.Schedule = policy
			cfg.Workers = workersOr(o.Workers, 4)
			cfg.Engine = eng
			so := core.SolveOpts{Tri: core.Lower, Mode: core.SolveWaves, WaveGrain: 64, MergeBelow: 2}

			sd := chaos.NewSeeded(seed)
			sd.ArmSeeded(chaos.WaveBarrier, kind, 4, time.Millisecond)
			swap.cur.Store(sd)
			cfg.Resilience = &core.Resilience{Chaos: swap}
			got := make([]float64, l.Rows)
			ferr := core.SolveTriInto[float64, semiring.PlusTimes[float64]](sr, got, l, b, cfg, so)
			swap.cur.Store(nil)

			outcome := "absorbed (bit-identical)"
			switch {
			case ferr != nil && !typedChaosError(ferr):
				return fmt.Errorf("bench: chaos cell %v/%v/%v failed with untyped error: %w",
					policy, chaos.WaveBarrier, kind, ferr)
			case ferr != nil:
				outcome = "typed: " + chaosErrName(ferr)
				surfaced++
			case !solutionsEqual(ref, got):
				return fmt.Errorf("bench: chaos cell %v/%v/%v succeeded but solution differs from serial",
					policy, chaos.WaveBarrier, kind)
			default:
				absorbed++
			}
			if err := eng.SelfCheck(); err != nil {
				return fmt.Errorf("bench: pool invariants violated after %v/%v/%v: %w",
					policy, chaos.WaveBarrier, kind, err)
			}

			// Clean rerun on the same engine must reproduce serial exactly.
			cfg.Resilience = nil
			clean := make([]float64, l.Rows)
			if err := core.SolveTriInto[float64, semiring.PlusTimes[float64]](sr, clean, l, b, cfg, so); err != nil {
				return fmt.Errorf("bench: clean solve rerun after %v/%v/%v: %w",
					policy, chaos.WaveBarrier, kind, err)
			}
			if !solutionsEqual(ref, clean) {
				return fmt.Errorf("bench: clean solve rerun after %v/%v/%v differs from serial",
					policy, chaos.WaveBarrier, kind)
			}
			fmt.Fprintf(w, "%-8v %-18v %-10v %10d %6d  %s\n",
				policy, chaos.WaveBarrier, kind, sd.Crossings(chaos.WaveBarrier),
				sd.Fired(chaos.WaveBarrier), outcome)
		}
	}

	st := eng.Stats()
	fmt.Fprintf(w, "%d cells: %d faults surfaced typed, %d absorbed; %d workspaces quarantined; pool invariants held throughout\n",
		absorbed+surfaced, surfaced, absorbed, st.Quarantines)

	return chaosOverheadPin(w, o)
}

// solutionsEqual compares two solve vectors bit-for-bit.
func solutionsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chaosOverheadPin measures the warm, engineless, serial Multiply with
// the injector disabled (the nil fast path) against the same loop with
// an armed-but-quiet injector, and fails if the fast path allocates
// more than the quiet path or exceeds the steady-state budget the
// facade pinned before the chaos layer existed.
func chaosOverheadPin(w io.Writer, o Options) error {
	sr := semiring.PlusTimes[float64]{}
	a := graphgen.ErdosRenyi(128, 128*10, 0xC4A05)
	cfg := core.DefaultConfig()
	cfg.Tiles = 4
	cfg.Workers = 1 // serial: no per-run goroutine spawns to count

	measure := func(res *core.Resilience) (allocsPerOp, msPerOp float64, err error) {
		c := cfg
		c.Resilience = res
		mu, err := core.NewMultiplier[float64](sr, a, a, a, c)
		if err != nil {
			return 0, 0, err
		}
		// One run warms the plan's tile output buffers.
		if _, err := mu.Multiply(); err != nil {
			return 0, 0, err
		}
		const reps = 50
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := mu.Multiply(); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / reps,
			float64(elapsed) / float64(time.Millisecond) / reps, nil
	}

	offAllocs, offMs, err := measure(nil)
	if err != nil {
		return fmt.Errorf("bench: chaos-off measurement: %w", err)
	}
	quietAllocs, quietMs, err := measure(&core.Resilience{Chaos: quietInjector{}})
	if err != nil {
		return fmt.Errorf("bench: quiet-injector measurement: %w", err)
	}

	fmt.Fprintf(w, "nil-injector fast path: %.0f allocs/op %.3f ms/op; quiet injector: %.0f allocs/op %.3f ms/op\n",
		offAllocs, offMs, quietAllocs, quietMs)
	if offAllocs > quietAllocs {
		return fmt.Errorf("bench: nil-injector path allocates more than the armed quiet path (%.0f > %.0f allocs/op)",
			offAllocs, quietAllocs)
	}
	if offAllocs > chaosSteadyAllocBudget {
		return fmt.Errorf("bench: nil-injector warm Multiply allocates %.0f/op, over the pre-chaos steady budget %d",
			offAllocs, chaosSteadyAllocBudget)
	}
	fmt.Fprintf(w, "nil-injector fast path within the %d-alloc steady budget; no allocation added by the chaos layer\n",
		chaosSteadyAllocBudget)
	return nil
}

// chaosContained converts an escaping panic into an error, standing in
// for the facade's recover layer so the drill can drive faults at seams
// outside the scheduler's containment.
func chaosContained(f func() (*sparse.CSR[float64], error)) (c *sparse.CSR[float64], err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("contained panic: %w", e)
				return
			}
			err = fmt.Errorf("contained panic: %v", r)
		}
	}()
	return f()
}

// typedChaosError reports whether err belongs to the fault taxonomy a
// chaos run may legitimately surface.
func typedChaosError(err error) bool {
	return errors.Is(err, core.ErrPanic) || errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, core.ErrStalled) || errors.Is(err, chaos.ErrInjected)
}

// chaosErrName labels err with the first matching sentinel for the
// drill's report rows.
func chaosErrName(err error) string {
	switch {
	case errors.Is(err, core.ErrStalled):
		return "ErrStalled"
	case errors.Is(err, core.ErrPanic):
		return "ErrPanic"
	case errors.Is(err, core.ErrCanceled):
		return "ErrCanceled"
	default:
		return "ErrInjected"
	}
}

// workersOr returns n unless it is zero, then def.
func workersOr(n, def int) int {
	if n != 0 {
		return n
	}
	return def
}
