package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sparse"
)

// testShift shrinks the corpus to test scale (~1/2^5 of benchmark size).
const testShift = 5

func testOptions() Options {
	o := DefaultOptions()
	o.Shift = testShift
	o.Workers = 2
	o.Method = QuickMethodology()
	o.TileCounts = []int{16, 64}
	o.Kappas = []float64{0.1, 1, 10}
	return o
}

func TestCorpusBuildsAndIsDeterministic(t *testing.T) {
	for _, g := range Corpus {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			a := g.Build(testShift)
			if err := a.Check(); err != nil {
				t.Fatalf("malformed: %v", err)
			}
			if a.NNZ() == 0 {
				t.Fatal("empty graph")
			}
			b := g.Build(testShift)
			if !sparse.Equal(a, b) {
				t.Error("not deterministic")
			}
			if g.PaperN == 0 || g.PaperNNZ == 0 {
				t.Error("missing Table I reference sizes")
			}
		})
	}
}

func TestCorpusKindsMatchStructure(t *testing.T) {
	for _, g := range Corpus {
		a := g.Build(testShift)
		s := sparse.ComputeStats(a, false)
		switch g.Kind {
		case "R":
			if s.MaxRowNNZ > 10 {
				t.Errorf("%s: road graph with max degree %d", g.Name, s.MaxRowNNZ)
			}
		case "S":
			if float64(s.MaxRowNNZ) < 4*s.AvgRowNNZ {
				t.Errorf("%s: social graph without hubs (max %d, avg %.1f)",
					g.Name, s.MaxRowNNZ, s.AvgRowNNZ)
			}
		case "C":
			// circuit5M has dense rails on a thin band; stokes is a dense
			// band with modest rails — distinguish by name.
			if g.Name == "circuit5M-sim" && float64(s.MaxRowNNZ) < 16*s.AvgRowNNZ {
				t.Errorf("%s: circuit without dense rails (max %d, avg %.1f)",
					g.Name, s.MaxRowNNZ, s.AvgRowNNZ)
			}
			if g.Name == "stokes-sim" && s.AvgRowNNZ < 10 {
				t.Errorf("%s: band too thin (avg %.1f)", g.Name, s.AvgRowNNZ)
			}
		case "W":
		default:
			t.Errorf("%s: unknown kind %q", g.Name, g.Kind)
		}
	}
}

func TestFindGraph(t *testing.T) {
	if _, ok := FindGraph("GAP-road-sim"); !ok {
		t.Error("GAP-road-sim missing")
	}
	if _, ok := FindGraph("nope"); ok {
		t.Error("bogus name found")
	}
	if len(CorpusNames()) != len(Corpus) {
		t.Error("CorpusNames length mismatch")
	}
}

func TestRelativeTable(t *testing.T) {
	r := NewRelativeTable()
	// g1: best 100 (cfgA); g2: best 10 (cfgB).
	r.Add("cfgA", "g1", 100)
	r.Add("cfgB", "g1", 105) // within 10%
	r.Add("cfgC", "g1", 200) // not
	r.Add("cfgA", "g2", 50)  // not
	r.Add("cfgB", "g2", 10)
	// cfgC unmeasured on g2 -> counts against it.
	pct := r.WithinPercent(0.10)
	if pct["cfgA"] != 50 || pct["cfgB"] != 100 || pct["cfgC"] != 0 {
		t.Errorf("pct = %v, want cfgA=50 cfgB=100 cfgC=0", pct)
	}
	if got := r.Configs(); len(got) != 3 || got[0] != "cfgA" {
		t.Errorf("configs = %v", got)
	}
	if ms, ok := r.Time("cfgA", "g1"); !ok || ms != 100 {
		t.Error("Time lookup failed")
	}
}

func TestRelativeTableGrouped(t *testing.T) {
	r := NewRelativeTable()
	// Two families; Hash is globally slower but must be compared within
	// its own group (the Fig. 10/13 split-by-accumulator methodology).
	r.Add("X,Dense@64", "g1", 10)
	r.Add("X,Dense@256", "g1", 30)
	r.Add("X,Hash@64", "g1", 100)
	r.Add("X,Hash@256", "g1", 105)
	pct := r.WithinPercentGrouped(accumGroup, 0.10)
	if pct["X,Dense@64"] != 100 || pct["X,Dense@256"] != 0 {
		t.Errorf("dense group wrong: %v", pct)
	}
	if pct["X,Hash@64"] != 100 || pct["X,Hash@256"] != 100 {
		t.Errorf("hash group must be compared within itself: %v", pct)
	}
}

func TestAccumGroup(t *testing.T) {
	if accumGroup("FlopBalanced,Dynamic,Hash@2048") != "Hash" {
		t.Error("accumGroup parse failed")
	}
	if accumGroup("Dense@64") != "Dense" {
		t.Error("accumGroup fallback failed")
	}
}

func TestMeasureMethodology(t *testing.T) {
	calls := 0
	run := func() (int64, error) {
		calls++
		return 42, nil
	}
	m, err := measure(run, Methodology{Warmups: 2, MaxReps: 3, Budget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || m.Reps != 3 || m.OutputNNZ != 42 {
		t.Errorf("calls=%d reps=%d nnz=%d", calls, m.Reps, m.OutputNNZ)
	}
	if m.Millis < 0 {
		t.Error("negative time")
	}
}

func TestTimeMaskedChecksum(t *testing.T) {
	g, _ := FindGraph("GAP-road-sim")
	a := g.Build(testShift)
	m1, err := TimeMasked(a, core.DefaultConfig(), QuickMethodology())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Iteration = core.MaskLoad
	m2, err := TimeMasked(a, cfg, QuickMethodology())
	if err != nil {
		t.Fatal(err)
	}
	if m1.OutputNNZ != m2.OutputNNZ {
		t.Errorf("checksums differ: %d vs %d", m1.OutputNNZ, m2.OutputNNZ)
	}
}

func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	o := testOptions()
	o.Graphs = []string{"GAP-road-sim", "circuit5M-sim"}

	var buf bytes.Buffer
	if err := Table1(&buf, o); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if !strings.Contains(buf.String(), "GAP-road-sim") {
		t.Error("table1 missing corpus row")
	}

	buf.Reset()
	if err := Fig1(&buf, o); err != nil {
		t.Fatalf("fig1: %v", err)
	}
	if !strings.Contains(buf.String(), "GrB~") {
		t.Error("fig1 missing header")
	}

	buf.Reset()
	rel, err := TileSweep(&buf, o)
	if err != nil {
		t.Fatalf("tile sweep: %v", err)
	}
	Fig10(&buf, rel)
	out := buf.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "Figure 11") {
		t.Error("sweep output incomplete")
	}
	// 8 configs x 2 tile counts recorded per graph.
	if got := len(rel.Configs()); got != 16 {
		t.Errorf("sweep recorded %d configs, want 16", got)
	}

	buf.Reset()
	if err := Fig13(&buf, o); err != nil {
		t.Fatalf("fig13: %v", err)
	}
	if !strings.Contains(buf.String(), "32b") {
		t.Error("fig13 missing widths")
	}

	buf.Reset()
	o14 := o
	o14.Graphs = []string{"circuit5M-sim"}
	if err := Fig14(&buf, o14); err != nil {
		t.Fatalf("fig14: %v", err)
	}
	if !strings.Contains(buf.String(), "no-coiter") {
		t.Error("fig14 missing baseline column")
	}

	buf.Reset()
	if err := Ablations(&buf, o); err != nil {
		t.Fatalf("ablations: %v", err)
	}

	buf.Reset()
	if err := PredictReport(&buf, o); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !strings.Contains(buf.String(), "predicted-config") {
		t.Error("predict report missing header")
	}

	buf.Reset()
	if err := ModelValidation(&buf, o); err != nil {
		t.Fatalf("model: %v", err)
	}
	if !strings.Contains(buf.String(), "predicted") {
		t.Error("model validation missing columns")
	}

	buf.Reset()
	if err := SortCost(&buf, o); err != nil {
		t.Fatalf("sortcost: %v", err)
	}
	if !strings.Contains(buf.String(), "breakeven") {
		t.Error("sortcost missing breakeven column")
	}

	buf.Reset()
	if err := Formulations(&buf, o); err != nil {
		t.Fatalf("formulations: %v", err)
	}
	if !strings.Contains(buf.String(), "dot") {
		t.Error("formulations missing dot column")
	}

	buf.Reset()
	if err := CountersReport(&buf, o); err != nil {
		t.Fatalf("counters: %v", err)
	}
	if !strings.Contains(buf.String(), "rejected") {
		t.Error("counters missing rejected column")
	}

	buf.Reset()
	if err := Scaling(&buf, o); err != nil {
		t.Fatalf("scaling: %v", err)
	}
	if !strings.Contains(buf.String(), "workers") {
		t.Error("scaling missing header")
	}

	buf.Reset()
	oPlan := o
	oPlan.Graphs = []string{"GAP-road-sim"}
	if err := PlanBench(&buf, oPlan); err != nil {
		t.Fatalf("plan: %v", err)
	}
	out = buf.String()
	for _, phase := range []string{"RowWork", "PrefixSum", "BalancedTiles", "NewMultiplier", "Multiply"} {
		if !strings.Contains(out, phase) {
			t.Errorf("plan bench missing %s row", phase)
		}
	}

	buf.Reset()
	oSched := o
	oSched.GuidedMinChunk = 2
	if err := SchedSweep(&buf, oSched); err != nil {
		t.Fatalf("sched: %v", err)
	}
	out = buf.String()
	for _, policy := range []string{"Static", "Dynamic", "Guided"} {
		if !strings.Contains(out, policy) {
			t.Errorf("sched sweep missing %s row", policy)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty series: %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}); len([]rune(got)) != 3 {
		t.Errorf("flat series length: %q", got)
	}
	got := []rune(sparkline([]float64{1, 2, 3, 100}))
	if got[0] != '▁' || got[3] != '█' {
		t.Errorf("extremes not mapped to extreme glyphs: %q", string(got))
	}
	// Monotone input -> non-decreasing glyph heights.
	mono := []rune(sparkline([]float64{1, 4, 9, 16, 25}))
	for i := 1; i < len(mono); i++ {
		if mono[i] < mono[i-1] {
			t.Errorf("sparkline not monotone: %q", string(mono))
		}
	}
}

func TestShuffleRowsPreservesContent(t *testing.T) {
	g, _ := FindGraph("GAP-road-sim")
	a := g.Build(testShift)
	s := shuffleRows(a, 7)
	if s.NNZ() != a.NNZ() {
		t.Fatal("shuffle changed nnz")
	}
	s.SortRows()
	if !sparse.Equal(a, s) {
		t.Error("shuffle+sort is not the identity")
	}
}

func TestTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning is not short")
	}
	g, _ := FindGraph("circuit5M-sim")
	a := g.Build(testShift)
	o := testOptions()
	var buf bytes.Buffer
	cfg, err := Tune(a, o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("tuned config invalid: %v", err)
	}
	if !strings.Contains(buf.String(), "stage 1") {
		t.Error("tuning log missing stages")
	}
	// The tuned config must not be slower than the default by more than
	// noise; check it at least runs.
	if _, err := TimeMasked(a, cfg, QuickMethodology()); err != nil {
		t.Errorf("tuned config does not run: %v", err)
	}
}

func TestVanillaMethodTrims(t *testing.T) {
	m := vanillaMethod(DefaultMethodology())
	if m.Warmups != 0 || m.MaxReps != 1 {
		t.Error("vanilla methodology must be single-shot")
	}
}
