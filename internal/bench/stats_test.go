package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smokeOptions restricts the corpus to one small graph for fast runs.
func smokeOptions() Options {
	o := DefaultOptions()
	o.Shift = 6
	o.Graphs = []string{"GAP-road-sim"}
	o.Method = QuickMethodology()
	return o
}

// TestCollectStatsRoundTrip runs the stats experiment on a tiny graph
// and checks both renderings: the table mentions the phases, and the
// JSON strictly round-trips through its declared schema.
func TestCollectStatsRoundTrip(t *testing.T) {
	report, err := CollectStats(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(report.Entries))
	}
	e := report.Entries[0]
	if e.Stats.Totals.Rows == 0 || e.Stats.Totals.Gathered != e.OutputNNZ {
		t.Fatalf("stats totals inconsistent with measurement: %+v vs nnz %d",
			e.Stats.Totals, e.OutputNNZ)
	}
	var table bytes.Buffer
	report.WriteTable(&table)
	if !strings.Contains(table.String(), "exec.kernel") {
		t.Fatalf("table missing phases:\n%s", table.String())
	}
	var doc bytes.Buffer
	if err := report.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	if err := ValidateStatsReportJSON(doc.Bytes()); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if err := ValidateStatsReportJSON([]byte(`{"schema":"wrong"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestResultLogJSON exercises the nil-safe log and its JSON twin.
func TestResultLogJSON(t *testing.T) {
	var nilLog *ResultLog
	nilLog.Add("x", "g", "c", Measurement{}) // must not panic
	if nilLog.Len() != 0 {
		t.Fatal("nil log reported entries")
	}

	log := &ResultLog{}
	log.Add("fig1", "g1", "tuned", Measurement{Millis: 1.5, Reps: 2, OutputNNZ: 10})
	log.Add("fig1", "g2", "tuned", Measurement{Millis: 2.5, Reps: 2, OutputNNZ: 20})
	if log.Len() != 2 {
		t.Fatalf("len = %d, want 2", log.Len())
	}
	var doc bytes.Buffer
	if err := log.WriteJSON(&doc, "fig1"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateResultJSON(doc.Bytes()); err != nil {
		t.Fatalf("log does not round-trip: %v", err)
	}
	if !strings.Contains(doc.String(), `"min_millis": 1.5`) {
		t.Fatalf("missing measurement fields:\n%s", doc.String())
	}
}

// TestExperimentsPopulateLog checks the experiment hooks actually feed
// the log when one is attached.
func TestExperimentsPopulateLog(t *testing.T) {
	o := smokeOptions()
	o.Log = &ResultLog{}
	var sink bytes.Buffer
	if err := Fig1(&sink, o); err != nil {
		t.Fatal(err)
	}
	if o.Log.Len() != 3 {
		t.Fatalf("fig1 logged %d entries, want 3", o.Log.Len())
	}
}

// TestMeasurementStatistics checks the new summary fields directly.
func TestMeasurementStatistics(t *testing.T) {
	var m Measurement
	m.fillFrom([]float64{3, 1, 2})
	if m.Millis != 1 || m.P50Millis != 2 || m.MeanMillis != 2 {
		t.Fatalf("min/p50/mean = %v/%v/%v", m.Millis, m.P50Millis, m.MeanMillis)
	}
	if m.StddevMillis <= 0.8 || m.StddevMillis >= 0.9 { // √(2/3) ≈ 0.816
		t.Fatalf("stddev = %v, want ≈0.816", m.StddevMillis)
	}
	var even Measurement
	even.fillFrom([]float64{4, 2})
	if even.P50Millis != 3 {
		t.Fatalf("even-count median = %v, want 3", even.P50Millis)
	}
	var single Measurement
	single.fillFrom([]float64{5})
	if single.Millis != 5 || single.StddevMillis != 0 {
		t.Fatalf("single sample: %+v", single)
	}
}
