package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/model"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// FusionEntry compares one iterative workload run with its fused
// formulation against the materializing one, both warm through their
// own execution engine so the delta isolates the fusion itself rather
// than workspace pooling.
type FusionEntry struct {
	Workload string            `json:"workload"`
	Graph    string            `json:"graph"`
	Unfused  EngineMeasurement `json:"unfused"`
	Fused    EngineMeasurement `json:"fused"`
	// Fusion is the fused-pipeline counter snapshot of one fused run
	// (the untimed warm-up): how many tiles staged vs streamed, and the
	// intermediate traffic the fusion kept out of materialized CSRs.
	Fusion obs.FusedCounters `json:"fusion"`
}

// FusionReport is the fusion experiment's document.
type FusionReport struct {
	Schema  string        `json:"schema"`
	Entries []FusionEntry `json:"entries"`
}

// FusionReportSchema identifies the JSON layout of a FusionReport.
const FusionReportSchema = "maskedspgemm/bench-fusion/v1"

// CheckFusedAllocs fails when any entry's fused allocs/op exceeds its
// unfused counterpart — fusion's whole point is removing intermediate
// materialization, so more allocator traffic means a regression. This
// is the `make bench-fusion` gate (and through it `make check`).
func (r *FusionReport) CheckFusedAllocs() error {
	for _, e := range r.Entries {
		if e.Fused.AllocsPerOp > e.Unfused.AllocsPerOp {
			return fmt.Errorf("bench: %s/%s fused allocs/op %.0f exceeds unfused %.0f",
				e.Workload, e.Graph, e.Fused.AllocsPerOp, e.Unfused.AllocsPerOp)
		}
	}
	return nil
}

// fusionWorkload pairs the two formulations of one iterative algorithm;
// both closures return the same checksum when the fusion is correct.
type fusionWorkload struct {
	name    string
	unfused func(cfg core.Config) func() (int64, error)
	fused   func(cfg core.Config) func() (int64, error)
}

func fusionWorkloads(a *sparse.CSR[float64]) []fusionWorkload {
	sources := []int{}
	for v := 0; v < a.Rows && len(sources) < 4; v += max(a.Rows/4, 1) {
		sources = append(sources, v)
	}
	ktruss := func(run func(*sparse.CSR[float64], int, core.Config) (*graph.KTrussResult, error)) func(core.Config) func() (int64, error) {
		return func(cfg core.Config) func() (int64, error) {
			return func() (int64, error) {
				res, err := run(a, 4, cfg)
				if err != nil {
					return 0, err
				}
				return res.Edges, nil
			}
		}
	}
	bc := func(run func(*sparse.CSR[float64], []int, core.Config) ([]float64, error)) func(core.Config) func() (int64, error) {
		return func(cfg core.Config) func() (int64, error) {
			return func() (int64, error) {
				deps, err := run(a, sources, cfg)
				if err != nil {
					return 0, err
				}
				var sum float64
				for _, v := range deps {
					sum += v
				}
				return int64(sum), nil
			}
		}
	}
	return []fusionWorkload{
		{"ktruss", ktruss(graph.KTruss), ktruss(graph.KTrussFused)},
		{"bcbatch", bc(graph.BetweennessCentralityBatch), bc(graph.BetweennessCentralityBatchFused)},
	}
}

// FusionBench runs the fusion experiment: the iterative graph workloads
// with fused formulations (k-truss support-and-prune as one select
// multiply per round, batched-Brandes BC with a streamed backward
// sweep) timed warm against their materializing twins, reporting time,
// allocator traffic and the fused pipeline's tile decisions.
func FusionBench(w io.Writer, o Options) (*FusionReport, error) {
	report := &FusionReport{Schema: FusionReportSchema}
	fmt.Fprintln(w, "Fusion: fused tile pipeline vs materialized intermediates (both warm)")
	fmt.Fprintf(w, "%-10s %-22s %12s %12s %14s %14s %8s %10s\n",
		"workload", "graph", "unfused ms", "fused ms", "unf allocs/op", "fus allocs/op", "f-runs", "sel-kept")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		base := o.planify(tunedConfig(o.Workers))
		base.Context = o.Method.Context
		// Each column owns its engine so the comparison isolates the
		// fusion, not pooling differences; the recorder rides only on
		// the untimed warm-up to keep the timed loops identical.
		base.Engine = nil
		base.Recorder = nil
		warmMethod := o.Method
		warmMethod.Warmups = 0
		for _, wl := range fusionWorkloads(a) {
			cfgOff := base
			cfgOff.Engine = exec.New(exec.Config{})
			runOff := wl.unfused(cfgOff)
			if _, err := runOff(); err != nil {
				return nil, fmt.Errorf("%s/%s unfused warm-up: %w", wl.name, g.Name, err)
			}
			un, err := timeAllocs(runOff, warmMethod)
			if err != nil {
				return nil, fmt.Errorf("%s/%s unfused: %w", wl.name, g.Name, err)
			}

			eng := exec.New(exec.Config{})
			cfgRec := base
			cfgRec.Engine = eng
			cfgRec.Recorder = o.newRecorder()
			if _, err := wl.fused(cfgRec)(); err != nil {
				return nil, fmt.Errorf("%s/%s fused warm-up: %w", wl.name, g.Name, err)
			}
			cfgOn := base
			cfgOn.Engine = eng
			fu, err := timeAllocs(wl.fused(cfgOn), warmMethod)
			if err != nil {
				return nil, fmt.Errorf("%s/%s fused: %w", wl.name, g.Name, err)
			}
			if un.OutputNNZ != fu.OutputNNZ {
				return nil, fmt.Errorf("%s/%s: fusion changed the result checksum (%d vs %d)",
					wl.name, g.Name, un.OutputNNZ, fu.OutputNNZ)
			}

			entry := FusionEntry{
				Workload: wl.name, Graph: g.Name,
				Unfused: un, Fused: fu,
				Fusion: cfgRec.Recorder.Stats().Fused,
			}
			report.Entries = append(report.Entries, entry)
			o.Log.Add("fusion", g.Name, wl.name+"/unfused", un.Measurement)
			o.Log.Add("fusion", g.Name, wl.name+"/fused", fu.Measurement)
			fruns := entry.Fusion.ChainRuns + entry.Fusion.SelectRuns + entry.Fusion.StreamRuns
			fmt.Fprintf(w, "%-10s %-22s %12.2f %12.2f %14.0f %14.0f %8d %10d\n",
				wl.name, g.Name, un.Millis, fu.Millis,
				un.AllocsPerOp, fu.AllocsPerOp, fruns, entry.Fusion.SelectKept)
		}
	}
	return report, nil
}

// WriteJSON emits the report as a schema-tagged JSON document.
func (r *FusionReport) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r)
}

// ValidateFusionReportJSON checks that data is a schema-conforming
// FusionReport document (strict round-trip plus schema tag) — the check
// behind `make bench-fusion`.
func ValidateFusionReportJSON(data []byte) error {
	var r FusionReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != FusionReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, FusionReportSchema)
	}
	return nil
}

// EngineWithBudget builds a shared benchmark engine sized by a
// retention budget in bytes (the -retention-mb flag): the first corpus
// graph's structural features feed the engine-config model, which
// translates the budget into an idle-workspace cap for the accumulator
// family the tuned configuration selects. budget 0 selects the model's
// default (256 MiB); negative budgets are rejected.
func EngineWithBudget(o Options, budget int64) (*exec.Engine, error) {
	if budget < 0 {
		return nil, fmt.Errorf("bench: retention budget must be >= 0, got %d", budget)
	}
	corpus := o.corpus()
	if len(corpus) == 0 {
		return nil, fmt.Errorf("bench: no corpus graphs selected")
	}
	a := corpus[0].Build(o.Shift)
	f, err := model.Extract(a, a, a)
	if err != nil {
		return nil, err
	}
	return exec.New(model.PredictEngineBudget(f, tunedConfig(o.Workers), o.Workers, budget)), nil
}

// KappaAdaptEntry records one graph's offline κ sweep against the
// online recalibrator: the statically best κ and its warm time, the
// default κ's warm time, and the κ the recalibrator settled on after a
// bounded warm loop together with its warm time.
type KappaAdaptEntry struct {
	Graph         string            `json:"graph"`
	DefaultKappa  float64           `json:"default_kappa"`
	DefaultMillis float64           `json:"default_millis"`
	BestKappa     float64           `json:"best_kappa"`
	BestMillis    float64           `json:"best_millis"`
	AdaptedKappa  float64           `json:"adapted_kappa"`
	AdaptedMillis float64           `json:"adapted_millis"`
	WarmRuns      int               `json:"warm_runs"`
	Converged     bool              `json:"converged"`
	Recal         obs.RecalCounters `json:"recal"`
}

// KappaAdaptReport is the adaptive-κ experiment's document.
type KappaAdaptReport struct {
	Schema  string            `json:"schema"`
	Entries []KappaAdaptEntry `json:"entries"`
}

// KappaAdaptReportSchema identifies the JSON layout of a KappaAdaptReport.
const KappaAdaptReportSchema = "maskedspgemm/bench-kappa-adapt/v1"

// CheckAdapted fails when any entry's adapted warm time is more than
// slack (a fraction, e.g. 0.05) worse than both the best offline-swept
// κ and the static default — the recalibrator's contract. Timing-based,
// so meant for attended runs and EXPERIMENTS.md, not hard CI gates.
func (r *KappaAdaptReport) CheckAdapted(slack float64) error {
	for _, e := range r.Entries {
		if e.AdaptedMillis > e.BestMillis*(1+slack) {
			return fmt.Errorf("bench: %s adapted κ=%g runs %.2fms, more than %.0f%% over best κ=%g (%.2fms)",
				e.Graph, e.AdaptedKappa, e.AdaptedMillis, slack*100, e.BestKappa, e.BestMillis)
		}
		if e.AdaptedMillis > e.DefaultMillis*(1+slack) {
			return fmt.Errorf("bench: %s adapted κ=%g runs %.2fms, more than %.0f%% over default κ=%g (%.2fms)",
				e.Graph, e.AdaptedKappa, e.AdaptedMillis, slack*100, e.DefaultKappa, e.DefaultMillis)
		}
	}
	return nil
}

// kappaAdaptWarmRuns bounds the recalibrator's warm loop; Converged()
// ends it sooner. Sized so the three-arm bracket can recenter a few
// times and still shrink its step to the convergence floor: one shrink
// needs two defended brackets (6 runs), and γ=2 is five shrinks from
// the 1.05 floor.
const kappaAdaptWarmRuns = 64

// KappaAdaptBench runs the adaptive-κ experiment on the benchmark
// kernel C = A ⊙ (A×A): an offline sweep over o.Kappas (all warm on a
// shared engine) establishes the best static κ, then a fresh engine
// runs the online recalibrator loop — propose, multiply, observe — and
// the adapted κ is timed warm for comparison.
func KappaAdaptBench(w io.Writer, o Options) (*KappaAdaptReport, error) {
	report := &KappaAdaptReport{Schema: KappaAdaptReportSchema}
	sr := semiring.PlusTimes[float64]{}
	fmt.Fprintln(w, "Adaptive κ: online recalibration vs offline sweep, C = A ⊙ (A×A), warm")
	fmt.Fprintf(w, "%-22s %10s %12s %10s %12s %10s %12s %6s %5s\n",
		"graph", "default-κ", "default ms", "best-κ", "best ms", "adapt-κ", "adapt ms", "runs", "conv")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		base := o.planify(tunedConfig(o.Workers))
		base.Context = o.Method.Context
		base.Recorder = nil
		defaultK := base.Kappa

		eng := exec.New(exec.Config{})
		base.Engine = eng
		bestMs, bestK := math.Inf(1), defaultK
		defMs := math.NaN()
		for _, k := range o.Kappas {
			cfg := base
			cfg.Kappa = k
			ms, err := TimeMasked(a, cfg, o.Method)
			if err != nil {
				return nil, fmt.Errorf("kappa-adapt/%s sweep κ=%g: %w", g.Name, k, err)
			}
			o.Log.Add("kappa-adapt", g.Name, fmt.Sprintf("sweep/kappa=%g", k), ms)
			if ms.Millis < bestMs {
				bestMs, bestK = ms.Millis, k
			}
			if k == defaultK {
				defMs = ms.Millis
			}
		}
		if math.IsNaN(defMs) {
			cfg := base
			cfg.Kappa = defaultK
			ms, err := TimeMasked(a, cfg, o.Method)
			if err != nil {
				return nil, fmt.Errorf("kappa-adapt/%s default κ: %w", g.Name, err)
			}
			defMs = ms.Millis
		}

		// The online loop gets its own engine so the recalibrator cell
		// starts cold, like a fresh process would.
		engA := exec.New(exec.Config{})
		rc := model.TuneFor(engA, a, a, a, model.RecalConfig{DefaultKappa: defaultK})
		rec := o.newRecorder()
		cfgA := base
		cfgA.Engine = engA
		cfgA.Recorder = rec
		runs := 0
		for i := 0; i < kappaAdaptWarmRuns; i++ {
			if err := methodErr(o.Method); err != nil {
				return nil, err
			}
			cfgA.Kappa = rc.Propose()
			start := time.Now()
			if _, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfgA); err != nil {
				return nil, fmt.Errorf("kappa-adapt/%s online run %d: %w", g.Name, i, err)
			}
			secs := time.Since(start).Seconds()
			st, _ := rec.LastRun()
			rec.AddRecal(rc.Observe(secs, st))
			runs++
			if rc.Converged() {
				break
			}
		}

		cfgM := base
		cfgM.Engine = engA
		cfgM.Kappa = rc.Kappa()
		warmMethod := o.Method
		warmMethod.Warmups = 0
		adapted, err := TimeMasked(a, cfgM, warmMethod)
		if err != nil {
			return nil, fmt.Errorf("kappa-adapt/%s adapted κ: %w", g.Name, err)
		}
		o.Log.Add("kappa-adapt", g.Name, fmt.Sprintf("adapted/kappa=%g", cfgM.Kappa), adapted)

		entry := KappaAdaptEntry{
			Graph:        g.Name,
			DefaultKappa: defaultK, DefaultMillis: defMs,
			BestKappa: bestK, BestMillis: bestMs,
			AdaptedKappa: cfgM.Kappa, AdaptedMillis: adapted.Millis,
			WarmRuns: runs, Converged: rc.Converged(),
			Recal: rec.Stats().Recal,
		}
		report.Entries = append(report.Entries, entry)
		fmt.Fprintf(w, "%-22s %10.3g %12.2f %10.3g %12.2f %10.3g %12.2f %6d %5v\n",
			g.Name, defaultK, defMs, bestK, bestMs,
			entry.AdaptedKappa, entry.AdaptedMillis, runs, entry.Converged)
	}
	return report, nil
}

// WriteJSON emits the report as a schema-tagged JSON document.
func (r *KappaAdaptReport) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r)
}

// ValidateKappaAdaptReportJSON checks that data is a schema-conforming
// KappaAdaptReport document (strict round-trip plus schema tag).
func ValidateKappaAdaptReportJSON(data []byte) error {
	var r KappaAdaptReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != KappaAdaptReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, KappaAdaptReportSchema)
	}
	return nil
}
