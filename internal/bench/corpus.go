// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§IV): the corpus of Table I
// stand-ins, the timing methodology, the tiling/scheduling sweep
// (Figs. 10–11), the co-iteration factor sweep (Fig. 14), the
// accumulator-width sweep (Fig. 13), the three-implementation comparison
// (Fig. 1), and the staged tuning flow (Fig. 12).
package bench

import (
	"sort"

	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sparse"
)

// GraphSpec describes one synthetic stand-in for a Table I matrix.
type GraphSpec struct {
	// Name is the stand-in's identifier (paper matrix + "-sim").
	Name string
	// Kind is the paper's classification: W(eb), S(ocial), R(oad),
	// C(ircuit).
	Kind string
	// PaperN and PaperNNZ are the original matrix's dimensions from
	// Table I, for side-by-side reporting.
	PaperN, PaperNNZ int64
	// Build generates the graph. shift reduces the size: each unit of
	// shift roughly halves the vertex count (shift 0 = benchmark scale,
	// used by cmd/spgemm-bench; tests pass larger shifts).
	Build func(shift int) *sparse.CSR[float64]
}

func half(n, shift int) int {
	for ; shift > 0; shift-- {
		n /= 2
	}
	if n < 16 {
		n = 16
	}
	return n
}

// Corpus mirrors the paper's Table I with one deterministic generator
// per matrix, matching each original's structural family and relative
// density. Sizes are chosen so a full sweep finishes on a laptop-class
// host; EXPERIMENTS.md records the correspondence.
var Corpus = []GraphSpec{
	{
		Name: "arabic-2005-sim", Kind: "W", PaperN: 22744080, PaperNNZ: 639999458,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.WebGraph(half(40000, s), 14, 0.6, 0xA2AB1C)
		},
	},
	{
		Name: "as-Skitter-sim", Kind: "W", PaperN: 1696415, PaperNNZ: 22190596,
		Build: func(s int) *sparse.CSR[float64] {
			return sparse.Symmetrize(graphgen.WebGraph(half(24000, s), 10, 0.45, 0x5517))
		},
	},
	{
		Name: "circuit5M-sim", Kind: "C", PaperN: 5558326, PaperNNZ: 59524291,
		Build: func(s int) *sparse.CSR[float64] {
			// Dense power/clock rails (degree n/8) on a thin band: the
			// structure that makes linear-scan masking time out in the
			// paper until co-iteration rescues it (Fig. 14d).
			n := half(30000, s)
			return graphgen.Circuit(n, 3, 0.6, 4, n/8, 0xC1AC)
		},
	},
	{
		Name: "com-LiveJournal-sim", Kind: "S", PaperN: 3997962, PaperNNZ: 69362378,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.RMAT(14-min(s, 8), 9, 0.57, 0.19, 0.19, 0x117E)
		},
	},
	{
		Name: "com-Orkut-sim", Kind: "S", PaperN: 3072441, PaperNNZ: 234370166,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.RMAT(13-min(s, 7), 20, 0.57, 0.19, 0.19, 0x0870)
		},
	},
	{
		Name: "europe_osm-sim", Kind: "R", PaperN: 50912018, PaperNNZ: 108109320,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.RoadNetwork(half(320, s/2+s%2), half(250, s/2), 0.93, 0xE05)
		},
	},
	{
		Name: "GAP-road-sim", Kind: "R", PaperN: 23947347, PaperNNZ: 57708624,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.RoadNetwork(half(230, s/2+s%2), half(200, s/2), 0.95, 0x6A9)
		},
	},
	{
		Name: "hollywood-2009-sim", Kind: "S", PaperN: 1139905, PaperNNZ: 113891327,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.RMAT(12-min(s, 6), 36, 0.55, 0.2, 0.2, 0x0111)
		},
	},
	{
		Name: "stokes-sim", Kind: "C", PaperN: 11449533, PaperNNZ: 349321980,
		Build: func(s int) *sparse.CSR[float64] {
			n := half(26000, s)
			return graphgen.Circuit(n, 9, 0.85, 2, n/60, 0x570E5)
		},
	},
	{
		Name: "uk-2002-sim", Kind: "W", PaperN: 18520486, PaperNNZ: 298113762,
		Build: func(s int) *sparse.CSR[float64] {
			return graphgen.WebGraph(half(32000, s), 13, 0.55, 0x2002)
		},
	},
}

// FindGraph returns the corpus entry with the given name.
func FindGraph(name string) (GraphSpec, bool) {
	for _, g := range Corpus {
		if g.Name == name {
			return g, true
		}
	}
	return GraphSpec{}, false
}

// CorpusNames returns the graph names in corpus order.
func CorpusNames() []string {
	names := make([]string, len(Corpus))
	for i, g := range Corpus {
		names[i] = g.Name
	}
	return names
}

// Fig14Graphs are the four representative matrices of the paper's κ
// sweep: a road network, two social networks, and the circuit matrix
// whose no-co-iteration baseline times out.
var Fig14Graphs = []string{
	"GAP-road-sim", "hollywood-2009-sim", "com-Orkut-sim", "circuit5M-sim",
}

// SortedCopy returns names sorted alphabetically (plot order in Fig. 1).
func SortedCopy(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
