package bench

import (
	"fmt"
	"io"
	"runtime"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/tiling"
)

// planWorkerCounts is the worker sweep for the plan-construction
// benchmark: serial, then doublings up to at least 8 (past GOMAXPROCS
// the rows document that oversubscription is harmless, not helpful).
func planWorkerCounts() []int {
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 8 {
		maxW = 8
	}
	var counts []int
	for c := 1; c <= maxW; c *= 2 {
		counts = append(counts, c)
	}
	return counts
}

// PlanBench measures the plan-construction phases serial vs parallel:
// the Eq. 2 work estimation (RowWork), the prefix sum behind
// FLOP-balanced tiling, the full plan build (NewMultiplier), and a
// planned Multiply whose kernel worker count is pinned so that run-to-
// run differences isolate the parallel CSR assembly. One row per phase,
// one column per plan-worker count.
func PlanBench(w io.Writer, o Options) error {
	graphs := o.Graphs
	if len(graphs) == 0 {
		// One large social graph: skewed degrees, big nnz — the regime
		// where serial O(nnz) plan passes dominate Amdahl's law.
		graphs = []string{"com-LiveJournal-sim"}
	}
	counts := planWorkerCounts()
	sr := semiring.PlusTimes[float64]{}
	for _, name := range graphs {
		g, ok := FindGraph(name)
		if !ok {
			return fmt.Errorf("unknown graph %q", name)
		}
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "%s (n=%d, nnz=%d): plan-phase runtime (ms) vs plan workers\n",
			g.Name, a.Rows, a.NNZ())
		fmt.Fprintf(w, "%-28s", "phase \\ plan workers")
		for _, c := range counts {
			fmt.Fprintf(w, "%10d", c)
		}
		fmt.Fprintln(w)

		work := tiling.RowWork(a, a, a)
		phases := []struct {
			name string
			run  func(p int) (int64, error)
		}{
			{"RowWork (Eq. 2)", func(p int) (int64, error) {
				v := tiling.RowWorkParallel(a, a, a, p)
				return v[len(v)-1], nil
			}},
			{"PrefixSum", func(p int) (int64, error) {
				prefix := tiling.PrefixSum(work, p)
				return prefix[len(prefix)-1], nil
			}},
			{"BalancedTiles", func(p int) (int64, error) {
				tiles := tiling.BalancedTilesParallel(work, 2048, p)
				return int64(len(tiles)), nil
			}},
			{"NewMultiplier (plan)", func(p int) (int64, error) {
				cfg := o.planify(core.DefaultConfig())
				cfg.Workers = o.Workers
				cfg.PlanWorkers = p
				mu, err := core.NewMultiplier[float64](sr, a, a, a, cfg)
				if err != nil {
					return 0, err
				}
				return int64(mu.Tiles()), nil
			}},
			{"Multiply (kernel+asm)", nil}, // handled below: needs a reused plan
		}
		for _, ph := range phases[:len(phases)-1] {
			fmt.Fprintf(w, "%-28s", ph.name)
			for _, c := range counts {
				c := c
				meas, err := TimeFn(func() (int64, error) { return ph.run(c) }, o.Method)
				if err != nil {
					return fmt.Errorf("%s %s p=%d: %w", g.Name, ph.name, c, err)
				}
				fmt.Fprintf(w, "%10.3f", meas.Millis)
			}
			fmt.Fprintln(w)
		}

		// Multiply with the kernel worker count pinned: the only knob that
		// varies across columns is PlanWorkers, so the column-to-column
		// delta is the assembly (and plan reuse) phases.
		fmt.Fprintf(w, "%-28s", phases[len(phases)-1].name)
		for _, c := range counts {
			cfg := o.planify(core.DefaultConfig())
			cfg.Workers = o.Workers
			cfg.PlanWorkers = c
			mu, err := core.NewMultiplier[float64](sr, a, a, a, cfg)
			if err != nil {
				return fmt.Errorf("%s multiply p=%d: %w", g.Name, c, err)
			}
			meas, err := TimeFn(func() (int64, error) {
				c, err := mu.Multiply()
				if err != nil {
					return 0, err
				}
				return c.NNZ(), nil
			}, o.Method)
			if err != nil {
				return fmt.Errorf("%s multiply p=%d: %w", g.Name, c, err)
			}
			fmt.Fprintf(w, "%10.3f", meas.Millis)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SchedSweep compares the three scheduling policies — Static, Dynamic,
// Guided — across the paper's Fig. 11 tile-count grid (64…32768),
// MaskLoad iteration with hash accumulators and FLOP-balanced tiles.
// Guided targets the top of the grid: at 32768 tiles Dynamic pays one
// atomic operation per tile while Guided claims shrinking chunks.
func SchedSweep(w io.Writer, o Options) error {
	fmt.Fprintf(w, "Scheduler sweep: runtime (ms) vs tile count; MaskLoad, hash, FLOP-balanced tiles, guided chunk floor %d\n",
		maxInt(o.GuidedMinChunk, 1))
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "\n%s (n=%d, nnz=%d)\n", g.Name, a.Rows, a.NNZ())
		fmt.Fprintf(w, "%-10s", "policy")
		for _, tc := range o.TileCounts {
			fmt.Fprintf(w, "%10d", tc)
		}
		fmt.Fprintln(w)
		for _, sp := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
			fmt.Fprintf(w, "%-10v", sp)
			series := make([]float64, 0, len(o.TileCounts))
			for _, tc := range o.TileCounts {
				cfg := o.planify(core.Config{
					Iteration: core.MaskLoad, Kappa: 1,
					Accumulator: accum.HashKind, MarkerBits: 32,
					Tiles: tc, Tiling: tiling.FlopBalanced,
					Schedule: sp, Workers: o.Workers,
				})
				meas, err := TimeMasked(a, cfg, o.Method)
				if err != nil {
					return fmt.Errorf("%s %v tiles=%d: %w", g.Name, sp, tc, err)
				}
				o.Log.Add("sched", g.Name, fmt.Sprintf("%v@%d", sp, tc), meas)
				series = append(series, meas.Millis)
				fmt.Fprintf(w, "%10.2f", meas.Millis)
			}
			fmt.Fprintf(w, "  %s\n", sparkline(series))
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
