package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/obs"
)

// ResultSchema identifies the JSON layout of a ResultReport — the
// machine-readable twin of an experiment's text table.
const ResultSchema = "maskedspgemm/bench-results/v1"

// StatsReportSchema identifies the JSON layout of a StatsReport — the
// stats experiment's per-graph kernel observability dump.
const StatsReportSchema = "maskedspgemm/bench-stats/v1"

// ResultEntry is one timed (experiment, graph, config) data point.
type ResultEntry struct {
	Experiment string `json:"experiment"`
	Graph      string `json:"graph"`
	Config     string `json:"config"`
	Measurement
}

// ResultLog collects the individual measurements behind an experiment's
// text table, so the run can also be emitted as JSON. A nil *ResultLog
// discards everything, letting experiment code log unconditionally.
type ResultLog struct {
	entries []ResultEntry
}

// Add records one measurement. Nil-safe.
func (l *ResultLog) Add(experiment, graph, config string, m Measurement) {
	if l == nil {
		return
	}
	l.entries = append(l.entries, ResultEntry{
		Experiment: experiment, Graph: graph, Config: config, Measurement: m,
	})
}

// Len reports the number of recorded entries (0 for nil).
func (l *ResultLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.entries)
}

// ResultReport is the JSON document a ResultLog renders to.
type ResultReport struct {
	Schema     string        `json:"schema"`
	Experiment string        `json:"experiment"`
	Results    []ResultEntry `json:"results"`
}

// Report packages the log under the given experiment name.
func (l *ResultLog) Report(experiment string) ResultReport {
	r := ResultReport{Schema: ResultSchema, Experiment: experiment}
	if l != nil {
		r.Results = l.entries
	}
	return r
}

// WriteJSON emits the log as a schema-tagged JSON document.
func (l *ResultLog) WriteJSON(w io.Writer, experiment string) error {
	return obs.WriteJSON(w, l.Report(experiment))
}

// ValidateResultJSON checks that data is a schema-conforming
// ResultReport document (strict round-trip plus schema tag).
func ValidateResultJSON(data []byte) error {
	var r ResultReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != ResultSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, ResultSchema)
	}
	return nil
}

// StatsEntry is one graph's timed run with its full kernel
// observability snapshot.
type StatsEntry struct {
	Graph  string `json:"graph"`
	Config string `json:"config"`
	Measurement
	Stats obs.Stats `json:"stats"`
}

// StatsReport is the stats experiment's document: the tuned kernel run
// on every corpus graph with phase times, per-worker counters and
// accumulator statistics.
type StatsReport struct {
	Schema  string       `json:"schema"`
	Entries []StatsEntry `json:"entries"`
}

// CollectStats runs the tuned configuration over the corpus with a live
// recorder and returns the per-graph observability report. Each graph
// gets a fresh recorder, so an entry's Stats covers exactly that
// graph's timed repetitions (plus warm-ups — they exercise the same
// kernel and are part of the recorded activity; Measurement.Reps says
// how many runs were timed).
func CollectStats(o Options) (*StatsReport, error) {
	report := &StatsReport{Schema: StatsReportSchema}
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		cfg := o.planify(tunedConfig(o.Workers))
		cfg.Recorder = o.newRecorder()
		meas, err := TimeMasked(a, cfg, o.Method)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.Name, err)
		}
		report.Entries = append(report.Entries, StatsEntry{
			Graph:       g.Name,
			Config:      cfg.String(),
			Measurement: meas,
			Stats:       cfg.Recorder.Stats(),
		})
	}
	return report, nil
}

// WriteTable renders the report as the human-readable stats tables
// behind the -stats flag.
func (r *StatsReport) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "Kernel observability: tuned configuration, per graph")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "\n%s (%s)\n", e.Graph, e.Config)
		fmt.Fprintf(w, "  min/mean/p50 ms: %.2f/%.2f/%.2f (stddev %.2f, %d reps, nnz %d)\n",
			e.Millis, e.MeanMillis, e.P50Millis, e.StddevMillis, e.Reps, e.OutputNNZ)
		e.Stats.WriteTable(w)
	}
}

// WriteJSON emits the report as a schema-tagged JSON document.
func (r *StatsReport) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r)
}

// ValidateStatsReportJSON checks that data is a schema-conforming
// StatsReport document (strict round-trip plus schema tag) — the check
// behind `make bench-smoke`.
func ValidateStatsReportJSON(data []byte) error {
	var r StatsReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != StatsReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, StatsReportSchema)
	}
	return nil
}
