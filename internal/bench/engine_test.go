package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestEngineBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	o := testOptions()
	o.Graphs = []string{"GAP-road-sim"}
	o.Log = &ResultLog{}

	var buf bytes.Buffer
	report, err := EngineBench(&buf, o)
	if err != nil {
		t.Fatalf("engine bench: %v", err)
	}
	if len(report.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (ktruss + bcbatch)", len(report.Entries))
	}
	for _, e := range report.Entries {
		if e.Off.Reps == 0 || e.On.Reps == 0 {
			t.Errorf("%s: missing repetitions (%+v)", e.Workload, e)
		}
		if e.Off.OutputNNZ != e.On.OutputNNZ {
			t.Errorf("%s: checksum mismatch %d vs %d", e.Workload, e.Off.OutputNNZ, e.On.OutputNNZ)
		}
	}
	// The engine's contract on a warm loop: every checkout recycled.
	if err := report.CheckWarmHitRate(0.95); err != nil {
		t.Errorf("warm hit rate gate: %v", err)
	}
	if report.MinWarmHitRate() < 0.95 {
		t.Errorf("min warm hit rate %.3f", report.MinWarmHitRate())
	}
	// Off/on rows both land in the shared result log.
	if o.Log.Len() != 4 {
		t.Errorf("logged %d entries, want 4", o.Log.Len())
	}
	if !strings.Contains(buf.String(), "hit-rate") {
		t.Error("table missing hit-rate column")
	}

	// The JSON twin round-trips through its declared schema.
	var js bytes.Buffer
	if err := report.WriteJSON(&js); err != nil {
		t.Fatalf("write json: %v", err)
	}
	if err := ValidateEngineReportJSON(js.Bytes()); err != nil {
		t.Errorf("validate json: %v", err)
	}
	if err := ValidateEngineReportJSON([]byte(`{"schema":"nope","entries":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestCheckWarmHitRate(t *testing.T) {
	r := &EngineReport{Entries: []EngineEntry{
		{Workload: "ktruss", Graph: "g", WarmHitRate: 1},
		{Workload: "bcbatch", Graph: "g", WarmHitRate: 0.5},
	}}
	if err := r.CheckWarmHitRate(0.95); err == nil {
		t.Error("0.5 hit rate passed a 0.95 gate")
	}
	if err := r.CheckWarmHitRate(0.4); err != nil {
		t.Errorf("0.4 gate failed: %v", err)
	}
	if got := r.MinWarmHitRate(); got != 0.5 {
		t.Errorf("min = %v, want 0.5", got)
	}
	empty := &EngineReport{}
	if got := empty.MinWarmHitRate(); got != 1 {
		t.Errorf("empty min = %v, want 1", got)
	}
}
