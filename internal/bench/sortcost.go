package bench

import (
	"fmt"
	"io"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sparse"
)

// SortCost quantifies the footnote of the paper's §III-B: co-iteration
// requires B's rows to be sorted by column, "which may not be the case
// in SuiteSparse:GraphBLAS". For every corpus graph it measures the
// one-time cost of sorting shuffled rows against the per-multiply
// saving the hybrid space buys, i.e. how many masked products amortize
// the sort.
func SortCost(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Sorted-B ablation: row-sort cost vs hybrid-iteration saving per multiply")
	fmt.Fprintf(w, "%-22s %12s %12s %12s %14s\n",
		"Graph", "sort-ms", "maskload-ms", "hybrid-ms", "breakeven-mults")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)

		shuffled := shuffleRows(a, 0xBADC0DE)
		start := time.Now()
		shuffled.SortRows()
		sortMs := float64(time.Since(start)) / float64(time.Millisecond)
		if err := shuffled.Check(); err != nil {
			return fmt.Errorf("%s: sort produced malformed matrix: %w", g.Name, err)
		}

		linCfg := tunedConfig(o.Workers)
		linCfg.Iteration = core.MaskLoad
		lin, err := TimeMasked(a, linCfg, o.Method)
		if err != nil {
			return err
		}
		hyb, err := TimeMasked(a, tunedConfig(o.Workers), o.Method)
		if err != nil {
			return err
		}

		saving := lin.Millis - hyb.Millis
		breakeven := "never"
		if saving > 0 {
			breakeven = fmt.Sprintf("%.1f", sortMs/saving)
		}
		fmt.Fprintf(w, "%-22s %12.2f %12.2f %12.2f %14s\n",
			g.Name, sortMs, lin.Millis, hyb.Millis, breakeven)
	}
	return nil
}

// shuffleRows returns a copy of m with each row's entries in a
// deterministic pseudo-random order — the unsorted state a library
// without the sortedness invariant would hold.
func shuffleRows(m *sparse.CSR[float64], seed uint64) *sparse.CSR[float64] {
	c := m.Clone()
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < c.Rows; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		cols := c.ColIdx[lo:hi]
		vals := c.Val[lo:hi]
		for p := len(cols) - 1; p > 0; p-- {
			q := int(next() % uint64(p+1))
			cols[p], cols[q] = cols[q], cols[p]
			vals[p], vals[q] = vals[q], vals[p]
		}
	}
	return c
}
