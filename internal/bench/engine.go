package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sparse"
)

// EngineMeasurement extends a timing with the allocator traffic of one
// repetition — the quantity the execution engine exists to eliminate.
type EngineMeasurement struct {
	Measurement
	// AllocsPerOp is the heap allocation count of one repetition.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is the heap bytes allocated by one repetition.
	BytesPerOp float64 `json:"bytes_per_op"`
}

// EngineEntry compares one iterative workload on one graph with and
// without a shared execution engine, both measured warm.
type EngineEntry struct {
	Workload string            `json:"workload"`
	Graph    string            `json:"graph"`
	Off      EngineMeasurement `json:"engine_off"`
	On       EngineMeasurement `json:"engine_on"`
	// WarmHitRate is hits/(hits+misses) of the engine's workspace pool
	// over the timed (warm) repetitions only — the `make check` gate.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// Pool is the pool-counter delta of the timed repetitions.
	Pool exec.PoolStats `json:"pool"`
}

// EngineReport is the engine experiment's document.
type EngineReport struct {
	Schema  string        `json:"schema"`
	Entries []EngineEntry `json:"entries"`
}

// EngineReportSchema identifies the JSON layout of an EngineReport.
const EngineReportSchema = "maskedspgemm/bench-engine/v1"

// MinWarmHitRate returns the smallest warm-loop pool hit rate across
// all entries (1 for an empty report).
func (r *EngineReport) MinWarmHitRate() float64 {
	min := 1.0
	for _, e := range r.Entries {
		if e.WarmHitRate < min {
			min = e.WarmHitRate
		}
	}
	return min
}

// CheckWarmHitRate fails when any entry's warm-loop hit rate is below
// the threshold — the engine's steady-state contract, enforced by
// `make bench-engine` (and through it `make check`).
func (r *EngineReport) CheckWarmHitRate(min float64) error {
	for _, e := range r.Entries {
		if e.WarmHitRate < min {
			return fmt.Errorf("bench: %s/%s warm pool hit rate %.3f below required %.3f (%+v)",
				e.Workload, e.Graph, e.WarmHitRate, min, e.Pool)
		}
	}
	return nil
}

// timeAllocs measures run like measure does, additionally reading the
// allocator's malloc/byte counters around the timed repetitions. The
// numbers include everything a repetition does — for these workloads
// the per-round result matrices are rebuilt by design, so the engine's
// win shows as the delta between the off and on columns, not as zero.
func timeAllocs(run func() (int64, error), m Methodology) (EngineMeasurement, error) {
	var out EngineMeasurement
	for w := 0; w < m.Warmups; w++ {
		if err := methodErr(m); err != nil {
			return out, err
		}
		nnz, err := run()
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
	}
	deadline := time.Now().Add(m.Budget)
	samples := make([]float64, 0, m.MaxReps)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for rep := 0; rep < m.MaxReps; rep++ {
		if rep > 0 && !time.Now().Before(deadline) {
			break
		}
		if err := methodErr(m); err != nil {
			return out, err
		}
		start := time.Now()
		nnz, err := run()
		elapsed := time.Since(start)
		if err != nil {
			return out, err
		}
		out.OutputNNZ = nnz
		out.Reps++
		samples = append(samples, float64(elapsed)/float64(time.Millisecond))
	}
	runtime.ReadMemStats(&after)
	out.fillFrom(samples)
	if out.Reps > 0 {
		out.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(out.Reps)
		out.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(out.Reps)
	}
	return out, nil
}

// engineWorkloads are the iterative algorithms the engine experiment
// drives: each closure runs the full algorithm once and returns a
// checksum.
func engineWorkloads(a *sparse.CSR[float64], cfg core.Config) []struct {
	name string
	run  func() (int64, error)
} {
	sources := []int{}
	for v := 0; v < a.Rows && len(sources) < 4; v += max(a.Rows/4, 1) {
		sources = append(sources, v)
	}
	return []struct {
		name string
		run  func() (int64, error)
	}{
		{"ktruss", func() (int64, error) {
			res, err := graph.KTruss(a, 4, cfg)
			if err != nil {
				return 0, err
			}
			return res.Edges, nil
		}},
		{"bcbatch", func() (int64, error) {
			bc, err := graph.BetweennessCentralityBatch(a, sources, cfg)
			if err != nil {
				return 0, err
			}
			var sum float64
			for _, v := range bc {
				sum += v
			}
			return int64(sum), nil
		}},
	}
}

// EngineBench runs the engine experiment: the iterative graph workloads
// (k-truss support-and-prune, batched Brandes BC — both loops of masked
// SpGEMMs over a fixed graph) timed without an engine and then warm
// against a freshly populated one, reporting time, allocator traffic
// and the warm-loop pool hit rate.
func EngineBench(w io.Writer, o Options) (*EngineReport, error) {
	report := &EngineReport{Schema: EngineReportSchema}
	fmt.Fprintln(w, "Engine: warm iterative workloads, pooled workspaces vs per-call allocation")
	fmt.Fprintf(w, "%-10s %-22s %12s %12s %14s %14s %9s\n",
		"workload", "graph", "off ms", "on ms", "off allocs/op", "on allocs/op", "hit-rate")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		base := o.planify(tunedConfig(o.Workers))
		base.Context = o.Method.Context
		// This experiment owns its engines: the off column must run
		// engineless even when the -engine flag set a global one.
		base.Engine = nil
		for wi, wl := range engineWorkloads(a, base) {
			off, err := timeAllocs(wl.run, o.Method)
			if err != nil {
				return nil, fmt.Errorf("%s/%s engine-off: %w", wl.name, g.Name, err)
			}

			eng := exec.New(exec.Config{})
			cfgOn := base
			cfgOn.Engine = eng
			wlOn := engineWorkloads(a, cfgOn)[wi]
			// One untimed cold run populates the pool; the timed
			// repetitions then measure the steady state the engine
			// promises, with the pool delta isolating their hit rate.
			if _, err := wlOn.run(); err != nil {
				return nil, fmt.Errorf("%s/%s engine warm-up: %w", wl.name, g.Name, err)
			}
			prior := eng.Stats()
			warmMethod := o.Method
			warmMethod.Warmups = 0
			on, err := timeAllocs(wlOn.run, warmMethod)
			if err != nil {
				return nil, fmt.Errorf("%s/%s engine-on: %w", wl.name, g.Name, err)
			}
			delta := eng.Stats().Sub(prior)
			if off.OutputNNZ != on.OutputNNZ {
				return nil, fmt.Errorf("%s/%s: engine changed the result checksum (%d vs %d)",
					wl.name, g.Name, off.OutputNNZ, on.OutputNNZ)
			}

			entry := EngineEntry{
				Workload: wl.name, Graph: g.Name,
				Off: off, On: on,
				WarmHitRate: delta.HitRate(), Pool: delta,
			}
			report.Entries = append(report.Entries, entry)
			o.Log.Add("engine", g.Name, wl.name+"/engine-off", off.Measurement)
			o.Log.Add("engine", g.Name, wl.name+"/engine-on", on.Measurement)
			fmt.Fprintf(w, "%-10s %-22s %12.2f %12.2f %14.0f %14.0f %8.1f%%\n",
				wl.name, g.Name, off.Millis, on.Millis,
				off.AllocsPerOp, on.AllocsPerOp, entry.WarmHitRate*100)
		}
	}
	return report, nil
}

// WriteJSON emits the report as a schema-tagged JSON document.
func (r *EngineReport) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r)
}

// ValidateEngineReportJSON checks that data is a schema-conforming
// EngineReport document (strict round-trip plus schema tag) — the check
// behind `make bench-engine`.
func ValidateEngineReportJSON(data []byte) error {
	var r EngineReport
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != EngineReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, EngineReportSchema)
	}
	return nil
}
