package bench

import (
	"fmt"
	"io"
	"strings"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/baseline"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/telemetry"
	"maskedspgemm/internal/tiling"
)

// Options parameterizes an experiment run.
type Options struct {
	// Shift scales the corpus down: each unit roughly halves graph size.
	Shift int
	// Workers is the kernel worker count (0 = GOMAXPROCS).
	Workers int
	// PlanWorkers is the plan-construction/assembly worker count
	// (0 = same as Workers).
	PlanWorkers int
	// GuidedMinChunk is the chunk floor for the Guided schedule (0 = 1).
	GuidedMinChunk int
	// Method is the timing methodology.
	Method Methodology
	// TileCounts is the Fig. 10/11 sweep grid.
	TileCounts []int
	// Kappas is the Fig. 14 sweep grid.
	Kappas []float64
	// Graphs restricts the corpus (nil = all).
	Graphs []string
	// Log, when non-nil, collects every individual measurement an
	// experiment takes, so the text table gains a machine-readable JSON
	// twin (the -json flag). nil discards.
	Log *ResultLog
	// Engine, when non-nil, is attached to every kernel configuration
	// the experiments build (the -engine flag), so repeated timed runs
	// recycle pooled workspaces and cached plans instead of allocating
	// per call.
	Engine *exec.Engine
	// Telemetry, when non-nil, receives every recorder the experiments
	// create (the -listen flag), so a live /metrics endpoint aggregates
	// latency histograms and counters across graphs while a run is in
	// flight.
	Telemetry *telemetry.Telemetry
}

// newRecorder builds a per-graph recorder, registered with the live
// telemetry registry when one is attached (AttachRecorder is nil-safe).
func (o Options) newRecorder() *obs.Recorder {
	r := obs.NewRecorder()
	o.Telemetry.AttachRecorder(r)
	return r
}

// planify applies the plan-parallelism and guided-chunk knobs to a
// kernel configuration, so every experiment path honors the CLI flags.
func (o Options) planify(cfg core.Config) core.Config {
	cfg.PlanWorkers = o.PlanWorkers
	cfg.GuidedMinChunk = o.GuidedMinChunk
	cfg.Engine = o.Engine
	return cfg
}

// DefaultOptions mirrors the paper's sweep grids at laptop scale.
func DefaultOptions() Options {
	return Options{
		Shift:      0,
		Workers:    0,
		Method:     DefaultMethodology(),
		TileCounts: []int{64, 256, 1024, 2048, 8192, 32768},
		Kappas:     []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000},
	}
}

func (o Options) corpus() []GraphSpec {
	if len(o.Graphs) == 0 {
		return Corpus
	}
	var out []GraphSpec
	for _, name := range o.Graphs {
		if g, ok := FindGraph(name); ok {
			out = append(out, g)
		}
	}
	return out
}

// Table1 regenerates the paper's Table I: the corpus with its structural
// statistics, alongside the original matrices' sizes.
func Table1(w io.Writer, o Options) error {
	fmt.Fprintf(w, "Table I: corpus (synthetic stand-ins at shift=%d vs paper originals)\n", o.Shift)
	fmt.Fprintf(w, "%-22s %-4s %10s %12s %8s %8s | %12s %12s\n",
		"Name", "Kind", "n", "nnz", "avg-deg", "max-deg", "paper-n", "paper-nnz")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		s := sparse.ComputeStats(a, false)
		fmt.Fprintf(w, "%-22s %-4s %10d %12d %8.1f %8d | %12d %12d\n",
			g.Name, g.Kind, s.Rows, s.NNZ, s.AvgRowNNZ, s.MaxRowNNZ, g.PaperN, g.PaperNNZ)
	}
	return nil
}

// tunedConfig is the paper's recommended configuration with the hash
// accumulator (Fig. 1 runs all three implementations with hash).
func tunedConfig(workers int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	return cfg
}

// Fig1 regenerates Figure 1: masked-SpGEMM runtimes for the
// SuiteSparse:GraphBLAS-like, GrB-like, and tuned implementations on
// every corpus graph, hash accumulators throughout.
func Fig1(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Figure 1: masked-SpGEMM C = A ⊙ (A×A) runtimes (ms), hash accumulators")
	fmt.Fprintf(w, "%-22s %14s %14s %14s\n", "Graph", "SuiteSparse~", "GrB~", "Ours(tuned)")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)

		ssCfg := baseline.SuiteSparseConfig(a, a, a, o.Workers)
		ssCfg.Accumulator = accum.HashKind // Fig. 1 pins the accumulator family
		ss, err := TimeMasked(a, ssCfg, o.Method)
		if err != nil {
			return fmt.Errorf("%s suitesparse-like: %w", g.Name, err)
		}

		grb, err := TimeMasked(a, baseline.GrBConfig(accum.HashKind, o.Workers), o.Method)
		if err != nil {
			return fmt.Errorf("%s grb-like: %w", g.Name, err)
		}

		ours, err := TimeMasked(a, o.planify(tunedConfig(o.Workers)), o.Method)
		if err != nil {
			return fmt.Errorf("%s tuned: %w", g.Name, err)
		}
		if ss.OutputNNZ != grb.OutputNNZ || ss.OutputNNZ != ours.OutputNNZ {
			return fmt.Errorf("%s: implementations disagree on output nnz", g.Name)
		}
		o.Log.Add("fig1", g.Name, "suitesparse-like", ss)
		o.Log.Add("fig1", g.Name, "grb-like", grb)
		o.Log.Add("fig1", g.Name, "tuned", ours)
		fmt.Fprintf(w, "%-22s %14.2f %14.2f %14.2f\n", g.Name, ss.Millis, grb.Millis, ours.Millis)
	}
	return nil
}

// sweepLabel names a (tiling, schedule, accumulator) combination the way
// the paper's figures do.
func sweepLabel(ts tiling.Strategy, sp sched.Policy, ak accum.Kind) string {
	return fmt.Sprintf("%v,%v,%v", ts, sp, ak)
}

// TileSweep runs the Figs. 10–11 grid over the corpus: tile counts ×
// {FlopBalanced,Uniform} × {Static,Dynamic} × {Dense,Hash}, iteration
// space fixed to MaskLoad (the paper's §IV-C excludes co-iteration from
// this sweep). It returns the per-(config,tiles) table keyed as
// "label@tiles" plus a per-graph series writer.
func TileSweep(w io.Writer, o Options) (*RelativeTable, error) {
	rel := NewRelativeTable()
	fmt.Fprintln(w, "Figure 11: runtime (ms) vs tile count, per graph; MaskLoad iteration, 32-bit markers")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "\n%s (n=%d, nnz=%d)\n", g.Name, a.Rows, a.NNZ())
		fmt.Fprintf(w, "%-34s", "config \\ tiles")
		for _, tc := range o.TileCounts {
			fmt.Fprintf(w, "%10d", tc)
		}
		fmt.Fprintln(w)
		for _, ts := range []tiling.Strategy{tiling.FlopBalanced, tiling.Uniform} {
			for _, sp := range []sched.Policy{sched.Dynamic, sched.Static} {
				for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
					label := sweepLabel(ts, sp, ak)
					fmt.Fprintf(w, "%-34s", label)
					series := make([]float64, 0, len(o.TileCounts))
					for _, tc := range o.TileCounts {
						cfg := o.planify(core.Config{
							Iteration: core.MaskLoad, Kappa: 1,
							Accumulator: ak, MarkerBits: 32,
							Tiles: tc, Tiling: ts, Schedule: sp, Workers: o.Workers,
						})
						meas, err := TimeMasked(a, cfg, o.Method)
						if err != nil {
							return nil, fmt.Errorf("%s %s tiles=%d: %w", g.Name, label, tc, err)
						}
						rel.Add(fmt.Sprintf("%s@%d", label, tc), g.Name, meas.Millis)
						o.Log.Add("tiles", g.Name, fmt.Sprintf("%s@%d", label, tc), meas)
						series = append(series, meas.Millis)
						fmt.Fprintf(w, "%10.2f", meas.Millis)
					}
					fmt.Fprintf(w, "  %s\n", sparkline(series))
				}
			}
		}
	}
	return rel, nil
}

// Fig10 aggregates a TileSweep table into the paper's Figure 10:
// percentage of matrices within 10% of the per-matrix best, for every
// (tiling, scheduling, accumulator, tile count) configuration. Per the
// paper's methodology the comparison is split by accumulator: each
// configuration competes against the best configuration using the same
// accumulator family.
func Fig10(w io.Writer, rel *RelativeTable) {
	fmt.Fprintln(w, "\nFigure 10: percentage of matrices within 10% of best (split by accumulator)")
	fmt.Fprintf(w, "%-34s %10s %8s\n", "config", "tiles", "pct<=10%")
	pct := rel.WithinPercentGrouped(accumGroup, 0.10)
	for _, cfg := range rel.Configs() {
		at := strings.LastIndexByte(cfg, '@')
		if at < 0 {
			continue
		}
		fmt.Fprintf(w, "%-34s %10s %7.0f%%\n", cfg[:at], cfg[at+1:], pct[cfg])
	}
}

// accumGroup extracts the accumulator family from a sweep label of the
// form "Tiling,Schedule,Accumulator@tiles".
func accumGroup(cfg string) string {
	s := cfg
	if at := strings.LastIndexByte(s, '@'); at >= 0 {
		s = s[:at]
	}
	if c := strings.LastIndexByte(s, ','); c >= 0 {
		return s[c+1:]
	}
	return s
}

// Fig13 regenerates Figure 13: relative performance of accumulator
// marker widths 8/16/32/64 for both families, κ fixed at 1 with the
// paper's safe tiling choice (2048 balanced tiles, dynamic).
func Fig13(w io.Writer, o Options) error {
	rel := NewRelativeTable()
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
			for _, bits := range []int{8, 16, 32, 64} {
				cfg := o.planify(core.Config{
					Iteration: core.Hybrid, Kappa: 1,
					Accumulator: ak, MarkerBits: bits,
					Tiles: 2048, Tiling: tiling.FlopBalanced,
					Schedule: sched.Dynamic, Workers: o.Workers,
				})
				meas, err := TimeMasked(a, cfg, o.Method)
				if err != nil {
					return fmt.Errorf("%s %v/%d: %w", g.Name, ak, bits, err)
				}
				rel.Add(fmt.Sprintf("%v@%d", ak, bits), g.Name, meas.Millis)
				o.Log.Add("markers", g.Name, fmt.Sprintf("%v@%d", ak, bits), meas)
			}
		}
	}
	fmt.Fprintln(w, "Figure 13: percentage of matrices within 10% of best, per marker width (split by accumulator)")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "acc", "8b", "16b", "32b", "64b")
	pct := rel.WithinPercentGrouped(func(cfg string) string {
		if at := strings.LastIndexByte(cfg, '@'); at >= 0 {
			return cfg[:at]
		}
		return cfg
	}, 0.10)
	for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
		fmt.Fprintf(w, "%-10v", ak)
		for _, bits := range []int{8, 16, 32, 64} {
			fmt.Fprintf(w, "%7.0f%%", pct[fmt.Sprintf("%v@%d", ak, bits)])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig14 regenerates Figure 14: runtime vs co-iteration factor κ for the
// four representative matrices, both accumulators, with the
// no-co-iteration (MaskLoad) baseline as the dashed reference.
func Fig14(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Figure 14: runtime (ms) vs co-iteration factor κ; 2048 balanced tiles, dynamic")
	graphs := o.Graphs
	if len(graphs) == 0 {
		graphs = Fig14Graphs
	}
	for _, name := range graphs {
		g, ok := FindGraph(name)
		if !ok {
			return fmt.Errorf("unknown graph %q", name)
		}
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "\n%s (n=%d, nnz=%d)\n", g.Name, a.Rows, a.NNZ())
		fmt.Fprintf(w, "%-8s", "acc\\κ")
		for _, k := range o.Kappas {
			fmt.Fprintf(w, "%10g", k)
		}
		fmt.Fprintf(w, "%12s\n", "no-coiter")
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
			fmt.Fprintf(w, "%-8v", ak)
			series := make([]float64, 0, len(o.Kappas))
			for _, k := range o.Kappas {
				cfg := o.planify(core.Config{
					Iteration: core.Hybrid, Kappa: k,
					Accumulator: ak, MarkerBits: 32,
					Tiles: 2048, Tiling: tiling.FlopBalanced,
					Schedule: sched.Dynamic, Workers: o.Workers,
				})
				meas, err := TimeMasked(a, cfg, o.Method)
				if err != nil {
					return fmt.Errorf("%s κ=%g: %w", g.Name, k, err)
				}
				o.Log.Add("kappa", g.Name, fmt.Sprintf("%v@%g", ak, k), meas)
				series = append(series, meas.Millis)
				fmt.Fprintf(w, "%10.2f", meas.Millis)
			}
			// Dashed baseline: the algorithm that never co-iterates.
			base := core.Config{
				Iteration: core.MaskLoad, Kappa: 1,
				Accumulator: ak, MarkerBits: 32,
				Tiles: 2048, Tiling: tiling.FlopBalanced,
				Schedule: sched.Dynamic, Workers: o.Workers,
			}
			meas, err := TimeMasked(a, base, o.Method)
			if err != nil {
				return fmt.Errorf("%s no-coiter: %w", g.Name, err)
			}
			o.Log.Add("kappa", g.Name, fmt.Sprintf("%v@no-coiter", ak), meas)
			fmt.Fprintf(w, "%12.2f  %s\n", meas.Millis, sparkline(series))
		}
	}
	return nil
}
