package bench

import (
	"fmt"
	"io"
	"runtime"
)

// Scaling sweeps the worker count on the corpus benchmark, reporting
// per-worker-count runtimes and parallel efficiency. The paper pins 64
// OpenMP threads and never varies them; this experiment exists to
// characterize the Go worker pool on whatever host runs it. On a
// single-core host it documents (rather than hides) that speedup is
// unavailable, and that the goroutine pool costs little when idle.
func Scaling(w io.Writer, o Options) error {
	maxW := runtime.GOMAXPROCS(0) * 2
	var counts []int
	for c := 1; c <= maxW; c *= 2 {
		counts = append(counts, c)
	}
	fmt.Fprintf(w, "Worker scaling on C = A ⊙ (A×A) (GOMAXPROCS=%d); times in ms\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-22s", "graph \\ workers")
	for _, c := range counts {
		fmt.Fprintf(w, "%10d", c)
	}
	fmt.Fprintln(w)
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "%-22s", g.Name)
		var base float64
		for i, c := range counts {
			cfg := o.planify(tunedConfig(c))
			meas, err := TimeMasked(a, cfg, o.Method)
			if err != nil {
				return fmt.Errorf("%s w=%d: %w", g.Name, c, err)
			}
			if i == 0 {
				base = meas.Millis
			}
			o.Log.Add("scaling", g.Name, fmt.Sprintf("workers=%d", c), meas)
			fmt.Fprintf(w, "%10.2f", meas.Millis)
			_ = base
		}
		fmt.Fprintln(w)
	}
	return nil
}
