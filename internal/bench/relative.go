package bench

import "sort"

// RelativeTable implements the methodology of the paper's Figs. 10 and
// 13: "for each matrix, each configuration is compared to the lowest
// runtime for that matrix; the percentage corresponds to how often each
// configuration was within 10% of the best configuration, across all
// matrices."
type RelativeTable struct {
	// times[config][graph] = milliseconds
	times map[string]map[string]float64
}

// NewRelativeTable returns an empty table.
func NewRelativeTable() *RelativeTable {
	return &RelativeTable{times: map[string]map[string]float64{}}
}

// Add records one measurement.
func (r *RelativeTable) Add(config, graph string, millis float64) {
	m, ok := r.times[config]
	if !ok {
		m = map[string]float64{}
		r.times[config] = m
	}
	m[graph] = millis
}

// bestPerGraph returns the minimum time over all configs for each graph.
func (r *RelativeTable) bestPerGraph() map[string]float64 {
	best := map[string]float64{}
	for _, graphs := range r.times {
		for g, ms := range graphs {
			if b, ok := best[g]; !ok || ms < b {
				best[g] = ms
			}
		}
	}
	return best
}

// WithinPercent returns, for every config, the percentage of graphs on
// which that config's time is within tol (e.g. 0.10) of the per-graph
// best. Graphs a config was not measured on count against it.
func (r *RelativeTable) WithinPercent(tol float64) map[string]float64 {
	best := r.bestPerGraph()
	if len(best) == 0 {
		return map[string]float64{}
	}
	out := map[string]float64{}
	for cfg, graphs := range r.times {
		hits := 0
		for g, b := range best {
			if ms, ok := graphs[g]; ok && ms <= b*(1+tol) {
				hits++
			}
		}
		out[cfg] = 100 * float64(hits) / float64(len(best))
	}
	return out
}

// WithinPercentGrouped is WithinPercent with the per-graph best taken
// within groups: groupOf maps each config label to its group (e.g. its
// accumulator family), and each config is compared against the best
// config of the same group on that graph. This matches the paper's
// Figs. 10 and 13 methodology, where configurations are "split by
// accumulator" before the within-10% comparison.
func (r *RelativeTable) WithinPercentGrouped(groupOf func(string) string, tol float64) map[string]float64 {
	// best[group][graph] = min ms
	best := map[string]map[string]float64{}
	graphs := map[string]bool{}
	for cfg, times := range r.times {
		grp := groupOf(cfg)
		m, ok := best[grp]
		if !ok {
			m = map[string]float64{}
			best[grp] = m
		}
		for g, ms := range times {
			graphs[g] = true
			if b, ok := m[g]; !ok || ms < b {
				m[g] = ms
			}
		}
	}
	if len(graphs) == 0 {
		return map[string]float64{}
	}
	out := map[string]float64{}
	for cfg, times := range r.times {
		grp := groupOf(cfg)
		hits := 0
		for g := range graphs {
			b, hasBest := best[grp][g]
			if ms, ok := times[g]; ok && hasBest && ms <= b*(1+tol) {
				hits++
			}
		}
		out[cfg] = 100 * float64(hits) / float64(len(graphs))
	}
	return out
}

// Configs returns the config labels in sorted order.
func (r *RelativeTable) Configs() []string {
	var out []string
	for cfg := range r.times {
		out = append(out, cfg)
	}
	sort.Strings(out)
	return out
}

// Time returns the recorded time for (config, graph), if any.
func (r *RelativeTable) Time(config, graph string) (float64, bool) {
	ms, ok := r.times[config][graph]
	return ms, ok
}
