package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Tune implements the paper's Figure 12 tuning flow on one matrix:
//
//  1. sweep tiling and scheduling without co-iteration,
//  2. tune the co-iteration factor κ on the winner,
//  3. tune the accumulator's internal state (marker width).
//
// It returns the tuned configuration and the per-stage decisions.
func Tune(a *sparse.CSR[float64], o Options, log io.Writer) (core.Config, error) {
	m := o.Method

	// Stage 1: tiling and scheduling, MaskLoad, both accumulators.
	best := core.Config{}
	bestMs := -1.0
	for _, ts := range []tiling.Strategy{tiling.FlopBalanced, tiling.Uniform} {
		for _, sp := range []sched.Policy{sched.Dynamic, sched.Static} {
			for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
				for _, tc := range o.TileCounts {
					cfg := o.planify(core.Config{
						Iteration: core.MaskLoad, Kappa: 1,
						Accumulator: ak, MarkerBits: 32,
						Tiles: tc, Tiling: ts, Schedule: sp, Workers: o.Workers,
					})
					meas, err := TimeMasked(a, cfg, m)
					if err != nil {
						return core.Config{}, err
					}
					if bestMs < 0 || meas.Millis < bestMs {
						bestMs = meas.Millis
						best = cfg
					}
				}
			}
		}
	}
	fmt.Fprintf(log, "stage 1 (tiling/scheduling): %v  -> %.2f ms\n", best, bestMs)

	// Stage 2: co-iteration factor on top of the stage-1 winner.
	best.Iteration = core.Hybrid
	bestKappa := 0.0 // 0 = keep MaskLoad
	for _, k := range o.Kappas {
		cfg := best
		cfg.Kappa = k
		meas, err := TimeMasked(a, cfg, m)
		if err != nil {
			return core.Config{}, err
		}
		if meas.Millis < bestMs {
			bestMs = meas.Millis
			bestKappa = k
		}
	}
	if bestKappa == 0 {
		best.Iteration = core.MaskLoad
		best.Kappa = 1
		fmt.Fprintf(log, "stage 2 (κ): co-iteration does not help; staying with MaskLoad\n")
	} else {
		best.Kappa = bestKappa
		fmt.Fprintf(log, "stage 2 (κ): κ=%g -> %.2f ms\n", bestKappa, bestMs)
	}

	// Stage 3: accumulator state width.
	for _, bits := range []int{8, 16, 32, 64} {
		cfg := best
		cfg.MarkerBits = bits
		meas, err := TimeMasked(a, cfg, m)
		if err != nil {
			return core.Config{}, err
		}
		if meas.Millis < bestMs {
			bestMs = meas.Millis
			best = cfg
		}
	}
	fmt.Fprintf(log, "stage 3 (marker): %d bits -> final %v  %.2f ms\n", best.MarkerBits, best, bestMs)
	return best, nil
}

// TuneReport runs the Figure 12 flow over the corpus and prints each
// matrix's tuned configuration.
func TuneReport(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Figure 12 flow: staged tuning per matrix")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		fmt.Fprintf(w, "\n%s:\n", g.Name)
		cfg, err := Tune(a, o, w)
		if err != nil {
			return fmt.Errorf("%s: %w", g.Name, err)
		}
		fmt.Fprintf(w, "tuned: %v\n", cfg)
	}
	return nil
}
