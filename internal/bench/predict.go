package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/model"
)

// PredictReport evaluates the execution-time configuration model (the
// paper's conclusion future-work item, implemented in internal/model)
// against the default configuration and the per-(i,k) cost model's own
// predictions: for each corpus graph it prints the extracted features,
// the predicted configuration, and measured runtimes of default vs
// predicted.
func PredictReport(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Model-based tuning: features -> predicted config vs paper default")
	fmt.Fprintf(w, "%-22s %10s %8s %10s | %-26s %12s %12s\n",
		"Graph", "flops/pos", "skew", "coit-pred", "predicted-config", "default-ms", "predicted-ms")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		cfg, f, err := model.PredictConfig(a, a, a, o.Workers)
		if err != nil {
			return fmt.Errorf("%s: %w", g.Name, err)
		}
		def, err := TimeMasked(a, tunedConfig(o.Workers), o.Method)
		if err != nil {
			return fmt.Errorf("%s default: %w", g.Name, err)
		}
		pred, err := TimeMasked(a, cfg, o.Method)
		if err != nil {
			return fmt.Errorf("%s predicted: %w", g.Name, err)
		}
		if def.OutputNNZ != pred.OutputNNZ {
			return fmt.Errorf("%s: predicted config changed the result", g.Name)
		}
		short := fmt.Sprintf("%v/%v t=%d", cfg.Iteration, cfg.Accumulator, cfg.Tiles)
		fmt.Fprintf(w, "%-22s %10.1f %8.1f %9.2fx | %-26s %12.2f %12.2f\n",
			g.Name, f.AvgFlopsPerUpdatePos, f.DegreeSkew, f.CoIterSpeedup,
			short, def.Millis, pred.Millis)
	}
	return nil
}

// ModelValidation prints the Eq. 2 / Eq. 3 cost-model quantities per
// graph (the symbolic profile) next to measured hybrid vs mask-load
// runtimes, quantifying how well the model's predicted co-iteration
// speedup tracks reality — the paper's §V-B claim that "the estimate
// from Equation 3 is accurate relative to the linear estimate from
// Equation 2".
func ModelValidation(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Cost-model validation: predicted co-iteration speedup vs measured (κ=1)")
	fmt.Fprintf(w, "%-22s %12s %12s %10s | %12s %12s %10s\n",
		"Graph", "flops", "hybrid-cost", "predicted", "maskload-ms", "hybrid-ms", "measured")
	for _, g := range o.corpus() {
		a := g.Build(o.Shift)
		p, err := core.ProfileMasked(a, a, a, 1)
		if err != nil {
			return err
		}
		linCfg := tunedConfig(o.Workers)
		linCfg.Iteration = core.MaskLoad
		lin, err := TimeMasked(a, linCfg, o.Method)
		if err != nil {
			return err
		}
		hybCfg := tunedConfig(o.Workers)
		hyb, err := TimeMasked(a, hybCfg, o.Method)
		if err != nil {
			return err
		}
		measured := lin.Millis / hyb.Millis
		fmt.Fprintf(w, "%-22s %12d %12d %9.2fx | %12.2f %12.2f %9.2fx\n",
			g.Name, p.Flops, p.HybridCost, p.PredictedCoIterSpeedup(),
			lin.Millis, hyb.Millis, measured)
	}
	return nil
}
