package core

import (
	"math/rand"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func TestMultiplierMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	a := randMatrix(60, 60, 0.12, r)
	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
			cfg := DefaultConfig()
			cfg.Iteration = it
			cfg.Accumulator = ak
			cfg.Tiles = 7
			cfg.Workers = 2
			want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Repeated multiplies must stay bit-identical: buffer reuse
			// and marker state must not leak between runs.
			for rep := 0; rep < 4; rep++ {
				got, err := mu.Multiply()
				if err != nil {
					t.Fatalf("%v/%v rep %d: %v", it, ak, rep, err)
				}
				if err := got.Check(); err != nil {
					t.Fatalf("%v/%v rep %d: malformed: %v", it, ak, rep, err)
				}
				if !sparse.Equal(want, got) {
					t.Fatalf("%v/%v rep %d: differs from one-shot kernel", it, ak, rep)
				}
			}
		}
	}
}

func TestMultiplierErrorsAndEdges(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	a := randMatrix(5, 6, 0.5, r)
	b := randMatrix(7, 5, 0.5, r)
	m := randMatrix(5, 5, 0.5, r)
	if _, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, m, a, b, DefaultConfig()); err == nil {
		t.Error("shape mismatch accepted")
	}
	bad := DefaultConfig()
	bad.Tiles = 0
	sq := randMatrix(5, 5, 0.5, r)
	if _, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, sq, sq, sq, bad); err == nil {
		t.Error("invalid config accepted")
	}
	z := sparse.NewCSR[float64](0, 0, 0)
	mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, z, z, z, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mu.Multiply(); err != nil || got.Rows != 0 || got.NNZ() != 0 {
		t.Errorf("zero-row multiply wrong (err=%v)", err)
	}
}

func TestMultiplierTiles(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	a := randMatrix(100, 100, 0.1, r)
	cfg := DefaultConfig()
	cfg.Tiles = 16
	mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mu.Tiles() < 1 || mu.Tiles() > 16 {
		t.Errorf("plan has %d tiles, want 1..16", mu.Tiles())
	}
}

// BenchmarkMultiplierReuse quantifies the plan-reuse saving against the
// one-shot kernel on the same problem.
func BenchmarkMultiplierReuse(b *testing.B) {
	r := rand.New(rand.NewSource(104))
	a := randMatrix(400, 400, 0.03, r)
	cfg := DefaultConfig()
	b.Run("OneShot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Planned", func(b *testing.B) {
		mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mu.Multiply(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
