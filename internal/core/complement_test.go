package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// denseComplementOracle computes ¬M ⊙ (A × B) densely.
func denseComplementOracle(m *sparse.Dense[uint8], a, b *sparse.Dense[float64]) *sparse.Dense[float64] {
	full := sparse.MatMulDense(a, b)
	for i := 0; i < full.Rows; i++ {
		for j := 0; j < full.Cols; j++ {
			if m.At(i, j) != 0 {
				full.Set(i, j, 0)
			}
		}
	}
	return full
}

func TestMaskedSpGEMMCompVsOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := r.Intn(22)+1, r.Intn(22)+1, r.Intn(22)+1
		a := randMatrix(rows, inner, 0.25, r)
		b := randMatrix(inner, cols, 0.25, r)
		m := randMatrix(rows, cols, 0.3, r)
		cfg := DefaultConfig()
		cfg.Tiles = r.Intn(5) + 1
		cfg.Workers = 2
		got, err := MaskedSpGEMMComp[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
		if err != nil {
			return false
		}
		if got.Check() != nil {
			return false
		}
		want := denseComplementOracle(sparse.DensePattern(m), sparse.ToDense(a), sparse.ToDense(b))
		gd := sparse.ToDense(got)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if gd.At(i, j) != want.At(i, j) {
					return false
				}
			}
		}
		// No output entry may coincide with a mask entry.
		for i := 0; i < got.Rows; i++ {
			for _, j := range got.RowCols(i) {
				if m.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMaskedSpGEMMCompComplementary(t *testing.T) {
	// The masked and complement-masked products partition the unmasked
	// product: C_masked ∪ C_comp = A×B with disjoint structures.
	r := rand.New(rand.NewSource(97))
	a := randMatrix(30, 30, 0.15, r)
	cfg := DefaultConfig()
	cfg.Workers = 2
	sr := semiring.PlusTimes[float64]{}
	masked, err := MaskedSpGEMM[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := MaskedSpGEMMComp[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SpGEMM[float64](sr, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if masked.NNZ()+comp.NNZ() != full.NNZ() {
		t.Fatalf("partition broken: %d + %d != %d", masked.NNZ(), comp.NNZ(), full.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		for _, j := range masked.RowCols(i) {
			if comp.Has(i, j) {
				t.Fatalf("entry (%d,%d) in both masked and complement results", i, j)
			}
		}
	}
}

func TestMaskedSpGEMMCompEmptyMask(t *testing.T) {
	// An empty mask complements to everything: result = full product.
	r := rand.New(rand.NewSource(98))
	a := randMatrix(20, 20, 0.2, r)
	empty := sparse.NewCOO[float64](20, 20, 0).ToCSR()
	cfg := DefaultConfig()
	sr := semiring.PlusTimes[float64]{}
	got, err := MaskedSpGEMMComp[float64](sr, empty, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SpGEMM[float64](sr, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("complement of empty mask must equal the unmasked product")
	}
}

func TestMaskedSpGEMMCompErrors(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	a := randMatrix(5, 6, 0.5, r)
	b := randMatrix(7, 5, 0.5, r)
	m := randMatrix(5, 5, 0.5, r)
	if _, err := MaskedSpGEMMComp[float64](semiring.PlusTimes[float64]{}, m, a, b, DefaultConfig()); err == nil {
		t.Error("shape mismatch accepted")
	}
	z := sparse.NewCSR[float64](0, 0, 0)
	if got, err := MaskedSpGEMMComp[float64](semiring.PlusTimes[float64]{}, z, z, z, DefaultConfig()); err != nil || got.Rows != 0 {
		t.Errorf("zero rows: %v %v", got, err)
	}
}
