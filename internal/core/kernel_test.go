package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// randMatrix generates an n×m random integer-valued matrix; integer
// values keep the PlusTimes comparisons exact.
func randMatrix(rows, cols int, density float64, r *rand.Rand) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](rows, cols, 0)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.Add(sparse.Index(i), sparse.Index(j), float64(r.Intn(5)+1))
			}
		}
	}
	return coo.ToCSR()
}

// allConfigs enumerates a representative configuration grid: every
// iteration space and accumulator kind, both tilings and schedules, and
// all marker widths on at least one path.
func allConfigs() []Config {
	var out []Config
	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind, accum.DenseExplicitKind, accum.HashExplicitKind, accum.SortListKind} {
			out = append(out, Config{
				Iteration: it, Kappa: 1, Accumulator: ak, MarkerBits: 32,
				Tiles: 4, Tiling: tiling.FlopBalanced, Schedule: sched.Dynamic, Workers: 2,
			})
		}
	}
	for _, bits := range []int{8, 16, 64} {
		out = append(out, Config{
			Iteration: MaskLoad, Kappa: 1, Accumulator: accum.DenseKind, MarkerBits: bits,
			Tiles: 3, Tiling: tiling.Uniform, Schedule: sched.Static, Workers: 2,
		})
		out = append(out, Config{
			Iteration: Hybrid, Kappa: 1, Accumulator: accum.HashKind, MarkerBits: bits,
			Tiles: 7, Tiling: tiling.FlopBalanced, Schedule: sched.Static, Workers: 3,
		})
	}
	for _, kappa := range []float64{0.001, 0.5, 1000} {
		out = append(out, Config{
			Iteration: Hybrid, Kappa: kappa, Accumulator: accum.HashKind, MarkerBits: 32,
			Tiles: 5, Tiling: tiling.Uniform, Schedule: sched.Dynamic, Workers: 2,
		})
	}
	for _, chunk := range []int{0, 1, 3, 100} {
		out = append(out, Config{
			Iteration: Hybrid, Kappa: 1, Accumulator: accum.HashKind, MarkerBits: 32,
			Tiles: 9, Tiling: tiling.FlopBalanced, Schedule: sched.Guided, Workers: 3,
			GuidedMinChunk: chunk,
		})
	}
	for _, pw := range []int{1, 2, 4} {
		out = append(out, Config{
			Iteration: MaskLoad, Kappa: 1, Accumulator: accum.HashKind, MarkerBits: 32,
			Tiles: 6, Tiling: tiling.FlopBalanced, Schedule: sched.Guided, Workers: 2,
			PlanWorkers: pw,
		})
	}
	return out
}

// checkAgainstOracle verifies one masked product against the dense oracle.
func checkAgainstOracle(t *testing.T, m, a, b *sparse.CSR[float64], cfg Config) {
	t.Helper()
	got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	if err := got.Check(); err != nil {
		t.Fatalf("%v: result malformed: %v", cfg, err)
	}
	want := sparse.MaskedMatMulDense(sparse.DensePattern(m), sparse.ToDense(a), sparse.ToDense(b))
	// Every stored output entry must be in the mask and have the oracle
	// value; every nonzero oracle value must be stored.
	gotDense := sparse.ToDense(got)
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if gotDense.At(i, j) != want.At(i, j) {
				t.Fatalf("%v: C[%d,%d] = %v, want %v", cfg, i, j, gotDense.At(i, j), want.At(i, j))
			}
		}
	}
	for i := 0; i < got.Rows; i++ {
		for _, j := range got.RowCols(i) {
			if !m.Has(i, j) {
				t.Fatalf("%v: output entry (%d,%d) outside the mask", cfg, i, j)
			}
		}
	}
}

func TestMaskedSpGEMMAllConfigsVsOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randMatrix(40, 40, 0.15, r)
	a := randMatrix(40, 40, 0.12, r)
	b := randMatrix(40, 40, 0.12, r)
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			checkAgainstOracle(t, m, a, b, cfg)
		})
	}
}

func TestMaskedSpGEMMRectangular(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randMatrix(15, 30, 0.2, r)
	b := randMatrix(30, 22, 0.2, r)
	m := randMatrix(15, 22, 0.3, r)
	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
		cfg := DefaultConfig()
		cfg.Iteration = it
		cfg.Tiles = 4
		cfg.Workers = 2
		checkAgainstOracle(t, m, a, b, cfg)
	}
}

func TestMaskedSpGEMMPropertyRandomShapes(t *testing.T) {
	f := func(seed int64, itRaw, akRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := r.Intn(25)+1, r.Intn(25)+1, r.Intn(25)+1
		a := randMatrix(rows, inner, 0.25, r)
		b := randMatrix(inner, cols, 0.25, r)
		m := randMatrix(rows, cols, 0.3, r)
		cfg := Config{
			Iteration:      IterationSpace(itRaw % 4),
			Kappa:          1,
			Accumulator:    accum.Kind(akRaw % 5),
			MarkerBits:     32,
			Tiles:          r.Intn(8) + 1,
			Tiling:         tiling.Strategy(r.Intn(2)),
			Schedule:       sched.Policy(r.Intn(3)),
			Workers:        r.Intn(3) + 1,
			PlanWorkers:    r.Intn(3),
			GuidedMinChunk: r.Intn(4),
		}
		got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
		if err != nil {
			return false
		}
		if got.Check() != nil {
			return false
		}
		want := sparse.MaskedMatMulDense(sparse.DensePattern(m), sparse.ToDense(a), sparse.ToDense(b))
		gd := sparse.ToDense(got)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if gd.At(i, j) != want.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAllIterationSpacesAgree(t *testing.T) {
	// The four iteration spaces are different traversals of the same
	// computation; on identical input they must produce bit-identical
	// CSR results (same structure, same values, same order).
	r := rand.New(rand.NewSource(23))
	a := randMatrix(60, 60, 0.1, r)
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Tiles = 8
	ref, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter} {
		c := cfg
		c.Iteration = it
		got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, c)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(ref, got) {
			t.Errorf("%v disagrees with Hybrid", it)
		}
	}
}

func TestMaskedSpGEMMMatchesTwoStep(t *testing.T) {
	// Fused masked kernels must equal SpGEMM followed by ApplyMask.
	r := rand.New(rand.NewSource(31))
	a := randMatrix(50, 50, 0.12, r)
	full, err := SpGEMM[float64](semiring.PlusTimes[float64]{}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ApplyMask(a, full)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("fused masked SpGEMM differs from two-step oracle")
	}
}

func TestMaskedSpGEMMSemirings(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	a := randMatrix(30, 30, 0.15, r)
	cfg := DefaultConfig()
	cfg.Workers = 2

	// PlusPair counts structural matches: C[i,j] = |{k: A[i,k],B[k,j]≠0}|.
	got, err := MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pat := a.Pattern()
	want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, pat, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(got, want) {
		t.Error("PlusPair != PlusTimes on pattern operands")
	}

	// OrAnd yields the masked Boolean product: all stored values 1.
	gotBool, err := MaskedSpGEMM[float64](semiring.OrAnd[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualPattern(gotBool, want) {
		t.Error("OrAnd pattern differs from PlusPair pattern")
	}
	for _, v := range gotBool.Val {
		if v != 1 {
			t.Fatalf("OrAnd stored %v, want 1", v)
		}
	}
}

func TestMaskedSpGEMMIntValues(t *testing.T) {
	// The kernel is generic over the value type; run the oracle check
	// with int64 to pin that down.
	r := rand.New(rand.NewSource(53))
	coo := sparse.NewCOO[int64](20, 20, 0)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if r.Float64() < 0.2 {
				coo.Add(sparse.Index(i), sparse.Index(j), int64(r.Intn(7)+1))
			}
		}
	}
	a := coo.ToCSR()
	cfg := DefaultConfig()
	cfg.Workers = 2
	got, err := MaskedSpGEMM[int64](semiring.PlusTimes[int64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.MaskedMatMulDense(sparse.DensePattern(a), sparse.ToDense(a), sparse.ToDense(a))
	gd := sparse.ToDense(got)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if gd.At(i, j) != want.At(i, j) {
				t.Fatalf("int64 C[%d,%d] = %v, want %v", i, j, gd.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMaskedSpGEMMEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	sr := semiring.PlusTimes[float64]{}

	t.Run("empty mask", func(t *testing.T) {
		r := rand.New(rand.NewSource(1))
		a := randMatrix(10, 10, 0.3, r)
		empty := sparse.NewCOO[float64](10, 10, 0).ToCSR()
		got, err := MaskedSpGEMM[float64](sr, empty, a, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 0 {
			t.Errorf("empty mask produced %d entries", got.NNZ())
		}
	})

	t.Run("empty operands", func(t *testing.T) {
		empty := sparse.NewCOO[float64](8, 8, 0).ToCSR()
		m := sparse.FromDense(&sparse.Dense[float64]{Rows: 8, Cols: 8, Data: make([]float64, 64)})
		_ = m
		got, err := MaskedSpGEMM[float64](sr, empty, empty, empty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 0 {
			t.Error("empty operands produced entries")
		}
	})

	t.Run("zero rows", func(t *testing.T) {
		z := sparse.NewCSR[float64](0, 0, 0)
		got, err := MaskedSpGEMM[float64](sr, z, z, z, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != 0 || got.NNZ() != 0 {
			t.Error("zero-row product wrong")
		}
	})

	t.Run("shape mismatch", func(t *testing.T) {
		r := rand.New(rand.NewSource(2))
		a := randMatrix(5, 6, 0.5, r)
		b := randMatrix(7, 5, 0.5, r) // inner dimensions disagree
		m := randMatrix(5, 5, 0.5, r)
		if _, err := MaskedSpGEMM[float64](sr, m, a, b, cfg); err == nil {
			t.Error("inner dimension mismatch not rejected")
		}
	})

	t.Run("invalid config", func(t *testing.T) {
		r := rand.New(rand.NewSource(3))
		a := randMatrix(5, 5, 0.5, r)
		bad := cfg
		bad.MarkerBits = 7
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("invalid marker bits not rejected")
		}
		bad = cfg
		bad.Tiles = 0
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("zero tiles not rejected")
		}
		bad = cfg
		bad.Iteration = Hybrid
		bad.Kappa = 0
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("hybrid with kappa=0 not rejected")
		}
		bad = cfg
		bad.Schedule = sched.Policy(99)
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("unknown schedule not rejected")
		}
		bad = cfg
		bad.PlanWorkers = -1
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("negative plan workers not rejected")
		}
		bad = cfg
		bad.GuidedMinChunk = -1
		if _, err := MaskedSpGEMM[float64](sr, a, a, a, bad); err == nil {
			t.Error("negative guided chunk not rejected")
		}
	})

	t.Run("more tiles than rows", func(t *testing.T) {
		r := rand.New(rand.NewSource(4))
		a := randMatrix(6, 6, 0.4, r)
		c := cfg
		c.Tiles = 1000
		checkAgainstOracle(t, a, a, a, c)
	})
}

func TestConfigValidateAndString(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	s := DefaultConfig().String()
	if s == "" {
		t.Error("empty config string")
	}
	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
		if it.String() == "Unknown" {
			t.Errorf("iteration %d has no name", it)
		}
	}
}

func TestCoIterCheaperModel(t *testing.T) {
	// Eq. 3 sanity: tiny mask against a huge row favors co-iteration;
	// a mask as big as the row does not.
	if !coIterCheaper(2, 1<<20, 1) {
		t.Error("2-element mask vs 1M row should co-iterate")
	}
	if coIterCheaper(1000, 1000, 1) {
		t.Error("equal sizes should not co-iterate at kappa=1")
	}
	// Kappa scales the linear cost: enormous kappa forces co-iteration.
	if !coIterCheaper(1000, 1000, 1e6) {
		t.Error("huge kappa must force co-iteration")
	}
	if coIterCheaper(2, 1<<20, 1e-7) {
		t.Error("tiny kappa must suppress co-iteration")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSpGEMMOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := r.Intn(20)+1, r.Intn(20)+1, r.Intn(20)+1
		a := randMatrix(rows, inner, 0.25, r)
		b := randMatrix(inner, cols, 0.25, r)
		got, err := SpGEMM[float64](semiring.PlusTimes[float64]{}, a, b)
		if err != nil || got.Check() != nil {
			return false
		}
		want := sparse.MatMulDense(sparse.ToDense(a), sparse.ToDense(b))
		gd := sparse.ToDense(got)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if gd.At(i, j) != want.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestApplyMaskShapeError(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMatrix(5, 5, 0.5, r)
	b := randMatrix(6, 6, 0.5, r)
	if _, err := ApplyMask(a, b); err == nil {
		t.Error("shape mismatch not rejected")
	}
	if _, err := SpGEMM[float64](semiring.PlusTimes[float64]{}, a, b); err == nil {
		t.Error("SpGEMM shape mismatch not rejected")
	}
}

func TestKernelDeterminism(t *testing.T) {
	// Parallel execution must be bit-deterministic: per-row work is
	// sequential and rows are disjoint, so repeated runs agree exactly.
	r := rand.New(rand.NewSource(61))
	a := randMatrix(80, 80, 0.08, r)
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Tiles = 16
	var prev *sparse.CSR[float64]
	for rep := 0; rep < 5; rep++ {
		got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !sparse.Equal(prev, got) {
			t.Fatal("nondeterministic result across runs")
		}
		prev = got
	}
}

func ExampleMaskedSpGEMM() {
	// C = M ⊙ (A × A) on a 4-cycle: counts length-2 paths between
	// adjacent vertices (none in a square — no triangles).
	coo := sparse.NewCOO[float64](4, 4, 8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		coo.Add(sparse.Index(e[0]), sparse.Index(e[1]), 1)
		coo.Add(sparse.Index(e[1]), sparse.Index(e[0]), 1)
	}
	a := coo.ToCSR()
	c, _ := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, DefaultConfig())
	fmt.Println("nnz:", c.NNZ())
	// Output: nnz: 0
}
