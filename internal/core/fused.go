package core

import (
	"fmt"
	"unsafe"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// This file is the fused-multiply pipeline: chained masked products
// executed tile by tile so the first product's output is consumed by
// the second product's row kernel while still cache-hot, staged through
// exec.Workspace tile buffers instead of a fully assembled intermediate
// CSR. Three fusion shapes cover the repo's chained kernels:
//
//   - FusedMaskedSpGEMM: the general two-multiply chain
//     D = M2 ⊙ ((M1 ⊙ (A×B)) × C);
//   - MaskedSpGEMMSelect: multiply plus per-entry keep/rewrite — the
//     k-truss support-and-prune round without the support matrix;
//   - MaskedSpGEMMStream: multiply plus per-row consumption with no
//     assembly at all — the BC backward sweep's accumulation.
//
// The per-tile mode decision is the Eq. 2 fusion cost model: a tile
// whose estimated intermediate footprint (first-stage mask volume ×
// entry size — the same nnz(M) bound that sizes the accumulators) fits
// Config.FuseTileBudget is staged whole, keeping the stage-1 B rows hot
// across the tile; a tile that exceeds the budget streams row at a
// time, bounding the live intermediate to a single row. Both modes
// perform identical per-row arithmetic, so the output is bit-identical
// to materialize-then-multiply.

// FusedPlan is the execution plan of a fused two-multiply chain: the
// tile partition (FLOP-balanced over the first product, which both
// stages share because the second product's row i consumes only
// intermediate row i) plus the per-stage accumulator row-capacity
// bounds.
type FusedPlan struct {
	// Tiles partitions the output rows; both stages use it.
	Tiles []tiling.Tile
	// RowCap1 bounds a stage-1 accumulator row (max nnz of an M1 row;
	// the vanilla flop bound when cfg.Iteration is Vanilla).
	RowCap1 int64
	// RowCap2 bounds a stage-2 accumulator row (max nnz of an M2 row;
	// the stage-2 output column count under Vanilla, since the flop
	// bound of a never-materialized left operand is unknown).
	RowCap2 int64
}

// fusedEntrySize is the staging cost of one intermediate entry: a
// column index plus a value.
func fusedEntrySize[T sparse.Number]() int64 {
	var z T
	var j sparse.Index
	return int64(unsafe.Sizeof(z)) + int64(unsafe.Sizeof(j))
}

// fusedPlanFor resolves the chain's plan through the engine's plan
// cache when available: the stage-1 plan under its natural key, the
// stage-2 row bound under a rowcap-only pseudo key (zero B operand, so
// it can never collide with a real multiply's key).
func fusedPlanFor[T sparse.Number](
	cfg Config, pw int, m1, a, b, m2, c *sparse.CSR[T], scope *obs.RunScope,
) (FusedPlan, error) {
	ctx := cfg.Context
	p1, err := planFor(ctx, cfg, pw, m1, a, b, scope)
	if err != nil {
		return FusedPlan{}, err
	}
	build := func() (exec.Plan, error) {
		defer scope.Span(obs.PhasePlanRowCap)()
		if cfg.Iteration == Vanilla {
			return exec.Plan{RowCap: int64(c.Cols)}, nil
		}
		rc, err := maxRowNNZ(ctx, m2, pw)
		if err != nil {
			return exec.Plan{}, err
		}
		return exec.Plan{RowCap: rc}, nil
	}
	var rowCap2 int64
	if cfg.Engine == nil {
		p2, err := build()
		if err != nil {
			return FusedPlan{}, err
		}
		rowCap2 = p2.RowCap
	} else {
		key := exec.PlanKey{
			M:       exec.IDOf(m2),
			A:       exec.IDOf(c),
			Tiles:   cfg.Tiles,
			Tiling:  cfg.Tiling,
			Vanilla: cfg.Iteration == Vanilla,
		}
		p2, err := cfg.Engine.Plan(key, build)
		if err != nil {
			return FusedPlan{}, err
		}
		rowCap2 = p2.RowCap
	}
	return FusedPlan{Tiles: p1.Tiles, RowCap1: p1.RowCap, RowCap2: rowCap2}, nil
}

// FusedMaskedSpGEMM computes the chained masked product
//
//	D = M2 ⊙ ((M1 ⊙ (A×B)) × C)
//
// without materializing the intermediate I = M1 ⊙ (A×B) as a CSR: each
// tile's intermediate rows live only in workspace staging buffers and
// are consumed by the second multiply while hot. Rows whose M2 row is
// empty skip stage 1 entirely — their intermediate row is dead by
// construction.
//
// Shape requirements: A is m×k, B is k×n, M1 is m×n, C is n×q, M2 is
// m×q. The result is bit-identical to the two-call sequence
// MaskedSpGEMM(sr, M1, A, B) then MaskedSpGEMM(sr, M2, I, C) under the
// same Config.
func FusedMaskedSpGEMM[T sparse.Number, S semiring.Semiring[T]](
	sr S, m1, a, b, m2, c *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m1.Rows != a.Rows || m1.Cols != b.Cols ||
		b.Cols != c.Rows || m2.Rows != a.Rows || m2.Cols != c.Cols {
		return nil, fmt.Errorf("%w: M1 %dx%d, A %dx%d, B %dx%d, M2 %dx%d, C %dx%d",
			sparse.ErrShape, m1.Rows, m1.Cols, a.Rows, a.Cols, b.Rows, b.Cols,
			m2.Rows, m2.Cols, c.Rows, c.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, c.Cols, 0), nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := fusedPlanFor(cfg, pw, m1, a, b, m2, c, scope)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	// Two workspaces, one per stage: stage 1's accumulators are sized by
	// (b.Cols, RowCap1) and its per-worker Outs serve as the intermediate
	// staging buffers; stage 2's accumulators are sized by (c.Cols,
	// RowCap2) and its per-tile Outs hold the final output staging.
	ws1 := exec.Masked[T, S](cfg.Engine, sr, cfg.Accumulator, cfg.MarkerBits,
		b.Cols, plan.RowCap1, workers, workers)
	// Poison-on-error (both stages): a failed run may leave either
	// stage's accumulators or staging mid-mutation, so both workspaces
	// are quarantined unless the run reaches its fully-successful exit.
	clean := false
	defer func() {
		if !clean {
			ws1.Poison()
		}
		ws1.Release()
	}()
	ws2 := exec.Masked[T, S](cfg.Engine, sr, cfg.Accumulator, cfg.MarkerBits,
		c.Cols, plan.RowCap2, workers, len(tiles))
	defer func() {
		if !clean {
			ws2.Poison()
		}
		ws2.Release()
	}()
	accs1 := ws1.Accs[:workers]
	accs2 := ws2.Accs[:workers]
	if cfg.Resilience != nil {
		defer armAccumChaos(cfg, accs1)()
		defer armAccumChaos(cfg, accs2)()
	}
	mids := ws1.Outs[:workers]
	outs := ws2.Outs[:len(tiles)]
	prior1 := snapshotAccumStats(accs1, scope)
	prior2 := snapshotAccumStats(accs2, scope)
	fcs := fusedSlots(scope, workers)
	budget := cfg.fuseTileBudget()
	entrySize := fusedEntrySize[T]()

	if err := runKernelSpanned(ctx, cfg, scope, workers, len(tiles), func(worker, t int, wc *obs.WorkerCounters) {
		runTileFused(sr, accs1[worker], accs2[worker], m1, a, b, m2, c, cfg,
			tiles[t], &mids[worker], &outs[t], budget, entrySize, fcSlot(fcs, worker), wc)
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	d, err := assembleSpanned(ctx, cfg, scope, a.Rows, c.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordAccumDeltas(accs1, prior1, scope)
	recordAccumDeltas(accs2, prior2, scope)
	recordPoolDelta(cfg, poolPrior, scope)
	foldFused(scope, fcs, obs.FusedCounters{ChainRuns: 1})
	clean = true
	return d, nil
}

// fusedSlots returns per-worker fused-counter blocks (nil when the
// scope is disabled, so the uninstrumented path allocates nothing).
func fusedSlots(scope *obs.RunScope, workers int) []obs.FusedCounters {
	if !scope.Enabled() {
		return nil
	}
	return make([]obs.FusedCounters, workers)
}

// fcSlot indexes a worker's counter block, nil-safe.
func fcSlot(fcs []obs.FusedCounters, worker int) *obs.FusedCounters {
	if fcs == nil {
		return nil
	}
	return &fcs[worker]
}

// foldFused sums the per-worker fused counters plus the run marker into
// the scope.
func foldFused(scope *obs.RunScope, fcs []obs.FusedCounters, run obs.FusedCounters) {
	if fcs == nil {
		return
	}
	total := run
	for i := range fcs {
		total.Add(fcs[i])
	}
	scope.AddFused(total)
}

// runTileFused executes both stages of the chain for one tile. Staged
// mode (intermediate footprint within budget) computes every stage-1
// row of the tile into mid, then consumes them in order; streamed mode
// interleaves, keeping only one intermediate row live. mid is a
// per-worker buffer reused across the worker's tiles, so its capacity
// settles at the high-water mark and warm runs allocate nothing.
//
//spgemm:hotpath
func runTileFused[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc1, acc2 accum.Accumulator[T],
	m1, a, b, m2, c *sparse.CSR[T], cfg Config, tile tiling.Tile,
	mid, out *exec.TileBuf[T], budget, entrySize int64,
	fc *obs.FusedCounters, wc *obs.WorkerCounters,
) {
	rows := tile.Rows()
	mask1Vol := m1.RowPtr[tile.Hi] - m1.RowPtr[tile.Lo]
	mask2Vol := m2.RowPtr[tile.Hi] - m2.RowPtr[tile.Lo]
	if cap(out.RowNNZ) < rows {
		out.RowNNZ = make([]int32, rows) //lint:ignore hotpathalloc amortized: grows once per tile-height high-water mark
	}
	out.RowNNZ = out.RowNNZ[:rows]
	if int64(cap(out.Cols)) < mask2Vol || int64(cap(out.Vals)) < mask2Vol {
		//lint:ignore hotpathalloc amortized: first run at this mask volume sizes the staging buffers
		out.Cols = make([]sparse.Index, 0, mask2Vol)
		out.Vals = make([]T, 0, mask2Vol) //lint:ignore hotpathalloc amortized: sized with Cols above
	} else {
		out.Cols = out.Cols[:0]
		out.Vals = out.Vals[:0]
	}

	staged := mask1Vol*entrySize <= budget
	inj := cfg.chaosInjector()
	var midEntries int64
	if staged {
		// Stage 1, whole tile: the intermediate rows land back-to-back in
		// mid, offsets recovered from mid.RowNNZ.
		if cap(mid.RowNNZ) < rows {
			mid.RowNNZ = make([]int32, rows) //lint:ignore hotpathalloc amortized: grows once per tile-height high-water mark
		}
		mid.RowNNZ = mid.RowNNZ[:rows]
		if int64(cap(mid.Cols)) < mask1Vol || int64(cap(mid.Vals)) < mask1Vol {
			//lint:ignore hotpathalloc amortized: first run at this mask volume sizes the intermediate staging
			mid.Cols = make([]sparse.Index, 0, mask1Vol)
			mid.Vals = make([]T, 0, mask1Vol) //lint:ignore hotpathalloc amortized: sized with Cols above
		} else {
			mid.Cols = mid.Cols[:0]
			mid.Vals = mid.Vals[:0]
		}
		for i := tile.Lo; i < tile.Hi; i++ {
			if inj != nil {
				// RowKernel seam, fused formulation: panics here unwind with
				// both accumulators mid-flight.
				//lint:ignore hotpathalloc allocates only when a fault fires, and the run dies with it
				chaos.StepHard(inj, chaos.RowKernel)
			}
			before := len(mid.Cols)
			if m2.RowNNZ(i) > 0 {
				fusedRowStage1(sr, acc1, m1, a, b, cfg, i, mid, wc)
			}
			mid.RowNNZ[i-tile.Lo] = int32(len(mid.Cols) - before)
		}
		midEntries = int64(len(mid.Cols))
		// Stage 2, consuming the still-hot staged rows.
		off := 0
		for i := tile.Lo; i < tile.Hi; i++ {
			n := int(mid.RowNNZ[i-tile.Lo])
			fusedRowStage2(sr, acc2, mid.Cols[off:off+n], mid.Vals[off:off+n],
				c, m2.RowCols(i), cfg, out, i-tile.Lo, wc)
			off += n
		}
	} else {
		// Streamed: one intermediate row live at a time.
		mid.RowNNZ = mid.RowNNZ[:0]
		for i := tile.Lo; i < tile.Hi; i++ {
			if inj != nil {
				//lint:ignore hotpathalloc allocates only when a fault fires, and the run dies with it
				chaos.StepHard(inj, chaos.RowKernel)
			}
			mid.Cols = mid.Cols[:0]
			mid.Vals = mid.Vals[:0]
			if m2.RowNNZ(i) > 0 {
				fusedRowStage1(sr, acc1, m1, a, b, cfg, i, mid, wc)
			}
			midEntries += int64(len(mid.Cols))
			fusedRowStage2(sr, acc2, mid.Cols, mid.Vals,
				c, m2.RowCols(i), cfg, out, i-tile.Lo, wc)
		}
	}
	if wc != nil {
		wc.Rows.Add(int64(rows))
		wc.Gathered.Add(int64(len(out.Cols)))
	}
	if fc != nil {
		if staged {
			fc.StagedTiles++
		} else {
			fc.StreamedTiles++
		}
		fc.MidEntries += midEntries
		fc.MidBytes += midEntries * entrySize
	}
}

// fusedRowStage1 computes intermediate row i = M1[i,:] ⊙ (A[i,:] × B)
// and appends it to mid.
//
//spgemm:hotpath
func fusedRowStage1[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], m1, a, b *sparse.CSR[T], cfg Config, i int,
	mid *exec.TileBuf[T], wc *obs.WorkerCounters,
) {
	maskCols := m1.RowCols(i)
	if len(maskCols) == 0 && cfg.Iteration != Vanilla {
		return
	}
	switch cfg.Iteration {
	case Vanilla:
		rowVanilla(sr, acc, a, b, i, wc)
	case MaskLoad:
		rowMaskLoad(sr, acc, a, b, i, maskCols, wc)
	case CoIter:
		rowCoIter(sr, acc, a, b, i, maskCols, wc)
	case Hybrid:
		rowHybrid(sr, acc, a, b, i, maskCols, cfg.Kappa, wc)
	}
	mid.Cols, mid.Vals = acc.Gather(maskCols, mid.Cols, mid.Vals)
}

// fusedRowStage2 multiplies one intermediate row (as slices — it never
// became a CSR) against C under mask row maskCols, gathering into out
// at row index idx.
//
//spgemm:hotpath
func fusedRowStage2[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], iCols []sparse.Index, iVals []T,
	c *sparse.CSR[T], maskCols []sparse.Index, cfg Config,
	out *exec.TileBuf[T], idx int, wc *obs.WorkerCounters,
) {
	before := len(out.Cols)
	if len(iCols) > 0 && (len(maskCols) > 0 || cfg.Iteration == Vanilla) {
		switch cfg.Iteration {
		case Vanilla:
			rowVanillaSlices(sr, acc, iCols, iVals, c, wc)
		case MaskLoad:
			rowMaskLoadSlices(sr, acc, iCols, iVals, c, maskCols, wc)
		case CoIter:
			rowCoIterSlices(sr, acc, iCols, iVals, c, maskCols, wc)
		case Hybrid:
			rowHybridSlices(sr, acc, iCols, iVals, c, maskCols, cfg.Kappa, wc)
		}
		out.Cols, out.Vals = acc.Gather(maskCols, out.Cols, out.Vals)
	}
	out.RowNNZ[idx] = int32(len(out.Cols) - before)
}

// MaskedSpGEMMSelect computes C = select(M ⊙ (A × B)): the masked
// product with a per-entry keep/rewrite decision fused into the tile
// gather, so entries the selector drops are never assembled. sel maps a
// computed value to its stored replacement and whether to keep the
// entry; it must be pure (it may run concurrently from worker
// goroutines and its call order is unspecified).
//
// This is the k-truss round A ⊙ (A×A) → threshold in one pass: the
// support matrix never exists, only the surviving (rewritten) entries
// reach the output CSR.
func MaskedSpGEMMSelect[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config, sel func(T) (T, bool),
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sel == nil {
		return nil, errConfig("select fusion needs a non-nil selector")
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := planFor(ctx, cfg, pw, m, a, b, scope)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	ws := exec.Masked[T, S](cfg.Engine, sr, cfg.Accumulator, cfg.MarkerBits,
		b.Cols, plan.RowCap, workers, len(tiles))
	// Poison-on-error: quarantine the workspace unless the run reaches
	// its fully-successful exit (see maskedRun).
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	accs := ws.Accs[:workers]
	if cfg.Resilience != nil {
		defer armAccumChaos(cfg, accs)()
	}
	outs := ws.Outs[:len(tiles)]
	prior := snapshotAccumStats(accs, scope)
	fcs := fusedSlots(scope, workers)

	if err := runKernelSpanned(ctx, cfg, scope, workers, len(tiles), func(worker, t int, wc *obs.WorkerCounters) {
		runTileSelect(sr, accs[worker], m, a, b, cfg, tiles[t], &outs[t], sel, fcSlot(fcs, worker), wc)
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleSpanned(ctx, cfg, scope, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordAccumDeltas(accs, prior, scope)
	recordPoolDelta(cfg, poolPrior, scope)
	foldFused(scope, fcs, obs.FusedCounters{SelectRuns: 1})
	clean = true
	return c, nil
}

// runTileSelect is runTile with the selector applied to each freshly
// gathered row in place, before the entries ever leave the staging
// buffer.
//
//spgemm:hotpath
func runTileSelect[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T],
	m, a, b *sparse.CSR[T], cfg Config, tile tiling.Tile, out *exec.TileBuf[T],
	sel func(T) (T, bool), fc *obs.FusedCounters, wc *obs.WorkerCounters,
) {
	maskVol := m.RowPtr[tile.Hi] - m.RowPtr[tile.Lo]
	if cap(out.RowNNZ) < tile.Rows() {
		out.RowNNZ = make([]int32, tile.Rows()) //lint:ignore hotpathalloc amortized: grows once per tile-height high-water mark
	}
	out.RowNNZ = out.RowNNZ[:tile.Rows()]
	if int64(cap(out.Cols)) < maskVol || int64(cap(out.Vals)) < maskVol {
		//lint:ignore hotpathalloc amortized: first run at this mask volume sizes the staging buffers
		out.Cols = make([]sparse.Index, 0, maskVol)
		out.Vals = make([]T, 0, maskVol) //lint:ignore hotpathalloc amortized: sized with Cols above
	} else {
		out.Cols = out.Cols[:0]
		out.Vals = out.Vals[:0]
	}
	var kept, dropped int64
	for i := tile.Lo; i < tile.Hi; i++ {
		maskCols := m.RowCols(i)
		before := len(out.Cols)
		if len(maskCols) > 0 || cfg.Iteration == Vanilla {
			switch cfg.Iteration {
			case Vanilla:
				rowVanilla(sr, acc, a, b, i, wc)
			case MaskLoad:
				rowMaskLoad(sr, acc, a, b, i, maskCols, wc)
			case CoIter:
				rowCoIter(sr, acc, a, b, i, maskCols, wc)
			case Hybrid:
				rowHybrid(sr, acc, a, b, i, maskCols, cfg.Kappa, wc)
			}
			out.Cols, out.Vals = acc.Gather(maskCols, out.Cols, out.Vals)
		}
		// Compact the row in place through the selector.
		w := before
		for p := before; p < len(out.Cols); p++ {
			if v, ok := sel(out.Vals[p]); ok {
				out.Cols[w] = out.Cols[p]
				out.Vals[w] = v
				w++
			}
		}
		kept += int64(w - before)
		dropped += int64(len(out.Cols) - w)
		out.Cols = out.Cols[:w]
		out.Vals = out.Vals[:w]
		out.RowNNZ[i-tile.Lo] = int32(w - before)
	}
	if wc != nil {
		wc.Rows.Add(int64(tile.Rows()))
		wc.Gathered.Add(int64(len(out.Cols)))
	}
	if fc != nil {
		fc.SelectKept += kept
		fc.SelectDropped += dropped
	}
}

// MaskedSpGEMMStream computes M ⊙ (A × B) row by row and hands each
// nonempty row to sink instead of assembling a CSR — the terminal
// multiply of a chain whose consumer wants rows, not a matrix (the BC
// backward sweep folds each row straight into its dependency vector).
//
// sink is called once per output row that holds at least one entry,
// with the row index and the row's sorted column/value slices. The
// slices are workspace-owned and valid only for the duration of the
// call. Calls come from worker goroutines concurrently, but rows are
// disjoint: no row index is delivered twice, so a sink that writes only
// row-i-owned state needs no locking.
func MaskedSpGEMMStream[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
	sink func(i int, cols []sparse.Index, vals []T),
) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if sink == nil {
		return errConfig("stream fusion needs a non-nil sink")
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := planFor(ctx, cfg, pw, m, a, b, scope)
	if err != nil {
		return wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	// Per-worker row buffers only: nothing is assembled, so no per-tile
	// staging is needed.
	ws := exec.Masked[T, S](cfg.Engine, sr, cfg.Accumulator, cfg.MarkerBits,
		b.Cols, plan.RowCap, workers, workers)
	// Poison-on-error: quarantine the workspace unless the run reaches
	// its fully-successful exit (see maskedRun).
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	accs := ws.Accs[:workers]
	if cfg.Resilience != nil {
		defer armAccumChaos(cfg, accs)()
	}
	bufs := ws.Outs[:workers]
	prior := snapshotAccumStats(accs, scope)
	fcs := fusedSlots(scope, workers)
	entrySize := fusedEntrySize[T]()

	if err := runKernelSpanned(ctx, cfg, scope, workers, len(tiles), func(worker, t int, wc *obs.WorkerCounters) {
		runTileStream(sr, accs[worker], m, a, b, cfg, tiles[t], &bufs[worker],
			sink, entrySize, fcSlot(fcs, worker), wc)
	}); err != nil {
		return wrapRunErr(err)
	}

	recordAccumDeltas(accs, prior, scope)
	recordPoolDelta(cfg, poolPrior, scope)
	foldFused(scope, fcs, obs.FusedCounters{StreamRuns: 1})
	clean = true
	return nil
}

// runTileStream computes one tile's rows into the worker's row buffer,
// delivering each nonempty row to sink as soon as it is gathered.
//
//spgemm:hotpath
func runTileStream[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T],
	m, a, b *sparse.CSR[T], cfg Config, tile tiling.Tile, buf *exec.TileBuf[T],
	sink func(i int, cols []sparse.Index, vals []T),
	entrySize int64, fc *obs.FusedCounters, wc *obs.WorkerCounters,
) {
	var emitted int64
	for i := tile.Lo; i < tile.Hi; i++ {
		maskCols := m.RowCols(i)
		buf.Cols = buf.Cols[:0]
		buf.Vals = buf.Vals[:0]
		if len(maskCols) > 0 || cfg.Iteration == Vanilla {
			switch cfg.Iteration {
			case Vanilla:
				rowVanilla(sr, acc, a, b, i, wc)
			case MaskLoad:
				rowMaskLoad(sr, acc, a, b, i, maskCols, wc)
			case CoIter:
				rowCoIter(sr, acc, a, b, i, maskCols, wc)
			case Hybrid:
				rowHybrid(sr, acc, a, b, i, maskCols, cfg.Kappa, wc)
			}
			buf.Cols, buf.Vals = acc.Gather(maskCols, buf.Cols, buf.Vals)
		}
		if len(buf.Cols) > 0 {
			sink(i, buf.Cols, buf.Vals)
			emitted += int64(len(buf.Cols))
		}
	}
	if wc != nil {
		wc.Rows.Add(int64(tile.Rows()))
		wc.Gathered.Add(emitted)
	}
	if fc != nil {
		fc.MidEntries += emitted
		fc.MidBytes += emitted * entrySize
	}
}
