package core

import (
	"fmt"

	"maskedspgemm/internal/sparse"
)

// Profile is a symbolic execution of the masked SpGEMM: it traverses the
// operand structure without doing arithmetic and reports the quantities
// the paper's cost models are built from. It validates Eq. 2 (the
// FLOP-balanced tiling estimator) and Eq. 3 (the co-iteration switch)
// against the actual traversal, and it feeds the model-based tuner.
type Profile struct {
	// Rows is the number of output rows.
	Rows int
	// MaskNNZ is nnz(M); output nonzeros are bounded by it.
	MaskNNZ int64
	// MaxMaskRow is max_i nnz(M[i,:]) — the accumulator sizing bound.
	MaxMaskRow int64
	// Flops is Σ_{A[i,k]≠0} nnz(B[k,:]) — the updates the vanilla and
	// mask-load spaces perform.
	Flops int64
	// MaxRowFlops is the largest per-row flop count — the vanilla
	// accumulator sizing bound.
	MaxRowFlops int64
	// Eq2Work is Σ_i W[i] with W per Eq. 2 (MaskNNZ + Flops).
	Eq2Work int64
	// CoIterPairs and LinearPairs count the hybrid kernel's per-(i,k)
	// decisions at the profile's κ.
	CoIterPairs, LinearPairs int64
	// CoIterProbeCost is the modeled cost of the chosen co-iterations:
	// Σ nnz(M[i,:])·⌈log2 nnz(B[k,:])⌉ over co-iterated pairs.
	CoIterProbeCost int64
	// LinearScanCost is Σ nnz(B[k,:]) over linearly scanned pairs.
	LinearScanCost int64
	// HybridCost is CoIterProbeCost + LinearScanCost: the modeled cost
	// of the hybrid traversal. Flops is the corresponding cost without
	// co-iteration; their ratio predicts Fig. 14's speedup.
	HybridCost int64
	// Kappa is the co-iteration factor the decisions were taken at.
	Kappa float64
}

// ProfileMasked symbolically executes C = M ⊙ (A × B) and returns the
// cost-model quantities at co-iteration factor kappa.
func ProfileMasked[T sparse.Number](m, a, b *sparse.CSR[T], kappa float64) (Profile, error) {
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return Profile{}, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	p := Profile{Rows: a.Rows, MaskNNZ: m.NNZ(), Kappa: kappa}
	for i := 0; i < a.Rows; i++ {
		nnzM := int(m.RowNNZ(i))
		if int64(nnzM) > p.MaxMaskRow {
			p.MaxMaskRow = int64(nnzM)
		}
		var rowFlops int64
		for _, k := range a.RowCols(i) {
			nnzB := int(b.RowNNZ(int(k)))
			rowFlops += int64(nnzB)
			if nnzM > 0 && coIterCheaper(nnzM, nnzB, kappa) {
				p.CoIterPairs++
				p.CoIterProbeCost += int64(nnzM * log2ceil(nnzB))
			} else {
				p.LinearPairs++
				p.LinearScanCost += int64(nnzB)
			}
		}
		p.Flops += rowFlops
		if rowFlops > p.MaxRowFlops {
			p.MaxRowFlops = rowFlops
		}
	}
	p.Eq2Work = p.MaskNNZ + p.Flops
	p.HybridCost = p.CoIterProbeCost + p.LinearScanCost
	return p, nil
}

// PredictedCoIterSpeedup is the cost model's prediction of how much the
// hybrid traversal saves over pure linear scanning (>1 = co-iteration
// should win). Fig. 14's measured curves should follow this ratio's
// trend across graphs.
func (p Profile) PredictedCoIterSpeedup() float64 {
	if p.HybridCost == 0 {
		return 1
	}
	return float64(p.Flops) / float64(p.HybridCost)
}

// CoIterFraction is the share of (i,k) pairs the hybrid kernel
// co-iterates at the profile's κ.
func (p Profile) CoIterFraction() float64 {
	total := p.CoIterPairs + p.LinearPairs
	if total == 0 {
		return 0
	}
	return float64(p.CoIterPairs) / float64(total)
}

// String renders the profile on one line for experiment logs.
func (p Profile) String() string {
	return fmt.Sprintf(
		"rows=%d masknnz=%d flops=%d eq2=%d coiter=%.1f%% predicted-speedup=%.2fx",
		p.Rows, p.MaskNNZ, p.Flops, p.Eq2Work, 100*p.CoIterFraction(), p.PredictedCoIterSpeedup())
}
