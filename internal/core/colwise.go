package core

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// MaskedSpGEMMCSC computes C = M ⊙ (A × B) over CSC operands with the
// column-wise saxpy algorithm: each column C[:,j] is formed by scaling
// the columns of A selected by the nonzeros of B[:,j] and masking with
// M[:,j] — the exact mirror of the row-wise algorithm, per the paper's
// §II-A symmetry remark. All of Config's knobs apply, with tiles cut
// along the column dimension.
//
// The identity used: column-wise saxpy on (M, A, B) equals row-wise
// saxpy on the transposed problem Cᵀ = Mᵀ ⊙ (Bᵀ × Aᵀ), and a CSC matrix
// is exactly the CSR storage of its transpose. No data movement is
// needed beyond relabeling. The delegation carries cfg.Engine with it,
// so CSC multiplies draw workspaces and cached plans (keyed by the
// relabeled operands) from the same pool as the row-wise entry points.
func MaskedSpGEMMCSC[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSC[T], cfg Config,
) (*sparse.CSC[T], error) {
	mT := cscAsCSR(m)
	aT := cscAsCSR(a)
	bT := cscAsCSR(b)
	// Cᵀ = Mᵀ ⊙ (Bᵀ × Aᵀ): note the operand swap.
	cT, err := MaskedSpGEMM(sr, mT, bT, aT, cfg)
	if err != nil {
		return nil, err
	}
	return csrAsCSC(cT), nil
}

// cscAsCSR reinterprets CSC storage as the CSR storage of the
// transpose — a relabeling, not a copy.
func cscAsCSR[T sparse.Number](m *sparse.CSC[T]) *sparse.CSR[T] {
	return &sparse.CSR[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: m.ColPtr,
		ColIdx: m.RowIdx,
		Val:    m.Val,
	}
}

// csrAsCSC is the inverse relabeling.
func csrAsCSC[T sparse.Number](m *sparse.CSR[T]) *sparse.CSC[T] {
	return &sparse.CSC[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		ColPtr: m.RowPtr,
		RowIdx: m.ColIdx,
		Val:    m.Val,
	}
}
