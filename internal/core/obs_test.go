package core

import (
	"math/rand"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// expectedFlops independently computes the Eq. 2 flop volume the
// recorder should report: Σ nnz(B[k,:]) over the A entries of every row
// the kernel actually visits (all rows for Vanilla, mask-nonempty rows
// for the masked spaces).
func expectedFlops(m, a, b *sparse.CSR[float64], it IterationSpace) int64 {
	var total int64
	for i := 0; i < a.Rows; i++ {
		if it != Vanilla && m.RowNNZ(i) == 0 {
			continue
		}
		for _, k := range a.RowCols(i) {
			total += b.RowNNZ(int(k))
		}
	}
	return total
}

// expectedHybridPicks counts the (i,k) decisions Hybrid must make: one
// per A entry in every mask-nonempty row.
func expectedHybridPicks(m, a *sparse.CSR[float64]) int64 {
	var total int64
	for i := 0; i < a.Rows; i++ {
		if m.RowNNZ(i) > 0 {
			total += a.RowNNZ(i)
		}
	}
	return total
}

// checkParity asserts the recorder totals against independently
// computed ground truth — the counters are exact, not sampled.
func checkParity(
	t *testing.T, st obs.Stats, c *sparse.CSR[float64],
	m, a, b *sparse.CSR[float64], cfg Config, tiles, runs int64,
) {
	t.Helper()
	tot := st.Totals
	if st.Runs != runs {
		t.Errorf("%v: runs = %d, want %d", cfg, st.Runs, runs)
	}
	if tot.Rows != runs*int64(m.Rows) {
		t.Errorf("%v: rows = %d, want %d", cfg, tot.Rows, runs*int64(m.Rows))
	}
	if want := runs * expectedFlops(m, a, b, cfg.Iteration); tot.Flops != want {
		t.Errorf("%v: flops = %d, want %d", cfg, tot.Flops, want)
	}
	if want := runs * c.NNZ(); tot.Gathered != want {
		t.Errorf("%v: gathered = %d, want %d (C nnz %d)", cfg, tot.Gathered, want, c.NNZ())
	}
	if tot.Tiles != runs*tiles {
		t.Errorf("%v: tiles = %d, want %d", cfg, tot.Tiles, runs*tiles)
	}
	if cfg.Iteration == Hybrid {
		if want := runs * expectedHybridPicks(m, a); tot.CoIterPicks+tot.LinearPicks != want {
			t.Errorf("%v: picks = %d+%d, want %d",
				cfg, tot.CoIterPicks, tot.LinearPicks, want)
		}
	} else if tot.CoIterPicks != 0 || tot.LinearPicks != 0 {
		t.Errorf("%v: non-hybrid recorded picks %d/%d",
			cfg, tot.CoIterPicks, tot.LinearPicks)
	}
}

// TestRecorderCounterParity checks that the per-worker counters sum to
// independently computed exact values for every iteration space, all
// three schedule policies, and serial plus parallel worker pools.
func TestRecorderCounterParity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(60, 50, 0.15, r)
	b := randMatrix(50, 40, 0.15, r)
	m := randMatrix(60, 40, 0.2, r)
	sr := semiring.PlusTimes[float64]{}

	for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
		for _, pol := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
			for _, workers := range []int{1, 3} {
				cfg := Config{
					Iteration: it, Kappa: 1,
					Accumulator: accum.HashKind, MarkerBits: 32,
					Tiles: 6, Tiling: tiling.FlopBalanced,
					Schedule: pol, Workers: workers,
					Recorder: obs.NewRecorder(),
				}
				c, err := MaskedSpGEMM(sr, m, a, b, cfg)
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				nTiles := int64(len(tiling.Make(cfg.Tiling, cfg.Tiles, a, b, m)))
				checkParity(t, cfg.Recorder.Stats(), c, m, a, b, cfg, nTiles, 1)
			}
		}
	}
}

// TestRecorderParityUniformTiling covers the Uniform plan path of
// makeTiles, which spans only the tile-build phase.
func TestRecorderParityUniformTiling(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randMatrix(40, 30, 0.2, r)
	b := randMatrix(30, 35, 0.2, r)
	m := randMatrix(40, 35, 0.25, r)
	cfg := Config{
		Iteration: Hybrid, Kappa: 1,
		Accumulator: accum.DenseKind, MarkerBits: 16,
		Tiles: 5, Tiling: tiling.Uniform,
		Schedule: sched.Dynamic, Workers: 2,
		Recorder: obs.NewRecorder(),
	}
	c, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nTiles := int64(len(tiling.UniformTiles(a.Rows, cfg.Tiles)))
	checkParity(t, cfg.Recorder.Stats(), c, m, a, b, cfg, nTiles, 1)
}

// TestRecorderMultiplierAccumulation runs a Multiplier several times
// under one recorder and checks the counters scale exactly with the run
// count — the reused accumulators must not leak cross-run state.
func TestRecorderMultiplierAccumulation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := randMatrix(50, 45, 0.15, r)
	b := randMatrix(45, 40, 0.15, r)
	m := randMatrix(50, 40, 0.2, r)
	cfg := Config{
		Iteration: Hybrid, Kappa: 1,
		Accumulator: accum.HashKind, MarkerBits: 32,
		Tiles: 4, Tiling: tiling.FlopBalanced,
		Schedule: sched.Guided, Workers: 3,
		Recorder: obs.NewRecorder(),
	}
	mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	var c *sparse.CSR[float64]
	for i := 0; i < runs; i++ {
		if c, err = mu.Multiply(); err != nil {
			t.Fatal(err)
		}
	}
	st := cfg.Recorder.Stats()
	checkParity(t, st, c, m, a, b, cfg, int64(mu.Tiles()), runs)
	// The plan phases must have been spanned exactly once (construction),
	// the exec phases once per run.
	for _, ph := range st.Phases {
		switch ph.Phase {
		case "exec.kernel", "exec.assemble":
			if ph.Count != runs {
				t.Errorf("%s count = %d, want %d", ph.Phase, ph.Count, runs)
			}
		default:
			if ph.Count != 1 {
				t.Errorf("%s count = %d, want 1", ph.Phase, ph.Count)
			}
		}
	}
}

// TestRecorderAccumCounters drives a hash accumulator with a tiny table
// through the kernel and checks the probe/clear counters arrive in the
// recorder. Marker clears require marker wrap-around, which takes 2^bits
// rows; probes are the cheap observable here.
func TestRecorderAccumCounters(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	a := randMatrix(30, 30, 0.3, r)
	b := randMatrix(30, 30, 0.3, r)
	m := randMatrix(30, 30, 0.3, r)
	cfg := Config{
		Iteration: MaskLoad, Kappa: 1,
		Accumulator: accum.HashKind, MarkerBits: 8,
		Tiles: 3, Tiling: tiling.FlopBalanced,
		Schedule: sched.Static, Workers: 2,
		Recorder: obs.NewRecorder(),
	}
	if _, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg); err != nil {
		t.Fatal(err)
	}
	st := cfg.Recorder.Stats()
	if st.Accum.HashProbes == 0 {
		t.Fatal("hash kernel run recorded zero probes")
	}
	if st.Accum.HashCollisions > st.Accum.HashProbes {
		t.Fatalf("collisions %d exceed probes %d",
			st.Accum.HashCollisions, st.Accum.HashProbes)
	}
}

// TestRecorderInstrumentedComposes checks the recorder and the counting
// decorator (MaskedSpGEMMInstrumented) agree where their counters
// overlap: both must see the exact gathered-entry total.
func TestRecorderInstrumentedComposes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMatrix(40, 40, 0.2, r)
	b := randMatrix(40, 40, 0.2, r)
	m := randMatrix(40, 40, 0.2, r)
	cfg := Config{
		Iteration: Hybrid, Kappa: 1,
		Accumulator: accum.HashKind, MarkerBits: 32,
		Tiles: 4, Tiling: tiling.FlopBalanced,
		Schedule: sched.Dynamic, Workers: 2,
		Recorder: obs.NewRecorder(),
	}
	c, counters, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := cfg.Recorder.Stats()
	if st.Totals.Gathered != counters.Gathered || st.Totals.Gathered != c.NNZ() {
		t.Fatalf("gathered: recorder %d, decorator %d, C nnz %d",
			st.Totals.Gathered, counters.Gathered, c.NNZ())
	}
	// The decorator wraps the accumulator, so the recorder's accum stats
	// must still flow through it.
	if st.Accum.HashProbes == 0 {
		t.Fatal("instrumented run lost accumulator stats")
	}
}

// benchOperands builds a fixed benchmark problem once.
func benchOperands(b *testing.B) (m, a, bb *sparse.CSR[float64]) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	a = randMatrix(300, 300, 0.05, r)
	bb = randMatrix(300, 300, 0.05, r)
	m = randMatrix(300, 300, 0.05, r)
	return m, a, bb
}

// BenchmarkMaskedStatsOff measures the kernel with a nil recorder — the
// baseline the <1% enabled-overhead budget is judged against, and the
// guard that the disabled path allocates nothing beyond the kernel's
// own buffers.
func BenchmarkMaskedStatsOff(b *testing.B) {
	m, a, bb := benchOperands(b)
	cfg := DefaultConfig()
	cfg.Tiles = 64
	mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, m, a, bb, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mu.Multiply(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskedStatsOn is the identical problem with a live recorder.
func BenchmarkMaskedStatsOn(b *testing.B) {
	m, a, bb := benchOperands(b)
	cfg := DefaultConfig()
	cfg.Tiles = 64
	cfg.Recorder = obs.NewRecorder()
	mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, m, a, bb, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mu.Multiply(); err != nil {
			b.Fatal(err)
		}
	}
}
