// Package core implements the paper's primary contribution: a
// parameterized row-wise saxpy masked-SpGEMM kernel,
//
//	C = M ⊙ (A × B)
//
// exposing every design dimension of the study as an explicit knob:
//
//   - iteration space: Vanilla (Fig. 3), MaskLoad (Fig. 5, GrB's
//     algorithm), CoIter (Fig. 7), Hybrid (Fig. 9, push-pull with
//     co-iteration factor κ);
//   - tiling: uniform vs FLOP-balanced, any tile count;
//   - scheduling: static vs dynamic over a goroutine worker pool;
//   - accumulator: dense or hash, marker widths 8/16/32/64 bits, or
//     explicit-reset variants.
//
// The kernel is generic over the value type and semiring, so the same
// code serves arithmetic, Boolean, tropical and structural (pair)
// algebras.
package core

import (
	"context"
	"fmt"
	"math/bits"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/tiling"
)

// IterationSpace selects how the multiplication and the masking
// operation are traversed together (paper §III-B).
type IterationSpace int

const (
	// Vanilla accumulates the full unmasked product of each row and
	// intersects with the mask afterwards (Fig. 3). Large buffers, many
	// wasted operations — the baseline the better spaces are measured
	// against.
	Vanilla IterationSpace = iota
	// MaskLoad loads the mask row into the accumulator first and filters
	// every candidate update against it (Fig. 5). This is the GrB
	// algorithm, now also used by SuiteSparse:GraphBLAS.
	MaskLoad
	// CoIter iterates the mask row and binary-searches each B row for
	// the mask's columns (Fig. 7). Wins when nnz(M[i,:]) is small
	// relative to nnz(B[k,:]); loses badly otherwise.
	CoIter
	// Hybrid chooses per (i,k) between the MaskLoad linear scan and
	// CoIter using the Eq. 3 cost model with factor Kappa (Fig. 9) — the
	// paper's push-pull optimization.
	Hybrid
)

func (s IterationSpace) String() string {
	switch s {
	case Vanilla:
		return "Vanilla"
	case MaskLoad:
		return "MaskLoad"
	case CoIter:
		return "CoIter"
	case Hybrid:
		return "Hybrid"
	default:
		return "Unknown"
	}
}

// Config is the full tuning surface of the kernel. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// Iteration selects the iteration space (§III-B).
	Iteration IterationSpace
	// Kappa is the co-iteration factor κ of Fig. 9: co-iterate when
	// nnz(M[i,:])·log2(nnz(B[k,:])) < κ·nnz(B[k,:]). Only used by Hybrid.
	Kappa float64
	// Accumulator selects the accumulator family (§III-C).
	Accumulator accum.Kind
	// MarkerBits is the marker word width for marker-based accumulators:
	// 8, 16, 32 or 64 (Fig. 13).
	MarkerBits int
	// Tiles is the requested number of row tiles (Fig. 11 sweeps 64 to
	// 32768). Clamped to the number of rows.
	Tiles int
	// Tiling selects uniform vs FLOP-balanced tile boundaries (§III-A).
	Tiling tiling.Strategy
	// Schedule selects static, dynamic or guided tile-to-worker
	// assignment.
	Schedule sched.Policy
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// PlanWorkers is the worker count for plan construction and result
	// assembly — the O(nnz) passes around the numeric kernel (Eq. 2 work
	// estimation, prefix-sum tile balancing, CSR stitching). 0 means use
	// the kernel worker count.
	PlanWorkers int
	// GuidedMinChunk is the chunk floor for the Guided schedule: the
	// smallest number of tiles a worker claims per atomic operation.
	// 0 means 1. Ignored by Static and Dynamic.
	GuidedMinChunk int
	// FuseTileBudget is the fused-pipeline cache budget in bytes: a
	// chained multiply stages a tile's intermediate product whole when
	// its Eq. 2-estimated footprint (first-stage mask volume × entry
	// size) fits the budget, and degrades to row-at-a-time streaming —
	// one intermediate row live at a time — when it does not. 0 selects
	// DefaultFuseTileBudget; negative is invalid. Only the fused entry
	// points (FusedMaskedSpGEMM and friends) consult it.
	FuseTileBudget int64
	// Context, when non-nil, cancels or deadline-bounds the
	// multiplication: the scheduler observes it between tile claims and
	// between plan blocks, and a cancelled run returns ErrCanceled
	// (wrapping the context's error) instead of completing. A nil
	// Context runs to completion with no cancellation machinery.
	Context context.Context
	// Engine, when non-nil, supplies pooled execution workspaces
	// (accumulators, tile output buffers, dense scratch) and a
	// fingerprint-keyed plan cache shared across runs and callers. With
	// an Engine, repeated products over unchanged operand structure skip
	// planning, warm runs allocate no workspace state, and independent
	// concurrent multiplications through the shared Engine are safe. A
	// nil Engine reproduces the one-shot behavior: every run constructs
	// (and discards) its own workspace.
	Engine *exec.Engine
	// Resilience, when non-nil, arms the failure-hardening extras: the
	// fault-injection seams and the scheduler's stall watchdog. It is a
	// pointer deliberately — the production configuration carries (and
	// every per-run Config copy and closure capture pays for) only a
	// nil word. See Resilience.
	Resilience *Resilience
	// Recorder, when non-nil, collects observability data for every run
	// under this configuration: phase spans (plan row-work/prefix-sum/
	// tile-build/row-cap, exec kernel/assembly), exact per-worker
	// counters (tiles, rows, Eq. 2 FLOPs, hybrid co-iterate vs linear
	// picks, gathered entries), accumulator statistics (marker
	// overflows, hash probe traffic), plus pprof phase labels and
	// runtime/trace tile regions. A nil Recorder disables all of it; the
	// disabled path is a nil-check and allocates nothing.
	Recorder *obs.Recorder
}

// DefaultConfig is the paper's recommended configuration (§V): 2048
// FLOP-balanced tiles, dynamic scheduling, hybrid iteration with κ = 1,
// hash accumulator with a 32-bit marker.
func DefaultConfig() Config {
	return Config{
		Iteration:   Hybrid,
		Kappa:       1,
		Accumulator: accum.HashKind,
		MarkerBits:  32,
		Tiles:       2048,
		Tiling:      tiling.FlopBalanced,
		Schedule:    sched.Dynamic,
		Workers:     0,
	}
}

// Validate reports whether the configuration is runnable. Every
// rejection wraps ErrConfig. Validate covers the full enum surface —
// iteration space, accumulator kind, marker width, schedule policy and
// tiling strategy — so the panic sites those enums would otherwise
// reach deeper in the stack (sched, tiling, accum dispatch) are
// unreachable for any Config that passed this check.
func (c Config) Validate() error {
	switch c.Iteration {
	case Vanilla, MaskLoad, CoIter, Hybrid:
	default:
		return errConfig("unknown iteration space %d", c.Iteration)
	}
	switch c.Accumulator {
	case accum.DenseKind, accum.HashKind:
		switch c.MarkerBits {
		case 8, 16, 32, 64:
		default:
			return errConfig("marker bits must be 8/16/32/64, got %d", c.MarkerBits)
		}
	case accum.DenseExplicitKind, accum.HashExplicitKind, accum.SortListKind:
	default:
		return errConfig("unknown accumulator kind %d", c.Accumulator)
	}
	switch c.Schedule {
	case sched.Static, sched.Dynamic, sched.Guided:
	default:
		return errConfig("unknown schedule policy %d", c.Schedule)
	}
	switch c.Tiling {
	case tiling.Uniform, tiling.FlopBalanced:
	default:
		return errConfig("unknown tiling strategy %d", c.Tiling)
	}
	if c.Tiles < 1 {
		return errConfig("tiles must be >= 1, got %d", c.Tiles)
	}
	if c.Iteration == Hybrid && !(c.Kappa > 0) {
		return errConfig("hybrid iteration needs kappa > 0, got %v", c.Kappa)
	}
	if c.Workers < 0 {
		return errConfig("workers must be >= 0, got %d", c.Workers)
	}
	if c.PlanWorkers < 0 {
		return errConfig("plan workers must be >= 0, got %d", c.PlanWorkers)
	}
	if c.GuidedMinChunk < 0 {
		return errConfig("guided chunk floor must be >= 0, got %d", c.GuidedMinChunk)
	}
	if c.FuseTileBudget < 0 {
		return errConfig("fuse tile budget must be >= 0, got %d", c.FuseTileBudget)
	}
	if c.Resilience != nil && c.Resilience.StallTimeout < 0 {
		return errConfig("stall timeout must be >= 0, got %v", c.Resilience.StallTimeout)
	}
	return nil
}

// DefaultFuseTileBudget is the fused-pipeline staging budget used when
// Config.FuseTileBudget is 0: 1 MiB, sized to keep a staged
// intermediate tile inside a typical per-core L2.
const DefaultFuseTileBudget = 1 << 20

// fuseTileBudget resolves the effective staging budget.
func (c Config) fuseTileBudget() int64 {
	if c.FuseTileBudget > 0 {
		return c.FuseTileBudget
	}
	return DefaultFuseTileBudget
}

// planWorkers resolves the worker count for the plan-construction and
// assembly phases: PlanWorkers when set, else the kernel worker count.
func (c Config) planWorkers() int {
	if c.PlanWorkers > 0 {
		return c.PlanWorkers
	}
	return sched.Workers(c.Workers)
}

// String renders the configuration compactly for experiment logs.
func (c Config) String() string {
	s := fmt.Sprintf("%v/%v mb=%d tiles=%d %v %v w=%d",
		c.Iteration, c.Accumulator, c.MarkerBits, c.Tiles, c.Tiling, c.Schedule, c.Workers)
	if c.Iteration == Hybrid {
		s += fmt.Sprintf(" κ=%g", c.Kappa)
	}
	if c.PlanWorkers > 0 {
		s += fmt.Sprintf(" pw=%d", c.PlanWorkers)
	}
	if c.Schedule == sched.Guided && c.GuidedMinChunk > 0 {
		s += fmt.Sprintf(" chunk=%d", c.GuidedMinChunk)
	}
	return s
}

// log2ceil returns ⌈log2(n)⌉ for n ≥ 1 (0 for n ≤ 1); the cost model of
// Eq. 3 uses it as the binary-search cost.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// coIterCheaper evaluates Eq. 3 against the linear-scan cost: true when
// nnzM·log2(nnzB) < κ·nnzB.
//
//spgemm:hotpath
func coIterCheaper(nnzM, nnzB int, kappa float64) bool {
	return float64(nnzM*log2ceil(nnzB)) < kappa*float64(nnzB)
}
