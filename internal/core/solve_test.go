package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

type plusTimes = semiring.PlusTimes[float64]

// randTriangular generates an n×n triangular matrix with a full
// nonzero diagonal. skew > 0 concentrates off-diagonal entries near
// the diagonal band, producing deep level sets with narrow levels —
// the structure that exercises the coarsener's merge path.
func randTriangular(n int, lower bool, density, skew float64, r *rand.Rand) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](n, n, 0)
	for i := 0; i < n; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i), float64(r.Intn(7)+2))
		for j := 0; j < i; j++ {
			p := density
			if skew > 0 {
				p = density * skew / (skew + float64(i-j))
			}
			if r.Float64() < p {
				if lower {
					coo.Add(sparse.Index(i), sparse.Index(j), float64(r.Intn(9)+1))
				} else {
					coo.Add(sparse.Index(j), sparse.Index(i), float64(r.Intn(9)+1))
				}
			}
		}
	}
	return coo.ToCSR()
}

// randMask picks a sorted subset of [0, n) with the given keep rate.
func randMask(n int, keep float64, r *rand.Rand) []sparse.Index {
	var mask []sparse.Index
	for i := 0; i < n; i++ {
		if r.Float64() < keep {
			mask = append(mask, sparse.Index(i))
		}
	}
	if len(mask) == 0 {
		mask = append(mask, sparse.Index(r.Intn(n)))
	}
	return mask
}

func randVec(n int, r *rand.Rand) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64() * 10
	}
	return b
}

func solveCfg(policy sched.Policy, workers int) Config {
	cfg := DefaultConfig()
	cfg.Schedule = policy
	cfg.Workers = workers
	return cfg
}

// TestSolveTriMatchesSerialBitIdentical verifies the wave-scheduled
// solve is bit-identical to the independent serial reference across
// both triangles, plain and transposed, masked and unmasked, and all
// three claim policies — the paper's determinism contract: each row is
// summed in CSR order by exactly one worker, so the schedule cannot
// perturb the floating-point result.
func TestSolveTriMatchesSerialBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	eng := exec.New(exec.Config{})
	for _, tri := range []Tri{Lower, Upper} {
		for _, transpose := range []bool{false, true} {
			for _, masked := range []bool{false, true} {
				for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
					name := fmt.Sprintf("%v/transpose=%v/masked=%v/policy=%d", tri, transpose, masked, policy)
					t.Run(name, func(t *testing.T) {
						n := 300
						l := randTriangular(n, tri == Lower, 0.25, 4, r)
						b := randVec(n, r)
						so := SolveOpts{
							Tri: tri, Transpose: transpose,
							Mode: SolveWaves, // force the wave path regardless of work
							// Tiny grain and merge floor so even this small
							// system produces multi-tile waves and merged
							// serial waves.
							WaveGrain: 16, MergeBelow: 3,
						}
						if masked {
							so.Mask = randMask(n, 0.6, r)
						}
						want := make([]float64, n)
						if err := SolveTriSerial(want, l, b, so); err != nil {
							t.Fatalf("serial reference: %v", err)
						}
						cfg := solveCfg(policy, 4)
						cfg.Engine = eng
						got := make([]float64, n)
						if err := SolveTriInto[float64, plusTimes](plusTimes{}, got, l, b, cfg, so); err != nil {
							t.Fatalf("wave solve: %v", err)
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("row %d: wave %v != serial %v (bit-identity violated)", i, got[i], want[i])
							}
						}
						// Second run hits the plan cache; must stay identical.
						again := make([]float64, n)
						if err := SolveTriInto[float64, plusTimes](plusTimes{}, again, l, b, cfg, so); err != nil {
							t.Fatalf("cached wave solve: %v", err)
						}
						for i := range want {
							if again[i] != want[i] {
								t.Fatalf("row %d: cached run diverged", i)
							}
						}
					})
				}
			}
		}
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("engine self-check after solves: %v", err)
	}
}

// TestSolveTriAutoAndSerialModes checks the crossover paths produce the
// same bits as the forced wave path.
func TestSolveTriAutoAndSerialModes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 256
	l := randTriangular(n, true, 0.2, 3, r)
	b := randVec(n, r)
	want := make([]float64, n)
	if err := SolveTriSerial(want, l, b, SolveOpts{}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []SolveMode{SolveAuto, SolveWaves, SolveSerial} {
		got := make([]float64, n)
		cfg := solveCfg(sched.Dynamic, 4)
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, got, l, b, cfg, SolveOpts{Mode: mode}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mode %d row %d: %v != %v", mode, i, got[i], want[i])
			}
		}
	}
}

// TestSolveTriInPlace verifies dst may alias b.
func TestSolveTriInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 128
	l := randTriangular(n, true, 0.3, 0, r)
	b := randVec(n, r)
	want := make([]float64, n)
	if err := SolveTriSerial(want, l, b, SolveOpts{}); err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), b...)
	if err := SolveTriInto[float64, plusTimes](plusTimes{}, x, l, x, solveCfg(sched.Guided, 3), SolveOpts{Mode: SolveWaves}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("row %d: in-place %v != %v", i, x[i], want[i])
		}
	}
}

// TestSolveTriMaskPassthrough verifies rows outside the mask receive b
// unchanged and solved rows see only in-mask dependencies.
func TestSolveTriMaskPassthrough(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	n := 120
	l := randTriangular(n, true, 0.3, 0, r)
	b := randVec(n, r)
	mask := randMask(n, 0.4, r)
	inMask := make(map[sparse.Index]bool, len(mask))
	for _, m := range mask {
		inMask[m] = true
	}
	got := make([]float64, n)
	so := SolveOpts{Mask: mask, Mode: SolveWaves, WaveGrain: 8, MergeBelow: 2}
	if err := SolveTriInto[float64, plusTimes](plusTimes{}, got, l, b, solveCfg(sched.Dynamic, 4), so); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !inMask[sparse.Index(i)] && got[i] != b[i] {
			t.Fatalf("out-of-mask row %d: got %v, want b=%v", i, got[i], b[i])
		}
	}
	// The masked solve equals the unmasked solve of the principal
	// submatrix: check a dense reconstruction row by row.
	for _, mi := range mask {
		i := int(mi)
		cols, vals := l.Row(i)
		acc := 0.0
		var diag float64
		for k, j := range cols {
			if int(j) == i {
				diag = vals[k]
				continue
			}
			if inMask[j] {
				acc += vals[k] * got[j]
			}
		}
		want := (b[i] - acc) / diag
		if got[i] != want {
			t.Fatalf("masked row %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestSolveTriErrors covers the failure taxonomy: singular operands
// (structural and numeric), non-triangular structure, malformed masks,
// shape mismatches and bad options.
func TestSolveTriErrors(t *testing.T) {
	cfg := solveCfg(sched.Dynamic, 2)
	mk := func(rows [][]int, vals [][]float64) *sparse.CSR[float64] {
		n := len(rows)
		coo := sparse.NewCOO[float64](n, n, 0)
		for i := range rows {
			for k, j := range rows[i] {
				coo.Add(sparse.Index(i), sparse.Index(j), vals[i][k])
			}
		}
		return coo.ToCSR()
	}
	b := []float64{1, 2, 3}

	t.Run("missing diagonal", func(t *testing.T) {
		l := mk([][]int{{0}, {0}, {0, 2}}, [][]float64{{1}, {1}, {1, 1}}) // row 1 has no diag
		dst := make([]float64, 3)
		err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{})
		if !errors.Is(err, ErrSingular) {
			t.Fatalf("got %v, want ErrSingular", err)
		}
		if err := SolveTriSerial(dst, l, b, SolveOpts{}); !errors.Is(err, ErrSingular) {
			t.Fatalf("serial: got %v, want ErrSingular", err)
		}
	})

	t.Run("zero diagonal value", func(t *testing.T) {
		l := mk([][]int{{0}, {1}, {2}}, [][]float64{{1}, {0}, {1}}) // stored zero at (1,1)
		dst := make([]float64, 3)
		for _, mode := range []SolveMode{SolveSerial, SolveWaves} {
			err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Mode: mode})
			if !errors.Is(err, ErrSingular) {
				t.Fatalf("mode %d: got %v, want ErrSingular", mode, err)
			}
			if errors.Is(err, ErrPanic) {
				t.Fatalf("mode %d: singular diagonal surfaced as ErrPanic: %v", mode, err)
			}
		}
		if err := SolveTriSerial(dst, l, b, SolveOpts{}); !errors.Is(err, ErrSingular) {
			t.Fatalf("serial: got %v, want ErrSingular", err)
		}
	})

	t.Run("not triangular", func(t *testing.T) {
		l := mk([][]int{{0, 2}, {1}, {2}}, [][]float64{{1, 5}, {1}, {1}}) // (0,2) above diag
		dst := make([]float64, 3)
		err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{})
		if !errors.Is(err, ErrNotTriangular) {
			t.Fatalf("got %v, want ErrNotTriangular", err)
		}
		if err := SolveTriSerial(dst, l, b, SolveOpts{}); !errors.Is(err, ErrNotTriangular) {
			t.Fatalf("serial: got %v, want ErrNotTriangular", err)
		}
		// The same entry is fine for an upper solve.
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Tri: Upper}); err != nil {
			t.Fatalf("upper solve: %v", err)
		}
		// And fine for a masked lower solve whose mask excludes column 2.
		so := SolveOpts{Mask: []sparse.Index{0, 1}}
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, so); err != nil {
			t.Fatalf("masked solve excluding the offender: %v", err)
		}
	})

	t.Run("bad mask", func(t *testing.T) {
		l := mk([][]int{{0}, {1}, {2}}, [][]float64{{1}, {1}, {1}})
		dst := make([]float64, 3)
		for _, mask := range [][]sparse.Index{{1, 0}, {0, 0}, {-1}, {3}} {
			err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Mask: mask})
			if !errors.Is(err, ErrInvalidMatrix) {
				t.Fatalf("mask %v: got %v, want ErrInvalidMatrix", mask, err)
			}
		}
	})

	t.Run("shape", func(t *testing.T) {
		l := mk([][]int{{0}, {1}, {2}}, [][]float64{{1}, {1}, {1}})
		dst := make([]float64, 3)
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b[:2], cfg, SolveOpts{}); !errors.Is(err, sparse.ErrShape) {
			t.Fatalf("short b: got %v, want ErrShape", err)
		}
		rect := sparse.NewCSR[float64](3, 4, 0)
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, rect, b, cfg, SolveOpts{}); !errors.Is(err, sparse.ErrShape) {
			t.Fatalf("rectangular: got %v, want ErrShape", err)
		}
	})

	t.Run("bad options", func(t *testing.T) {
		l := mk([][]int{{0}, {1}, {2}}, [][]float64{{1}, {1}, {1}})
		dst := make([]float64, 3)
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Tri: Tri(9)}); !errors.Is(err, ErrConfig) {
			t.Fatalf("bad tri: got %v, want ErrConfig", err)
		}
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Mode: SolveMode(9)}); !errors.Is(err, ErrConfig) {
			t.Fatalf("bad mode: got %v, want ErrConfig", err)
		}
	})
}

// TestSolveTriCancellation verifies a pre-canceled context surfaces as
// ErrCanceled from both execution paths.
func TestSolveTriCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 2048
	l := randTriangular(n, true, 0.02, 2, r)
	b := randVec(n, r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []SolveMode{SolveSerial, SolveWaves} {
		cfg := solveCfg(sched.Dynamic, 4)
		cfg.Context = ctx
		dst := make([]float64, n)
		err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, SolveOpts{Mode: mode})
		if !errors.Is(err, ErrCanceled) && !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %d: got %v, want cancellation", mode, err)
		}
	}
}

// TestSolveTriPlanCache verifies the engine caches level-schedule plans
// per flavor and rebuilds when the structure hash changes.
func TestSolveTriPlanCache(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	n := 128
	l := randTriangular(n, true, 0.2, 0, r)
	b := randVec(n, r)
	eng := exec.New(exec.Config{})
	cfg := solveCfg(sched.Dynamic, 2)
	cfg.Engine = eng
	dst := make([]float64, n)
	run := func(so SolveOpts) {
		t.Helper()
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, so); err != nil {
			t.Fatal(err)
		}
	}
	run(SolveOpts{})
	s0 := eng.Stats()
	if s0.PlanMisses == 0 {
		t.Fatal("first solve should miss the plan cache")
	}
	run(SolveOpts{})
	s1 := eng.Stats()
	if s1.PlanHits <= s0.PlanHits {
		t.Fatalf("second identical solve should hit the plan cache (hits %d -> %d)", s0.PlanHits, s1.PlanHits)
	}
	if s1.PlanMisses != s0.PlanMisses {
		t.Fatalf("second identical solve rebuilt the plan (misses %d -> %d)", s0.PlanMisses, s1.PlanMisses)
	}
	// A different flavor of the same operand is a different plan.
	run(SolveOpts{Transpose: true})
	s2 := eng.Stats()
	if s2.PlanMisses <= s1.PlanMisses {
		t.Fatal("transpose flavor should build its own plan")
	}
	// Different coarsening knobs change the hash.
	run(SolveOpts{WaveGrain: 32, MergeBelow: 2})
	s3 := eng.Stats()
	if s3.PlanMisses <= s2.PlanMisses {
		t.Fatal("different coarsening knobs should build a new plan")
	}
}

// TestSolveTriSchedStats verifies the recorder's sched block: a wave
// run records its plan shape, histograms and barrier traffic.
func TestSolveTriSchedStats(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := 512
	l := randTriangular(n, true, 0.05, 2, r)
	b := randVec(n, r)
	rec := obs.NewRecorder()
	cfg := solveCfg(sched.Dynamic, 4)
	cfg.Recorder = rec
	dst := make([]float64, n)
	so := SolveOpts{Mode: SolveWaves, WaveGrain: 16, MergeBelow: 4}
	if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, so); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Sched.WaveRuns != 1 {
		t.Fatalf("WaveRuns = %d, want 1", st.Sched.WaveRuns)
	}
	if st.Sched.Levels <= 1 {
		t.Fatalf("Levels = %d, want > 1 (skewed triangular system has depth)", st.Sched.Levels)
	}
	if st.Sched.Waves < 1 || st.Sched.Waves > st.Sched.Levels {
		t.Fatalf("Waves = %d out of range [1, %d]", st.Sched.Waves, st.Sched.Levels)
	}
	var tiles, flops int64
	for _, v := range st.Sched.WaveTiles {
		tiles += v
	}
	for _, v := range st.Sched.WaveFlops {
		flops += v
	}
	if tiles != st.Sched.Waves || flops != st.Sched.Waves {
		t.Fatalf("histogram mass (tiles %d, flops %d) != waves %d", tiles, flops, st.Sched.Waves)
	}
	// The per-run snapshot carries the same block, and the exec.solve
	// phase span must be present.
	last, ok := rec.LastRun()
	if !ok || last.Sched.WaveRuns != 1 {
		t.Fatalf("LastRun sched block missing: ok=%v %+v", ok, last.Sched)
	}
	found := false
	for _, ph := range last.Phases {
		if ph.Phase == "exec.solve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exec.solve span missing from phases: %+v", last.Phases)
	}
}

// TestSolveTriSerialTransposeUpper pins the transpose/Tri interaction:
// solving Lᵀ with Tri=Lower equals solving U=transpose(L) with
// Tri=Upper.
func TestSolveTriSerialTransposeUpper(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	n := 200
	l := randTriangular(n, true, 0.2, 0, r)
	u := sparse.Transpose(l)
	b := randVec(n, r)
	viaTranspose := make([]float64, n)
	if err := SolveTriSerial(viaTranspose, l, b, SolveOpts{Tri: Lower, Transpose: true}); err != nil {
		t.Fatal(err)
	}
	direct := make([]float64, n)
	if err := SolveTriSerial(direct, u, b, SolveOpts{Tri: Upper}); err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != viaTranspose[i] {
			t.Fatalf("row %d: transpose solve %v != direct upper %v", i, viaTranspose[i], direct[i])
		}
	}
}

// TestSolveSteadyStateAllocs pins the zero-alloc contract of warm
// engine-backed solves: once the plan is cached and the dense scratch
// is pooled, a masked serial solve — hash, plan lookup, workspace
// checkout, substitution, mask clear, release — allocates nothing.
func TestSolveSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	n := 256
	l := randTriangular(n, true, 0.1, 2, r)
	b := randVec(n, r)
	mask := randMask(n, 0.5, r)
	eng := exec.New(exec.Config{})
	cfg := solveCfg(sched.Dynamic, 1)
	cfg.Engine = eng
	dst := make([]float64, n)
	so := SolveOpts{Mask: mask}
	// Warm: build and cache the plan, populate the workspace pool.
	if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, so); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := SolveTriInto[float64, plusTimes](plusTimes{}, dst, l, b, cfg, so); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm masked solve allocates %.1f times per run, want 0", allocs)
	}
}
