package core

import (
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/graphgen"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// families are small instances of every structural family the corpus
// uses; the integration suite runs every kernel formulation on each and
// demands bit-identical results.
var families = map[string]func() *sparse.CSR[float64]{
	"social":  func() *sparse.CSR[float64] { return graphgen.RMAT(8, 10, 0.57, 0.19, 0.19, 1) },
	"road":    func() *sparse.CSR[float64] { return graphgen.RoadNetwork(20, 18, 0.93, 2) },
	"web":     func() *sparse.CSR[float64] { return graphgen.WebGraph(350, 9, 0.55, 3) },
	"circuit": func() *sparse.CSR[float64] { return graphgen.Circuit(320, 3, 0.6, 3, 50, 4) },
	"smallw":  func() *sparse.CSR[float64] { return graphgen.SmallWorld(300, 6, 0.1, 5) },
	"geo":     func() *sparse.CSR[float64] { return graphgen.Geometric(250, 0.09, 6) },
}

// TestAllFormulationsAgreeOnAllFamilies is the repository's central
// integration test: on every graph family, every kernel formulation —
// all iteration spaces, all accumulators, 1-D and 2-D tiling, the dot
// formulation, the CSC column-wise kernel, and the reusable Multiplier —
// must produce the same CSR bits for C = A ⊙ (A×A).
func TestAllFormulationsAgreeOnAllFamilies(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	for name, build := range families {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			a := build()
			ref, err := MaskedSpGEMM[float64](sr, a, a, a, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}

			for _, it := range []IterationSpace{Vanilla, MaskLoad, CoIter, Hybrid} {
				for _, ak := range []accum.Kind{
					accum.DenseKind, accum.HashKind,
					accum.DenseExplicitKind, accum.HashExplicitKind, accum.SortListKind,
				} {
					cfg := Config{
						Iteration: it, Kappa: 1, Accumulator: ak, MarkerBits: 16,
						Tiles: 9, Tiling: tiling.FlopBalanced,
						Schedule: sched.Dynamic, Workers: 2,
					}
					got, err := MaskedSpGEMM[float64](sr, a, a, a, cfg)
					if err != nil {
						t.Fatalf("%v/%v: %v", it, ak, err)
					}
					if !sparse.Equal(ref, got) {
						t.Fatalf("%v/%v differs", it, ak)
					}
				}
			}

			for _, panels := range []int{1, 4, 13} {
				got, err := MaskedSpGEMM2D[float64](sr, a, a, a, DefaultConfig(), panels)
				if err != nil {
					t.Fatalf("2D/%d: %v", panels, err)
				}
				if !sparse.Equal(ref, got) {
					t.Fatalf("2D/%d differs", panels)
				}
			}

			gotDot, err := MaskedSpGEMMDot[float64](sr, a, a, sparse.Transpose(a), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(ref, gotDot) {
				t.Fatal("dot formulation differs")
			}

			gotCSC, err := MaskedSpGEMMCSC[float64](sr,
				sparse.CSRToCSC(a), sparse.CSRToCSC(a), sparse.CSRToCSC(a), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(ref, sparse.CSCToCSR(gotCSC)) {
				t.Fatal("column-wise kernel differs")
			}

			mu, err := NewMultiplier[float64](sr, a, a, a, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := mu.Multiply()
				if err != nil {
					t.Fatalf("multiplier rep %d: %v", rep, err)
				}
				if !sparse.Equal(ref, got) {
					t.Fatalf("multiplier rep %d differs", rep)
				}
			}

			gotInstr, counters, err := MaskedSpGEMMInstrumented[float64](sr, a, a, a, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(ref, gotInstr) {
				t.Fatal("instrumented kernel differs")
			}
			if counters.Gathered != ref.NNZ() {
				t.Fatalf("counters gathered %d, want %d", counters.Gathered, ref.NNZ())
			}

			// Masked + complement partition the unmasked product.
			comp, err := MaskedSpGEMMComp[float64](sr, a, a, a, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			full, err := SpGEMM[float64](sr, a, a)
			if err != nil {
				t.Fatal(err)
			}
			if ref.NNZ()+comp.NNZ() != full.NNZ() {
				t.Fatalf("partition broken: %d + %d != %d", ref.NNZ(), comp.NNZ(), full.NNZ())
			}
		})
	}
}
