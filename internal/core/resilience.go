package core

import (
	"time"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/sparse"
)

// Resilience bundles the failure-hardening knobs of Config behind one
// pointer, so the production configuration pays a single nil word for
// all of them. Keeping Config itself small matters: each run captures
// its private Config copy in the tile closure, and a Config over the
// compiler's by-value capture threshold (128 bytes) costs an extra heap
// object per run.
type Resilience struct {
	// Chaos, when non-nil, arms the fault-injection seams along the
	// kernel path: tile claim and worker spawn in the scheduler, the
	// row-kernel entry, and accumulator grows (workspace checkout/
	// release and plan-cache stores fire through the Engine's own
	// Config). A nil injector is the production state; every seam is
	// then a single pointer comparison.
	Chaos chaos.Injector
	// StallTimeout, when positive, arms the scheduler's stall watchdog:
	// a run whose workers complete no tile for a full timeout while
	// tiles remain fails with ErrStalled (carrying a *sched.StallError
	// with all-goroutine stacks). Zero disables the watchdog — the
	// disabled path spawns no goroutine and counts nothing.
	StallTimeout time.Duration
}

// chaosInjector resolves the armed injector, nil in production.
func (c Config) chaosInjector() chaos.Injector {
	if c.Resilience == nil {
		return nil
	}
	return c.Resilience.Chaos
}

// stallTimeout resolves the watchdog window, 0 when disarmed.
func (c Config) stallTimeout() time.Duration {
	if c.Resilience == nil {
		return 0
	}
	return c.Resilience.StallTimeout
}

// Degradation is the retry ladder's execution-narrowing rung: after a
// transient failure (ErrPanic, ErrStalled, an injected cancel), the
// retry layer re-executes the same plan on a progressively safer — and
// slower — path. Each rung includes everything the previous one gave
// up, so the ladder is monotone: a failure mode escaped by rung n stays
// escaped on rung n+1.
type Degradation int

const (
	// DegradeNone is the configured execution, unchanged.
	DegradeNone Degradation = iota
	// DegradeSerial forces one worker under the Static policy: no
	// concurrent claims, no cross-worker interference, one accumulator.
	DegradeSerial
	// DegradeUnpooled additionally abandons the engine's pooled
	// workspaces (and their chaos-armed checkout/release seams) for a
	// fresh one-shot workspace — the configuration with the least
	// shared state a run can have.
	DegradeUnpooled
)

func (d Degradation) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradeSerial:
		return "serial"
	case DegradeUnpooled:
		return "serial+unpooled"
	default:
		return "unknown"
	}
}

// armAccumChaos arms the AccumGrow seam on every grow-hookable
// accumulator and returns the disarm function, which MUST run before
// the workspace is released — a hook holds the run's injector and must
// never leak into the pool. With a nil injector nothing is armed and
// the disarm is a no-op.
func armAccumChaos[T sparse.Number](cfg Config, accs []accum.Accumulator[T]) (disarm func()) {
	inj := cfg.chaosInjector()
	if inj == nil {
		return func() {}
	}
	var hooked []accum.GrowHooked
	for _, ac := range accs {
		if gh, ok := ac.(accum.GrowHooked); ok {
			gh.SetGrowHook(func() { chaos.StepHard(inj, chaos.AccumGrow) })
			hooked = append(hooked, gh)
		}
	}
	return func() {
		for _, gh := range hooked {
			gh.SetGrowHook(nil)
		}
	}
}
