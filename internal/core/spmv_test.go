package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// denseMaskedVecMat computes y = fᵀ×A restricted to allowed columns, densely.
func denseMaskedVecMat(f *SpVec[float64], a *sparse.CSR[float64], allowed func(sparse.Index) bool) map[sparse.Index]float64 {
	want := map[sparse.Index]float64{}
	fv := make([]float64, a.Rows)
	for p, u := range f.Idx {
		fv[u] = f.Val[p]
	}
	for j := 0; j < a.Cols; j++ {
		if !allowed(sparse.Index(j)) {
			continue
		}
		var acc float64
		hit := false
		for i := 0; i < a.Rows; i++ {
			av := a.At(i, sparse.Index(j))
			if av != 0 && fv[i] != 0 {
				acc += fv[i] * av
				hit = true
			}
		}
		if hit {
			want[sparse.Index(j)] = acc
		}
	}
	return want
}

func symRandMatrix(n int, density float64, seed int64) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](n, n, 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < density {
				coo.Add(sparse.Index(i), sparse.Index(j), float64(r.Intn(3)+1))
			}
		}
	}
	return sparse.Symmetrize(coo.ToCSR())
}

func TestMaskedSpVMPushPullAgree(t *testing.T) {
	f := func(seed int64) bool {
		a := symRandMatrix(20, 0.15, seed)
		r := rand.New(rand.NewSource(seed + 1))
		var idx []sparse.Index
		for i := 0; i < a.Rows; i++ {
			if r.Float64() < 0.3 {
				idx = append(idx, sparse.Index(i))
			}
		}
		vals := make([]float64, len(idx))
		for p := range vals {
			vals[p] = float64(r.Intn(4) + 1)
		}
		fv := &SpVec[float64]{N: a.Rows, Idx: idx, Val: vals}
		blocked := map[sparse.Index]bool{}
		for i := 0; i < a.Rows; i++ {
			if r.Float64() < 0.4 {
				blocked[sparse.Index(i)] = true
			}
		}
		allowed := func(j sparse.Index) bool { return !blocked[j] }

		sr := semiring.PlusTimes[float64]{}
		push := MaskedSpVM(sr, fv, a, allowed, Push)
		pull := MaskedSpVM(sr, fv, a, allowed, Pull)
		want := denseMaskedVecMat(fv, a, allowed)

		check := func(got *SpVec[float64]) bool {
			if len(got.Idx) != len(want) {
				return false
			}
			if !sort.SliceIsSorted(got.Idx, func(x, y int) bool { return got.Idx[x] < got.Idx[y] }) {
				return false
			}
			for p, j := range got.Idx {
				if want[j] != got.Val[p] {
					return false
				}
			}
			return true
		}
		return check(push) && check(pull)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaskedSpVMAuto(t *testing.T) {
	a := symRandMatrix(30, 0.2, 5)
	fv := &SpVec[float64]{N: a.Rows, Idx: []sparse.Index{3}, Val: []float64{1}}
	sr := semiring.PlusTimes[float64]{}
	auto := MaskedSpVM(sr, fv, a, func(sparse.Index) bool { return true }, Auto)
	push := MaskedSpVM(sr, fv, a, func(sparse.Index) bool { return true }, Push)
	if len(auto.Idx) != len(push.Idx) {
		t.Fatal("auto direction result differs from push")
	}
	for p := range auto.Idx {
		if auto.Idx[p] != push.Idx[p] || auto.Val[p] != push.Val[p] {
			t.Fatal("auto direction result differs from push")
		}
	}
}

func TestMaskedSpVMEmptyFrontier(t *testing.T) {
	a := symRandMatrix(10, 0.3, 9)
	fv := &SpVec[float64]{N: a.Rows}
	got := MaskedSpVM(semiring.PlusTimes[float64]{}, fv, a, func(sparse.Index) bool { return true }, Push)
	if got.NNZ() != 0 {
		t.Errorf("empty frontier produced %d entries", got.NNZ())
	}
}
