package core

import (
	"math/rand"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func TestInstrumentedMatchesPlainResult(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	a := randMatrix(50, 50, 0.12, r)
	cfg := DefaultConfig()
	cfg.Workers = 2
	want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, counters, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("instrumentation changed the result")
	}
	if counters.Gathered != got.NNZ() {
		t.Errorf("Gathered = %d, want output nnz %d", counters.Gathered, got.NNZ())
	}
	if counters.Updates == 0 || counters.Rows == 0 {
		t.Errorf("empty counters: %+v", counters)
	}
}

func TestInstrumentedCountsMatchProfile(t *testing.T) {
	// With the MaskLoad space, the actual update count must equal the
	// symbolic flop count exactly, and mask loads must equal nnz(M) over
	// rows with a non-empty mask (all of them here).
	r := rand.New(rand.NewSource(112))
	a := randMatrix(40, 40, 0.25, r) // dense enough that no row is empty
	cfg := DefaultConfig()
	cfg.Iteration = MaskLoad
	cfg.Workers = 2
	_, counters, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileMasked(a, a, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counters.Updates != p.Flops {
		t.Errorf("Updates = %d, want flops %d", counters.Updates, p.Flops)
	}
	var maskedRows int64
	var maskVolume int64
	for i := 0; i < a.Rows; i++ {
		if n := a.RowNNZ(i); n > 0 {
			maskedRows++
			maskVolume += n
		}
	}
	if counters.Rows != maskedRows {
		t.Errorf("Rows = %d, want %d", counters.Rows, maskedRows)
	}
	if counters.MaskLoads != maskVolume {
		t.Errorf("MaskLoads = %d, want %d", counters.MaskLoads, maskVolume)
	}
	// Rejections + accepted = updates; accepted >= gathered entries.
	if counters.Rejected >= counters.Updates {
		t.Error("everything rejected?")
	}
}

func TestInstrumentedHybridDoesLessWork(t *testing.T) {
	// On a circuit-like structure the hybrid space must attempt far
	// fewer accumulator updates than the pure linear scan — the counter
	// view of the Fig. 14 rescue.
	coo := sparse.NewCOO[float64](400, 400, 0)
	// Band.
	for i := 0; i < 399; i++ {
		coo.Add(sparse.Index(i), sparse.Index(i+1), 1)
		coo.Add(sparse.Index(i+1), sparse.Index(i), 1)
	}
	// One dense rail.
	for j := 2; j < 400; j += 2 {
		coo.Add(0, sparse.Index(j), 1)
		coo.Add(sparse.Index(j), 0, 1)
	}
	a := coo.ToCSR()
	cfg := DefaultConfig()
	cfg.Workers = 1

	linCfg := cfg
	linCfg.Iteration = MaskLoad
	_, lin, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, a, a, a, linCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, hyb, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Updates*2 >= lin.Updates {
		t.Errorf("hybrid updates %d not well below linear %d", hyb.Updates, lin.Updates)
	}
	if hyb.Gathered != lin.Gathered {
		t.Errorf("output sizes differ: %d vs %d", hyb.Gathered, lin.Gathered)
	}
}

func TestInstrumentedAllAccumulators(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	a := randMatrix(30, 30, 0.2, r)
	for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind, accum.SortListKind} {
		cfg := DefaultConfig()
		cfg.Accumulator = ak
		cfg.Workers = 2
		_, counters, err := MaskedSpGEMMInstrumented[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
		if err != nil {
			t.Fatalf("%v: %v", ak, err)
		}
		if counters.Updates == 0 {
			t.Errorf("%v: no updates counted", ak)
		}
	}
}
