package core

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMM2D is the two-dimensional tiling extension the paper's
// §V-A leaves as future work: the output rows are tiled as in the 1-D
// kernel, and additionally the inner (k) dimension is cut into kPanels
// panels processed panel-major within each row tile. All rows of a tile
// advance through one B panel before the next panel is touched, so the
// panel's B rows stay cache-resident across the whole row tile — the
// locality the row-at-a-time traversal cannot get.
//
// The accumulator is a per-tile mask-shaped buffer: row i's partial sums
// live in a slice parallel to M[i,:]'s columns, updated by binary search
// within the (sorted) mask row. Memory per tile is proportional to the
// tile's mask volume, so the working set is controlled by the tile size
// regardless of panel count.
//
// Scheduling, tiling strategy, tile count and workers come from cfg;
// the iteration space and accumulator fields are ignored (the 2-D
// traversal fixes both). kPanels ≤ 1 degrades to mask-sorted 1-D.
func MaskedSpGEMM2D[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config, kPanels int,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}
	if kPanels < 1 {
		kPanels = 1
	}
	if kPanels > a.Cols {
		kPanels = a.Cols
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	tiles, err := tiling.MakeParallelE(ctx, cfg.Tiling, cfg.Tiles, pw, a, b, m)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	workers := sched.Workers(cfg.Workers)
	outs := make([]tileOutput[T], len(tiles))

	// Panel boundaries in the k dimension, uniform cuts of [0, a.Cols).
	bounds := make([]sparse.Index, kPanels+1)
	for p := 0; p <= kPanels; p++ {
		bounds[p] = sparse.Index(a.Cols * p / kPanels)
	}

	if err := sched.RunChunkedE(ctx, cfg.Schedule, workers, len(tiles), cfg.GuidedMinChunk, func(_, t int) {
		runTile2D(sr, m, a, b, tiles[t], bounds, &outs[t])
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleE(ctx, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return c, nil
}

// runTile2D computes one row tile panel-major.
func runTile2D[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], tile tiling.Tile,
	bounds []sparse.Index, out *tileOutput[T],
) {
	rows := tile.Rows()
	maskLo := m.RowPtr[tile.Lo]
	maskVol := m.RowPtr[tile.Hi] - maskLo

	// Per-tile accumulator, shaped like the tile's mask slice: vals[p]
	// and written[p] correspond to mask entry p (global index maskLo+p).
	vals := make([]T, maskVol)
	written := make([]bool, maskVol)

	// cursor[r] walks row (tile.Lo+r) of A panel by panel; rows are
	// sorted by column, so each panel is a contiguous segment.
	cursor := make([]int64, rows)
	for r := 0; r < rows; r++ {
		cursor[r] = a.RowPtr[tile.Lo+r]
	}

	for p := 0; p+1 < len(bounds); p++ {
		panelEnd := bounds[p+1]
		for r := 0; r < rows; r++ {
			i := tile.Lo + r
			maskCols := m.RowCols(i)
			if len(maskCols) == 0 {
				cursor[r] = a.RowPtr[i+1]
				continue
			}
			rowBase := m.RowPtr[i] - maskLo
			rowVals := vals[rowBase : rowBase+int64(len(maskCols))]
			rowWritten := written[rowBase : rowBase+int64(len(maskCols))]

			end := a.RowPtr[i+1]
			for cursor[r] < end && a.ColIdx[cursor[r]] < panelEnd {
				k := a.ColIdx[cursor[r]]
				aik := a.Val[cursor[r]]
				cursor[r]++
				bCols, bVals := b.Row(int(k))
				// Mask-sorted accumulate: each B entry is located within
				// the mask row by binary search.
				lo := 0
				for jj, j := range bCols {
					sub := maskCols[lo:]
					q := sort.Search(len(sub), func(x int) bool { return sub[x] >= j })
					// B rows are sorted too, so the searched prefix can
					// never match again.
					lo += q
					if lo >= len(maskCols) {
						break
					}
					if maskCols[lo] == j {
						x := sr.Times(aik, bVals[jj])
						if rowWritten[lo] {
							rowVals[lo] = sr.Plus(rowVals[lo], x)
						} else {
							rowWritten[lo] = true
							rowVals[lo] = x
						}
					}
				}
			}
		}
	}

	// Gather: mask order is already sorted output order.
	out.rowNNZ = make([]int32, rows)
	out.cols = make([]sparse.Index, 0, maskVol)
	out.vals = make([]T, 0, maskVol)
	for r := 0; r < rows; r++ {
		i := tile.Lo + r
		maskCols := m.RowCols(i)
		rowBase := m.RowPtr[i] - maskLo
		before := len(out.cols)
		for p, j := range maskCols {
			if written[rowBase+int64(p)] {
				out.cols = append(out.cols, j)
				out.vals = append(out.vals, vals[rowBase+int64(p)])
			}
		}
		out.rowNNZ[r] = int32(len(out.cols) - before)
	}
}
