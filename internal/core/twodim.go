package core

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMM2D is the two-dimensional tiling extension the paper's
// §V-A leaves as future work: the output rows are tiled as in the 1-D
// kernel, and additionally the inner (k) dimension is cut into kPanels
// panels processed panel-major within each row tile. All rows of a tile
// advance through one B panel before the next panel is touched, so the
// panel's B rows stay cache-resident across the whole row tile — the
// locality the row-at-a-time traversal cannot get.
//
// The accumulator is a mask-shaped per-worker scratch: row i's partial
// sums live in a slice parallel to M[i,:]'s columns, updated by binary
// search within the (sorted) mask row. Memory per worker is
// proportional to the largest tile's mask volume, so the working set is
// controlled by the tile size regardless of panel count. Scratch and
// output buffers come from the engine's workspace pool (cfg.Engine) or
// are built per call without one.
//
// Scheduling, tiling strategy, tile count and workers come from cfg;
// the iteration space and accumulator fields are ignored (the 2-D
// traversal fixes both). kPanels ≤ 1 degrades to mask-sorted 1-D.
func MaskedSpGEMM2D[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config, kPanels int,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}
	if kPanels < 1 {
		kPanels = 1
	}
	if kPanels > a.Cols {
		kPanels = a.Cols
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := planFor(ctx, cfg, pw, m, a, b, scope)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	ws := exec.Dense[T, S](cfg.Engine, sr, b.Cols, workers, len(tiles))
	// Poison-on-error: a failed run can leave the dense scratch's
	// state vector mid-reset, so quarantine unless fully successful.
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	outs := ws.Outs[:len(tiles)]

	// Panel boundaries in the k dimension, uniform cuts of [0, a.Cols),
	// staged in the workspace's column scratch (read-only during the run).
	bounds := ws.ScratchCols
	if cap(bounds) < kPanels+1 {
		bounds = make([]sparse.Index, kPanels+1)
	}
	bounds = bounds[:kPanels+1]
	for p := 0; p <= kPanels; p++ {
		bounds[p] = sparse.Index(a.Cols * p / kPanels)
	}
	ws.ScratchCols = bounds

	if err := schedRun(ctx, cfg, workers, len(tiles), func(worker, t int) {
		runTile2D(sr, m, a, b, tiles[t], bounds, &outs[t], &ws.Dense[worker])
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleE(ctx, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordPoolDelta(cfg, poolPrior, scope)
	clean = true
	return c, nil
}

// runTile2D computes one row tile panel-major. The worker scratch's
// value/state vectors are mask-shaped for this tile (vals[p]/written[p]
// correspond to mask entry p); the gather loop clears every written
// flag it consumes, restoring the scratch's clean state for the next
// tile and for pooled reuse.
func runTile2D[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], tile tiling.Tile,
	bounds []sparse.Index, out *exec.TileBuf[T], sc *exec.DenseScratch[T],
) {
	rows := tile.Rows()
	maskLo := m.RowPtr[tile.Lo]
	maskVol := m.RowPtr[tile.Hi] - maskLo

	vals, written := sc.EnsureSize(int(maskVol))
	// cursor[r] walks row (tile.Lo+r) of A panel by panel; rows are
	// sorted by column, so each panel is a contiguous segment.
	cursor := sc.EnsureCursor(rows)
	for r := 0; r < rows; r++ {
		cursor[r] = a.RowPtr[tile.Lo+r]
	}

	for p := 0; p+1 < len(bounds); p++ {
		panelEnd := bounds[p+1]
		for r := 0; r < rows; r++ {
			i := tile.Lo + r
			maskCols := m.RowCols(i)
			if len(maskCols) == 0 {
				cursor[r] = a.RowPtr[i+1]
				continue
			}
			rowBase := m.RowPtr[i] - maskLo
			rowVals := vals[rowBase : rowBase+int64(len(maskCols))]
			rowWritten := written[rowBase : rowBase+int64(len(maskCols))]

			end := a.RowPtr[i+1]
			for cursor[r] < end && a.ColIdx[cursor[r]] < panelEnd {
				k := a.ColIdx[cursor[r]]
				aik := a.Val[cursor[r]]
				cursor[r]++
				bCols, bVals := b.Row(int(k))
				// Mask-sorted accumulate: each B entry is located within
				// the mask row by binary search.
				lo := 0
				for jj, j := range bCols {
					sub := maskCols[lo:]
					q := sort.Search(len(sub), func(x int) bool { return sub[x] >= j })
					// B rows are sorted too, so the searched prefix can
					// never match again.
					lo += q
					if lo >= len(maskCols) {
						break
					}
					if maskCols[lo] == j {
						x := sr.Times(aik, bVals[jj])
						if rowWritten[lo] != 0 {
							rowVals[lo] = sr.Plus(rowVals[lo], x)
						} else {
							rowWritten[lo] = 1
							rowVals[lo] = x
						}
					}
				}
			}
		}
	}

	// Gather: mask order is already sorted output order. Consuming a
	// written flag clears it, leaving the scratch clean.
	if cap(out.RowNNZ) < rows {
		out.RowNNZ = make([]int32, rows)
	}
	out.RowNNZ = out.RowNNZ[:rows]
	if int64(cap(out.Cols)) < maskVol || int64(cap(out.Vals)) < maskVol {
		out.Cols = make([]sparse.Index, 0, maskVol)
		out.Vals = make([]T, 0, maskVol)
	} else {
		out.Cols = out.Cols[:0]
		out.Vals = out.Vals[:0]
	}
	for r := 0; r < rows; r++ {
		i := tile.Lo + r
		maskCols := m.RowCols(i)
		rowBase := m.RowPtr[i] - maskLo
		before := len(out.Cols)
		for p, j := range maskCols {
			if written[rowBase+int64(p)] != 0 {
				written[rowBase+int64(p)] = 0
				out.Cols = append(out.Cols, j)
				out.Vals = append(out.Vals, vals[rowBase+int64(p)])
			}
		}
		out.RowNNZ[r] = int32(len(out.Cols) - before)
	}
}
