package core

import (
	"context"
	"fmt"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Multiplier is a reusable masked-SpGEMM execution plan for repeated
// products with the same operands and configuration — the paper's own
// measurement loop ("run for 5 seconds or 10000 iterations") and
// iterative algorithms over a fixed graph both re-execute one multiply
// many times. Constructing a Multiplier performs the work the kernel
// otherwise repeats per call: tile partitioning (an O(nnz) prefix-sum
// for FLOP-balanced tiles), accumulator allocation, and per-tile output
// buffer sizing. Multiply then reuses all of it; only the result matrix
// is freshly allocated (the paper frees the output after each run).
//
// A Multiplier is NOT safe for concurrent Multiply calls — it owns one
// set of worker accumulators. The operand matrices must not be mutated
// while the Multiplier is in use.
type Multiplier[T sparse.Number, S semiring.Semiring[T]] struct {
	sr          S
	m, a, b     *sparse.CSR[T]
	cfg         Config
	tiles       []tiling.Tile
	workers     int
	planWorkers int
	accs        []accum.Accumulator[T]
	outs        []tileOutput[T]
}

// NewMultiplier validates the problem and builds the execution plan.
func NewMultiplier[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*Multiplier[T, S], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	ctx := cfg.Context
	// Small plans run serially below the parallel cutoffs, so check the
	// context once up front rather than relying on the scheduler's check.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, wrapRunErr(err)
		}
	}
	mu := &Multiplier[T, S]{sr: sr, m: m, a: a, b: b, cfg: cfg}
	mu.workers = sched.Workers(cfg.Workers)
	mu.planWorkers = cfg.planWorkers()
	if a.Rows > 0 {
		var err error
		mu.tiles, err = makeTiles(ctx, cfg, mu.planWorkers, a, b, m)
		if err != nil {
			return nil, wrapRunErr(err)
		}
	}
	rowCap, err := rowCapacity(ctx, cfg, mu.planWorkers, a, b, m)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	mu.accs = make([]accum.Accumulator[T], mu.workers)
	for w := range mu.accs {
		mu.accs[w] = accum.New[T](cfg.Accumulator, sr, b.Cols, rowCap, cfg.MarkerBits)
	}
	mu.outs = make([]tileOutput[T], len(mu.tiles))
	return mu, nil
}

// Tiles returns the number of tiles in the plan.
func (mu *Multiplier[T, S]) Tiles() int { return len(mu.tiles) }

// Multiply executes the plan and returns a freshly assembled result,
// under the Config's Context (nil = run to completion).
func (mu *Multiplier[T, S]) Multiply() (*sparse.CSR[T], error) {
	return mu.MultiplyCtx(mu.cfg.Context)
}

// MultiplyCtx is Multiply under an explicit context, overriding the
// Config's. A cancelled or panicked run returns ErrCanceled/ErrPanic
// and leaves the plan intact: tiling, accumulators and output buffers
// all remain valid, so a later Multiply call reuses them as if the
// failed run had never happened. nil falls back to the Config's
// Context.
func (mu *Multiplier[T, S]) MultiplyCtx(ctx context.Context) (*sparse.CSR[T], error) {
	if ctx == nil {
		ctx = mu.cfg.Context
	}
	if mu.a.Rows == 0 {
		return sparse.NewCSR[T](mu.a.Rows, mu.b.Cols, 0), nil
	}
	// The accumulators persist across runs, so deltas against a per-run
	// snapshot keep each run's counts exact.
	prior := snapshotAccumStats(mu.accs, mu.cfg.Recorder)
	if err := runKernelSpanned(ctx, mu.cfg, mu.workers, len(mu.tiles), func(worker, t int, wc *obs.WorkerCounters) {
		out := &mu.outs[t]
		// Reuse the buffers from the previous run.
		out.cols = out.cols[:0]
		out.vals = out.vals[:0]
		runTilePlanned(mu.sr, mu.accs[worker], mu.m, mu.a, mu.b, mu.cfg, mu.tiles[t], out, wc)
	}); err != nil {
		return nil, wrapRunErr(err)
	}
	c, err := assembleSpanned(ctx, mu.cfg, mu.a.Rows, mu.b.Cols, mu.tiles, mu.outs, mu.planWorkers)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordAccumDeltas(mu.accs, prior, mu.cfg.Recorder)
	return c, nil
}

// runTilePlanned is runTile with caller-owned (reused) buffers. wc,
// when non-nil, accumulates the tile's rows, FLOPs, hybrid picks and
// gathered entries into the worker's counter block.
func runTilePlanned[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T],
	m, a, b *sparse.CSR[T], cfg Config, tile tiling.Tile, out *tileOutput[T],
	wc *obs.WorkerCounters,
) {
	if cap(out.rowNNZ) < tile.Rows() {
		out.rowNNZ = make([]int32, tile.Rows())
	}
	out.rowNNZ = out.rowNNZ[:tile.Rows()]
	for i := tile.Lo; i < tile.Hi; i++ {
		maskCols := m.RowCols(i)
		before := len(out.cols)
		if len(maskCols) > 0 || cfg.Iteration == Vanilla {
			switch cfg.Iteration {
			case Vanilla:
				rowVanilla(sr, acc, a, b, i, wc)
			case MaskLoad:
				rowMaskLoad(sr, acc, a, b, i, maskCols, wc)
			case CoIter:
				rowCoIter(sr, acc, a, b, i, maskCols, wc)
			case Hybrid:
				rowHybrid(sr, acc, a, b, i, maskCols, cfg.Kappa, wc)
			}
			out.cols, out.vals = acc.Gather(maskCols, out.cols, out.vals)
		}
		out.rowNNZ[i-tile.Lo] = int32(len(out.cols) - before)
	}
	if wc != nil {
		wc.Rows.Add(int64(tile.Rows()))
		// out.cols starts empty in both entry paths, so its final length
		// is exactly this tile's emitted entry count.
		wc.Gathered.Add(int64(len(out.cols)))
	}
}
