package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Multiplier is a reusable masked-SpGEMM execution for repeated
// products with the same operands and configuration — the paper's own
// measurement loop ("run for 5 seconds or 10000 iterations") and
// iterative algorithms over a fixed graph both re-execute one multiply
// many times. Construction resolves the structural plan once (through
// the engine's plan cache when cfg.Engine is set); Multiply reuses it,
// so only the result matrix is freshly allocated per call.
//
// Concurrency depends on the configuration's Engine:
//
//   - With an Engine, every Multiply checks a private workspace out of
//     the shared pool, so concurrent Multiply calls on one Multiplier
//     (and across Multipliers sharing the engine) are safe.
//   - Without an Engine the Multiplier owns a single workspace;
//     overlapping Multiply calls are detected atomically and rejected
//     with ErrConcurrentMultiply instead of racing.
//
// The operand matrices must not be mutated while the Multiplier is in
// use.
type Multiplier[T sparse.Number, S semiring.Semiring[T]] struct {
	sr          S
	m, a, b     *sparse.CSR[T]
	cfg         Config
	tiles       []tiling.Tile
	rowCap      int64
	workers     int
	planWorkers int
	// ws is the owned workspace of the engineless path, guarded by
	// inUse; both stay nil/idle when cfg.Engine is set.
	ws    *exec.Workspace[T, S]
	inUse atomic.Bool
	// kappaBits, when nonzero, overrides cfg.Kappa for subsequent runs
	// (math.Float64bits encoding). The override is read once per Multiply
	// into that run's private Config copy, so online recalibration can
	// retune κ between runs without racing in-flight multiplies.
	kappaBits atomic.Uint64
	// lastRun holds the most recent completed run's scoped stats
	// snapshot (nil until a run completes with a recorder configured).
	lastRun atomic.Pointer[obs.Stats]
}

// NewMultiplier validates the problem and resolves the execution plan.
func NewMultiplier[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*Multiplier[T, S], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	ctx := cfg.Context
	// Small plans run serially below the parallel cutoffs, so check the
	// context once up front rather than relying on the scheduler's check.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, wrapRunErr(err)
		}
	}
	mu := &Multiplier[T, S]{sr: sr, m: m, a: a, b: b, cfg: cfg}
	mu.workers = sched.Workers(cfg.Workers)
	mu.planWorkers = cfg.planWorkers()
	if a.Rows > 0 {
		// Plan construction records its spans under a scope of its own,
		// folded into the recorder's totals without counting as a run.
		scope := cfg.Recorder.StartRun()
		plan, err := planFor(ctx, cfg, mu.planWorkers, m, a, b, scope)
		scope.End()
		if err != nil {
			return nil, wrapRunErr(err)
		}
		mu.tiles = plan.Tiles
		mu.rowCap = plan.RowCap
	}
	if cfg.Engine == nil {
		// Engineless: construct the owned workspace once, up front, so
		// Multiply is allocation-free in steady state.
		mu.ws = exec.Masked[T, S](nil, sr, cfg.Accumulator, cfg.MarkerBits,
			b.Cols, mu.rowCap, mu.workers, len(mu.tiles))
	}
	return mu, nil
}

// Tiles returns the number of tiles in the plan.
func (mu *Multiplier[T, S]) Tiles() int { return len(mu.tiles) }

// Multiply executes the plan and returns a freshly assembled result,
// under the Config's Context (nil = run to completion).
func (mu *Multiplier[T, S]) Multiply() (*sparse.CSR[T], error) {
	return mu.MultiplyCtx(mu.cfg.Context)
}

// MultiplyCtx is Multiply under an explicit context, overriding the
// Config's. A cancelled or panicked run returns ErrCanceled/ErrPanic
// and leaves the plan intact: tiling, accumulators and output buffers
// all remain valid, so a later Multiply call reuses them as if the
// failed run had never happened. nil falls back to the Config's
// Context.
func (mu *Multiplier[T, S]) MultiplyCtx(ctx context.Context) (*sparse.CSR[T], error) {
	return mu.MultiplyDegraded(ctx, DegradeNone)
}

// MultiplyDegraded is MultiplyCtx on an explicitly degraded execution
// path — the retry layer's ladder after a transient failure. The plan
// (tiling, row capacity) is reused unchanged on every rung; only the
// execution strategy narrows. See Degradation for the rungs.
func (mu *Multiplier[T, S]) MultiplyDegraded(ctx context.Context, d Degradation) (*sparse.CSR[T], error) {
	if ctx == nil {
		ctx = mu.cfg.Context
	}
	if mu.a.Rows == 0 {
		return sparse.NewCSR[T](mu.a.Rows, mu.b.Cols, 0), nil
	}
	// The run owns a private Config copy so the κ override, the
	// degradation rung, and any future per-run retuning never race a
	// concurrent Multiply. Built in one assignment and never mutated
	// after, so the tile closure below captures it by value (one heap
	// object instead of a closure plus an escaping copy).
	cfg, workers, pw := mu.runConfig(d)
	scope := cfg.Recorder.StartRun()
	defer func() {
		if snap := scope.End(); snap.Runs > 0 {
			mu.lastRun.Store(&snap)
		}
	}()
	poolPrior := cfg.Engine.Stats()
	// clean flips only on the fully-successful exit; the acquisition
	// branches below hang their failure handling (quarantine, owned-
	// workspace rebuild) off it so error returns and panic unwinding
	// take the same path.
	clean := false
	var ws *exec.Workspace[T, S]
	switch {
	case cfg.Engine != nil:
		ws = exec.Masked[T, S](cfg.Engine, mu.sr, cfg.Accumulator,
			cfg.MarkerBits, mu.b.Cols, mu.rowCap, workers, len(mu.tiles))
		defer func() {
			if !clean {
				ws.Poison()
			}
			ws.Release()
		}()
	case mu.ws != nil && d < DegradeUnpooled:
		if !mu.inUse.CompareAndSwap(false, true) {
			return nil, fmt.Errorf("%w (give the Multiplier an exec.Engine for concurrent serving)",
				ErrConcurrentMultiply)
		}
		defer mu.inUse.Store(false)
		ws = mu.ws
		// The owned workspace has no pool to quarantine into; a failed
		// run rebuilds it fresh (at full width, for future undegraded
		// runs) so the next Multiply starts from pristine state. Runs
		// while inUse is still held, so no concurrent run sees the swap.
		defer func() {
			if !clean {
				mu.ws = exec.Masked[T, S](nil, mu.sr, mu.cfg.Accumulator,
					mu.cfg.MarkerBits, mu.b.Cols, mu.rowCap, mu.workers, len(mu.tiles))
			}
		}()
	default:
		// DegradeUnpooled with no engine of record: a fresh one-shot
		// workspace, discarded after the run.
		ws = exec.Masked[T, S](nil, mu.sr, cfg.Accumulator,
			cfg.MarkerBits, mu.b.Cols, mu.rowCap, workers, len(mu.tiles))
	}
	accs := ws.Accs[:workers]
	if cfg.Resilience != nil {
		defer armAccumChaos(cfg, accs)()
	}
	outs := ws.Outs[:len(mu.tiles)]
	// The accumulators persist across runs, so deltas against a per-run
	// snapshot keep each run's counts exact.
	prior := snapshotAccumStats(accs, scope)
	if err := runKernelSpanned(ctx, cfg, scope, workers, len(mu.tiles), func(worker, t int, wc *obs.WorkerCounters) {
		runTile(mu.sr, accs[worker], mu.m, mu.a, mu.b, cfg, mu.tiles[t], &outs[t], wc)
	}); err != nil {
		return nil, wrapRunErr(err)
	}
	c, err := assembleSpanned(ctx, cfg, scope, mu.a.Rows, mu.b.Cols, mu.tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordAccumDeltas(accs, prior, scope)
	recordPoolDelta(cfg, poolPrior, scope)
	clean = true
	return c, nil
}

// runConfig assembles one run's private Config — the κ override and the
// degradation rung applied — plus the effective worker counts. Kept
// write-free at the call site so the run's tile closure can capture the
// copy by value.
func (mu *Multiplier[T, S]) runConfig(d Degradation) (cfg Config, workers, pw int) {
	cfg = mu.cfg
	if bits := mu.kappaBits.Load(); bits != 0 {
		cfg.Kappa = math.Float64frombits(bits)
	}
	workers, pw = mu.workers, mu.planWorkers
	if d >= DegradeSerial {
		cfg.Workers, cfg.PlanWorkers, cfg.Schedule = 1, 1, sched.Static
		workers, pw = 1, 1
	}
	if d >= DegradeUnpooled {
		cfg.Engine = nil
	}
	return cfg, workers, pw
}

// SetKappa overrides the configured Eq. 3 threshold κ for subsequent
// Multiply calls. Non-positive values restore the constructed Config's
// κ. Safe to call concurrently with in-flight multiplies: each run
// reads the override once at start.
func (mu *Multiplier[T, S]) SetKappa(kappa float64) {
	if kappa <= 0 {
		mu.kappaBits.Store(0)
		return
	}
	mu.kappaBits.Store(math.Float64bits(kappa))
}

// Kappa returns the Eq. 3 threshold the next Multiply will use: the
// SetKappa override when present, the constructed Config's otherwise.
func (mu *Multiplier[T, S]) Kappa() float64 {
	if bits := mu.kappaBits.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return mu.cfg.Kappa
}

// LastRunStats returns the scoped stats snapshot of the most recent
// completed Multiply (isolated by its multiply sequence id, so
// overlapping runs on a shared recorder do not bleed in). ok is false
// until a run completes with a recorder configured.
func (mu *Multiplier[T, S]) LastRunStats() (obs.Stats, bool) {
	if s := mu.lastRun.Load(); s != nil {
		return *s, true
	}
	return obs.Stats{}, false
}

// runTilePlanned is the buffer-reusing tile body: out's staging slices
// are truncated or grown in place, never discarded. wc, when non-nil,
// accumulates the tile's rows, FLOPs, hybrid picks and gathered entries
// into the worker's counter block.
//
//spgemm:hotpath
func runTilePlanned[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T],
	m, a, b *sparse.CSR[T], cfg Config, tile tiling.Tile, out *exec.TileBuf[T],
	wc *obs.WorkerCounters,
) {
	if cap(out.RowNNZ) < tile.Rows() {
		out.RowNNZ = make([]int32, tile.Rows()) //lint:ignore hotpathalloc amortized: grows once per tile-height high-water mark
	}
	out.RowNNZ = out.RowNNZ[:tile.Rows()]
	inj := cfg.chaosInjector()
	for i := tile.Lo; i < tile.Hi; i++ {
		if inj != nil {
			// RowKernel seam: panics here exercise mid-tile unwinding with
			// the accumulator in an arbitrary intermediate state.
			//lint:ignore hotpathalloc allocates only when a fault fires, and the run dies with it
			chaos.StepHard(inj, chaos.RowKernel)
		}
		maskCols := m.RowCols(i)
		before := len(out.Cols)
		if len(maskCols) > 0 || cfg.Iteration == Vanilla {
			switch cfg.Iteration {
			case Vanilla:
				rowVanilla(sr, acc, a, b, i, wc)
			case MaskLoad:
				rowMaskLoad(sr, acc, a, b, i, maskCols, wc)
			case CoIter:
				rowCoIter(sr, acc, a, b, i, maskCols, wc)
			case Hybrid:
				rowHybrid(sr, acc, a, b, i, maskCols, cfg.Kappa, wc)
			}
			out.Cols, out.Vals = acc.Gather(maskCols, out.Cols, out.Vals)
		}
		out.RowNNZ[i-tile.Lo] = int32(len(out.Cols) - before)
	}
	if wc != nil {
		wc.Rows.Add(int64(tile.Rows()))
		// out.Cols starts empty in both entry paths, so its final length
		// is exactly this tile's emitted entry count.
		wc.Gathered.Add(int64(len(out.Cols)))
	}
}
