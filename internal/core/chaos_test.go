package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"maskedspgemm/internal/chaos"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// swapInjector routes Decide to a swappable Seeded injector, so one
// engine — whose Config.Chaos is fixed at construction — can serve an
// entire fault matrix with a fresh trigger set per cell.
type swapInjector struct {
	cur atomic.Pointer[chaos.Seeded]
}

func (s *swapInjector) Decide(p chaos.Point) chaos.Fault {
	if inj := s.cur.Load(); inj != nil {
		return inj.Decide(p)
	}
	return chaos.Fault{}
}

// runContained converts an escaping panic into an error, standing in
// for the facade's recover layer so the matrix can also drive faults at
// seams outside the scheduler's containment (workspace checkout and
// release, the plan-cache store).
func runContained(f func() (*sparse.CSR[float64], error)) (c *sparse.CSR[float64], err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("contained panic: %w", e)
				return
			}
			err = fmt.Errorf("contained panic: %v", r)
		}
	}()
	return f()
}

// typedChaosErr reports whether err belongs to the fault taxonomy a
// chaos run may legitimately surface.
func typedChaosErr(err error) bool {
	return errors.Is(err, ErrPanic) || errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrStalled) || errors.Is(err, chaos.ErrInjected)
}

// TestChaosMatrix drives a seeded fault through every injection point
// under every scheduling policy, all against one shared engine. The
// contract per cell: the fault run either fails with a typed error or
// succeeds bit-identically to the engineless reference; the engine's
// pool invariants hold immediately afterwards (no dirty or leaked
// workspace survived quarantine); and a clean rerun on the same engine
// reproduces the reference exactly.
func TestChaosMatrix(t *testing.T) {
	swap := &swapInjector{}
	eng := exec.New(exec.Config{Chaos: swap})
	sr := semiring.PlusTimes[float64]{}
	const seed = int64(0xC04F5)

	cells := []struct {
		p      chaos.Point
		k      chaos.Kind
		maxNth int64
	}{
		{chaos.WorkspaceCheckout, chaos.KindPanic, 1},
		{chaos.WorkspaceRelease, chaos.KindPanic, 1},
		{chaos.TileClaim, chaos.KindCancel, 8},
		{chaos.WorkerSpawn, chaos.KindPanic, 2},
		{chaos.AccumGrow, chaos.KindPanic, 1},
		{chaos.PlanStore, chaos.KindError, 1},
		{chaos.RowKernel, chaos.KindPressure, 16},
	}
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		for _, cell := range cells {
			t.Run(fmt.Sprintf("%v/%v/%v", policy, cell.p, cell.k), func(t *testing.T) {
				// Fresh operands per cell so the fault run builds (and can
				// fault in) its own plan instead of hitting the shared cache.
				r := rand.New(rand.NewSource(seed ^ int64(cell.p)<<16 ^ int64(policy)<<8))
				a := randMatrix(140, 140, 0.06, r)
				m := randMatrix(140, 140, 0.10, r)
				cfg := DefaultConfig()
				cfg.Schedule = policy
				cfg.Tiles = 16
				cfg.Workers = 4

				refCfg := cfg
				ref, err := MaskedSpGEMM[float64](sr, m, a, a, refCfg)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}

				sd := chaos.NewSeeded(seed)
				sd.ArmSeeded(cell.p, cell.k, cell.maxNth, time.Millisecond)
				swap.cur.Store(sd)
				cfg.Engine = eng
				cfg.Resilience = &Resilience{Chaos: swap}
				got, ferr := runContained(func() (*sparse.CSR[float64], error) {
					return MaskedSpGEMM[float64](sr, m, a, a, cfg)
				})
				swap.cur.Store(nil)
				switch {
				case ferr != nil:
					if !typedChaosErr(ferr) {
						t.Fatalf("fault run failed with untyped error: %v", ferr)
					}
				case !sparse.Equal(ref, got):
					t.Fatal("fault run succeeded but result differs from reference")
				}
				if err := eng.SelfCheck(); err != nil {
					t.Fatalf("pool invariants violated after fault: %v", err)
				}

				// Clean rerun on the same engine: the pool must serve a
				// pristine workspace and reproduce the reference exactly.
				cfg.Resilience = nil
				clean, err := MaskedSpGEMM[float64](sr, m, a, a, cfg)
				if err != nil {
					t.Fatalf("clean rerun: %v", err)
				}
				if !sparse.Equal(ref, clean) {
					t.Fatal("clean rerun differs from reference")
				}
				if err := eng.SelfCheck(); err != nil {
					t.Fatalf("pool invariants violated after clean rerun: %v", err)
				}
			})
		}
	}
}

// TestChaosStallWatchdog arms a long delay on the first tile claim of a
// single-worker run with a much shorter stall window: the watchdog must
// fail the run with ErrStalled carrying a *sched.StallError whose
// snapshot holds goroutine stacks.
func TestChaosStallWatchdog(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	a := randMatrix(100, 100, 0.08, r)
	sr := semiring.PlusTimes[float64]{}
	sd := chaos.NewSeeded(302)
	sd.Arm(chaos.TileClaim, chaos.KindDelay, 1, 500*time.Millisecond)

	cfg := DefaultConfig()
	cfg.Tiles = 16
	cfg.Workers = 1
	cfg.Resilience = &Resilience{Chaos: sd, StallTimeout: 25 * time.Millisecond}
	_, err := MaskedSpGEMM[float64](sr, a, a, a, cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var se *sched.StallError
	if !errors.As(err, &se) {
		t.Fatalf("error chain lacks *sched.StallError: %v", err)
	}
	if len(se.Stacks) == 0 {
		t.Fatal("stall verdict carries no goroutine stacks")
	}
	if se.Done >= se.Tiles {
		t.Fatalf("stall verdict claims %d/%d tiles done", se.Done, se.Tiles)
	}
}

// TestChaosMultiplierReuseAfterFault injects a panic into a shared-
// engine Multiplier's row kernel, then requires subsequent multiplies —
// same Multiplier, same engine — to recover bit-identical results, with
// the poisoned workspace quarantined rather than reused.
func TestChaosMultiplierReuseAfterFault(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	a := randMatrix(120, 120, 0.08, r)
	sr := semiring.PlusTimes[float64]{}
	swap := &swapInjector{}
	eng := exec.New(exec.Config{Chaos: swap})

	cfg := DefaultConfig()
	cfg.Tiles = 8
	cfg.Workers = 2
	cfg.Engine = eng
	cfg.Resilience = &Resilience{Chaos: swap}

	ref, err := MaskedSpGEMM[float64](sr, a, a, a, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mu, err := NewMultiplier[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	quarantinesBefore := eng.Stats().Quarantines
	sd := chaos.NewSeeded(304)
	sd.Arm(chaos.RowKernel, chaos.KindPanic, 5, 0)
	swap.cur.Store(sd)
	if _, err := mu.Multiply(); !errors.Is(err, ErrPanic) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("faulted multiply: %v, want ErrPanic matching chaos.ErrInjected", err)
	}
	swap.cur.Store(nil)
	if q := eng.Stats().Quarantines; q != quarantinesBefore+1 {
		t.Fatalf("quarantines = %d, want %d", q, quarantinesBefore+1)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("pool invariants violated after quarantine: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatalf("reuse %d after fault: %v", i, err)
		}
		if !sparse.Equal(ref, got) {
			t.Fatalf("reuse %d after fault differs from reference", i)
		}
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("pool invariants violated after reuse: %v", err)
	}
}

// TestChaosDegradedLadderRecovers proves MultiplyDegraded's rungs
// escape a persistently faulting engine path: the unpooled rung uses no
// pooled workspace, so an injector that always panics on checkout
// cannot touch it.
func TestChaosDegradedLadderRecovers(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	a := randMatrix(90, 90, 0.1, r)
	sr := semiring.PlusTimes[float64]{}
	always := chaos.Func(func(p chaos.Point) chaos.Fault {
		if p == chaos.WorkspaceCheckout {
			return chaos.Fault{Kind: chaos.KindPanic}
		}
		return chaos.Fault{}
	})
	eng := exec.New(exec.Config{Chaos: always})

	cfg := DefaultConfig()
	cfg.Tiles = 8
	cfg.Workers = 2
	cfg.Engine = eng

	ref, err := MaskedSpGEMM[float64](sr, a, a, a, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mu, err := NewMultiplier[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The engine path panics at every checkout: containment converts it,
	// but no amount of plain retrying helps.
	if _, err := runContained(func() (*sparse.CSR[float64], error) { return mu.Multiply() }); err == nil {
		t.Fatal("engine-path multiply unexpectedly survived a checkout fault")
	}
	// The unpooled rung sidesteps the engine entirely.
	got, err := mu.MultiplyDegraded(nil, DegradeUnpooled)
	if err != nil {
		t.Fatalf("degraded multiply: %v", err)
	}
	if !sparse.Equal(ref, got) {
		t.Fatal("degraded multiply differs from reference")
	}
}
