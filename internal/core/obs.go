package core

import (
	"context"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// schedRun dispatches tiles to workers under the configured policy,
// threading through the resilience knobs (chaos seams, stall watchdog).
func schedRun(ctx context.Context, cfg Config, workers, tiles int, fn func(worker, t int)) error {
	if cfg.Resilience == nil {
		return sched.RunChunkedE(ctx, cfg.Schedule, workers, tiles, cfg.GuidedMinChunk, fn)
	}
	return sched.RunChunkedOpts(ctx, cfg.Schedule, workers, tiles, sched.RunOpts{
		MinChunk:     cfg.GuidedMinChunk,
		Chaos:        cfg.Resilience.Chaos,
		StallTimeout: cfg.Resilience.StallTimeout,
	}, fn)
}

// solveRunOpts assembles the wave executor's options from the config's
// resilience knobs plus the run's wave-stats block.
func solveRunOpts(cfg Config, wstats *sched.WaveStats) sched.RunOpts {
	opt := sched.RunOpts{MinChunk: cfg.GuidedMinChunk, WaveStats: wstats}
	if cfg.Resilience != nil {
		opt.Chaos = cfg.Resilience.Chaos
		opt.StallTimeout = cfg.Resilience.StallTimeout
	}
	return opt
}

// runSolveWavesSpanned executes a wave plan under the exec.solve span
// and pprof label, handing each tile callback the worker's counter
// block (nil when observability is off).
func runSolveWavesSpanned(
	ctx context.Context, cfg Config, scope *obs.RunScope, workers int,
	plan sched.WavePlan, wstats *sched.WaveStats,
	run func(worker, t int, wc *obs.WorkerCounters),
) error {
	opt := solveRunOpts(cfg, wstats)
	if !scope.Enabled() {
		return sched.RunWavesOpts(ctx, cfg.Schedule, workers, plan, opt, func(worker, t int) {
			run(worker, t, nil)
		})
	}
	slots := scope.WorkerSlots(workers)
	defer scope.Span(obs.PhaseExecSolve)()
	var err error
	scope.Do(ctx, obs.PhaseExecSolve, func() {
		err = sched.RunWavesOpts(ctx, cfg.Schedule, workers, plan, opt, func(worker, t int) {
			wc := &slots[worker]
			wc.Tiles.Add(1)
			run(worker, t, wc)
		})
	})
	return err
}

// runSolveSerialSpanned runs the serial substitution loop under the
// exec.solve span and label; without a scope it calls fn directly, so
// the warm engine-backed path stays allocation-free.
func runSolveSerialSpanned(ctx context.Context, scope *obs.RunScope, fn func() error) error {
	if !scope.Enabled() {
		return fn()
	}
	defer scope.Span(obs.PhaseExecSolve)()
	var err error
	scope.Do(ctx, obs.PhaseExecSolve, func() {
		err = fn()
	})
	return err
}

// This file is the glue between the kernel pipeline and the obs
// recorder: phase-spanned plan construction, per-run accumulator
// counter deltas, and the spanned/labelled wrappers around the numeric
// kernel and the assembly. Every helper takes the run's *obs.RunScope
// (nil when observability is off, so the uninstrumented pipeline takes
// the exact pre-observability paths); the scope isolates the run's
// spans and counters under its multiply sequence id and folds them into
// the recorder's cumulative totals exactly once at End.

// planFor resolves the execution plan — tile partition plus accumulator
// row-capacity bound — through the engine's fingerprint-keyed cache
// when cfg.Engine is set, building (under the scope's plan spans) on a
// miss. Without an engine every call builds; a cached hit records no
// plan spans because no plan work happened.
func planFor[T sparse.Number](
	ctx context.Context, cfg Config, pw int, m, a, b *sparse.CSR[T], scope *obs.RunScope,
) (exec.Plan, error) {
	build := func() (exec.Plan, error) {
		tiles, err := makeTiles(ctx, cfg, pw, a, b, m, scope)
		if err != nil {
			return exec.Plan{}, err
		}
		rowCap, err := rowCapacity(ctx, cfg, pw, a, b, m, scope)
		if err != nil {
			return exec.Plan{}, err
		}
		return exec.Plan{Tiles: tiles, RowCap: rowCap}, nil
	}
	if cfg.Engine == nil {
		return build()
	}
	key := exec.PlanKey{
		M:       exec.IDOf(m),
		A:       exec.IDOf(a),
		B:       exec.IDOf(b),
		Tiles:   cfg.Tiles,
		Tiling:  cfg.Tiling,
		Vanilla: cfg.Iteration == Vanilla,
	}
	return cfg.Engine.Plan(key, build)
}

// recordPoolDelta folds the engine's pool-counter movement since prior
// into the run scope. When several concurrent runs share the engine the
// delta includes their overlapping traffic — attribution is per engine.
func recordPoolDelta(cfg Config, prior exec.PoolStats, scope *obs.RunScope) {
	if !scope.Enabled() || cfg.Engine == nil {
		return
	}
	d := cfg.Engine.Stats().Sub(prior)
	scope.AddPool(obs.PoolCounters{
		Hits:        d.Hits,
		Misses:      d.Misses,
		Steals:      d.Steals,
		Resizes:     d.Resizes,
		Evictions:   d.Evictions,
		Quarantined: d.Quarantines,
		PlanHits:    d.PlanHits,
		PlanMisses:  d.PlanMisses,
	})
}

// makeTiles builds the tile partition. Without a scope it defers to
// tiling.MakeParallelE unchanged; with one, the FLOP-balanced pipeline
// is unrolled so each plan phase — Eq. 2 row-work estimation, prefix
// sum, boundary placement — runs under its own span and pprof label.
func makeTiles[T sparse.Number](
	ctx context.Context, cfg Config, pw int, a, b, m *sparse.CSR[T], scope *obs.RunScope,
) ([]tiling.Tile, error) {
	if !scope.Enabled() {
		return tiling.MakeParallelE(ctx, cfg.Tiling, cfg.Tiles, pw, a, b, m)
	}
	switch cfg.Tiling {
	case tiling.Uniform:
		defer scope.Span(obs.PhasePlanTileBuild)()
		return tiling.UniformTiles(a.Rows, cfg.Tiles), nil
	case tiling.FlopBalanced:
		var work, prefix []int64
		var err error
		end := scope.Span(obs.PhasePlanRowWork)
		scope.Do(ctx, obs.PhasePlanRowWork, func() {
			work, err = tiling.RowWorkParallelE(ctx, a, b, m, pw)
		})
		end()
		if err != nil {
			return nil, err
		}
		end = scope.Span(obs.PhasePlanPrefixSum)
		scope.Do(ctx, obs.PhasePlanPrefixSum, func() {
			prefix, err = tiling.PrefixSumE(ctx, work, pw)
		})
		end()
		if err != nil {
			return nil, err
		}
		defer scope.Span(obs.PhasePlanTileBuild)()
		return tiling.BalancedFromPrefix(prefix, cfg.Tiles), nil
	default:
		return tiling.MakeParallelE(ctx, cfg.Tiling, cfg.Tiles, pw, a, b, m)
	}
}

// rowCapacity computes the accumulator row-entry bound (§III-C sizing)
// under the plan.row_cap span: max nnz of a mask row, or the flop upper
// bound for the vanilla space.
func rowCapacity[T sparse.Number](
	ctx context.Context, cfg Config, pw int, a, b, m *sparse.CSR[T], scope *obs.RunScope,
) (int64, error) {
	defer scope.Span(obs.PhasePlanRowCap)()
	rowCap, err := maxRowNNZ(ctx, m, pw)
	if err != nil {
		return 0, err
	}
	if cfg.Iteration == Vanilla {
		_, maxFlops, err := tiling.FlopCountParallelE(ctx, a, b, pw)
		if err != nil {
			return 0, err
		}
		rowCap = maxFlops
		if rowCap > int64(b.Cols) {
			rowCap = int64(b.Cols)
		}
	}
	return rowCap, nil
}

// snapshotAccumStats enables the gated accumulator counters and returns
// their current values, so the post-run delta isolates this run even
// when the accumulators are reused (Multiplier). Nil scope → nil.
func snapshotAccumStats[T sparse.Number](accs []accum.Accumulator[T], scope *obs.RunScope) []accum.Stats {
	if !scope.Enabled() {
		return nil
	}
	prior := make([]accum.Stats, len(accs))
	for w, ac := range accs {
		if in, ok := ac.(accum.Instrumented); ok {
			in.EnableStats()
			prior[w] = in.AccumStats()
		}
	}
	return prior
}

// recordAccumDeltas folds each accumulator's counter delta since prior
// into the run scope and marks the run complete.
func recordAccumDeltas[T sparse.Number](accs []accum.Accumulator[T], prior []accum.Stats, scope *obs.RunScope) {
	if !scope.Enabled() || prior == nil {
		return
	}
	var delta accum.Stats
	for w, ac := range accs {
		if in, ok := ac.(accum.Instrumented); ok {
			delta.Add(in.AccumStats().Sub(prior[w]))
		}
	}
	scope.AddAccum(obs.AccumCounters{
		MarkerClears:   delta.Clears,
		TableGrows:     delta.Grows,
		HashProbes:     delta.Probes,
		HashCollisions: delta.Collisions,
	})
	scope.MarkComplete()
}

// runKernelSpanned executes the tile scheduler under the exec.kernel
// span and pprof label. run receives the worker's counter block (nil
// when disabled) and is also bracketed by a runtime/trace region per
// tile batch while tracing is active.
func runKernelSpanned(
	ctx context.Context, cfg Config, scope *obs.RunScope, workers, tiles int,
	run func(worker, t int, wc *obs.WorkerCounters),
) error {
	if !scope.Enabled() {
		return schedRun(ctx, cfg, workers, tiles, func(worker, t int) {
			run(worker, t, nil)
		})
	}
	slots := scope.WorkerSlots(workers)
	// Tile-batch progress events for the flight recorder: every worker
	// emits one event per stride tiles (~32 per run across workers), so
	// a stall dump shows how far the tile loop got without flooding the
	// ring on large runs.
	stride := int64(tiles / 32)
	if stride < 1 {
		stride = 1
	}
	defer scope.Span(obs.PhaseExecKernel)()
	var err error
	scope.Do(ctx, obs.PhaseExecKernel, func() {
		err = schedRun(ctx, cfg, workers, tiles, func(worker, t int) {
			endRegion := scope.TileRegion(ctx)
			wc := &slots[worker]
			if n := wc.Tiles.Add(1); n%stride == 0 {
				scope.Event(obs.EventTileBatch, obs.PhaseExecKernel, int64(t), n)
			}
			run(worker, t, wc)
			endRegion()
		})
	})
	return err
}

// assembleSpanned is assembleE under the exec.assemble span and label.
func assembleSpanned[T sparse.Number](
	ctx context.Context, cfg Config, scope *obs.RunScope, rows, cols int,
	tiles []tiling.Tile, outs []exec.TileBuf[T], p int,
) (*sparse.CSR[T], error) {
	if !scope.Enabled() {
		return assembleE(ctx, rows, cols, tiles, outs, p)
	}
	defer scope.Span(obs.PhaseExecAssemble)()
	var c *sparse.CSR[T]
	var err error
	scope.Do(ctx, obs.PhaseExecAssemble, func() {
		c, err = assembleE(ctx, rows, cols, tiles, outs, p)
	})
	return c, err
}
