package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func TestMaskedSpGEMMDotMatchesSaxpy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := r.Intn(25)+1, r.Intn(25)+1, r.Intn(25)+1
		a := randMatrix(rows, inner, 0.25, r)
		b := randMatrix(inner, cols, 0.25, r)
		m := randMatrix(rows, cols, 0.3, r)
		cfg := DefaultConfig()
		cfg.Tiles = r.Intn(5) + 1
		cfg.Workers = 2

		want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
		if err != nil {
			return false
		}
		got, err := MaskedSpGEMMDot[float64](semiring.PlusTimes[float64]{}, m, a, sparse.Transpose(b), cfg)
		if err != nil {
			return false
		}
		if got.Check() != nil {
			return false
		}
		return sparse.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMaskedSpGEMMDotSymmetric(t *testing.T) {
	// On a symmetric A, C = A ⊙ (A×A) can pass A itself as Bᵀ.
	r := rand.New(rand.NewSource(91))
	a := sparse.Symmetrize(randMatrix(40, 40, 0.1, r))
	cfg := DefaultConfig()
	cfg.Workers = 2
	want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MaskedSpGEMMDot[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("dot formulation differs on symmetric operands")
	}
}

func TestMaskedSpGEMMDotErrors(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	a := randMatrix(5, 6, 0.5, r)
	m := randMatrix(5, 7, 0.5, r)
	bT := randMatrix(7, 9, 0.5, r) // wrong inner dimension (9 != 6)
	if _, err := MaskedSpGEMMDot[float64](semiring.PlusTimes[float64]{}, m, a, bT, DefaultConfig()); err == nil {
		t.Error("shape mismatch accepted")
	}
	z := sparse.NewCSR[float64](0, 0, 0)
	if got, err := MaskedSpGEMMDot[float64](semiring.PlusTimes[float64]{}, z, z, z, DefaultConfig()); err != nil || got.Rows != 0 {
		t.Errorf("zero-rows: %v %v", got, err)
	}
}

func TestSparseDot(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	cases := []struct {
		aCols, bCols []sparse.Index
		aVals, bVals []float64
		want         float64
		hit          bool
	}{
		{[]sparse.Index{1, 3, 5}, []sparse.Index{3, 5, 9}, []float64{1, 2, 3}, []float64{4, 5, 6}, 2*4 + 3*5, true},
		{[]sparse.Index{1, 2}, []sparse.Index{3, 4}, []float64{1, 1}, []float64{1, 1}, 0, false},
		{nil, []sparse.Index{1}, nil, []float64{1}, 0, false},
		{[]sparse.Index{7}, []sparse.Index{7}, []float64{3}, []float64{9}, 27, true},
	}
	for i, c := range cases {
		got, hit := sparseDot(sr, c.aCols, c.aVals, c.bCols, c.bVals)
		if hit != c.hit || (hit && got != c.want) {
			t.Errorf("case %d: got (%v,%v), want (%v,%v)", i, got, hit, c.want, c.hit)
		}
	}
}
