package core

import (
	"math/rand"
	"testing"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// lowerPlanCutoff drops the serial crossover so the parallel assembly and
// plan passes run on test-sized inputs, restoring it when the test ends.
func lowerPlanCutoff(t *testing.T) {
	t.Helper()
	old := planSerialCutoff
	planSerialCutoff = 1
	t.Cleanup(func() { planSerialCutoff = old })
}

// makeOuts builds per-tile outputs with the given per-row nnz counts,
// synthesizing distinguishable column/value payloads so a copy to the
// wrong offset is detected.
func makeOuts(tiles []tiling.Tile, rowNNZ []int) []exec.TileBuf[float64] {
	outs := make([]exec.TileBuf[float64], len(tiles))
	for t, tl := range tiles {
		for r := tl.Lo; r < tl.Hi; r++ {
			outs[t].RowNNZ = append(outs[t].RowNNZ, int32(rowNNZ[r]))
			for j := 0; j < rowNNZ[r]; j++ {
				outs[t].Cols = append(outs[t].Cols, sparse.Index(j))
				outs[t].Vals = append(outs[t].Vals, float64(r*1000+j))
			}
		}
	}
	return outs
}

func assembleCase(t *testing.T, rows, cols int, tiles []tiling.Tile, rowNNZ []int) {
	t.Helper()
	outs := makeOuts(tiles, rowNNZ)
	want := assemble(rows, cols, tiles, outs, 1)
	if err := want.Check(); err != nil {
		t.Fatalf("serial assemble malformed: %v", err)
	}
	for i := 0; i < rows; i++ {
		if got := want.RowNNZ(i); got != int64(rowNNZ[i]) {
			t.Fatalf("row %d has %d entries, want %d", i, got, rowNNZ[i])
		}
	}
	lowerPlanCutoff(t)
	for _, p := range []int{2, 3, 8} {
		got := assemble(rows, cols, tiles, outs, p)
		if !sparse.Equal(want, got) {
			t.Fatalf("p=%d: parallel assemble differs from serial", p)
		}
	}
}

func TestAssembleZeroNNZTiles(t *testing.T) {
	// Middle tiles produce nothing: their RowPtr spans must stay flat and
	// the surrounding payloads must land contiguously.
	tiles := []tiling.Tile{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 5}, {Lo: 5, Hi: 6}, {Lo: 6, Hi: 9}}
	rowNNZ := []int{3, 1, 0, 0, 0, 2, 0, 0, 4}
	assembleCase(t, 9, 8, tiles, rowNNZ)
}

func TestAssembleAllEmptyRows(t *testing.T) {
	// Empty mask rows everywhere — zero-nnz result, valid RowPtr.
	tiles := []tiling.Tile{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 7}}
	assembleCase(t, 7, 5, tiles, make([]int, 7))
}

func TestAssembleSingleTile(t *testing.T) {
	assembleCase(t, 4, 6, []tiling.Tile{{Lo: 0, Hi: 4}}, []int{2, 0, 3, 1})
}

func TestAssembleZeroRows(t *testing.T) {
	for _, p := range []int{1, 4} {
		c := assemble[float64](0, 5, nil, nil, p)
		if c.Rows != 0 || c.Cols != 5 || c.NNZ() != 0 || len(c.RowPtr) != 1 {
			t.Errorf("p=%d: zero-row assemble = %+v", p, c)
		}
	}
}

func TestAssembleParallelRandomized(t *testing.T) {
	lowerPlanCutoff(t)
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 30; trial++ {
		rows := r.Intn(200) + 1
		rowNNZ := make([]int, rows)
		for i := range rowNNZ {
			if r.Intn(3) > 0 { // leave ~1/3 of the rows empty
				rowNNZ[i] = r.Intn(6)
			}
		}
		tiles := tiling.UniformTiles(rows, r.Intn(16)+1)
		assembleCase(t, rows, 10, tiles, rowNNZ)
	}
}

func TestMaskedSpGEMMPlanWorkersBitIdentical(t *testing.T) {
	// The full kernel with parallel plan construction and assembly must
	// be bit-identical to the serial plan, across schedules.
	lowerPlanCutoff(t)
	oldTiling := tiling.SetParallelCutoffForTest(1)
	t.Cleanup(func() { tiling.SetParallelCutoffForTest(oldTiling) })

	r := rand.New(rand.NewSource(71))
	a := randMatrix(120, 120, 0.06, r)
	base := DefaultConfig()
	base.Workers = 2
	base.Tiles = 16
	base.PlanWorkers = 1
	want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pw := range []int{2, 4} {
		for _, pol := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
			cfg := base
			cfg.PlanWorkers = pw
			cfg.Schedule = pol
			cfg.GuidedMinChunk = 2
			got, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.Equal(want, got) {
				t.Errorf("pw=%d %v: result differs from serial-plan run", pw, pol)
			}
		}
	}
}
