package core_test

// Engine-level steady-state checks: these run the real graph workloads
// (k-truss, batched BC) through a shared exec.Engine and pin, via the
// pool counters, that warm iterations construct zero workspaces — every
// checkout is a hit or a steal, every buffer is recycled. They live in
// the external test package so they can drive internal/graph without an
// import cycle.

import (
	"math/rand"
	"sync"
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func randGraph(n int, deg int, seed int64) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](n, n, int64(n*deg*2))
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			coo.Add(sparse.Index(i), sparse.Index(j), 1)
			coo.Add(sparse.Index(j), sparse.Index(i), 1)
		}
	}
	a := coo.ToCSR()
	// Collapse duplicate edges to unit weight (simple graph).
	for p := range a.Val {
		a.Val[p] = 1
	}
	return a
}

// TestSharedEngineConcurrentMultiplies drives independent masked
// multiplies through ONE engine from many goroutines (run under -race by
// `make race`) and checks each result is bit-identical to the serial
// reference.
func TestSharedEngineConcurrentMultiplies(t *testing.T) {
	a := randGraph(150, 4, 3)
	sr := semiring.PlusPair[float64]{}
	serialCfg := core.DefaultConfig()
	serialCfg.Tiles = 8
	want, err := core.MaskedSpGEMM[float64](sr, a, a, a, serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	eng := exec.New(exec.Config{})
	cfg := serialCfg
	cfg.Engine = eng

	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := core.MaskedSpGEMM[float64](sr, a, a, a, cfg)
				if err != nil {
					errs <- err
					return
				}
				if !sparse.Equal(want, got) {
					t.Error("concurrent engine-backed result differs from serial")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Errorf("48 multiplies through one engine recycled nothing: %+v", st)
	}
}

// TestWarmKTrussZeroWorkspaceAllocs pins the steady-state contract on
// the paper's iterative workload: after one cold k-truss run has
// populated the pool, a second identical run constructs zero workspaces
// (no misses) and grows none (no resizes) — every round of every rerun
// recycles pooled buffers.
func TestWarmKTrussZeroWorkspaceAllocs(t *testing.T) {
	a := randGraph(120, 6, 11)
	eng := exec.New(exec.Config{})
	cfg := core.DefaultConfig()
	cfg.Engine = eng
	cfg.Tiles = 8
	cfg.Workers = 2

	cold, err := graph.KTruss(a, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	warm, err := graph.KTruss(a, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(cold.Truss, warm.Truss) || cold.Rounds != warm.Rounds {
		t.Fatal("warm k-truss result differs from cold")
	}
	d := eng.Stats().Sub(prior)
	if d.Misses != 0 {
		t.Errorf("warm k-truss constructed %d workspaces, want 0 (%+v)", d.Misses, d)
	}
	if d.Resizes != 0 {
		t.Errorf("warm k-truss grew workspaces %d times, want 0 (%+v)", d.Resizes, d)
	}
	if d.Hits == 0 {
		t.Errorf("warm k-truss recycled nothing: %+v", d)
	}
}

// TestWarmBCBatchZeroWorkspaceAllocs is the same steady-state pin for
// batched betweenness centrality, which alternates the complement-mask
// (dense scratch) and mask (accumulator) kernels — both pools must
// serve the warm run entirely from idle workspaces.
func TestWarmBCBatchZeroWorkspaceAllocs(t *testing.T) {
	a := randGraph(100, 4, 17)
	eng := exec.New(exec.Config{})
	cfg := core.DefaultConfig()
	cfg.Engine = eng
	cfg.Tiles = 4
	cfg.Workers = 2

	sources := []int{0, 3, 7, 11}
	cold, err := graph.BetweennessCentralityBatch(a, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	warm, err := graph.BetweennessCentralityBatch(a, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold {
		if cold[v] != warm[v] {
			t.Fatalf("warm BC differs at vertex %d: %v vs %v", v, cold[v], warm[v])
		}
	}
	d := eng.Stats().Sub(prior)
	if d.Misses != 0 {
		t.Errorf("warm BC-batch constructed %d workspaces, want 0 (%+v)", d.Misses, d)
	}
	if d.Resizes != 0 {
		t.Errorf("warm BC-batch grew workspaces %d times, want 0 (%+v)", d.Resizes, d)
	}
	if d.Hits == 0 {
		t.Errorf("warm BC-batch recycled nothing: %+v", d)
	}
}

// TestWarmFusedKTrussZeroWorkspaceAllocs pins the steady-state contract
// on the fused formulation: a warm fused k-truss run (one select-fused
// multiply per round, the support matrix never materialized) must serve
// every workspace — including the fused pipeline's tile staging buffers
// — from the pool, constructing and growing nothing.
func TestWarmFusedKTrussZeroWorkspaceAllocs(t *testing.T) {
	a := randGraph(120, 6, 11)
	eng := exec.New(exec.Config{})
	cfg := core.DefaultConfig()
	cfg.Engine = eng
	cfg.Tiles = 8
	cfg.Workers = 2

	cold, err := graph.KTrussFused(a, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	warm, err := graph.KTrussFused(a, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(cold.Truss, warm.Truss) || cold.Rounds != warm.Rounds {
		t.Fatal("warm fused k-truss result differs from cold")
	}
	d := eng.Stats().Sub(prior)
	if d.Misses != 0 {
		t.Errorf("warm fused k-truss constructed %d workspaces, want 0 (%+v)", d.Misses, d)
	}
	if d.Resizes != 0 {
		t.Errorf("warm fused k-truss grew workspaces %d times, want 0 (%+v)", d.Resizes, d)
	}
	if d.Hits == 0 {
		t.Errorf("warm fused k-truss recycled nothing: %+v", d)
	}
}

// TestWarmFusedChainZeroWorkspaceAllocs is the same pin for the fused
// two-multiply chain, whose staged intermediate tiles ride per-worker
// workspace buffers rather than a materialized CSR.
func TestWarmFusedChainZeroWorkspaceAllocs(t *testing.T) {
	a := randGraph(100, 5, 29)
	sr := semiring.PlusTimes[float64]{}
	eng := exec.New(exec.Config{})
	cfg := core.DefaultConfig()
	cfg.Engine = eng
	cfg.Tiles = 8
	cfg.Workers = 2

	cold, err := core.FusedMaskedSpGEMM[float64](sr, a, a, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	warm, err := core.FusedMaskedSpGEMM[float64](sr, a, a, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(cold, warm) {
		t.Fatal("warm fused chain result differs from cold")
	}
	d := eng.Stats().Sub(prior)
	if d.Misses != 0 {
		t.Errorf("warm fused chain constructed %d workspaces, want 0 (%+v)", d.Misses, d)
	}
	if d.Resizes != 0 {
		t.Errorf("warm fused chain grew workspaces %d times, want 0 (%+v)", d.Resizes, d)
	}
}

// TestWarmFrontierAlgorithmsZeroWorkspaceAllocs covers the vector
// kernels: warm BFS / label-prop CC / SSSP runs against a shared engine
// must serve their dense traversal scratch entirely from the pool.
func TestWarmFrontierAlgorithmsZeroWorkspaceAllocs(t *testing.T) {
	a := randGraph(200, 3, 23)
	eng := exec.New(exec.Config{})

	if _, err := graph.BFSWithEngine(a, 0, core.Auto, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.ConnectedComponentsLabelPropWithEngine(a, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.SSSPWithEngine(a, 0, eng); err != nil {
		t.Fatal(err)
	}
	prior := eng.Stats()
	if _, err := graph.BFSWithEngine(a, 1, core.Auto, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.ConnectedComponentsLabelPropWithEngine(a, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.SSSPWithEngine(a, 1, eng); err != nil {
		t.Fatal(err)
	}
	d := eng.Stats().Sub(prior)
	if d.Misses != 0 {
		t.Errorf("warm frontier runs constructed %d workspaces, want 0 (%+v)", d.Misses, d)
	}
}
