package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// faultAccum decorates an accumulator with a hook that fires at every
// BeginRow — the injection point for panics and cancellations that the
// fault-containment tests drive through the full kernel stack.
type faultAccum struct {
	inner      accum.Accumulator[float64]
	onBeginRow func()
}

func (f *faultAccum) BeginRow() {
	f.onBeginRow()
	f.inner.BeginRow()
}
func (f *faultAccum) LoadMask(cols []sparse.Index)     { f.inner.LoadMask(cols) }
func (f *faultAccum) Update(j sparse.Index, x float64) { f.inner.Update(j, x) }
func (f *faultAccum) UpdateMasked(j sparse.Index, x float64) bool {
	return f.inner.UpdateMasked(j, x)
}
func (f *faultAccum) Gather(maskCols []sparse.Index, cols []sparse.Index, vals []float64) ([]sparse.Index, []float64) {
	return f.inner.Gather(maskCols, cols, vals)
}

// TestKernelPanicContained injects a panic into a worker mid-tile for
// every scheduling policy and requires the kernel to return ErrPanic —
// with the original panic value recoverable via errors.As — instead of
// crashing the process.
func TestKernelPanicContained(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	a := randMatrix(120, 120, 0.08, r)
	sr := semiring.PlusTimes[float64]{}
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		cfg := DefaultConfig()
		cfg.Schedule = policy
		cfg.Tiles = 16
		cfg.Workers = 4
		var rows atomic.Int32
		_, err := maskedRun(sr, a, a, a, cfg, func(inner accum.Accumulator[float64]) accum.Accumulator[float64] {
			return &faultAccum{inner: inner, onBeginRow: func() {
				if rows.Add(1) == 7 {
					panic("injected kernel fault")
				}
			}}
		})
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("%v: err = %v, want ErrPanic", policy, err)
		}
		var pe *sched.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%v: error chain lacks *sched.PanicError: %v", policy, err)
		}
		if pe.Value != "injected kernel fault" {
			t.Fatalf("%v: panic value not preserved: %v", policy, pe.Value)
		}
	}
}

// TestKernelCancelMidRun cancels the context from inside a worker and
// requires ErrCanceled, matching both the sentinel and the context
// package's error.
func TestKernelCancelMidRun(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	a := randMatrix(150, 150, 0.08, r)
	sr := semiring.PlusTimes[float64]{}
	for _, policy := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Schedule = policy
		cfg.Tiles = 16
		cfg.Workers = 4
		cfg.Context = ctx
		var rows atomic.Int32
		_, err := maskedRun(sr, a, a, a, cfg, func(inner accum.Accumulator[float64]) accum.Accumulator[float64] {
			return &faultAccum{inner: inner, onBeginRow: func() {
				if rows.Add(1) == 5 {
					cancel()
				}
			}}
		})
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", policy, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v does not match context.Canceled", policy, err)
		}
	}
}

// TestKernelPreCancelled checks every kernel formulation rejects an
// already-cancelled context without doing any work.
func TestKernelPreCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	a := randMatrix(40, 40, 0.2, r)
	sr := semiring.PlusTimes[float64]{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Context = ctx

	if _, err := MaskedSpGEMM[float64](sr, a, a, a, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MaskedSpGEMM: %v, want ErrCanceled", err)
	}
	if _, err := MaskedSpGEMMComp[float64](sr, a, a, a, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MaskedSpGEMMComp: %v, want ErrCanceled", err)
	}
	if _, err := MaskedSpGEMM2D[float64](sr, a, a, a, cfg, 4); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MaskedSpGEMM2D: %v, want ErrCanceled", err)
	}
	if _, err := MaskedSpGEMMDot[float64](sr, a, a, a, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MaskedSpGEMMDot: %v, want ErrCanceled", err)
	}
	if _, err := NewMultiplier[float64](sr, a, a, a, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("NewMultiplier: %v, want ErrCanceled", err)
	}
}

// TestMultiplierReusableAfterCancel requires that a cancelled Multiply
// leaves the plan fully intact: the next uncancelled call must produce
// a result bit-identical to a never-cancelled reference.
func TestMultiplierReusableAfterCancel(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	a := randMatrix(100, 100, 0.1, r)
	sr := semiring.PlusTimes[float64]{}
	cfg := DefaultConfig()
	cfg.Tiles = 8
	cfg.Workers = 2

	ref, err := MaskedSpGEMM[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := NewMultiplier[float64](sr, a, a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if _, err := mu.MultiplyCtx(ctx); !errors.Is(err, ErrCanceled) {
			t.Fatalf("cancelled multiply %d: %v, want ErrCanceled", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		got, err := mu.Multiply()
		if err != nil {
			t.Fatalf("reuse after cancel %d: %v", i, err)
		}
		if !sparse.Equal(ref, got) {
			t.Fatalf("reuse after cancel %d: result differs from reference", i)
		}
	}
}

// TestConfigValidateRejects drives every invalid enum value and
// out-of-range knob through Validate and requires an ErrConfig-wrapped
// rejection — the guarantee that the panic sites in sched, tiling,
// accum and the kernel dispatch are unreachable for validated configs.
func TestConfigValidateRejects(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"iteration -1", mutate(func(c *Config) { c.Iteration = IterationSpace(-1) })},
		{"iteration 99", mutate(func(c *Config) { c.Iteration = IterationSpace(99) })},
		{"accumulator -1", mutate(func(c *Config) { c.Accumulator = accum.Kind(-1) })},
		{"accumulator 99", mutate(func(c *Config) { c.Accumulator = accum.Kind(99) })},
		{"marker bits 0", mutate(func(c *Config) { c.MarkerBits = 0 })},
		{"marker bits 7", mutate(func(c *Config) { c.MarkerBits = 7 })},
		{"marker bits 128", mutate(func(c *Config) { c.MarkerBits = 128 })},
		{"schedule -1", mutate(func(c *Config) { c.Schedule = sched.Policy(-1) })},
		{"schedule 99", mutate(func(c *Config) { c.Schedule = sched.Policy(99) })},
		{"tiling -1", mutate(func(c *Config) { c.Tiling = tiling.Strategy(-1) })},
		{"tiling 99", mutate(func(c *Config) { c.Tiling = tiling.Strategy(99) })},
		{"tiles 0", mutate(func(c *Config) { c.Tiles = 0 })},
		{"tiles negative", mutate(func(c *Config) { c.Tiles = -5 })},
		{"hybrid kappa 0", mutate(func(c *Config) { c.Kappa = 0 })},
		{"hybrid kappa negative", mutate(func(c *Config) { c.Kappa = -1 })},
		{"workers negative", mutate(func(c *Config) { c.Workers = -1 })},
		{"plan workers negative", mutate(func(c *Config) { c.PlanWorkers = -3 })},
		{"guided chunk negative", mutate(func(c *Config) { c.GuidedMinChunk = -1 })},
	}
	r := rand.New(rand.NewSource(205))
	a := randMatrix(10, 10, 0.3, r)
	sr := semiring.PlusTimes[float64]{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("err = %v does not wrap ErrConfig", err)
			}
			// The full kernel path must reject it identically, not panic.
			if _, kerr := MaskedSpGEMM[float64](sr, a, a, a, tc.cfg); !errors.Is(kerr, ErrConfig) {
				t.Fatalf("kernel err = %v does not wrap ErrConfig", kerr)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestExplicitResetKindsValidate confirms the explicit-reset accumulator
// kinds remain accepted with any marker width (they do not use markers).
func TestExplicitResetKindsValidate(t *testing.T) {
	for _, k := range []accum.Kind{accum.DenseExplicitKind, accum.HashExplicitKind, accum.SortListKind} {
		cfg := DefaultConfig()
		cfg.Accumulator = k
		cfg.MarkerBits = 0
		if err := cfg.Validate(); err != nil {
			t.Fatalf("kind %v rejected: %v", k, err)
		}
	}
}
