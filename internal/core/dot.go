package core

import (
	"fmt"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMMDot is the inner-product (dot) formulation of the masked
// SpGEMM: instead of traversing the multiplication row-wise (saxpy) and
// filtering against the mask, it iterates the mask's stored entries
// directly and computes each surviving output as a sparse dot product
//
//	C[i,j] = A[i,:] · B[:,j]   for every M[i,j] ≠ 0.
//
// This is the "higher-level algorithm beyond row-wise saxpy" direction
// of Milaković et al. that the paper's related-work section cites: the
// mask makes the output structure known up front, so work is exactly
// proportional to nnz(M) dot products, with no accumulator at all. It
// wins when the mask is much sparser than the product (the circuit5M
// regime) and loses when A rows are revisited many times per row of C.
//
// bT must be the transpose of B in CSR form (i.e. B in CSC); callers
// doing C = A ⊙ (A×A) on a symmetric A can pass A itself.
func MaskedSpGEMMDot[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, bT *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.Rows != a.Rows || bT.Cols != a.Cols || m.Cols != bT.Rows {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, Bᵀ %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, bT.Rows, bT.Cols)
	}
	if m.Rows == 0 {
		return sparse.NewCSR[T](m.Rows, m.Cols, 0), nil
	}

	// Eq. 2 does not model the dot traversal; its analogue is the merge
	// cost of each surviving dot product:
	//   W[i] = Σ_{M[i,j]≠0} (nnz(A[i,:]) + nnz(B[:,j])).
	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	var tiles []tiling.Tile
	if cfg.Tiling == tiling.FlopBalanced {
		work := make([]int64, m.Rows)
		if err := sched.BlocksE(ctx, blockWorkers(pw, m.Rows), m.Rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				na := a.RowNNZ(i)
				var wi int64
				for _, j := range m.RowCols(i) {
					wi += na + bT.RowNNZ(int(j))
				}
				work[i] = wi
			}
		}); err != nil {
			return nil, wrapRunErr(err)
		}
		var err error
		tiles, err = tiling.BalancedTilesParallelE(ctx, work, cfg.Tiles, pw)
		if err != nil {
			return nil, wrapRunErr(err)
		}
	} else {
		tiles = tiling.UniformTiles(m.Rows, cfg.Tiles)
	}
	workers := sched.Workers(cfg.Workers)
	// The dot traversal needs no accumulator or dense scratch — only the
	// per-tile staging buffers — so it checks out a zero-worker workspace.
	ws := exec.Dense[T, S](cfg.Engine, sr, 1, 0, len(tiles))
	// Poison-on-error: the dot workspace is staging-only, but a failed
	// run can still leave per-tile buffers mid-write; quarantine unless
	// fully successful.
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	outs := ws.Outs[:len(tiles)]

	if err := schedRun(ctx, cfg, workers, len(tiles), func(_, t int) {
		tile := tiles[t]
		out := &outs[t]
		maskVol := m.RowPtr[tile.Hi] - m.RowPtr[tile.Lo]
		if cap(out.RowNNZ) < tile.Rows() {
			out.RowNNZ = make([]int32, tile.Rows())
		}
		out.RowNNZ = out.RowNNZ[:tile.Rows()]
		if int64(cap(out.Cols)) < maskVol || int64(cap(out.Vals)) < maskVol {
			out.Cols = make([]sparse.Index, 0, maskVol)
			out.Vals = make([]T, 0, maskVol)
		} else {
			out.Cols = out.Cols[:0]
			out.Vals = out.Vals[:0]
		}
		for i := tile.Lo; i < tile.Hi; i++ {
			aCols, aVals := a.Row(i)
			before := len(out.Cols)
			for _, j := range m.RowCols(i) {
				bCols, bVals := bT.Row(int(j))
				if v, hit := sparseDot(sr, aCols, aVals, bCols, bVals); hit {
					out.Cols = append(out.Cols, j)
					out.Vals = append(out.Vals, v)
				}
			}
			out.RowNNZ[i-tile.Lo] = int32(len(out.Cols) - before)
		}
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleE(ctx, m.Rows, m.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordPoolDelta(cfg, poolPrior, scope)
	clean = true
	return c, nil
}

// sparseDot merges two sorted index lists and accumulates the products
// of coinciding entries. hit reports whether any index matched (an
// all-miss dot yields no stored entry, matching the saxpy kernels'
// structural semantics).
//
//spgemm:hotpath
func sparseDot[T sparse.Number, S semiring.Semiring[T]](
	sr S, aCols []sparse.Index, aVals []T, bCols []sparse.Index, bVals []T,
) (T, bool) {
	var acc T
	hit := false
	p, q := 0, 0
	for p < len(aCols) && q < len(bCols) {
		switch {
		case aCols[p] < bCols[q]:
			p++
		case aCols[p] > bCols[q]:
			q++
		default:
			x := sr.Times(aVals[p], bVals[q])
			if hit {
				acc = sr.Plus(acc, x)
			} else {
				acc = x
				hit = true
			}
			p++
			q++
		}
	}
	return acc, hit
}
