package core

import (
	"fmt"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// EWiseAdd computes the element-wise "union" combination of a and b:
// positions present in both matrices combine with the semiring's Plus;
// positions present in exactly one keep their value (GraphBLAS
// eWiseAdd semantics — the additive identity is implicit, not applied).
func EWiseAdd[T sparse.Number, S semiring.Semiring[T]](
	sr S, a, b *sparse.CSR[T],
) (*sparse.CSR[T], error) {
	return EWiseAddWS(sr, a, b, nil)
}

// EWiseAddWS is EWiseAdd staging rows in ws's scratch slices instead of
// per-call locals, so iterative callers (BC's dependency accumulation)
// stop paying the row-staging allocation each round. ws may be nil.
func EWiseAddWS[T sparse.Number, S semiring.Semiring[T]](
	sr S, a, b *sparse.CSR[T], ws *exec.Workspace[T, S],
) (*sparse.CSR[T], error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: A %dx%d, B %dx%d",
			sparse.ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := sparse.NewCSR[T](a.Rows, a.Cols, a.NNZ()+b.NNZ())
	cols, vals := stagingFor(ws)
	for i := 0; i < a.Rows; i++ {
		aCols, aVals := a.Row(i)
		bCols, bVals := b.Row(i)
		cols = cols[:0]
		vals = vals[:0]
		p, q := 0, 0
		for p < len(aCols) && q < len(bCols) {
			switch {
			case aCols[p] < bCols[q]:
				cols = append(cols, aCols[p])
				vals = append(vals, aVals[p])
				p++
			case aCols[p] > bCols[q]:
				cols = append(cols, bCols[q])
				vals = append(vals, bVals[q])
				q++
			default:
				cols = append(cols, aCols[p])
				vals = append(vals, sr.Plus(aVals[p], bVals[q]))
				p++
				q++
			}
		}
		for ; p < len(aCols); p++ {
			cols = append(cols, aCols[p])
			vals = append(vals, aVals[p])
		}
		for ; q < len(bCols); q++ {
			cols = append(cols, bCols[q])
			vals = append(vals, bVals[q])
		}
		out.AppendRow(i, cols, vals)
	}
	stagingStore(ws, cols, vals)
	return out, nil
}

// EWiseMult computes the element-wise "intersection" combination:
// positions present in both matrices combine with the semiring's Times;
// all other positions vanish (GraphBLAS eWiseMult semantics). With
// PlusTimes this is the Hadamard product; with a pattern operand it is
// structural masking with values.
func EWiseMult[T sparse.Number, S semiring.Semiring[T]](
	sr S, a, b *sparse.CSR[T],
) (*sparse.CSR[T], error) {
	return EWiseMultWS(sr, a, b, nil)
}

// EWiseMultWS is EWiseMult staging rows in ws's scratch slices; ws may
// be nil. See EWiseAddWS.
func EWiseMultWS[T sparse.Number, S semiring.Semiring[T]](
	sr S, a, b *sparse.CSR[T], ws *exec.Workspace[T, S],
) (*sparse.CSR[T], error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: A %dx%d, B %dx%d",
			sparse.ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	nnzCap := a.NNZ()
	if b.NNZ() < nnzCap {
		nnzCap = b.NNZ()
	}
	out := sparse.NewCSR[T](a.Rows, a.Cols, nnzCap)
	cols, vals := stagingFor(ws)
	for i := 0; i < a.Rows; i++ {
		aCols, aVals := a.Row(i)
		bCols, bVals := b.Row(i)
		cols = cols[:0]
		vals = vals[:0]
		p, q := 0, 0
		for p < len(aCols) && q < len(bCols) {
			switch {
			case aCols[p] < bCols[q]:
				p++
			case aCols[p] > bCols[q]:
				q++
			default:
				cols = append(cols, aCols[p])
				vals = append(vals, sr.Times(aVals[p], bVals[q]))
				p++
				q++
			}
		}
		out.AppendRow(i, cols, vals)
	}
	stagingStore(ws, cols, vals)
	return out, nil
}

// stagingFor hands out the workspace's append-staging slices (empty,
// capacity preserved), or nil slices when ws is nil.
func stagingFor[T sparse.Number, S semiring.Semiring[T]](
	ws *exec.Workspace[T, S],
) ([]sparse.Index, []T) {
	if ws == nil {
		return nil, nil
	}
	return ws.ScratchCols[:0], ws.ScratchVals[:0]
}

// stagingStore returns grown staging slices to the workspace so the
// capacity carries to the next call.
func stagingStore[T sparse.Number, S semiring.Semiring[T]](
	ws *exec.Workspace[T, S], cols []sparse.Index, vals []T,
) {
	if ws == nil {
		return
	}
	ws.ScratchCols = cols[:0]
	ws.ScratchVals = vals[:0]
}

// ReduceRows folds each row with the semiring's Plus, returning a
// sparse vector with one entry per non-empty row — GraphBLAS's
// GrB_Matrix_reduce to a vector. Triangle-per-vertex counts and k-truss
// support summaries are built from it.
func ReduceRows[T sparse.Number, S semiring.Semiring[T]](sr S, m *sparse.CSR[T]) *SpVec[T] {
	return ReduceRowsInto(sr, m, nil)
}

// ReduceRowsInto is ReduceRows writing into out (reusing its entry
// storage) when non-nil; the iterative hook for k-truss support loops.
func ReduceRowsInto[T sparse.Number, S semiring.Semiring[T]](
	sr S, m *sparse.CSR[T], out *SpVec[T],
) *SpVec[T] {
	if out == nil {
		out = &SpVec[T]{}
	}
	out.Reset(m.Rows)
	for i := 0; i < m.Rows; i++ {
		_, vals := m.Row(i)
		if len(vals) == 0 {
			continue
		}
		acc := vals[0]
		for _, v := range vals[1:] {
			acc = sr.Plus(acc, v)
		}
		out.Idx = append(out.Idx, sparse.Index(i))
		out.Val = append(out.Val, acc)
	}
	return out
}
