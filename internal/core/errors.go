package core

import (
	"context"
	"errors"
	"fmt"

	"maskedspgemm/internal/sched"
)

// The error taxonomy of the execution-hardening layer. Every failure a
// kernel can produce maps onto exactly one of these sentinels (plus
// sparse.ErrShape for dimension mismatches), so callers can dispatch
// with errors.Is instead of string matching — the GraphBLAS contract of
// error codes rather than aborts.
var (
	// ErrConfig marks a Config rejected by Validate: an unknown enum
	// value, an out-of-range knob, or an inconsistent combination.
	ErrConfig = errors.New("core: invalid configuration")

	// ErrInvalidMatrix marks an operand that violates the CSR structural
	// invariants (unsorted or duplicate columns, out-of-range indices,
	// broken row pointers).
	ErrInvalidMatrix = errors.New("core: invalid matrix")

	// ErrCanceled marks a multiplication aborted by its context. It
	// wraps the context's own error, so errors.Is also matches
	// context.Canceled or context.DeadlineExceeded as appropriate.
	ErrCanceled = errors.New("core: multiplication canceled")

	// ErrPanic marks a panic recovered inside a kernel worker. It wraps
	// a *sched.PanicError carrying the panic value and stack.
	ErrPanic = errors.New("core: kernel panic")

	// ErrStalled marks a multiplication failed by the stall watchdog
	// (Config.StallTimeout): no tile completed for a full timeout while
	// work remained. It wraps a *sched.StallError carrying the
	// completed/total tile counts and an all-goroutine stack snapshot.
	ErrStalled = errors.New("core: multiplication stalled")

	// ErrConcurrentMultiply marks overlapping Multiply calls on a
	// Multiplier that has no Engine: the engineless path owns a single
	// workspace, so a second concurrent call would race on it. The
	// misuse is detected atomically and rejected instead of corrupting
	// state. Give the Multiplier an Engine (per-call workspace checkout)
	// to serve concurrent callers.
	ErrConcurrentMultiply = errors.New("core: concurrent Multiply on a Multiplier without an Engine")

	// ErrSingular marks a triangular solve whose operand cannot be
	// inverted on the solved rows: a structurally missing diagonal entry
	// (detected at plan time) or a stored-but-zero diagonal value
	// (detected during substitution).
	ErrSingular = errors.New("core: singular triangular operand")

	// ErrNotTriangular marks a triangular-solve operand that stores an
	// entry on the wrong side of the diagonal among the solved rows —
	// the level-set plan would silently drop it, so it is rejected at
	// plan time instead.
	ErrNotTriangular = errors.New("core: operand is not triangular")
)

// errConfig builds a Validate rejection wrapping ErrConfig.
func errConfig(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrConfig, fmt.Sprintf(format, args...))
}

// wrapRunErr maps a scheduler/plan-phase error into the taxonomy:
// worker panics become ErrPanic (still errors.As-able to
// *sched.PanicError), stall verdicts become ErrStalled (still
// errors.As-able to *sched.StallError), context errors become
// ErrCanceled (still errors.Is-able to the underlying context error),
// anything else passes through unchanged. An injected spurious cancel
// reaches ErrCanceled too, but additionally matches chaos.ErrInjected,
// which is how the retry layer tells it apart from a caller's cancel.
func wrapRunErr(err error) error {
	if err == nil {
		return nil
	}
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("%w: %w", ErrPanic, pe)
	}
	var se *sched.StallError
	if errors.As(err, &se) {
		return fmt.Errorf("%w: %w", ErrStalled, se)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// wrapSolveErr is wrapRunErr for the triangular-solve kernel, with one
// extra rule first: a worker that hit a zero diagonal panics with an
// ErrSingular-wrapped error (the substitution cannot continue), and the
// containment frame turns that into a *PanicError. That is a domain
// outcome, not a kernel defect, so it surfaces as the original singular
// error rather than ErrPanic — PanicError.Unwrap keeps the chain
// classifiable either way.
func wrapSolveErr(err error) error {
	if err == nil {
		return nil
	}
	var pe *sched.PanicError
	if errors.As(err, &pe) && errors.Is(pe, ErrSingular) {
		if e, ok := pe.Value.(error); ok {
			return e
		}
	}
	return wrapRunErr(err)
}
