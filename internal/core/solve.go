package core

import (
	"context"
	"errors"
	"fmt"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// Masked sparse triangular solve on the dependency-wave scheduler.
//
// SolveTri computes x from op(L)·x = b restricted to a structural row
// mask: the solve runs on the principal submatrix op(L)[mask, mask],
// exactly the level-scheduled SpTRSV of arXiv 2503.05408 with the
// paper's Eq. 2 row-work estimate (row nnz, restricted to the mask)
// reused as the wave-coarsening cost model. Rows outside the mask pass
// through unchanged (x[i] = b[i]). Unlike SpGEMM, substitution is
// inherently ordered, so the plan is a level-set DAG schedule: rows
// whose in-mask dependencies all sit in strictly earlier levels form a
// wave, waves run under sched.RunWavesOpts on the persistent worker
// pool, and the coarsener merges narrow levels into single-tile serial
// waves and splits wide levels into FLOP-balanced tiles.
//
// Arithmetic is the native one of T (plus, times, subtract, divide) —
// substitution needs an inverse, which a general semiring does not
// supply. The semiring parameter types the pooled workspace only, so a
// solve and a multiply over the same semiring share the engine's pool.

// Tri selects which triangle of the operand a solve reads.
type Tri int

const (
	// Lower solves with the lower triangle: forward substitution.
	Lower Tri = iota
	// Upper solves with the upper triangle: backward substitution.
	Upper
)

// String renders the triangle for logs and error messages.
func (t Tri) String() string {
	switch t {
	case Lower:
		return "lower"
	case Upper:
		return "upper"
	default:
		return fmt.Sprintf("Tri(%d)", int(t))
	}
}

// SolveMode selects the execution strategy of a triangular solve.
type SolveMode int

const (
	// SolveAuto picks waves or serial from the plan's total row work
	// against SolveOpts.SerialBelow — the model-layer crossover.
	SolveAuto SolveMode = iota
	// SolveWaves forces the wave-scheduled path.
	SolveWaves
	// SolveSerial forces the single-worker substitution loop.
	SolveSerial
)

// Defaults for the wave-coarsening knobs; see SolveOpts.
const (
	// DefaultWaveGrain is the Eq. 2 row-work target per tile when a wide
	// level is split: small enough to load-balance skewed levels, large
	// enough that a tile amortizes its claim.
	DefaultWaveGrain = 4096
	// DefaultMergeBelow is the level width under which consecutive
	// levels are merged into one serial wave: a level narrower than the
	// worker count pays a barrier without buying parallelism.
	DefaultMergeBelow = 8
	// DefaultSerialBelow is the total-row-work crossover under which
	// SolveAuto runs the whole solve serially: goroutine fan-out and
	// barriers cost more than a short substitution loop.
	DefaultSerialBelow = 1 << 14
)

// SolveOpts configures one triangular solve. The zero value solves the
// lower triangle, unmasked, with automatic mode and default coarsening
// knobs.
type SolveOpts struct {
	// Tri selects the stored triangle of the operand.
	Tri Tri
	// Transpose solves op(L) = Lᵀ: the transpose is materialized once at
	// plan time and cached with the plan, so iterative transpose solves
	// pay it once.
	Transpose bool
	// Mask lists the solved rows, sorted ascending without duplicates.
	// Nil (or empty) solves every row. The solve runs on the principal
	// submatrix L[Mask, Mask]; rows outside pass b through unchanged.
	Mask []sparse.Index
	// Mode selects waves, serial, or the automatic crossover.
	Mode SolveMode
	// WaveGrain is the Eq. 2 row-work target per tile when a wide level
	// is split (DefaultWaveGrain when <= 0).
	WaveGrain int64
	// MergeBelow is the level width under which consecutive levels merge
	// into one serial wave (DefaultMergeBelow when <= 0).
	MergeBelow int
	// SerialBelow is the total-work crossover for SolveAuto
	// (DefaultSerialBelow when <= 0).
	SerialBelow int64
}

// withDefaults resolves the zero-value knobs and normalizes an empty
// mask to the unmasked solve.
func (so SolveOpts) withDefaults() SolveOpts {
	if so.WaveGrain <= 0 {
		so.WaveGrain = DefaultWaveGrain
	}
	if so.MergeBelow <= 0 {
		so.MergeBelow = DefaultMergeBelow
	}
	if so.SerialBelow <= 0 {
		so.SerialBelow = DefaultSerialBelow
	}
	if len(so.Mask) == 0 {
		so.Mask = nil
	}
	return so
}

// validate rejects unknown enums and malformed masks for an n-row
// operand. Mask violations are structural (ErrInvalidMatrix), enum
// violations are configuration (ErrConfig), mirroring Validate.
func (so SolveOpts) validate(n int) error {
	switch so.Tri {
	case Lower, Upper:
	default:
		return errConfig("unknown triangle %d", so.Tri)
	}
	switch so.Mode {
	case SolveAuto, SolveWaves, SolveSerial:
	default:
		return errConfig("unknown solve mode %d", so.Mode)
	}
	prev := sparse.Index(-1)
	for k, r := range so.Mask {
		if r < 0 || int(r) >= n {
			return fmt.Errorf("%w: mask row %d out of range [0,%d)", ErrInvalidMatrix, r, n)
		}
		if r <= prev {
			return fmt.Errorf("%w: mask rows must be strictly ascending (entry %d: %d after %d)",
				ErrInvalidMatrix, k, r, prev)
		}
		prev = r
	}
	return nil
}

// effectiveLower reports whether the solve substitutes forward:
// transposing flips the stored triangle.
func (so SolveOpts) effectiveLower() bool {
	return (so.Tri == Lower) != so.Transpose
}

// solveKind encodes the solve flavor into PlanKey.Solve: non-zero to
// discriminate from SpGEMM plans, then one bit each for triangle and
// transpose.
func (so SolveOpts) solveKind() uint8 {
	k := uint8(1)
	if so.Tri == Upper {
		k |= 2
	}
	if so.Transpose {
		k |= 4
	}
	return k
}

// solveHash fingerprints what the wave order depends on: the operand's
// row structure, the mask contents and the coarsening knobs, folded
// word-wise FNV-1a style. Column indices are deliberately excluded —
// hashing them would double the per-call memory traffic — so the cache
// relies on the documented contract that an operand is not mutated
// while cached plans for it may be reused; RowPtr plus the OperandID
// (pointer, shape, nnz) already catches reallocation and any structural
// edit that moves a row boundary.
func solveHash[T sparse.Number](l *sparse.CSR[T], so SolveOpts) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(l.Rows)) * prime
	for _, p := range l.RowPtr {
		h = (h ^ uint64(p)) * prime
	}
	h = (h ^ uint64(len(so.Mask))) * prime
	for _, r := range so.Mask {
		h = (h ^ uint64(uint32(r))) * prime
	}
	h = (h ^ uint64(so.WaveGrain)) * prime
	h = (h ^ uint64(so.MergeBelow)) * prime
	return h
}

// SolveTri solves op(L)·x = b into a fresh vector. See SolveTriInto.
func SolveTri[T sparse.Number, S semiring.Semiring[T]](
	sr S, l *sparse.CSR[T], b []T, cfg Config, so SolveOpts,
) ([]T, error) {
	dst := make([]T, len(b))
	if err := SolveTriInto(sr, dst, l, b, cfg, so); err != nil {
		return nil, err
	}
	return dst, nil
}

// SolveTriInto solves op(L)·x = b into dst under the wave scheduler.
// L must be square with sorted rows; dst and b must have length L.Rows
// and must either be the same slice (in-place solve) or not overlap.
// Rows outside the mask receive b unchanged. The level-set plan is
// cached in cfg.Engine keyed by operand fingerprint plus a structure
// hash (see solveHash); warm engine-backed solves are allocation-free
// on the substitution path.
//
// Failure taxonomy: ErrSingular for a structurally missing or
// numerically zero diagonal on a solved row, ErrNotTriangular for an
// in-mask entry on the wrong side of the diagonal, ErrCanceled /
// ErrPanic / ErrStalled exactly as MaskedSpGEMM.
func SolveTriInto[T sparse.Number, S semiring.Semiring[T]](
	sr S, dst []T, l *sparse.CSR[T], b []T, cfg Config, so SolveOpts,
) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	so = so.withDefaults()
	n := l.Rows
	if l.Cols != n {
		return fmt.Errorf("%w: triangular operand must be square, got %dx%d", sparse.ErrShape, l.Rows, l.Cols)
	}
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("%w: operand is %dx%d but len(dst)=%d, len(b)=%d",
			sparse.ErrShape, n, n, len(dst), len(b))
	}
	if err := so.validate(n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}

	ctx := cfg.Context
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()

	plan, err := solvePlanFor(ctx, cfg, l, so, scope)
	if err != nil {
		return err
	}
	sp := plan.Solve

	op := l
	if so.Transpose {
		op = sp.Trans.(*sparse.CSR[T])
	}
	// dst starts as b: out-of-mask rows keep it, solved rows overwrite it
	// in dependency order. An in-place solve (dst is b) skips the copy.
	if &dst[0] != &b[0] {
		copy(dst, b)
	}

	// Mask membership for the substitution kernel, staged in the pooled
	// dense scratch's state bytes: set before the run, cleared after, so
	// the workspace goes back to the pool clean. A failed run poisons the
	// checkout instead (same quarantine discipline as the SpGEMM path).
	var ws *exec.Workspace[T, S]
	var state []uint8
	clean := so.Mask == nil
	if so.Mask != nil {
		ws = exec.Dense[T, S](cfg.Engine, sr, n, 1, 0)
		defer func() {
			if !clean {
				ws.Poison()
			}
			ws.Release()
		}()
		_, state = ws.Dense[0].EnsureSize(n)
		for _, r := range so.Mask {
			state[r] = 1
		}
	}

	workers := sched.Workers(cfg.Workers)
	serial := so.Mode == SolveSerial || workers <= 1 ||
		(so.Mode == SolveAuto && sp.Flops < so.SerialBelow)

	var wstats *sched.WaveStats
	if serial {
		if !scope.Enabled() {
			// Direct call, no spans: keeps the warm engine-backed path
			// free of closure allocations (the zero-alloc pin).
			err = solveSerialOrder(ctx, op, dst, b, state, sp.Order)
		} else {
			err = runSolveSerialSpanned(ctx, scope, func() error {
				return solveSerialOrder(ctx, op, dst, b, state, sp.Order)
			})
		}
	} else {
		var wp sched.WavePlan
		wp, err = sched.NewWavePlan(sp.Waves)
		if err == nil {
			if scope.Enabled() {
				wstats = &sched.WaveStats{}
			}
			err = runSolveWavesSpanned(ctx, cfg, scope, workers, wp, wstats, func(worker, t int, wc *obs.WorkerCounters) {
				tile := sp.Tiles[t]
				var flops int64
				for s := tile.Lo; s < tile.Hi; s++ {
					i := int(sp.Order[s])
					flops += op.RowNNZ(i)
					solveRow(op, dst, b, state, i)
				}
				if wc != nil {
					wc.Rows.Add(int64(tile.Rows()))
					wc.Flops.Add(flops)
				}
			})
		}
	}
	if err != nil {
		return wrapSolveErr(err)
	}

	if so.Mask != nil {
		for _, r := range so.Mask {
			state[r] = 0
		}
	}
	recordSolveStats(scope, sp, wstats)
	recordPoolDelta(cfg, poolPrior, scope)
	scope.MarkComplete()
	clean = true
	return nil
}

// SolveTriSerial is the reference substitution: a single loop in
// substitution order with its own validation, sharing only the per-row
// arithmetic with the wave path so the two are bit-identical by
// construction (each row is summed in CSR storage order by exactly one
// worker in both). It allocates its own scratch and, for transpose
// solves, its own transpose — the baseline the wave path is verified
// and benchmarked against, not a fast path.
func SolveTriSerial[T sparse.Number](
	dst []T, l *sparse.CSR[T], b []T, so SolveOpts,
) (err error) {
	so = so.withDefaults()
	n := l.Rows
	if l.Cols != n {
		return fmt.Errorf("%w: triangular operand must be square, got %dx%d", sparse.ErrShape, l.Rows, l.Cols)
	}
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("%w: operand is %dx%d but len(dst)=%d, len(b)=%d",
			sparse.ErrShape, n, n, len(dst), len(b))
	}
	if err := so.validate(n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	op := l
	if so.Transpose {
		op = sparse.Transpose(l)
	}
	lower := so.effectiveLower()
	var state []uint8
	if so.Mask != nil {
		state = make([]uint8, n)
		for _, r := range so.Mask {
			state[r] = 1
		}
	}
	// Structural validation up front, so the substitution loop below can
	// share solveRow's unchecked arithmetic with the wave kernel.
	walk := func(i int) error {
		diag := false
		for _, j := range op.RowCols(i) {
			jj := int(j)
			if state != nil && state[jj] == 0 {
				continue
			}
			if jj == i {
				diag = true
				continue
			}
			if dep := jj < i; dep != lower {
				return fmt.Errorf("%w: entry (%d,%d) lies outside the %s triangle on the solved rows",
					ErrNotTriangular, i, jj, effTriName(lower))
			}
		}
		if !diag {
			return fmt.Errorf("%w: row %d has no stored diagonal", ErrSingular, i)
		}
		return nil
	}
	if so.Mask != nil {
		for _, r := range so.Mask {
			if err := walk(int(r)); err != nil {
				return err
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if err := walk(i); err != nil {
				return err
			}
		}
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	defer func() {
		err = recoverSingular(recover(), err)
	}()
	if so.Mask != nil {
		if lower {
			for _, r := range so.Mask {
				solveRow(op, dst, b, state, int(r))
			}
		} else {
			for k := len(so.Mask) - 1; k >= 0; k-- {
				solveRow(op, dst, b, state, int(so.Mask[k]))
			}
		}
		return nil
	}
	if lower {
		for i := 0; i < n; i++ {
			solveRow(op, dst, b, nil, i)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			solveRow(op, dst, b, nil, i)
		}
	}
	return nil
}

// effTriName names the effective triangle for error messages (the
// stored one for plain solves, the flipped one under transpose, in the
// transposed operand's coordinates).
func effTriName(lower bool) string {
	if lower {
		return "lower"
	}
	return "upper"
}

// solveRow substitutes one row: acc = Σ op[i,j]·x[j] over the in-mask
// off-diagonal entries in CSR storage order, then
// x[i] = (b[i] − acc) / diag. The summation order is what makes serial
// and wave execution bit-identical — each row is computed by exactly
// one worker, in exactly this order, in both. A zero (or structurally
// missing, hence zero) diagonal panics with an ErrSingular-wrapped
// error; the containment frame turns that into the typed return (see
// wrapSolveErr). state is the mask-membership byte vector, nil when
// every row is solved.
//
//spgemm:hotpath
func solveRow[T sparse.Number](op *sparse.CSR[T], dst, b []T, state []uint8, i int) {
	cols, vals := op.Row(i)
	ii := sparse.Index(i)
	var acc, diag, zero T
	for k, j := range cols {
		if j == ii {
			diag = vals[k]
			continue
		}
		if state != nil && state[j] == 0 {
			continue
		}
		acc += vals[k] * dst[j]
	}
	if diag == zero {
		//lint:ignore hotpathalloc failure path: the solve is over
		panic(fmt.Errorf("%w: zero diagonal at row %d", ErrSingular, i))
	}
	dst[i] = (b[i] - acc) / diag
}

// solveSerialOrder is the engine-backed serial execution: the planned
// substitution order run by one worker, polling cancellation every
// stride rows. Zero-alloc on the warm path; the ErrSingular panic from
// solveRow is recovered into the typed return.
func solveSerialOrder[T sparse.Number](
	ctx context.Context, op *sparse.CSR[T], dst, b []T, state []uint8, order []sparse.Index,
) (err error) {
	defer func() {
		err = recoverSingular(recover(), err)
	}()
	const pollStride = 1024
	for s, r := range order {
		if ctx != nil && s%pollStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		solveRow(op, dst, b, state, int(r))
	}
	return nil
}

// recoverSingular converts a recovered ErrSingular panic (solveRow's
// zero-diagonal signal) into the error it wraps; any other panic value
// is re-raised. Call with the result of recover().
func recoverSingular(r any, prev error) error {
	if r == nil {
		return prev
	}
	if e, ok := r.(error); ok && errors.Is(e, ErrSingular) {
		return e
	}
	panic(r)
}

// buildSolvePlan runs the level-set analysis and wave coarsening for
// one solve flavor: O(nnz) like every plan pass. Levels are computed in
// substitution order (ascending rows for an effective lower triangle,
// descending for upper), a stable counting sort by level produces the
// slot order, and the coarsener merges runs of levels narrower than
// MergeBelow into single-tile serial waves while splitting wide levels
// at ~WaveGrain row work per tile.
func buildSolvePlan[T sparse.Number](l *sparse.CSR[T], so SolveOpts) (*exec.SolvePlan, error) {
	op := l
	var trans any
	if so.Transpose {
		t := sparse.Transpose(l)
		trans = t
		op = t
	}
	lower := so.effectiveLower()
	n := op.Rows

	var inMask []uint8
	m := n
	if so.Mask != nil {
		inMask = make([]uint8, n)
		for _, r := range so.Mask {
			inMask[r] = 1
		}
		m = len(so.Mask)
	}

	level := make([]int32, n)
	rowWork := make([]int64, n)
	maxLv := int32(-1)
	var totalFlops int64
	visit := func(i int) error {
		lv := int32(0)
		var w int64
		diag := false
		for _, j := range op.RowCols(i) {
			jj := int(j)
			if inMask != nil && inMask[jj] == 0 {
				continue
			}
			if jj == i {
				diag = true
				w++
				continue
			}
			if dep := jj < i; dep != lower {
				return fmt.Errorf("%w: entry (%d,%d) lies outside the %s triangle on the solved rows",
					ErrNotTriangular, i, jj, effTriName(lower))
			}
			w++
			if next := level[jj] + 1; next > lv {
				lv = next
			}
		}
		if !diag {
			return fmt.Errorf("%w: row %d has no stored diagonal", ErrSingular, i)
		}
		level[i] = lv
		rowWork[i] = w
		totalFlops += w
		if lv > maxLv {
			maxLv = lv
		}
		return nil
	}
	// Substitution order guarantees every dependency's level is final
	// before it is read: forward solves scan rows ascending, backward
	// solves descending, and masked solves visit only the masked rows.
	if so.Mask != nil {
		if lower {
			for _, r := range so.Mask {
				if err := visit(int(r)); err != nil {
					return nil, err
				}
			}
		} else {
			for k := len(so.Mask) - 1; k >= 0; k-- {
				if err := visit(int(so.Mask[k])); err != nil {
					return nil, err
				}
			}
		}
	} else if lower {
		for i := 0; i < n; i++ {
			if err := visit(i); err != nil {
				return nil, err
			}
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			if err := visit(i); err != nil {
				return nil, err
			}
		}
	}

	numLv := int(maxLv) + 1
	if m == 0 || numLv == 0 {
		return &exec.SolvePlan{Trans: trans}, nil
	}

	// Stable counting sort of the substitution order by level: slots
	// grouped by level, substitution order preserved within each level —
	// which is what lets a merged serial wave honor its intra-wave
	// dependencies by running its single tile front to back.
	lvStart := make([]int, numLv+1)
	lvFlops := make([]int64, numLv)
	countLevels := func(i int) {
		lvStart[level[i]+1]++
		lvFlops[level[i]] += rowWork[i]
	}
	order := make([]sparse.Index, m)
	if so.Mask != nil {
		for _, r := range so.Mask {
			countLevels(int(r))
		}
	} else {
		for i := 0; i < n; i++ {
			countLevels(i)
		}
	}
	for k := 0; k < numLv; k++ {
		lvStart[k+1] += lvStart[k]
	}
	fill := make([]int, numLv)
	copy(fill, lvStart[:numLv])
	place := func(i int) {
		order[fill[level[i]]] = sparse.Index(i)
		fill[level[i]]++
	}
	if so.Mask != nil {
		if lower {
			for _, r := range so.Mask {
				place(int(r))
			}
		} else {
			for k := len(so.Mask) - 1; k >= 0; k-- {
				place(int(so.Mask[k]))
			}
		}
	} else if lower {
		for i := 0; i < n; i++ {
			place(i)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			place(i)
		}
	}

	// Coarsening: narrow-level runs collapse into one serial single-tile
	// wave (one barrier instead of one per level, no claim contention);
	// wide levels split greedily at ~WaveGrain row work per tile so a
	// skewed level cannot serialize its wave behind one heavy tile.
	var tiles []tiling.Tile
	var waves []sched.Wave
	var waveFlops []int64
	for k := 0; k < numLv; {
		width := lvStart[k+1] - lvStart[k]
		tileLo := len(tiles)
		if width < so.MergeBelow {
			slotLo := lvStart[k]
			var f int64
			for k < numLv && lvStart[k+1]-lvStart[k] < so.MergeBelow {
				f += lvFlops[k]
				k++
			}
			tiles = append(tiles, tiling.Tile{Lo: slotLo, Hi: lvStart[k]})
			waveFlops = append(waveFlops, f)
		} else {
			slotLo, slotHi := lvStart[k], lvStart[k+1]
			lo := slotLo
			var acc int64
			for s := slotLo; s < slotHi; s++ {
				acc += rowWork[order[s]]
				if acc >= so.WaveGrain && s+1 < slotHi {
					tiles = append(tiles, tiling.Tile{Lo: lo, Hi: s + 1})
					lo, acc = s+1, 0
				}
			}
			tiles = append(tiles, tiling.Tile{Lo: lo, Hi: slotHi})
			waveFlops = append(waveFlops, lvFlops[k])
			k++
		}
		waves = append(waves, sched.Wave{Lo: tileLo, Hi: len(tiles)})
	}
	serialWaves := 0
	for _, w := range waves {
		if w.Tiles() == 1 {
			serialWaves++
		}
	}
	return &exec.SolvePlan{
		Order:       order,
		Tiles:       tiles,
		Waves:       waves,
		Levels:      numLv,
		SerialWaves: serialWaves,
		Flops:       totalFlops,
		WaveFlops:   waveFlops,
		Trans:       trans,
	}, nil
}

// solvePlanFor resolves the level-schedule plan through the engine's
// cache. Unlike SpGEMM plans, a stale solve plan is a correctness bug
// (the wave order encodes dependencies), so the key content-hashes the
// structure and mask on top of the operand fingerprint; the hash is
// O(rows + mask) per call, paid on hits too.
func solvePlanFor[T sparse.Number](
	ctx context.Context, cfg Config, l *sparse.CSR[T], so SolveOpts, scope *obs.RunScope,
) (exec.Plan, error) {
	if cfg.Engine == nil {
		return buildSolvePlanSpanned(ctx, l, so, scope)
	}
	key := exec.PlanKey{
		A:         exec.IDOf(l),
		Solve:     so.solveKind(),
		SolveHash: solveHash(l, so),
	}
	// Lookup-before-Plan keeps the warm path allocation-free: the build
	// closure is only constructed on a miss.
	if p, ok := cfg.Engine.PlanLookup(key); ok {
		return p, nil
	}
	return cfg.Engine.Plan(key, func() (exec.Plan, error) {
		return buildSolvePlanSpanned(ctx, l, so, scope)
	})
}

// buildSolvePlanSpanned is buildSolvePlan under the plan.levels span
// and pprof label, wrapped into an exec.Plan.
func buildSolvePlanSpanned[T sparse.Number](
	ctx context.Context, l *sparse.CSR[T], so SolveOpts, scope *obs.RunScope,
) (exec.Plan, error) {
	var sp *exec.SolvePlan
	var err error
	if !scope.Enabled() {
		sp, err = buildSolvePlan(l, so)
	} else {
		end := scope.Span(obs.PhasePlanLevels)
		scope.Do(ctx, obs.PhasePlanLevels, func() {
			sp, err = buildSolvePlan(l, so)
		})
		end()
	}
	if err != nil {
		return exec.Plan{}, err
	}
	return exec.Plan{Tiles: sp.Tiles, Solve: sp}, nil
}

// recordSolveStats folds the plan shape and barrier traffic into the
// run scope's sched block. wstats is nil on serial runs (no barriers).
func recordSolveStats(scope *obs.RunScope, sp *exec.SolvePlan, wstats *sched.WaveStats) {
	if !scope.Enabled() {
		return
	}
	var c obs.SchedCounters
	c.WaveRuns = 1
	c.Levels = int64(sp.Levels)
	c.Waves = int64(len(sp.Waves))
	c.SerialWaves = int64(sp.SerialWaves)
	if wstats != nil {
		c.Barriers = wstats.Crossings.Load()
		c.BarrierWaitNs = wstats.BarrierWaitNs.Load()
	}
	for w := range sp.Waves {
		c.WaveTiles[obs.WaveBucket(int64(sp.Waves[w].Tiles()))]++
		c.WaveFlops[obs.WaveBucket(sp.WaveFlops[w])]++
	}
	scope.AddSched(c)
}
