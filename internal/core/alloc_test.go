package core

import (
	"math/rand"
	"testing"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
)

// TestKernelSteadyStateAllocs pins dynamically what hotpathalloc checks
// statically: once a Multiplier is warm, one full pass of the per-tile
// kernel loop — row kernels, accumulator probes and inserts, gather
// into the reused tile buffers — performs zero allocations.
func TestKernelSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(64, 64, 0.15, r)
	for _, it := range []IterationSpace{MaskLoad, CoIter, Hybrid} {
		for _, ak := range []accum.Kind{accum.DenseKind, accum.HashKind} {
			cfg := DefaultConfig()
			cfg.Iteration = it
			cfg.Accumulator = ak
			cfg.Tiles = 4
			cfg.Workers = 1
			mu, err := NewMultiplier[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// One run warms the tile output buffers (and any hash growth).
			if _, err := mu.Multiply(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				for tt := range mu.tiles {
					out := &mu.ws.Outs[tt]
					out.Cols = out.Cols[:0]
					out.Vals = out.Vals[:0]
					runTilePlanned(mu.sr, mu.ws.Accs[0], mu.m, mu.a, mu.b, mu.cfg, mu.tiles[tt], out, nil)
				}
			})
			if allocs != 0 {
				t.Errorf("%v/%v: kernel loop allocates %.1f times per pass, want 0", it, ak, allocs)
			}
		}
	}
}
