package core

import (
	"context"
	"fmt"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMM computes C = M ⊙ (A × B) over the given semiring with the
// given configuration. The mask is structural (GraphBLAS Boolean mask):
// an output entry may exist only where M stores an entry, regardless of
// M's values. All operands must be CSR with sorted rows; the result is
// CSR with sorted rows.
//
// Shape requirements: A is m×k, B is k×n, M is m×n.
func MaskedSpGEMM[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], error) {
	return maskedRun(sr, m, a, b, cfg, nil)
}

// MaskedSpGEMMInstrumented is MaskedSpGEMM with per-operation counting:
// it returns the actual accumulator traffic of the run, the ground
// truth that validates the symbolic Profile and quantifies how much
// work each iteration space really does on a given input.
func MaskedSpGEMMInstrumented[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], Counters, error) {
	var totals atomicCounters
	var decorators []*countingAccumulator[T]
	c, err := maskedRun(sr, m, a, b, cfg, func(inner accum.Accumulator[T]) accum.Accumulator[T] {
		d := &countingAccumulator[T]{inner: inner}
		decorators = append(decorators, d)
		return d
	})
	if err != nil {
		return nil, Counters{}, err
	}
	for _, d := range decorators {
		d.flushInto(&totals)
	}
	return c, totals.snapshot(), nil
}

// maskedRun is the shared kernel body; wrap, when non-nil, decorates
// each worker's accumulator (used by the instrumented entry point).
func maskedRun[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
	wrap func(accum.Accumulator[T]) accum.Accumulator[T],
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := planFor(ctx, cfg, pw, m, a, b, scope)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	// The workspace carries the per-worker accumulators (§III-C sizing:
	// masked spaces hold at most max_i nnz(M[i,:]) entries per row; the
	// vanilla bound is folded into plan.RowCap) and the per-tile output
	// staging buffers — checked out of the engine's pool, or constructed
	// fresh when cfg.Engine is nil.
	ws := exec.Masked[T, S](cfg.Engine, sr, cfg.Accumulator, cfg.MarkerBits,
		b.Cols, plan.RowCap, workers, len(tiles))
	// Poison-on-error: a run that fails after checkout (panic, cancel,
	// injected fault) may leave accumulators or staging buffers
	// mid-mutation, so the workspace is quarantined instead of pooled.
	// The flag flips only on the fully-successful exit, so error returns
	// and panic unwinding take the same quarantine path.
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	accs := ws.Accs[:workers]
	if cfg.Resilience != nil {
		defer armAccumChaos(cfg, accs)()
	}
	if wrap != nil {
		// The decorators are per run by design (they are drained after the
		// run); never let them leak into the pooled workspace.
		wrapped := make([]accum.Accumulator[T], workers)
		for w := range wrapped {
			wrapped[w] = wrap(accs[w])
		}
		accs = wrapped
	}
	outs := ws.Outs[:len(tiles)]
	prior := snapshotAccumStats(accs, scope)

	if err := runKernelSpanned(ctx, cfg, scope, workers, len(tiles), func(worker, t int, wc *obs.WorkerCounters) {
		runTile(sr, accs[worker], m, a, b, cfg, tiles[t], &outs[t], wc)
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleSpanned(ctx, cfg, scope, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordAccumDeltas(accs, prior, scope)
	recordPoolDelta(cfg, poolPrior, scope)
	clean = true
	return c, nil
}

// planSerialCutoff is the row count below which the plan-construction
// and assembly passes stay serial: goroutine fan-out costs more than a
// short O(rows) loop. A variable so tests can lower it to exercise the
// parallel paths on small inputs.
var planSerialCutoff = 1 << 14

// blockWorkers returns the worker count to use for an O(n) plan pass:
// 1 below the crossover threshold, p otherwise.
func blockWorkers(p, n int) int {
	if n < planSerialCutoff {
		return 1
	}
	return p
}

func maxRowNNZ[T sparse.Number](ctx context.Context, m *sparse.CSR[T], p int) (int64, error) {
	p = blockWorkers(p, m.Rows)
	if p <= 1 {
		var mx int64
		for i := 0; i < m.Rows; i++ {
			if n := m.RowNNZ(i); n > mx {
				mx = n
			}
		}
		return mx, nil
	}
	p = sched.Workers(p)
	maxes := make([]int64, p)
	if err := sched.BlocksE(ctx, p, m.Rows, func(w, lo, hi int) {
		var mx int64
		for i := lo; i < hi; i++ {
			if n := m.RowNNZ(i); n > mx {
				mx = n
			}
		}
		maxes[w] = mx
	}); err != nil {
		return 0, err
	}
	var mx int64
	for _, v := range maxes {
		if v > mx {
			mx = v
		}
	}
	return mx, nil
}

// runTile computes the output rows of one tile into out using the
// worker-local accumulator, sizing the buffers by the tile's mask
// volume (output ⊆ mask). Buffers large enough from an earlier run of
// the (possibly pooled) workspace are truncated in place, not
// reallocated. wc, when non-nil, receives the worker's exact operation
// counts.
//
//spgemm:hotpath
func runTile[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T],
	m, a, b *sparse.CSR[T], cfg Config, tile tiling.Tile, out *exec.TileBuf[T],
	wc *obs.WorkerCounters,
) {
	maskVol := m.RowPtr[tile.Hi] - m.RowPtr[tile.Lo]
	if int64(cap(out.Cols)) < maskVol || int64(cap(out.Vals)) < maskVol {
		//lint:ignore hotpathalloc amortized: first run at this mask volume sizes the staging buffers
		out.Cols = make([]sparse.Index, 0, maskVol)
		out.Vals = make([]T, 0, maskVol) //lint:ignore hotpathalloc amortized: sized with Cols above
	} else {
		out.Cols = out.Cols[:0]
		out.Vals = out.Vals[:0]
	}
	runTilePlanned(sr, acc, m, a, b, cfg, tile, out, wc)
}

// rowVanilla is the Fig. 3 algorithm: accumulate the full product row,
// mask only at gather time. The wasted updates outside the mask are the
// point — this is the cost the better iteration spaces avoid.
//
//spgemm:hotpath
func rowVanilla[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], a, b *sparse.CSR[T], i int,
	wc *obs.WorkerCounters,
) {
	aCols, aVals := a.Row(i)
	rowVanillaSlices(sr, acc, aCols, aVals, b, wc)
}

// rowVanillaSlices is rowVanilla over an explicit sparse left row —
// the form the fused pipeline feeds with intermediate rows that never
// became a CSR.
//
//spgemm:hotpath
func rowVanillaSlices[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], aCols []sparse.Index, aVals []T, b *sparse.CSR[T],
	wc *obs.WorkerCounters,
) {
	acc.BeginRow()
	for kk, k := range aCols {
		aik := aVals[kk]
		bCols, bVals := b.Row(int(k))
		if wc != nil {
			wc.Flops.Add(int64(len(bCols)))
		}
		for jj, j := range bCols {
			acc.Update(j, sr.Times(aik, bVals[jj]))
		}
	}
}

// rowMaskLoad is the Fig. 5 (GrB) algorithm: load the mask into the
// accumulator, then linearly scan each B row, discarding updates that
// miss the mask.
//
//spgemm:hotpath
func rowMaskLoad[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], a, b *sparse.CSR[T], i int, maskCols []sparse.Index,
	wc *obs.WorkerCounters,
) {
	aCols, aVals := a.Row(i)
	rowMaskLoadSlices(sr, acc, aCols, aVals, b, maskCols, wc)
}

// rowMaskLoadSlices is rowMaskLoad over an explicit sparse left row.
//
//spgemm:hotpath
func rowMaskLoadSlices[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], aCols []sparse.Index, aVals []T, b *sparse.CSR[T],
	maskCols []sparse.Index, wc *obs.WorkerCounters,
) {
	acc.BeginRow()
	acc.LoadMask(maskCols)
	for kk, k := range aCols {
		aik := aVals[kk]
		bCols, bVals := b.Row(int(k))
		if wc != nil {
			wc.Flops.Add(int64(len(bCols)))
		}
		for jj, j := range bCols {
			acc.UpdateMasked(j, sr.Times(aik, bVals[jj]))
		}
	}
}

// rowCoIter is the Fig. 7 algorithm: iterate the mask row and binary
// search each B row for the mask's columns, touching only candidate
// output positions.
//
//spgemm:hotpath
func rowCoIter[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], a, b *sparse.CSR[T], i int, maskCols []sparse.Index,
	wc *obs.WorkerCounters,
) {
	aCols, aVals := a.Row(i)
	rowCoIterSlices(sr, acc, aCols, aVals, b, maskCols, wc)
}

// rowCoIterSlices is rowCoIter over an explicit sparse left row.
//
//spgemm:hotpath
func rowCoIterSlices[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], aCols []sparse.Index, aVals []T, b *sparse.CSR[T],
	maskCols []sparse.Index, wc *obs.WorkerCounters,
) {
	acc.BeginRow()
	for kk, k := range aCols {
		aik := aVals[kk]
		bCols, bVals := b.Row(int(k))
		// Flops stays the Eq. 2 volume Σ nnz(B[k,:]) even though CoIter
		// touches fewer entries, so the counter is comparable across
		// iteration spaces and matches the planner's estimate exactly.
		if wc != nil {
			wc.Flops.Add(int64(len(bCols)))
		}
		coIterate(sr, acc, aik, maskCols, bCols, bVals)
	}
}

// coIterate performs one mask-vs-B-row intersection by binary search
// (Eq. 3 cost: nnz(M[i,:])·log2 nnz(B[k,:])). The search range shrinks
// monotonically because mask columns are ascending. The search is
// hand-rolled rather than sort.Search: the closure the latter takes
// would be re-created (and on some inlining decisions, heap-allocated)
// per (mask entry × B row) pair, squarely inside the Eq. 3 inner loop.
//
//spgemm:hotpath
func coIterate[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], aik T,
	maskCols, bCols []sparse.Index, bVals []T,
) {
	lo := 0
	for _, j := range maskCols {
		// Binary search for the first bCols[p] >= j in bCols[lo:].
		p, hi := lo, len(bCols)
		for p < hi {
			mid := int(uint(p+hi) >> 1)
			if bCols[mid] < j {
				p = mid + 1
			} else {
				hi = mid
			}
		}
		lo = p
		if lo >= len(bCols) {
			return
		}
		if bCols[lo] == j {
			acc.Update(j, sr.Times(aik, bVals[lo]))
			lo++
			if lo >= len(bCols) {
				return
			}
		}
	}
}

// rowHybrid is the Fig. 9 algorithm: the mask is loaded (the linear
// branch needs it), then each B row is processed by whichever of the two
// strategies the Eq. 3 cost model predicts is cheaper.
//
//spgemm:hotpath
func rowHybrid[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], a, b *sparse.CSR[T], i int,
	maskCols []sparse.Index, kappa float64, wc *obs.WorkerCounters,
) {
	aCols, aVals := a.Row(i)
	rowHybridSlices(sr, acc, aCols, aVals, b, maskCols, kappa, wc)
}

// rowHybridSlices is rowHybrid over an explicit sparse left row.
//
//spgemm:hotpath
func rowHybridSlices[T sparse.Number, S semiring.Semiring[T]](
	sr S, acc accum.Accumulator[T], aCols []sparse.Index, aVals []T, b *sparse.CSR[T],
	maskCols []sparse.Index, kappa float64, wc *obs.WorkerCounters,
) {
	acc.BeginRow()
	acc.LoadMask(maskCols)
	nnzM := len(maskCols)
	for kk, k := range aCols {
		aik := aVals[kk]
		bCols, bVals := b.Row(int(k))
		if wc != nil {
			wc.Flops.Add(int64(len(bCols)))
		}
		if coIterCheaper(nnzM, len(bCols), kappa) {
			if wc != nil {
				wc.CoIterPicks.Add(1)
			}
			coIterate(sr, acc, aik, maskCols, bCols, bVals)
		} else {
			if wc != nil {
				wc.LinearPicks.Add(1)
			}
			for jj, j := range bCols {
				acc.UpdateMasked(j, sr.Times(aik, bVals[jj]))
			}
		}
	}
}

// assemble stitches the per-tile outputs into one CSR matrix on p
// workers; it is assembleE without cancellation, kept for callers and
// tests that cannot fail. See assembleE for the pass structure.
func assemble[T sparse.Number](
	rows, cols int, tiles []tiling.Tile, outs []exec.TileBuf[T], p int,
) *sparse.CSR[T] {
	c, err := assembleE(nil, rows, cols, tiles, outs, p)
	if err != nil {
		// With a nil context the only failure mode is a worker panic on
		// malformed tile outputs — an internal invariant violation.
		panic(err)
	}
	return c
}

// assembleE stitches the per-tile outputs into one CSR matrix on p
// workers. The three passes — row-count scatter, row-pointer prefix
// sum, and per-tile payload copy — each write disjoint regions (tiles
// partition the rows, so their RowPtr slots and payload ranges never
// overlap), making the parallel result bit-identical to the serial one.
// Small results, or p <= 1, take the serial path unchanged. ctx cancels
// between passes and blocks; worker panics surface as errors.
func assembleE[T sparse.Number](
	ctx context.Context, rows, cols int, tiles []tiling.Tile, outs []exec.TileBuf[T], p int,
) (*sparse.CSR[T], error) {
	c := &sparse.CSR[T]{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	if p = blockWorkers(p, rows); p <= 1 {
		var nnz int64
		for t := range outs {
			for r, n := range outs[t].RowNNZ {
				c.RowPtr[tiles[t].Lo+r+1] = int64(n)
				nnz += int64(n)
			}
		}
		for i := 0; i < rows; i++ {
			c.RowPtr[i+1] += c.RowPtr[i]
		}
		c.ColIdx = make([]sparse.Index, nnz)
		c.Val = make([]T, nnz)
		for t := range outs {
			lo := c.RowPtr[tiles[t].Lo]
			copy(c.ColIdx[lo:], outs[t].Cols)
			copy(c.Val[lo:], outs[t].Vals)
		}
		return c, nil
	}
	if err := sched.BlocksE(ctx, p, len(tiles), func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			base := tiles[t].Lo
			for r, n := range outs[t].RowNNZ {
				c.RowPtr[base+r+1] = int64(n)
			}
		}
	}); err != nil {
		return nil, err
	}
	if err := tiling.InclusiveScanE(ctx, c.RowPtr[1:], p); err != nil {
		return nil, err
	}
	nnz := c.RowPtr[rows]
	c.ColIdx = make([]sparse.Index, nnz)
	c.Val = make([]T, nnz)
	if err := sched.BlocksE(ctx, p, len(tiles), func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			off := c.RowPtr[tiles[t].Lo]
			copy(c.ColIdx[off:], outs[t].Cols)
			copy(c.Val[off:], outs[t].Vals)
		}
	}); err != nil {
		return nil, err
	}
	return c, nil
}
