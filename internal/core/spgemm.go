package core

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SpGEMM computes the unmasked product C = A × B over the semiring,
// single-threaded, with a scatter-vector accumulator. It exists as the
// reference the masked kernels are cross-checked against (masking the
// full product post hoc must equal the fused masked kernels) and as the
// "two-step" strawman the paper's §III-B dismisses.
func SpGEMM[T sparse.Number, S semiring.Semiring[T]](
	sr S, a, b *sparse.CSR[T],
) (*sparse.CSR[T], error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: A %dx%d, B %dx%d",
			sparse.ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := sparse.NewCSR[T](a.Rows, b.Cols, a.NNZ())
	vals := make([]T, b.Cols)
	present := make([]bool, b.Cols)
	touched := make([]sparse.Index, 0, 256)
	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		aCols, aVals := a.Row(i)
		for kk, k := range aCols {
			aik := aVals[kk]
			bCols, bVals := b.Row(int(k))
			for jj, j := range bCols {
				x := sr.Times(aik, bVals[jj])
				if present[j] {
					vals[j] = sr.Plus(vals[j], x)
				} else {
					present[j] = true
					vals[j] = x
					touched = append(touched, j)
				}
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		rowVals := make([]T, len(touched))
		for p, j := range touched {
			rowVals[p] = vals[j]
			present[j] = false
		}
		c.AppendRow(i, touched, rowVals)
	}
	return c, nil
}

// ApplyMask returns M ⊙ C structurally: the entries of c whose positions
// are stored in m. Together with SpGEMM it forms the two-step
// masked-SpGEMM used as a correctness oracle.
func ApplyMask[T, U sparse.Number](m *sparse.CSR[U], c *sparse.CSR[T]) (*sparse.CSR[T], error) {
	if m.Rows != c.Rows || m.Cols != c.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, C %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, c.Rows, c.Cols)
	}
	out := sparse.NewCSR[T](c.Rows, c.Cols, m.NNZ())
	for i := 0; i < c.Rows; i++ {
		maskCols := m.RowCols(i)
		cCols, cVals := c.Row(i)
		var rowCols []sparse.Index
		var rowVals []T
		// Sorted-merge intersection of the mask row and the product row.
		p, q := 0, 0
		for p < len(maskCols) && q < len(cCols) {
			switch {
			case maskCols[p] < cCols[q]:
				p++
			case maskCols[p] > cCols[q]:
				q++
			default:
				rowCols = append(rowCols, cCols[q])
				rowVals = append(rowVals, cVals[q])
				p++
				q++
			}
		}
		out.AppendRow(i, rowCols, rowVals)
	}
	return out, nil
}
