package core

import (
	"fmt"
	"math/rand"
	"testing"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/obs"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// chainOperands builds a random fused-chain problem
// D = M2 ⊙ ((M1 ⊙ (A×B)) × C) with non-square shapes so row/column
// mixups cannot cancel out.
func chainOperands(seed int64) (m1, a, b, m2, c *sparse.CSR[float64]) {
	r := rand.New(rand.NewSource(seed))
	const m, k, n, q = 61, 47, 53, 43
	a = randMatrix(m, k, 0.12, r)
	b = randMatrix(k, n, 0.12, r)
	m1 = randMatrix(m, n, 0.2, r)
	c = randMatrix(n, q, 0.12, r)
	m2 = randMatrix(m, q, 0.2, r)
	return
}

// materializedChain is the reference two-call sequence the fused chain
// must match bit for bit.
func materializedChain(t *testing.T, m1, a, b, m2, c *sparse.CSR[float64], cfg Config) *sparse.CSR[float64] {
	t.Helper()
	sr := semiring.PlusTimes[float64]{}
	mid, err := MaskedSpGEMM[float64](sr, m1, a, b, cfg)
	if err != nil {
		t.Fatalf("materialized stage 1: %v", err)
	}
	want, err := MaskedSpGEMM[float64](sr, m2, mid, c, cfg)
	if err != nil {
		t.Fatalf("materialized stage 2: %v", err)
	}
	return want
}

// TestFusedChainMatchesMaterialized pins bit-identical fused output
// across all three schedules × both tilings × engine/engineless × both
// fusion modes (staged via the default budget, streamed via a 1-byte
// budget that every tile exceeds).
func TestFusedChainMatchesMaterialized(t *testing.T) {
	m1, a, b, m2, c := chainOperands(7)
	sr := semiring.PlusTimes[float64]{}
	eng := exec.New(exec.Config{})
	for _, schedule := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
		for _, tl := range []tiling.Strategy{tiling.Uniform, tiling.FlopBalanced} {
			for _, withEngine := range []bool{false, true} {
				for _, budget := range []int64{0, 1} {
					cfg := DefaultConfig()
					cfg.Schedule = schedule
					cfg.Tiling = tl
					cfg.Tiles = 7
					cfg.Workers = 3
					cfg.FuseTileBudget = budget
					if withEngine {
						cfg.Engine = eng
					}
					name := fmt.Sprintf("%v/%v/engine=%v/budget=%d", schedule, tl, withEngine, budget)
					want := materializedChain(t, m1, a, b, m2, c, cfg)
					got, err := FusedMaskedSpGEMM[float64](sr, m1, a, b, m2, c, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if err := got.Check(); err != nil {
						t.Fatalf("%s: malformed result: %v", name, err)
					}
					if !sparse.Equal(want, got) {
						t.Fatalf("%s: fused chain differs from materialize-then-multiply", name)
					}
				}
			}
		}
	}
}

// TestFusedChainAllIterationSpaces covers every iteration space and
// accumulator kind from the shared config grid.
func TestFusedChainAllIterationSpaces(t *testing.T) {
	m1, a, b, m2, c := chainOperands(11)
	sr := semiring.PlusTimes[float64]{}
	for _, cfg := range allConfigs() {
		want := materializedChain(t, m1, a, b, m2, c, cfg)
		got, err := FusedMaskedSpGEMM[float64](sr, m1, a, b, m2, c, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("%v: fused chain differs from materialize-then-multiply", cfg)
		}
	}
}

// TestFusedChainEmptyMaskRows exercises the dead-row skip: rows whose
// M2 row is empty must not disturb neighbors, and an all-empty M2
// yields an empty result.
func TestFusedChainEmptyMaskRows(t *testing.T) {
	m1, a, b, m2, c := chainOperands(13)
	sr := semiring.PlusTimes[float64]{}
	cfg := DefaultConfig()
	cfg.Tiles = 5
	cfg.Workers = 2

	// Blank out half of M2's rows.
	coo := sparse.NewCOO[float64](m2.Rows, m2.Cols, 0)
	for i := 0; i < m2.Rows; i += 2 {
		cols, vals := m2.Row(i)
		for p, j := range cols {
			coo.Add(sparse.Index(i), j, vals[p])
		}
	}
	sparseM2 := coo.ToCSR()
	want := materializedChain(t, m1, a, b, sparseM2, c, cfg)
	got, err := FusedMaskedSpGEMM[float64](sr, m1, a, b, sparseM2, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Fatal("fused chain with empty M2 rows differs from reference")
	}

	empty := sparse.NewCSR[float64](m2.Rows, m2.Cols, 0)
	got, err = FusedMaskedSpGEMM[float64](sr, m1, a, b, empty, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Fatalf("empty M2 produced %d entries, want 0", got.NNZ())
	}
}

// TestFusedSelectMatchesFilter pins multiply+select against the
// materialize-then-filter reference on the k-truss shape S = A ⊙ (A×A).
func TestFusedSelectMatchesFilter(t *testing.T) {
	a := randGraphLocal(90, 5, 3)
	sr := semiring.PlusPair[float64]{}
	const need = 2.0
	sel := func(v float64) (float64, bool) { return 1, v >= need }
	for _, withEngine := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Tiles = 6
		cfg.Workers = 3
		if withEngine {
			cfg.Engine = exec.New(exec.Config{})
		}
		support, err := MaskedSpGEMM[float64](sr, a, a, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := sparse.NewCSR[float64](a.Rows, a.Cols, support.NNZ())
		var rowCols []sparse.Index
		var rowVals []float64
		for i := 0; i < support.Rows; i++ {
			cols, vals := support.Row(i)
			rowCols = rowCols[:0]
			rowVals = rowVals[:0]
			for p, j := range cols {
				if v, ok := sel(vals[p]); ok {
					rowCols = append(rowCols, j)
					rowVals = append(rowVals, v)
				}
			}
			want.AppendRow(i, rowCols, rowVals)
		}
		got, err := MaskedSpGEMMSelect[float64](sr, a, a, a, cfg, sel)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("engine=%v: fused select differs from materialize-then-filter", withEngine)
		}
	}
}

// TestFusedStreamMatchesRows pins multiply+stream: rows delivered to
// the sink (concurrently, row-disjoint) must reassemble into exactly
// the materialized product.
func TestFusedStreamMatchesRows(t *testing.T) {
	m1, a, b, _, _ := chainOperands(17)
	sr := semiring.PlusTimes[float64]{}
	cfg := DefaultConfig()
	cfg.Tiles = 6
	cfg.Workers = 3
	want, err := MaskedSpGEMM[float64](sr, m1, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		cols []sparse.Index
		vals []float64
	}
	rows := make([]row, a.Rows)
	sink := func(i int, cols []sparse.Index, vals []float64) {
		// Row-disjoint by contract: each i is delivered at most once.
		rows[i] = row{append([]sparse.Index(nil), cols...), append([]float64(nil), vals...)}
	}
	if err := MaskedSpGEMMStream[float64](sr, m1, a, b, cfg, sink); err != nil {
		t.Fatal(err)
	}
	coo := sparse.NewCOO[float64](want.Rows, want.Cols, want.NNZ())
	for i, r := range rows {
		for p, j := range r.cols {
			coo.Add(sparse.Index(i), j, r.vals[p])
		}
	}
	got := coo.ToCSR()
	if !sparse.Equal(want, got) {
		t.Fatal("streamed rows differ from materialized product")
	}
}

// TestFusedCounters checks the stats/v1 fused block: chain, select and
// stream runs each stamp their counters, and the chain's staged vs
// streamed tile split follows the budget.
func TestFusedCounters(t *testing.T) {
	m1, a, b, m2, c := chainOperands(23)
	sr := semiring.PlusTimes[float64]{}
	rec := obs.NewRecorder()
	cfg := DefaultConfig()
	cfg.Tiles = 4
	cfg.Workers = 2
	cfg.Recorder = rec

	if _, err := FusedMaskedSpGEMM[float64](sr, m1, a, b, m2, c, cfg); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Fused.ChainRuns != 1 {
		t.Fatalf("ChainRuns = %d, want 1", st.Fused.ChainRuns)
	}
	if st.Fused.StagedTiles == 0 || st.Fused.StreamedTiles != 0 {
		t.Fatalf("default budget: staged/streamed = %d/%d, want all staged",
			st.Fused.StagedTiles, st.Fused.StreamedTiles)
	}
	if st.Fused.MidEntries == 0 || st.Fused.MidBytes != st.Fused.MidEntries*12 {
		t.Fatalf("MidEntries/MidBytes = %d/%d, want nonzero with 12-byte entries",
			st.Fused.MidEntries, st.Fused.MidBytes)
	}
	lastSeq := st.Seq

	rec.Reset()
	cfg.FuseTileBudget = 1
	if _, err := FusedMaskedSpGEMM[float64](sr, m1, a, b, m2, c, cfg); err != nil {
		t.Fatal(err)
	}
	st = rec.Stats()
	if st.Fused.StreamedTiles == 0 || st.Fused.StagedTiles != 0 {
		t.Fatalf("1-byte budget: staged/streamed = %d/%d, want all streamed",
			st.Fused.StagedTiles, st.Fused.StreamedTiles)
	}
	_ = lastSeq

	rec.Reset()
	cfg.FuseTileBudget = 0
	selCfg := cfg
	if _, err := MaskedSpGEMMSelect[float64](semiring.PlusPair[float64]{}, m1, a, b, selCfg,
		func(v float64) (float64, bool) { return v, v >= 2 }); err != nil {
		t.Fatal(err)
	}
	st = rec.Stats()
	if st.Fused.SelectRuns != 1 || st.Fused.SelectKept+st.Fused.SelectDropped == 0 {
		t.Fatalf("select counters = %+v, want SelectRuns=1 and kept+dropped > 0", st.Fused)
	}

	rec.Reset()
	if err := MaskedSpGEMMStream[float64](sr, m1, a, b, cfg,
		func(int, []sparse.Index, []float64) {}); err != nil {
		t.Fatal(err)
	}
	st = rec.Stats()
	if st.Fused.StreamRuns != 1 || st.Fused.MidEntries == 0 {
		t.Fatalf("stream counters = %+v, want StreamRuns=1 and MidEntries > 0", st.Fused)
	}
	if ls, ok := rec.LastRun(); !ok || ls.Fused.StreamRuns != 1 {
		t.Fatalf("LastRun fused block = %+v ok=%v, want the stream run", ls.Fused, ok)
	}
}

// randGraphLocal mirrors the external test package's random simple
// graph builder for internal-package tests.
func randGraphLocal(n, deg int, seed int64) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](n, n, int64(n*deg*2))
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			coo.Add(sparse.Index(i), sparse.Index(j), 1)
			coo.Add(sparse.Index(j), sparse.Index(i), 1)
		}
	}
	a := coo.ToCSR()
	for p := range a.Val {
		a.Val[p] = 1
	}
	return a
}
