package core

import (
	"sync/atomic"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/sparse"
)

// Counters are actual (not modeled) operation counts from an
// instrumented kernel run — the ground truth the symbolic Profile is
// validated against, and the observability hook for tuning studies.
type Counters struct {
	// Rows is the number of output rows processed.
	Rows int64
	// MaskLoads is the number of mask entries inserted into accumulators.
	MaskLoads int64
	// Updates is the number of accumulator updates attempted
	// (Update + UpdateMasked calls).
	Updates int64
	// Rejected is the number of UpdateMasked calls the mask filtered out.
	Rejected int64
	// Gathered is the number of output entries emitted.
	Gathered int64
}

// countingAccumulator decorates any accumulator with operation counts.
// Counts are accumulated locally and flushed atomically so one decorator
// can serve each worker without contention in the hot loop.
type countingAccumulator[T sparse.Number] struct {
	inner accum.Accumulator[T]
	local Counters
}

//spgemm:hotpath
func (c *countingAccumulator[T]) BeginRow() {
	c.local.Rows++
	c.inner.BeginRow()
}

//spgemm:hotpath
func (c *countingAccumulator[T]) LoadMask(cols []sparse.Index) {
	c.local.MaskLoads += int64(len(cols))
	c.inner.LoadMask(cols)
}

//spgemm:hotpath
func (c *countingAccumulator[T]) Update(j sparse.Index, x T) {
	c.local.Updates++
	c.inner.Update(j, x)
}

//spgemm:hotpath
func (c *countingAccumulator[T]) UpdateMasked(j sparse.Index, x T) bool {
	c.local.Updates++
	ok := c.inner.UpdateMasked(j, x)
	if !ok {
		c.local.Rejected++
	}
	return ok
}

//spgemm:hotpath
func (c *countingAccumulator[T]) Gather(
	maskCols []sparse.Index, cols []sparse.Index, vals []T,
) ([]sparse.Index, []T) {
	before := len(cols)
	cols, vals = c.inner.Gather(maskCols, cols, vals)
	c.local.Gathered += int64(len(cols) - before)
	return cols, vals
}

// EnableStats and AccumStats pass the accum.Instrumented surface
// through to the decorated accumulator, so observability recording and
// operation counting compose in the instrumented entry point.
func (c *countingAccumulator[T]) EnableStats() {
	if in, ok := c.inner.(accum.Instrumented); ok {
		in.EnableStats()
	}
}

func (c *countingAccumulator[T]) AccumStats() accum.Stats {
	if in, ok := c.inner.(accum.Instrumented); ok {
		return in.AccumStats()
	}
	return accum.Stats{}
}

var _ accum.Instrumented = (*countingAccumulator[float64])(nil)

// flushInto adds the local counts into the shared atomic totals.
func (c *countingAccumulator[T]) flushInto(t *atomicCounters) {
	t.rows.Add(c.local.Rows)
	t.maskLoads.Add(c.local.MaskLoads)
	t.updates.Add(c.local.Updates)
	t.rejected.Add(c.local.Rejected)
	t.gathered.Add(c.local.Gathered)
}

// atomicCounters is the shared flush target: every worker's decorator
// flushes into it once per tile, so unlike the per-worker obs blocks it
// is genuinely contended and must both stay atomic and avoid sharing
// its cache lines with neighboring allocations.
//
//spgemm:padded
type atomicCounters struct {
	rows, maskLoads, updates, rejected, gathered atomic.Int64
	_                                            [128 - 5*8]byte // pad to 2 cache lines
}

func (t *atomicCounters) snapshot() Counters {
	return Counters{
		Rows:      t.rows.Load(),
		MaskLoads: t.maskLoads.Load(),
		Updates:   t.updates.Load(),
		Rejected:  t.rejected.Load(),
		Gathered:  t.gathered.Load(),
	}
}
