package core

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMMComp computes C = ¬M ⊙ (A × B): the product restricted to
// positions where the mask stores NO entry — GraphBLAS's complemented
// structural mask (GrB_COMP). BFS-style algorithms use it to exclude
// already-visited vertices.
//
// Complement masks invert the study's key property: the output is no
// longer bounded by nnz(M), so the mask cannot pre-size or pre-populate
// the accumulator and only the vanilla-style traversal applies — each
// row's full product is formed and mask hits are discarded. The
// accumulator here is a per-worker dense scratch with an explicit
// touched list, sized by the column dimension, checked out of the
// engine's pool (cfg.Engine) or constructed per call without one.
func MaskedSpGEMMComp[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	scope := cfg.Recorder.StartRun()
	defer scope.End()
	poolPrior := cfg.Engine.Stats()
	plan, err := planFor(ctx, cfg, pw, m, a, b, scope)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	tiles := plan.Tiles
	workers := sched.Workers(cfg.Workers)

	ws := exec.Dense[T, S](cfg.Engine, sr, b.Cols, workers, len(tiles))
	// Poison-on-error: a failed run can leave the dense scratch's
	// state vector mid-reset, so quarantine unless fully successful.
	clean := false
	defer func() {
		if !clean {
			ws.Poison()
		}
		ws.Release()
	}()
	outs := ws.Outs[:len(tiles)]

	if err := schedRun(ctx, cfg, workers, len(tiles), func(worker, t int) {
		runTileComp(sr, &ws.Dense[worker], m, a, b, tiles[t], &outs[t])
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleE(ctx, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	recordPoolDelta(cfg, poolPrior, scope)
	clean = true
	return c, nil
}

// runTileComp computes one tile of the complement-masked product. The
// per-worker scratch's state vector encodes 0 empty, 1 blocked by mask,
// 2 written; the touched list drives the explicit reset, which restores
// the all-zero state the (pooled) scratch must be returned in.
func runTileComp[T sparse.Number, S semiring.Semiring[T]](
	sr S, sc *exec.DenseScratch[T],
	m, a, b *sparse.CSR[T], tile tiling.Tile, out *exec.TileBuf[T],
) {
	if cap(out.RowNNZ) < tile.Rows() {
		out.RowNNZ = make([]int32, tile.Rows())
	}
	out.RowNNZ = out.RowNNZ[:tile.Rows()]
	out.Cols = out.Cols[:0]
	out.Vals = out.Vals[:0]
	for i := tile.Lo; i < tile.Hi; i++ {
		// Block the masked positions, then accumulate the row product
		// into everything else.
		for _, j := range m.RowCols(i) {
			sc.State[j] = 1
			sc.Touched = append(sc.Touched, j)
		}
		aCols, aVals := a.Row(i)
		for kk, k := range aCols {
			aik := aVals[kk]
			bCols, bVals := b.Row(int(k))
			for jj, j := range bCols {
				switch sc.State[j] {
				case 2:
					sc.Vals[j] = sr.Plus(sc.Vals[j], sr.Times(aik, bVals[jj]))
				case 0:
					sc.State[j] = 2
					sc.Vals[j] = sr.Times(aik, bVals[jj])
					sc.Touched = append(sc.Touched, j)
				} // state 1: blocked by the mask, discard
			}
		}
		// Gather written entries in column order, then reset.
		start := len(out.Cols)
		for _, j := range sc.Touched {
			if sc.State[j] == 2 {
				out.Cols = append(out.Cols, j)
				out.Vals = append(out.Vals, sc.Vals[j])
			}
			sc.State[j] = 0
		}
		sc.Touched = sc.Touched[:0]
		row := rowView[T]{out.Cols[start:], out.Vals[start:]}
		sort.Sort(&row)
		out.RowNNZ[i-tile.Lo] = int32(len(out.Cols) - start)
	}
}

// rowView sorts a freshly gathered row's (cols, vals) pair in place.
type rowView[T sparse.Number] struct {
	cols []sparse.Index
	vals []T
}

func (r *rowView[T]) Len() int           { return len(r.cols) }
func (r *rowView[T]) Less(a, b int) bool { return r.cols[a] < r.cols[b] }
func (r *rowView[T]) Swap(a, b int) {
	r.cols[a], r.cols[b] = r.cols[b], r.cols[a]
	r.vals[a], r.vals[b] = r.vals[b], r.vals[a]
}
