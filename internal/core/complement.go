package core

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/sched"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/tiling"
)

// MaskedSpGEMMComp computes C = ¬M ⊙ (A × B): the product restricted to
// positions where the mask stores NO entry — GraphBLAS's complemented
// structural mask (GrB_COMP). BFS-style algorithms use it to exclude
// already-visited vertices.
//
// Complement masks invert the study's key property: the output is no
// longer bounded by nnz(M), so the mask cannot pre-size or pre-populate
// the accumulator and only the vanilla-style traversal applies — each
// row's full product is formed and mask hits are discarded. The
// accumulator here is a per-worker dense scratch with an explicit
// touched list, sized by the column dimension.
func MaskedSpGEMMComp[T sparse.Number, S semiring.Semiring[T]](
	sr S, m, a, b *sparse.CSR[T], cfg Config,
) (*sparse.CSR[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: M %dx%d, A %dx%d, B %dx%d",
			sparse.ErrShape, m.Rows, m.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 {
		return sparse.NewCSR[T](a.Rows, b.Cols, 0), nil
	}

	ctx := cfg.Context
	pw := cfg.planWorkers()
	tiles, err := tiling.MakeParallelE(ctx, cfg.Tiling, cfg.Tiles, pw, a, b, m)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	workers := sched.Workers(cfg.Workers)
	outs := make([]tileOutput[T], len(tiles))

	scratch := make([]*compScratch[T], workers)
	for wkr := range scratch {
		scratch[wkr] = &compScratch[T]{
			vals:  make([]T, b.Cols),
			state: make([]uint8, b.Cols),
		}
	}

	if err := sched.RunChunkedE(ctx, cfg.Schedule, workers, len(tiles), cfg.GuidedMinChunk, func(worker, t int) {
		runTileComp(sr, scratch[worker], m, a, b, tiles[t], &outs[t])
	}); err != nil {
		return nil, wrapRunErr(err)
	}

	c, err := assembleE(ctx, a.Rows, b.Cols, tiles, outs, pw)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return c, nil
}

// compScratch is the per-worker state of the complement kernel: value
// and state vectors of the full column dimension plus the touched list
// used for explicit reset (state: 0 empty, 1 blocked by mask, 2 written).
type compScratch[T sparse.Number] struct {
	vals    []T
	state   []uint8
	touched []sparse.Index
}

func runTileComp[T sparse.Number, S semiring.Semiring[T]](
	sr S, sc *compScratch[T],
	m, a, b *sparse.CSR[T], tile tiling.Tile, out *tileOutput[T],
) {
	out.rowNNZ = make([]int32, tile.Rows())
	for i := tile.Lo; i < tile.Hi; i++ {
		// Block the masked positions, then accumulate the row product
		// into everything else.
		for _, j := range m.RowCols(i) {
			sc.state[j] = 1
			sc.touched = append(sc.touched, j)
		}
		aCols, aVals := a.Row(i)
		for kk, k := range aCols {
			aik := aVals[kk]
			bCols, bVals := b.Row(int(k))
			for jj, j := range bCols {
				switch sc.state[j] {
				case 2:
					sc.vals[j] = sr.Plus(sc.vals[j], sr.Times(aik, bVals[jj]))
				case 0:
					sc.state[j] = 2
					sc.vals[j] = sr.Times(aik, bVals[jj])
					sc.touched = append(sc.touched, j)
				} // state 1: blocked by the mask, discard
			}
		}
		// Gather written entries in column order, then reset.
		start := len(out.cols)
		for _, j := range sc.touched {
			if sc.state[j] == 2 {
				out.cols = append(out.cols, j)
				out.vals = append(out.vals, sc.vals[j])
			}
			sc.state[j] = 0
		}
		sc.touched = sc.touched[:0]
		row := rowView[T]{out.cols[start:], out.vals[start:]}
		sort.Sort(&row)
		out.rowNNZ[i-tile.Lo] = int32(len(out.cols) - start)
	}
}

// rowView sorts a freshly gathered row's (cols, vals) pair in place.
type rowView[T sparse.Number] struct {
	cols []sparse.Index
	vals []T
}

func (r *rowView[T]) Len() int           { return len(r.cols) }
func (r *rowView[T]) Less(a, b int) bool { return r.cols[a] < r.cols[b] }
func (r *rowView[T]) Swap(a, b int) {
	r.cols[a], r.cols[b] = r.cols[b], r.cols[a]
	r.vals[a], r.vals[b] = r.vals[b], r.vals[a]
}
