package core

import (
	"slices"

	"maskedspgemm/internal/exec"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SpVec is a sorted sparse vector: the 1×n (or n×1) operand of the
// vector kernels that BFS and betweenness centrality are built from.
type SpVec[T sparse.Number] struct {
	N   int
	Idx []sparse.Index
	Val []T
}

// NNZ returns the number of stored entries.
func (v *SpVec[T]) NNZ() int { return len(v.Idx) }

// Reset truncates the vector to empty with dimension n, keeping the
// entry storage for reuse (double-buffered frontier loops).
func (v *SpVec[T]) Reset(n int) {
	v.N = n
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
}

// Direction selects the traversal of a masked sparse vector × sparse
// matrix product — the vector analogue of the paper's iteration-space
// choice, known as push/pull or direction optimization in BFS
// literature (paper §III-B relates the two).
type Direction int

const (
	// Push scans the rows of A selected by the input vector (the Fig. 5
	// linear-scan analogue).
	Push Direction = iota
	// Pull scans candidate outputs and co-iterates the input vector with
	// each A^T row (the Fig. 7 co-iteration analogue). Requires at the
	// matrix being structurally symmetric or the caller passing A^T.
	Pull
	// Auto picks per call using the relative work estimates.
	Auto
)

// MaskedSpVM computes y = f ⊙′ (fᵀ × A) restricted to positions where
// allowed returns true (a complement mask in BFS: "not yet visited").
// A must have sorted rows; Pull additionally assumes A is the matrix
// whose rows are the in-neighborhoods of each candidate (for symmetric
// adjacency matrices A itself).
//
// The result vector is sorted. Every call allocates its scratch and its
// result; iterative callers should use MaskedSpVMInto with a pooled
// workspace instead.
func MaskedSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool, dir Direction,
) *SpVec[T] {
	return MaskedSpVMInto(sr, f, a, allowed, dir, nil, nil)
}

// MaskedSpVMInto is MaskedSpVM against caller-owned state: ws, when
// non-nil, must be an exec.Dense workspace with at least one worker
// block sized for a.Cols columns (its dense scratch replaces the push
// traversal's per-call vectors and is left clean for pooled reuse), and
// out, when non-nil, receives the result in place of a fresh vector
// (its entry storage is reused — the double-buffering hook for frontier
// loops). Either may be nil independently; out must not alias f.
func MaskedSpVMInto[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool, dir Direction,
	ws *exec.Workspace[T, S], out *SpVec[T],
) *SpVec[T] {
	if dir == Auto {
		dir = chooseDirection(f, a)
	}
	if out == nil {
		out = &SpVec[T]{}
	}
	out.Reset(a.Cols)
	switch dir {
	case Push:
		return pushSpVM(sr, f, a, allowed, ws, out)
	case Pull:
		return pullSpVM(sr, f, a, allowed, out)
	default:
		panic("core: unknown direction")
	}
}

// chooseDirection estimates push work (edges out of the frontier) vs
// pull work (co-iterating the frontier against every candidate row) and
// picks the cheaper, mirroring Eq. 3 at vector granularity.
func chooseDirection[T sparse.Number](f *SpVec[T], a *sparse.CSR[T]) Direction {
	var pushWork int64
	for _, u := range f.Idx {
		pushWork += a.RowNNZ(int(u))
	}
	// Pull must consider all rows; approximate its per-row cost by the
	// binary-search cost of the frontier against the average row.
	avgRow := int(a.NNZ() / int64(max(a.Rows, 1)))
	pullWork := int64(a.Rows) * int64(log2ceil(max(avgRow, 2))) * int64(len(f.Idx)) / int64(max(avgRow, 1))
	if pullWork < pushWork {
		return Pull
	}
	return Push
}

func pushSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool,
	ws *exec.Workspace[T, S], out *SpVec[T],
) *SpVec[T] {
	var sc *exec.DenseScratch[T]
	if ws != nil {
		sc = &ws.Dense[0]
	} else {
		sc = &exec.DenseScratch[T]{
			Vals:  make([]T, a.Cols),
			State: make([]uint8, a.Cols),
		}
	}
	vals, present := sc.Vals, sc.State
	touched := sc.Touched[:0]
	for p, u := range f.Idx {
		fu := f.Val[p]
		cols, avs := a.Row(int(u))
		for q, j := range cols {
			if !allowed(j) {
				continue
			}
			x := sr.Times(fu, avs[q])
			if present[j] != 0 {
				vals[j] = sr.Plus(vals[j], x)
			} else {
				present[j] = 1
				vals[j] = x
				touched = append(touched, j)
			}
		}
	}
	slices.Sort(touched)
	for _, j := range touched {
		out.Idx = append(out.Idx, j)
		out.Val = append(out.Val, vals[j])
		present[j] = 0 // restore the scratch's clean state
	}
	sc.Touched = touched[:0]
	return out
}

func pullSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool, out *SpVec[T],
) *SpVec[T] {
	for v := 0; v < a.Rows; v++ {
		j := sparse.Index(v)
		if !allowed(j) {
			continue
		}
		cols, avs := a.Row(v)
		// Sorted-merge co-iteration of the frontier and row v.
		p, q := 0, 0
		var acc T
		found := false
		for p < len(f.Idx) && q < len(cols) {
			switch {
			case f.Idx[p] < cols[q]:
				p++
			case f.Idx[p] > cols[q]:
				q++
			default:
				x := sr.Times(f.Val[p], avs[q])
				if found {
					acc = sr.Plus(acc, x)
				} else {
					acc = x
					found = true
				}
				p++
				q++
			}
		}
		if found {
			out.Idx = append(out.Idx, j)
			out.Val = append(out.Val, acc)
		}
	}
	return out
}
