package core

import (
	"sort"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// SpVec is a sorted sparse vector: the 1×n (or n×1) operand of the
// vector kernels that BFS and betweenness centrality are built from.
type SpVec[T sparse.Number] struct {
	N   int
	Idx []sparse.Index
	Val []T
}

// NNZ returns the number of stored entries.
func (v *SpVec[T]) NNZ() int { return len(v.Idx) }

// Direction selects the traversal of a masked sparse vector × sparse
// matrix product — the vector analogue of the paper's iteration-space
// choice, known as push/pull or direction optimization in BFS
// literature (paper §III-B relates the two).
type Direction int

const (
	// Push scans the rows of A selected by the input vector (the Fig. 5
	// linear-scan analogue).
	Push Direction = iota
	// Pull scans candidate outputs and co-iterates the input vector with
	// each A^T row (the Fig. 7 co-iteration analogue). Requires at the
	// matrix being structurally symmetric or the caller passing A^T.
	Pull
	// Auto picks per call using the relative work estimates.
	Auto
)

// MaskedSpVM computes y = f ⊙′ (fᵀ × A) restricted to positions where
// allowed returns true (a complement mask in BFS: "not yet visited").
// A must have sorted rows; Pull additionally assumes A is the matrix
// whose rows are the in-neighborhoods of each candidate (for symmetric
// adjacency matrices A itself).
//
// The result vector is sorted.
func MaskedSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool, dir Direction,
) *SpVec[T] {
	if dir == Auto {
		dir = chooseDirection(f, a)
	}
	switch dir {
	case Push:
		return pushSpVM(sr, f, a, allowed)
	case Pull:
		return pullSpVM(sr, f, a, allowed)
	default:
		panic("core: unknown direction")
	}
}

// chooseDirection estimates push work (edges out of the frontier) vs
// pull work (co-iterating the frontier against every candidate row) and
// picks the cheaper, mirroring Eq. 3 at vector granularity.
func chooseDirection[T sparse.Number](f *SpVec[T], a *sparse.CSR[T]) Direction {
	var pushWork int64
	for _, u := range f.Idx {
		pushWork += a.RowNNZ(int(u))
	}
	// Pull must consider all rows; approximate its per-row cost by the
	// binary-search cost of the frontier against the average row.
	avgRow := int(a.NNZ() / int64(max(a.Rows, 1)))
	pullWork := int64(a.Rows) * int64(log2ceil(max(avgRow, 2))) * int64(len(f.Idx)) / int64(max(avgRow, 1))
	if pullWork < pushWork {
		return Pull
	}
	return Push
}

func pushSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool,
) *SpVec[T] {
	vals := make([]T, a.Cols)
	present := make([]bool, a.Cols)
	var touched []sparse.Index
	for p, u := range f.Idx {
		fu := f.Val[p]
		cols, avs := a.Row(int(u))
		for q, j := range cols {
			if !allowed(j) {
				continue
			}
			x := sr.Times(fu, avs[q])
			if present[j] {
				vals[j] = sr.Plus(vals[j], x)
			} else {
				present[j] = true
				vals[j] = x
				touched = append(touched, j)
			}
		}
	}
	sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
	out := &SpVec[T]{N: a.Cols, Idx: touched, Val: make([]T, len(touched))}
	for p, j := range touched {
		out.Val[p] = vals[j]
	}
	return out
}

func pullSpVM[T sparse.Number, S semiring.Semiring[T]](
	sr S, f *SpVec[T], a *sparse.CSR[T], allowed func(sparse.Index) bool,
) *SpVec[T] {
	out := &SpVec[T]{N: a.Cols}
	for v := 0; v < a.Rows; v++ {
		j := sparse.Index(v)
		if !allowed(j) {
			continue
		}
		cols, avs := a.Row(v)
		// Sorted-merge co-iteration of the frontier and row v.
		p, q := 0, 0
		var acc T
		found := false
		for p < len(f.Idx) && q < len(cols) {
			switch {
			case f.Idx[p] < cols[q]:
				p++
			case f.Idx[p] > cols[q]:
				q++
			default:
				x := sr.Times(f.Val[p], avs[q])
				if found {
					acc = sr.Plus(acc, x)
				} else {
					acc = x
					found = true
				}
				p++
				q++
			}
		}
		if found {
			out.Idx = append(out.Idx, j)
			out.Val = append(out.Val, acc)
		}
	}
	return out
}
