package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func TestMaskedSpGEMM2DMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	m := randMatrix(35, 35, 0.2, r)
	a := randMatrix(35, 35, 0.15, r)
	b := randMatrix(35, 35, 0.15, r)
	for _, panels := range []int{1, 2, 4, 16, 100} {
		cfg := DefaultConfig()
		cfg.Tiles = 5
		cfg.Workers = 2
		got, err := MaskedSpGEMM2D[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg, panels)
		if err != nil {
			t.Fatalf("panels=%d: %v", panels, err)
		}
		if err := got.Check(); err != nil {
			t.Fatalf("panels=%d: malformed: %v", panels, err)
		}
		want := sparse.MaskedMatMulDense(sparse.DensePattern(m), sparse.ToDense(a), sparse.ToDense(b))
		gd := sparse.ToDense(got)
		for i := 0; i < 35; i++ {
			for j := 0; j < 35; j++ {
				if gd.At(i, j) != want.At(i, j) {
					t.Fatalf("panels=%d: C[%d,%d] = %v, want %v", panels, i, j, gd.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestMaskedSpGEMM2DMatches1D(t *testing.T) {
	// The 2-D kernel must produce bit-identical CSR to the 1-D kernel.
	f := func(seed int64, panelsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30) + 1
		a := randMatrix(n, n, 0.25, r)
		cfg := DefaultConfig()
		cfg.Tiles = r.Intn(6) + 1
		cfg.Workers = 2
		want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg)
		if err != nil {
			return false
		}
		got, err := MaskedSpGEMM2D[float64](semiring.PlusTimes[float64]{}, a, a, a, cfg, int(panelsRaw%10)+1)
		if err != nil {
			return false
		}
		return sparse.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMaskedSpGEMM2DRectangular(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	a := randMatrix(12, 40, 0.2, r)
	b := randMatrix(40, 18, 0.2, r)
	m := randMatrix(12, 18, 0.35, r)
	cfg := DefaultConfig()
	cfg.Tiles = 3
	got, err := MaskedSpGEMM2D[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("2-D result differs on rectangular operands")
	}
}

func TestMaskedSpGEMM2DEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	sr := semiring.PlusTimes[float64]{}
	z := sparse.NewCSR[float64](0, 0, 0)
	got, err := MaskedSpGEMM2D[float64](sr, z, z, z, cfg, 4)
	if err != nil || got.Rows != 0 {
		t.Errorf("zero-rows: %v %v", got, err)
	}
	r := rand.New(rand.NewSource(74))
	a := randMatrix(6, 7, 0.5, r)
	bad := randMatrix(9, 6, 0.5, r)
	mm := randMatrix(6, 6, 0.5, r)
	if _, err := MaskedSpGEMM2D[float64](sr, mm, a, bad, cfg, 4); err == nil {
		t.Error("shape mismatch accepted")
	}
	badCfg := cfg
	badCfg.Tiles = 0
	if _, err := MaskedSpGEMM2D[float64](sr, mm, a, a, badCfg, 4); err == nil {
		t.Error("invalid config accepted")
	}
	// Panel counts beyond the dimension clamp.
	small := randMatrix(4, 4, 0.5, r)
	if _, err := MaskedSpGEMM2D[float64](sr, small, small, small, cfg, 1000); err != nil {
		t.Errorf("huge panel count: %v", err)
	}
	if _, err := MaskedSpGEMM2D[float64](sr, small, small, small, cfg, 0); err != nil {
		t.Errorf("zero panels must degrade to 1: %v", err)
	}
}

func TestColumnWiseMatchesRowWise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := r.Intn(20)+1, r.Intn(20)+1, r.Intn(20)+1
		a := randMatrix(rows, inner, 0.25, r)
		b := randMatrix(inner, cols, 0.25, r)
		m := randMatrix(rows, cols, 0.3, r)
		cfg := DefaultConfig()
		cfg.Tiles = 4
		cfg.Workers = 2

		want, err := MaskedSpGEMM[float64](semiring.PlusTimes[float64]{}, m, a, b, cfg)
		if err != nil {
			return false
		}
		gotCSC, err := MaskedSpGEMMCSC[float64](semiring.PlusTimes[float64]{},
			sparse.CSRToCSC(m), sparse.CSRToCSC(a), sparse.CSRToCSC(b), cfg)
		if err != nil {
			return false
		}
		if gotCSC.Check() != nil {
			return false
		}
		return sparse.Equal(want, sparse.CSCToCSR(gotCSC))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProfileMasked(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	a := randMatrix(30, 30, 0.2, r)
	p, err := ProfileMasked(a, a, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaskNNZ != a.NNZ() {
		t.Errorf("MaskNNZ = %d, want %d", p.MaskNNZ, a.NNZ())
	}
	// Flops must equal the tiling package's independent count.
	var flops int64
	for i := 0; i < a.Rows; i++ {
		for _, k := range a.RowCols(i) {
			flops += a.RowNNZ(int(k))
		}
	}
	if p.Flops != flops {
		t.Errorf("Flops = %d, want %d", p.Flops, flops)
	}
	if p.Eq2Work != p.MaskNNZ+p.Flops {
		t.Error("Eq2Work != MaskNNZ + Flops")
	}
	if p.CoIterPairs+p.LinearPairs != a.NNZ() {
		t.Errorf("decisions %d+%d != nnz(A) %d", p.CoIterPairs, p.LinearPairs, a.NNZ())
	}
	if p.HybridCost > p.Flops && p.CoIterPairs > 0 {
		// Co-iteration is only chosen when modeled cheaper, so the hybrid
		// cost can never exceed the pure-linear cost at κ=1.
		t.Errorf("hybrid cost %d exceeds linear cost %d", p.HybridCost, p.Flops)
	}
	if s := p.PredictedCoIterSpeedup(); s < 1 {
		t.Errorf("predicted speedup %v < 1 at κ=1", s)
	}
	if f := p.CoIterFraction(); f < 0 || f > 1 {
		t.Errorf("co-iteration fraction %v out of range", f)
	}
	if p.String() == "" {
		t.Error("empty profile string")
	}
	// Kappa extremes flip all decisions.
	pAll, _ := ProfileMasked(a, a, a, 1e9)
	if pAll.LinearPairs != 0 {
		t.Error("κ=1e9 must co-iterate everything")
	}
	pNone, _ := ProfileMasked(a, a, a, 1e-9)
	if pNone.CoIterPairs != 0 {
		t.Error("κ=1e-9 must co-iterate nothing")
	}
	// Shape error.
	bad := randMatrix(5, 7, 0.5, r)
	if _, err := ProfileMasked(a, a, bad, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestCSCConversions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMatrix(r.Intn(25)+1, r.Intn(25)+1, 0.3, r)
		csc := sparse.CSRToCSC(m)
		if csc.Check() != nil {
			return false
		}
		if csc.NNZ() != m.NNZ() {
			return false
		}
		return sparse.Equal(m, sparse.CSCToCSR(csc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
