package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

func TestEWiseAddOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := r.Intn(20)+1, r.Intn(20)+1
		a := randMatrix(rows, cols, 0.3, r)
		b := randMatrix(rows, cols, 0.3, r)
		got, err := EWiseAdd[float64](semiring.PlusTimes[float64]{}, a, b)
		if err != nil || got.Check() != nil {
			return false
		}
		da, db, dg := sparse.ToDense(a), sparse.ToDense(b), sparse.ToDense(got)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if dg.At(i, j) != da.At(i, j)+db.At(i, j) {
					return false
				}
			}
		}
		// Union structure: nnz(out) = nnz(a) + nnz(b) - |intersection|.
		var inter int64
		for i := 0; i < rows; i++ {
			for _, j := range a.RowCols(i) {
				if b.Has(i, j) {
					inter++
				}
			}
		}
		return got.NNZ() == a.NNZ()+b.NNZ()-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEWiseMultOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := r.Intn(20)+1, r.Intn(20)+1
		a := randMatrix(rows, cols, 0.35, r)
		b := randMatrix(rows, cols, 0.35, r)
		got, err := EWiseMult[float64](semiring.PlusTimes[float64]{}, a, b)
		if err != nil || got.Check() != nil {
			return false
		}
		// Intersection structure with products.
		for i := 0; i < rows; i++ {
			for _, j := range got.RowCols(i) {
				if !a.Has(i, j) || !b.Has(i, j) {
					return false
				}
				if got.At(i, j) != a.At(i, j)*b.At(i, j) {
					return false
				}
			}
			for _, j := range a.RowCols(i) {
				if b.Has(i, j) && !got.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEWiseShapeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randMatrix(4, 5, 0.5, r)
	b := randMatrix(5, 4, 0.5, r)
	if _, err := EWiseAdd[float64](semiring.PlusTimes[float64]{}, a, b); err == nil {
		t.Error("EWiseAdd shape mismatch accepted")
	}
	if _, err := EWiseMult[float64](semiring.PlusTimes[float64]{}, a, b); err == nil {
		t.Error("EWiseMult shape mismatch accepted")
	}
}

func TestEWiseMultEqualsApplyMaskOnPattern(t *testing.T) {
	// eWiseMult with a pattern (all-ones) operand is structural masking.
	r := rand.New(rand.NewSource(7))
	c := randMatrix(25, 25, 0.3, r)
	m := randMatrix(25, 25, 0.3, r)
	viaEWise, err := EWiseMult[float64](semiring.PlusTimes[float64]{}, c, m.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	viaMask, err := ApplyMask(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(viaEWise, viaMask) {
		t.Error("eWiseMult(pattern) != ApplyMask")
	}
}

func TestReduceRows(t *testing.T) {
	coo := sparse.NewCOO[float64](4, 5, 5)
	coo.Add(0, 1, 2)
	coo.Add(0, 4, 3)
	coo.Add(2, 0, 7)
	// row 1 and 3 empty
	m := coo.ToCSR()
	v := ReduceRows[float64](semiring.PlusTimes[float64]{}, m)
	if v.NNZ() != 2 {
		t.Fatalf("reduced nnz = %d, want 2", v.NNZ())
	}
	if v.Idx[0] != 0 || v.Val[0] != 5 || v.Idx[1] != 2 || v.Val[1] != 7 {
		t.Errorf("reduce = %v %v", v.Idx, v.Val)
	}
	// Min-reduce picks the per-row minimum.
	mn := ReduceRows[float64](semiring.MinPlus[float64]{Inf: 1e18}, m)
	if mn.Val[0] != 2 {
		t.Errorf("min reduce = %v, want 2", mn.Val[0])
	}
}

func TestReduceRowsTrianglesPerVertex(t *testing.T) {
	// Row-reducing the support matrix S = A ⊙ (A×A) gives 2× triangles
	// per vertex (each incident triangle contributes to two of the
	// vertex's edges... counted once per neighbor pair = 2 per triangle).
	coo := sparse.NewCOO[float64](3, 3, 6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		coo.Add(sparse.Index(e[0]), sparse.Index(e[1]), 1)
		coo.Add(sparse.Index(e[1]), sparse.Index(e[0]), 1)
	}
	a := coo.ToCSR()
	s, err := MaskedSpGEMM[float64](semiring.PlusPair[float64]{}, a, a, a, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := ReduceRows[float64](semiring.PlusTimes[float64]{}, s)
	for p := range v.Idx {
		if v.Val[p] != 2 {
			t.Errorf("vertex %d wedge count %v, want 2", v.Idx[p], v.Val[p])
		}
	}
}
