// Package hotpathalloc rejects allocating constructs in functions
// marked //spgemm:hotpath — the per-row and per-probe kernel paths
// whose constant factors the paper's cost models (Eq. 2/Eq. 3) are
// about. A single accidental allocation in a row kernel turns an
// O(flops) multiply into an allocator benchmark, and the regression is
// silent: tests still pass, throughput quietly halves.
//
// Flagged inside a hot-path function:
//   - make, new, map/slice composite literals, &composite literals
//   - append to a slice declared locally without an explicit capacity
//     (append to parameters and struct fields is trusted: the buffer
//     contract there is the caller's, guarded by AllocsPerRun tests)
//   - closure literals and go statements
//   - string concatenation and string<->[]byte conversions
//   - boxing a non-pointer value into an interface
//   - any call into an allocation-prone package (fmt, errors, strconv,
//     strings, bytes, sort, log, reflect)
//   - calls to non-hot-path functions in this module whose bodies
//     allocate directly (one level of propagation)
//
// Intentional slow paths (e.g. amortized table growth) carry a
// //lint:ignore hotpathalloc <reason> directive.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"maskedspgemm/internal/lint"
)

// Directive marks a function as hot-path.
const Directive = "//spgemm:hotpath"

// allocProne are stdlib packages whose exported API allocates (or
// exists to build strings/errors); hot paths may not call into them.
var allocProne = map[string]bool{
	"fmt": true, "errors": true, "strconv": true, "strings": true,
	"bytes": true, "sort": true, "log": true, "reflect": true,
}

// fnFact is the cross-package summary of one function.
type fnFact struct {
	Hotpath   bool
	Allocates bool   // body contains a direct allocating construct
	Reason    string // first allocating construct, for diagnostics
}

// Analyzer is the hotpathalloc pass.
var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "reject allocating constructs in //spgemm:hotpath functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// First: summarize every function and export facts, so both this
	// package's hot paths and importing packages can check their calls.
	type fn struct {
		decl    *ast.FuncDecl
		obj     types.Object
		hotpath bool
	}
	var fns []fn
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			hot := lint.HasDirective(fd.Doc, Directive)
			fact := fnFact{Hotpath: hot}
			if reason, pos := firstAlloc(pass, fd); pos.IsValid() {
				fact.Allocates = true
				fact.Reason = reason
			}
			pass.ExportObjectFact(obj, fact)
			fns = append(fns, fn{decl: fd, obj: obj, hotpath: hot})
		}
	}
	// Second: report every allocating construct and allocating callee
	// inside the hot-path functions.
	for _, f := range fns {
		if !f.hotpath {
			continue
		}
		reportAllocs(pass, f.decl)
	}
	return nil
}

// firstAlloc returns the first direct allocating construct in fd, used
// for the exported fact (one-level propagation to callers).
func firstAlloc(pass *lint.Pass, fd *ast.FuncDecl) (string, token.Pos) {
	var reason string
	var pos token.Pos
	walkAllocs(pass, fd, func(p token.Pos, msg string) {
		if !pos.IsValid() {
			reason, pos = msg, p
		}
	})
	return reason, pos
}

// reportAllocs reports every allocating construct and every call to a
// known-allocating callee in fd.
func reportAllocs(pass *lint.Pass, fd *ast.FuncDecl) {
	walkAllocs(pass, fd, func(p token.Pos, msg string) {
		pass.Reportf(p, "hot path: %s", msg)
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the literal itself is already reported
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type().Underlying()) {
				return true // dynamic dispatch: unresolvable statically
			}
			if _, ok := sig.Recv().Type().(*types.TypeParam); ok {
				return true
			}
		}
		if callee.Pkg() == nil {
			return true // builtin: handled by walkAllocs
		}
		if fact, ok := pass.ObjectFact(callee).(fnFact); ok {
			// A function of this module, summarized by an earlier (or this)
			// pass. Hot-path callees are checked at their own definition.
			if !fact.Hotpath && fact.Allocates {
				pass.Reportf(call.Pos(), "hot path: calls %s, which allocates (%s); mark it %s or hoist the allocation",
					callee.Name(), fact.Reason, Directive)
			}
			return true
		}
		if allocProne[callee.Pkg().Path()] {
			pass.Reportf(call.Pos(), "hot path: call to %s.%s (package %s is allocation-prone)",
				callee.Pkg().Name(), callee.Name(), callee.Pkg().Path())
		}
		return true
	})
}

// calleeFunc resolves the static callee of call, or nil for builtins,
// type conversions and indirect calls through function values.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // explicit instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
	}
	f, _ := obj.(*types.Func)
	if f != nil {
		// Methods on instantiated generic receivers resolve to derived
		// objects; facts are keyed by the generic declaration.
		f = f.Origin()
	}
	return f
}

// walkAllocs invokes report for each direct allocating construct in fd,
// not descending into nested function literals (the literal itself is
// the allocation there).
func walkAllocs(pass *lint.Pass, fd *ast.FuncDecl, report func(token.Pos, string)) {
	info := pass.TypesInfo
	reported := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
					reported[cl] = true
				}
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, report)
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					checkBox(pass, info.TypeOf(lhs), n.Rhs[i], report)
				}
			}
		case *ast.ReturnStmt:
			sig, ok := info.TypeOf(fd.Name).(*types.Signature)
			if !ok || sig.Results().Len() != len(n.Results) {
				return true
			}
			for i, res := range n.Results {
				checkBox(pass, sig.Results().At(i).Type(), res, report)
			}
		}
		return true
	})
}

// checkCall handles builtins (make/new/append), conversions, and
// implicit interface boxing of call arguments.
func checkCall(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if isStringByteConversion(dst, src) {
				report(call.Pos(), "conversion between string and []byte/[]rune allocates")
				return
			}
			checkBox(pass, dst, call.Args[0], report)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				checkAppend(pass, fd, call, report)
			}
			return
		}
	}
	// Implicit boxing of arguments into interface parameters.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (i == sig.Params().Len()-1 && !sig.Variadic()):
			param = sig.Params().At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue // f(xs...) passes the slice through unboxed
		}
		checkBox(pass, param, arg, report)
	}
}

// checkAppend flags appends whose destination is a local slice that was
// never preallocated with an explicit capacity. Appends to parameters
// and struct fields follow the caller-owns-the-buffer contract and are
// trusted.
func checkAppend(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string)) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // field or indexed destination: caller-owned buffer
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() < fd.Pos() || v.Pos() > fd.End() {
		return // not declared in this function
	}
	if isParam(pass, fd, v) {
		return
	}
	init, found := findInit(pass, fd, v)
	if !found {
		report(call.Pos(), "append to "+v.Name()+", declared without capacity (var declaration)")
		return
	}
	if preallocated(pass, init) {
		return
	}
	report(call.Pos(), "append may grow un-preallocated slice "+v.Name())
}

// isParam reports whether v is a parameter, result or receiver of fd.
func isParam(pass *lint.Pass, fd *ast.FuncDecl, v *types.Var) bool {
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == v {
			return true
		}
	}
	return sig.Recv() == v
}

// findInit locates the initializer expression of v inside fd.
func findInit(pass *lint.Pass, fd *ast.FuncDecl, v *types.Var) (ast.Expr, bool) {
	var init ast.Expr
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if pass.TypesInfo.Defs[id] == v || pass.TypesInfo.Uses[id] == v {
					found = true
					if init == nil {
						var rhs ast.Expr
						if len(n.Rhs) == len(n.Lhs) {
							rhs = n.Rhs[i]
						} else if len(n.Rhs) == 1 {
							// x, y := f(): the callee owns the capacity contract.
							rhs = n.Rhs[0]
						}
						// v = append(v, ...) is growth, not initialization:
						// it must not mask an uncapacitated declaration.
						if !isSelfAppend(pass, rhs, v) {
							init = rhs
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == v {
					found = true
					if i < len(n.Values) && init == nil {
						init = n.Values[i]
					}
				}
			}
		}
		return true
	})
	return init, found && init != nil
}

// isSelfAppend reports whether e is append(v, ...) for the variable v.
func isSelfAppend(pass *lint.Pass, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[dst] == v
}

// preallocated reports whether init plausibly reserves capacity: a
// make with an explicit capacity, a slice of an existing array, or any
// opaque expression (call, field, parameter) whose buffer the callee
// does not own.
func preallocated(pass *lint.Pass, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return len(e.Args) >= 3
			}
		}
		return true // result of a call: capacity is the callee's contract
	case *ast.CompositeLit:
		return false
	case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
		return true
	default:
		return false
	}
}

// checkBox reports boxing a concrete non-pointer value into dst when
// dst is an interface type: the value is copied to the heap at the
// conversion point.
func checkBox(pass *lint.Pass, dst types.Type, src ast.Expr, report func(token.Pos, string)) {
	if dst == nil {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	if !types.IsInterface(dst.Underlying()) {
		return
	}
	st := pass.TypesInfo.TypeOf(src)
	if st == nil {
		return
	}
	if _, ok := st.(*types.TypeParam); ok {
		return
	}
	if types.IsInterface(st.Underlying()) {
		return // interface-to-interface: no new allocation
	}
	switch u := st.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return // pointer-shaped: fits the interface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0 {
			return // unsafe.Pointer, or untyped constant (incl. nil)
		}
	}
	report(src.Pos(), types.TypeString(st, types.RelativeTo(pass.Pkg))+" boxed into interface "+
		types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// isStringByteConversion reports string <-> []byte/[]rune conversions.
func isStringByteConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
