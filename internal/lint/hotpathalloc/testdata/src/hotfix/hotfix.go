// Package hotfix is the hotpathalloc fixture: every construct the
// analyzer must flag inside //spgemm:hotpath functions, plus the
// shapes it must trust (parameters, preallocated buffers, hot-path
// callees, dynamic dispatch, suppressions).
package hotfix

import (
	"fmt"
	"sort"
)

type item struct{ a, b int }

type sink interface{ m() }

type val int

func (val) m() {}

// plain is not hot-path: nothing here is reported.
func plain() []int {
	xs := []int{1, 2, 3}
	m := map[int]int{1: 2}
	_ = m
	go plainHelper()
	return append(xs, 4)
}

func plainHelper() {}

// allocHelper allocates and is not hot-path; hot-path callers are
// reported (one level of propagation).
func allocHelper(n int) []int {
	return make([]int, n)
}

// pure is allocation-free, so hot-path callers are fine.
func pure(x int) int { return x + 1 }

//spgemm:hotpath
func hotAllocs(s string, xs []int, ss sink, v val) {
	_ = make([]int, 4) // want `make allocates`
	_ = new(item)      // want `new allocates`
	_ = []int{1}       // want `slice literal allocates`
	_ = map[int]int{}  // want `map literal allocates`
	_ = &item{}        // want `&composite literal escapes to the heap`
	f := func() int { return 1 } // want `closure literal allocates`
	_ = f
	go plainHelper()   // want `go statement spawns a goroutine`
	_ = s + "!"        // want `string concatenation allocates`
	_ = []byte(s)      // want `conversion between string and \[\]byte`
	ss = v             // want `val boxed into interface sink`
	_ = ss
	sort.Ints(xs)      // want `package sort is allocation-prone`
	_ = fmt.Sprintln() // want `package fmt is allocation-prone`
	_ = allocHelper(3) // want `calls allocHelper, which allocates`
	_ = pure(4)
}

//spgemm:hotpath
func hotAppend(dst []int, x int) []int {
	buf := make([]int, 0, 8) // want `make allocates`
	buf = append(buf, x)     // append to a capacity-preallocated local is fine
	var bad []int
	bad = append(bad, x)   // want `append to bad, declared without capacity`
	grow := make([]int, 0) // want `make allocates`
	grow = append(grow, x) // want `append may grow un-preallocated slice grow`
	_ = buf
	_ = grow
	return append(dst, x) // parameter buffer is the caller's contract
}

type accumulator interface{ update(int) }

//spgemm:hotpath
func viaInterface(a accumulator) {
	a.update(1) // dynamic dispatch: not resolvable statically
}

//spgemm:hotpath
func hotInner() {
	_ = make([]int, 1) // want `make allocates`
}

//spgemm:hotpath
func hotOuter() {
	hotInner() // hot-path callee is checked at its own definition
}

//spgemm:hotpath
func suppressed() {
	//lint:ignore hotpathalloc amortized growth outside the steady state
	_ = make([]int, 8)
}

type table[T any] struct{ slots []T }

// grow is a generic allocating slow path; the instantiated method call
// below must still resolve to this declaration's fact.
func (t *table[T]) grow() {
	t.slots = make([]T, 2*len(t.slots))
}

//spgemm:hotpath
func (t *table[T]) insert(x T) {
	t.slots[0] = x
	t.grow() // want `calls grow, which allocates`
}
