package hotpathalloc_test

import (
	"testing"

	"maskedspgemm/internal/lint/hotpathalloc"
	"maskedspgemm/internal/lint/linttest"
)

func TestHotpathAlloc(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), hotpathalloc.Analyzer, "hotfix")
}
