// Package leak exercises every accepted termination proof, the two
// leaking shapes, and the documented suppression.
package leak

import (
	"context"
	"sync"
	"sync/atomic"

	"leakdep"
)

func work() {}

// joined workers signal a WaitGroup the spawner waits on.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// quitLoop exits when its quit channel closes (context cancellation
// proves termination the same way, via <-ctx.Done()).
func quitLoop() func() {
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
	return func() { close(quit) }
}

// closeSignal announces its own exit with close(done).
func closeSignal() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// stopFlag polls an atomic.Bool.
func stopFlag(stop *atomic.Bool) {
	go func() {
		for !stop.Load() {
			work()
		}
	}()
}

// ctxPoll checks ctx.Err each iteration.
func ctxPoll(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// condWait parks on a condition variable the supervisor broadcasts —
// the wave barrier's shape: an observable join point, not a leak.
func condWait(c *sync.Cond, done *bool) {
	go func() {
		c.L.Lock()
		for !*done {
			c.Wait()
		}
		c.L.Unlock()
		work()
	}()
}

// viaDep terminates through a callee in another package: the evidence
// arrives as an object fact through the call graph.
func viaDep(stop *atomic.Bool) {
	go leakdep.Loop(stop)
}

// spin never exits and nothing can stop it.
func spin() {
	for {
		work()
	}
}

func leakyLit() {
	go func() { // want `goroutine has no provable termination path`
		for {
			work()
		}
	}()
}

func leakyCall() {
	go spin() // want `goroutine has no provable termination path`
}

// daemon is intentional and documented.
func daemon() {
	//lint:ignore goroutineleak process-lifetime pump, exits with the process
	go spin()
}
