// Package leakdep holds a worker loop whose termination evidence (a
// stop-flag poll) is exported as an EvidenceFact and consumed when a
// spawn in the importing package is checked.
package leakdep

import "sync/atomic"

// Loop polls a stop flag: direct termination evidence.
func Loop(stop *atomic.Bool) {
	for !stop.Load() {
		work()
	}
}

func work() {}
