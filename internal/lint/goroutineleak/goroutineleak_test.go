package goroutineleak_test

import (
	"testing"

	"maskedspgemm/internal/lint/goroutineleak"
	"maskedspgemm/internal/lint/linttest"
)

// TestGoroutineLeak loads the dependency first so leak's cross-package
// spawn proves termination through leakdep's exported EvidenceFact.
func TestGoroutineLeak(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), goroutineleak.Analyzer, "leakdep", "leak")
}
