// Package goroutineleak enforces the repository's goroutine lifecycle
// contract: every `go` statement must carry a provable termination
// path. A worker that nothing joins and nothing can stop outlives its
// run — under the serving roadmap (sharded workers exchanging panels,
// multi-tenant streams) a leaked goroutine per request is a slow OOM
// and a stuck one is an unkillable tenant.
//
// Termination evidence, searched in the spawned body and transitively
// through every statically resolved callee (cross-package, via the
// call graph):
//
//   - a channel receive or send, a range over a channel, or a receive
//     in a select — the goroutine participates in a join or quit
//     protocol (context cancellation lands here via <-ctx.Done());
//   - a stop-flag poll: atomic.Bool.Load or ctx.Err();
//   - a WaitGroup join: any (*sync.WaitGroup).Done call;
//   - a completion signal: close(ch), which a supervisor awaits;
//   - a condition-variable park: (*sync.Cond).Wait — the wave
//     scheduler's barrier; the releasing Broadcast is the supervisor's
//     to issue, making the exit observable.
//
// A goroutine whose termination is established by means the analyzer
// cannot see (an external library's own lifecycle, process-lifetime
// daemons) is annotated at the go statement:
//
//	//lint:ignore goroutineleak server lives for the process
//	go srv.run()
//
// The analyzer is deliberately an under-approximation of "terminates":
// bounded loops with no join still flag, because the contract is not
// "eventually exits" but "exits observably" — the spawner (or its
// supervisor) must be able to wait for or trigger the exit.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"maskedspgemm/internal/lint"
)

// Analyzer is the goroutineleak pass.
var Analyzer = &lint.Analyzer{
	Name:       "goroutineleak",
	Doc:        "every go statement needs a provable termination path: channel join, stop-flag poll, WaitGroup, or close signal",
	Run:        run,
	RunProgram: runProgram,
}

// EvidenceFact marks a function whose body carries direct termination
// evidence; exported per package so spawns in importing packages can
// prove termination through calls into this one.
type EvidenceFact struct {
	// Kind describes the first evidence found, for diagnostics/tests.
	Kind string
}

// run exports an EvidenceFact for every declared function with direct
// evidence in its body (including nested function literals).
func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if kind := directEvidence(pass.TypesInfo, fd.Body); kind != "" {
				pass.ExportObjectFact(fn, &EvidenceFact{Kind: kind})
			}
		}
	}
	return nil
}

func runProgram(pass *lint.ProgramPass) error {
	// trans reports whether fn (or anything it statically calls)
	// carries termination evidence. Memoized over the call graph.
	memo := map[*types.Func]bool{}
	onStack := map[*types.Func]bool{}
	var trans func(fn *types.Func) bool
	trans = func(fn *types.Func) bool {
		if got, ok := memo[fn]; ok {
			return got
		}
		if onStack[fn] {
			return false
		}
		onStack[fn] = true
		defer func() { onStack[fn] = false }()
		if _, ok := pass.ObjectFact(fn).(*EvidenceFact); ok {
			memo[fn] = true
			return true
		}
		node := pass.Graph.Lookup(fn)
		if node != nil {
			for _, e := range node.Out {
				if e.Callee.Decl != nil && trans(e.Callee.Func) {
					memo[fn] = true
					return true
				}
			}
		}
		memo[fn] = false
		return false
	}

	var spawns []*ast.GoStmt
	infoOf := map[*ast.GoStmt]*types.Info{}
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					spawns = append(spawns, g)
					infoOf[g] = info
				}
				return true
			})
		}
	}
	sort.Slice(spawns, func(i, j int) bool { return spawns[i].Pos() < spawns[j].Pos() })

	for _, g := range spawns {
		info := infoOf[g]
		if spawnTerminates(info, g, trans) {
			continue
		}
		pass.Reportf(g.Pos(),
			"goroutine has no provable termination path (no channel join, stop-flag poll, WaitGroup Done, or close signal in its body or static callees); make its exit observable or annotate //lint:ignore goroutineleak <reason>")
	}
	return nil
}

// spawnTerminates checks one go statement: direct evidence in a
// spawned literal's body, or transitive evidence through any resolved
// call in the spawned expression.
func spawnTerminates(info *types.Info, g *ast.GoStmt, trans func(*types.Func) bool) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if directEvidence(info, lit.Body) != "" {
			return true
		}
	}
	// Any statically resolved call in the spawned expression (the
	// called function itself, or calls inside a literal body) with
	// transitive evidence proves the spawn.
	found := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := lint.CalleeFunc(info, call); fn != nil && trans(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// directEvidence scans one body (nested literals included) for
// termination evidence, returning its kind or "".
func directEvidence(info *types.Info, body ast.Node) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				kind = "channel receive"
			}
		case *ast.SendStmt:
			kind = "channel send"
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					kind = "range over channel"
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" && info.Uses[fun] == nil {
					// The predeclared close builtin has no Uses entry
					// under a named object; Implicit builtins resolve to
					// *types.Builtin via Uses in practice — accept either.
					kind = "close signal"
				} else if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					kind = "close signal"
				}
			case *ast.SelectorExpr:
				fn, _ := info.Uses[fun.Sel].(*types.Func)
				if fn == nil {
					break
				}
				switch {
				case fn.Name() == "Done" && recvIs(fn, "sync", "WaitGroup"):
					kind = "WaitGroup Done"
				case fn.Name() == "Load" && recvIs(fn, "sync/atomic", "Bool"):
					kind = "stop-flag poll"
				case fn.Name() == "Err" && recvIs(fn, "context", "Context"):
					kind = "context poll"
				case fn.Name() == "Wait" && recvIs(fn, "sync", "Cond"):
					// A worker parked in sync.Cond.Wait (the wave
					// barrier) is released by a Broadcast the supervisor
					// owns — an observable join point, same as a channel.
					kind = "condvar wait"
				}
			}
		}
		return true
	})
	return kind
}

// recvIs reports whether fn is a method whose receiver (or its
// pointee) is the named type pkgPath.name. Interface methods (like
// context.Context.Err) resolve through the interface's defining named
// type.
func recvIs(fn *types.Func, pkgPath, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
