// Package nilsaferecorder enforces the obs.Recorder nil-object
// contract: a nil *Recorder is the disabled state, threaded through the
// whole kernel unconditionally, so every exported method must begin
// with a nil-receiver guard — and code outside the Recorder's own
// methods must never reach around the methods into its fields.
//
// Two rules:
//
//  1. Every exported method on *Recorder (any struct named Recorder in
//     a package named obs) whose body uses the receiver must begin with
//     `if r == nil { ... }` (the guard may be the first operand of ||,
//     as in `if r == nil || !enabled { ... }`). Methods that only
//     compare the receiver against nil (e.g. Enabled) are exempt.
//  2. A selector that resolves to a *field* of Recorder from outside
//     the Recorder's methods is reported: field access on a nil
//     receiver panics exactly where the nil-object pattern promises
//     safety.
package nilsaferecorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"maskedspgemm/internal/lint"
)

// Analyzer is the nilsaferecorder pass.
var Analyzer = &lint.Analyzer{
	Name: "nilsaferecorder",
	Doc:  "exported obs.Recorder methods must nil-guard their receiver; no field access outside its methods",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recv := recorderReceiver(pass, fd); recv != nil {
				if fd.Name.IsExported() {
					checkGuard(pass, fd, recv)
				}
				continue // rule 2 does not apply inside Recorder methods
			}
			checkFieldAccess(pass, fd)
		}
	}
	return nil
}

// isRecorderType reports whether t (after pointer stripping) is a named
// struct type called Recorder defined in a package named obs.
func isRecorderType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// recorderReceiver returns the receiver variable if fd is a method on
// *Recorder (or Recorder), else nil.
func recorderReceiver(pass *lint.Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok || sig.Recv() == nil || !isRecorderType(sig.Recv().Type()) {
		return nil
	}
	return sig.Recv()
}

// checkGuard verifies the method begins with a nil-receiver guard.
func checkGuard(pass *lint.Pass, fd *ast.FuncDecl, recv *types.Var) {
	if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
		return // a value receiver cannot be nil, and `r == nil` would not compile
	}
	if !usesReceiverBeyondNilChecks(pass, fd, recv) {
		return // e.g. func (r *Recorder) Enabled() bool { return r != nil }
	}
	if len(fd.Body.List) > 0 {
		if ifs, ok := fd.Body.List[0].(*ast.IfStmt); ok && ifs.Init == nil {
			if condHasNilCheck(pass, ifs.Cond, recv) && terminates(ifs.Body) {
				return
			}
		}
	}
	pass.Reportf(fd.Name.Pos(),
		"exported method %s on *%s.Recorder must begin with a nil-receiver guard (if %s == nil { return ... })",
		fd.Name.Name, pass.Pkg.Name(), recv.Name())
}

// condHasNilCheck reports whether cond is `recv == nil`, possibly as
// the leftmost operand of a || chain.
func condHasNilCheck(pass *lint.Pass, cond ast.Expr, recv *types.Var) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condHasNilCheck(pass, e.X, recv)
		}
		if e.Op != token.EQL {
			return false
		}
		return isNilCompare(pass, e, recv)
	}
	return false
}

// isNilCompare reports whether e compares the receiver with nil.
func isNilCompare(pass *lint.Pass, e *ast.BinaryExpr, recv *types.Var) bool {
	isRecv := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
		return isNilObj
	}
	return (isRecv(e.X) && isNil(e.Y)) || (isRecv(e.Y) && isNil(e.X))
}

// terminates reports whether the guard body unconditionally leaves the
// function (return or panic).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// usesReceiverBeyondNilChecks reports whether the body dereferences or
// otherwise uses the receiver in a way that would panic when nil.
func usesReceiverBeyondNilChecks(pass *lint.Pass, fd *ast.FuncDecl, recv *types.Var) bool {
	nilCompared := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			if isNilCompare(pass, be, recv) {
				for _, side := range []ast.Expr{be.X, be.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
						nilCompared[id] = true
					}
				}
			}
		}
		return true
	})
	uses := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		if !nilCompared[id] {
			uses = true
		}
		return true
	})
	return uses
}

// checkFieldAccess reports selectors resolving to Recorder fields in
// functions that are not Recorder methods.
func checkFieldAccess(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if !isRecorderType(s.Recv()) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"direct access to Recorder field %s outside its methods: a nil recorder panics here; use the nil-safe methods",
			sel.Sel.Name)
		return true
	})
}
