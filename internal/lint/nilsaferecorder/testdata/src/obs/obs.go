// Package obs is the nilsaferecorder fixture: a Recorder with the
// guard shapes the analyzer must accept and the ones it must flag.
package obs

// Recorder is the fixture stand-in for the real observability recorder.
type Recorder struct {
	Count   int
	enabled bool
}

// Good guards first: accepted.
func (r *Recorder) Good() {
	if r == nil {
		return
	}
	r.Count++
}

// GoodOr guards with the nil check as the leftmost || operand: accepted.
func (r *Recorder) GoodOr() {
	if r == nil || !r.enabled {
		return
	}
	r.Count++
}

// GoodPanic guards with a terminating panic: accepted.
func (r *Recorder) GoodPanic() {
	if r == nil {
		panic("nil recorder")
	}
	r.Count++
}

// Enabled only compares the receiver against nil, so it needs no guard.
func (r *Recorder) Enabled() bool { return r != nil }

// Bad dereferences the receiver with no guard at all.
func (r *Recorder) Bad() { // want `exported method Bad on \*obs\.Recorder must begin with a nil-receiver guard`
	r.Count++
}

// BadLate guards, but not as the first statement.
func (r *Recorder) BadLate() { // want `exported method BadLate on \*obs\.Recorder must begin with a nil-receiver guard`
	x := 1
	if r == nil {
		return
	}
	r.Count += x
}

// BadGuard has the right condition but a non-terminating body.
func (r *Recorder) BadGuard() { // want `exported method BadGuard on \*obs\.Recorder must begin with a nil-receiver guard`
	if r == nil {
		_ = 0
	}
	r.Count++
}

// internal is unexported: callers inside the package own the guard.
func (r *Recorder) internal() { r.Count++ }

// helper is a plain function in the same package: reaching into the
// fields from outside the methods is rule 2.
func helper(r *Recorder) {
	r.internal()
	r.Count++ // want `direct access to Recorder field Count outside its methods`
}
