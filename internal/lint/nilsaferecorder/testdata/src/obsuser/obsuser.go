// Package obsuser exercises rule 2 across a package boundary: kernel
// code must talk to the Recorder through its nil-safe methods.
package obsuser

import "obs"

func use(r *obs.Recorder) int {
	r.Good()
	if !r.Enabled() {
		return 0
	}
	return r.Count // want `direct access to Recorder field Count outside its methods`
}
