package nilsaferecorder_test

import (
	"testing"

	"maskedspgemm/internal/lint/linttest"
	"maskedspgemm/internal/lint/nilsaferecorder"
)

func TestNilSafeRecorder(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), nilsaferecorder.Analyzer, "obs", "obsuser")
}
