package lint

import (
	"fmt"
	"go/token"

	"maskedspgemm/internal/obs"
)

// ReportSchema tags the machine-readable findings document
// `spgemm-lint -json` emits. Same self-validating contract as the
// repo's stats/v1 and flightrec/v1 documents: the emitter round-trips
// its own output through the declared schema before printing it.
const ReportSchema = "maskedspgemm/lint/v1"

// Finding is one diagnostic of a lint report, position flattened for
// consumers that never see a token.FileSet.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Report is the lint/v1 document: the schema tag plus every finding in
// position order.
type Report struct {
	Schema   string    `json:"schema"`
	Findings []Finding `json:"findings"`
}

// BuildReport renders diagnostics into a lint/v1 report. Findings is
// never nil, so a clean run emits `"findings": []`, not null.
func BuildReport(fset *token.FileSet, diags []Diagnostic) *Report {
	r := &Report{Schema: ReportSchema, Findings: []Finding{}}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		r.Findings = append(r.Findings, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return r
}

// MarshalReport renders the report with the repo's JSON convention and
// validates the bytes against lint/v1 before returning them, so schema
// drift fails at the emitter instead of in a consumer.
func MarshalReport(r *Report) ([]byte, error) {
	data, err := obs.MarshalJSONBytes(r)
	if err != nil {
		return nil, err
	}
	if err := ValidateLintJSON(data); err != nil {
		return nil, fmt.Errorf("lint: emitted report is not schema-valid: %w", err)
	}
	return data, nil
}

// ValidateLintJSON checks that data is a schema-conforming lint/v1
// document: it strictly round-trips through Report and carries the
// expected schema tag.
func ValidateLintJSON(data []byte) error {
	var r Report
	if err := obs.RoundTrip(data, &r); err != nil {
		return err
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("lint: schema %q, want %q", r.Schema, ReportSchema)
	}
	return nil
}
