package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
)

// Package is one parsed and type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is a load of the module's packages, type-checked from source
// against export data for everything outside the module. All packages
// share one FileSet and one type-checked package graph, so types.Object
// identities (and therefore analyzer facts) are stable across packages.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // module packages in dependency order
	Sizes    types.Sizes
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (plus all dependencies)
// from dir, type-checks the module's own packages from source, and
// resolves every other import from compiler export data. Test files are
// not loaded: the invariants the analyzers enforce are properties of
// shipped code.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	module := map[string]*listedPackage{}
	exports := map[string]string{}
	for _, p := range listed {
		switch {
		case !p.Standard && p.Module != nil:
			module[p.ImportPath] = p
		case p.Export != "":
			exports[p.ImportPath] = p.Export
		}
	}

	prog := &Program{
		Fset:  token.NewFileSet(),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	checked := map[string]*Package{}
	gcImp := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var check func(path string) (*Package, error)
	check = func(path string) (*Package, error) {
		if pkg, ok := checked[path]; ok {
			if pkg == nil {
				return nil, fmt.Errorf("import cycle through %q", path)
			}
			return pkg, nil
		}
		checked[path] = nil // cycle marker
		lp := module[path]
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, lp.Dir+"/"+name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		// Type-check module dependencies first so the importer below can
		// hand back their source-checked packages.
		for _, imp := range lp.Imports {
			if _, ok := module[imp]; ok {
				if _, err := check(imp); err != nil {
					return nil, err
				}
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{
			Importer: importerFunc(func(ipath string) (*types.Package, error) {
				if pkg, ok := checked[ipath]; ok && pkg != nil {
					return pkg.Types, nil
				}
				return gcImp.Import(ipath)
			}),
			Sizes: prog.Sizes,
		}
		tpkg, err := conf.Check(path, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		pkg := &Package{ImportPath: path, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}
		checked[path] = pkg
		prog.Packages = append(prog.Packages, pkg)
		return pkg, nil
	}

	paths := make([]string, 0, len(module))
	for path := range module {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := check(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
