// Package spgemm is the errtaxonomy boundary fixture: its package name
// matches the public API package, so rules 2 and 3 apply.
package spgemm

import (
	"errors"
	"fmt"
)

// ErrShape is a sentinel: package-level errors.New is the one allowed
// place to mint taxonomy roots.
var ErrShape = errors.New("spgemm: shape mismatch")

var errInternal = errors.New("spgemm: internal")

func sentinelOK(n int) error {
	return fmt.Errorf("%w: negative shape %d", ErrShape, n)
}

func propagateOK(err error) error {
	return fmt.Errorf("plan: %w", err)
}

func chainedInternalOK() error {
	return fmt.Errorf("assemble: %w", errInternal)
}

func noWrap() error {
	return fmt.Errorf("plain failure") // want `does not wrap \(%w\) a sentinel`
}

func wrapNothingUseful() error {
	return fmt.Errorf("%w: oops", "not an error") // want `wraps no sentinel \(exported package-level Err... variable\) and no error value`
}

func mint() error {
	return errors.New("loose error") // want `errors.New inside a spgemm function creates an error outside the sentinel taxonomy`
}
