// Package errfix is the errtaxonomy fixture for rule 1: %w everywhere
// an error is formatted into another error, in any package.
package errfix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrapOK(err error) error {
	return fmt.Errorf("stage: %w", err)
}

func loseV(err error) error {
	return fmt.Errorf("stage: %v", err) // want `error argument formatted with %v loses the error chain`
}

func loseS(err error) error {
	return fmt.Errorf("stage %d: %s", 3, err) // want `error argument formatted with %s loses the error chain`
}

func nonErrorArgs(n int) error {
	return fmt.Errorf("n = %d", n)
}

// mint is fine outside the boundary package: internal packages may
// build their own errors as long as callers wrap with %w upward.
func mint() error {
	return errors.New("internal detail")
}

func chainOK() error {
	return fmt.Errorf("outer: %w", errBase)
}
