package errtaxonomy_test

import (
	"testing"

	"maskedspgemm/internal/lint/errtaxonomy"
	"maskedspgemm/internal/lint/linttest"
)

func TestErrTaxonomy(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), errtaxonomy.Analyzer, "errfix", "spgemm")
}
