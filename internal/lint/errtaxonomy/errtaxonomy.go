// Package errtaxonomy enforces the five-sentinel error contract
// documented in docs/ERRORS.md: callers dispatch on the public API's
// errors with errors.Is, which only works if (a) every error built at
// the public boundary wraps a sentinel and (b) no link of the chain is
// flattened by formatting an error with %v/%s instead of %w.
//
// Rules:
//
//  1. Everywhere: a fmt.Errorf call with an error-typed argument whose
//     matching verb is not %w destroys the chain and is reported.
//  2. In the public boundary package (package name "spgemm"): every
//     fmt.Errorf must wrap (%w) at least one sentinel — a package-level
//     exported error variable whose name starts with Err — or an
//     error-typed value (assumed to already carry a sentinel chain).
//  3. In the boundary package, errors.New may only appear at package
//     level (declaring the sentinels themselves); inside functions it
//     would mint a taxonomy-free error.
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"maskedspgemm/internal/lint"
)

// BoundaryPackage is the package name treated as the public boundary.
const BoundaryPackage = "spgemm"

// Analyzer is the errtaxonomy pass.
var Analyzer = &lint.Analyzer{
	Name: "errtaxonomy",
	Doc:  "propagated errors must wrap with %w; boundary errors must wrap a sentinel",
	Run:  run,
}

func run(pass *lint.Pass) error {
	boundary := pass.Pkg.Name() == BoundaryPackage
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			_, inFunc := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call, boundary, inFunc)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, boundary, inFunc bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
		checkErrorf(pass, call, boundary)
	case obj.Pkg().Path() == "errors" && obj.Name() == "New" && boundary && inFunc:
		pass.Reportf(call.Pos(),
			"errors.New inside a %s function creates an error outside the sentinel taxonomy; wrap a sentinel with fmt.Errorf(\"%%w: ...\", ErrX, ...)",
			BoundaryPackage)
	}
}

// checkErrorf applies rules 1 and 2 to one fmt.Errorf call.
func checkErrorf(pass *lint.Pass, call *ast.CallExpr, boundary bool) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := stringLiteral(pass, call.Args[0])
	if !ok {
		return // dynamic format: out of scope
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return // explicit argument indexes etc.: out of scope
	}
	args := call.Args[1:]
	wrapsSentinel := false
	wrapsError := false
	for i, arg := range args {
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb == 'w' {
			if isSentinelRef(pass, arg) {
				wrapsSentinel = true
			}
			if isErrorType(pass, arg) {
				wrapsError = true
			}
			continue
		}
		if isErrorType(pass, arg) {
			pass.Reportf(arg.Pos(),
				"error argument formatted with %%%c loses the error chain; use %%w so errors.Is keeps working", printableVerb(verb))
		}
	}
	if !boundary {
		return
	}
	if !strings.Contains(format, "%w") {
		pass.Reportf(call.Pos(),
			"fmt.Errorf at the %s boundary does not wrap (%%w) a sentinel; every public error must satisfy errors.Is against the package taxonomy",
			BoundaryPackage)
		return
	}
	if !wrapsSentinel && !wrapsError {
		pass.Reportf(call.Pos(),
			"fmt.Errorf at the %s boundary wraps no sentinel (exported package-level Err... variable) and no error value",
			BoundaryPackage)
	}
}

func printableVerb(v byte) byte {
	if v == 0 {
		return 'v'
	}
	return v
}

// stringLiteral resolves arg to a constant string: a literal, or a
// reference to a string constant.
func stringLiteral(pass *lint.Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return tv.Value.ExactString(), true
	}
	return s, true
}

// parseVerbs extracts the verb letter for each argument position. It
// bails (ok=false) on explicit argument indexes like %[1]w.
func parseVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil, false
		}
		// Skip flags, width, precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i < len(format) {
			if format[i] == '*' {
				verbs = append(verbs, '*') // width argument consumes a slot
				i++
			}
			if i < len(format) {
				verbs = append(verbs, format[i])
			}
		}
	}
	return verbs, true
}

// isErrorType reports whether arg's static type implements error.
func isErrorType(pass *lint.Pass, arg ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isSentinelRef reports whether arg references an exported
// package-level error variable named Err... — the sentinel shape.
func isSentinelRef(pass *lint.Pass, arg ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false // not package-level
	}
	return strings.HasPrefix(v.Name(), "Err") && isErrorType(pass, arg)
}
