package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-program half of the framework: a cross-package
// call graph over the module's declared functions and methods, built
// from the loader's single type-checked package graph. Because every
// package in a Program shares one types.Importer, a *types.Func object
// is one identity program-wide, so graph nodes line up with the object
// facts the per-package passes export.
//
// Resolution is static: direct calls (f(..)), package-qualified calls
// (pkg.F(..)) and method calls with a concrete receiver (x.M(..)) are
// resolved through types.Info; calls through function values, interface
// methods without a module body, and reflection are not resolved and
// appear as edges to external nodes (Node.Decl == nil). Function
// literals are attributed to the declared function that lexically
// encloses them — a goroutine body or deferred closure counts as part
// of its declaring function.

// CallGraph is the module's static call graph.
type CallGraph struct {
	// nodes maps every function object seen (module-declared or
	// referenced) to its node.
	nodes map[*types.Func]*Node
}

// Node is one function in the call graph. Module-declared functions
// carry their declaration and defining package; functions known only
// from export data (stdlib, external deps, bodiless interface methods)
// have Decl == nil and no outgoing edges.
type Node struct {
	// Func is the function's type-checker object (one identity
	// program-wide).
	Func *types.Func
	// Decl is the declaration, nil for functions outside the module.
	Decl *ast.FuncDecl
	// Pkg is the module package declaring the function, nil outside.
	Pkg *Package
	// Out holds this function's resolved call sites in source order.
	Out []*Edge
	// In holds every resolved call site targeting this function.
	In []*Edge
}

// Edge is one resolved call site.
type Edge struct {
	Caller, Callee *Node
	// Pos is the call expression's position.
	Pos token.Pos
	// Go reports a `go` statement call; Defer a deferred call.
	Go, Defer bool
}

// Lookup returns the node for fn, or nil if fn was never seen.
func (g *CallGraph) Lookup(fn *types.Func) *Node {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[canonicalFunc(fn)]
}

// Nodes returns every node in deterministic (package, position) order.
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func.Pos() != out[j].Func.Pos() {
			return out[i].Func.Pos() < out[j].Func.Pos()
		}
		return out[i].Func.FullName() < out[j].Func.FullName()
	})
	return out
}

// canonicalFunc maps a method instantiation or wrapper back to the
// declared generic origin, so calls to F[int] and F[float64] share one
// node.
func canonicalFunc(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// BuildCallGraph walks every module package and resolves its static
// call sites. The result is deterministic for a given Program.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*Node{}}

	node := func(fn *types.Func) *Node {
		fn = canonicalFunc(fn)
		if n, ok := g.nodes[fn]; ok {
			return n
		}
		n := &Node{Func: fn}
		g.nodes[fn] = n
		return n
	}

	// Declare every module function first so bodiless references are
	// distinguishable from module functions by Decl presence.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := node(fn)
				n.Decl = fd
				n.Pkg = pkg
			}
		}
	}

	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := node(fn)
				addCallEdges(pkg.Info, caller, fd.Body, node)
			}
		}
	}
	return g
}

// addCallEdges records every resolved call inside body as an outgoing
// edge of caller. Calls inside function literals belong to the
// enclosing declaration.
func addCallEdges(info *types.Info, caller *Node, body ast.Node, node func(*types.Func) *Node) {
	inGo := map[ast.Node]bool{}
	inDefer := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			inGo[s.Call] = true
		case *ast.DeferStmt:
			inDefer[s.Call] = true
		case *ast.CallExpr:
			callee := CalleeFunc(info, s)
			if callee == nil {
				return true
			}
			e := &Edge{
				Caller: caller,
				Callee: node(callee),
				Pos:    s.Pos(),
				Go:     inGo[s],
				Defer:  inDefer[s],
			}
			caller.Out = append(caller.Out, e)
			e.Callee.In = append(e.Callee.In, e)
		}
		return true
	})
}

// CalleeFunc resolves a call expression to its static callee, or nil
// for calls through function values, type conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	return canonicalFunc(fn)
}
